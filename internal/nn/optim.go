package nn

import "math"

// Optimizer updates a fixed set of layers from their accumulated gradients.
type Optimizer interface {
	// Step applies one update and clears the gradients.
	Step()
}

// SGD is plain stochastic gradient descent over a layer set.
type SGD struct {
	layers []*Dense
	lr     float64
}

// NewSGD returns an SGD optimizer with learning rate lr.
func NewSGD(layers []*Dense, lr float64) *SGD {
	return &SGD{layers: layers, lr: lr}
}

// Step implements Optimizer.
func (o *SGD) Step() {
	for _, l := range o.layers {
		for i := range l.W {
			l.W[i] -= o.lr * l.GW[i]
		}
		for i := range l.B {
			l.B[i] -= o.lr * l.GB[i]
		}
		l.ZeroGrad()
	}
}

// Adam implements the Adam optimizer (Kingma & Ba 2015), the optimizer the
// paper's PyTorch implementation uses for both actor and critic.
type Adam struct {
	layers []*Dense
	lr     float64
	beta1  float64
	beta2  float64
	eps    float64
	t      int
	mw, vw [][]float64 // first/second moments for W, per layer
	mb, vb [][]float64 // first/second moments for B, per layer
	// MaxGradNorm, when positive, clips the global gradient norm before
	// each step, stabilizing early critic training.
	MaxGradNorm float64
}

// NewAdam returns an Adam optimizer over layers with learning rate lr and
// standard moment decay (β1=0.9, β2=0.999, ε=1e-8).
func NewAdam(layers []*Dense, lr float64) *Adam {
	a := &Adam{
		layers: layers, lr: lr,
		beta1: 0.9, beta2: 0.999, eps: 1e-8,
	}
	for _, l := range layers {
		a.mw = append(a.mw, make([]float64, len(l.W)))
		a.vw = append(a.vw, make([]float64, len(l.W)))
		a.mb = append(a.mb, make([]float64, len(l.B)))
		a.vb = append(a.vb, make([]float64, len(l.B)))
	}
	return a
}

// Step implements Optimizer.
func (a *Adam) Step() {
	if a.MaxGradNorm > 0 {
		a.clip()
	}
	a.t++
	c1 := 1 - math.Pow(a.beta1, float64(a.t))
	c2 := 1 - math.Pow(a.beta2, float64(a.t))
	for li, l := range a.layers {
		a.apply(l.W, l.GW, a.mw[li], a.vw[li], c1, c2)
		a.apply(l.B, l.GB, a.mb[li], a.vb[li], c1, c2)
		l.ZeroGrad()
	}
}

func (a *Adam) apply(w, g, m, v []float64, c1, c2 float64) {
	for i := range w {
		m[i] = a.beta1*m[i] + (1-a.beta1)*g[i]
		v[i] = a.beta2*v[i] + (1-a.beta2)*g[i]*g[i]
		mh := m[i] / c1
		vh := v[i] / c2
		w[i] -= a.lr * mh / (math.Sqrt(vh) + a.eps)
	}
}

func (a *Adam) clip() {
	var norm2 float64
	for _, l := range a.layers {
		for _, g := range l.GW {
			norm2 += g * g
		}
		for _, g := range l.GB {
			norm2 += g * g
		}
	}
	norm := math.Sqrt(norm2)
	if norm <= a.MaxGradNorm {
		return
	}
	scale := a.MaxGradNorm / norm
	for _, l := range a.layers {
		for i := range l.GW {
			l.GW[i] *= scale
		}
		for i := range l.GB {
			l.GB[i] *= scale
		}
	}
}
