package nn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

func TestPaperActorShape(t *testing.T) {
	rng := sim.NewRNG(1)
	a := NewPaperActor(8, rng)
	if a.InDim() != 8 || a.OutDim() != 2 {
		t.Errorf("dims %d→%d", a.InDim(), a.OutDim())
	}
	y := a.Forward(make([]float64, 8))
	if len(y) != 2 {
		t.Fatalf("output len %d", len(y))
	}
	for _, v := range y {
		if v < 0 || v > 1 {
			t.Errorf("sigmoid head output %v outside [0,1]", v)
		}
	}
	// §5.5 quotes ~2096 actor parameters; the shared-trunk topology must
	// land in that neighborhood.
	if n := a.NumParams(); n < 1500 || n > 2700 {
		t.Errorf("two-head actor params = %d, want ~2k (paper: 2096)", n)
	}
}

// Analytic gradients through the shared trunk and both heads must match
// numerical differentiation — including the summed trunk gradient.
func TestTwoHeadGradCheck(t *testing.T) {
	rng := sim.NewRNG(2)
	a := NewTwoHead(4, []int{6, 5}, []int{4}, 2, Sigmoid, rng)
	x := []float64{0.3, -0.7, 1.1, 0.2}
	target := []float64{0.8, 0.2}

	loss := func() float64 {
		y := a.Forward(x)
		g := make([]float64, len(y))
		return MSE(y, target, g)
	}
	a.ZeroGrad()
	y := a.Forward(x)
	g := make([]float64, len(y))
	MSE(y, target, g)
	dIn := a.Backward(g)

	const h = 1e-6
	for li, l := range a.Params() {
		for wi := 0; wi < len(l.W); wi += 3 {
			old := l.W[wi]
			l.W[wi] = old + h
			up := loss()
			l.W[wi] = old - h
			down := loss()
			l.W[wi] = old
			num := (up - down) / (2 * h)
			if math.Abs(num-l.GW[wi]) > 1e-4*(1+math.Abs(num)) {
				t.Fatalf("param layer %d W[%d]: analytic %v, numerical %v",
					li, wi, l.GW[wi], num)
			}
		}
	}
	// Input gradient.
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		gUp := make([]float64, 2)
		up := MSE(a.Forward(xp), target, gUp)
		down := MSE(a.Forward(xm), target, gUp)
		num := (up - down) / (2 * h)
		if math.Abs(num-dIn[i]) > 1e-4*(1+math.Abs(num)) {
			t.Errorf("input grad %d: analytic %v, numerical %v", i, dIn[i], num)
		}
	}
}

func TestTwoHeadHeadsIndependent(t *testing.T) {
	// Gradients flowing into head 0 must not touch head 1's weights.
	rng := sim.NewRNG(3)
	a := NewTwoHead(3, []int{4}, []int{4}, 2, Sigmoid, rng)
	a.ZeroGrad()
	a.Forward([]float64{0.1, 0.2, 0.3})
	a.Backward([]float64{1, 0})
	for _, l := range a.Heads[1] {
		for _, g := range l.GW {
			if g != 0 {
				t.Fatal("head-1 weights received gradient from head-0 loss")
			}
		}
	}
	// But the shared trunk does receive it.
	trunkGrad := 0.0
	for _, l := range a.Trunk {
		for _, g := range l.GW {
			trunkGrad += math.Abs(g)
		}
	}
	if trunkGrad == 0 {
		t.Error("trunk received no gradient")
	}
}

func TestTwoHeadCloneAndSoftUpdate(t *testing.T) {
	rng := sim.NewRNG(4)
	a := NewPaperActor(8, rng)
	c := a.CloneNet()
	x := make([]float64, 8)
	for i := range x {
		x[i] = 0.3
	}
	want := append([]float64(nil), a.Forward(x)...)
	got := c.Forward(x)
	for i := range want {
		if want[i] != got[i] {
			t.Fatal("clone output differs")
		}
	}
	a.Trunk[0].W[0] += 10
	after := c.Forward(x)
	same := true
	for i := range want {
		if after[i] != want[i] {
			same = false
		}
	}
	if !same {
		t.Error("clone shares storage")
	}
	// Soft updates converge the clone back to a.
	for i := 0; i < 2000; i++ {
		c.SoftUpdateNet(a, 0.05)
	}
	aOut := a.Forward(x)
	cOut := c.Forward(x)
	for i := range aOut {
		if math.Abs(aOut[i]-cOut[i]) > 1e-6 {
			t.Error("soft updates did not converge")
		}
	}
}

func TestTwoHeadSaveLoadRoundTrip(t *testing.T) {
	rng := sim.NewRNG(5)
	a := NewPaperActor(8, rng)
	var buf bytes.Buffer
	if err := a.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTwoHead(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 8)
	for i := range x {
		x[i] = float64(i) / 10
	}
	av := append([]float64(nil), a.Forward(x)...)
	gv := got.Forward(x)
	for i := range av {
		if av[i] != gv[i] {
			t.Fatal("round-trip output mismatch")
		}
	}
	// LoadAny detects the topology.
	net, err := LoadAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := net.(*TwoHead); !ok {
		t.Errorf("LoadAny returned %T, want *TwoHead", net)
	}
}

func TestLoadAnyMLP(t *testing.T) {
	rng := sim.NewRNG(6)
	m := NewMLP([]int{3, 4, 2}, ReLU, Sigmoid, rng)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	net, err := LoadAny(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := net.(*MLP); !ok {
		t.Errorf("LoadAny returned %T, want *MLP", net)
	}
}

func TestLoadTwoHeadRejectsGarbage(t *testing.T) {
	cases := []string{
		"", "{}",
		`{"trunk":[],"heads":[]}`,
		`{"heads":[[{"in":2,"out":2,"w":[1,1,1,1],"b":[0,0]}]]}`, // head not width 1
	}
	for i, c := range cases {
		if _, err := LoadTwoHead(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTwoHeadBackwardWrongWidthPanics(t *testing.T) {
	a := NewPaperActor(8, sim.NewRNG(7))
	a.Forward(make([]float64, 8))
	defer func() {
		if recover() == nil {
			t.Error("wrong gradient width did not panic")
		}
	}()
	a.Backward([]float64{1})
}

func BenchmarkTwoHeadForward(b *testing.B) {
	a := NewPaperActor(8, sim.NewRNG(1))
	x := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Forward(x)
	}
}
