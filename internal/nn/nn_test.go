package nn

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/deeppower/deeppower/internal/sim"
)

func TestActivations(t *testing.T) {
	cases := []struct {
		a        Activation
		in, want float64
	}{
		{Identity, 3, 3},
		{ReLU, -2, 0},
		{ReLU, 2, 2},
		{Sigmoid, 0, 0.5},
		{Tanh, 0, 0},
	}
	for _, c := range cases {
		if got := c.a.Apply(c.in); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%v.Apply(%v) = %v, want %v", c.a, c.in, got, c.want)
		}
	}
	if Sigmoid.Apply(100) <= 0.999 || Sigmoid.Apply(-100) >= 0.001 {
		t.Error("sigmoid saturation wrong")
	}
	for _, a := range []Activation{Identity, ReLU, Sigmoid, Tanh} {
		if a.String() == "" {
			t.Error("empty activation name")
		}
	}
}

func TestActivationDerivFromOutput(t *testing.T) {
	// Check dσ/dx computed from output matches numerical derivative.
	for _, a := range []Activation{Identity, ReLU, Sigmoid, Tanh} {
		for _, x := range []float64{-2, -0.5, 0.3, 1.7} {
			if a == ReLU && x == 0 {
				continue
			}
			h := 1e-6
			num := (a.Apply(x+h) - a.Apply(x-h)) / (2 * h)
			got := a.DerivFromOutput(a.Apply(x))
			if math.Abs(got-num) > 1e-5 {
				t.Errorf("%v deriv at %v = %v, numerical %v", a, x, got, num)
			}
		}
	}
}

func TestDenseForwardShape(t *testing.T) {
	rng := sim.NewRNG(1)
	d := NewDense(3, 2, Identity, rng)
	y := d.Forward([]float64{1, 2, 3})
	if len(y) != 2 {
		t.Fatalf("output len %d", len(y))
	}
	defer func() {
		if recover() == nil {
			t.Error("wrong input size did not panic")
		}
	}()
	d.Forward([]float64{1})
}

func TestDenseLinearExact(t *testing.T) {
	rng := sim.NewRNG(1)
	d := NewDense(2, 1, Identity, rng)
	d.W[0], d.W[1] = 2, -1
	d.B[0] = 0.5
	y := d.Forward([]float64{3, 4})
	if math.Abs(y[0]-(2*3-4+0.5)) > 1e-12 {
		t.Errorf("y = %v", y[0])
	}
}

// Core correctness: analytic gradients must match numerical differentiation
// for every activation, through a multi-layer network.
func TestGradCheck(t *testing.T) {
	for _, act := range []Activation{Identity, Sigmoid, Tanh, ReLU} {
		rng := sim.NewRNG(7)
		m := NewMLP([]int{4, 5, 3}, act, Identity, rng)
		x := []float64{0.3, -0.7, 1.1, 0.2}
		target := []float64{0.5, -0.5, 0.25}

		loss := func() float64 {
			y := m.Forward(x)
			g := make([]float64, len(y))
			return MSE(y, target, g)
		}

		// Analytic gradient.
		m.ZeroGrad()
		y := m.Forward(x)
		g := make([]float64, len(y))
		MSE(y, target, g)
		m.Backward(g)

		const h = 1e-6
		for li, l := range m.Layers {
			for wi := range l.W {
				old := l.W[wi]
				l.W[wi] = old + h
				up := loss()
				l.W[wi] = old - h
				down := loss()
				l.W[wi] = old
				num := (up - down) / (2 * h)
				if math.Abs(num-l.GW[wi]) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("act %v layer %d W[%d]: analytic %v, numerical %v",
						act, li, wi, l.GW[wi], num)
				}
			}
			for bi := range l.B {
				old := l.B[bi]
				l.B[bi] = old + h
				up := loss()
				l.B[bi] = old - h
				down := loss()
				l.B[bi] = old
				num := (up - down) / (2 * h)
				if math.Abs(num-l.GB[bi]) > 1e-4*(1+math.Abs(num)) {
					t.Fatalf("act %v layer %d B[%d]: analytic %v, numerical %v",
						act, li, bi, l.GB[bi], num)
				}
			}
		}
	}
}

// Input gradients (needed by DDPG's actor update through the critic) must
// also match numerical differentiation.
func TestInputGradCheck(t *testing.T) {
	rng := sim.NewRNG(9)
	m := NewMLP([]int{3, 6, 1}, ReLU, Identity, rng)
	x := []float64{0.4, -0.2, 0.9}
	m.ZeroGrad()
	y := m.Forward(x)
	dIn := m.Backward([]float64{1}) // dL/dy = 1 → dy/dx
	_ = y
	const h = 1e-6
	for i := range x {
		xp := append([]float64(nil), x...)
		xm := append([]float64(nil), x...)
		xp[i] += h
		xm[i] -= h
		up := m.Forward(xp)[0]
		down := m.Forward(xm)[0]
		num := (up - down) / (2 * h)
		if math.Abs(num-dIn[i]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("input grad %d: analytic %v, numerical %v", i, dIn[i], num)
		}
	}
}

func TestMLPShapes(t *testing.T) {
	rng := sim.NewRNG(1)
	m := NewMLP([]int{8, 32, 24, 16, 2}, ReLU, Sigmoid, rng)
	if m.InDim() != 8 || m.OutDim() != 2 {
		t.Errorf("dims %d→%d", m.InDim(), m.OutDim())
	}
	y := m.Forward(make([]float64, 8))
	for _, v := range y {
		if v < 0 || v > 1 {
			t.Errorf("sigmoid output %v outside [0,1]", v)
		}
	}
	// Paper §5.5: "the number of parameters in the actor neural network is
	// 2096" — the flat 8→32→24→16→2 stack yields 1514; with the two-headed
	// variant the paper describes it lands near 2096. Ours must be in the
	// same small ballpark so overhead conclusions carry.
	if n := m.NumParams(); n < 1000 || n > 3000 {
		t.Errorf("actor-sized MLP has %d params, want ~1.5–2k", n)
	}
}

func TestMLPTrainsXOR(t *testing.T) {
	rng := sim.NewRNG(3)
	m := NewMLP([]int{2, 8, 1}, Tanh, Sigmoid, rng)
	opt := NewAdam(denseLayers(m), 0.02)
	data := [][3]float64{{0, 0, 0}, {0, 1, 1}, {1, 0, 1}, {1, 1, 0}}
	grad := make([]float64, 1)
	for epoch := 0; epoch < 2000; epoch++ {
		for _, d := range data {
			y := m.Forward(d[:2])
			MSE(y, d[2:], grad)
			m.Backward(grad)
		}
		opt.Step()
	}
	for _, d := range data {
		y := m.Forward(d[:2])[0]
		if math.Abs(y-d[2]) > 0.2 {
			t.Fatalf("XOR(%v,%v) = %v, want %v", d[0], d[1], y, d[2])
		}
	}
}

func denseLayers(m *MLP) []*Dense { return m.Layers }

func TestSGDReducesLoss(t *testing.T) {
	rng := sim.NewRNG(4)
	m := NewMLP([]int{1, 4, 1}, Tanh, Identity, rng)
	opt := NewSGD(m.Layers, 0.05)
	grad := make([]float64, 1)
	loss := func() float64 {
		total := 0.0
		for x := -1.0; x <= 1; x += 0.25 {
			y := m.Forward([]float64{x})
			total += (y[0] - x*x) * (y[0] - x*x)
		}
		return total
	}
	before := loss()
	for i := 0; i < 500; i++ {
		for x := -1.0; x <= 1; x += 0.25 {
			y := m.Forward([]float64{x})
			MSE(y, []float64{x * x}, grad)
			m.Backward(grad)
		}
		opt.Step()
	}
	if after := loss(); after >= before/4 {
		t.Errorf("SGD did not reduce loss: %v → %v", before, after)
	}
}

func TestCloneIndependent(t *testing.T) {
	rng := sim.NewRNG(5)
	m := NewMLP([]int{2, 3, 1}, ReLU, Identity, rng)
	c := m.Clone()
	x := []float64{0.5, -0.5}
	want := c.Forward(x)[0]
	m.Layers[0].W[0] += 100
	if got := c.Forward(x)[0]; got != want {
		t.Error("clone shares weight storage with original")
	}
}

func TestCopyFrom(t *testing.T) {
	rng := sim.NewRNG(6)
	a := NewMLP([]int{2, 3, 1}, ReLU, Identity, rng)
	b := NewMLP([]int{2, 3, 1}, ReLU, Identity, rng)
	b.CopyFrom(a)
	x := []float64{1, 2}
	if a.Forward(x)[0] != b.Forward(x)[0] {
		t.Error("CopyFrom did not equalize outputs")
	}
}

func TestSoftUpdate(t *testing.T) {
	rng := sim.NewRNG(7)
	target := NewMLP([]int{1, 1}, Identity, Identity, rng)
	src := NewMLP([]int{1, 1}, Identity, Identity, rng)
	target.Layers[0].W[0] = 0
	src.Layers[0].W[0] = 10
	target.SoftUpdateFrom(src, 0.1)
	if got := target.Layers[0].W[0]; math.Abs(got-1) > 1e-12 {
		t.Errorf("soft update W = %v, want 1", got)
	}
	// τ=1 equals a hard copy.
	target.SoftUpdateFrom(src, 1)
	if got := target.Layers[0].W[0]; math.Abs(got-10) > 1e-12 {
		t.Errorf("τ=1 soft update W = %v, want 10", got)
	}
}

func TestSoftUpdateConverges(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		target := NewMLP([]int{2, 2}, Identity, Identity, rng)
		src := NewMLP([]int{2, 2}, Identity, Identity, rng)
		for i := 0; i < 2000; i++ {
			target.SoftUpdateFrom(src, 0.05)
		}
		for i := range src.Layers[0].W {
			if math.Abs(target.Layers[0].W[i]-src.Layers[0].W[i]) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Error(err)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := sim.NewRNG(8)
	m := NewMLP([]int{3, 5, 2}, ReLU, Sigmoid, rng)
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := []float64{0.1, 0.2, 0.3}
	a := m.Forward(x)
	b := got.Forward(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round-trip output mismatch: %v vs %v", a, b)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",
		"{}",
		`{"layers":[{"in":2,"out":1,"w":[1],"b":[0]}]}`, // wrong W size
		`{"layers":[{"in":0,"out":1,"w":[],"b":[0]}]}`,  // zero dims
	}
	for i, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMSE(t *testing.T) {
	grad := make([]float64, 2)
	loss := MSE([]float64{1, 2}, []float64{0, 0}, grad)
	if math.Abs(loss-2.5) > 1e-12 { // (1+4)/2
		t.Errorf("MSE = %v", loss)
	}
	if math.Abs(grad[0]-1) > 1e-12 || math.Abs(grad[1]-2) > 1e-12 {
		t.Errorf("grad = %v", grad)
	}
}

func TestAdamGradClip(t *testing.T) {
	rng := sim.NewRNG(9)
	m := NewMLP([]int{1, 1}, Identity, Identity, rng)
	opt := NewAdam(m.Layers, 0.1)
	opt.MaxGradNorm = 1.0
	m.Layers[0].GW[0] = 100
	m.Layers[0].GB[0] = 0
	w0 := m.Layers[0].W[0]
	opt.Step()
	// With clipping, step magnitude ≈ lr (Adam normalizes), never huge.
	if d := math.Abs(m.Layers[0].W[0] - w0); d > 0.2 {
		t.Errorf("clipped step moved weight by %v", d)
	}
}

func TestGradientAccumulation(t *testing.T) {
	rng := sim.NewRNG(10)
	d := NewDense(1, 1, Identity, rng)
	d.Forward([]float64{2})
	d.Backward([]float64{1})
	d.Forward([]float64{2})
	d.Backward([]float64{1})
	if math.Abs(d.GW[0]-4) > 1e-12 { // two accumulations of x·δ = 2
		t.Errorf("accumulated GW = %v, want 4", d.GW[0])
	}
	d.ZeroGrad()
	if d.GW[0] != 0 || d.GB[0] != 0 {
		t.Error("ZeroGrad failed")
	}
}

func BenchmarkForwardActorSized(b *testing.B) {
	rng := sim.NewRNG(1)
	m := NewMLP([]int{8, 32, 24, 16, 2}, ReLU, Sigmoid, rng)
	x := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
	}
}

func BenchmarkBackwardActorSized(b *testing.B) {
	rng := sim.NewRNG(1)
	m := NewMLP([]int{8, 32, 24, 16, 2}, ReLU, Sigmoid, rng)
	x := make([]float64, 8)
	g := []float64{1, 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Forward(x)
		m.Backward(g)
	}
}
