// Package nn is a from-scratch dense neural-network library with manual
// backpropagation — the substitute for the PyTorch models in the paper's
// implementation (§4.6). The paper's networks are tiny MLPs (the actor has
// ~2k parameters), so fully-connected layers, ReLU/sigmoid/tanh activations,
// SGD/Adam, and soft target updates cover everything DDPG, DQN, DDQN and SAC
// need.
package nn

import (
	"fmt"
	"math"

	"github.com/deeppower/deeppower/internal/sim"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Sigmoid
	Tanh
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	}
	return fmt.Sprintf("activation(%d)", int(a))
}

// Apply evaluates the activation.
func (a Activation) Apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// DerivFromOutput returns dσ/dx expressed in terms of the activation's
// output y = σ(x). All supported activations admit this form, which lets
// layers cache only their outputs.
func (a Activation) DerivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// Dense is one fully-connected layer y = σ(Wx + b) with gradient
// accumulation. It is not safe for concurrent use: Forward caches the
// activations Backward consumes, and ForwardBatch likewise caches for
// BackwardBatch. The per-sample and batched paths keep separate caches, but
// a Backward must always pair with the Forward variant that preceded it.
type Dense struct {
	In, Out int
	W       []float64 // Out×In, row-major
	B       []float64
	Act     Activation

	// Accumulated gradients (same shapes as W, B).
	GW, GB []float64

	// Forward cache (per-sample path) and the Backward dx scratch.
	x, y, dx []float64

	// Batched-path caches: row-major [batch×In] inputs, [batch×Out]
	// outputs, [batch×In] input-gradient scratch, and the row count of the
	// most recent ForwardBatch. Grown on demand, then reused.
	bx, by, bdx []float64
	bn          int
}

// NewDense returns a layer with Xavier/Glorot-uniform initialized weights.
func NewDense(in, out int, act Activation, rng *sim.RNG) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid layer shape %d→%d", in, out))
	}
	d := &Dense{
		In: in, Out: out, Act: act,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		GW: make([]float64, in*out),
		GB: make([]float64, out),
		x:  make([]float64, in),
		y:  make([]float64, out),
		dx: make([]float64, in),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W {
		d.W[i] = rng.Uniform(-limit, limit)
	}
	return d
}

// Forward computes the layer output for input x and caches both for
// Backward. The returned slice is reused between calls; copy it to retain.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Forward input %d, layer expects %d", len(x), d.In))
	}
	copy(d.x, x)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		d.y[o] = d.Act.Apply(sum)
	}
	return d.y
}

// Backward takes dL/dy (w.r.t. the post-activation output of the most
// recent Forward), accumulates dL/dW and dL/db, and returns dL/dx.
// The returned slice is a layer-owned scratch buffer, overwritten by the
// next Backward call; copy it to retain.
func (d *Dense) Backward(dy []float64) []float64 {
	if len(dy) != d.Out {
		panic(fmt.Sprintf("nn: Backward gradient %d, layer outputs %d", len(dy), d.Out))
	}
	dx := d.dx
	for i := range dx {
		dx[i] = 0
	}
	for o := 0; o < d.Out; o++ {
		delta := dy[o] * d.Act.DerivFromOutput(d.y[o])
		d.GB[o] += delta
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.GW[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += delta * d.x[i]
			dx[i] += delta * row[i]
		}
	}
	return dx
}

// blockRows is the historical batch-tile height; the bit-identity tests
// still probe batch sizes around it to catch edge effects at tile
// boundaries.
const blockRows = 8

// ensureBatch grows the batched caches to hold n rows.
func (d *Dense) ensureBatch(n int) {
	if cap(d.bx) < n*d.In {
		d.bx = make([]float64, n*d.In)
		d.bdx = make([]float64, n*d.In)
	}
	if cap(d.by) < n*d.Out {
		d.by = make([]float64, n*d.Out)
	}
	d.bx = d.bx[:n*d.In]
	d.by = d.by[:n*d.Out]
	d.bdx = d.bdx[:n*d.In]
	d.bn = n
}

// ForwardBatch computes the layer output for n row-major [n×In] inputs and
// caches both sides for BackwardBatch. The returned [n×Out] slice is a
// layer-owned buffer reused between calls.
//
// The kernel computes four output units at once per sample: four
// independent accumulator chains hide the floating-point add latency that
// serializes a single dot product, and each input element is loaded once
// for all four units. Every accumulator still sums its row in the exact
// index order of Forward (seeded from the bias), so a ForwardBatch over n
// inputs is bit-identical to n Forward calls.
func (d *Dense) ForwardBatch(x []float64, n int) []float64 {
	if n <= 0 || len(x) != n*d.In {
		panic(fmt.Sprintf("nn: ForwardBatch input %d, want %d rows × %d", len(x), n, d.In))
	}
	d.ensureBatch(n)
	copy(d.bx, x)
	in, out := d.In, d.Out
	for b := 0; b < n; b++ {
		xrow := d.bx[b*in : (b+1)*in : (b+1)*in]
		yrow := d.by[b*out : (b+1)*out]
		o := 0
		for ; o+4 <= out; o += 4 {
			r0 := d.W[o*in : (o+1)*in : (o+1)*in]
			r1 := d.W[(o+1)*in : (o+2)*in : (o+2)*in]
			r2 := d.W[(o+2)*in : (o+3)*in : (o+3)*in]
			r3 := d.W[(o+3)*in : (o+4)*in : (o+4)*in]
			s0, s1, s2, s3 := d.B[o], d.B[o+1], d.B[o+2], d.B[o+3]
			for i, xi := range xrow {
				s0 += r0[i] * xi
				s1 += r1[i] * xi
				s2 += r2[i] * xi
				s3 += r3[i] * xi
			}
			yrow[o] = d.Act.Apply(s0)
			yrow[o+1] = d.Act.Apply(s1)
			yrow[o+2] = d.Act.Apply(s2)
			yrow[o+3] = d.Act.Apply(s3)
		}
		for ; o < out; o++ {
			row := d.W[o*in : (o+1)*in : (o+1)*in]
			sum := d.B[o]
			for i, xi := range xrow {
				sum += row[i] * xi
			}
			yrow[o] = d.Act.Apply(sum)
		}
	}
	return d.by
}

// BackwardBatch takes dL/dy for the most recent ForwardBatch ([n×Out],
// row-major), accumulates dL/dW and dL/db, and returns dL/dx as an [n×In]
// layer-owned scratch buffer.
//
// Accumulation order is preserved exactly: each gradient element receives
// its per-sample contributions in ascending sample order, and each dx
// element sums over output units in ascending order — matching n sequential
// Backward calls bit-for-bit.
func (d *Dense) BackwardBatch(dy []float64, n int) []float64 {
	if n != d.bn {
		panic(fmt.Sprintf("nn: BackwardBatch rows %d, last ForwardBatch had %d", n, d.bn))
	}
	if len(dy) != n*d.Out {
		panic(fmt.Sprintf("nn: BackwardBatch gradient %d, want %d rows × %d", len(dy), n, d.Out))
	}
	bdx := d.bdx
	for i := range bdx {
		bdx[i] = 0
	}
	in, out := d.In, d.Out
	// Samples stay in the outer loop so every GW/GB element receives its
	// per-sample contributions in ascending sample order; within a sample,
	// output units are processed two at a time — the paired updates stay
	// separate add statements (t += δ0·w0; t += δ1·w1), preserving the
	// per-element rounding sequence of sequential Backward calls while
	// sharing each input load across both units.
	for b := 0; b < n; b++ {
		xrow := d.bx[b*in : (b+1)*in : (b+1)*in]
		dxrow := bdx[b*in : (b+1)*in : (b+1)*in]
		yrow := d.by[b*out : (b+1)*out]
		dyrow := dy[b*out : (b+1)*out]
		o := 0
		for ; o+2 <= out; o += 2 {
			d0 := dyrow[o] * d.Act.DerivFromOutput(yrow[o])
			d1 := dyrow[o+1] * d.Act.DerivFromOutput(yrow[o+1])
			d.GB[o] += d0
			d.GB[o+1] += d1
			r0 := d.W[o*in : (o+1)*in : (o+1)*in]
			r1 := d.W[(o+1)*in : (o+2)*in : (o+2)*in]
			g0 := d.GW[o*in : (o+1)*in : (o+1)*in]
			g1 := d.GW[(o+1)*in : (o+2)*in : (o+2)*in]
			for i, xi := range xrow {
				g0[i] += d0 * xi
				g1[i] += d1 * xi
				t := dxrow[i]
				t += d0 * r0[i]
				t += d1 * r1[i]
				dxrow[i] = t
			}
		}
		for ; o < out; o++ {
			delta := dyrow[o] * d.Act.DerivFromOutput(yrow[o])
			d.GB[o] += delta
			row := d.W[o*in : (o+1)*in : (o+1)*in]
			grow := d.GW[o*in : (o+1)*in : (o+1)*in]
			for i, xi := range xrow {
				grow[i] += delta * xi
				dxrow[i] += delta * row[i]
			}
		}
	}
	return bdx
}

// ZeroGrad clears accumulated gradients.
func (d *Dense) ZeroGrad() {
	for i := range d.GW {
		d.GW[i] = 0
	}
	for i := range d.GB {
		d.GB[i] = 0
	}
}

// NumParams returns the number of trainable parameters.
func (d *Dense) NumParams() int { return len(d.W) + len(d.B) }

// Clone returns a deep copy of the layer (weights only; caches fresh).
func (d *Dense) Clone() *Dense {
	c := &Dense{
		In: d.In, Out: d.Out, Act: d.Act,
		W:  append([]float64(nil), d.W...),
		B:  append([]float64(nil), d.B...),
		GW: make([]float64, len(d.GW)),
		GB: make([]float64, len(d.GB)),
		x:  make([]float64, d.In),
		y:  make([]float64, d.Out),
		dx: make([]float64, d.In),
	}
	return c
}

// CopyFrom overwrites this layer's weights with src's.
func (d *Dense) CopyFrom(src *Dense) {
	if d.In != src.In || d.Out != src.Out {
		panic("nn: CopyFrom shape mismatch")
	}
	copy(d.W, src.W)
	copy(d.B, src.B)
}

// SoftUpdateFrom blends src into this layer:
// θ ← τ·θ_src + (1-τ)·θ. This is the DDPG target-network update.
func (d *Dense) SoftUpdateFrom(src *Dense, tau float64) {
	if d.In != src.In || d.Out != src.Out {
		panic("nn: SoftUpdateFrom shape mismatch")
	}
	for i := range d.W {
		d.W[i] = tau*src.W[i] + (1-tau)*d.W[i]
	}
	for i := range d.B {
		d.B[i] = tau*src.B[i] + (1-tau)*d.B[i]
	}
}
