// Package nn is a from-scratch dense neural-network library with manual
// backpropagation — the substitute for the PyTorch models in the paper's
// implementation (§4.6). The paper's networks are tiny MLPs (the actor has
// ~2k parameters), so fully-connected layers, ReLU/sigmoid/tanh activations,
// SGD/Adam, and soft target updates cover everything DDPG, DQN, DDQN and SAC
// need.
package nn

import (
	"fmt"
	"math"

	"github.com/deeppower/deeppower/internal/sim"
)

// Activation selects a layer's nonlinearity.
type Activation int

// Supported activations.
const (
	Identity Activation = iota
	ReLU
	Sigmoid
	Tanh
)

// String returns the activation's name.
func (a Activation) String() string {
	switch a {
	case Identity:
		return "identity"
	case ReLU:
		return "relu"
	case Sigmoid:
		return "sigmoid"
	case Tanh:
		return "tanh"
	}
	return fmt.Sprintf("activation(%d)", int(a))
}

// Apply evaluates the activation.
func (a Activation) Apply(x float64) float64 {
	switch a {
	case ReLU:
		if x < 0 {
			return 0
		}
		return x
	case Sigmoid:
		return 1 / (1 + math.Exp(-x))
	case Tanh:
		return math.Tanh(x)
	default:
		return x
	}
}

// DerivFromOutput returns dσ/dx expressed in terms of the activation's
// output y = σ(x). All supported activations admit this form, which lets
// layers cache only their outputs.
func (a Activation) DerivFromOutput(y float64) float64 {
	switch a {
	case ReLU:
		if y > 0 {
			return 1
		}
		return 0
	case Sigmoid:
		return y * (1 - y)
	case Tanh:
		return 1 - y*y
	default:
		return 1
	}
}

// Dense is one fully-connected layer y = σ(Wx + b) with gradient
// accumulation. It is not safe for concurrent use: Forward caches the
// activations Backward consumes.
type Dense struct {
	In, Out int
	W       []float64 // Out×In, row-major
	B       []float64
	Act     Activation

	// Accumulated gradients (same shapes as W, B).
	GW, GB []float64

	// Forward cache.
	x, y []float64
}

// NewDense returns a layer with Xavier/Glorot-uniform initialized weights.
func NewDense(in, out int, act Activation, rng *sim.RNG) *Dense {
	if in <= 0 || out <= 0 {
		panic(fmt.Sprintf("nn: invalid layer shape %d→%d", in, out))
	}
	d := &Dense{
		In: in, Out: out, Act: act,
		W:  make([]float64, in*out),
		B:  make([]float64, out),
		GW: make([]float64, in*out),
		GB: make([]float64, out),
		x:  make([]float64, in),
		y:  make([]float64, out),
	}
	limit := math.Sqrt(6.0 / float64(in+out))
	for i := range d.W {
		d.W[i] = rng.Uniform(-limit, limit)
	}
	return d
}

// Forward computes the layer output for input x and caches both for
// Backward. The returned slice is reused between calls; copy it to retain.
func (d *Dense) Forward(x []float64) []float64 {
	if len(x) != d.In {
		panic(fmt.Sprintf("nn: Forward input %d, layer expects %d", len(x), d.In))
	}
	copy(d.x, x)
	for o := 0; o < d.Out; o++ {
		sum := d.B[o]
		row := d.W[o*d.In : (o+1)*d.In]
		for i, xi := range x {
			sum += row[i] * xi
		}
		d.y[o] = d.Act.Apply(sum)
	}
	return d.y
}

// Backward takes dL/dy (w.r.t. the post-activation output of the most
// recent Forward), accumulates dL/dW and dL/db, and returns dL/dx.
// The returned slice is freshly allocated.
func (d *Dense) Backward(dy []float64) []float64 {
	if len(dy) != d.Out {
		panic(fmt.Sprintf("nn: Backward gradient %d, layer outputs %d", len(dy), d.Out))
	}
	dx := make([]float64, d.In)
	for o := 0; o < d.Out; o++ {
		delta := dy[o] * d.Act.DerivFromOutput(d.y[o])
		d.GB[o] += delta
		row := d.W[o*d.In : (o+1)*d.In]
		grow := d.GW[o*d.In : (o+1)*d.In]
		for i := 0; i < d.In; i++ {
			grow[i] += delta * d.x[i]
			dx[i] += delta * row[i]
		}
	}
	return dx
}

// ZeroGrad clears accumulated gradients.
func (d *Dense) ZeroGrad() {
	for i := range d.GW {
		d.GW[i] = 0
	}
	for i := range d.GB {
		d.GB[i] = 0
	}
}

// NumParams returns the number of trainable parameters.
func (d *Dense) NumParams() int { return len(d.W) + len(d.B) }

// Clone returns a deep copy of the layer (weights only; caches fresh).
func (d *Dense) Clone() *Dense {
	c := &Dense{
		In: d.In, Out: d.Out, Act: d.Act,
		W:  append([]float64(nil), d.W...),
		B:  append([]float64(nil), d.B...),
		GW: make([]float64, len(d.GW)),
		GB: make([]float64, len(d.GB)),
		x:  make([]float64, d.In),
		y:  make([]float64, d.Out),
	}
	return c
}

// CopyFrom overwrites this layer's weights with src's.
func (d *Dense) CopyFrom(src *Dense) {
	if d.In != src.In || d.Out != src.Out {
		panic("nn: CopyFrom shape mismatch")
	}
	copy(d.W, src.W)
	copy(d.B, src.B)
}

// SoftUpdateFrom blends src into this layer:
// θ ← τ·θ_src + (1-τ)·θ. This is the DDPG target-network update.
func (d *Dense) SoftUpdateFrom(src *Dense, tau float64) {
	if d.In != src.In || d.Out != src.Out {
		panic("nn: SoftUpdateFrom shape mismatch")
	}
	for i := range d.W {
		d.W[i] = tau*src.W[i] + (1-tau)*d.W[i]
	}
	for i := range d.B {
		d.B[i] = tau*src.B[i] + (1-tau)*d.B[i]
	}
}
