package nn

import (
	"bytes"
	"fmt"
	"io"
)

// Network abstracts a trainable feed-forward network so agents can swap
// topologies (the sequential MLP, or the paper's two-headed actor).
type Network interface {
	// Forward evaluates the network; the result aliases internal buffers.
	Forward(x []float64) []float64
	// Backward propagates dL/dy of the latest Forward and accumulates
	// parameter gradients, returning dL/dinput.
	Backward(dy []float64) []float64
	// ForwardBatch evaluates n row-major [n×InDim] inputs at once; the
	// [n×OutDim] result aliases internal buffers. Bit-identical to n
	// Forward calls, but allocation-free and cache-blocked.
	ForwardBatch(x []float64, n int) []float64
	// BackwardBatch propagates [n×OutDim] output gradients of the latest
	// ForwardBatch, accumulating parameter gradients in ascending sample
	// order (bit-identical to n Forward/Backward pairs), and returns
	// dL/dinput as [n×InDim].
	BackwardBatch(dy []float64, n int) []float64
	// ZeroGrad clears accumulated gradients.
	ZeroGrad()
	// NumParams counts trainable parameters.
	NumParams() int
	// Params exposes the trainable layers for optimizers.
	Params() []*Dense
	// CloneNet deep-copies the network.
	CloneNet() Network
	// SoftUpdateNet blends src (of the same concrete type) into this
	// network: θ ← τ·θ_src + (1−τ)·θ.
	SoftUpdateNet(src Network, tau float64)
	// Save serializes the weights.
	Save(w io.Writer) error
	// InDim and OutDim report input/output widths.
	InDim() int
	OutDim() int
}

// Params implements Network.
func (m *MLP) Params() []*Dense { return m.Layers }

// CloneNet implements Network.
func (m *MLP) CloneNet() Network { return m.Clone() }

// SoftUpdateNet implements Network. src must be an *MLP of the same shape.
func (m *MLP) SoftUpdateNet(src Network, tau float64) {
	m.SoftUpdateFrom(src.(*MLP), tau)
}

var _ Network = (*MLP)(nil)

// LoadAny reads a network saved by MLP.Save or TwoHead.Save, detecting the
// topology from the serialized form. Input that parses as neither yields an
// error describing both failures; LoadAny never panics.
func LoadAny(r io.Reader) (Network, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("nn: reading network snapshot: %w", err)
	}
	if len(data) == 0 {
		return nil, fmt.Errorf("nn: empty network snapshot")
	}
	m, mlpErr := Load(bytes.NewReader(data))
	if mlpErr == nil {
		return m, nil
	}
	t, thErr := LoadTwoHead(bytes.NewReader(data))
	if thErr == nil {
		return t, nil
	}
	return nil, fmt.Errorf("nn: snapshot is neither topology: as mlp: %v; as two-head: %w", mlpErr, thErr)
}
