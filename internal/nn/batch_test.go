package nn

import (
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

// randBatch fills a row-major [n×dim] buffer with values in (-1.5, 1.5) —
// wide enough to hit both ReLU regimes and the tanh/sigmoid curvature.
func randBatch(rng *sim.RNG, n, dim int) []float64 {
	x := make([]float64, n*dim)
	for i := range x {
		x[i] = rng.Uniform(-1.5, 1.5)
	}
	return x
}

// bitEq compares float64 slices for exact bit equality (no tolerance: the
// batched kernels promise the same arithmetic in the same order).
func bitEq(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: batched %v (bits %x) vs per-sample %v (bits %x)",
				what, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
		}
	}
}

// TestDenseBatchBitIdentity asserts ForwardBatch/BackwardBatch reproduce n
// per-sample Forward/Backward calls bit-for-bit — outputs, accumulated
// weight/bias gradients, and input gradients — for every activation and for
// batch sizes around the blocking tile.
func TestDenseBatchBitIdentity(t *testing.T) {
	for _, act := range []Activation{Identity, ReLU, Sigmoid, Tanh} {
		for _, n := range []int{1, 3, blockRows, blockRows + 5, 64} {
			rng := sim.NewRNG(11)
			ref := NewDense(9, 7, act, rng)
			bat := ref.Clone()
			x := randBatch(rng, n, ref.In)
			dy := randBatch(rng, n, ref.Out)

			// Per-sample reference: accumulate gradients across the batch.
			refY := make([]float64, n*ref.Out)
			refDX := make([]float64, n*ref.In)
			for b := 0; b < n; b++ {
				y := ref.Forward(x[b*ref.In : (b+1)*ref.In])
				copy(refY[b*ref.Out:], y)
				dx := ref.Backward(dy[b*ref.Out : (b+1)*ref.Out])
				copy(refDX[b*ref.In:], dx)
			}

			gotY := bat.ForwardBatch(x, n)
			gotDX := bat.BackwardBatch(dy, n)

			bitEq(t, act.String()+" y", gotY, refY)
			bitEq(t, act.String()+" dx", gotDX, refDX)
			bitEq(t, act.String()+" GW", bat.GW, ref.GW)
			bitEq(t, act.String()+" GB", bat.GB, ref.GB)
		}
	}
}

// netBitIdentity runs the per-sample and batched paths of two clones of the
// same network and asserts outputs, input gradients, and every parameter
// gradient agree bit-for-bit.
func netBitIdentity(t *testing.T, ref, bat Network, n int, seed int64) {
	t.Helper()
	rng := sim.NewRNG(seed)
	in, out := ref.InDim(), ref.OutDim()
	x := randBatch(rng, n, in)
	dy := randBatch(rng, n, out)

	refY := make([]float64, n*out)
	refDX := make([]float64, n*in)
	for b := 0; b < n; b++ {
		y := ref.Forward(x[b*in : (b+1)*in])
		copy(refY[b*out:], y)
		dx := ref.Backward(dy[b*out : (b+1)*out])
		copy(refDX[b*in:], dx)
	}

	gotY := bat.ForwardBatch(x, n)
	gotDX := bat.BackwardBatch(dy, n)

	bitEq(t, "y", gotY, refY)
	bitEq(t, "dx", gotDX, refDX)
	rp, bp := ref.Params(), bat.Params()
	if len(rp) != len(bp) {
		t.Fatalf("param count %d vs %d", len(rp), len(bp))
	}
	for li := range rp {
		bitEq(t, "GW", bp[li].GW, rp[li].GW)
		bitEq(t, "GB", bp[li].GB, rp[li].GB)
	}
}

func TestMLPBatchBitIdentity(t *testing.T) {
	for _, outAct := range []Activation{Identity, ReLU, Sigmoid, Tanh} {
		rng := sim.NewRNG(13)
		ref := NewMLP([]int{8, 32, 24, 16, 2}, ReLU, outAct, rng)
		netBitIdentity(t, ref, ref.Clone(), 64, 17)
	}
}

func TestTwoHeadBatchBitIdentity(t *testing.T) {
	for _, outAct := range []Activation{Identity, ReLU, Sigmoid, Tanh} {
		rng := sim.NewRNG(19)
		ref := NewTwoHead(8, []int{32, 24}, []int{16}, 2, outAct, rng)
		netBitIdentity(t, ref, ref.CloneNet(), 64, 23)
	}
	// Degenerate topologies: no trunk, and heads that attach directly to
	// the trunk output.
	rng := sim.NewRNG(29)
	ref := NewTwoHead(6, nil, []int{8}, 3, Sigmoid, rng)
	netBitIdentity(t, ref, ref.CloneNet(), 10, 31)
	rng = sim.NewRNG(37)
	ref = NewTwoHead(6, []int{12}, nil, 2, Tanh, rng)
	netBitIdentity(t, ref, ref.CloneNet(), 10, 41)
}

// TestBatchKernelsZeroAlloc: after a warm-up call has grown the scratch
// arenas, the batched forward/backward kernels must never touch the heap.
func TestBatchKernelsZeroAlloc(t *testing.T) {
	rng := sim.NewRNG(43)
	const n = 64
	for name, net := range map[string]Network{
		"mlp":     NewMLP([]int{8, 32, 24, 16, 2}, ReLU, Sigmoid, rng),
		"twohead": NewTwoHead(8, []int{32, 24}, []int{16}, 2, Sigmoid, rng),
	} {
		x := randBatch(rng, n, net.InDim())
		dy := randBatch(rng, n, net.OutDim())
		net.ForwardBatch(x, n) // warm-up grows arenas
		net.BackwardBatch(dy, n)
		allocs := testing.AllocsPerRun(10, func() {
			net.ForwardBatch(x, n)
			net.BackwardBatch(dy, n)
			net.ZeroGrad()
		})
		if allocs != 0 {
			t.Errorf("%s: batched step allocates %v times, want 0", name, allocs)
		}
	}
}

// TestBackwardScratchReused pins the documented Backward contract: the
// returned dL/dx slice is layer-owned scratch, not a fresh allocation.
func TestBackwardScratchReused(t *testing.T) {
	rng := sim.NewRNG(47)
	d := NewDense(4, 3, ReLU, rng)
	x := []float64{0.1, -0.2, 0.3, 0.4}
	dy := []float64{1, -1, 0.5}
	d.Forward(x)
	first := d.Backward(dy)
	d.Forward(x)
	second := d.Backward(dy)
	if &first[0] != &second[0] {
		t.Error("Backward allocated a fresh dx instead of reusing scratch")
	}
	allocs := testing.AllocsPerRun(10, func() {
		d.Forward(x)
		d.Backward(dy)
	})
	if allocs != 0 {
		t.Errorf("per-sample Forward/Backward allocates %v times, want 0", allocs)
	}
}
