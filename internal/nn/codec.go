package nn

import (
	"fmt"
	"math"

	"github.com/deeppower/deeppower/internal/ckpt"
)

// Network topology tags in the binary checkpoint format.
const (
	netMLP     uint8 = 1
	netTwoHead uint8 = 2
)

// validActivation reports whether a serialized activation code is one the
// library defines — an unknown code would silently evaluate as identity.
func validActivation(a Activation) bool {
	return a >= Identity && a <= Tanh
}

// encodeDense appends one layer: shape, activation, weights, biases.
func encodeDense(e *ckpt.Enc, d *Dense) {
	e.Int(d.In)
	e.Int(d.Out)
	e.U8(uint8(d.Act))
	e.F64s(d.W)
	e.F64s(d.B)
}

// decodeDense reads one layer, validating shape, activation code, weight
// array lengths, and finiteness. wantIn, when positive, pins the input width
// so layer chains cannot be mis-wired by a corrupt shape header.
func decodeDense(dec *ckpt.Dec, wantIn int) (*Dense, error) {
	in := dec.Int()
	out := dec.Int()
	act := Activation(dec.U8())
	w := dec.FiniteF64s()
	b := dec.FiniteF64s()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if in <= 0 || out <= 0 {
		return nil, fmt.Errorf("%w: layer shape %d→%d", ckpt.ErrMalformed, in, out)
	}
	if wantIn > 0 && in != wantIn {
		return nil, fmt.Errorf("%w: layer input %d does not chain from previous output %d",
			ckpt.ErrMalformed, in, wantIn)
	}
	if !validActivation(act) {
		return nil, fmt.Errorf("%w: unknown activation code %d", ckpt.ErrMalformed, uint8(act))
	}
	if len(w) != in*out || len(b) != out {
		return nil, fmt.Errorf("%w: layer %d→%d carries %d weights and %d biases",
			ckpt.ErrMalformed, in, out, len(w), len(b))
	}
	return &Dense{
		In: in, Out: out, Act: act,
		W: w, B: b,
		GW: make([]float64, len(w)),
		GB: make([]float64, len(b)),
		x:  make([]float64, in),
		y:  make([]float64, out),
		dx: make([]float64, in),
	}, nil
}

// EncodeDense appends a single layer — for composite topologies (the rl
// critic's state/action concat structure) that no Network topology tag
// expresses.
func EncodeDense(e *ckpt.Enc, d *Dense) { encodeDense(e, d) }

// DecodeDense reads one layer written by EncodeDense, with the same
// validation as network decoding; wantIn > 0 pins the input width.
func DecodeDense(dec *ckpt.Dec, wantIn int) (*Dense, error) { return decodeDense(dec, wantIn) }

// EncodeNetwork appends a network (MLP or TwoHead) to the encoder in the
// binary checkpoint format. Encoding into a reused Enc is allocation-free at
// steady state.
func EncodeNetwork(e *ckpt.Enc, n Network) {
	switch t := n.(type) {
	case *MLP:
		e.U8(netMLP)
		e.Int(len(t.Layers))
		for _, l := range t.Layers {
			encodeDense(e, l)
		}
	case *TwoHead:
		e.U8(netTwoHead)
		e.Int(len(t.Trunk))
		for _, l := range t.Trunk {
			encodeDense(e, l)
		}
		e.Int(len(t.Heads))
		for _, stack := range t.Heads {
			e.Int(len(stack))
			for _, l := range stack {
				encodeDense(e, l)
			}
		}
	default:
		panic(fmt.Sprintf("nn: EncodeNetwork of unknown topology %T", n))
	}
}

// maxLayers bounds declared layer counts so a corrupt header cannot drive a
// decode loop into absurd allocation; real networks here have ≤ 8 layers.
const maxLayers = 1024

// DecodeNetwork reads a network written by EncodeNetwork, validating
// topology, shape chaining, activation codes, and weight finiteness.
func DecodeNetwork(dec *ckpt.Dec) (Network, error) {
	tag := dec.U8()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	switch tag {
	case netMLP:
		return decodeMLP(dec)
	case netTwoHead:
		return decodeTwoHead(dec)
	}
	return nil, fmt.Errorf("%w: unknown network topology tag %d", ckpt.ErrMalformed, tag)
}

// DecodeMLP is DecodeNetwork restricted to the sequential topology.
func DecodeMLP(dec *ckpt.Dec) (*MLP, error) {
	n, err := DecodeNetwork(dec)
	if err != nil {
		return nil, err
	}
	m, ok := n.(*MLP)
	if !ok {
		return nil, fmt.Errorf("%w: expected sequential network, found two-head", ckpt.ErrMalformed)
	}
	return m, nil
}

func decodeCount(dec *ckpt.Dec, what string) (int, error) {
	n := dec.Int()
	if err := dec.Err(); err != nil {
		return 0, err
	}
	if n <= 0 || n > maxLayers {
		return 0, fmt.Errorf("%w: %s count %d", ckpt.ErrMalformed, what, n)
	}
	return n, nil
}

func decodeMLP(dec *ckpt.Dec) (*MLP, error) {
	n, err := decodeCount(dec, "layer")
	if err != nil {
		return nil, err
	}
	m := &MLP{}
	prev := 0
	for i := 0; i < n; i++ {
		l, err := decodeDense(dec, prev)
		if err != nil {
			return nil, err
		}
		m.Layers = append(m.Layers, l)
		prev = l.Out
	}
	return m, nil
}

func decodeTwoHead(dec *ckpt.Dec) (*TwoHead, error) {
	nTrunk := dec.Int()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if nTrunk < 0 || nTrunk > maxLayers {
		return nil, fmt.Errorf("%w: trunk layer count %d", ckpt.ErrMalformed, nTrunk)
	}
	t := &TwoHead{}
	prev := 0
	for i := 0; i < nTrunk; i++ {
		l, err := decodeDense(dec, prev)
		if err != nil {
			return nil, err
		}
		t.Trunk = append(t.Trunk, l)
		prev = l.Out
	}
	trunkOut := prev
	nHeads, err := decodeCount(dec, "head")
	if err != nil {
		return nil, err
	}
	for h := 0; h < nHeads; h++ {
		depth, err := decodeCount(dec, "head layer")
		if err != nil {
			return nil, err
		}
		var stack []*Dense
		prev = trunkOut
		for i := 0; i < depth; i++ {
			l, err := decodeDense(dec, prev)
			if err != nil {
				return nil, err
			}
			stack = append(stack, l)
			prev = l.Out
		}
		if stack[len(stack)-1].Out != 1 {
			return nil, fmt.Errorf("%w: head %d ends in width %d, want 1",
				ckpt.ErrMalformed, h, stack[len(stack)-1].Out)
		}
		t.Heads = append(t.Heads, stack)
	}
	t.out = make([]float64, nHeads)
	t.finish()
	return t, nil
}

// EncodeState appends the optimizer's full state — step count and
// first/second moments for every parameter — so a restored trainer resumes
// with bit-identical update dynamics.
func (a *Adam) EncodeState(e *ckpt.Enc) {
	e.Int(a.t)
	e.F64(a.MaxGradNorm)
	e.Int(len(a.layers))
	for li := range a.layers {
		e.F64s(a.mw[li])
		e.F64s(a.vw[li])
		e.F64s(a.mb[li])
		e.F64s(a.vb[li])
	}
}

// RestoreState reads state written by EncodeState into an optimizer already
// constructed over the same layer set, validating every moment array length.
func (a *Adam) RestoreState(dec *ckpt.Dec) error {
	t := dec.Int()
	maxNorm := dec.FiniteF64()
	n := dec.Int()
	if err := dec.Err(); err != nil {
		return err
	}
	if t < 0 {
		return fmt.Errorf("%w: adam step count %d", ckpt.ErrMalformed, t)
	}
	if n != len(a.layers) {
		return fmt.Errorf("%w: adam state spans %d layers, optimizer has %d",
			ckpt.ErrMalformed, n, len(a.layers))
	}
	for li, l := range a.layers {
		mw := dec.FiniteF64s()
		vw := dec.FiniteF64s()
		mb := dec.FiniteF64s()
		vb := dec.FiniteF64s()
		if err := dec.Err(); err != nil {
			return err
		}
		if len(mw) != len(l.W) || len(vw) != len(l.W) || len(mb) != len(l.B) || len(vb) != len(l.B) {
			return fmt.Errorf("%w: adam moment shapes for layer %d do not match %d→%d",
				ckpt.ErrMalformed, li, l.In, l.Out)
		}
		copy(a.mw[li], mw)
		copy(a.vw[li], vw)
		copy(a.mb[li], mb)
		copy(a.vb[li], vb)
	}
	a.t = t
	a.MaxGradNorm = maxNorm
	return nil
}

// CheckFinite verifies every weight and bias in the network is finite —
// the last line of defense before a loaded policy starts actuating
// frequencies.
func CheckFinite(n Network) error {
	for li, l := range n.Params() {
		for _, v := range l.W {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: weight in layer %d", ckpt.ErrNonFinite, li)
			}
		}
		for _, v := range l.B {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("%w: bias in layer %d", ckpt.ErrNonFinite, li)
			}
		}
	}
	return nil
}
