package nn

import (
	"bytes"
	"errors"
	"math"
	"strings"
	"testing"

	"github.com/deeppower/deeppower/internal/ckpt"
	"github.com/deeppower/deeppower/internal/sim"
)

func netsEqual(a, b Network) bool {
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		return false
	}
	for i := range pa {
		if pa[i].In != pb[i].In || pa[i].Out != pb[i].Out || pa[i].Act != pb[i].Act {
			return false
		}
		for j := range pa[i].W {
			if pa[i].W[j] != pb[i].W[j] {
				return false
			}
		}
		for j := range pa[i].B {
			if pa[i].B[j] != pb[i].B[j] {
				return false
			}
		}
	}
	return true
}

func TestNetworkCodecRoundTrip(t *testing.T) {
	rng := sim.NewRNG(11)
	nets := []Network{
		NewMLP([]int{4, 16, 3}, ReLU, Identity, rng),
		NewMLP([]int{2, 2}, ReLU, Tanh, rng),
		NewPaperActor(8, rng),
		NewTwoHead(5, nil, []int{4}, 3, Sigmoid, rng),
	}
	for _, n := range nets {
		var e ckpt.Enc
		EncodeNetwork(&e, n)
		dec := ckpt.NewDec(e.Bytes())
		got, err := DecodeNetwork(dec)
		if err != nil {
			t.Fatalf("decode %T: %v", n, err)
		}
		if err := dec.Finish(); err != nil {
			t.Fatalf("trailing bytes after %T: %v", n, err)
		}
		if !netsEqual(n, got) {
			t.Fatalf("round trip of %T altered weights", n)
		}
		// The decoded network must be functional, not just structurally equal.
		x := make([]float64, n.InDim())
		for i := range x {
			x[i] = 0.1 * float64(i+1)
		}
		want := append([]float64(nil), n.Forward(x)...)
		have := got.Forward(x)
		for i := range want {
			if want[i] != have[i] {
				t.Fatalf("%T output %d: %v != %v", n, i, have[i], want[i])
			}
		}
	}
}

func TestDecodeNetworkRejectsGarbage(t *testing.T) {
	rng := sim.NewRNG(3)
	base := func() []byte {
		var e ckpt.Enc
		EncodeNetwork(&e, NewMLP([]int{3, 4, 2}, ReLU, Identity, rng))
		return append([]byte(nil), e.Bytes()...)
	}

	t.Run("truncated", func(t *testing.T) {
		b := base()
		if _, err := DecodeNetwork(ckpt.NewDec(b[:len(b)/2])); !errors.Is(err, ckpt.ErrTruncated) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("unknown topology tag", func(t *testing.T) {
		b := base()
		b[0] = 99
		if _, err := DecodeNetwork(ckpt.NewDec(b)); !errors.Is(err, ckpt.ErrMalformed) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("non-finite weight", func(t *testing.T) {
		n := NewMLP([]int{2, 2}, ReLU, Identity, rng)
		n.Layers[0].W[1] = math.NaN()
		var e ckpt.Enc
		EncodeNetwork(&e, n)
		if _, err := DecodeNetwork(ckpt.NewDec(e.Bytes())); !errors.Is(err, ckpt.ErrNonFinite) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("broken chain", func(t *testing.T) {
		n := NewMLP([]int{2, 3, 1}, ReLU, Identity, rng)
		var e ckpt.Enc
		e.U8(1) // netMLP
		e.Int(2)
		encodeDense(&e, n.Layers[0]) // 2→3
		bad := NewDense(5, 1, Identity, rng)
		encodeDense(&e, bad) // 5→1 cannot chain from 3
		if _, err := DecodeNetwork(ckpt.NewDec(e.Bytes())); !errors.Is(err, ckpt.ErrMalformed) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("empty input", func(t *testing.T) {
		if _, err := DecodeNetwork(ckpt.NewDec(nil)); err == nil {
			t.Fatal("accepted empty input")
		}
	})
}

func TestAdamStateRoundTrip(t *testing.T) {
	rng := sim.NewRNG(21)
	build := func(seed int64) (*MLP, *Adam) {
		r := sim.NewRNG(seed)
		m := NewMLP([]int{3, 8, 2}, ReLU, Identity, r)
		return m, NewAdam(m.Params(), 1e-3)
	}
	m1, a1 := build(5)
	// Drive a few steps so the moments are nontrivial.
	x := []float64{0.3, -0.2, 0.9}
	target := []float64{1, -1}
	grad := make([]float64, 2)
	for step := 0; step < 7; step++ {
		y := m1.Forward(x)
		MSE(y, target, grad)
		m1.Backward(grad)
		a1.Step()
	}

	var e ckpt.Enc
	EncodeNetwork(&e, m1)
	a1.EncodeState(&e)

	dec := ckpt.NewDec(e.Bytes())
	m2, err := DecodeMLP(dec)
	if err != nil {
		t.Fatal(err)
	}
	a2 := NewAdam(m2.Params(), 1e-3)
	if err := a2.RestoreState(dec); err != nil {
		t.Fatal(err)
	}
	if err := dec.Finish(); err != nil {
		t.Fatal(err)
	}

	// Continued training must be bitwise identical.
	for step := 0; step < 9; step++ {
		y1 := m1.Forward(x)
		MSE(y1, target, grad)
		m1.Backward(grad)
		a1.Step()

		y2 := m2.Forward(x)
		MSE(y2, target, grad)
		m2.Backward(grad)
		a2.Step()
	}
	if !netsEqual(m1, m2) {
		t.Fatal("restored optimizer diverged from original")
	}
	_ = rng

	// Mismatched layer sets must be rejected.
	m3 := NewMLP([]int{3, 4, 2}, ReLU, Identity, sim.NewRNG(6))
	a3 := NewAdam(m3.Params(), 1e-3)
	e.Reset()
	a1.EncodeState(&e)
	if err := a3.RestoreState(ckpt.NewDec(e.Bytes())); !errors.Is(err, ckpt.ErrMalformed) {
		t.Fatalf("shape mismatch: got %v", err)
	}
}

func TestCheckFinite(t *testing.T) {
	rng := sim.NewRNG(2)
	n := NewMLP([]int{2, 2}, ReLU, Identity, rng)
	if err := CheckFinite(n); err != nil {
		t.Fatalf("fresh network: %v", err)
	}
	n.Layers[0].B[0] = math.Inf(1)
	if err := CheckFinite(n); !errors.Is(err, ckpt.ErrNonFinite) {
		t.Fatalf("got %v", err)
	}
}

// TestJSONLoadersHardened exercises the satellite hardening: descriptive
// errors (never panics) on truncated, empty, and malformed input, and
// rejection of NaN/Inf weights.
func TestJSONLoadersHardened(t *testing.T) {
	cases := []string{
		"",
		"{",
		"null",
		"{}",
		`{"layers": []}`,
		`{"layers": [{"in": 0, "out": 1, "w": [], "b": [0]}]}`,
		`{"layers": [{"in": 2, "out": 1, "act": 99, "w": [1,2], "b": [0]}]}`,
		`{"layers": [{"in": 2, "out": 1, "w": [1], "b": [0]}]}`,
		// Broken chain: 2→1 followed by a layer expecting 3 inputs.
		`{"layers": [{"in": 2, "out": 1, "w": [1,2], "b": [0]}, {"in": 3, "out": 1, "w": [1,2,3], "b": [0]}]}`,
		`{"heads": []}`,
		`{"heads": [[]]}`,
		`{"heads": [[{"in": 2, "out": 2, "w": [1,2,3,4], "b": [0,0]}]]}`, // head not width 1
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c)); err == nil {
			t.Errorf("Load accepted %q", c)
		}
		if _, err := LoadTwoHead(strings.NewReader(c)); err == nil {
			t.Errorf("LoadTwoHead accepted %q", c)
		}
		if _, err := LoadAny(strings.NewReader(c)); err == nil {
			t.Errorf("LoadAny accepted %q", c)
		}
	}

	// A good snapshot with a NaN smuggled in via raw JSON is impossible
	// (encoding/json rejects NaN at both ends), so corrupt a valid snapshot
	// in float-text form instead.
	rng := sim.NewRNG(4)
	var buf bytes.Buffer
	if err := NewMLP([]int{2, 2}, ReLU, Identity, rng).Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	if _, err := Load(strings.NewReader(good)); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}

	// Round-trip through LoadAny still works for both topologies.
	buf.Reset()
	actor := NewPaperActor(8, rng)
	if err := actor.Save(&buf); err != nil {
		t.Fatal(err)
	}
	n, err := LoadAny(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := n.(*TwoHead); !ok {
		t.Fatalf("LoadAny picked %T for a two-head snapshot", n)
	}
}
