package nn

import (
	"encoding/json"
	"fmt"
	"io"

	"github.com/deeppower/deeppower/internal/sim"
)

// TwoHead is the actor topology the paper describes in §4.6 and Fig. 3:
// "the input state passes the first shared fully-connected layer and then
// gets through two separate fully-connected layers", one head per action
// component (BaseFreq, ScalingCoef), each ending in a sigmoid.
//
// The default geometry — a shared 8→32→24 trunk and two 24→16→1 heads —
// lands at ~1.9k parameters, matching the paper's quoted ~2096 (§5.5).
type TwoHead struct {
	Trunk []*Dense   // shared layers
	Heads [][]*Dense // one stack per output component

	trunkOut []float64
	out      []float64
	params   []*Dense  // cached Params() result (layer set never changes)
	headDy   []float64 // len-1 per-head backprop seed scratch

	// Batched-path scratch ([batch×dim] row-major), grown on demand.
	trunkOutB []float64
	outB      []float64
	headDyB   []float64
	bn        int
}

// NewTwoHead builds a two-headed network: in → trunk sizes → per-head sizes
// → 1 output per head, ReLU throughout and the given activation on each
// head's final layer.
func NewTwoHead(in int, trunk, head []int, heads int, outAct Activation, rng *sim.RNG) *TwoHead {
	if heads < 1 {
		panic("nn: TwoHead needs at least one head")
	}
	t := &TwoHead{out: make([]float64, heads)}
	prev := in
	for _, size := range trunk {
		t.Trunk = append(t.Trunk, NewDense(prev, size, ReLU, rng))
		prev = size
	}
	trunkDim := prev
	for h := 0; h < heads; h++ {
		var stack []*Dense
		prev = trunkDim
		for _, size := range head {
			stack = append(stack, NewDense(prev, size, ReLU, rng))
			prev = size
		}
		stack = append(stack, NewDense(prev, 1, outAct, rng))
		t.Heads = append(t.Heads, stack)
	}
	t.finish()
	return t
}

// finish allocates the fixed-size scratch and the cached parameter list once
// the layer topology is known — so first-call latency matches steady state
// and the hot path never allocates.
func (t *TwoHead) finish() {
	t.trunkOut = make([]float64, t.trunkDim())
	t.headDy = make([]float64, 1)
	t.params = t.params[:0]
	t.params = append(t.params, t.Trunk...)
	for _, stack := range t.Heads {
		t.params = append(t.params, stack...)
	}
}

// trunkDim is the width of the shared representation the heads consume.
func (t *TwoHead) trunkDim() int {
	if len(t.Trunk) > 0 {
		return t.Trunk[len(t.Trunk)-1].Out
	}
	return t.Heads[0][0].In
}

// NewPaperActor returns the actor of §4.6: state dim in, two sigmoid heads,
// shared 32→24 trunk, 16-unit heads.
func NewPaperActor(in int, rng *sim.RNG) *TwoHead {
	return NewTwoHead(in, []int{32, 24}, []int{16}, 2, Sigmoid, rng)
}

// InDim implements Network.
func (t *TwoHead) InDim() int {
	if len(t.Trunk) > 0 {
		return t.Trunk[0].In
	}
	return t.Heads[0][0].In
}

// OutDim implements Network.
func (t *TwoHead) OutDim() int { return len(t.Heads) }

// Forward implements Network.
func (t *TwoHead) Forward(x []float64) []float64 {
	for _, l := range t.Trunk {
		x = l.Forward(x)
	}
	// Each head must cache its own input; the trunk output is shared.
	copy(t.trunkOut, x)
	for h, stack := range t.Heads {
		y := t.trunkOut
		for _, l := range stack {
			y = l.Forward(y)
		}
		t.out[h] = y[0]
	}
	return t.out
}

// Backward implements Network: dy has one gradient per head output.
func (t *TwoHead) Backward(dy []float64) []float64 {
	if len(dy) != len(t.Heads) {
		panic(fmt.Sprintf("nn: TwoHead.Backward gradient %d, want %d", len(dy), len(t.Heads)))
	}
	// Heads must be re-forwarded if another head ran after them; with the
	// shared trunk output cached, replay each head before backprop so its
	// layer caches are fresh.
	var dTrunkOut []float64
	for h, stack := range t.Heads {
		y := t.trunkOut
		for _, l := range stack {
			y = l.Forward(y)
		}
		t.headDy[0] = dy[h]
		g := t.headDy
		for i := len(stack) - 1; i >= 0; i-- {
			g = stack[i].Backward(g)
		}
		if dTrunkOut == nil {
			dTrunkOut = g
		} else {
			for i := range dTrunkOut {
				dTrunkOut[i] += g[i]
			}
		}
	}
	g := dTrunkOut
	for i := len(t.Trunk) - 1; i >= 0; i-- {
		g = t.Trunk[i].Backward(g)
	}
	return g
}

// ForwardBatch implements Network over n row-major [n×InDim] inputs; the
// returned [n×OutDim] slice is an internal buffer reused between calls.
func (t *TwoHead) ForwardBatch(x []float64, n int) []float64 {
	for _, l := range t.Trunk {
		x = l.ForwardBatch(x, n)
	}
	td := t.trunkDim()
	if cap(t.trunkOutB) < n*td {
		t.trunkOutB = make([]float64, n*td)
	}
	t.trunkOutB = t.trunkOutB[:n*td]
	copy(t.trunkOutB, x[:n*td])
	heads := len(t.Heads)
	if cap(t.outB) < n*heads {
		t.outB = make([]float64, n*heads)
		t.headDyB = make([]float64, n)
	}
	t.outB = t.outB[:n*heads]
	t.headDyB = t.headDyB[:n]
	t.bn = n
	for h, stack := range t.Heads {
		y := t.trunkOutB
		for _, l := range stack {
			y = l.ForwardBatch(y, n)
		}
		for b := 0; b < n; b++ {
			t.outB[b*heads+h] = y[b]
		}
	}
	return t.outB
}

// BackwardBatch implements Network: dy is [n×OutDim] for the most recent
// ForwardBatch. Heads are replayed batch-wise before backprop (mirroring
// Backward), and the trunk gradient sums head contributions in head order,
// so the result is bit-identical to n per-sample Forward/Backward pairs.
func (t *TwoHead) BackwardBatch(dy []float64, n int) []float64 {
	if n != t.bn {
		panic(fmt.Sprintf("nn: TwoHead.BackwardBatch rows %d, last ForwardBatch had %d", n, t.bn))
	}
	heads := len(t.Heads)
	if len(dy) != n*heads {
		panic(fmt.Sprintf("nn: TwoHead.BackwardBatch gradient %d, want %d rows × %d", len(dy), n, heads))
	}
	var dTrunk []float64
	for h, stack := range t.Heads {
		y := t.trunkOutB
		for _, l := range stack {
			y = l.ForwardBatch(y, n)
		}
		for b := 0; b < n; b++ {
			t.headDyB[b] = dy[b*heads+h]
		}
		g := t.headDyB
		for i := len(stack) - 1; i >= 0; i-- {
			g = stack[i].BackwardBatch(g, n)
		}
		if dTrunk == nil {
			dTrunk = g
		} else {
			for i := range dTrunk {
				dTrunk[i] += g[i]
			}
		}
	}
	g := dTrunk
	for i := len(t.Trunk) - 1; i >= 0; i-- {
		g = t.Trunk[i].BackwardBatch(g, n)
	}
	return g
}

// ZeroGrad implements Network.
func (t *TwoHead) ZeroGrad() {
	for _, l := range t.Params() {
		l.ZeroGrad()
	}
}

// Params implements Network. The returned slice is cached (the layer set
// is fixed at construction) so hot paths can call it allocation-free.
func (t *TwoHead) Params() []*Dense { return t.params }

// NumParams implements Network.
func (t *TwoHead) NumParams() int {
	n := 0
	for _, l := range t.Params() {
		n += l.NumParams()
	}
	return n
}

// CloneNet implements Network.
func (t *TwoHead) CloneNet() Network {
	c := &TwoHead{out: make([]float64, len(t.out))}
	for _, l := range t.Trunk {
		c.Trunk = append(c.Trunk, l.Clone())
	}
	for _, stack := range t.Heads {
		var cs []*Dense
		for _, l := range stack {
			cs = append(cs, l.Clone())
		}
		c.Heads = append(c.Heads, cs)
	}
	c.finish()
	return c
}

// SoftUpdateNet implements Network. src must be a *TwoHead of equal shape.
func (t *TwoHead) SoftUpdateNet(src Network, tau float64) {
	s := src.(*TwoHead)
	mine, theirs := t.Params(), s.Params()
	if len(mine) != len(theirs) {
		panic("nn: TwoHead soft update shape mismatch")
	}
	for i := range mine {
		mine[i].SoftUpdateFrom(theirs[i], tau)
	}
}

// twoHeadSnapshot serializes a TwoHead.
type twoHeadSnapshot struct {
	Trunk []layerSnapshot   `json:"trunk"`
	Heads [][]layerSnapshot `json:"heads"`
}

// Save implements Network.
func (t *TwoHead) Save(w io.Writer) error {
	var s twoHeadSnapshot
	for _, l := range t.Trunk {
		s.Trunk = append(s.Trunk, layerSnapshot{In: l.In, Out: l.Out, Act: l.Act, W: l.W, B: l.B})
	}
	for _, stack := range t.Heads {
		var hs []layerSnapshot
		for _, l := range stack {
			hs = append(hs, layerSnapshot{In: l.In, Out: l.Out, Act: l.Act, W: l.W, B: l.B})
		}
		s.Heads = append(s.Heads, hs)
	}
	return json.NewEncoder(w).Encode(s)
}

// LoadTwoHead reads a network saved by TwoHead.Save. Malformed input —
// truncated, empty, mis-chained, unknown activations, or non-finite weights —
// yields a descriptive error; LoadTwoHead never panics.
func LoadTwoHead(r io.Reader) (*TwoHead, error) {
	var s twoHeadSnapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: decoding two-head network: %w", err)
	}
	if len(s.Heads) == 0 {
		return nil, fmt.Errorf("nn: two-head snapshot has no heads")
	}
	t := &TwoHead{out: make([]float64, len(s.Heads))}
	prev := 0
	for i, ls := range s.Trunk {
		l, err := restoreLayer(ls, prev)
		if err != nil {
			return nil, fmt.Errorf("nn: trunk layer %d: %w", i, err)
		}
		t.Trunk = append(t.Trunk, l)
		prev = l.Out
	}
	trunkOut := prev
	for h, hs := range s.Heads {
		if len(hs) == 0 {
			return nil, fmt.Errorf("nn: two-head snapshot head %d is empty", h)
		}
		var stack []*Dense
		prev = trunkOut
		for i, ls := range hs {
			l, err := restoreLayer(ls, prev)
			if err != nil {
				return nil, fmt.Errorf("nn: head %d layer %d: %w", h, i, err)
			}
			stack = append(stack, l)
			prev = l.Out
		}
		if stack[len(stack)-1].Out != 1 {
			return nil, fmt.Errorf("nn: two-head snapshot head %d must end in width 1", h)
		}
		t.Heads = append(t.Heads, stack)
	}
	t.finish()
	return t, nil
}

var _ Network = (*TwoHead)(nil)
