package nn

import (
	"encoding/json"
	"fmt"
	"io"
	"math"

	"github.com/deeppower/deeppower/internal/sim"
)

// MLP is a stack of Dense layers.
type MLP struct {
	Layers []*Dense
}

// NewMLP builds a network with the given layer sizes, hidden activation for
// every layer but the last, and out activation on the final layer.
// sizes must contain at least [in, out].
func NewMLP(sizes []int, hidden, out Activation, rng *sim.RNG) *MLP {
	if len(sizes) < 2 {
		panic("nn: MLP needs at least input and output sizes")
	}
	m := &MLP{}
	for i := 0; i+1 < len(sizes); i++ {
		act := hidden
		if i+2 == len(sizes) {
			act = out
		}
		m.Layers = append(m.Layers, NewDense(sizes[i], sizes[i+1], act, rng))
	}
	return m
}

// Forward evaluates the network. The returned slice aliases the last
// layer's buffer; copy it to retain across calls.
func (m *MLP) Forward(x []float64) []float64 {
	for _, l := range m.Layers {
		x = l.Forward(x)
	}
	return x
}

// Backward propagates dL/dy of the most recent Forward through the network,
// accumulating parameter gradients, and returns dL/dinput.
func (m *MLP) Backward(dy []float64) []float64 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].Backward(dy)
	}
	return dy
}

// ForwardBatch evaluates the network on n row-major [n×InDim] inputs. The
// returned [n×OutDim] slice aliases the last layer's batch buffer.
func (m *MLP) ForwardBatch(x []float64, n int) []float64 {
	for _, l := range m.Layers {
		x = l.ForwardBatch(x, n)
	}
	return x
}

// BackwardBatch propagates dL/dy of the most recent ForwardBatch ([n×OutDim],
// row-major) through the network, accumulating parameter gradients, and
// returns dL/dinput as [n×InDim]. Bit-identical to n sequential
// Forward/Backward pairs (see Dense.BackwardBatch).
func (m *MLP) BackwardBatch(dy []float64, n int) []float64 {
	for i := len(m.Layers) - 1; i >= 0; i-- {
		dy = m.Layers[i].BackwardBatch(dy, n)
	}
	return dy
}

// ZeroGrad clears gradients on every layer.
func (m *MLP) ZeroGrad() {
	for _, l := range m.Layers {
		l.ZeroGrad()
	}
}

// NumParams returns the total number of trainable parameters.
func (m *MLP) NumParams() int {
	n := 0
	for _, l := range m.Layers {
		n += l.NumParams()
	}
	return n
}

// InDim and OutDim report the network's input and output widths.
func (m *MLP) InDim() int { return m.Layers[0].In }

// OutDim reports the network's output width.
func (m *MLP) OutDim() int { return m.Layers[len(m.Layers)-1].Out }

// Clone deep-copies the network.
func (m *MLP) Clone() *MLP {
	c := &MLP{}
	for _, l := range m.Layers {
		c.Layers = append(c.Layers, l.Clone())
	}
	return c
}

// CopyFrom overwrites weights with src's (hard target update).
func (m *MLP) CopyFrom(src *MLP) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: CopyFrom layer count mismatch")
	}
	for i, l := range m.Layers {
		l.CopyFrom(src.Layers[i])
	}
}

// SoftUpdateFrom blends src into the network: θ ← τ·θ_src + (1-τ)·θ.
func (m *MLP) SoftUpdateFrom(src *MLP, tau float64) {
	if len(m.Layers) != len(src.Layers) {
		panic("nn: SoftUpdateFrom layer count mismatch")
	}
	for i, l := range m.Layers {
		l.SoftUpdateFrom(src.Layers[i], tau)
	}
}

// snapshot is the serialized form of a network.
type snapshot struct {
	Layers []layerSnapshot `json:"layers"`
}

type layerSnapshot struct {
	In  int        `json:"in"`
	Out int        `json:"out"`
	Act Activation `json:"act"`
	W   []float64  `json:"w"`
	B   []float64  `json:"b"`
}

// Save writes the network weights as JSON.
func (m *MLP) Save(w io.Writer) error {
	var s snapshot
	for _, l := range m.Layers {
		s.Layers = append(s.Layers, layerSnapshot{
			In: l.In, Out: l.Out, Act: l.Act, W: l.W, B: l.B,
		})
	}
	return json.NewEncoder(w).Encode(s)
}

// restoreLayer validates a layer snapshot — shape, activation code, weight
// array lengths, chaining against the previous layer's output width
// (wantIn > 0), and finiteness — and builds the Dense. JSON NaN/Inf cannot
// arrive through the decoder, but a hand-edited or corrupted snapshot could
// carry huge-but-finite garbage; the finiteness sweep still guards values
// injected as strings elsewhere and keeps the JSON path's contract identical
// to the binary path's.
func restoreLayer(ls layerSnapshot, wantIn int) (*Dense, error) {
	if ls.In <= 0 || ls.Out <= 0 {
		return nil, fmt.Errorf("nn: malformed layer shape %d→%d in snapshot", ls.In, ls.Out)
	}
	if wantIn > 0 && ls.In != wantIn {
		return nil, fmt.Errorf("nn: layer input %d does not chain from previous output %d", ls.In, wantIn)
	}
	if !validActivation(ls.Act) {
		return nil, fmt.Errorf("nn: unknown activation code %d in snapshot", int(ls.Act))
	}
	if len(ls.W) != ls.In*ls.Out || len(ls.B) != ls.Out {
		return nil, fmt.Errorf("nn: layer %d→%d carries %d weights and %d biases",
			ls.In, ls.Out, len(ls.W), len(ls.B))
	}
	for _, v := range ls.W {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("nn: non-finite weight in %d→%d layer", ls.In, ls.Out)
		}
	}
	for _, v := range ls.B {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, fmt.Errorf("nn: non-finite bias in %d→%d layer", ls.In, ls.Out)
		}
	}
	return &Dense{
		In: ls.In, Out: ls.Out, Act: ls.Act,
		W: ls.W, B: ls.B,
		GW: make([]float64, len(ls.W)),
		GB: make([]float64, len(ls.B)),
		x:  make([]float64, ls.In),
		y:  make([]float64, ls.Out),
		dx: make([]float64, ls.In),
	}, nil
}

// Load reads a network saved by Save. Malformed input — truncated, empty,
// mis-shaped, unknown activations, or non-finite weights — yields a
// descriptive error; Load never panics.
func Load(r io.Reader) (*MLP, error) {
	var s snapshot
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("nn: decoding network: %w", err)
	}
	if len(s.Layers) == 0 {
		return nil, fmt.Errorf("nn: empty network snapshot")
	}
	m := &MLP{}
	prev := 0
	for i, ls := range s.Layers {
		d, err := restoreLayer(ls, prev)
		if err != nil {
			return nil, fmt.Errorf("nn: layer %d: %w", i, err)
		}
		m.Layers = append(m.Layers, d)
		prev = d.Out
	}
	return m, nil
}

// MSE returns the mean squared error between pred and target and writes
// dL/dpred into grad (all three must share a length).
func MSE(pred, target, grad []float64) float64 {
	if len(pred) != len(target) || len(grad) != len(pred) {
		panic("nn: MSE length mismatch")
	}
	loss := 0.0
	n := float64(len(pred))
	for i := range pred {
		d := pred[i] - target[i]
		loss += d * d / n
		grad[i] = 2 * d / n
	}
	return loss
}
