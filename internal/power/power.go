// Package power models the socket power the paper reads from Intel RAPL.
//
// RAPL is, from the framework's point of view, an energy integrator: the
// evaluation reads the socket energy counter before and after an interval and
// divides by its length. This package provides (i) an analytic CMOS power
// model P(f) that reproduces the DVFS power/performance trade-off, and
// (ii) a Meter that integrates it into an energy counter with RAPL-like
// window queries.
package power

import (
	"fmt"
	"math"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
)

// Model describes socket power as a function of per-core frequency and
// activity:
//
//	P_core_active(f) = LeakPerCore + DynCoef · f · V(f)²      (CMOS dynamic power)
//	P_core_idle(f)   = LeakPerCore + IdleFrac · DynCoef · f · V(f)²
//	V(f)             = VoltBase + VoltSlope · f                (DVFS voltage curve)
//	P_socket         = Uncore + Σ_cores P_core
//
// Voltage rising with frequency is what makes DVFS super-linear in power and
// is the entire reason frequency scaling saves energy.
type Model struct {
	// Uncore is the frequency-independent package power: memory controller,
	// LLC, fabric (watts).
	Uncore float64
	// LeakPerCore is static leakage per core (watts).
	LeakPerCore float64
	// DynCoef scales dynamic power: watts per (GHz · V²).
	DynCoef float64
	// VoltBase and VoltSlope define V(f) = VoltBase + VoltSlope·f, f in GHz.
	VoltBase, VoltSlope float64
	// IdleFrac is the fraction of dynamic power an idle (clock-gated but
	// not power-gated) core burns at its current operating point.
	IdleFrac float64
}

// DefaultModel returns coefficients loosely calibrated to one 20-core socket
// of a Xeon Gold 5218R (TDP 125 W): roughly 14 W per core fully active at
// turbo, 1.9 W at the 0.8 GHz floor, 18 W uncore.
func DefaultModel() Model {
	return Model{
		Uncore:      18.0,
		LeakPerCore: 0.4,
		DynCoef:     3.0,
		VoltBase:    0.60,
		VoltSlope:   0.25,
		IdleFrac:    0.12,
	}
}

// Validate reports an error for non-physical coefficients.
func (m Model) Validate() error {
	switch {
	case m.Uncore < 0 || m.LeakPerCore < 0 || m.DynCoef <= 0:
		return fmt.Errorf("power: non-positive coefficients: %+v", m)
	case m.VoltBase <= 0 || m.VoltSlope < 0:
		return fmt.Errorf("power: invalid voltage curve: %+v", m)
	case m.IdleFrac < 0 || m.IdleFrac > 1:
		return fmt.Errorf("power: IdleFrac %v outside [0,1]", m.IdleFrac)
	}
	return nil
}

// Voltage returns the operating voltage at frequency f.
func (m Model) Voltage(f cpu.Freq) float64 {
	return m.VoltBase + m.VoltSlope*float64(f)
}

// CorePower returns the power draw of one core at frequency f.
func (m Model) CorePower(f cpu.Freq, active bool) float64 {
	v := m.Voltage(f)
	dyn := m.DynCoef * float64(f) * v * v
	if !active {
		dyn *= m.IdleFrac
	}
	return m.LeakPerCore + dyn
}

// CorePowerScaled is CorePower with per-class curve scaling: dynScale
// multiplies the dynamic coefficient and leakScale the static leakage. With
// both factors 1 it is numerically identical to CorePower — the homogeneous
// fast path. Heterogeneous core classes (cpu.Class) carry their factors as
// plain floats so this package stays the only one that knows the curve.
func (m Model) CorePowerScaled(f cpu.Freq, active bool, dynScale, leakScale float64) float64 {
	v := m.Voltage(f)
	dyn := m.DynCoef * dynScale * float64(f) * v * v
	if !active {
		dyn *= m.IdleFrac
	}
	return m.LeakPerCore*leakScale + dyn
}

// SocketPower returns total package power given each core's frequency and
// activity. The two slices must have equal length.
func (m Model) SocketPower(freqs []cpu.Freq, active []bool) float64 {
	if len(freqs) != len(active) {
		panic("power: freqs/active length mismatch")
	}
	p := m.Uncore
	for i, f := range freqs {
		p += m.CorePower(f, active[i])
	}
	return p
}

// EnergyFor returns the energy (joules) one core consumes running at f for d.
func (m Model) EnergyFor(f cpu.Freq, active bool, d sim.Time) float64 {
	return m.CorePower(f, active) * d.Seconds()
}

// Meter is a RAPL-like socket energy counter. Components report power-state
// intervals through Accrue; experiments read energy deltas exactly the way
// the paper reads the MSR_PKG_ENERGY_STATUS counter.
type Meter struct {
	energy  float64  // joules since construction
	last    sim.Time // end of the last accrued interval
	samples []sample // optional window series for time plots
	record  bool
}

type sample struct {
	at    sim.Time
	joule float64 // cumulative
}

// NewMeter returns a meter whose counter starts at zero.
func NewMeter() *Meter { return &Meter{} }

// EnableSeries makes the meter retain a cumulative-energy series for
// time-resolved plots (Fig. 8). Off by default to keep long runs lean.
func (mt *Meter) EnableSeries() { mt.record = true }

// Accrue adds watts·(to-from) joules to the counter. Intervals must be
// non-negative but may be reported out of order by different components.
func (mt *Meter) Accrue(from, to sim.Time, watts float64) {
	if to < from {
		panic(fmt.Sprintf("power: Accrue interval reversed: %v > %v", from, to))
	}
	if watts < 0 {
		panic("power: negative power")
	}
	mt.energy += watts * (to - from).Seconds()
	if to > mt.last {
		mt.last = to
	}
	if mt.record {
		mt.samples = append(mt.samples, sample{at: to, joule: mt.energy})
	}
}

// Energy returns cumulative joules.
func (mt *Meter) Energy() float64 { return mt.energy }

// LastUpdate returns the end of the latest accrued interval.
func (mt *Meter) LastUpdate() sim.Time { return mt.last }

// WindowPower returns the average power over [from, to] using the recorded
// series; it requires EnableSeries. Returns NaN when the window is empty.
func (mt *Meter) WindowPower(from, to sim.Time) float64 {
	if !mt.record || to <= from {
		return math.NaN()
	}
	eFrom := mt.energyAt(from)
	eTo := mt.energyAt(to)
	return (eTo - eFrom) / (to - from).Seconds()
}

func (mt *Meter) energyAt(t sim.Time) float64 {
	// Binary search over cumulative samples.
	lo, hi := 0, len(mt.samples)
	for lo < hi {
		mid := (lo + hi) / 2
		if mt.samples[mid].at <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return mt.samples[lo-1].joule
}
