package power

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
)

func TestDefaultModelValid(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejectsBad(t *testing.T) {
	bad := []Model{
		{Uncore: -1, DynCoef: 1, VoltBase: 1},
		{DynCoef: 0, VoltBase: 1},
		{DynCoef: 1, VoltBase: 0},
		{DynCoef: 1, VoltBase: 1, IdleFrac: 2},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d: expected error for %+v", i, m)
		}
	}
}

func TestPowerIncreasesWithFrequency(t *testing.T) {
	m := DefaultModel()
	last := 0.0
	for _, f := range cpu.DefaultLadder().Levels() {
		p := m.CorePower(f, true)
		if p <= last {
			t.Fatalf("power not strictly increasing at %v: %v <= %v", f, p, last)
		}
		last = p
	}
}

func TestPowerSuperLinear(t *testing.T) {
	// Halving frequency should save more than half the dynamic power,
	// because voltage drops too. This is the core DVFS premise.
	m := DefaultModel()
	pHigh := m.CorePower(2.0, true) - m.LeakPerCore
	pLow := m.CorePower(1.0, true) - m.LeakPerCore
	if pLow >= pHigh/2 {
		t.Errorf("P(1.0)=%v not super-linearly below P(2.0)=%v", pLow, pHigh)
	}
}

func TestIdleBelowActive(t *testing.T) {
	m := DefaultModel()
	f := func(raw float64) bool {
		fr := cpu.Freq(0.8 + math.Mod(math.Abs(raw), 2.0))
		return m.CorePower(fr, false) < m.CorePower(fr, true)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSocketPower(t *testing.T) {
	m := DefaultModel()
	freqs := []cpu.Freq{2.1, 2.1}
	active := []bool{true, false}
	want := m.Uncore + m.CorePower(2.1, true) + m.CorePower(2.1, false)
	if got := m.SocketPower(freqs, active); math.Abs(got-want) > 1e-12 {
		t.Errorf("SocketPower = %v, want %v", got, want)
	}
}

func TestSocketPowerMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("mismatched SocketPower inputs did not panic")
		}
	}()
	DefaultModel().SocketPower([]cpu.Freq{1}, nil)
}

func TestTurboCostlierThanMax(t *testing.T) {
	m := DefaultModel()
	l := cpu.DefaultLadder()
	if m.CorePower(l.Turbo, true) <= m.CorePower(l.Max, true)*1.2 {
		t.Errorf("turbo %v W should cost well above max %v W",
			m.CorePower(l.Turbo, true), m.CorePower(l.Max, true))
	}
}

func TestCalibrationRoughlyXeon(t *testing.T) {
	// One socket fully busy at turbo should land in a plausible envelope
	// for a 125 W-TDP part being pushed past TDP (turbo).
	m := DefaultModel()
	freqs := make([]cpu.Freq, 20)
	active := make([]bool, 20)
	for i := range freqs {
		freqs[i] = 2.8
		active[i] = true
	}
	p := m.SocketPower(freqs, active)
	if p < 120 || p > 400 {
		t.Errorf("all-turbo socket power %v W implausible", p)
	}
	// And fully idle at the floor should be far lower.
	for i := range freqs {
		freqs[i] = 0.8
		active[i] = false
	}
	idle := m.SocketPower(freqs, active)
	if idle > p/3 {
		t.Errorf("idle floor %v W not far below busy %v W", idle, p)
	}
}

func TestEnergyFor(t *testing.T) {
	m := DefaultModel()
	e := m.EnergyFor(2.1, true, 2*sim.Second)
	if math.Abs(e-2*m.CorePower(2.1, true)) > 1e-9 {
		t.Errorf("EnergyFor = %v", e)
	}
}

func TestMeterAccrue(t *testing.T) {
	mt := NewMeter()
	mt.Accrue(0, sim.Second, 100)
	mt.Accrue(sim.Second, 3*sim.Second, 50)
	if got := mt.Energy(); math.Abs(got-200) > 1e-9 {
		t.Errorf("Energy = %v, want 200", got)
	}
	if mt.LastUpdate() != 3*sim.Second {
		t.Errorf("LastUpdate = %v", mt.LastUpdate())
	}
}

func TestMeterReversedPanics(t *testing.T) {
	mt := NewMeter()
	defer func() {
		if recover() == nil {
			t.Error("reversed Accrue did not panic")
		}
	}()
	mt.Accrue(5, 1, 10)
}

func TestMeterNegativePowerPanics(t *testing.T) {
	mt := NewMeter()
	defer func() {
		if recover() == nil {
			t.Error("negative power did not panic")
		}
	}()
	mt.Accrue(0, 1, -1)
}

func TestMeterWindowPower(t *testing.T) {
	mt := NewMeter()
	mt.EnableSeries()
	for i := 0; i < 10; i++ {
		from := sim.Time(i) * sim.Second
		mt.Accrue(from, from+sim.Second, float64(100+i))
	}
	got := mt.WindowPower(0, 10*sim.Second)
	want := 104.5 // mean of 100..109
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("WindowPower = %v, want %v", got, want)
	}
	sub := mt.WindowPower(5*sim.Second, 6*sim.Second)
	if math.Abs(sub-105) > 1e-9 {
		t.Errorf("sub-window power = %v, want 105", sub)
	}
}

func TestMeterWindowWithoutSeries(t *testing.T) {
	mt := NewMeter()
	mt.Accrue(0, sim.Second, 10)
	if !math.IsNaN(mt.WindowPower(0, sim.Second)) {
		t.Error("WindowPower without series should be NaN")
	}
}

// Energy accrual must be additive regardless of how an interval is split.
func TestMeterAdditivity(t *testing.T) {
	f := func(splitRaw uint16, watts uint16) bool {
		total := sim.Second
		split := sim.Time(splitRaw) % total
		w := float64(watts)
		a := NewMeter()
		a.Accrue(0, total, w)
		b := NewMeter()
		b.Accrue(0, split, w)
		b.Accrue(split, total, w)
		return math.Abs(a.Energy()-b.Energy()) < 1e-9*(1+a.Energy())
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkCorePower(b *testing.B) {
	m := DefaultModel()
	for i := 0; i < b.N; i++ {
		m.CorePower(2.1, i%2 == 0)
	}
}
