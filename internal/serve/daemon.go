package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/baselines"
	"github.com/deeppower/deeppower/internal/ckpt"
	"github.com/deeppower/deeppower/internal/control"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/fault"
	"github.com/deeppower/deeppower/internal/server"
)

// DaemonConfig parameterizes a serving daemon.
type DaemonConfig struct {
	// Addr is the TCP listen address (e.g. "127.0.0.1:0").
	Addr string
	// Method selects the serving policy: "maxfreq", "fixed:<ghz>",
	// "controller:<base>,<scale>", or "registry" (load the checkpoint
	// registry's promoted policy into a DeepPower agent).
	Method string
	// RegistryDir is the checkpoint registry directory; required for the
	// registry method, optional otherwise.
	RegistryDir string
	// Profile is the application backing the virtual cores (DefaultProfile
	// when nil).
	Profile *app.Profile
	// Horizon bounds the serving run (default 1h). The simulated backend
	// needs a finite virtual end time.
	Horizon time.Duration
	// BridgePeriod is the wall-to-virtual sync cadence (default 1ms); it
	// bounds how far virtual time may trail the wall clock.
	BridgePeriod time.Duration
	// SnapshotEvery is the telemetry publish cadence (default 100ms).
	SnapshotEvery time.Duration
	// Unguarded disables the fault.GuardedPolicy wrapper (benchmarking the
	// raw policy only; production serving always guards).
	Unguarded bool
	// GuardConfig tunes the guard (defaults as in internal/fault).
	GuardConfig fault.GuardConfig
	// LatencyCap bounds retained per-request latency samples in the
	// backend (default 65536); completions beyond it are counted in
	// LatencyDropped and surfaced in telemetry.
	LatencyCap int
	// Seed drives the backend's service-time randomness.
	Seed int64
}

func (c *DaemonConfig) withDefaults() DaemonConfig {
	out := *c
	if out.Addr == "" {
		out.Addr = "127.0.0.1:0"
	}
	if out.Method == "" {
		out.Method = "maxfreq"
	}
	if out.Profile == nil {
		out.Profile = DefaultProfile()
	}
	if out.Horizon <= 0 {
		out.Horizon = time.Hour
	}
	if out.LatencyCap == 0 {
		out.LatencyCap = 65536
	}
	return out
}

// Daemon is the live serving process: a listener feeding the admission hot
// path, a bridge locking the simulated backend to the wall clock, and the
// policy lifecycle (registry load, hot promote, rollback) executed on the
// bridge goroutine.
type Daemon struct {
	cfg    DaemonConfig
	wire   WireCounters
	bridge *Bridge
	ln     net.Listener

	reg        *ckpt.Registry
	dp         *agent.DeepPower // non-nil only for the registry method
	guard      *fault.GuardedPolicy
	policyName string
	version    int // registry version serving, -1 when not registry-backed

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// NewDaemon assembles a daemon: policy by method, guard wrap, simulated
// actuator, bridge. Call Start to begin serving.
func NewDaemon(cfg DaemonConfig) (*Daemon, error) {
	full := cfg.withDefaults()
	d := &Daemon{cfg: full, conns: make(map[net.Conn]struct{}), version: -1}

	if full.RegistryDir != "" {
		reg, err := ckpt.OpenRegistry(full.RegistryDir)
		if err != nil {
			return nil, err
		}
		d.reg = reg
	}
	inner, err := d.buildPolicy(full.Method)
	if err != nil {
		return nil, err
	}
	pol := inner
	if !full.Unguarded {
		gcfg := full.GuardConfig
		if d.dp != nil && d.reg != nil && gcfg.Rollback == nil {
			gcfg.Rollback = fault.RegistryRollback(d.reg, d.dp)
		}
		d.guard = fault.NewGuardedPolicy(inner, gcfg)
		pol = d.guard
	}
	d.policyName = pol.Name()

	act, err := NewSimActuator(server.Config{
		App:        full.Profile,
		Seed:       full.Seed,
		LatencyCap: full.LatencyCap,
	}, pol)
	if err != nil {
		return nil, err
	}
	d.bridge = newBridge(act, &d.wire, full.BridgePeriod, full.SnapshotEvery)
	d.bridge.meta = d.fillMeta
	return d, nil
}

// buildPolicy constructs the configured method's policy. For the registry
// method it also records the agent and serving version for the lifecycle
// endpoints.
func (d *Daemon) buildPolicy(method string) (server.Policy, error) {
	name, arg, _ := strings.Cut(method, ":")
	switch name {
	case "maxfreq":
		return baselines.NewMaxFreq(), nil
	case "fixed":
		ghz, err := strconv.ParseFloat(arg, 64)
		if err != nil {
			return nil, fmt.Errorf("serve: bad fixed frequency %q: %v", arg, err)
		}
		return baselines.NewFixedFreq(cpu.Freq(ghz)), nil
	case "controller":
		bs, ss, ok := strings.Cut(arg, ",")
		if !ok {
			return nil, fmt.Errorf("serve: controller needs <base>,<scale>, got %q", arg)
		}
		b, err1 := strconv.ParseFloat(bs, 64)
		s, err2 := strconv.ParseFloat(ss, 64)
		if err1 != nil || err2 != nil {
			return nil, fmt.Errorf("serve: bad controller params %q", arg)
		}
		p := control.Params{BaseFreq: b, ScalingCoef: s}
		if err := p.Validate(); err != nil {
			return nil, err
		}
		return control.NewThreadController(p), nil
	case "registry":
		if d.reg == nil {
			return nil, fmt.Errorf("serve: registry method needs RegistryDir")
		}
		dp, err := agent.New(agent.Config{Seed: d.cfg.Seed})
		if err != nil {
			return nil, err
		}
		v, err := d.loadCurrent(dp)
		if err != nil {
			return nil, err
		}
		d.dp = dp
		d.version = v
		return dp, nil
	}
	return nil, fmt.Errorf("serve: unknown method %q", method)
}

// loadCurrent loads the registry's promoted policy into dp.
func (d *Daemon) loadCurrent(dp *agent.DeepPower) (int, error) {
	v, kind, payload, err := d.reg.GetCurrent()
	if err != nil {
		return 0, err
	}
	if err := dp.LoadPolicy(bytes.NewReader(ckpt.Seal(kind, payload))); err != nil {
		return 0, err
	}
	return v, nil
}

// Start binds the listener and launches the bridge and accept loops.
func (d *Daemon) Start() error {
	ln, err := net.Listen("tcp", d.cfg.Addr)
	if err != nil {
		return err
	}
	if err := d.bridge.Start(d.cfg.Horizon); err != nil {
		ln.Close()
		return err
	}
	d.ln = ln
	d.wg.Add(1)
	go d.acceptLoop()
	return nil
}

// Addr returns the bound listen address (valid after Start).
func (d *Daemon) Addr() string { return d.ln.Addr().String() }

// Stop closes the listener and every connection, drains the bridge, and
// returns the backend's settled result.
func (d *Daemon) Stop() *server.Result {
	d.mu.Lock()
	d.closed = true
	for c := range d.conns {
		c.Close()
	}
	d.mu.Unlock()
	if d.ln != nil {
		d.ln.Close()
	}
	d.wg.Wait()
	return d.bridge.Stop()
}

// Telemetry synchronously builds a fresh telemetry record.
func (d *Daemon) Telemetry() Telemetry { return d.bridge.Telemetry() }

func (d *Daemon) acceptLoop() {
	defer d.wg.Done()
	id := 0
	for {
		c, err := d.ln.Accept()
		if err != nil {
			return // listener closed
		}
		d.mu.Lock()
		if d.closed {
			d.mu.Unlock()
			c.Close()
			return
		}
		d.conns[c] = struct{}{}
		d.mu.Unlock()
		id++
		shard := id & (nShards - 1)
		d.wire.ConnsOpened.Add(shard, 1)
		d.wg.Add(1)
		go func() {
			defer d.wg.Done()
			d.serveConn(c, shard)
			d.mu.Lock()
			delete(d.conns, c)
			d.mu.Unlock()
			d.wire.ConnsClosed.Add(shard, 1)
		}()
	}
}

// fillMeta completes a telemetry record with policy identity and guard
// counters. Runs on the bridge goroutine.
func (d *Daemon) fillMeta(t *Telemetry) {
	t.Policy = d.policyName
	t.PolicyVersion = d.version
	t.LatencyCap = d.cfg.LatencyCap
	t.SLAMS = d.cfg.Profile.SLA.Milliseconds()
	if d.guard != nil {
		s := d.guard.Stats()
		t.GuardSafeMode = d.guard.SafeMode()
		t.GuardFallbacks = s.Fallbacks
		t.GuardRollbacks = s.Rollbacks
		t.GuardReengages = s.Reengages
		t.GuardInvalid = s.InvalidActions
	}
}

// route dispatches a control request. An empty status means 404.
func (d *Daemon) route(method, path, query string) (status, ctype string, body []byte) {
	switch {
	case method == "GET" && path == "/healthz":
		return "200 OK", "text/plain", []byte("ok\n")
	case method == "GET" && path == "/stats":
		if strings.Contains(query, "fresh=1") {
			t := d.Telemetry()
			b, err := json.Marshal(&t)
			if err != nil {
				return "500 Internal Server Error", "text/plain", []byte(err.Error() + "\n")
			}
			return "200 OK", "application/json", append(b, '\n')
		}
		return "200 OK", "application/json", d.bridge.stats.Bytes()
	case method == "GET" && path == "/policy":
		return d.policyInfo()
	case method == "POST" && path == "/policy/reload":
		return d.lifecycle(func() error {
			v, err := d.loadCurrent(d.dp)
			if err == nil {
				d.version = v
			}
			return err
		})
	case method == "POST" && path == "/policy/promote":
		vs, ok := strings.CutPrefix(query, "version=")
		v, err := strconv.Atoi(vs)
		if !ok || err != nil {
			return "400 Bad Request", "text/plain", []byte("need ?version=N\n")
		}
		return d.lifecycle(func() error {
			if err := d.reg.Promote(v); err != nil {
				return err
			}
			nv, err := d.loadCurrent(d.dp)
			if err == nil {
				d.version = nv
			}
			return err
		})
	case method == "POST" && path == "/policy/rollback":
		return d.lifecycle(func() error {
			if _, err := d.reg.Rollback(); err != nil {
				return err
			}
			v, err := d.loadCurrent(d.dp)
			if err == nil {
				d.version = v
			}
			return err
		})
	}
	return "", "", nil
}

// lifecycle runs a registry-backed policy operation on the bridge
// goroutine, where it is ordered against policy callbacks.
func (d *Daemon) lifecycle(fn func() error) (status, ctype string, body []byte) {
	if d.dp == nil || d.reg == nil {
		return "409 Conflict", "text/plain", []byte("policy is not registry-backed\n")
	}
	var resp []byte
	err := d.bridge.Do(func() error {
		if err := fn(); err != nil {
			return err
		}
		resp = []byte(fmt.Sprintf("{\"policy\":%q,\"version\":%d}\n", d.policyName, d.version))
		return nil
	})
	if err != nil {
		return "409 Conflict", "text/plain", []byte(err.Error() + "\n")
	}
	return "200 OK", "application/json", resp
}

func (d *Daemon) policyInfo() (status, ctype string, body []byte) {
	info := struct {
		Policy  string `json:"policy"`
		Version int    `json:"version"`
		History []int  `json:"history,omitempty"`
	}{}
	d.bridge.Do(func() error {
		info.Policy = d.policyName
		info.Version = d.version
		if d.reg != nil {
			info.History = d.reg.History()
		}
		return nil
	})
	b, _ := json.Marshal(&info)
	return "200 OK", "application/json", append(b, '\n')
}
