package serve

import (
	"sync"
	"time"

	"github.com/deeppower/deeppower/internal/server"
)

// stamp is one batch of fast-path admissions: n requests whose arrival the
// HTTP layer observed at the same wall instant (one read syscall). Batching
// per read collapses ring traffic to a handful of entries per millisecond
// at any request rate.
type stamp struct {
	nanos int64 // wall offset since the bridge epoch, nanoseconds
	n     uint32
}

// stampRing hands admission stamps from connection goroutines to the bridge
// with one short critical section per read batch. Double-buffered: the
// bridge swaps the append buffer out under the lock and drains the full one
// outside it, so producers never wait on injection work and the steady
// state allocates nothing once both buffers reach their high-water mark.
type stampRing struct {
	mu    sync.Mutex
	cur   []stamp
	spare []stamp
}

func newStampRing() *stampRing {
	return &stampRing{
		cur:   make([]stamp, 0, 4096),
		spare: make([]stamp, 0, 4096),
	}
}

// Push records n admissions observed at wall offset nanos.
func (r *stampRing) Push(nanos int64, n uint32) {
	r.mu.Lock()
	r.cur = append(r.cur, stamp{nanos: nanos, n: n})
	r.mu.Unlock()
}

// Drain returns all pushed stamps. The returned slice is valid until the
// next Drain call.
func (r *stampRing) Drain() []stamp {
	r.mu.Lock()
	out := r.cur
	r.cur = r.spare[:0]
	r.mu.Unlock()
	r.spare = out
	return out
}

// bridgeCmd is control-plane work (policy reload, registry ops, synchronous
// telemetry reads) executed on the bridge goroutine between segments, where
// it is ordered against every policy callback.
type bridgeCmd struct {
	fn    func() error
	reply chan error
}

// Bridge locks the actuator's virtual time to the wall clock. A single
// goroutine loops at the bridge period: it drains the admission stamps the
// HTTP layer pushed, injects each batch at its observed wall offset, and
// advances the backend to "now". Virtual time therefore trails the wall
// clock by at most one period plus scheduling jitter — that bound is the
// serving mode's determinism boundary: behind it the simulation stays
// exactly the reproduction's (same engine, same policy, same accounting);
// ahead of it arrival instants come from real sockets and are not
// reproducible run to run.
type Bridge struct {
	act    Actuator
	period time.Duration
	snapEv time.Duration

	stamps *stampRing
	wire   *WireCounters
	stats  statsCell
	meta   func(*Telemetry) // daemon fills policy name/version fields

	start    time.Time
	cmds     chan bridgeCmd
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
	result   *server.Result

	injected   uint64
	injectErrs uint64
	segs       uint64
	lastLag    time.Duration
}

// newBridge wires a bridge over act. period is the segment cadence (default
// 1ms), snapEvery the telemetry cadence (default 100ms).
func newBridge(act Actuator, wire *WireCounters, period, snapEvery time.Duration) *Bridge {
	if period <= 0 {
		period = time.Millisecond
	}
	if snapEvery <= 0 {
		snapEvery = 100 * time.Millisecond
	}
	return &Bridge{
		act:    act,
		period: period,
		snapEv: snapEvery,
		stamps: newStampRing(),
		wire:   wire,
		cmds:   make(chan bridgeCmd, 16),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Start arms the actuator and launches the bridge loop. horizon bounds how
// long the daemon may serve (virtual event times must stay under it).
func (b *Bridge) Start(horizon time.Duration) error {
	if err := b.act.Begin(horizon); err != nil {
		return err
	}
	b.start = time.Now()
	go b.run()
	return nil
}

// Epoch returns the wall instant offsets are measured from.
func (b *Bridge) Epoch() time.Time { return b.start }

// Admit records a batch of n fast-path admissions observed at wall offset
// nanos. Called from connection goroutines; never blocks on the backend.
func (b *Bridge) Admit(nanos int64, n uint32) { b.stamps.Push(nanos, n) }

// Do runs fn on the bridge goroutine between segments and returns its
// error. It is the ordering point for policy hot-swaps and registry
// operations: fn never races a policy callback.
func (b *Bridge) Do(fn func() error) error {
	cmd := bridgeCmd{fn: fn, reply: make(chan error, 1)}
	select {
	case b.cmds <- cmd:
	case <-b.done:
		return errBridgeStopped
	}
	select {
	case err := <-cmd.reply:
		return err
	case <-b.done:
		return errBridgeStopped
	}
}

// Stop drains outstanding arrivals, advances the backend to the current
// wall offset, settles accounting, and returns the backend's final result.
// Idempotent: later calls return the first call's result.
func (b *Bridge) Stop() *server.Result {
	b.stopOnce.Do(func() { close(b.stop) })
	<-b.done
	return b.result
}

// Telemetry synchronously builds a fresh telemetry record on the bridge
// goroutine (or from final state after Stop).
func (b *Bridge) Telemetry() Telemetry {
	var t Telemetry
	err := b.Do(func() error {
		b.fill(&t)
		return nil
	})
	if err != nil {
		// Bridge already stopped: fill from the settled backend. The
		// actuator is quiescent, so reading it is race-free.
		b.fill(&t)
	}
	return t
}

var errBridgeStopped = errStopped{}

type errStopped struct{}

func (errStopped) Error() string { return "serve: bridge stopped" }

func (b *Bridge) run() {
	defer close(b.done)
	timer := time.NewTimer(b.period)
	defer timer.Stop()
	nextSnap := b.snapEv
	for {
		select {
		case <-b.stop:
			b.advanceTo(time.Since(b.start))
			b.result = b.act.End()
			b.publish(time.Since(b.start))
			return
		case cmd := <-b.cmds:
			cmd.reply <- cmd.fn()
		case <-timer.C:
			target := time.Since(b.start)
			b.advanceTo(target)
			if target >= nextSnap {
				b.publish(target)
				nextSnap = target + b.snapEv
			}
			b.lastLag = time.Since(b.start) - target
			timer.Reset(b.period)
		}
	}
}

// advanceTo injects every drained stamp batch and runs the backend up to
// the target offset.
func (b *Bridge) advanceTo(target time.Duration) {
	for _, st := range b.stamps.Drain() {
		at := time.Duration(st.nanos)
		for i := uint32(0); i < st.n; i++ {
			if err := b.act.Inject(at); err != nil {
				b.injectErrs++
			} else {
				b.injected++
			}
		}
	}
	b.act.Advance(target)
	b.segs++
}

func (b *Bridge) publish(target time.Duration) {
	var t Telemetry
	t.UptimeSec = target.Seconds()
	b.fill(&t)
	b.stats.Publish(&t)
}

// fill populates t from the wire counters and the backend. Runs on the
// bridge goroutine (or post-Stop).
func (b *Bridge) fill(t *Telemetry) {
	if t.UptimeSec == 0 && !b.start.IsZero() {
		t.UptimeSec = time.Since(b.start).Seconds()
	}
	t.Accepted = b.wire.Accepted.Load()
	t.Responded = b.wire.Responded.Load()
	t.ControlReqs = b.wire.Control.Load()
	t.BadRequests = b.wire.BadRequests.Load()
	t.ConnsOpened = b.wire.ConnsOpened.Load()
	t.ConnsClosed = b.wire.ConnsClosed.Load()
	t.ReadBytes = b.wire.ReadBytes.Load()
	t.WrittenBytes = b.wire.WrittenBytes.Load()

	var st BackendStats
	b.act.Stats(&st)
	t.Arrivals = st.Counters.Arrivals
	t.Completions = st.Counters.Completions
	t.Timeouts = st.Counters.Timeouts
	t.LatencyDropped = st.Counters.LatencyDropped
	t.QueueLen = st.QueueLen
	t.BusyCores = st.BusyCores
	t.InFlight = st.Counters.Arrivals - st.Counters.Completions
	t.EnergyJ = st.EnergyJ
	t.AvgFreqGHz = st.AvgFreqGHz
	if st.Counters.Completions > 0 {
		t.TimeoutRate = float64(st.Counters.Timeouts) / float64(st.Counters.Completions)
	}
	t.LatMeanMS = st.LatMeanSec * 1e3
	t.LatP99MS = st.LatP99Sec * 1e3
	t.BridgeLagMS = float64(b.lastLag.Nanoseconds()) / 1e6
	t.SegsRun = b.segs
	t.InjectErrors = b.injectErrs
	if b.meta != nil {
		b.meta(t)
	}
}
