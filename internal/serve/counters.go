// Package serve is the live serving layer: a wall-clock daemon that runs a
// trained (and guarded) policy against real time through a pluggable
// Actuator, a minimal allocation-free HTTP/1.1 front end able to sustain
// 100k+ req/s on loopback, and the open/closed-loop load generator that
// drives it. It is the bridge from "reproduction" (virtual time, internal
// arrival generators) to "system" (real sockets, real clocks): the same
// policy binary, the same guard, the same checkpoint registry — driven by
// wall-clock request traffic instead of a simulated arrival process.
package serve

import "sync/atomic"

// nShards is the number of counter stripes. Power of two so the shard pick
// is a mask. Sized for small-core boxes; contention only matters when many
// connection goroutines run truly in parallel.
const nShards = 8

// pad64 separates adjacent shard slots so two cores incrementing different
// shards never bounce the same cache line (64B lines; 128B on some parts,
// but one line of slack already removes the pathological sharing).
type pad64 struct {
	_ [56]byte
	v atomic.Uint64
}

// ShardedUint64 is a striped atomic counter: writers add to their own shard
// (picked by connection, not per call), readers sum all stripes. A read is
// not a point-in-time snapshot across shards — it is monotone and never
// loses a count, which is all the telemetry collector needs — and it never
// stops writers.
type ShardedUint64 struct {
	shards [nShards]pad64
}

// Add increments the counter by n on the given stripe.
func (c *ShardedUint64) Add(shard int, n uint64) {
	c.shards[shard&(nShards-1)].v.Add(n)
}

// Load returns the sum over all stripes.
func (c *ShardedUint64) Load() uint64 {
	var sum uint64
	for i := range c.shards {
		sum += c.shards[i].v.Load()
	}
	return sum
}

// WireCounters is the sharded counter set the HTTP layer maintains. One
// stripe is assigned per connection at accept time, so the hot path is a
// single uncontended atomic add and the collector can snapshot at any
// moment without a lock.
type WireCounters struct {
	// Accepted counts fast-path requests admitted into the backend.
	Accepted ShardedUint64
	// Responded counts responses written (all paths).
	Responded ShardedUint64
	// Control counts slow-path (control/telemetry endpoint) requests.
	Control ShardedUint64
	// BadRequests counts unparseable or unsupported requests.
	BadRequests ShardedUint64
	// ConnsOpened and ConnsClosed count connection lifecycle events.
	ConnsOpened ShardedUint64
	ConnsClosed ShardedUint64
	// ReadBytes and WrittenBytes count wire traffic.
	ReadBytes    ShardedUint64
	WrittenBytes ShardedUint64
}
