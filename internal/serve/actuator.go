package serve

import (
	"errors"
	"fmt"
	"os"
	"time"

	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/stats"
)

// BackendStats is the per-control-period reading the bridge takes from its
// actuator: cumulative backend counters plus instantaneous load. One flat
// struct, filled in place — telemetry never allocates per period.
type BackendStats struct {
	Counters   server.Counters
	QueueLen   int
	BusyCores  int
	EnergyJ    float64
	AvgFreqGHz float64
	LatMeanSec float64
	LatP99Sec  float64
	LatN       int
}

// Actuator abstracts the cores the serving policy manages. The daemon's
// bridge drives it with wall-clock offsets (durations since serving began):
// Begin arms the backend for a horizon, Inject admits one request at an
// offset, Advance runs the backend's control loop up to an offset, Stats
// reads the current counters, and End settles accounting.
//
// The simulated backend (SimActuator) maps offsets one-to-one onto virtual
// time, so the full reproduction stack — server, policy, guard, power
// meter — executes unmodified under real traffic. A future hardware backend
// (SysfsActuator) would instead actuate /sys/devices/system/cpu cpufreq
// knobs and read per-request completions from the application.
//
// All methods are called from the single bridge goroutine; implementations
// need no internal locking.
type Actuator interface {
	// Begin arms the backend to serve for at most horizon.
	Begin(horizon time.Duration) error
	// Inject admits one request at the given offset since Begin. Offsets
	// before the backend's current position are clamped forward (late
	// delivery, never time travel); offsets at or past the horizon fail.
	Inject(at time.Duration) error
	// Advance runs the backend up to the given offset. Events scheduled
	// exactly at the offset fire inside the call.
	Advance(until time.Duration) error
	// Stats fills st with the backend's current reading.
	Stats(st *BackendStats)
	// End stops the backend and returns its final result.
	End() *server.Result
}

// SimActuator executes requests on simulated DVFS cores: the reproduction's
// server driven through its external-arrival interface
// (BeginExternal/Inject/RunSegment), with virtual time locked to the wall
// clock by the bridge. The policy, guard, power model, and accounting are
// exactly the ones every simulated experiment uses.
type SimActuator struct {
	eng *sim.Engine
	srv *server.Server
	tap *tapPolicy
}

// NewSimActuator builds the simulated backend. The policy is wrapped with a
// latency tap so the bridge can publish streaming latency digests without
// touching the server's internals mid-run.
func NewSimActuator(cfg server.Config, pol server.Policy) (*SimActuator, error) {
	eng := sim.NewEngine()
	tap := &tapPolicy{inner: pol, p99: stats.NewP2Quantile(0.99)}
	srv, err := server.New(eng, cfg, tap)
	if err != nil {
		return nil, err
	}
	return &SimActuator{eng: eng, srv: srv, tap: tap}, nil
}

// Begin implements Actuator.
func (a *SimActuator) Begin(horizon time.Duration) error {
	return a.srv.BeginExternal(sim.Time(horizon))
}

// Inject implements Actuator.
func (a *SimActuator) Inject(at time.Duration) error {
	t := sim.Time(at)
	if now := a.eng.Now(); t < now {
		t = now
	}
	return a.srv.Inject(t)
}

// Advance implements Actuator.
func (a *SimActuator) Advance(until time.Duration) error {
	a.srv.RunSegment(sim.Time(until))
	return nil
}

// Stats implements Actuator.
func (a *SimActuator) Stats(st *BackendStats) {
	st.Counters = a.srv.Counters()
	st.QueueLen = a.srv.QueueLen()
	st.BusyCores = a.srv.BusyCores()
	st.EnergyJ = a.srv.Energy()
	var sum float64
	n := a.srv.NumCores()
	for i := 0; i < n; i++ {
		sum += float64(a.srv.Freq(i))
	}
	if n > 0 {
		st.AvgFreqGHz = sum / float64(n)
	}
	st.LatMeanSec = a.tap.mean.Mean()
	st.LatP99Sec = a.tap.p99.Value()
	st.LatN = a.tap.mean.N()
}

// End implements Actuator. The daemon stops when told to, not at its
// horizon, so accounting settles at the backend's current position.
func (a *SimActuator) End() *server.Result { return a.srv.EndNow() }

// tapPolicy forwards every callback to the inner policy and records
// completion latencies into streaming digests the bridge reads between
// segments. It sits outside the guard, so the digests reflect what clients
// experience in both engaged and safe mode.
type tapPolicy struct {
	inner server.Policy
	ctl   server.Control
	mean  stats.Welford
	p99   *stats.P2Quantile
}

func (t *tapPolicy) Name() string { return t.inner.Name() }

func (t *tapPolicy) Init(c server.Control) {
	t.ctl = c
	t.inner.Init(c)
}

func (t *tapPolicy) OnTick(now sim.Time) { t.inner.OnTick(now) }

func (t *tapPolicy) OnArrival(r *server.Request) { t.inner.OnArrival(r) }

func (t *tapPolicy) OnDispatch(r *server.Request, core int) { t.inner.OnDispatch(r, core) }

func (t *tapPolicy) OnComplete(r *server.Request, core int) {
	lat := (t.ctl.Now() - r.Arrive).Seconds()
	t.mean.Add(lat)
	t.p99.Add(lat)
	t.inner.OnComplete(r, core)
}

// ErrNoCpufreq marks a sysfs actuator built on a machine without an
// accessible cpufreq interface.
var ErrNoCpufreq = errors.New("serve: sysfs cpufreq interface not available")

// SysfsActuator is the placeholder hardware backend: it actuates the Linux
// cpufreq sysfs knobs instead of simulated cores. Only construction is
// implemented — it probes for the interface and refuses to build without
// one — so the daemon's plumbing is already shaped for real hardware while
// the execution path remains simulation-only.
type SysfsActuator struct {
	root string
}

// NewSysfsActuator probes root (default /sys/devices/system/cpu) for a
// cpufreq interface and fails with ErrNoCpufreq when absent.
func NewSysfsActuator(root string) (*SysfsActuator, error) {
	if root == "" {
		root = "/sys/devices/system/cpu"
	}
	if _, err := os.Stat(root + "/cpu0/cpufreq"); err != nil {
		return nil, fmt.Errorf("%w: %s", ErrNoCpufreq, root)
	}
	return &SysfsActuator{root: root}, nil
}

// Begin implements Actuator. Hardware actuation is not yet wired up.
func (a *SysfsActuator) Begin(time.Duration) error {
	return errors.New("serve: sysfs actuator not implemented; use the simulated backend")
}

// Inject implements Actuator.
func (a *SysfsActuator) Inject(time.Duration) error {
	return errors.New("serve: sysfs actuator not implemented")
}

// Advance implements Actuator.
func (a *SysfsActuator) Advance(time.Duration) error {
	return errors.New("serve: sysfs actuator not implemented")
}

// Stats implements Actuator.
func (a *SysfsActuator) Stats(*BackendStats) {}

// End implements Actuator.
func (a *SysfsActuator) End() *server.Result { return nil }
