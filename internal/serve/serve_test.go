package serve

import (
	"bytes"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/ckpt"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// startDaemon builds and starts a daemon, cleaning it up with the test.
func startDaemon(t *testing.T, cfg DaemonConfig) *Daemon {
	t.Helper()
	d, err := NewDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Stop() })
	return d
}

// drain polls until every accepted request has been injected and executed.
func drain(t *testing.T, d *Daemon) Telemetry {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		tel := d.Telemetry()
		if tel.Arrivals == tel.Accepted && tel.QueueLen == 0 && tel.BusyCores == 0 {
			return tel
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain timeout: %+v", tel)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestLoopbackConservation is the serving mode's books-balance check: a
// short closed-loop run against an in-process daemon, then, at drain,
// sent = completed + errors client-side and accepted = arrivals =
// completions server-side with nothing queued or in service.
func TestLoopbackConservation(t *testing.T) {
	d := startDaemon(t, DaemonConfig{Method: "controller:0.4,0.5", Seed: 7})
	sum, err := NewGenerator(GenConfig{
		Addr:     d.Addr(),
		Conns:    2,
		Pipeline: 16,
		Duration: 300 * time.Millisecond,
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.TransportErrors != 0 {
		t.Fatalf("transport errors: %d (%v)", sum.TransportErrors, sum.Errors)
	}
	if sum.Sent == 0 {
		t.Fatal("no requests sent")
	}
	if sum.Sent != sum.Completed {
		t.Errorf("sent %d != completed %d", sum.Sent, sum.Completed)
	}
	if sum.InFlight != 0 {
		t.Errorf("in-flight after drain: %d", sum.InFlight)
	}

	tel := drain(t, d)
	if tel.Accepted != sum.Sent {
		t.Errorf("daemon accepted %d != client sent %d", tel.Accepted, sum.Sent)
	}
	if tel.InjectErrors != 0 {
		t.Errorf("inject errors: %d", tel.InjectErrors)
	}
	if tel.Arrivals != tel.Accepted {
		t.Errorf("backend arrivals %d != accepted %d", tel.Arrivals, tel.Accepted)
	}
	if got := tel.Completions + uint64(tel.QueueLen) + uint64(tel.BusyCores); got != tel.Arrivals {
		t.Errorf("completions+queued+busy = %d != arrivals %d", got, tel.Arrivals)
	}

	// Stopping settles the backend at its current position; the final
	// result must agree with the drained telemetry.
	res := d.Stop()
	if res.Counters.Arrivals != tel.Arrivals || res.Counters.Completions != tel.Completions {
		t.Errorf("final result %d/%d != drained telemetry %d/%d",
			res.Counters.Arrivals, res.Counters.Completions, tel.Arrivals, tel.Completions)
	}
}

// TestOpenLoopReplay drives a flat trace open-loop and checks the pacer
// delivered approximately the configured rate and the backend held it.
func TestOpenLoopReplay(t *testing.T) {
	d := startDaemon(t, DaemonConfig{Method: "maxfreq", Seed: 3})
	rate := 2000.0
	sum, err := NewGenerator(GenConfig{
		Addr:     d.Addr(),
		Conns:    2,
		Duration: 500 * time.Millisecond,
		Trace:    workload.Constant(rate, sim.Second),
	}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.TransportErrors != 0 {
		t.Fatalf("transport errors: %d (%v)", sum.TransportErrors, sum.Errors)
	}
	want := rate * 0.5
	if float64(sum.Sent) < want*0.7 || float64(sum.Sent) > want*1.3 {
		t.Errorf("open-loop sent %d, want ~%.0f", sum.Sent, want)
	}
	tel := drain(t, d)
	if tel.Arrivals != tel.Accepted || tel.Accepted != sum.Sent {
		t.Errorf("accepted/arrivals %d/%d vs sent %d", tel.Accepted, tel.Arrivals, sum.Sent)
	}
	if tel.TimeoutRate > 0.01 {
		t.Errorf("timeout rate %.4f at light load", tel.TimeoutRate)
	}
}

// rawRequest issues one HTTP request on a fresh connection and returns the
// status line and body.
func rawRequest(t *testing.T, addr, method, target string) (status, body string) {
	t.Helper()
	c, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(5 * time.Second))
	req := method + " " + target + " HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"
	if _, err := c.Write([]byte(req)); err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(c)
	if err != nil {
		t.Fatal(err)
	}
	head, rest, ok := strings.Cut(string(raw), "\r\n")
	if !ok {
		t.Fatalf("malformed response %q", raw)
	}
	_, b, _ := strings.Cut(rest, "\r\n\r\n")
	return head, b
}

func TestControlEndpoints(t *testing.T) {
	d := startDaemon(t, DaemonConfig{Method: "fixed:1.8", Seed: 1})
	if st, body := rawRequest(t, d.Addr(), "GET", "/healthz"); !strings.Contains(st, "200") || body != "ok\n" {
		t.Errorf("healthz: %q %q", st, body)
	}
	if st, body := rawRequest(t, d.Addr(), "GET", "/stats?fresh=1"); !strings.Contains(st, "200") || !strings.Contains(body, "\"accepted\"") {
		t.Errorf("stats: %q %q", st, body)
	}
	if st, body := rawRequest(t, d.Addr(), "GET", "/policy"); !strings.Contains(st, "200") || !strings.Contains(body, "fixed") {
		t.Errorf("policy: %q %q", st, body)
	}
	if st, _ := rawRequest(t, d.Addr(), "GET", "/nope"); !strings.Contains(st, "404") {
		t.Errorf("unknown path: %q", st)
	}
	// Lifecycle endpoints refuse when the policy is not registry-backed.
	if st, _ := rawRequest(t, d.Addr(), "POST", "/policy/rollback"); !strings.Contains(st, "409") {
		t.Errorf("rollback without registry: %q", st)
	}
	tel := d.Telemetry()
	if tel.LatencyCap == 0 {
		t.Error("telemetry missing latency cap")
	}
}

// trainedPolicyBytes trains a throwaway DeepPower policy on the serving
// profile just long enough to produce a loadable checkpoint.
func trainedPolicyBytes(t testing.TB, seed int64) []byte {
	t.Helper()
	dp, err := agent.New(agent.Config{
		Seed: seed, Train: true,
		LongTime: 250 * sim.Millisecond, UpdatesPerStep: 2, WarmupSteps: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = agent.Train(dp, agent.TrainConfig{
		Episodes:   1,
		EpisodeLen: 2 * sim.Second,
		Server:     server.Config{App: DefaultProfile(), Seed: seed, DiscardLatencies: true},
		Trace:      workload.Constant(2000, sim.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dp.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestRegistryLifecycle(t *testing.T) {
	dir := t.TempDir()
	reg, err := ckpt.OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	pol := trainedPolicyBytes(t, 11)
	v1, err := reg.Put(pol)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := reg.Put(pol)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("unexpected registry versions %d, %d", v1, v2)
	}
	if err := reg.Promote(v1); err != nil {
		t.Fatal(err)
	}

	d := startDaemon(t, DaemonConfig{Method: "registry", RegistryDir: dir, Seed: 5})
	if st, body := rawRequest(t, d.Addr(), "GET", "/policy"); !strings.Contains(st, "200") || !strings.Contains(body, "\"version\":1") {
		t.Fatalf("initial policy: %q %q", st, body)
	}
	// Hot-swap to v2 while serving.
	if st, body := rawRequest(t, d.Addr(), "POST", "/policy/promote?version=2"); !strings.Contains(st, "200") || !strings.Contains(body, "\"version\":2") {
		t.Fatalf("promote: %q %q", st, body)
	}
	// Roll back to v1.
	if st, body := rawRequest(t, d.Addr(), "POST", "/policy/rollback"); !strings.Contains(st, "200") || !strings.Contains(body, "\"version\":1") {
		t.Fatalf("rollback: %q %q", st, body)
	}
	// At the bottom of the history, rollback must fail without breaking
	// the serving policy.
	if st, _ := rawRequest(t, d.Addr(), "POST", "/policy/rollback"); !strings.Contains(st, "409") {
		t.Errorf("rollback at bottom should 409")
	}
	// The daemon still serves requests afterward.
	sum, err := NewGenerator(GenConfig{Addr: d.Addr(), Conns: 1, Pipeline: 4, Duration: 100 * time.Millisecond}).Run()
	if err != nil {
		t.Fatal(err)
	}
	if sum.TransportErrors != 0 || sum.Completed == 0 {
		t.Errorf("post-lifecycle serving broken: %+v", sum)
	}
}

func TestDaemonRejectsBadConfig(t *testing.T) {
	for _, method := range []string{"registry", "bogus", "fixed:x", "controller:1", "controller:2,9"} {
		if _, err := NewDaemon(DaemonConfig{Method: method}); err == nil {
			t.Errorf("method %q accepted", method)
		}
	}
}

func TestSysfsActuatorProbe(t *testing.T) {
	if _, err := NewSysfsActuator(t.TempDir()); err == nil {
		t.Error("sysfs actuator built without a cpufreq interface")
	}
}

func TestRespScanner(t *testing.T) {
	var s respScanner
	whole := bytes.Repeat(respAdmit, 5)
	if got := s.count(whole); got != 5 {
		t.Errorf("count = %d, want 5", got)
	}
	// Terminator straddling read boundaries.
	var s2 respScanner
	n := 0
	for _, b := range whole {
		n += s2.count([]byte{b})
	}
	if n != 5 {
		t.Errorf("bytewise count = %d, want 5", n)
	}
}
