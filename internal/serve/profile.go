package serve

import (
	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/sim"
)

// DefaultProfile is the daemon's stock application: a key-value-store-like
// service (masstree-family sampler shape) sized so a single loopback box
// can drive it past 100k req/s. Mean reference service is ~140 µs, so 32
// workers give ~220k req/s of headroom at the reference frequency — the
// policy has real room to scale down under the diurnal trough without
// breaching the 20 ms SLA.
//
// The per-request simulation cost, not fidelity, sizes this profile: at
// 100k req/s every admitted request costs two engine events plus two
// O(cores) scans, so the core count stays small while capacity comes from
// short service times.
func DefaultProfile() *app.Profile {
	return &app.Profile{
		Name:           "serve-kv",
		SLA:            20 * sim.Millisecond,
		Workers:        32,
		RefFreq:        2.1,
		MemFrac:        0.30,
		ContentionCoef: 0.15,
		Sampler: &app.TailedSampler{
			BaseUS:     40,
			CoefUS:     80,
			Sigma1:     0.50,
			Inter:      0.5,
			TypeMuls:   []float64{1.2, 0.6}, // PUT, GET
			TypeProbs:  []float64{0.5, 0.5},
			NoiseSigma: 0.10,
			TailProb:   0.005,
			TailScale:  200,
			TailAlpha:  2.5,
		},
	}
}
