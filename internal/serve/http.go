package serve

import (
	"bytes"
	"net"
	"strconv"
	"strings"
	"time"
)

// The wire protocol is deliberately minimal HTTP/1.1: persistent
// connections, pipelining, no request bodies, no chunked encoding. A
// general-purpose HTTP stack spends a per-request allocation-and-header
// budget this path cannot afford on a small-core box; the daemon instead
// parses straight out of a per-connection read buffer and answers the hot
// endpoint with a canned response, so the steady-state admission path makes
// zero allocations and amortizes its syscalls over every request sharing a
// read (pipelined clients batch dozens per syscall).
var (
	respAdmit    = []byte("HTTP/1.1 204 No Content\r\n\r\n")
	fastPrefix   = []byte("GET /req ")
	crlf2        = []byte("\r\n\r\n")
	hdrConnClose = []byte("\r\nConnection: close")
	hdrBody      = []byte("\r\nContent-Length:")
)

const (
	connReadBuf  = 64 << 10
	connWriteBuf = 128 << 10
)

// processBuffer parses every complete request framed in in, appends the
// responses to *out, and reports how many bytes were consumed, how many
// fast-path requests were admitted, how many responses were produced, and
// whether the connection must close after flushing. It touches no shared
// state — admission stamps and counters are the caller's — which is what
// makes the hot path independently benchmarkable.
func (d *Daemon) processBuffer(in []byte, out *[]byte, shard int) (consumed, admitted, responded int, closing bool) {
	off := 0
	for {
		i := bytes.Index(in[off:], crlf2)
		if i < 0 {
			break
		}
		block := in[off : off+i+len(crlf2)]
		off += i + len(crlf2)
		if bytes.HasPrefix(block, fastPrefix) {
			admitted++
			responded++
			*out = append(*out, respAdmit...)
		} else {
			responded++
			if d.handleControl(block, out, shard) {
				closing = true
			}
		}
		if bytes.Contains(block, hdrConnClose) {
			closing = true
		}
		if closing {
			break
		}
	}
	return off, admitted, responded, closing
}

// handleControl serves the slow path: health, telemetry, and policy
// lifecycle endpoints. Allocation here is fine — control traffic is a few
// requests per second, not a hundred thousand.
func (d *Daemon) handleControl(block []byte, out *[]byte, shard int) (closing bool) {
	d.wire.Control.Add(shard, 1)
	// Request bodies would desync the \r\n\r\n framing; refuse them.
	if bytes.Contains(block, hdrBody) && !bytes.Contains(block, []byte("\r\nContent-Length: 0\r\n")) {
		d.wire.BadRequests.Add(shard, 1)
		appendResponse(out, "411 Length Required", "", nil)
		return true
	}
	eol := bytes.IndexByte(block, '\r')
	if eol < 0 {
		d.wire.BadRequests.Add(shard, 1)
		appendResponse(out, "400 Bad Request", "", nil)
		return true
	}
	line := string(block[:eol])
	method, rest, ok := strings.Cut(line, " ")
	target, _, ok2 := strings.Cut(rest, " ")
	if !ok || !ok2 {
		d.wire.BadRequests.Add(shard, 1)
		appendResponse(out, "400 Bad Request", "", nil)
		return true
	}
	path, query, _ := strings.Cut(target, "?")

	status, ctype, body := d.route(method, path, query)
	if status == "" {
		d.wire.BadRequests.Add(shard, 1)
		status = "404 Not Found"
	}
	appendResponse(out, status, ctype, body)
	return false
}

// appendResponse appends a full HTTP/1.1 response (with Content-Length, so
// keep-alive framing holds) to *out.
func appendResponse(out *[]byte, status, ctype string, body []byte) {
	b := *out
	b = append(b, "HTTP/1.1 "...)
	b = append(b, status...)
	b = append(b, "\r\n"...)
	if ctype != "" {
		b = append(b, "Content-Type: "...)
		b = append(b, ctype...)
		b = append(b, "\r\n"...)
	}
	b = append(b, "Content-Length: "...)
	b = strconv.AppendInt(b, int64(len(body)), 10)
	b = append(b, "\r\n\r\n"...)
	b = append(b, body...)
	*out = b
}

// serveConn owns one connection: read, parse, stamp admissions, respond.
// Buffers live for the connection's lifetime; a pipelined steady state
// allocates nothing per request.
func (d *Daemon) serveConn(c net.Conn, shard int) {
	defer c.Close()
	in := make([]byte, connReadBuf)
	out := make([]byte, 0, connWriteBuf)
	fill := 0
	epoch := d.bridge.Epoch()
	for {
		if fill == len(in) {
			// No terminator within a full buffer: oversized request.
			d.wire.BadRequests.Add(shard, 1)
			return
		}
		n, err := c.Read(in[fill:])
		if n > 0 {
			d.wire.ReadBytes.Add(shard, uint64(n))
			fill += n
			consumed, admitted, responded, closing := d.processBuffer(in[:fill], &out, shard)
			if admitted > 0 {
				d.wire.Accepted.Add(shard, uint64(admitted))
				d.bridge.Admit(int64(time.Since(epoch)), uint32(admitted))
			}
			if len(out) > 0 {
				nw, werr := c.Write(out)
				d.wire.WrittenBytes.Add(shard, uint64(nw))
				d.wire.Responded.Add(shard, uint64(responded))
				out = out[:0]
				if werr != nil {
					return
				}
			}
			if consumed > 0 {
				copy(in, in[consumed:fill])
				fill -= consumed
			}
			if closing {
				return
			}
		}
		if err != nil {
			return
		}
	}
}
