package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/stats"
	"github.com/deeppower/deeppower/internal/workload"
)

// reqBytes is the canonical fast-path request the generator replays.
var reqBytes = []byte("GET /req HTTP/1.1\r\nHost: lg\r\n\r\n")

// GenConfig parameterizes a load-generation run.
type GenConfig struct {
	// Addr is the daemon's address.
	Addr string
	// Conns is the number of persistent connections (default 4).
	Conns int
	// Pipeline is the closed-loop in-flight window per connection
	// (default 64): each connection keeps that many requests outstanding,
	// so throughput is bounded by service rate, not round trips.
	Pipeline int
	// Duration is how long to generate load.
	Duration time.Duration
	// Trace switches to open-loop mode: request instants follow the
	// trace's rate (wrapping over its period), regardless of response
	// progress — the generator never gates on the daemon, as an open
	// system model requires. Nil runs closed-loop.
	Trace *workload.Trace
	// MaxBatch caps one open-loop write (default 4096 requests).
	MaxBatch int
	// DrainTimeout bounds the post-deadline wait for in-flight responses
	// (default 5s).
	DrainTimeout time.Duration
}

func (c *GenConfig) withDefaults() GenConfig {
	out := *c
	if out.Conns <= 0 {
		out.Conns = 4
	}
	if out.Pipeline <= 0 {
		out.Pipeline = 64
	}
	if out.Duration <= 0 {
		out.Duration = time.Second
	}
	if out.MaxBatch <= 0 {
		out.MaxBatch = 4096
	}
	if out.DrainTimeout <= 0 {
		out.DrainTimeout = 5 * time.Second
	}
	return out
}

// GenSummary is one run's client-side view, plus the daemon's own
// telemetry fetched at the end so server-side truncation (LatencyDropped)
// and SLA accounting are visible next to the client numbers.
type GenSummary struct {
	Mode            string
	Sent            uint64
	Completed       uint64
	TransportErrors uint64
	// InFlight is sent − completed − errors after the drain window: 0 on
	// a clean run (the conservation check).
	InFlight uint64
	// Duration is the generation window (drain excluded).
	Duration    time.Duration
	AchievedRPS float64
	// SustainedRPS is the minimum whole-second completion rate over the
	// run's interior seconds — the floor the daemon held, not a burst.
	SustainedRPS float64
	// Client-side admission round-trip latency (P² digests).
	RTTMeanMS, RTTP50MS, RTTP99MS, RTTMaxMS float64
	// Errors holds the first few transport error messages.
	Errors []string
	// Daemon is the server's fresh telemetry at drain, when reachable.
	Daemon *Telemetry
}

// String renders the summary for terminal use.
func (s *GenSummary) String() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%s-loop: sent %d completed %d errors %d in-flight %d in %.2fs\n",
		s.Mode, s.Sent, s.Completed, s.TransportErrors, s.InFlight, s.Duration.Seconds())
	fmt.Fprintf(&b, "  achieved %.0f req/s (sustained floor %.0f req/s)\n", s.AchievedRPS, s.SustainedRPS)
	fmt.Fprintf(&b, "  rtt mean %.3fms p50 %.3fms p99 %.3fms max %.3fms\n",
		s.RTTMeanMS, s.RTTP50MS, s.RTTP99MS, s.RTTMaxMS)
	if d := s.Daemon; d != nil {
		rate := 0.0
		if d.Completions > 0 {
			rate = float64(d.Timeouts) / float64(d.Completions)
		}
		fmt.Fprintf(&b, "  daemon: policy %s arrivals %d completions %d timeouts %d (%.3f%% of SLA %gms)\n",
			d.Policy, d.Arrivals, d.Completions, d.Timeouts, 100*rate, d.SLAMS)
		fmt.Fprintf(&b, "  daemon: lat mean %.3fms p99 %.3fms avg freq %.2fGHz energy %.1fJ\n",
			d.LatMeanMS, d.LatP99MS, d.AvgFreqGHz, d.EnergyJ)
		fmt.Fprintf(&b, "  daemon: latency samples dropped %d (cap %d); guard fallbacks %d rollbacks %d\n",
			d.LatencyDropped, d.LatencyCap, d.GuardFallbacks, d.GuardRollbacks)
	}
	for _, e := range s.Errors {
		fmt.Fprintf(&b, "  error: %s\n", e)
	}
	return b.String()
}

// collector aggregates client-side latencies and per-second completion
// counts. Connections add in batches (one lock per read syscall, not per
// request); the P² digests keep it O(1) memory at any request count.
type collector struct {
	mu     sync.Mutex
	mean   stats.Welford
	p50    *stats.P2Quantile
	p99    *stats.P2Quantile
	max    float64
	perSec []uint64
}

func newCollector() *collector {
	return &collector{p50: stats.NewP2Quantile(0.50), p99: stats.NewP2Quantile(0.99)}
}

// addBatch records a read batch's RTTs (seconds) completed at second sec.
func (c *collector) addBatch(rtts []float64, sec int) {
	c.mu.Lock()
	for _, r := range rtts {
		c.mean.Add(r)
		c.p50.Add(r)
		c.p99.Add(r)
		if r > c.max {
			c.max = r
		}
	}
	for sec >= len(c.perSec) {
		c.perSec = append(c.perSec, 0)
	}
	c.perSec[sec] += uint64(len(rtts))
	c.mu.Unlock()
}

// sustained returns the minimum completion rate over interior whole
// seconds (first and last are partial).
func (c *collector) sustained() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.perSec) <= 2 {
		return 0
	}
	min := c.perSec[1]
	for _, v := range c.perSec[1 : len(c.perSec)-1] {
		if v < min {
			min = v
		}
	}
	return float64(min)
}

// respScanner counts "\r\n\r\n" terminators across read boundaries.
type respScanner struct{ matched int }

func (s *respScanner) count(b []byte) int {
	n := 0
	m := s.matched
	for _, c := range b {
		want := byte('\r')
		if m == 1 || m == 3 {
			want = '\n'
		}
		if c == want {
			m++
			if m == 4 {
				n++
				m = 0
			}
		} else if c == '\r' {
			m = 1
		} else {
			m = 0
		}
	}
	s.matched = m
	return n
}

// stampQueue is a FIFO of send timestamps, one per in-flight request.
// Closed-loop connections use it single-threaded; open-loop connections
// share it between their writer and reader under the lock.
type stampQueue struct {
	mu   sync.Mutex
	buf  []int64
	head int
}

func (q *stampQueue) pushN(nanos int64, n int) {
	q.mu.Lock()
	for i := 0; i < n; i++ {
		q.buf = append(q.buf, nanos)
	}
	q.mu.Unlock()
}

// popN pops up to n stamps into dst and returns how many.
func (q *stampQueue) popN(dst []int64, n int) int {
	q.mu.Lock()
	avail := len(q.buf) - q.head
	if n > avail {
		n = avail
	}
	copy(dst[:n], q.buf[q.head:q.head+n])
	q.head += n
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	q.mu.Unlock()
	return n
}

func (q *stampQueue) len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buf) - q.head
}

// Generator drives one load-generation run.
type Generator struct {
	cfg   GenConfig
	col   *collector
	start time.Time

	sent      atomic.Uint64
	completed atomic.Uint64
	errs      atomic.Uint64
	nextID    atomic.Uint64 // per-request IDs, allocated in send batches

	errCh chan error
}

// NewGenerator builds a generator for cfg.
func NewGenerator(cfg GenConfig) *Generator {
	return &Generator{cfg: cfg.withDefaults(), col: newCollector(), errCh: make(chan error, 64)}
}

// fail records a transport error without ever blocking a worker.
func (g *Generator) fail(conn int, id uint64, err error) {
	g.errs.Add(1)
	select {
	case g.errCh <- fmt.Errorf("conn %d (around req %d): %w", conn, id, err):
	default:
	}
}

// Run executes the configured run and returns its summary. The returned
// error covers setup failures only; per-request transport errors are
// counted in the summary.
func (g *Generator) Run() (*GenSummary, error) {
	cfg := g.cfg
	conns := make([]net.Conn, cfg.Conns)
	for i := range conns {
		c, err := net.Dial("tcp", cfg.Addr)
		if err != nil {
			for _, p := range conns[:i] {
				p.Close()
			}
			return nil, err
		}
		conns[i] = c
	}
	g.start = time.Now()
	deadline := g.start.Add(cfg.Duration)

	var wg sync.WaitGroup
	if cfg.Trace != nil {
		g.runOpen(conns, deadline, &wg)
	} else {
		for i, c := range conns {
			wg.Add(1)
			go func(i int, c net.Conn) {
				defer wg.Done()
				g.closedWorker(i, c, deadline)
			}(i, c)
		}
	}
	wg.Wait()
	elapsed := time.Since(g.start)
	for _, c := range conns {
		c.Close()
	}

	mode := "closed"
	if cfg.Trace != nil {
		mode = "open"
	}
	sum := &GenSummary{
		Mode:            mode,
		Sent:            g.sent.Load(),
		Completed:       g.completed.Load(),
		TransportErrors: g.errs.Load(),
		Duration:        cfg.Duration,
		SustainedRPS:    g.col.sustained(),
		RTTMeanMS:       g.col.mean.Mean() * 1e3,
		RTTP50MS:        g.col.p50.Value() * 1e3,
		RTTP99MS:        g.col.p99.Value() * 1e3,
		RTTMaxMS:        g.col.max * 1e3,
	}
	if sum.Sent > sum.Completed+sum.TransportErrors {
		sum.InFlight = sum.Sent - sum.Completed - sum.TransportErrors
	}
	// Rate over the generation window; the drain tail completes requests
	// sent before the deadline, so they belong to the window.
	window := cfg.Duration
	if elapsed < window {
		window = elapsed
	}
	sum.AchievedRPS = float64(sum.Completed) / window.Seconds()
	for {
		select {
		case err := <-g.errCh:
			sum.Errors = append(sum.Errors, err.Error())
			continue
		default:
		}
		break
	}
	if t, err := FetchStats(cfg.Addr); err == nil {
		sum.Daemon = t
	}
	return sum, nil
}

// closedWorker keeps cfg.Pipeline requests in flight on one connection:
// prime a full window, then send one request per received response (in
// read-batch granularity, so syscalls amortize).
func (g *Generator) closedWorker(conn int, c net.Conn, deadline time.Time) {
	cfg := g.cfg
	burst := bytes.Repeat(reqBytes, cfg.Pipeline)
	in := make([]byte, 256<<10)
	rtts := make([]float64, 0, cfg.Pipeline*2)
	popped := make([]int64, cfg.Pipeline*2)
	var stamps stampQueue
	var scan respScanner

	send := func(n int) bool {
		if n > cfg.Pipeline {
			n = cfg.Pipeline
		}
		id := g.nextID.Add(uint64(n)) - uint64(n)
		// Stamp before the write: on loopback the response can race the
		// Write call's return, and a response must never find its stamp
		// missing.
		now := time.Since(g.start)
		stamps.pushN(int64(now), n)
		if _, err := c.Write(burst[:n*len(reqBytes)]); err != nil {
			g.fail(conn, id, err)
			return false
		}
		g.sent.Add(uint64(n))
		return true
	}

	if !send(cfg.Pipeline) {
		return
	}
	sending := true
	for {
		if sending && time.Now().After(deadline) {
			sending = false
			c.SetReadDeadline(time.Now().Add(cfg.DrainTimeout))
		}
		n, err := c.Read(in)
		if n > 0 {
			k := scan.count(in[:n])
			if k > 0 {
				now := time.Since(g.start)
				got := stamps.popN(popped, k)
				rtts = rtts[:0]
				for i := 0; i < got; i++ {
					rtts = append(rtts, float64(int64(now)-popped[i])/1e9)
				}
				g.completed.Add(uint64(got))
				g.col.addBatch(rtts, int(now/time.Second))
				if sending && !send(got) {
					return
				}
			}
		}
		if err != nil {
			if sending || stamps.len() > 0 {
				g.fail(conn, g.nextID.Load(), err)
			}
			return
		}
		if !sending && stamps.len() == 0 {
			return
		}
	}
}

// runOpen replays the trace open-loop: a central pacer integrates the rate
// curve and hands each millisecond's due count to per-connection writers;
// readers consume responses independently so a slow server never gates the
// arrival process.
func (g *Generator) runOpen(conns []net.Conn, deadline time.Time, wg *sync.WaitGroup) {
	cfg := g.cfg
	type connState struct {
		c      net.Conn
		due    chan int
		stamps stampQueue
	}
	states := make([]*connState, len(conns))
	for i, c := range conns {
		st := &connState{c: c, due: make(chan int, 64)}
		states[i] = st
		wg.Add(2)
		// Writer: one write syscall per due batch.
		go func(i int, st *connState) {
			defer wg.Done()
			buf := make([]byte, 0, cfg.MaxBatch*len(reqBytes))
			dead := false
			for n := range st.due {
				if dead {
					continue // keep draining so the pacer never blocks
				}
				for n > 0 {
					k := n
					if k > cfg.MaxBatch {
						k = cfg.MaxBatch
					}
					buf = buf[:0]
					for j := 0; j < k; j++ {
						buf = append(buf, reqBytes...)
					}
					id := g.nextID.Add(uint64(k)) - uint64(k)
					// Stamp before the write (see closedWorker).
					st.stamps.pushN(int64(time.Since(g.start)), k)
					if _, err := st.c.Write(buf); err != nil {
						g.fail(i, id, err)
						dead = true
						break
					}
					g.sent.Add(uint64(k))
					n -= k
				}
			}
			if tc, ok := st.c.(*net.TCPConn); ok {
				tc.CloseWrite()
			}
		}(i, st)
		// Reader: count responses, match stamps, record RTTs.
		go func(i int, st *connState) {
			defer wg.Done()
			in := make([]byte, 256<<10)
			popped := make([]int64, 8192)
			rtts := make([]float64, 0, 8192)
			var scan respScanner
			st.c.SetReadDeadline(deadline.Add(cfg.DrainTimeout))
			for {
				n, err := st.c.Read(in)
				if n > 0 {
					k := scan.count(in[:n])
					for k > 0 {
						got := st.stamps.popN(popped, k)
						if got == 0 {
							break
						}
						now := time.Since(g.start)
						rtts = rtts[:0]
						for j := 0; j < got; j++ {
							rtts = append(rtts, float64(int64(now)-popped[j])/1e9)
						}
						g.completed.Add(uint64(got))
						g.col.addBatch(rtts, int(now/time.Second))
						k -= got
					}
				}
				if err != nil {
					if err != io.EOF && st.stamps.len() > 0 {
						g.fail(i, g.nextID.Load(), err)
					}
					return
				}
			}
		}(i, st)
	}

	// Pacer: integrate the (wrapping) rate trace; surplus demand carries
	// forward, so a stalled tick is made up, never dropped.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			for _, st := range states {
				close(st.due)
			}
		}()
		period := time.Millisecond
		ticker := time.NewTicker(period)
		defer ticker.Stop()
		var acc float64
		var dispatched uint64
		last := time.Duration(0)
		rr := 0
		for {
			now := <-ticker.C
			if now.After(deadline) {
				return
			}
			elapsed := now.Sub(g.start)
			t := sim.Time(elapsed)
			if g.cfg.Trace.Period > 0 {
				t = t % g.cfg.Trace.Period
			}
			acc += g.cfg.Trace.RateAt(t) * (elapsed - last).Seconds()
			last = elapsed
			due := int(acc - float64(dispatched))
			for due > 0 {
				k := due
				if k > cfg.MaxBatch {
					k = cfg.MaxBatch
				}
				states[rr%len(states)].due <- k
				rr++
				dispatched += uint64(k)
				due -= k
			}
		}
	}()
}

// FetchStats retrieves the daemon's fresh telemetry over a short-lived
// connection.
func FetchStats(addr string) (*Telemetry, error) {
	c, err := net.DialTimeout("tcp", addr, time.Second)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	c.SetDeadline(time.Now().Add(2 * time.Second))
	if _, err := c.Write([]byte("GET /stats?fresh=1 HTTP/1.1\r\nHost: lg\r\nConnection: close\r\n\r\n")); err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(c)
	if err != nil {
		return nil, err
	}
	i := bytes.Index(raw, crlf2)
	if i < 0 {
		return nil, fmt.Errorf("serve: malformed stats response")
	}
	var t Telemetry
	if err := json.Unmarshal(bytes.TrimSpace(raw[i+4:]), &t); err != nil {
		return nil, err
	}
	return &t, nil
}
