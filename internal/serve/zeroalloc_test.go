package serve

import (
	"bytes"
	"testing"
	"time"
)

// TestAdmissionPathZeroAlloc pins the perf contract the serving layer is
// built around: the steady-state admission path — parse a pipelined read
// buffer, append canned responses, bump sharded counters, stamp the batch
// for the bridge — makes zero allocations per iteration. A regression here
// turns into GC pressure at 100k req/s, so it fails the build, not a
// benchmark dashboard.
func TestAdmissionPathZeroAlloc(t *testing.T) {
	d, err := NewDaemon(DaemonConfig{Method: "maxfreq"})
	if err != nil {
		t.Fatal(err)
	}
	// One pipelined read batch, as the wire delivers it.
	in := bytes.Repeat([]byte("GET /req HTTP/1.1\r\nHost: lg\r\n\r\n"), 32)
	out := make([]byte, 0, connWriteBuf)
	nanos := int64(time.Millisecond)

	// Fewer iterations than the stamp ring's initial capacity, so steady
	// state is reachable without a single ring growth inside the loop.
	allocs := testing.AllocsPerRun(100, func() {
		out = out[:0]
		consumed, admitted, _, closing := d.processBuffer(in, &out, 3)
		if consumed != len(in) || admitted != 32 || closing {
			t.Fatalf("processBuffer: consumed=%d admitted=%d closing=%v", consumed, admitted, closing)
		}
		d.wire.Accepted.Add(3, uint64(admitted))
		d.bridge.Admit(nanos, uint32(admitted))
	})
	if allocs != 0 {
		t.Errorf("admission path allocates %.1f per batch, want 0", allocs)
	}
	if got := d.wire.Accepted.Load(); got == 0 {
		t.Error("counters not advanced")
	}
}
