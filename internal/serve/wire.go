package serve

import (
	"encoding/json"
	"sync/atomic"
)

// Telemetry is the daemon's batched telemetry record: one flat struct built
// per control period (not per request) from the sharded wire counters, the
// backend's cumulative counters, and the bridge's streaming latency digests.
// The HTTP /stats endpoint serves the most recent marshaled record; nothing
// on the request path ever writes telemetry.
type Telemetry struct {
	// UptimeSec is wall-clock seconds since the daemon began serving.
	UptimeSec float64 `json:"uptime_sec"`
	// Policy is the active policy name (guard wrapper included).
	Policy string `json:"policy"`
	// PolicyVersion is the registry version serving, or -1 without one.
	PolicyVersion int `json:"policy_version"`

	// Wire-level counters (sharded-atomic sums).
	Accepted     uint64 `json:"accepted"`
	Responded    uint64 `json:"responded"`
	ControlReqs  uint64 `json:"control_reqs"`
	BadRequests  uint64 `json:"bad_requests"`
	ConnsOpened  uint64 `json:"conns_opened"`
	ConnsClosed  uint64 `json:"conns_closed"`
	ReadBytes    uint64 `json:"read_bytes"`
	WrittenBytes uint64 `json:"written_bytes"`

	// Backend (virtual-core) counters.
	Arrivals    uint64 `json:"arrivals"`
	Completions uint64 `json:"completions"`
	Timeouts    uint64 `json:"timeouts"`
	// LatencyDropped counts completions whose latency sample was discarded
	// because the backend's LatencyCap was reached — silent histogram
	// truncation made visible at serving scale. The streaming digests
	// below still include every completion.
	LatencyDropped uint64 `json:"latency_dropped"`
	// LatencyCap is the configured retention bound LatencyDropped counts
	// against (0 = unlimited).
	LatencyCap int `json:"latency_cap"`

	// Live load and latency (from the last control period's snapshot).
	QueueLen     int     `json:"queue_len"`
	BusyCores    int     `json:"busy_cores"`
	InFlight     uint64  `json:"in_flight"`
	EnergyJ      float64 `json:"energy_j"`
	TimeoutRate  float64 `json:"timeout_rate"`
	LatMeanMS    float64 `json:"lat_mean_ms"`
	LatP99MS     float64 `json:"lat_p99_ms"`
	SLAMS        float64 `json:"sla_ms"`
	AvgFreqGHz   float64 `json:"avg_freq_ghz"`
	BridgeLagMS  float64 `json:"bridge_lag_ms"`
	SegsRun      uint64  `json:"segments_run"`
	InjectErrors uint64  `json:"inject_errors"`

	// Guard intervention counters (zero when unguarded).
	GuardSafeMode  bool   `json:"guard_safe_mode"`
	GuardFallbacks uint64 `json:"guard_fallbacks"`
	GuardRollbacks uint64 `json:"guard_rollbacks"`
	GuardReengages uint64 `json:"guard_reengages"`
	GuardInvalid   uint64 `json:"guard_invalid_actions"`
}

// statsCell publishes the latest marshaled Telemetry: the bridge stores a
// fresh byte slice once per control period, connection goroutines load the
// pointer and copy the bytes into their write buffer. Readers never see a
// partially-built record and writers never wait for readers.
type statsCell struct {
	buf atomic.Pointer[[]byte]
}

// Publish marshals t and makes it the current record.
func (c *statsCell) Publish(t *Telemetry) error {
	b, err := json.Marshal(t)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	c.buf.Store(&b)
	return nil
}

// Bytes returns the current marshaled record (never nil after the first
// Publish; "{}" before).
func (c *statsCell) Bytes() []byte {
	if p := c.buf.Load(); p != nil {
		return *p
	}
	return []byte("{}\n")
}
