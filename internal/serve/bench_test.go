package serve

import (
	"bytes"
	"flag"
	"runtime"
	"testing"
	"time"

	"github.com/deeppower/deeppower/internal/results"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// -update-bench rewrites results/BENCH_serve.json from the measurements of
// BenchmarkServe, via the shared internal/results snapshot writer. The
// snapshot is the serving mode's acceptance record: admission at zero
// allocations, closed-loop throughput past the 100k req/s bar, and the
// replayed diurnal day under the guarded policy inside the SLA budget.
var updateBench = flag.Bool("update-bench", false,
	"rewrite results/BENCH_serve.json from this BenchmarkServe run")

// benchGen runs a generator against a fresh daemon and returns the summary
// plus the daemon's telemetry. With drain set it first waits until every
// accepted request has executed (needed for server-side SLA accounting);
// closed-loop overload runs skip it — they accept far beyond the simulated
// capacity on purpose, and only the client-side numbers matter.
func benchGen(b *testing.B, method string, cfg GenConfig, drain bool) (*GenSummary, Telemetry) {
	b.Helper()
	d, err := NewDaemon(DaemonConfig{Method: method, Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	if err := d.Start(); err != nil {
		b.Fatal(err)
	}
	defer d.Stop()
	cfg.Addr = d.Addr()
	sum, err := NewGenerator(cfg).Run()
	if err != nil {
		b.Fatal(err)
	}
	if sum.TransportErrors != 0 {
		b.Fatalf("transport errors: %d (%v)", sum.TransportErrors, sum.Errors)
	}
	if !drain {
		return sum, d.Telemetry()
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		tel := d.Telemetry()
		if tel.Arrivals == tel.Accepted && tel.QueueLen == 0 && tel.BusyCores == 0 {
			return sum, tel
		}
		if time.Now().After(deadline) {
			b.Fatalf("backend did not drain: %+v", tel)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// BenchmarkServe measures the serving stack end to end. Sub-benchmarks:
//
//   - AdmissionPath: the per-read-batch hot path (parse, respond, count,
//     stamp) in isolation — the zero-allocation contract.
//   - ClosedLoop: maximum loopback throughput with pipelined connections
//     against the guarded controller policy.
//   - OpenLoopDiurnal: one replayed diurnal period at cloud-trace rates
//     (trough 90k, crest 135k req/s) — the SLA-violation acceptance run.
func BenchmarkServe(b *testing.B) {
	var rows []results.Bench
	derived := map[string]float64{}

	b.Run("AdmissionPath", func(b *testing.B) {
		d, err := NewDaemon(DaemonConfig{Method: "maxfreq"})
		if err != nil {
			b.Fatal(err)
		}
		const batch = 32
		in := bytes.Repeat(reqBytes, batch)
		out := make([]byte, 0, connWriteBuf)
		allocs := testing.AllocsPerRun(100, func() {
			out = out[:0]
			_, admitted, _, _ := d.processBuffer(in, &out, 1)
			d.wire.Accepted.Add(1, uint64(admitted))
			d.bridge.Admit(0, uint32(admitted))
			d.bridge.stamps.Drain()
		})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			out = out[:0]
			shard := i & (nShards - 1)
			_, admitted, _, _ := d.processBuffer(in, &out, shard)
			d.wire.Accepted.Add(shard, uint64(admitted))
			d.bridge.Admit(int64(i), uint32(admitted))
			if i&1023 == 0 {
				// The bridge is not running here; stand in for its drain so
				// the ring never grows past its initial capacity.
				d.bridge.stamps.Drain()
			}
		}
		b.StopTimer()
		nsPerOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
		b.ReportMetric(nsPerOp/batch, "ns/req")
		rows = append(rows, results.Bench{
			Name:    "Serve/AdmissionPath",
			NsPerOp: nsPerOp,
			Extra: map[string]float64{
				"requests_per_batch": batch,
				"ns_per_request":     nsPerOp / batch,
			},
			AllocsPerOp: uint64(allocs),
		})
		derived["admission_allocs_per_op"] = allocs
	})

	b.Run("ClosedLoop", func(b *testing.B) {
		dur := time.Second
		if *updateBench {
			dur = 3 * time.Second
		}
		var sum *GenSummary
		for i := 0; i < b.N; i++ {
			sum, _ = benchGen(b, "controller:0.4,0.5", GenConfig{
				Conns: 2, Pipeline: 32, Duration: dur,
			}, false)
		}
		b.ReportMetric(sum.AchievedRPS, "req/s")
		b.ReportMetric(sum.SustainedRPS, "sustained-req/s")
		rows = append(rows, results.Bench{
			Name:    "Serve/ClosedLoop",
			NsPerOp: 1e9 / sum.AchievedRPS,
			Extra: map[string]float64{
				"req_per_sec":           sum.AchievedRPS,
				"sustained_req_per_sec": sum.SustainedRPS,
				"completed":             float64(sum.Completed),
				"rtt_p99_ms":            sum.RTTP99MS,
			},
		})
		derived["closed_loop_req_per_sec"] = sum.AchievedRPS
		derived["closed_loop_sustained_req_per_sec"] = sum.SustainedRPS
	})

	b.Run("OpenLoopDiurnal", func(b *testing.B) {
		period := 4 * time.Second
		if *updateBench {
			period = 12 * time.Second
		}
		// Reclaim the closed-loop run's simulated backlog up front; on a
		// small box a concurrent GC mid-replay shows up as arrival bunching
		// and phantom SLA violations.
		runtime.GC()
		time.Sleep(200 * time.Millisecond)
		dc := workload.DefaultDiurnal()
		dc.Period = sim.Time(period)
		dc.Buckets = 24
		dc.BaseRPS = 90000
		dc.PeakRPS = 135000
		var sum *GenSummary
		var tel Telemetry
		for i := 0; i < b.N; i++ {
			sum, tel = benchGen(b, "controller:0.4,0.5", GenConfig{
				Conns: 2, Duration: period, Trace: workload.Diurnal(dc),
			}, true)
		}
		slaRate := 0.0
		if tel.Completions > 0 {
			slaRate = float64(tel.Timeouts) / float64(tel.Completions)
		}
		b.ReportMetric(sum.AchievedRPS, "req/s")
		b.ReportMetric(slaRate*100, "sla-viol-%")
		rows = append(rows, results.Bench{
			Name:    "Serve/OpenLoopDiurnal",
			NsPerOp: 1e9 / sum.AchievedRPS,
			Extra: map[string]float64{
				"req_per_sec":        sum.AchievedRPS,
				"base_rps":           dc.BaseRPS,
				"peak_rps":           dc.PeakRPS,
				"completed":          float64(sum.Completed),
				"sla_violation_rate": slaRate,
				"latency_dropped":    float64(tel.LatencyDropped),
				"avg_freq_ghz":       tel.AvgFreqGHz,
				"rtt_p99_ms":         sum.RTTP99MS,
			},
		})
		derived["open_loop_sla_violation_rate"] = slaRate
		derived["open_loop_req_per_sec"] = sum.AchievedRPS
	})

	if *updateBench {
		derived["target_req_per_sec"] = 100000
		derived["target_sla_violation_rate"] = 0.01
		snap := results.Snapshot{
			Command: "go test ./internal/serve -run '^$' -bench BenchmarkServe -benchtime=1x -update-bench",
			CPU:     results.CPUModel(),
			Note: "live serving over loopback: zero-alloc admission path, closed-loop peak " +
				"throughput, and one diurnal period (90k-135k req/s) replayed open-loop against " +
				"the guarded thread-controller policy on simulated cores",
			Benchmarks: rows,
			Derived:    derived,
		}
		if err := results.Write("../../results/BENCH_serve.json", snap); err != nil {
			b.Fatal(err)
		}
		b.Log("wrote results/BENCH_serve.json")
	}
}
