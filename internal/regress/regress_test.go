package regress

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/deeppower/deeppower/internal/sim"
)

func TestFitExactLinear(t *testing.T) {
	// y = 2x1 - 3x2 + 5, noiseless.
	rng := sim.NewRNG(1)
	var X [][]float64
	var y []float64
	for i := 0; i < 200; i++ {
		x := []float64{rng.Float64() * 10, rng.Float64() * 10}
		X = append(X, x)
		y = append(y, 2*x[0]-3*x[1]+5)
	}
	m, err := Fit(X, y, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.W[0]-2) > 1e-6 || math.Abs(m.W[1]+3) > 1e-6 || math.Abs(m.B-5) > 1e-6 {
		t.Errorf("fit = W %v B %v, want [2 -3] 5", m.W, m.B)
	}
	if got := m.Predict([]float64{1, 1}); math.Abs(got-4) > 1e-6 {
		t.Errorf("Predict = %v, want 4", got)
	}
}

func TestFitNoisyRecovery(t *testing.T) {
	rng := sim.NewRNG(2)
	var X [][]float64
	var y []float64
	for i := 0; i < 5000; i++ {
		x := []float64{rng.Float64() * 4}
		X = append(X, x)
		y = append(y, 7*x[0]+1+rng.Normal(0, 0.5))
	}
	m, err := Fit(X, y, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.W[0]-7) > 0.1 || math.Abs(m.B-1) > 0.2 {
		t.Errorf("noisy fit W=%v B=%v, want ~7, ~1", m.W, m.B)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil, nil, 0); err == nil {
		t.Error("empty fit accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1, 2}, 0); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Fit([][]float64{{}}, []float64{1}, 0); err == nil {
		t.Error("zero-width rows accepted")
	}
	if _, err := Fit([][]float64{{1}, {1, 2}}, []float64{1, 2}, 0); err == nil {
		t.Error("ragged rows accepted")
	}
	if _, err := Fit([][]float64{{1}}, []float64{1}, -1); err == nil {
		t.Error("negative lambda accepted")
	}
}

func TestFitSingularNeedsRidge(t *testing.T) {
	// Perfectly collinear features: x2 = 2·x1.
	var X [][]float64
	var y []float64
	for i := 0; i < 50; i++ {
		v := float64(i)
		X = append(X, []float64{v, 2 * v})
		y = append(y, 3*v)
	}
	if _, err := Fit(X, y, 0); err == nil {
		t.Error("singular fit without ridge accepted")
	}
	m, err := Fit(X, y, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Ridge solution still predicts well.
	if got := m.Predict([]float64{10, 20}); math.Abs(got-30) > 0.5 {
		t.Errorf("ridge prediction = %v, want ~30", got)
	}
}

func TestPredictPanicsOnWidth(t *testing.T) {
	m := &Linear{W: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	m.Predict([]float64{1})
}

func TestPredictAll(t *testing.T) {
	m := &Linear{W: []float64{2}, B: 1}
	got := m.PredictAll([][]float64{{0}, {1}, {2}})
	want := []float64{1, 3, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("PredictAll[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

// Fitting then predicting the training set must have lower squared error
// than predicting its mean (the regression inequality).
func TestFitBeatsMean(t *testing.T) {
	f := func(seed int64) bool {
		rng := sim.NewRNG(seed)
		var X [][]float64
		var y []float64
		mean := 0.0
		for i := 0; i < 100; i++ {
			x := []float64{rng.Float64()}
			t := 3*x[0] + rng.Normal(0, 1)
			X = append(X, x)
			y = append(y, t)
			mean += t / 100
		}
		m, err := Fit(X, y, 1e-9)
		if err != nil {
			return false
		}
		var seFit, seMean float64
		for i := range X {
			d1 := m.Predict(X[i]) - y[i]
			d2 := mean - y[i]
			seFit += d1 * d1
			seMean += d2 * d2
		}
		return seFit <= seMean+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestOnlineLinearConverges(t *testing.T) {
	rng := sim.NewRNG(3)
	o := NewOnlineLinear(1, 0.01)
	for i := 0; i < 20000; i++ {
		x := []float64{rng.Float64()}
		o.Observe(x, 4*x[0]+2)
	}
	if o.N() != 20000 {
		t.Errorf("N = %d", o.N())
	}
	if math.Abs(o.W[0]-4) > 0.2 || math.Abs(o.B-2) > 0.2 {
		t.Errorf("online fit W=%v B=%v, want ~4, ~2", o.W, o.B)
	}
}

func TestOnlineLinearPanicsOnWidth(t *testing.T) {
	o := NewOnlineLinear(2, 0.1)
	defer func() {
		if recover() == nil {
			t.Error("width mismatch did not panic")
		}
	}()
	o.Observe([]float64{1}, 1)
}

func BenchmarkFit1000x3(b *testing.B) {
	rng := sim.NewRNG(1)
	var X [][]float64
	var y []float64
	for i := 0; i < 1000; i++ {
		x := []float64{rng.Float64(), rng.Float64(), rng.Float64()}
		X = append(X, x)
		y = append(y, x[0]+x[1]+x[2])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fit(X, y, 1e-9); err != nil {
			b.Fatal(err)
		}
	}
}
