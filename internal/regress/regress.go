// Package regress implements the linear-regression service-time predictor
// that ReTail (HPCA'22) uses and that the paper's §3.1 motivation experiment
// (Fig. 2) retrains at different load levels.
package regress

import (
	"fmt"
	"math"
)

// Linear is a least-squares linear model y = w·x + b, fit by solving the
// ridge-regularized normal equations.
type Linear struct {
	// W holds the feature weights; B is the intercept.
	W []float64
	B float64
	// Lambda is the ridge regularization strength used at fit time.
	Lambda float64
}

// Fit trains on rows X (n×d) and targets y (n). A small ridge term keeps the
// normal equations well-posed under collinear features.
func Fit(X [][]float64, y []float64, lambda float64) (*Linear, error) {
	n := len(X)
	if n == 0 || n != len(y) {
		return nil, fmt.Errorf("regress: need matching non-empty X (%d) and y (%d)", n, len(y))
	}
	d := len(X[0])
	if d == 0 {
		return nil, fmt.Errorf("regress: zero-width feature rows")
	}
	for i, row := range X {
		if len(row) != d {
			return nil, fmt.Errorf("regress: row %d has %d features, want %d", i, len(row), d)
		}
	}
	if lambda < 0 {
		return nil, fmt.Errorf("regress: negative lambda %v", lambda)
	}

	// Augment with a bias column: solve (A'A + λI)w = A'y for A = [X | 1].
	k := d + 1
	ata := make([][]float64, k)
	for i := range ata {
		ata[i] = make([]float64, k+1) // last column holds A'y
	}
	for r := 0; r < n; r++ {
		row := X[r]
		for i := 0; i < k; i++ {
			xi := 1.0
			if i < d {
				xi = row[i]
			}
			for j := i; j < k; j++ {
				xj := 1.0
				if j < d {
					xj = row[j]
				}
				ata[i][j] += xi * xj
			}
			ata[i][k] += xi * y[r]
		}
	}
	// Mirror the upper triangle and add the ridge (not on the bias).
	for i := 0; i < k; i++ {
		for j := 0; j < i; j++ {
			ata[i][j] = ata[j][i]
		}
		if i < d {
			ata[i][i] += lambda
		}
	}

	w, err := solve(ata, k)
	if err != nil {
		return nil, err
	}
	return &Linear{W: w[:d], B: w[d], Lambda: lambda}, nil
}

// solve performs Gaussian elimination with partial pivoting on the k×(k+1)
// augmented matrix m.
func solve(m [][]float64, k int) ([]float64, error) {
	for col := 0; col < k; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, fmt.Errorf("regress: singular system at column %d (add ridge)", col)
		}
		m[col], m[pivot] = m[pivot], m[col]
		// Eliminate.
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= k; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	w := make([]float64, k)
	for i := 0; i < k; i++ {
		w[i] = m[i][k] / m[i][i]
	}
	return w, nil
}

// Predict evaluates the model on one feature vector.
func (l *Linear) Predict(x []float64) float64 {
	if len(x) != len(l.W) {
		panic(fmt.Sprintf("regress: Predict with %d features, model has %d", len(x), len(l.W)))
	}
	y := l.B
	for i, xi := range x {
		y += l.W[i] * xi
	}
	return y
}

// PredictAll evaluates the model on every row.
func (l *Linear) PredictAll(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = l.Predict(x)
	}
	return out
}

// OnlineLinear is a streaming variant trained by least-mean-squares updates,
// for policies that refine their predictor as requests complete.
type OnlineLinear struct {
	W  []float64
	B  float64
	LR float64
	n  int
}

// NewOnlineLinear returns a model over d features with learning rate lr.
func NewOnlineLinear(d int, lr float64) *OnlineLinear {
	return &OnlineLinear{W: make([]float64, d), LR: lr}
}

// Predict evaluates the current model.
func (o *OnlineLinear) Predict(x []float64) float64 {
	y := o.B
	for i, xi := range x {
		y += o.W[i] * xi
	}
	return y
}

// Observe performs one LMS update toward target y.
func (o *OnlineLinear) Observe(x []float64, y float64) {
	if len(x) != len(o.W) {
		panic("regress: Observe feature width mismatch")
	}
	err := o.Predict(x) - y
	for i, xi := range x {
		o.W[i] -= o.LR * err * xi
	}
	o.B -= o.LR * err
	o.n++
}

// N reports how many observations have been absorbed.
func (o *OnlineLinear) N() int { return o.n }
