package ckpt

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func TestSealOpenRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x42}, make([]byte, 4096)}
	for i := range payloads[3] {
		payloads[3][i] = byte(i * 31)
	}
	for _, kind := range []Kind{KindPolicy, KindDDPG, KindTD3, KindSAC, KindDQN} {
		for _, p := range payloads {
			sealed := Seal(kind, p)
			gotKind, gotPayload, err := Open(sealed)
			if err != nil {
				t.Fatalf("Open(Seal(%s, %d bytes)): %v", kind, len(p), err)
			}
			if gotKind != kind {
				t.Fatalf("kind %s != %s", gotKind, kind)
			}
			if len(gotPayload) != len(p) {
				t.Fatalf("payload length %d != %d", len(gotPayload), len(p))
			}
			for i := range p {
				if gotPayload[i] != p[i] {
					t.Fatalf("payload byte %d differs", i)
				}
			}
		}
	}
}

func TestSealIntoMatchesSeal(t *testing.T) {
	payload := []byte("deeppower policy bytes")
	want := Seal(KindPolicy, payload)
	buf := make([]byte, 0, 256)
	got := SealInto(buf, KindPolicy, payload)
	if string(got) != string(want) {
		t.Fatal("SealInto output differs from Seal")
	}
	// Reuse must not allocate beyond the existing capacity.
	allocs := testing.AllocsPerRun(100, func() {
		buf = SealInto(buf[:0], KindPolicy, payload)
	})
	if allocs != 0 {
		t.Fatalf("SealInto with reused buffer allocated %.1f times per run", allocs)
	}
}

// TestOpenRejectsHeaderTampering flips each header field in turn and checks
// the decoder reports the right typed error.
func TestOpenRejectsHeaderTampering(t *testing.T) {
	base := Seal(KindTD3, []byte("weights"))
	cases := []struct {
		name   string
		mutate func(b []byte)
		want   error
	}{
		{"magic byte 0", func(b []byte) { b[0] = 'X' }, ErrBadMagic},
		{"magic byte 3", func(b []byte) { b[3] ^= 0xFF }, ErrBadMagic},
		{"version bump", func(b []byte) { b[4] = 2 }, ErrVersion},
		{"version zero", func(b []byte) { b[4], b[5] = 0, 0 }, ErrVersion},
		{"kind zero", func(b []byte) { b[6] = 0 }, ErrKind},
		{"kind unknown", func(b []byte) { b[6] = 99 }, ErrKind},
		{"length short", func(b []byte) { b[7]-- }, ErrTruncated},
		{"length long", func(b []byte) { b[7]++ }, ErrTruncated},
		{"length absurd", func(b []byte) { b[13] = 0xFF }, ErrMalformed},
		{"crc flipped", func(b []byte) { b[15] ^= 1 }, ErrChecksum},
		{"payload bit flip", func(b []byte) { b[headerLen] ^= 0x80 }, ErrChecksum},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := append([]byte(nil), base...)
			tc.mutate(b)
			_, _, err := Open(b)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got error %v, want %v", err, tc.want)
			}
		})
	}
	// Truncation at every possible boundary.
	for n := 0; n < len(base); n++ {
		if _, _, err := Open(base[:n]); err == nil {
			t.Fatalf("Open accepted %d-byte prefix of a %d-byte container", n, len(base))
		}
	}
}

// TestOpenRejectsRandomCorruption flips random bytes anywhere in the sealed
// container; any change must fail validation (a single-byte flip cannot
// collide CRC32).
func TestOpenRejectsRandomCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	payload := make([]byte, 512)
	rng.Read(payload)
	base := Seal(KindSAC, payload)
	for i := 0; i < 500; i++ {
		b := append([]byte(nil), base...)
		pos := rng.Intn(len(b))
		delta := byte(1 + rng.Intn(255))
		b[pos] ^= delta
		if _, _, err := Open(b); err == nil {
			t.Fatalf("iteration %d: Open accepted container with byte %d xor %#x", i, pos, delta)
		}
	}
}

func TestOpenKindAndPeekKind(t *testing.T) {
	sealed := Seal(KindDQN, []byte("q"))
	if _, err := OpenKind(sealed, KindDQN); err != nil {
		t.Fatalf("OpenKind same kind: %v", err)
	}
	if _, err := OpenKind(sealed, KindSAC); !errors.Is(err, ErrKind) {
		t.Fatalf("OpenKind wrong kind: got %v, want ErrKind", err)
	}
	if k, ok := PeekKind(sealed); !ok || k != KindDQN {
		t.Fatalf("PeekKind = %v, %v", k, ok)
	}
	if _, ok := PeekKind([]byte(`{"json": true}`)); ok {
		t.Fatal("PeekKind accepted JSON")
	}
	if _, ok := PeekKind(nil); ok {
		t.Fatal("PeekKind accepted nil")
	}
}

func TestEncDecPrimitives(t *testing.T) {
	var e Enc
	e.U8(7)
	e.U32(0xDEADBEEF)
	e.U64(1 << 60)
	e.I64(-42)
	e.Int(123456)
	e.Bool(true)
	e.Bool(false)
	e.F64(math.Pi)
	e.F64s([]float64{1, -2.5, 0})
	e.Ints([]int{9, -9})
	e.String("deeppower")

	d := NewDec(e.Bytes())
	if v := d.U8(); v != 7 {
		t.Fatalf("U8 = %d", v)
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Fatalf("U32 = %x", v)
	}
	if v := d.U64(); v != 1<<60 {
		t.Fatalf("U64 = %d", v)
	}
	if v := d.I64(); v != -42 {
		t.Fatalf("I64 = %d", v)
	}
	if v := d.Int(); v != 123456 {
		t.Fatalf("Int = %d", v)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round-trip failed")
	}
	if v := d.F64(); v != math.Pi {
		t.Fatalf("F64 = %v", v)
	}
	fs := d.F64s()
	if len(fs) != 3 || fs[0] != 1 || fs[1] != -2.5 || fs[2] != 0 {
		t.Fatalf("F64s = %v", fs)
	}
	is := d.Ints()
	if len(is) != 2 || is[0] != 9 || is[1] != -9 {
		t.Fatalf("Ints = %v", is)
	}
	if s := d.String(); s != "deeppower" {
		t.Fatalf("String = %q", s)
	}
	if err := d.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

func TestDecDefensiveness(t *testing.T) {
	t.Run("truncated take", func(t *testing.T) {
		d := NewDec([]byte{1, 2})
		d.U64()
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("got %v", d.Err())
		}
	})
	t.Run("sticky error", func(t *testing.T) {
		d := NewDec(nil)
		d.U32()
		first := d.Err()
		d.U64()
		d.F64s()
		if d.Err() != first {
			t.Fatal("error was overwritten")
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		d := NewDec([]byte{1, 2, 3})
		d.U8()
		if !errors.Is(d.Finish(), ErrMalformed) {
			t.Fatalf("got %v", d.Finish())
		}
	})
	t.Run("bad bool", func(t *testing.T) {
		d := NewDec([]byte{2})
		d.Bool()
		if !errors.Is(d.Err(), ErrMalformed) {
			t.Fatalf("got %v", d.Err())
		}
	})
	t.Run("oversized slice length", func(t *testing.T) {
		var e Enc
		e.U32(1 << 30) // declares 8 GiB of floats
		d := NewDec(e.Bytes())
		d.F64s()
		if !errors.Is(d.Err(), ErrTruncated) {
			t.Fatalf("got %v", d.Err())
		}
	})
	t.Run("non-finite rejected", func(t *testing.T) {
		var e Enc
		e.F64(math.NaN())
		d := NewDec(e.Bytes())
		d.FiniteF64()
		if !errors.Is(d.Err(), ErrNonFinite) {
			t.Fatalf("got %v", d.Err())
		}

		e.Reset()
		e.F64s([]float64{1, math.Inf(-1)})
		d = NewDec(e.Bytes())
		d.FiniteF64s()
		if !errors.Is(d.Err(), ErrNonFinite) {
			t.Fatalf("slice: got %v", d.Err())
		}
	})
}

func TestEncReuseIsAllocationFree(t *testing.T) {
	weights := make([]float64, 256)
	var e Enc
	encode := func() {
		e.Reset()
		e.U32(1)
		e.Int(len(weights))
		e.F64s(weights)
	}
	encode() // warm the buffer
	if allocs := testing.AllocsPerRun(100, encode); allocs != 0 {
		t.Fatalf("Enc reuse allocated %.1f times per run", allocs)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.ckpt")
	if err := WriteFile(path, KindPolicy, []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := WriteFile(path, KindPolicy, []byte("v2")); err != nil {
		t.Fatal(err)
	}
	kind, payload, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindPolicy || string(payload) != "v2" {
		t.Fatalf("read back %s %q", kind, payload)
	}
	// No temp debris may survive a successful write.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries, want 1", len(entries))
	}
}

func TestReadFileRejectsCorruptFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bad.ckpt")
	sealed := Seal(KindDDPG, []byte("payload"))
	sealed[len(sealed)-1] ^= 1
	if err := os.WriteFile(path, sealed, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadFile(path); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestRegistryLifecycle(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Current(); !errors.Is(err, ErrNoCurrent) {
		t.Fatalf("empty registry Current: %v", err)
	}
	if _, err := r.Rollback(); !errors.Is(err, ErrNoCurrent) {
		t.Fatalf("empty registry Rollback: %v", err)
	}

	v1, err := r.Put(Seal(KindPolicy, []byte("first")))
	if err != nil {
		t.Fatal(err)
	}
	v2, err := r.Put(Seal(KindPolicy, []byte("second")))
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 2 {
		t.Fatalf("versions %d, %d", v1, v2)
	}
	// Stored but unpromoted versions are not current.
	if _, err := r.Current(); !errors.Is(err, ErrNoCurrent) {
		t.Fatalf("Current before Promote: %v", err)
	}

	if err := r.Promote(v1); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(v2); err != nil {
		t.Fatal(err)
	}
	if cur, _ := r.Current(); cur != v2 {
		t.Fatalf("current %d, want %d", cur, v2)
	}

	// Rollback returns to the previous good version.
	back, err := r.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != v1 {
		t.Fatalf("rolled back to %d, want %d", back, v1)
	}
	if cur, _ := r.Current(); cur != v1 {
		t.Fatalf("current after rollback %d, want %d", cur, v1)
	}
	// No earlier version left: the ladder must get ErrNoFallback.
	if _, err := r.Rollback(); !errors.Is(err, ErrNoFallback) {
		t.Fatalf("second rollback: %v, want ErrNoFallback", err)
	}

	_, kind, payload, err := r.GetCurrent()
	if err != nil {
		t.Fatal(err)
	}
	if kind != KindPolicy || string(payload) != "first" {
		t.Fatalf("GetCurrent = %s %q", kind, payload)
	}
}

func TestRegistryRejectsInvalidPut(t *testing.T) {
	r, err := OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Put([]byte("not a container")); err == nil {
		t.Fatal("Put accepted garbage")
	}
	if _, _, err := r.Get(1); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("Get missing: %v", err)
	}
	if err := r.Promote(1); !errors.Is(err, ErrNoVersion) {
		t.Fatalf("Promote missing: %v", err)
	}
}

// TestRegistryRecoversAcrossReopen reopens the directory and checks version
// numbering and the promotion history survive a process restart.
func TestRegistryRecoversAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := r.Put(Seal(KindPolicy, []byte("a")))
	v2, _ := r.Put(Seal(KindPolicy, []byte("b")))
	if err := r.Promote(v1); err != nil {
		t.Fatal(err)
	}
	if err := r.Promote(v2); err != nil {
		t.Fatal(err)
	}

	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur, _ := r2.Current(); cur != v2 {
		t.Fatalf("reopened current %d, want %d", cur, v2)
	}
	if h := r2.History(); len(h) != 2 || h[0] != v1 || h[1] != v2 {
		t.Fatalf("reopened history %v", h)
	}
	v3, err := r2.Put(Seal(KindPolicy, []byte("c")))
	if err != nil {
		t.Fatal(err)
	}
	if v3 != 3 {
		t.Fatalf("version numbering reset: got %d, want 3", v3)
	}
	// Rollback still works after reopen.
	back, err := r2.Rollback()
	if err != nil {
		t.Fatal(err)
	}
	if back != v1 {
		t.Fatalf("rolled back to %d, want %d", back, v1)
	}
}

// TestRegistryIgnoresDanglingHistory simulates a crash that deleted a
// checkpoint file but left it in HISTORY: the entry must be dropped.
func TestRegistryIgnoresDanglingHistory(t *testing.T) {
	dir := t.TempDir()
	r, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	v1, _ := r.Put(Seal(KindPolicy, []byte("a")))
	v2, _ := r.Put(Seal(KindPolicy, []byte("b")))
	r.Promote(v1)
	r.Promote(v2)
	if err := os.Remove(filepath.Join(dir, "v0002.ckpt")); err != nil {
		t.Fatal(err)
	}
	r2, err := OpenRegistry(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cur, _ := r2.Current(); cur != v1 {
		t.Fatalf("current %d, want %d after dangling entry dropped", cur, v1)
	}
}
