package ckpt

import (
	"fmt"
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path crash-safely: the bytes land in a
// temp file in the same directory, are fsynced, and the temp file is
// atomically renamed over path; the directory is then fsynced so the rename
// itself survives a crash. A reader therefore observes either the old file
// or the complete new one — never a torn write.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("ckpt: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	// Any failure path must remove the temp file so crashed writes cannot
	// accumulate (loads never look at dotfiles, but the directory should
	// not fill with debris either).
	cleanup := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		return cleanup(fmt.Errorf("ckpt: writing %s: %w", path, err))
	}
	if err := tmp.Sync(); err != nil {
		return cleanup(fmt.Errorf("ckpt: fsync %s: %w", path, err))
	}
	if err := tmp.Close(); err != nil {
		return cleanup(fmt.Errorf("ckpt: closing %s: %w", path, err))
	}
	if err := os.Rename(tmpName, path); err != nil {
		return cleanup(fmt.Errorf("ckpt: renaming into %s: %w", path, err))
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a completed rename is durable. Some
// filesystems refuse to fsync directories; that is not a correctness
// problem for the atomicity guarantee, so such errors are ignored.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	_ = d.Sync()
	return nil
}

// WriteFile seals payload under kind and writes it crash-safely to path.
func WriteFile(path string, kind Kind, payload []byte) error {
	return WriteFileAtomic(path, Seal(kind, payload))
}

// ReadFile reads path and validates the container, returning its kind and
// payload.
func ReadFile(path string) (Kind, []byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, nil, fmt.Errorf("ckpt: reading %s: %w", path, err)
	}
	kind, payload, err := Open(data)
	if err != nil {
		return 0, nil, fmt.Errorf("%s: %w", path, err)
	}
	return kind, payload, nil
}
