// Package ckpt is the repo's durability layer: a deterministic, versioned
// binary container for trained-policy and trainer-checkpoint payloads,
// crash-safe file I/O, and a small promote/rollback policy registry.
//
// The container layout is
//
//	magic "DPCK" | version u16 | kind u8 | payload length u64 | CRC32 u32 | payload
//
// (all integers little-endian, CRC32 = IEEE over the payload bytes). The
// payload itself is written with the Enc/Dec primitives below: fixed-width
// integers, IEEE-754 float64 bit patterns, and length-prefixed slices —
// no reflection, no maps, byte-identical output for identical state.
//
// Decoding is defensive by construction: every read is bounds-checked
// (ErrTruncated), the header is validated field by field (ErrBadMagic,
// ErrVersion, ErrKind), the checksum must match (ErrChecksum), and
// higher-level decoders reject impossible shapes (ErrMalformed) and
// non-finite weights (ErrNonFinite) — a corrupt checkpoint must fail loudly
// at load time, never silently actuate garbage frequencies.
package ckpt

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// Magic identifies a ckpt container file.
const Magic = "DPCK"

// Version is the current container format version. Decoders accept exactly
// this version; the version/compat policy is documented in DESIGN.md.
const Version uint16 = 1

// headerLen is magic(4) + version(2) + kind(1) + payloadLen(8) + crc(4).
const headerLen = 4 + 2 + 1 + 8 + 4

// maxPayload bounds the declared payload length a decoder will believe, so
// a corrupt header cannot make a reader attempt a multi-gigabyte allocation.
const maxPayload = 1 << 30

// Kind identifies what a container's payload holds.
type Kind uint8

// Registered payload kinds.
const (
	KindInvalid Kind = iota
	// KindPolicy is an exported actor/Q network — the unit the registry
	// stores and the serving/hot-swap path consumes.
	KindPolicy
	// KindDDPG..KindDQN are full trainer checkpoints: config shape header,
	// every live and target network, optimizer moments, RNG positions, and
	// optional replay contents.
	KindDDPG
	KindTD3
	KindSAC
	KindDQN
)

// String names the kind for error messages.
func (k Kind) String() string {
	switch k {
	case KindPolicy:
		return "policy"
	case KindDDPG:
		return "ddpg"
	case KindTD3:
		return "td3"
	case KindSAC:
		return "sac"
	case KindDQN:
		return "dqn"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

func (k Kind) valid() bool { return k >= KindPolicy && k <= KindDQN }

// Typed decode errors. Callers branch with errors.Is; every error carries a
// human-readable detail via %w wrapping.
var (
	// ErrTruncated marks input shorter than its own declarations.
	ErrTruncated = errors.New("ckpt: truncated input")
	// ErrBadMagic marks input that is not a ckpt container at all.
	ErrBadMagic = errors.New("ckpt: bad magic")
	// ErrVersion marks a container from an unknown format version.
	ErrVersion = errors.New("ckpt: unsupported format version")
	// ErrKind marks an unregistered or unexpected payload kind.
	ErrKind = errors.New("ckpt: unexpected payload kind")
	// ErrChecksum marks payload bytes that fail the header CRC.
	ErrChecksum = errors.New("ckpt: payload checksum mismatch")
	// ErrMalformed marks a payload whose declared shapes are impossible.
	ErrMalformed = errors.New("ckpt: malformed payload")
	// ErrNonFinite marks a payload carrying NaN or Inf weights.
	ErrNonFinite = errors.New("ckpt: non-finite value in payload")
)

// Seal wraps payload in a container of the given kind: header, CRC, payload.
// The returned slice is freshly allocated.
func Seal(kind Kind, payload []byte) []byte {
	out := make([]byte, headerLen+len(payload))
	SealInto(out[:0], kind, payload)
	return out
}

// SealInto appends the sealed container to dst (which may be nil) and
// returns the extended slice — the allocation-free variant for callers that
// reuse a buffer across periodic checkpoints.
func SealInto(dst []byte, kind Kind, payload []byte) []byte {
	dst = append(dst, Magic...)
	dst = binary.LittleEndian.AppendUint16(dst, Version)
	dst = append(dst, byte(kind))
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(payload)))
	dst = binary.LittleEndian.AppendUint32(dst, crc32.ChecksumIEEE(payload))
	return append(dst, payload...)
}

// Open validates a container and returns its kind and payload (aliasing
// data). It rejects truncated input, foreign magic, unknown versions and
// kinds, length mismatches, and checksum failures with typed errors.
func Open(data []byte) (Kind, []byte, error) {
	if len(data) < headerLen {
		return 0, nil, fmt.Errorf("%w: %d bytes, header needs %d", ErrTruncated, len(data), headerLen)
	}
	if string(data[:4]) != Magic {
		return 0, nil, fmt.Errorf("%w: %q", ErrBadMagic, data[:4])
	}
	v := binary.LittleEndian.Uint16(data[4:6])
	if v != Version {
		return 0, nil, fmt.Errorf("%w: %d (decoder speaks %d)", ErrVersion, v, Version)
	}
	kind := Kind(data[6])
	if !kind.valid() {
		return 0, nil, fmt.Errorf("%w: %s", ErrKind, kind)
	}
	plen := binary.LittleEndian.Uint64(data[7:15])
	if plen > maxPayload {
		return 0, nil, fmt.Errorf("%w: declared payload %d exceeds limit", ErrMalformed, plen)
	}
	if uint64(len(data)-headerLen) != plen {
		return 0, nil, fmt.Errorf("%w: payload %d bytes, header declares %d",
			ErrTruncated, len(data)-headerLen, plen)
	}
	payload := data[headerLen:]
	if crc := crc32.ChecksumIEEE(payload); crc != binary.LittleEndian.Uint32(data[15:19]) {
		return 0, nil, fmt.Errorf("%w: computed %08x, header declares %08x",
			ErrChecksum, crc, binary.LittleEndian.Uint32(data[15:19]))
	}
	return kind, payload, nil
}

// OpenKind is Open restricted to one expected kind.
func OpenKind(data []byte, want Kind) ([]byte, error) {
	kind, payload, err := Open(data)
	if err != nil {
		return nil, err
	}
	if kind != want {
		return nil, fmt.Errorf("%w: got %s, want %s", ErrKind, kind, want)
	}
	return payload, nil
}

// PeekKind reports the kind of a sealed container without verifying the
// checksum — the cheap sniff compatibility shims use to distinguish the
// binary format from legacy JSON.
func PeekKind(data []byte) (Kind, bool) {
	if len(data) < 7 || string(data[:4]) != Magic {
		return 0, false
	}
	return Kind(data[6]), true
}

// Enc appends primitive values to a growing byte buffer. The zero value is
// ready to use; Reset keeps the capacity so periodic checkpoint encoding is
// allocation-free at steady state.
type Enc struct {
	buf []byte
}

// Reset empties the buffer, retaining capacity.
func (e *Enc) Reset() { e.buf = e.buf[:0] }

// Bytes returns the encoded payload (aliasing the internal buffer).
func (e *Enc) Bytes() []byte { return e.buf }

// U8 appends one byte.
func (e *Enc) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Enc) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Enc) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends a little-endian int64.
func (e *Enc) I64(v int64) { e.U64(uint64(v)) }

// Int appends an int as an int64.
func (e *Enc) Int(v int) { e.I64(int64(v)) }

// Bool appends a 0/1 byte.
func (e *Enc) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// F64 appends an IEEE-754 bit pattern.
func (e *Enc) F64(v float64) { e.U64(math.Float64bits(v)) }

// F64s appends a length-prefixed float64 slice.
func (e *Enc) F64s(vs []float64) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.F64(v)
	}
}

// Ints appends a length-prefixed int slice.
func (e *Enc) Ints(vs []int) {
	e.U32(uint32(len(vs)))
	for _, v := range vs {
		e.Int(v)
	}
}

// String appends a length-prefixed UTF-8 string.
func (e *Enc) String(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Dec reads primitive values from a payload with sticky-error semantics:
// after the first failure every further read returns zero values, and Err
// reports the failure. Decoders can therefore read an entire structure
// linearly and check the error once.
type Dec struct {
	buf []byte
	off int
	err error
}

// NewDec returns a decoder over payload.
func NewDec(payload []byte) *Dec { return &Dec{buf: payload} }

// Err reports the first decode failure, nil if none.
func (d *Dec) Err() error { return d.err }

// Len reports unread bytes.
func (d *Dec) Len() int { return len(d.buf) - d.off }

// Finish errors unless the payload was consumed exactly.
func (d *Dec) Finish() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		d.err = fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.buf)-d.off)
	}
	return d.err
}

// fail records the first error.
func (d *Dec) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

// take returns the next n bytes, or nil after marking truncation.
func (d *Dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || len(d.buf)-d.off < n {
		d.fail(fmt.Errorf("%w: need %d bytes, have %d", ErrTruncated, n, len(d.buf)-d.off))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// U8 reads one byte.
func (d *Dec) U8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a little-endian uint32.
func (d *Dec) U32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a little-endian uint64.
func (d *Dec) U64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads a little-endian int64.
func (d *Dec) I64() int64 { return int64(d.U64()) }

// Int reads an int64 and errors if it does not fit an int.
func (d *Dec) Int() int {
	v := d.I64()
	if int64(int(v)) != v {
		d.fail(fmt.Errorf("%w: int64 %d overflows int", ErrMalformed, v))
		return 0
	}
	return int(v)
}

// Bool reads a 0/1 byte, rejecting other values.
func (d *Dec) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail(fmt.Errorf("%w: boolean byte out of range", ErrMalformed))
		return false
	}
}

// F64 reads an IEEE-754 bit pattern (NaN/Inf pass through; use FiniteF64 or
// CheckFinite where non-finite values must be rejected).
func (d *Dec) F64() float64 { return math.Float64frombits(d.U64()) }

// FiniteF64 reads a float64 and rejects NaN and ±Inf.
func (d *Dec) FiniteF64() float64 {
	v := d.F64()
	if d.err == nil && (math.IsNaN(v) || math.IsInf(v, 0)) {
		d.fail(fmt.Errorf("%w: %v", ErrNonFinite, v))
		return 0
	}
	return v
}

// F64s reads a length-prefixed float64 slice, bounding the declared length
// by the remaining input so corrupt lengths cannot force huge allocations.
func (d *Dec) F64s() []float64 {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	if n*8 > d.Len() {
		d.fail(fmt.Errorf("%w: slice of %d float64s exceeds %d remaining bytes",
			ErrTruncated, n, d.Len()))
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	return out
}

// FiniteF64s is F64s with a finiteness sweep.
func (d *Dec) FiniteF64s() []float64 {
	out := d.F64s()
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			d.fail(fmt.Errorf("%w: %v", ErrNonFinite, v))
			return nil
		}
	}
	return out
}

// Ints reads a length-prefixed int slice.
func (d *Dec) Ints() []int {
	n := int(d.U32())
	if d.err != nil {
		return nil
	}
	if n*8 > d.Len() {
		d.fail(fmt.Errorf("%w: slice of %d ints exceeds %d remaining bytes",
			ErrTruncated, n, d.Len()))
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = d.Int()
	}
	return out
}

// String reads a length-prefixed string.
func (d *Dec) String() string {
	n := int(d.U32())
	if d.err != nil {
		return ""
	}
	b := d.take(n)
	if b == nil {
		return ""
	}
	return string(b)
}
