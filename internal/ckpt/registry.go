package ckpt

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Registry errors.
var (
	// ErrNoCurrent marks a registry with no promoted version.
	ErrNoCurrent = errors.New("ckpt: registry has no promoted version")
	// ErrNoVersion marks a lookup of a version the registry does not hold.
	ErrNoVersion = errors.New("ckpt: no such version in registry")
	// ErrNoFallback marks a rollback with no earlier good version to fall
	// back to.
	ErrNoFallback = errors.New("ckpt: no earlier version to roll back to")
)

// historyFile is the registry's single piece of mutable state: the promotion
// history, one version number per line, oldest first. The last line is the
// current version. It is rewritten atomically on every Promote/Rollback, so
// a crash leaves either the old history or the new one — never a torn file.
const historyFile = "HISTORY"

// Registry is a versioned policy store over a directory. Each Put writes a
// sealed container to v<NNNN>.ckpt crash-safely and returns its version;
// Promote appends that version to the promotion history; Rollback pops the
// history so Current becomes the previous good version. The trainer Puts and
// Promotes periodically; the guard Rollbacks when a promoted policy turns
// out to breach the SLA in production.
//
// A Registry is single-writer: the training/serving process owns the
// directory. Reads tolerate concurrent readers.
type Registry struct {
	dir     string
	next    int   // next version number to assign
	history []int // promotion history, oldest first; last is current
}

// OpenRegistry opens (creating if needed) a registry rooted at dir and
// recovers its state from the directory contents and HISTORY file.
func OpenRegistry(dir string) (*Registry, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("ckpt: creating registry dir: %w", err)
	}
	r := &Registry{dir: dir, next: 1}
	versions, err := r.scan()
	if err != nil {
		return nil, err
	}
	if len(versions) > 0 {
		r.next = versions[len(versions)-1] + 1
	}
	if err := r.loadHistory(versions); err != nil {
		return nil, err
	}
	return r, nil
}

// Dir returns the registry's root directory.
func (r *Registry) Dir() string { return r.dir }

// scan lists the stored version numbers in ascending order.
func (r *Registry) scan() ([]int, error) {
	entries, err := os.ReadDir(r.dir)
	if err != nil {
		return nil, fmt.Errorf("ckpt: reading registry dir: %w", err)
	}
	var versions []int
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "v") || !strings.HasSuffix(name, ".ckpt") {
			continue
		}
		v, err := strconv.Atoi(strings.TrimSuffix(strings.TrimPrefix(name, "v"), ".ckpt"))
		if err != nil || v <= 0 {
			continue
		}
		versions = append(versions, v)
	}
	sort.Ints(versions)
	return versions, nil
}

// loadHistory reads the HISTORY file, dropping entries whose checkpoint file
// has vanished (a crash between file deletion and history rewrite must not
// leave the registry pointing at nothing).
func (r *Registry) loadHistory(stored []int) error {
	data, err := os.ReadFile(filepath.Join(r.dir, historyFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("ckpt: reading registry history: %w", err)
	}
	have := make(map[int]bool, len(stored))
	for _, v := range stored {
		have[v] = true
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		v, err := strconv.Atoi(line)
		if err != nil {
			return fmt.Errorf("%w: registry history line %q", ErrMalformed, line)
		}
		if have[v] {
			r.history = append(r.history, v)
		}
	}
	return nil
}

// writeHistory atomically rewrites the HISTORY file from r.history.
func (r *Registry) writeHistory() error {
	var b strings.Builder
	for _, v := range r.history {
		fmt.Fprintf(&b, "%d\n", v)
	}
	return WriteFileAtomic(filepath.Join(r.dir, historyFile), []byte(b.String()))
}

// path returns the file path for a version.
func (r *Registry) path(version int) string {
	return filepath.Join(r.dir, fmt.Sprintf("v%04d.ckpt", version))
}

// Put validates data as a sealed container, writes it crash-safely, and
// returns the assigned version. Put does not promote: a freshly trained
// policy becomes servable only after an explicit Promote.
func (r *Registry) Put(data []byte) (int, error) {
	if _, _, err := Open(data); err != nil {
		return 0, fmt.Errorf("ckpt: refusing to store invalid container: %w", err)
	}
	v := r.next
	if err := WriteFileAtomic(r.path(v), data); err != nil {
		return 0, err
	}
	r.next = v + 1
	return v, nil
}

// Get reads and validates a stored version.
func (r *Registry) Get(version int) (Kind, []byte, error) {
	kind, payload, err := ReadFile(r.path(version))
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return 0, nil, fmt.Errorf("%w: v%d", ErrNoVersion, version)
		}
		return 0, nil, err
	}
	return kind, payload, nil
}

// Promote marks version as current, appending it to the promotion history.
// Promoting the already-current version is a no-op.
func (r *Registry) Promote(version int) error {
	if _, err := os.Stat(r.path(version)); err != nil {
		return fmt.Errorf("%w: v%d", ErrNoVersion, version)
	}
	if n := len(r.history); n > 0 && r.history[n-1] == version {
		return nil
	}
	r.history = append(r.history, version)
	if err := r.writeHistory(); err != nil {
		r.history = r.history[:len(r.history)-1]
		return err
	}
	return nil
}

// Rollback abandons the current version and returns the previous good
// version, which becomes current. It fails with ErrNoFallback when the
// history has no earlier entry — the caller's escalation ladder must then
// proceed to its next rung (for the guard: pin max frequency).
func (r *Registry) Rollback() (int, error) {
	if len(r.history) == 0 {
		return 0, ErrNoCurrent
	}
	if len(r.history) == 1 {
		return 0, ErrNoFallback
	}
	popped := r.history[len(r.history)-1]
	r.history = r.history[:len(r.history)-1]
	if err := r.writeHistory(); err != nil {
		r.history = append(r.history, popped)
		return 0, err
	}
	return r.history[len(r.history)-1], nil
}

// Current returns the promoted version, or ErrNoCurrent.
func (r *Registry) Current() (int, error) {
	if len(r.history) == 0 {
		return 0, ErrNoCurrent
	}
	return r.history[len(r.history)-1], nil
}

// GetCurrent reads and validates the currently promoted version.
func (r *Registry) GetCurrent() (int, Kind, []byte, error) {
	v, err := r.Current()
	if err != nil {
		return 0, 0, nil, err
	}
	kind, payload, err := r.Get(v)
	return v, kind, payload, err
}

// History returns a copy of the promotion history, oldest first.
func (r *Registry) History() []int {
	out := make([]int, len(r.history))
	copy(out, r.history)
	return out
}

// Versions returns the stored version numbers in ascending order (stored,
// not necessarily ever promoted).
func (r *Registry) Versions() ([]int, error) { return r.scan() }
