package ckpt

import (
	"bytes"
	"testing"
)

// FuzzOpen throws arbitrary bytes at the container decoder. The invariants:
// Open never panics, never returns a payload without nil error on malformed
// input, and accepts a re-sealed copy of anything it accepted.
func FuzzOpen(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("DPCK"))
	f.Add(Seal(KindPolicy, nil))
	f.Add(Seal(KindDDPG, []byte("weights")))
	f.Add(Seal(KindDQN, bytes.Repeat([]byte{0xAB}, 64)))
	truncated := Seal(KindTD3, []byte("0123456789"))
	f.Add(truncated[:len(truncated)-3])
	flipped := Seal(KindSAC, []byte("payload"))
	flipped[headerLen] ^= 0x01
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		kind, payload, err := Open(data)
		if err != nil {
			return
		}
		if !kind.valid() {
			t.Fatalf("Open returned invalid kind %d without error", kind)
		}
		// Round-trip: re-sealing an accepted payload must reproduce the
		// input byte-for-byte (the header encodes no other state).
		resealed := Seal(kind, payload)
		if !bytes.Equal(resealed, data) {
			t.Fatalf("re-seal mismatch: %d bytes in, %d bytes out", len(data), len(resealed))
		}
	})
}

// FuzzDec drives the primitive decoder with an arbitrary payload and a
// script of reads derived from the payload itself; the decoder must never
// panic and must go sticky-error on bad input rather than looping.
func FuzzDec(f *testing.F) {
	var e Enc
	e.U32(3)
	e.F64s([]float64{1, 2, 3})
	e.String("actor")
	f.Add(e.Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewDec(data)
		for i := 0; i < 64 && d.Err() == nil; i++ {
			switch i % 8 {
			case 0:
				d.U8()
			case 1:
				d.U32()
			case 2:
				d.U64()
			case 3:
				d.Int()
			case 4:
				d.Bool()
			case 5:
				d.FiniteF64()
			case 6:
				d.F64s()
			case 7:
				_ = d.String()
			}
		}
	})
}
