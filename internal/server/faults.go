package server

import (
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
)

// FaultInjector is the hook surface through which a fault-injection
// subsystem (internal/fault) perturbs a running simulation without forking
// any of its layers. All methods are invoked from the simulation thread.
//
// The zero Config carries no injector: the simulator models a perfect world
// (instant DVFS, exact telemetry, immortal cores) exactly as before.
type FaultInjector interface {
	// OnFreqSet intercepts a requested DVFS transition on a core. It
	// returns the (possibly altered) frequency, an extra actuation delay
	// on top of the ladder's transition latency, and whether the request
	// is dropped entirely — the `userspace` governor's sysfs write being
	// slow, reordered, or lost.
	OnFreqSet(now sim.Time, core int, f cpu.Freq) (out cpu.Freq, delay sim.Time, drop bool)
	// FreqCap returns a thermal-throttle ceiling active on a core at now
	// (0 = none). The hardware clamps both new requests and the standing
	// target to the cap while it is active.
	FreqCap(now sim.Time, core int) cpu.Freq
	// CoreOffline reports whether a core refuses new dispatches at now —
	// the hotplug/failure model. A busy core drains its request first.
	CoreOffline(now sim.Time, core int) bool
	// PerturbSnapshot distorts the system-information feed before a
	// policy observes it: noisy RAPL energy reads, stale samples, and
	// dropped detail fields.
	PerturbSnapshot(now sim.Time, snap Snapshot) Snapshot
	// Stats reports cumulative injected-fault counters for the Result.
	Stats() map[string]uint64
}

// StatsReporter is implemented by policies (e.g. the guarded-policy
// watchdog) that want to export counters on the run's Result.
type StatsReporter interface {
	// ResultStats returns named counters to attach to the Result.
	ResultStats() map[string]float64
}
