// Package server simulates the latency-critical system of the paper's Fig. 3:
// an open-loop request queue drained by worker threads pinned one-to-one to
// DVFS-capable cores, with a pluggable power-management policy, socket energy
// metering, and the system-information feed the DeepPower framework consumes.
package server

import (
	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/sim"
)

// Request is one in-flight client request.
type Request struct {
	// ID is a monotonically increasing sequence number.
	ID uint64
	// Arrive is when the request entered the server queue.
	Arrive sim.Time
	// Start is when a worker began processing it (-1 until dispatched).
	Start sim.Time
	// Finish is when processing completed (-1 until then).
	Finish sim.Time
	// Work holds the sampled demand and observable features.
	Work app.Work
	// ServiceActual is the contended reference service time fixed at
	// dispatch: Work.ServiceRef · (1 + ContentionCoef·ρ).
	ServiceActual sim.Time
	// CoreID is the core that processed the request (-1 until dispatched).
	CoreID int

	// remaining is reference-service seconds of work left.
	remaining float64
}

// Dispatched reports whether a worker has started the request.
func (r *Request) Dispatched() bool { return r.Start >= 0 }

// Done reports whether processing completed.
func (r *Request) Done() bool { return r.Finish >= 0 }

// Latency returns the end-to-end latency (queue wait + service). It panics
// if the request has not finished.
func (r *Request) Latency() sim.Time {
	if !r.Done() {
		panic("server: Latency of unfinished request")
	}
	return r.Finish - r.Arrive
}

// QueueWait returns time spent waiting before dispatch.
func (r *Request) QueueWait() sim.Time {
	if !r.Dispatched() {
		panic("server: QueueWait of undispatched request")
	}
	return r.Start - r.Arrive
}

// SLARemaining returns how much of the SLA budget is left at time now
// (negative once the request has already exceeded its deadline).
func (r *Request) SLARemaining(now, sla sim.Time) sim.Time {
	return sla - (now - r.Arrive)
}

// Elapsed returns how long the request has been in the system at now.
func (r *Request) Elapsed(now sim.Time) sim.Time { return now - r.Arrive }

// fifo is an allocation-friendly FIFO queue of requests.
type fifo struct {
	items []*Request
	head  int
}

func (q *fifo) Len() int { return len(q.items) - q.head }

func (q *fifo) Push(r *Request) { q.items = append(q.items, r) }

func (q *fifo) Pop() *Request {
	if q.Len() == 0 {
		return nil
	}
	r := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	// Compact once the dead prefix dominates.
	if q.head > 64 && q.head*2 >= len(q.items) {
		n := copy(q.items, q.items[q.head:])
		q.items = q.items[:n]
		q.head = 0
	}
	return r
}

// Peek returns the i-th queued request (0 = next to dispatch) or nil.
func (q *fifo) Peek(i int) *Request {
	if i < 0 || i >= q.Len() {
		return nil
	}
	return q.items[q.head+i]
}
