// Package server simulates the latency-critical system of the paper's Fig. 3:
// an open-loop request queue drained by worker threads pinned one-to-one to
// DVFS-capable cores, with a pluggable power-management policy, socket energy
// metering, and the system-information feed the DeepPower framework consumes.
package server

import (
	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/sim"
)

// Request is one in-flight client request.
type Request struct {
	// ID is a monotonically increasing sequence number.
	ID uint64
	// Arrive is when the request entered the server queue.
	Arrive sim.Time
	// Start is when a worker began processing it (-1 until dispatched).
	Start sim.Time
	// Finish is when processing completed (-1 until then).
	Finish sim.Time
	// Work holds the sampled demand and observable features.
	Work app.Work
	// ServiceActual is the contended reference service time fixed at
	// dispatch: Work.ServiceRef · (1 + ContentionCoef·ρ).
	ServiceActual sim.Time
	// CoreID is the core that processed the request (-1 until dispatched).
	CoreID int
	// Stage is the DAG stage index this request executes, or -1 for flat
	// (single-stage) requests. For stage requests Arrive is the owning
	// job's arrival, so SLARemaining tracks the end-to-end budget.
	Stage int

	// remaining is reference-service seconds of work left.
	remaining float64
	// job is the owning DAG job, nil for flat requests.
	job *job
}

// Dispatched reports whether a worker has started the request.
func (r *Request) Dispatched() bool { return r.Start >= 0 }

// Done reports whether processing completed.
func (r *Request) Done() bool { return r.Finish >= 0 }

// Latency returns the end-to-end latency (queue wait + service). It panics
// if the request has not finished.
func (r *Request) Latency() sim.Time {
	if !r.Done() {
		panic("server: Latency of unfinished request")
	}
	return r.Finish - r.Arrive
}

// QueueWait returns time spent waiting before dispatch.
func (r *Request) QueueWait() sim.Time {
	if !r.Dispatched() {
		panic("server: QueueWait of undispatched request")
	}
	return r.Start - r.Arrive
}

// SLARemaining returns how much of the SLA budget is left at time now
// (negative once the request has already exceeded its deadline).
func (r *Request) SLARemaining(now, sla sim.Time) sim.Time {
	return sla - (now - r.Arrive)
}

// Elapsed returns how long the request has been in the system at now.
func (r *Request) Elapsed(now sim.Time) sim.Time { return now - r.Arrive }

// fifo is a FIFO queue of requests backed by a power-of-two ring buffer.
// Pushes and pops move two monotone counters over a fixed ring — no
// head-offset slice growth, no compaction copies — so a steady-state queue
// allocates nothing. The ring grows (doubling, preserving order) only when
// the queue's high-water mark rises; popped slots are nilled so completed
// requests are not pinned by the ring.
type fifo struct {
	buf        []*Request // power-of-two length (0 until first Push)
	head, tail uint64     // monotone counters; queued = [head, tail)
}

func (q *fifo) Len() int { return int(q.tail - q.head) }

func (q *fifo) Push(r *Request) {
	if int(q.tail-q.head) == len(q.buf) {
		q.grow()
	}
	q.buf[q.tail&uint64(len(q.buf)-1)] = r
	q.tail++
}

// grow doubles the ring, unwrapping the live window to the front.
func (q *fifo) grow() {
	n := len(q.buf) * 2
	if n == 0 {
		n = 16
	}
	nb := make([]*Request, n)
	for i, c := 0, q.head; c != q.tail; i, c = i+1, c+1 {
		nb[i] = q.buf[c&uint64(len(q.buf)-1)]
	}
	q.buf = nb
	q.tail -= q.head
	q.head = 0
}

func (q *fifo) Pop() *Request {
	if q.head == q.tail {
		return nil
	}
	i := q.head & uint64(len(q.buf)-1)
	r := q.buf[i]
	q.buf[i] = nil // release the slot's reference
	q.head++
	return r
}

// Peek returns the i-th queued request (0 = next to dispatch) or nil.
func (q *fifo) Peek(i int) *Request {
	if i < 0 || i >= q.Len() {
		return nil
	}
	return q.buf[(q.head+uint64(i))&uint64(len(q.buf)-1)]
}
