package server

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/power"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/stats"
	"github.com/deeppower/deeppower/internal/workload"
)

// Config parameterizes a server simulation.
type Config struct {
	// App is the latency-critical application profile. A profile with a DAG
	// makes every arrival a stage graph: stages enter the FIFO when their
	// predecessors complete and the SLA applies end-to-end.
	App *app.Profile
	// Ladder is the DVFS frequency ladder (DefaultLadder if zero). With a
	// Topology it remains the default/reporting ladder; each core actuates
	// on its own class ladder.
	Ladder cpu.Ladder
	// Topology, when non-nil, builds heterogeneous cores: per-class
	// ladders, speed factors, and power-curve scaling. It overrides the
	// profile's Workers count (the topology defines how many cores exist).
	// Nil keeps the homogeneous model byte-identical to earlier versions.
	Topology *cpu.Topology
	// Power is the socket power model (DefaultModel if zero).
	Power power.Model
	// Tick is the server's control-loop granularity — the paper's
	// ShortTime. Defaults to 1 ms.
	Tick sim.Time
	// Seed drives all randomness (arrivals, service times).
	Seed int64
	// DiscardLatencies disables per-request latency retention (long
	// training runs only need counters).
	DiscardLatencies bool
	// LatencyCap, when positive, bounds how many per-request latency
	// samples are retained; completions beyond the cap are counted in
	// Counters.LatencyDropped instead of retained, so long runs have
	// bounded memory even without DiscardLatencies. The streaming
	// mean/p99 digests still see every completion. 0 means unlimited.
	LatencyCap int
	// SeriesInterval, when positive, records a time series row every
	// interval (RPS, power, queue, frequency) for Fig. 8-style plots.
	SeriesInterval sim.Time
	// WarmupTime excludes requests arriving before it from latency and
	// energy statistics (energy is still metered; reporting subtracts).
	Warmup sim.Time
	// Interference, when non-nil, returns the extra contention pressure a
	// colocated workload exerts at a given time (0 = none, 1 = as much as
	// a fully busy neighbor). It inflates service times through the same
	// contention model as sibling workers — the co-location effect §3.1
	// identifies as what breaks load-unaware predictors.
	Interference func(sim.Time) float64
	// Faults, when non-nil, injects actuation, sensor, and core faults
	// into the run (see internal/fault). Nil keeps the perfect-world
	// model and the exact behavior of earlier versions.
	Faults FaultInjector
	// RecordJobs retains a JobTrace per completed DAG job (invariant
	// tests); only meaningful with a DAG profile.
	RecordJobs bool
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.App == nil {
		return out, fmt.Errorf("server: Config.App is required")
	}
	if err := out.App.Validate(); err != nil {
		return out, err
	}
	if out.Ladder == (cpu.Ladder{}) {
		out.Ladder = cpu.DefaultLadder()
	}
	if err := out.Ladder.Validate(); err != nil {
		return out, err
	}
	if out.Power == (power.Model{}) {
		out.Power = power.DefaultModel()
	}
	if err := out.Power.Validate(); err != nil {
		return out, err
	}
	if out.Tick == 0 {
		out.Tick = sim.Millisecond
	}
	if out.Tick < 0 {
		return out, fmt.Errorf("server: negative tick %v", out.Tick)
	}
	if out.Warmup < 0 || out.SeriesInterval < 0 {
		return out, fmt.Errorf("server: negative warmup or series interval")
	}
	if out.LatencyCap < 0 {
		return out, fmt.Errorf("server: negative latency cap %d", out.LatencyCap)
	}
	if out.Topology != nil {
		if err := out.Topology.Validate(); err != nil {
			return out, err
		}
	}
	return out, nil
}

// worker is one thread pinned to one core.
type worker struct {
	core     *cpu.Core
	req      *Request
	lastSync sim.Time  // work progress is integrated up to here
	compl    sim.Event // tentative completion event

	// class is the core's topology class index (0 when homogeneous); the
	// scale factors are the class's, all exactly 1 on homogeneous servers
	// so the hot-path arithmetic is bit-identical to the unscaled model.
	class     int
	speed     float64
	dynScale  float64
	leakScale float64
	// parked marks a core disabled by placement: it drains its current
	// request but takes no new work until re-enabled.
	parked bool

	// completeFn is the worker's completion callback, bound once at
	// construction so rescheduling a completion never allocates a closure.
	completeFn func()
}

// Server simulates the latency-critical system under one Policy.
type Server struct {
	eng     *sim.Engine
	cfg     Config
	prof    *app.Profile
	policy  Policy
	cores   []*cpu.Core
	workers []*worker
	queue   fifo
	meter   *power.Meter

	counters     Counters
	applyPending []bool     // per-core governor apply in flight (fault delays)
	applyFns     []func()   // per-core delayed-apply callbacks, bound once
	wantFreq     []cpu.Freq // last accepted governor request per core
	latencies    latBlocks  // seconds, completed requests after warmup
	latMean      stats.Welford
	latP99       *stats.P2Quantile
	totalCycles  float64 // Σ freq·dt over all cores, for avg frequency
	powerLast    []sim.Time
	uncoreLast   sim.Time
	warmupEnergy float64
	warmupDone   bool

	rngService *sim.RNG
	arrivals   *workload.Arrivals
	nextID     uint64
	endAt      sim.Time
	runStart   sim.Time
	cancelTick func()

	// arrivalFn is the arrival callback bound once at construction, and
	// reqFree pools completed Requests for reuse within the episode —
	// together with the workers' bound completion callbacks they make a
	// steady-state arrival/dispatch/complete cycle allocation-free.
	// injectFn is the externally-driven variant (admit without rearming the
	// internal generator), bound once for the same reason.
	arrivalFn  func()
	injectFn   func()
	reqFree    []*Request
	sampleInto app.IntoSampler // non-nil when the profile's sampler supports reuse

	// DAG mode (profile with a stage graph): jobs are pooled like
	// requests, stage samplers are pre-asserted for the allocation-free
	// path, and the end-to-end digests replace per-request ones.
	dag       *app.DAG
	stageInto []app.IntoSampler
	nextJobID uint64
	jobFree   []*job
	jobTraces []JobTrace
	cpMean    stats.Welford // critical-path seconds of completed jobs
	cpShare   stats.Welford // critical path / end-to-end latency

	// Heterogeneous topology (nil slices when homogeneous): cumulative
	// per-class core energy, for the per-class observer/reward feed.
	topo              *cpu.Topology
	classEnergy       []float64
	warmupClassEnergy []float64

	series    *Series
	freqTrace *FreqTrace
}

// New builds a server bound to a simulation engine and a policy.
func New(eng *sim.Engine, cfg Config, policy Policy) (*Server, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if policy == nil {
		return nil, fmt.Errorf("server: nil policy")
	}
	s := &Server{
		eng:        eng,
		cfg:        full,
		prof:       full.App,
		policy:     policy,
		meter:      power.NewMeter(),
		rngService: sim.NewRNG(full.Seed).Stream("service"),
		latP99:     stats.NewP2Quantile(0.99),
	}
	n := full.App.Workers
	if full.Topology != nil {
		n = full.Topology.TotalCores()
		s.topo = full.Topology
		s.classEnergy = make([]float64, len(full.Topology.Classes))
		s.warmupClassEnergy = make([]float64, len(full.Topology.Classes))
	}
	s.cores = make([]*cpu.Core, n)
	s.workers = make([]*worker, n)
	s.powerLast = make([]sim.Time, n)
	s.applyPending = make([]bool, n)
	s.applyFns = make([]func(), n)
	s.wantFreq = make([]cpu.Freq, n)
	for i := 0; i < n; i++ {
		i := i
		w := &worker{speed: 1, dynScale: 1, leakScale: 1}
		ladder := full.Ladder
		if s.topo != nil {
			w.class = s.topo.ClassOf(i)
			cl := s.topo.Classes[w.class]
			ladder = cl.Ladder
			w.speed = cl.SpeedFactor()
			w.dynScale = cl.DynFactor()
			w.leakScale = cl.LeakFactor()
		}
		w.core = cpu.NewCore(i, ladder)
		s.wantFreq[i] = ladder.Max // NewCore's starting point
		w.completeFn = func() { s.onComplete(w) }
		s.cores[i] = w.core
		s.workers[i] = w
		s.applyFns[i] = func() {
			s.applyPending[i] = false
			s.applyFreq(i, s.wantFreq[i])
		}
	}
	s.arrivalFn = s.onArrival
	s.injectFn = s.admit
	s.sampleInto, _ = full.App.Sampler.(app.IntoSampler)
	if full.App.DAG != nil {
		s.dag = full.App.DAG
		s.stageInto = make([]app.IntoSampler, s.dag.NumStages())
		for i, st := range s.dag.Stages {
			s.stageInto[i], _ = st.Sampler.(app.IntoSampler)
		}
	}
	if full.SeriesInterval > 0 {
		s.series = newSeries(full.SeriesInterval)
	}
	return s, nil
}

// EnableFreqTrace records per-core target frequencies each tick inside
// [from, to], plus request begin/end markers — the raw material of the
// paper's Figs. 4, 9, 10 and 11.
func (s *Server) EnableFreqTrace(from, to sim.Time) *FreqTrace {
	s.freqTrace = newFreqTrace(from, to, len(s.cores))
	return s.freqTrace
}

// Run drives the simulation with arrivals drawn from trace until duration
// of virtual time has elapsed, then returns the result.
func (s *Server) Run(trace *workload.Trace, duration sim.Time) (*Result, error) {
	if err := s.Begin(trace, duration); err != nil {
		return nil, err
	}
	s.eng.RunUntil(s.endAt)
	return s.End(), nil
}

// Begin validates and arms the simulation — arrival generator, policy,
// control-loop tick — without driving the engine. Callers that need to
// interleave the run with other engine activity (or measure it step by
// step) drive eng.RunUntil themselves up to Begin's duration and then call
// End. Run is Begin + RunUntil(end) + End.
func (s *Server) Begin(trace *workload.Trace, duration sim.Time) error {
	if err := trace.Validate(); err != nil {
		return err
	}
	if duration <= 0 {
		return fmt.Errorf("server: non-positive duration %v", duration)
	}
	start := s.eng.Now()
	s.runStart = start
	s.endAt = start + duration
	for i := range s.powerLast {
		s.powerLast[i] = start
	}
	s.uncoreLast = start
	s.arrivals = workload.NewArrivals(trace, sim.NewRNG(s.cfg.Seed).Stream("arrivals"))
	s.policy.Init(s)

	// Control loop: the paper's ShortTime tick.
	s.cancelTick = s.eng.Every(start+s.cfg.Tick, s.cfg.Tick, s.onTick)

	s.scheduleNextArrival()
	return nil
}

// BeginExternal arms the simulation for externally injected arrivals: the
// policy, control-loop tick, and accounting start exactly as in Begin, but
// no internal arrival generator is armed — every request enters through
// Inject. This is the cluster mode: a fleet-level load balancer owns the
// arrival process and each server only executes what is routed to it. The
// caller drives eng.RunUntil up to the duration and then calls End.
func (s *Server) BeginExternal(duration sim.Time) error {
	if duration <= 0 {
		return fmt.Errorf("server: non-positive duration %v", duration)
	}
	start := s.eng.Now()
	s.runStart = start
	s.endAt = start + duration
	for i := range s.powerLast {
		s.powerLast[i] = start
	}
	s.uncoreLast = start
	s.policy.Init(s)
	s.cancelTick = s.eng.Every(start+s.cfg.Tick, s.cfg.Tick, s.onTick)
	return nil
}

// Inject schedules one request arrival at virtual time at. Only valid after
// BeginExternal; at must not precede the engine's current time or reach the
// run's end. Work is sampled from the profile when the arrival fires, from
// the server's own service RNG, so a server fed the same arrival instants
// behaves identically however they were produced.
func (s *Server) Inject(at sim.Time) error {
	if at < s.eng.Now() {
		return fmt.Errorf("server: inject at %v before now %v", at, s.eng.Now())
	}
	if at >= s.endAt {
		return fmt.Errorf("server: inject at %v beyond run end %v", at, s.endAt)
	}
	s.eng.At(at, s.injectFn)
	return nil
}

// RunSegment drives the engine up to virtual time until (clamped to the
// run's end) and reports whether the run end was reached. It is the lockstep
// primitive of the vectorized trainer: Begin once, RunSegment to each control
// boundary while an external caller observes and acts between segments, End
// when the final segment reports true. Events scheduled exactly at the
// boundary — the control tick included — fire inside the segment that ends
// there, so boundary-time accounting is settled when RunSegment returns.
func (s *Server) RunSegment(until sim.Time) bool {
	if until > s.endAt {
		until = s.endAt
	}
	s.eng.RunUntil(until)
	return until >= s.endAt
}

// End settles accounting at the run's end time, stops the control loop, and
// builds the result. The engine must have been driven to Begin's duration.
func (s *Server) End() *Result {
	s.cancelTick()
	s.accrueAll(s.endAt)
	s.accrueUncore(s.endAt)
	return s.buildResult(s.runStart, s.endAt-s.runStart)
}

// EndNow settles accounting at the engine's current time instead of the
// armed duration — the live-serving stop path, where the wall-clock bridge
// ends a run long before its horizon. Equivalent to End when the engine has
// been driven to the full duration (RunUntil leaves Now at its target even
// past the last event). Requests still queued or in service are dropped
// from the result's counters-conservation only in the sense that they never
// complete; Arrivals - Completions reports them.
func (s *Server) EndNow() *Result {
	s.cancelTick()
	now := s.eng.Now()
	s.accrueAll(now)
	s.accrueUncore(now)
	return s.buildResult(s.runStart, now-s.runStart)
}

func (s *Server) scheduleNextArrival() {
	at := s.arrivals.Next()
	if at >= s.endAt {
		return
	}
	if at < s.eng.Now() {
		// The generator starts at time 0; if the engine started later
		// (chained runs), fast-forward the generator.
		for at < s.eng.Now() {
			at = s.arrivals.Next()
		}
		if at >= s.endAt {
			return
		}
	}
	s.eng.At(at, s.arrivalFn)
}

// getRequest takes a Request from the episode pool, or allocates one when
// the pool is dry (only while the in-flight high-water mark still rises).
func (s *Server) getRequest() *Request {
	if n := len(s.reqFree); n > 0 {
		r := s.reqFree[n-1]
		s.reqFree = s.reqFree[:n-1]
		return r
	}
	return &Request{}
}

// putRequest recycles a completed request. Callers must not touch r after
// this; the Policy contract (no retention beyond callbacks) is what makes
// recycling sound.
func (s *Server) putRequest(r *Request) {
	s.reqFree = append(s.reqFree, r)
}

func (s *Server) onArrival() {
	s.admit()
	s.scheduleNextArrival()
}

// admit materializes one request arriving now — sample its work, notify the
// policy, and dispatch or enqueue it. It is the shared tail of the internal
// arrival generator and the external injection path. On a DAG profile the
// arrival is a whole job: its root stages are admitted instead.
func (s *Server) admit() {
	if s.dag != nil {
		s.admitJob()
		return
	}
	now := s.eng.Now()
	r := s.getRequest()
	r.ID = s.nextID
	r.Arrive = now
	r.Start = -1
	r.Finish = -1
	r.CoreID = -1
	r.ServiceActual = 0
	r.remaining = 0
	r.Stage = -1
	r.job = nil
	if s.sampleInto != nil {
		s.sampleInto.SampleInto(s.rngService, &r.Work)
	} else {
		r.Work = s.prof.Sampler.Sample(s.rngService)
	}
	s.nextID++
	s.counters.Arrivals++
	s.policy.OnArrival(r)
	if w := s.idleWorker(); w != nil {
		s.dispatch(w, r)
	} else {
		s.queue.Push(r)
	}
}

func (s *Server) idleWorker() *worker {
	now := s.eng.Now()
	for _, w := range s.workers {
		if w.req != nil || w.parked {
			continue
		}
		if s.cfg.Faults != nil && s.cfg.Faults.CoreOffline(now, w.core.ID()) {
			continue
		}
		return w
	}
	return nil
}

// dispatch starts r on worker w at the current time.
func (s *Server) dispatch(w *worker, r *Request) {
	now := s.eng.Now()
	busyOthers := 0
	for _, o := range s.workers {
		if o != w && o.req != nil {
			busyOthers++
		}
	}
	rho := 0.0
	if len(s.workers) > 1 {
		rho = float64(busyOthers) / float64(len(s.workers)-1)
	}
	if s.cfg.Interference != nil {
		if x := s.cfg.Interference(now); x > 0 {
			rho += x
		}
	}
	r.ServiceActual = sim.Time(float64(r.Work.ServiceRef) * (1 + s.prof.ContentionCoef*rho))
	r.remaining = r.ServiceActual.Seconds()
	r.Start = now
	r.CoreID = w.core.ID()

	s.accrueCore(w, now) // idle → busy power transition
	w.req = r
	// A sleeping core must wake before executing; its progress starts at
	// the end of the wake-up latency (the sleep-state extension, §6).
	w.lastSync = w.core.WakeUp(now)
	s.counters.Dispatched++
	if s.freqTrace != nil {
		s.freqTrace.markBegin(now, w.core.ID())
	}
	s.policy.OnDispatch(r, w.core.ID())
	s.scheduleCompletion(w)
}

// completionTime computes when w's current request finishes given the core's
// (possibly transitioning) frequency schedule.
func (s *Server) completionTime(w *worker, now sim.Time) sim.Time {
	rem := w.req.remaining
	// Progress cannot start before a pending wake-up completes.
	if w.lastSync > now {
		now = w.lastSync
	}
	if rem <= 0 {
		return now
	}
	f0 := w.core.FreqAt(now)
	if at, f1, ok := w.core.PendingSwitch(); ok && at > now {
		head := (at - now).Seconds() * s.prof.SpeedAt(f0) * w.speed
		if head < rem {
			return at + sim.Seconds((rem-head)/(s.prof.SpeedAt(f1)*w.speed))
		}
	}
	return now + sim.Seconds(rem/(s.prof.SpeedAt(f0)*w.speed))
}

func (s *Server) scheduleCompletion(w *worker) {
	now := s.eng.Now()
	s.eng.Cancel(w.compl) // no-op on the zero Event or an already-fired one
	at := s.completionTime(w, now)
	w.compl = s.eng.At(at, w.completeFn)
}

// syncWorker integrates the request's progress up to now. A busy worker's
// lastSync may sit in the future (pending wake-up); it is never rewound.
func (s *Server) syncWorker(w *worker, now sim.Time) {
	if w.req == nil {
		w.lastSync = now
		return
	}
	if now <= w.lastSync {
		return
	}
	var segs [2]cpu.Segment
	n := w.core.SegmentsInto(w.lastSync, now, &segs)
	for _, seg := range segs[:n] {
		w.req.remaining -= (seg.To - seg.From).Seconds() * s.prof.SpeedAt(seg.F) * w.speed
	}
	w.lastSync = now
}

func (s *Server) onComplete(w *worker) {
	now := s.eng.Now()
	r := w.req
	if r == nil {
		return // stale event (should have been cancelled)
	}
	s.syncWorker(w, now)
	if at := s.completionTime(w, now); at > now {
		// Numerical drift left more than a clock tick of work; finish it.
		w.compl = s.eng.At(at, w.completeFn)
		return
	}
	r.Finish = now
	r.remaining = 0

	s.accrueCore(w, now) // busy → idle power transition
	w.req = nil
	w.compl = sim.Event{}

	s.counters.Completions++
	if r.job == nil {
		lat := r.Latency()
		if lat > s.prof.SLA {
			s.counters.Timeouts++
		}
		if now >= s.cfg.Warmup {
			// Streaming digests stay O(1) regardless of run length; the full
			// sample set is retained only when the caller wants it, in chunked
			// blocks bounded by LatencyCap.
			s.latMean.Add(lat.Seconds())
			s.latP99.Add(lat.Seconds())
			if !s.cfg.DiscardLatencies {
				if s.cfg.LatencyCap > 0 && s.latencies.n >= s.cfg.LatencyCap {
					s.counters.LatencyDropped++
				} else {
					s.latencies.add(lat.Seconds())
				}
			}
		}
	}
	if s.freqTrace != nil {
		s.freqTrace.markEnd(now, w.core.ID())
	}
	s.policy.OnComplete(r, w.core.ID())
	// The policy contract forbids retaining r beyond the callback, so the
	// request can be recycled for a future arrival.
	j, stage, start := r.job, r.Stage, r.Start
	r.job = nil
	s.putRequest(r)
	if j != nil {
		// Stage-graph bookkeeping: successors whose predecessors have all
		// finished are admitted now, and may be dispatched to this very
		// worker (chains keep cache locality).
		s.completeStage(j, stage, start, now)
	}

	// A core that failed mid-request drains it but takes no new work; the
	// queue waits for an online worker (the next arrival or tick). A parked
	// core likewise drains and then idles until placement re-enables it.
	if w.parked {
		return
	}
	if s.cfg.Faults != nil && s.cfg.Faults.CoreOffline(now, w.core.ID()) {
		return
	}
	if w.req == nil {
		if next := s.queue.Pop(); next != nil {
			s.dispatch(w, next)
		}
	}
}

// onTick fires every cfg.Tick: bring accounting up to date, let the policy
// act, and sample any enabled recorders.
func (s *Server) onTick(now sim.Time) {
	if now > s.endAt {
		return
	}
	s.accrueAll(now)
	s.accrueUncore(now)
	if !s.warmupDone && now >= s.cfg.Warmup {
		s.warmupEnergy = s.meter.Energy()
		copy(s.warmupClassEnergy, s.classEnergy)
		s.warmupDone = true
	}
	if s.cfg.Faults != nil {
		s.enforceFaults(now)
	}
	s.policy.OnTick(now)
	if s.freqTrace != nil {
		s.freqTrace.sample(now, s.cores)
	}
	if s.series != nil {
		s.series.maybeSample(now, s)
	}
}

// enforceFaults applies fault effects that act on standing state rather
// than on requests: thermal throttles clamp a core's target even when no
// governor write arrives, and queued requests stranded by offline cores are
// re-dispatched once a worker is back online.
func (s *Server) enforceFaults(now sim.Time) {
	for _, w := range s.workers {
		i := w.core.ID()
		switch cap := s.cfg.Faults.FreqCap(now, i); {
		case cap > 0 && w.core.Target() > cap:
			s.applyFreq(i, cap)
		case cap == 0 && w.core.Target() != s.wantFreq[i] && !s.applyPending[i]:
			// Throttle lifted (and no governor write still in flight):
			// the hardware returns to the standing request.
			s.applyFreq(i, s.wantFreq[i])
		}
	}
	for s.queue.Len() > 0 {
		w := s.idleWorker()
		if w == nil {
			return
		}
		s.dispatch(w, s.queue.Pop())
	}
}

// accrueCore integrates one worker's core power up to now.
func (s *Server) accrueCore(w *worker, now sim.Time) {
	i := w.core.ID()
	from := s.powerLast[i]
	if now <= from {
		return
	}
	busy := w.req != nil
	factor := 1.0
	if !busy {
		factor = w.core.CState().PowerFactor()
	}
	var segs [2]cpu.Segment
	n := w.core.SegmentsInto(from, now, &segs)
	for _, seg := range segs[:n] {
		// With unit class factors CorePowerScaled is numerically identical
		// to CorePower, keeping homogeneous runs byte-identical.
		watts := s.cfg.Power.CorePowerScaled(seg.F, busy, w.dynScale, w.leakScale) * factor
		s.meter.Accrue(seg.From, seg.To, watts)
		if s.classEnergy != nil {
			s.classEnergy[w.class] += watts * (seg.To - seg.From).Seconds()
		}
		s.totalCycles += float64(seg.F) * (seg.To - seg.From).Seconds()
	}
	s.powerLast[i] = now
}

func (s *Server) accrueAll(now sim.Time) {
	for _, w := range s.workers {
		s.accrueCore(w, now)
	}
}

func (s *Server) accrueUncore(now sim.Time) {
	if now > s.uncoreLast {
		s.meter.Accrue(s.uncoreLast, now, s.cfg.Power.Uncore)
		s.uncoreLast = now
	}
}
