package server

import (
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// benchEpisode runs one simulated episode and returns the engine so callers
// can read event counts. The configuration mirrors a quick-scale training
// episode: the Xapian profile on 4 workers under a diurnal trace, latency
// retention off (the long-training-run configuration the fast path targets).
func benchEpisode(b *testing.B, seed int64) *sim.Engine {
	b.Helper()
	prof, err := app.ByName(app.Xapian)
	if err != nil {
		b.Fatal(err)
	}
	prof.Workers = 4
	trace := workload.Diurnal(workload.DefaultDiurnal()).ScaleToPeak(300)
	eng := sim.NewEngine()
	s, err := New(eng, Config{App: prof, Seed: seed, DiscardLatencies: true}, &maxFreqPolicy{})
	if err != nil {
		b.Fatal(err)
	}
	if _, err := s.Run(trace, 10*sim.Second); err != nil {
		b.Fatal(err)
	}
	return eng
}

// BenchmarkServerEpisode measures full-episode throughput of the simulation
// core — event engine, server loop, queue, power accounting — in fired
// events per wall-clock second. results/BENCH_sim.json snapshots its output
// before and after the typed-heap/pool fast path.
func BenchmarkServerEpisode(b *testing.B) {
	b.ReportAllocs()
	var events uint64
	for i := 0; i < b.N; i++ {
		eng := benchEpisode(b, int64(i+1))
		events += eng.Fired()
	}
	b.ReportMetric(float64(events)/b.Elapsed().Seconds(), "events/sec")
	b.ReportMetric(float64(events)/float64(b.N), "events/episode")
}
