package server

import (
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

// The external-arrival interface (BeginExternal / Inject / RunSegment /
// End) is the wall-clock bridge's contract: the serving daemon maps real
// admission instants onto virtual time through exactly these calls, so the
// edge cases here — out-of-order injection, boundary-time arrivals, early
// settlement — are the serving mode's correctness conditions.

func TestInjectRejectsPastAndBeyondEnd(t *testing.T) {
	prof := fixedApp(1*sim.Millisecond, 1, 10*sim.Millisecond)
	eng, s := mustServer(t, Config{App: prof, Seed: 1}, &maxFreqPolicy{})
	if err := s.BeginExternal(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.RunSegment(50 * sim.Millisecond)
	if err := s.Inject(49 * sim.Millisecond); err == nil {
		t.Error("inject before now succeeded")
	}
	if err := s.Inject(100 * sim.Millisecond); err == nil {
		t.Error("inject at run end succeeded")
	}
	if err := s.Inject(150 * sim.Millisecond); err == nil {
		t.Error("inject beyond run end succeeded")
	}
	// Injecting exactly at now is a legal late-clamped delivery.
	if err := s.Inject(eng.Now()); err != nil {
		t.Errorf("inject at now: %v", err)
	}
	s.RunSegment(100 * sim.Millisecond)
	res := s.End()
	if res.Counters.Arrivals != 1 {
		t.Errorf("arrivals = %d, want 1", res.Counters.Arrivals)
	}
}

func TestInjectWithoutBeginFails(t *testing.T) {
	prof := fixedApp(1*sim.Millisecond, 1, 10*sim.Millisecond)
	_, s := mustServer(t, Config{App: prof, Seed: 1}, &maxFreqPolicy{})
	// Without BeginExternal the run end is zero, so any inject must fail
	// rather than schedule an event into an unarmed run.
	if err := s.Inject(0); err == nil {
		t.Fatal("inject before BeginExternal succeeded")
	}
}

func TestInjectOutOfOrderCallsFireInTimeOrder(t *testing.T) {
	// Inject calls arrive out of order (5ms, 2ms, 8ms, 2ms) but the
	// requests must be admitted in virtual-time order: with one core and
	// 1ms of work each, completion order is arrival order.
	prof := fixedApp(1*sim.Millisecond, 1, 100*sim.Millisecond)
	order := &arrivalOrder{}
	_, s := mustServer(t, Config{App: prof, Seed: 1}, order)
	if err := s.BeginExternal(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, at := range []sim.Time{5 * sim.Millisecond, 2 * sim.Millisecond, 8 * sim.Millisecond, 2 * sim.Millisecond} {
		if err := s.Inject(at); err != nil {
			t.Fatal(err)
		}
	}
	s.RunSegment(100 * sim.Millisecond)
	res := s.End()
	if res.Counters.Arrivals != 4 || res.Counters.Completions != 4 {
		t.Fatalf("arrivals/completions = %d/%d, want 4/4", res.Counters.Arrivals, res.Counters.Completions)
	}
	want := []sim.Time{2 * sim.Millisecond, 2 * sim.Millisecond, 5 * sim.Millisecond, 8 * sim.Millisecond}
	for i, at := range order.at {
		if at != want[i] {
			t.Errorf("arrival %d at %v, want %v", i, at, want[i])
		}
	}
}

type arrivalOrder struct {
	BasePolicy
	at []sim.Time
}

func (p *arrivalOrder) Name() string { return "arrival-order" }
func (p *arrivalOrder) OnArrival(r *Request) {
	p.at = append(p.at, r.Arrive)
}

func TestInjectAtSegmentBoundaryFiresInsideSegment(t *testing.T) {
	// An arrival scheduled exactly at a RunSegment boundary must be
	// admitted by that segment — the bridge's accounting assumes boundary
	// events are settled when RunSegment returns.
	prof := fixedApp(1*sim.Millisecond, 1, 100*sim.Millisecond)
	_, s := mustServer(t, Config{App: prof, Seed: 1}, &maxFreqPolicy{})
	if err := s.BeginExternal(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(10 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.RunSegment(10 * sim.Millisecond)
	if got := s.Counters().Arrivals; got != 1 {
		t.Errorf("arrivals after boundary segment = %d, want 1", got)
	}
	s.RunSegment(100 * sim.Millisecond)
	s.End()
}

func TestRunSegmentClampsToEnd(t *testing.T) {
	prof := fixedApp(1*sim.Millisecond, 1, 10*sim.Millisecond)
	eng, s := mustServer(t, Config{App: prof, Seed: 1}, &maxFreqPolicy{})
	if err := s.BeginExternal(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if done := s.RunSegment(40 * sim.Millisecond); done {
		t.Error("segment before end reported done")
	}
	if done := s.RunSegment(500 * sim.Millisecond); !done {
		t.Error("segment past end not reported done")
	}
	if now := eng.Now(); now != 50*sim.Millisecond {
		t.Errorf("engine now = %v, want clamp at 50ms", now)
	}
}

func TestEndNowSettlesEarly(t *testing.T) {
	// A run stopped at 100ms of a 10s horizon must meter 100ms of energy,
	// not 10s of phantom idle power.
	prof := fixedApp(1*sim.Millisecond, 2, 10*sim.Millisecond)
	_, s := mustServer(t, Config{App: prof, Seed: 1}, &maxFreqPolicy{})
	if err := s.BeginExternal(10 * sim.Second); err != nil {
		t.Fatal(err)
	}
	if err := s.Inject(1 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.RunSegment(100 * sim.Millisecond)
	res := s.EndNow()
	if res.Counters.Arrivals != 1 || res.Counters.Completions != 1 {
		t.Fatalf("arrivals/completions = %d/%d, want 1/1", res.Counters.Arrivals, res.Counters.Completions)
	}
	if res.Duration != 100*sim.Millisecond {
		t.Errorf("duration = %v, want 100ms", res.Duration)
	}
	// Two idle cores at default idle power for ~100ms is well under a
	// joule; the 10s settlement bug would report ~100x more.
	if res.EnergyJ <= 0 || res.EnergyJ > 5 {
		t.Errorf("energy = %.3fJ, want small positive", res.EnergyJ)
	}
}

func TestEndNowMatchesEndWhenDrivenToDuration(t *testing.T) {
	prof := fixedApp(1*sim.Millisecond, 1, 10*sim.Millisecond)
	run := func(early bool) *Result {
		_, s := mustServer(t, Config{App: prof, Seed: 3}, &maxFreqPolicy{})
		if err := s.BeginExternal(50 * sim.Millisecond); err != nil {
			t.Fatal(err)
		}
		for i := sim.Time(0); i < 40; i++ {
			if err := s.Inject(i * sim.Millisecond); err != nil {
				t.Fatal(err)
			}
		}
		s.RunSegment(50 * sim.Millisecond)
		if early {
			return s.EndNow()
		}
		return s.End()
	}
	a, b := run(true), run(false)
	if a.Counters != b.Counters || a.EnergyJ != b.EnergyJ || a.Duration != b.Duration {
		t.Errorf("EndNow at full duration differs from End: %+v vs %+v", a.Counters, b.Counters)
	}
}
