package server_test

// External-package tests (server_test) so the fault package — which imports
// server — can be exercised against the server without an import cycle.

import (
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/fault"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

func extFixedApp(service sim.Time, workers int, sla sim.Time) *app.Profile {
	return &app.Profile{
		Name:    "fixed",
		SLA:     sla,
		Workers: workers,
		RefFreq: 2.1,
		Sampler: extConstSampler{service: service},
	}
}

type extConstSampler struct{ service sim.Time }

func (c extConstSampler) Sample(*sim.RNG) app.Work {
	return app.Work{ServiceRef: c.service, Features: []float64{1}}
}
func (c extConstSampler) FeatureDim() int { return 1 }

// extHostilePolicy emits invalid actions — NaN/Inf/negative frequencies and
// non-finite scores — mixed with plausible ones.
type extHostilePolicy struct {
	server.BasePolicy
	rng *sim.RNG
}

func (p *extHostilePolicy) Name() string { return "hostile" }

func (p *extHostilePolicy) OnTick(now sim.Time) {
	c := p.Ctl
	core := p.rng.Intn(c.NumCores())
	switch p.rng.Intn(6) {
	case 0:
		c.SetFreq(core, cpu.Freq(math.NaN()))
	case 1:
		c.SetFreq(core, cpu.Freq(math.Inf(1)))
	case 2:
		c.SetFreq(core, -2)
	case 3:
		c.SetScore(core, math.NaN())
	case 4:
		c.SetFreq(core, 999)
	case 5:
		c.SetFreq(core, cpu.Freq(p.rng.Uniform(0.5, 2.5)))
	}
}

// TestGuardedHostileUnderFaults wraps a hostile policy in the guard and
// runs it under an aggressive combined fault campaign: the run must not
// panic, accounting must stay consistent, invalid actions must be counted,
// and both fault and guard counters must surface on the Result.
func TestGuardedHostileUnderFaults(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		plan := fault.Plan{
			Seed: seed,
			Actuation: fault.ActuationPlan{
				ExtraLatency:  2 * sim.Millisecond,
				JitterLatency: 5 * sim.Millisecond,
				DropProb:      0.3,
				StuckProb:     0.02,
				StuckFor:      100 * sim.Millisecond,
			},
			Sensor: fault.SensorPlan{
				EnergyNoiseFrac: 0.1,
				StaleProb:       0.2,
				DropProb:        0.1,
				QueueJitter:     3,
			},
			Cores: fault.CorePlan{
				MTBF:         300 * sim.Millisecond,
				MTTR:         80 * sim.Millisecond,
				ThrottleCap:  1.0,
				ThrottleMTBF: 200 * sim.Millisecond,
				ThrottleMTTR: 50 * sim.Millisecond,
			},
		}
		prof := extFixedApp(800*sim.Microsecond, 3, 5*sim.Millisecond)
		inj, err := fault.NewInjector(plan, prof.Workers)
		if err != nil {
			t.Fatal(err)
		}
		guard := fault.NewGuardedPolicy(
			&extHostilePolicy{rng: sim.NewRNG(seed).Stream("hostile")},
			fault.GuardConfig{CheckEvery: 10 * sim.Millisecond, Window: 200 * sim.Millisecond})
		eng := sim.NewEngine()
		s, err := server.New(eng, server.Config{App: prof, Seed: seed, Faults: inj}, guard)
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(workload.Constant(1200, sim.Second), 2*sim.Second)
		if err != nil {
			t.Fatal(err)
		}

		inFlight := uint64(s.BusyCores()) + uint64(s.QueueLen())
		if res.Counters.Arrivals != res.Counters.Completions+inFlight {
			t.Errorf("seed %d: conservation violated: %d != %d + %d",
				seed, res.Counters.Arrivals, res.Counters.Completions, inFlight)
		}
		if res.Counters.Completions == 0 {
			t.Errorf("seed %d: no completions under faults", seed)
		}
		if res.PolicyStats == nil {
			t.Fatalf("seed %d: guard exported no stats", seed)
		}
		if res.PolicyStats["guard.invalid_actions"] == 0 {
			t.Errorf("seed %d: hostile policy's invalid actions not counted", seed)
		}
		if res.FaultStats == nil {
			t.Fatalf("seed %d: injector exported no stats", seed)
		}
		var total uint64
		for _, v := range res.FaultStats {
			total += v
		}
		if total == 0 {
			t.Errorf("seed %d: aggressive plan injected zero faults", seed)
		}
		if math.IsNaN(res.EnergyJ) || res.EnergyJ <= 0 {
			t.Errorf("seed %d: energy accounting corrupted: %v", seed, res.EnergyJ)
		}
	}
}

// TestGuardTripsOnHostilePolicy checks the watchdog actually falls back:
// under a policy that is purely destructive (pins the ladder floor so
// everything times out), the guard must enter safe mode at least once.
func TestGuardTripsOnHostilePolicy(t *testing.T) {
	prof := extFixedApp(2*sim.Millisecond, 2, 3*sim.Millisecond)
	guard := fault.NewGuardedPolicy(&floorPolicy{},
		fault.GuardConfig{CheckEvery: 20 * sim.Millisecond, Window: 500 * sim.Millisecond, MinSamples: 16})
	eng := sim.NewEngine()
	s, err := server.New(eng, server.Config{App: prof, Seed: 42}, guard)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workload.Constant(600, sim.Second), 3*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.PolicyStats["guard.fallbacks"] == 0 {
		t.Fatalf("guard never fell back on a floor-pinning policy: %+v (timeout rate %.3f)",
			res.PolicyStats, res.TimeoutRate)
	}
	if res.PolicyStats["guard.safe_ticks"] == 0 {
		t.Error("guard reports fallbacks but zero safe ticks")
	}
}

// floorPolicy pins every core at the ladder minimum each tick — a policy
// that has degenerated into its worst possible output.
type floorPolicy struct{ server.BasePolicy }

func (p *floorPolicy) Name() string { return "floor" }

func (p *floorPolicy) OnTick(now sim.Time) {
	for i := 0; i < p.Ctl.NumCores(); i++ {
		p.Ctl.SetFreq(i, p.Ctl.Ladder().Min)
	}
}
