package server

import (
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// fixedApp returns a deterministic profile: every request takes exactly
// service at the reference frequency, no contention, no memory-bound part.
func fixedApp(service sim.Time, workers int, sla sim.Time) *app.Profile {
	return &app.Profile{
		Name:    "fixed",
		SLA:     sla,
		Workers: workers,
		RefFreq: 2.1,
		Sampler: constSampler{service: service},
	}
}

type constSampler struct{ service sim.Time }

func (c constSampler) Sample(*sim.RNG) app.Work {
	return app.Work{ServiceRef: c.service, Features: []float64{1}}
}
func (c constSampler) FeatureDim() int { return 1 }

// maxFreqPolicy pins all cores at the ladder max (not turbo), so service
// time equals ServiceRef exactly for RefFreq = ladder max.
type maxFreqPolicy struct{ BasePolicy }

func (p *maxFreqPolicy) Name() string { return "test-max" }
func (p *maxFreqPolicy) Init(c Control) {
	p.BasePolicy.Init(c)
	for i := 0; i < c.NumCores(); i++ {
		c.SetFreq(i, c.Ladder().Max)
	}
}

func mustServer(t *testing.T, cfg Config, p Policy) (*sim.Engine, *Server) {
	t.Helper()
	eng := sim.NewEngine()
	s, err := New(eng, cfg, p)
	if err != nil {
		t.Fatal(err)
	}
	return eng, s
}

func TestSingleRequestLatencyExact(t *testing.T) {
	// One request of exactly 2 ms at 2.1 GHz, server at 2.1 GHz:
	// latency must be 2 ms (no queueing).
	prof := fixedApp(2*sim.Millisecond, 1, 10*sim.Millisecond)
	eng, s := mustServer(t, Config{App: prof, Seed: 1}, &maxFreqPolicy{})
	res, err := s.Run(workload.Constant(10, sim.Second), 500*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Completions == 0 {
		t.Fatal("no completions")
	}
	for _, lat := range res.Latencies {
		if lat < 0.002-1e-9 {
			t.Fatalf("latency %v below service time", lat)
		}
	}
	_ = eng
}

func TestLatencyIsServicePlusWait(t *testing.T) {
	// Two requests arrive back-to-back on a single worker: the second
	// must wait for the first.
	prof := fixedApp(10*sim.Millisecond, 1, sim.Second)
	var got []sim.Time
	p := &completionRecorder{latencies: &got}
	eng := sim.NewEngine()
	s, err := New(eng, Config{App: prof, Seed: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	// Inject exactly 2 arrivals 1 ms apart via a custom trace: rate high
	// for 2ms then zero is hard with Poisson; instead send a burst and
	// check ordering properties on many requests.
	res, err := s.Run(workload.Constant(300, sim.Second), 300*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Completions < 10 {
		t.Fatalf("too few completions: %d", res.Counters.Completions)
	}
	// With a single deterministic worker, completions are spaced >= 10ms.
	for i := 1; i < len(got); i++ {
		if got[i]-got[i-1] < 10*sim.Millisecond-sim.Microsecond {
			t.Fatalf("completions %d,%d spaced %v < service", i-1, i, got[i]-got[i-1])
		}
	}
}

type completionRecorder struct {
	maxFreqPolicy
	latencies *[]sim.Time
}

func (p *completionRecorder) OnComplete(r *Request, core int) {
	*p.latencies = append(*p.latencies, r.Finish)
}

func TestFrequencyHalvesSpeed(t *testing.T) {
	// At half frequency a fully CPU-bound request takes twice as long.
	prof := fixedApp(2*sim.Millisecond, 1, sim.Second)
	pin := func(f cpu.Freq) *Result {
		eng := sim.NewEngine()
		ladder := cpu.DefaultLadder()
		ladder.Min = 0.5
		ladder.Step = 0.05 // so 1.05 GHz (half of 2.1) is on the grid
		s, err := New(eng, Config{App: prof, Ladder: ladder, Seed: 1}, &pinPolicy{f: f})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(workload.Constant(20, sim.Second), 2*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := pin(2.1)
	slow := pin(1.05)
	if fast.Latency.N == 0 || slow.Latency.N == 0 {
		t.Fatal("no samples")
	}
	ratio := slow.Latency.P50 / fast.Latency.P50
	if math.Abs(ratio-2) > 0.05 {
		t.Errorf("latency ratio at half frequency = %v, want ~2", ratio)
	}
}

type pinPolicy struct {
	BasePolicy
	f cpu.Freq
}

func (p *pinPolicy) Name() string { return "pin" }
func (p *pinPolicy) Init(c Control) {
	p.BasePolicy.Init(c)
	for i := 0; i < c.NumCores(); i++ {
		c.SetFreq(i, p.f)
	}
}

func TestMidRequestFrequencyChange(t *testing.T) {
	// A request runs its first half at max frequency, then the policy
	// drops to half: completion time = t/2 + t. Use a boost policy that
	// switches at a known tick.
	prof := fixedApp(10*sim.Millisecond, 1, sim.Second)
	eng := sim.NewEngine()
	ladder := cpu.DefaultLadder()
	ladder.TransitionLatency = 0
	ladder.Min = 0.5
	p := &switchAtPolicy{switchAt: 5 * sim.Millisecond, to: 1.05}
	s, err := New(eng, Config{App: prof, Ladder: ladder, Seed: 1}, p)
	if err != nil {
		t.Fatal(err)
	}
	// One arrival right at t=0 is not possible with Poisson; run with a
	// rate low enough for the first request to be alone, then inspect its
	// latency: 5ms at 2.1 + remaining 5ms-equivalent at 1.05 → 10ms more.
	if _, err := s.Run(workload.Constant(5, sim.Second), 2*sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(p.serviceTimes) == 0 {
		t.Fatal("no samples")
	}
	// Every request's pure service time (excluding queue wait) should be
	// between 10 ms (all at max) and ~19.1 ms (all at 1.1 GHz); requests
	// overlapping the switch take something in between.
	for _, st := range p.serviceTimes {
		if st < 10*sim.Millisecond-sim.Microsecond || st > 20*sim.Millisecond {
			t.Errorf("service time %v outside [10ms, 20ms] envelope", st)
		}
	}
}

type switchAtPolicy struct {
	BasePolicy
	switchAt     sim.Time
	to           cpu.Freq
	serviceTimes []sim.Time
}

func (p *switchAtPolicy) OnComplete(r *Request, core int) {
	p.serviceTimes = append(p.serviceTimes, r.Finish-r.Start)
}

func (p *switchAtPolicy) Name() string { return "switch-at" }
func (p *switchAtPolicy) Init(c Control) {
	p.BasePolicy.Init(c)
	for i := 0; i < c.NumCores(); i++ {
		c.SetFreq(i, c.Ladder().Max)
	}
}
func (p *switchAtPolicy) OnTick(now sim.Time) {
	// Relative to each request's start: drop frequency once the head
	// request has run for switchAt.
	for i := 0; i < p.Ctl.NumCores(); i++ {
		r := p.Ctl.CoreRequest(i)
		if r == nil {
			p.Ctl.SetFreq(i, p.Ctl.Ladder().Max)
		} else if now-r.Start >= p.switchAt {
			p.Ctl.SetFreq(i, p.to)
		}
	}
}

func TestConservationOfRequests(t *testing.T) {
	prof := fixedApp(time1ms(), 4, 100*sim.Millisecond)
	eng, s := mustServer(t, Config{App: prof, Seed: 42}, &maxFreqPolicy{})
	res, err := s.Run(workload.Constant(2000, sim.Second), 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	inFlight := uint64(s.BusyCores()) + uint64(s.QueueLen())
	if res.Counters.Arrivals != res.Counters.Completions+inFlight {
		t.Errorf("request conservation violated: arrivals %d != completions %d + in-flight %d",
			res.Counters.Arrivals, res.Counters.Completions, inFlight)
	}
	if res.Counters.Dispatched < res.Counters.Completions {
		t.Error("more completions than dispatches")
	}
	_ = eng
}

func time1ms() sim.Time { return sim.Millisecond }

func TestEnergyPositiveAndPlausible(t *testing.T) {
	prof := fixedApp(sim.Millisecond, 4, 100*sim.Millisecond)
	_, s := mustServer(t, Config{App: prof, Seed: 1}, &maxFreqPolicy{})
	res, err := s.Run(workload.Constant(1000, sim.Second), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.EnergyJ <= 0 {
		t.Fatal("no energy accrued")
	}
	// Power must be at least the uncore + idle floor and at most
	// uncore + all-cores-active-at-turbo.
	m := s.cfg.Power
	minP := m.Uncore + 4*m.CorePower(s.cfg.Ladder.Min, false)
	maxP := m.Uncore + 4*m.CorePower(s.cfg.Ladder.Turbo, true)
	if res.AvgPowerW < minP || res.AvgPowerW > maxP {
		t.Errorf("avg power %v outside [%v, %v]", res.AvgPowerW, minP, maxP)
	}
}

func TestLowerFrequencyLowerPower(t *testing.T) {
	prof := fixedApp(sim.Millisecond, 4, 100*sim.Millisecond)
	run := func(f cpu.Freq) float64 {
		eng := sim.NewEngine()
		s, err := New(eng, Config{App: prof, Seed: 1}, &pinPolicy{f: f})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(workload.Constant(500, sim.Second), sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res.AvgPowerW
	}
	if lo, hi := run(0.8), run(2.1); lo >= hi {
		t.Errorf("power at 0.8GHz (%v) not below 2.1GHz (%v)", lo, hi)
	}
}

func TestTimeoutCounting(t *testing.T) {
	// SLA below the deterministic service time: every request times out.
	prof := fixedApp(5*sim.Millisecond, 2, sim.Millisecond)
	_, s := mustServer(t, Config{App: prof, Seed: 3}, &maxFreqPolicy{})
	res, err := s.Run(workload.Constant(100, sim.Second), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Completions == 0 {
		t.Fatal("no completions")
	}
	if res.Counters.Timeouts != res.Counters.Completions {
		t.Errorf("timeouts %d != completions %d with impossible SLA",
			res.Counters.Timeouts, res.Counters.Completions)
	}
	if res.TimeoutRate != 1 {
		t.Errorf("TimeoutRate = %v, want 1", res.TimeoutRate)
	}
	if res.SLAMet {
		t.Error("SLAMet true with all requests late")
	}
}

func TestSnapshotReflectsQueue(t *testing.T) {
	prof := fixedApp(50*sim.Millisecond, 1, 20*sim.Millisecond)
	var snap Snapshot
	probe := &snapshotProbe{out: &snap, at: 500 * sim.Millisecond}
	eng := sim.NewEngine()
	s, err := New(eng, Config{App: prof, Seed: 4}, probe)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(workload.Constant(100, sim.Second), sim.Second); err != nil {
		t.Fatal(err)
	}
	if snap.Now == 0 {
		t.Fatal("probe never fired")
	}
	if snap.QueueLen != len(snap.QueueSLARemaining) {
		t.Errorf("queue len %d != remaining entries %d", snap.QueueLen, len(snap.QueueSLARemaining))
	}
	if snap.QueueLen == 0 {
		t.Error("expected overload to build a queue")
	}
	// With a 20ms SLA and an overloaded 50ms/request server, the oldest
	// queued requests must already be past their budget.
	anyNegative := false
	for _, rem := range snap.QueueSLARemaining {
		if rem < 0 {
			anyNegative = true
		}
	}
	if !anyNegative {
		t.Error("no queued request past its SLA under overload")
	}
}

type snapshotProbe struct {
	maxFreqPolicy
	out   *Snapshot
	at    sim.Time
	fired bool
}

func (p *snapshotProbe) OnTick(now sim.Time) {
	if !p.fired && now >= p.at {
		srv := p.Ctl.(*Server)
		*p.out = srv.Snapshot()
		p.fired = true
	}
}

func TestDeterminism(t *testing.T) {
	prof := fixedApp(sim.Millisecond, 2, 10*sim.Millisecond)
	run := func() *Result {
		eng := sim.NewEngine()
		s, err := New(eng, Config{App: prof, Seed: 77}, &maxFreqPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(workload.Constant(800, sim.Second), sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Counters != b.Counters {
		t.Errorf("counters differ: %+v vs %+v", a.Counters, b.Counters)
	}
	if a.EnergyJ != b.EnergyJ {
		t.Errorf("energy differs: %v vs %v", a.EnergyJ, b.EnergyJ)
	}
	if a.Latency.P99 != b.Latency.P99 {
		t.Errorf("p99 differs")
	}
}

func TestSeriesRecording(t *testing.T) {
	prof := fixedApp(sim.Millisecond, 2, 10*sim.Millisecond)
	eng := sim.NewEngine()
	s, err := New(eng, Config{
		App: prof, Seed: 5, SeriesInterval: 100 * sim.Millisecond,
	}, &maxFreqPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workload.Constant(500, sim.Second), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Series == nil || len(res.Series.Rows) < 9 {
		t.Fatalf("series rows = %v", res.Series)
	}
	var rpsSum float64
	for _, row := range res.Series.Rows {
		if row.PowerW <= 0 {
			t.Errorf("row at %v has power %v", row.At, row.PowerW)
		}
		rpsSum += row.RPS
	}
	if mean := rpsSum / float64(len(res.Series.Rows)); math.Abs(mean-500) > 100 {
		t.Errorf("series mean RPS %v, want ~500", mean)
	}
}

func TestFreqTraceRecording(t *testing.T) {
	prof := fixedApp(5*sim.Millisecond, 2, 50*sim.Millisecond)
	eng := sim.NewEngine()
	s, err := New(eng, Config{App: prof, Seed: 6}, &maxFreqPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	ft := s.EnableFreqTrace(100*sim.Millisecond, 300*sim.Millisecond)
	if _, err := s.Run(workload.Constant(300, sim.Second), sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(ft.Times) == 0 {
		t.Fatal("no trace samples")
	}
	// ~200 ticks in the window at 1ms.
	if len(ft.Times) < 190 || len(ft.Times) > 210 {
		t.Errorf("trace samples = %d, want ~200", len(ft.Times))
	}
	for _, tm := range ft.Times {
		if tm < ft.From || tm > ft.To {
			t.Fatalf("sample at %v outside window", tm)
		}
	}
	if len(ft.Begins) == 0 || len(ft.Ends) == 0 {
		t.Error("no request markers in window")
	}
}

func TestWarmupExcludesEarlyStats(t *testing.T) {
	prof := fixedApp(sim.Millisecond, 2, 10*sim.Millisecond)
	eng := sim.NewEngine()
	s, err := New(eng, Config{App: prof, Seed: 7, Warmup: 500 * sim.Millisecond}, &maxFreqPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workload.Constant(200, sim.Second), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	// Retained latencies should be roughly half the completions.
	if got, all := len(res.Latencies), res.Counters.Completions; float64(got) > 0.7*float64(all) {
		t.Errorf("warmup not excluded: %d retained of %d", got, all)
	}
	if res.AvgPowerW <= 0 {
		t.Error("post-warmup power not positive")
	}
}

func TestConfigValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := New(eng, Config{}, &maxFreqPolicy{}); err == nil {
		t.Error("nil app accepted")
	}
	prof := fixedApp(sim.Millisecond, 1, sim.Millisecond)
	if _, err := New(eng, Config{App: prof}, nil); err == nil {
		t.Error("nil policy accepted")
	}
	if _, err := New(eng, Config{App: prof, Tick: -1}, &maxFreqPolicy{}); err == nil {
		t.Error("negative tick accepted")
	}
	s, err := New(eng, Config{App: prof}, &maxFreqPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(workload.Constant(1, sim.Second), 0); err == nil {
		t.Error("zero duration accepted")
	}
	bad := &workload.Trace{Period: 0}
	if _, err := s.Run(bad, sim.Second); err == nil {
		t.Error("invalid trace accepted")
	}
}

func TestFIFOOrder(t *testing.T) {
	var q fifo
	for i := 0; i < 100; i++ {
		q.Push(&Request{ID: uint64(i)})
	}
	for i := 0; i < 100; i++ {
		r := q.Pop()
		if r == nil || r.ID != uint64(i) {
			t.Fatalf("pop %d returned %v", i, r)
		}
	}
	if q.Pop() != nil {
		t.Error("empty pop should be nil")
	}
}

func TestFIFOSteadyStateBounded(t *testing.T) {
	var q fifo
	for round := 0; round < 10; round++ {
		for i := 0; i < 200; i++ {
			q.Push(&Request{ID: uint64(round*200 + i)})
		}
		for i := 0; i < 200; i++ {
			if q.Pop() == nil {
				t.Fatal("unexpected empty")
			}
		}
	}
	if q.Len() != 0 {
		t.Errorf("Len = %d", q.Len())
	}
	// The ring is sized by the high-water mark (200 → 256), not by the
	// total number of requests that flowed through.
	if cap(q.buf) > 256 {
		t.Errorf("ring grew beyond the high-water mark: cap %d", cap(q.buf))
	}
}

func TestFIFOPeek(t *testing.T) {
	var q fifo
	q.Push(&Request{ID: 1})
	q.Push(&Request{ID: 2})
	if q.Peek(0).ID != 1 || q.Peek(1).ID != 2 {
		t.Error("peek order wrong")
	}
	if q.Peek(2) != nil || q.Peek(-1) != nil {
		t.Error("out-of-range peek should be nil")
	}
}

func TestRequestAccessors(t *testing.T) {
	r := &Request{ID: 1, Arrive: 100, Start: -1, Finish: -1, CoreID: -1}
	if r.Dispatched() || r.Done() {
		t.Error("fresh request should be neither dispatched nor done")
	}
	r.Start = 150
	r.Finish = 250
	if r.Latency() != 150 || r.QueueWait() != 50 {
		t.Errorf("latency %v wait %v", r.Latency(), r.QueueWait())
	}
	if r.SLARemaining(200, 300) != 200 {
		t.Errorf("SLARemaining = %v", r.SLARemaining(200, 300))
	}
	if r.Elapsed(400) != 300 {
		t.Errorf("Elapsed = %v", r.Elapsed(400))
	}
}

func TestRequestPanicsBeforeDone(t *testing.T) {
	r := &Request{Start: -1, Finish: -1}
	for name, fn := range map[string]func(){
		"Latency":   func() { r.Latency() },
		"QueueWait": func() { r.QueueWait() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s on unfinished request did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkServerSecond(b *testing.B) {
	prof := fixedApp(sim.Millisecond, 8, 10*sim.Millisecond)
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		s, err := New(eng, Config{App: prof, Seed: 1, DiscardLatencies: true}, &maxFreqPolicy{})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := s.Run(workload.Constant(4000, sim.Second), sim.Second); err != nil {
			b.Fatal(err)
		}
	}
}

func TestDiscardLatenciesStillReportsTail(t *testing.T) {
	prof := fixedApp(sim.Millisecond, 2, 10*sim.Millisecond)
	run := func(discard bool) *Result {
		eng := sim.NewEngine()
		s, err := New(eng, Config{App: prof, Seed: 9, DiscardLatencies: discard}, &maxFreqPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(workload.Constant(800, sim.Second), 2*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	full := run(false)
	lean := run(true)
	if len(lean.Latencies) != 0 {
		t.Error("DiscardLatencies retained samples")
	}
	if lean.Latency.N != full.Latency.N {
		t.Errorf("streamed N %d != retained N %d", lean.Latency.N, full.Latency.N)
	}
	if math.Abs(lean.Latency.Mean-full.Latency.Mean) > 1e-9 {
		t.Errorf("streamed mean %v != exact %v", lean.Latency.Mean, full.Latency.Mean)
	}
	if rel := math.Abs(lean.Latency.P99-full.Latency.P99) / full.Latency.P99; rel > 0.15 {
		t.Errorf("streamed p99 %v vs exact %v (rel %.3f)", lean.Latency.P99, full.Latency.P99, rel)
	}
}

func TestTimeoutBudgetEq2(t *testing.T) {
	// Impossible SLA: every request late → budget blown.
	prof := fixedApp(5*sim.Millisecond, 2, sim.Millisecond)
	_, s := mustServer(t, Config{App: prof, Seed: 13}, &maxFreqPolicy{})
	res, err := s.Run(workload.Constant(100, sim.Second), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.TimeoutBudgetMet {
		t.Error("Eq. 2 budget reported met with 100% timeouts")
	}
	// Generous SLA: budget met.
	prof2 := fixedApp(sim.Millisecond, 2, sim.Second)
	_, s2 := mustServer(t, Config{App: prof2, Seed: 13}, &maxFreqPolicy{})
	res2, err := s2.Run(workload.Constant(100, sim.Second), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if !res2.TimeoutBudgetMet {
		t.Error("Eq. 2 budget reported violated with zero timeouts")
	}
}
