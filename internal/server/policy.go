package server

import (
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
)

// Control is the handle a power-management policy uses to observe the system
// and actuate per-core DVFS. It corresponds to the "server collects
// comprehensive information ... and sends it to DeepPower framework" feed
// plus the frequency-scaling interface of the paper's Fig. 3.
type Control interface {
	// Now returns the current virtual time.
	Now() sim.Time
	// NumCores returns the number of worker cores.
	NumCores() int
	// Ladder returns the DVFS operating points.
	Ladder() cpu.Ladder
	// SLA returns the application's latency requirement.
	SLA() sim.Time
	// RefFreq returns the frequency reference service times are defined
	// at (the profiling frequency).
	RefFreq() cpu.Freq

	// SetFreq requests frequency f on a core (quantized to the ladder).
	SetFreq(core int, f cpu.Freq)
	// SetTurbo engages the turbo frequency on a core.
	SetTurbo(core int)
	// SetScore applies the thread-controller mapping: scores >= 1 engage
	// turbo, otherwise the score interpolates between ladder Min and Max
	// (Algorithm 1, lines 6–10).
	SetScore(core int, score float64)
	// Freq returns a core's current target frequency.
	Freq(core int) cpu.Freq
	// Sleep puts an idle core into a C-state (the §6 sleep-state
	// extension); it reports false if the core is busy. The core wakes
	// automatically — paying the state's wake-up latency — when a request
	// is dispatched to it.
	Sleep(core int, state cpu.CState) bool
	// CoreCState returns a core's current sleep state.
	CoreCState(core int) cpu.CState

	// Topology returns the heterogeneous core topology, or nil when all
	// cores are one homogeneous class on the config ladder.
	Topology() *cpu.Topology
	// SetPlacement requests how many worker threads run on each core class
	// (one count per topology class). Counts are clamped to each class's
	// size; a request disabling every thread is ignored. Disabled cores
	// drain their current request but take no new work until re-enabled.
	// A no-op on homogeneous servers.
	SetPlacement(counts []int)
	// CoreParked reports whether placement has disabled a core.
	CoreParked(core int) bool

	// CoreRequest returns the request a core is processing, or nil.
	CoreRequest(core int) *Request
	// QueueLen returns the number of queued (undispatched) requests.
	QueueLen() int
	// QueuePeek returns the i-th queued request (0 = head), or nil.
	QueuePeek(i int) *Request
	// BusyCores returns how many cores are processing a request.
	BusyCores() int

	// Counters returns cumulative arrival/completion/timeout counts.
	Counters() Counters
	// Snapshot captures the full system-information feed (queue and
	// in-service SLA budgets) the DeepPower state observer consumes.
	Snapshot() Snapshot
	// Energy returns cumulative socket energy in joules (the RAPL read).
	Energy() float64
	// PredictService returns the wall-clock service time the request's
	// remaining work would take at frequency f, given the contended
	// reference service time. Policies use it for deadline math.
	PredictService(ref sim.Time, f cpu.Freq) sim.Time
}

// Counters are cumulative event counts, cheap to copy. On a DAG-profile
// server Arrivals/Dispatched/Completions count stage requests (the units
// the FIFO and workers see) while JobArrivals/JobCompletions count whole
// stage graphs; Timeouts then counts jobs whose end-to-end latency exceeded
// the SLA, since no single stage has an SLA of its own.
type Counters struct {
	Arrivals    uint64
	Dispatched  uint64
	Completions uint64
	Timeouts    uint64 // completions whose latency exceeded the SLA
	// JobArrivals and JobCompletions count DAG jobs (0 on flat profiles).
	JobArrivals    uint64
	JobCompletions uint64
	// LatencyDropped counts completions whose latency sample was not
	// retained because Config.LatencyCap was reached. The streaming
	// mean/p99 digests still include them.
	LatencyDropped uint64
}

// Policy is a power-management strategy plugged into the server. All
// methods are invoked from the simulation thread; implementations must not
// retain the *Request pointers beyond the callback unless documented.
type Policy interface {
	// Name identifies the policy in reports.
	Name() string
	// Init is called once before the simulation starts.
	Init(c Control)
	// OnTick fires every server tick (the paper's ShortTime, default 1 ms).
	OnTick(now sim.Time)
	// OnArrival fires when a request enters the queue.
	OnArrival(r *Request)
	// OnDispatch fires when a worker starts a request.
	OnDispatch(r *Request, core int)
	// OnComplete fires when a request finishes.
	OnComplete(r *Request, core int)
}

// BasePolicy is a no-op Policy scaffold for embedding: concrete policies
// override only the hooks they need.
type BasePolicy struct{ Ctl Control }

// Name implements Policy.
func (b *BasePolicy) Name() string { return "base" }

// Init implements Policy.
func (b *BasePolicy) Init(c Control) { b.Ctl = c }

// OnTick implements Policy.
func (b *BasePolicy) OnTick(sim.Time) {}

// OnArrival implements Policy.
func (b *BasePolicy) OnArrival(*Request) {}

// OnDispatch implements Policy.
func (b *BasePolicy) OnDispatch(*Request, int) {}

// OnComplete implements Policy.
func (b *BasePolicy) OnComplete(*Request, int) {}
