package server

import (
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
)

// The Server itself implements Control; policies receive it in Init.
var _ Control = (*Server)(nil)

// Now implements Control.
func (s *Server) Now() sim.Time { return s.eng.Now() }

// NumCores implements Control.
func (s *Server) NumCores() int { return len(s.cores) }

// Ladder implements Control.
func (s *Server) Ladder() cpu.Ladder { return s.cfg.Ladder }

// SLA implements Control.
func (s *Server) SLA() sim.Time { return s.prof.SLA }

// RefFreq implements Control.
func (s *Server) RefFreq() cpu.Freq { return s.prof.RefFreq }

// SetFreq implements Control. With a fault injector configured, the request
// may be dropped, delayed, or clamped before it reaches the core. Delayed
// writes model a slow governor thread: at most one apply is in flight per
// core, and when it fires it actuates the *latest* accepted request — newer
// requests update the standing value rather than postponing the apply, so a
// policy hammering the interface still converges instead of livelocking.
func (s *Server) SetFreq(core int, f cpu.Freq) {
	now := s.eng.Now()
	if s.cfg.Faults != nil {
		nf, delay, drop := s.cfg.Faults.OnFreqSet(now, core, f)
		if drop {
			return
		}
		f = nf
		s.wantFreq[core] = f
		if delay > 0 {
			if !s.applyPending[core] {
				s.applyPending[core] = true
				s.eng.After(delay, s.applyFns[core])
			}
			return
		}
	}
	s.applyFreq(core, f)
}

// applyFreq is the actuation path proper: progress and energy are settled
// under the old frequency schedule before the new request is applied, and a
// busy worker's completion event is recomputed.
func (s *Server) applyFreq(core int, f cpu.Freq) {
	w := s.workers[core]
	now := s.eng.Now()
	if s.cfg.Faults != nil {
		if cap := s.cfg.Faults.FreqCap(now, core); cap > 0 && f > cap {
			f = cap
		}
	}
	s.syncWorker(w, now)
	s.accrueCore(w, now)
	w.core.SetFreq(now, f)
	if w.req != nil {
		s.scheduleCompletion(w)
	}
}

// SetTurbo implements Control. Each core engages its own ladder's turbo
// (identical to the config ladder on homogeneous servers).
func (s *Server) SetTurbo(core int) {
	s.SetFreq(core, s.cores[core].Ladder().Turbo)
}

// SetScore implements Control: the thread-controller mapping of Algorithm 1,
// interpolated on the core's own class ladder.
func (s *Server) SetScore(core int, score float64) {
	if score >= 1 {
		s.SetTurbo(core)
		return
	}
	s.SetFreq(core, s.cores[core].Ladder().Interpolate(score))
}

// Freq implements Control.
func (s *Server) Freq(core int) cpu.Freq { return s.cores[core].Target() }

// Sleep implements Control.
func (s *Server) Sleep(core int, state cpu.CState) bool {
	w := s.workers[core]
	if w.req != nil {
		return false
	}
	now := s.eng.Now()
	s.accrueCore(w, now)
	w.core.Sleep(now, state)
	return true
}

// CoreCState implements Control.
func (s *Server) CoreCState(core int) cpu.CState { return s.cores[core].CState() }

// Topology implements Control.
func (s *Server) Topology() *cpu.Topology { return s.topo }

// CoreParked implements Control.
func (s *Server) CoreParked(core int) bool { return s.workers[core].parked }

// SetPlacement implements Control: enable the first counts[c] cores of each
// class and park the rest. Counts are clamped into [0, class size]; a
// request that would disable every thread is ignored (the server never
// deadlocks on a hostile action). Parked busy cores drain their request;
// newly enabled cores immediately drain the queue.
func (s *Server) SetPlacement(counts []int) {
	if s.topo == nil || len(counts) != len(s.topo.Classes) {
		return
	}
	total := 0
	for c, cl := range s.topo.Classes {
		want := counts[c]
		if want < 0 {
			want = 0
		}
		if want > cl.Count {
			want = cl.Count
		}
		total += want
	}
	if total == 0 {
		return
	}
	idx := 0
	for c, cl := range s.topo.Classes {
		want := counts[c]
		if want < 0 {
			want = 0
		}
		if want > cl.Count {
			want = cl.Count
		}
		for i := 0; i < cl.Count; i++ {
			w := s.workers[idx]
			idx++
			park := i >= want
			if park == w.parked {
				continue
			}
			w.parked = park
			if park && w.req == nil {
				// An idle parked core drops to its ladder floor at once;
				// a busy one keeps the controller's schedule while it
				// drains.
				s.SetFreq(w.core.ID(), w.core.Ladder().Min)
			}
		}
	}
	// Newly enabled workers pick up stranded queued requests immediately.
	for s.queue.Len() > 0 {
		w := s.idleWorker()
		if w == nil {
			return
		}
		s.dispatch(w, s.queue.Pop())
	}
}

// CoreRequest implements Control.
func (s *Server) CoreRequest(core int) *Request { return s.workers[core].req }

// QueueLen implements Control.
func (s *Server) QueueLen() int { return s.queue.Len() }

// QueuePeek implements Control.
func (s *Server) QueuePeek(i int) *Request { return s.queue.Peek(i) }

// BusyCores implements Control.
func (s *Server) BusyCores() int {
	n := 0
	for _, w := range s.workers {
		if w.req != nil {
			n++
		}
	}
	return n
}

// Counters implements Control.
func (s *Server) Counters() Counters { return s.counters }

// Energy implements Control. Accounting is settled to the current instant so
// policies reading at agent boundaries see exact interval energy.
func (s *Server) Energy() float64 {
	now := s.eng.Now()
	s.accrueAll(now)
	s.accrueUncore(now)
	return s.meter.Energy()
}

// PredictService implements Control.
func (s *Server) PredictService(ref sim.Time, f cpu.Freq) sim.Time {
	return s.prof.ServiceAt(ref, f)
}

// Snapshot captures the system-information feed the DeepPower state observer
// consumes (§4.4.1): queue length and, for every queued and in-service
// request, the remaining SLA budget.
type Snapshot struct {
	Now      sim.Time
	QueueLen int
	// QueueSLARemaining has one entry per queued request.
	QueueSLARemaining []sim.Time
	// CoreSLARemaining has one entry per busy core.
	CoreSLARemaining []sim.Time
	Counters         Counters
	Energy           float64
	// Classes is the per-class state feed on heterogeneous servers (nil
	// when homogeneous): busy/enabled core counts and cumulative energy
	// attributed to each class's cores.
	Classes []ClassSnap
}

// ClassSnap is one core class's slice of a Snapshot.
type ClassSnap struct {
	Name    string
	Cores   int // cores in the class
	Enabled int // cores not parked by placement
	Busy    int // cores processing a request
	EnergyJ float64
}

// Snapshot builds a point-in-time Snapshot. A configured fault injector
// perturbs it before any policy sees it — noisy, stale, or partial
// telemetry, never the server's own ground-truth accounting.
func (s *Server) Snapshot() Snapshot {
	now := s.eng.Now()
	snap := Snapshot{
		Now:      now,
		QueueLen: s.queue.Len(),
		Counters: s.counters,
		Energy:   s.Energy(),
	}
	for i := 0; i < snap.QueueLen; i++ {
		r := s.queue.Peek(i)
		snap.QueueSLARemaining = append(snap.QueueSLARemaining, r.SLARemaining(now, s.prof.SLA))
	}
	for _, w := range s.workers {
		if w.req != nil {
			snap.CoreSLARemaining = append(snap.CoreSLARemaining, w.req.SLARemaining(now, s.prof.SLA))
		}
	}
	if s.topo != nil {
		snap.Classes = make([]ClassSnap, len(s.topo.Classes))
		idx := 0
		for c, cl := range s.topo.Classes {
			cs := ClassSnap{Name: cl.Name, Cores: cl.Count, EnergyJ: s.classEnergy[c]}
			for i := 0; i < cl.Count; i++ {
				w := s.workers[idx]
				idx++
				if !w.parked {
					cs.Enabled++
				}
				if w.req != nil {
					cs.Busy++
				}
			}
			snap.Classes[c] = cs
		}
	}
	if s.cfg.Faults != nil {
		snap = s.cfg.Faults.PerturbSnapshot(now, snap)
	}
	return snap
}
