package server

import (
	"fmt"
	"math"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/stats"
)

// Result summarizes one simulation run with the metrics the paper reports
// (§5.2): power, latency mean/tail, and timeout percentage.
type Result struct {
	Policy   string
	App      string
	Duration sim.Time
	Counters Counters

	// EnergyJ is socket energy over the measured window (post-warmup).
	EnergyJ float64
	// AvgPowerW is EnergyJ divided by the measured window.
	AvgPowerW float64
	// AvgFreqGHz is the time-weighted mean core frequency.
	AvgFreqGHz float64

	// Latency is the distribution of end-to-end latencies in seconds.
	Latency stats.Summary
	// Latencies retains raw samples unless DiscardLatencies was set.
	Latencies []float64
	// TimeoutRate is timeouts/completions.
	TimeoutRate float64
	// TimeoutBudgetMet is the paper's Eq. 2 QoS constraint: timeouts must
	// not exceed 1% of requests over the run.
	TimeoutBudgetMet bool
	// MeanTailRatio is mean latency / 99th-percentile latency; the paper's
	// Fig. 7c "mean/tail rate" (higher is better: short requests finish
	// fast relative to the tail).
	MeanTailRatio float64
	// SLA echoes the application's requirement for report rendering.
	SLA sim.Time
	// SLAMet reports whether p99 latency is within the SLA.
	SLAMet bool

	// MeanCriticalPathSec is the mean critical path (longest chain of stage
	// processing durations) of completed DAG jobs, 0 on flat profiles. The
	// critical path lower-bounds the achievable end-to-end latency at the
	// observed frequencies, so the gap to Latency.Mean is queueing and
	// precedence stall.
	MeanCriticalPathSec float64
	// MeanCriticalPathShare is the mean of critical-path/latency per job.
	MeanCriticalPathShare float64
	// Jobs retains per-job traces when Config.RecordJobs was set.
	Jobs []JobTrace

	// ClassEnergyJ is cumulative post-warmup energy per core class on
	// heterogeneous servers, nil otherwise.
	ClassEnergyJ []float64

	// Series is the periodic time series when enabled.
	Series *Series
	// FreqTrace is the per-tick frequency trace when enabled.
	FreqTrace *FreqTrace

	// FaultStats holds the fault injector's counters when Config.Faults
	// was set (faults injected by kind), nil otherwise.
	FaultStats map[string]uint64
	// PolicyStats holds counters exported by policies implementing
	// StatsReporter (e.g. the guarded-policy watchdog), nil otherwise.
	PolicyStats map[string]float64
}

// latBlocks retains latency samples in chunked, individually preallocated
// blocks: appends never copy previously stored samples (no slice-doubling
// churn in long runs) and one block allocation amortizes over latBlockSize
// completions. The flat view is materialized once, at result construction.
type latBlocks struct {
	blocks [][]float64
	n      int // total samples stored
}

// latBlockSize is the per-block capacity; 4096 float64s = one 32 KiB block.
const latBlockSize = 4096

func (l *latBlocks) add(v float64) {
	if len(l.blocks) == 0 || len(l.blocks[len(l.blocks)-1]) == latBlockSize {
		l.blocks = append(l.blocks, make([]float64, 0, latBlockSize))
	}
	b := len(l.blocks) - 1
	l.blocks[b] = append(l.blocks[b], v)
	l.n++
}

// flatten materializes the samples as one contiguous slice (nil when empty,
// matching the previous plain-slice behavior).
func (l *latBlocks) flatten() []float64 {
	if l.n == 0 {
		return nil
	}
	out := make([]float64, 0, l.n)
	for _, b := range l.blocks {
		out = append(out, b...)
	}
	return out
}

func (s *Server) buildResult(start, duration sim.Time) *Result {
	measured := duration - s.cfg.Warmup
	if measured <= 0 {
		measured = duration
	}
	energy := s.meter.Energy() - s.warmupEnergy
	latencies := s.latencies.flatten()
	res := &Result{
		Policy:    s.policy.Name(),
		App:       s.prof.Name,
		Duration:  duration,
		Counters:  s.counters,
		EnergyJ:   energy,
		AvgPowerW: energy / measured.Seconds(),
		AvgFreqGHz: s.totalCycles /
			(float64(len(s.cores)) * duration.Seconds()),
		Latencies: latencies,
		SLA:       s.prof.SLA,
		Series:    s.series,
		FreqTrace: s.freqTrace,
	}
	res.Latency = stats.Summarize(latencies)
	if s.cfg.DiscardLatencies && s.latMean.N() > 0 {
		// Streamed digests replace the (discarded) sample set.
		res.Latency.N = s.latMean.N()
		res.Latency.Mean = s.latMean.Mean()
		res.Latency.Std = s.latMean.StdDev()
		res.Latency.P99 = s.latP99.Value()
	}
	if s.counters.JobCompletions > 0 {
		// DAG mode: timeouts are end-to-end job violations.
		res.TimeoutRate = float64(s.counters.Timeouts) / float64(s.counters.JobCompletions)
		res.MeanCriticalPathSec = s.cpMean.Mean()
		res.MeanCriticalPathShare = s.cpShare.Mean()
	} else if s.counters.Completions > 0 {
		res.TimeoutRate = float64(s.counters.Timeouts) / float64(s.counters.Completions)
	}
	res.Jobs = s.jobTraces
	if s.classEnergy != nil {
		res.ClassEnergyJ = make([]float64, len(s.classEnergy))
		for i, e := range s.classEnergy {
			res.ClassEnergyJ[i] = e - s.warmupClassEnergy[i]
		}
	}
	res.TimeoutBudgetMet = res.TimeoutRate <= 0.01
	if res.Latency.P99 > 0 {
		res.MeanTailRatio = res.Latency.Mean / res.Latency.P99
	}
	res.SLAMet = res.Latency.P99 <= s.prof.SLA.Seconds()
	if s.cfg.Faults != nil {
		res.FaultStats = s.cfg.Faults.Stats()
	}
	if sr, ok := s.policy.(StatsReporter); ok {
		res.PolicyStats = sr.ResultStats()
	}
	return res
}

// String renders a one-line report.
func (r *Result) String() string {
	return fmt.Sprintf(
		"%s/%s: power=%.1fW p99=%v mean=%v timeout=%.3f%% slaMet=%v reqs=%d",
		r.App, r.Policy, r.AvgPowerW,
		sim.Seconds(r.Latency.P99), sim.Seconds(r.Latency.Mean),
		r.TimeoutRate*100, r.SLAMet, r.Counters.Completions)
}

// SeriesRow is one sampled interval of the run.
type SeriesRow struct {
	At          sim.Time
	RPS         float64 // arrivals per second in the interval
	PowerW      float64 // average socket power in the interval
	QueueLen    int
	AvgFreqGHz  float64 // mean of core target frequencies at sample time
	Timeouts    uint64  // timeouts in the interval
	Completions uint64
}

// Series is a periodically sampled run time series.
type Series struct {
	Interval sim.Time
	Rows     []SeriesRow

	nextAt       sim.Time
	lastCounters Counters
	lastEnergy   float64
}

func newSeries(interval sim.Time) *Series {
	return &Series{Interval: interval, nextAt: interval}
}

func (ser *Series) maybeSample(now sim.Time, s *Server) {
	if now < ser.nextAt {
		return
	}
	c := s.counters
	e := s.meter.Energy()
	dt := ser.Interval.Seconds()
	var freqSum float64
	for _, core := range s.cores {
		freqSum += float64(core.Target())
	}
	ser.Rows = append(ser.Rows, SeriesRow{
		At:          now,
		RPS:         float64(c.Arrivals-ser.lastCounters.Arrivals) / dt,
		PowerW:      (e - ser.lastEnergy) / dt,
		QueueLen:    s.queue.Len(),
		AvgFreqGHz:  freqSum / float64(len(s.cores)),
		Timeouts:    c.Timeouts - ser.lastCounters.Timeouts,
		Completions: c.Completions - ser.lastCounters.Completions,
	})
	ser.lastCounters = c
	ser.lastEnergy = e
	ser.nextAt += ser.Interval
}

// FreqTrace records per-core target frequencies at every tick inside a
// window, plus request begin/end markers (Figs. 4, 9, 10, 11).
type FreqTrace struct {
	From, To sim.Time
	Times    []sim.Time
	// Freqs[i] is the frequency of each core at Times[i], GHz.
	Freqs [][]float64
	// Begins and Ends are (time, core) markers of request dispatch and
	// completion within the window.
	Begins, Ends []FreqMark
}

// FreqMark is one request lifecycle marker.
type FreqMark struct {
	At   sim.Time
	Core int
}

func newFreqTrace(from, to sim.Time, cores int) *FreqTrace {
	return &FreqTrace{From: from, To: to}
}

func (ft *FreqTrace) inWindow(t sim.Time) bool { return t >= ft.From && t <= ft.To }

func (ft *FreqTrace) sample(now sim.Time, cores []*cpu.Core) {
	if !ft.inWindow(now) {
		return
	}
	fs := make([]float64, len(cores))
	for i, c := range cores {
		fs[i] = float64(c.Target())
	}
	ft.Times = append(ft.Times, now)
	ft.Freqs = append(ft.Freqs, fs)
}

func (ft *FreqTrace) markBegin(now sim.Time, core int) {
	if ft.inWindow(now) {
		ft.Begins = append(ft.Begins, FreqMark{At: now, Core: core})
	}
}

func (ft *FreqTrace) markEnd(now sim.Time, core int) {
	if ft.inWindow(now) {
		ft.Ends = append(ft.Ends, FreqMark{At: now, Core: core})
	}
}

// MinFreq returns the lowest frequency observed anywhere in the trace
// (+Inf for an empty trace).
func (ft *FreqTrace) MinFreq() float64 {
	m := math.Inf(1)
	for _, row := range ft.Freqs {
		for _, f := range row {
			if f < m {
				m = f
			}
		}
	}
	return m
}

// MaxFreq returns the highest frequency observed (-Inf for an empty trace).
func (ft *FreqTrace) MaxFreq() float64 {
	m := math.Inf(-1)
	for _, row := range ft.Freqs {
		for _, f := range row {
			if f > m {
				m = f
			}
		}
	}
	return m
}

// Changes counts tick-to-tick frequency changes summed over cores — a
// granularity measure separating per-request policies from per-millisecond
// ones (Figs. 9 and 10).
func (ft *FreqTrace) Changes() int {
	n := 0
	for i := 1; i < len(ft.Freqs); i++ {
		for c := range ft.Freqs[i] {
			if ft.Freqs[i][c] != ft.Freqs[i-1][c] {
				n++
			}
		}
	}
	return n
}
