package server

import (
	"github.com/deeppower/deeppower/internal/sim"
)

// job is one in-flight DAG-structured request: the set of stage Requests
// sharing an arrival time and an end-to-end SLA. Jobs are pooled like
// Requests; slices are reused across jobs.
type job struct {
	id     uint64
	arrive sim.Time

	remaining int    // stages not yet completed
	admitted  []bool // stage has been enqueued
	start     []sim.Time
	finish    []sim.Time
	// cp[i] is the longest chain of stage processing durations (wall
	// seconds) through any predecessor path ending at stage i's completion.
	cp []float64
}

// JobTrace is one completed job's schedule, retained when Config.RecordJobs
// is set — the raw material of the DAG invariant suite (precedence, critical
// path, conservation checks).
type JobTrace struct {
	ID             uint64
	Arrive, Finish sim.Time
	// StageStart/StageFinish are per-stage dispatch and completion times.
	StageStart, StageFinish []sim.Time
	// CriticalPathSec is the longest chain of stage processing durations.
	CriticalPathSec float64
}

func (s *Server) getJob() *job {
	if n := len(s.jobFree); n > 0 {
		j := s.jobFree[n-1]
		s.jobFree = s.jobFree[:n-1]
		return j
	}
	return &job{}
}

func (s *Server) putJob(j *job) { s.jobFree = append(s.jobFree, j) }

// resetJob sizes and clears a job's per-stage state for n stages.
func (j *job) reset(n int) {
	j.remaining = n
	if cap(j.admitted) < n {
		j.admitted = make([]bool, n)
		j.start = make([]sim.Time, n)
		j.finish = make([]sim.Time, n)
		j.cp = make([]float64, n)
	}
	j.admitted = j.admitted[:n]
	j.start = j.start[:n]
	j.finish = j.finish[:n]
	j.cp = j.cp[:n]
	for i := 0; i < n; i++ {
		j.admitted[i] = false
		j.start[i] = -1
		j.finish[i] = -1
		j.cp[i] = 0
	}
}

// admitJob materializes one DAG job arriving now: its root stages enter the
// queue immediately; downstream stages are admitted as predecessors finish.
func (s *Server) admitJob() {
	j := s.getJob()
	j.id = s.nextJobID
	s.nextJobID++
	j.arrive = s.eng.Now()
	j.reset(s.dag.NumStages())
	s.counters.JobArrivals++
	for _, st := range s.dag.Roots() {
		j.admitted[st] = true
		s.enqueueStage(j, st)
	}
}

// enqueueStage admits one ready stage to the FIFO: sample its work from the
// stage's own distribution, notify the policy, dispatch or queue. The stage
// request's Arrive is the job's arrival so policies and SLA accounting see
// the end-to-end budget.
func (s *Server) enqueueStage(j *job, stage int) {
	r := s.getRequest()
	r.ID = s.nextID
	r.Arrive = j.arrive
	r.Start = -1
	r.Finish = -1
	r.CoreID = -1
	r.ServiceActual = 0
	r.remaining = 0
	r.Stage = stage
	r.job = j
	if into := s.stageInto[stage]; into != nil {
		into.SampleInto(s.rngService, &r.Work)
	} else {
		r.Work = s.dag.Stages[stage].Sampler.Sample(s.rngService)
	}
	s.nextID++
	s.counters.Arrivals++
	s.policy.OnArrival(r)
	if w := s.idleWorker(); w != nil {
		s.dispatch(w, r)
	} else {
		s.queue.Push(r)
	}
}

// completeStage records one stage completion, admits successors whose
// predecessors have all finished (so a stage's dispatch time can never
// precede its last predecessor's finish), and settles the job when its last
// stage completes.
func (s *Server) completeStage(j *job, stage int, start, now sim.Time) {
	j.start[stage] = start
	j.finish[stage] = now
	d := (now - start).Seconds()
	cp := 0.0
	for _, p := range s.dag.Preds(stage) {
		if j.cp[p] > cp {
			cp = j.cp[p]
		}
	}
	j.cp[stage] = cp + d
	j.remaining--
	for _, nx := range s.dag.Succs(stage) {
		if j.admitted[nx] {
			continue
		}
		ready := true
		for _, p := range s.dag.Preds(nx) {
			if j.finish[p] < 0 {
				ready = false
				break
			}
		}
		if ready {
			j.admitted[nx] = true
			s.enqueueStage(j, nx)
		}
	}
	if j.remaining == 0 {
		s.finishJob(j, now)
	}
}

// finishJob settles end-to-end accounting for a completed job: latency
// digests, SLA timeout, critical-path statistics, and the optional trace.
func (s *Server) finishJob(j *job, now sim.Time) {
	s.counters.JobCompletions++
	lat := now - j.arrive
	if lat > s.prof.SLA {
		s.counters.Timeouts++
	}
	maxCP := 0.0
	for _, c := range j.cp {
		if c > maxCP {
			maxCP = c
		}
	}
	if now >= s.cfg.Warmup {
		s.latMean.Add(lat.Seconds())
		s.latP99.Add(lat.Seconds())
		s.cpMean.Add(maxCP)
		if ls := lat.Seconds(); ls > 0 {
			s.cpShare.Add(maxCP / ls)
		}
		if !s.cfg.DiscardLatencies {
			if s.cfg.LatencyCap > 0 && s.latencies.n >= s.cfg.LatencyCap {
				s.counters.LatencyDropped++
			} else {
				s.latencies.add(lat.Seconds())
			}
		}
	}
	if s.cfg.RecordJobs {
		s.jobTraces = append(s.jobTraces, JobTrace{
			ID:              j.id,
			Arrive:          j.arrive,
			Finish:          now,
			StageStart:      append([]sim.Time(nil), j.start...),
			StageFinish:     append([]sim.Time(nil), j.finish...),
			CriticalPathSec: maxCP,
		})
	}
	s.putJob(j)
}
