package server

import (
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// chaosPolicy drives the control surface with random actions every tick:
// random frequencies, turbo, scores, and sleep attempts on random cores.
// Whatever it does, the simulation must preserve its invariants.
type chaosPolicy struct {
	BasePolicy
	rng *sim.RNG
}

func (p *chaosPolicy) Name() string { return "chaos" }

func (p *chaosPolicy) OnTick(now sim.Time) {
	c := p.Ctl
	n := c.NumCores()
	for i := 0; i < 3; i++ {
		core := p.rng.Intn(n)
		switch p.rng.Intn(5) {
		case 0:
			c.SetFreq(core, cpu.Freq(p.rng.Uniform(0.1, 3.5)))
		case 1:
			c.SetTurbo(core)
		case 2:
			c.SetScore(core, p.rng.Uniform(-0.5, 1.5))
		case 3:
			c.Sleep(core, cpu.C6) // refused if busy
		case 4:
			c.Sleep(core, cpu.C1)
		}
	}
}

// TestChaosPolicyInvariants runs randomized policies over several seeds and
// checks the simulator's conservation and sanity invariants survive
// arbitrary (even nonsensical) control sequences.
func TestChaosPolicyInvariants(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		prof := fixedApp(800*sim.Microsecond, 3, 5*sim.Millisecond)
		prof.MemFrac = 0.2
		eng := sim.NewEngine()
		s, err := New(eng, Config{App: prof, Seed: seed},
			&chaosPolicy{rng: sim.NewRNG(seed).Stream("chaos")})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(workload.Constant(1500, sim.Second), 2*sim.Second)
		if err != nil {
			t.Fatal(err)
		}

		// Conservation.
		inFlight := uint64(s.BusyCores()) + uint64(s.QueueLen())
		if res.Counters.Arrivals != res.Counters.Completions+inFlight {
			t.Errorf("seed %d: conservation violated: %d != %d + %d",
				seed, res.Counters.Arrivals, res.Counters.Completions, inFlight)
		}
		// Energy strictly positive and bounded by the all-turbo envelope.
		maxP := s.cfg.Power.Uncore + 3*s.cfg.Power.CorePower(s.cfg.Ladder.Turbo, true)
		if res.EnergyJ <= 0 || res.AvgPowerW > maxP {
			t.Errorf("seed %d: implausible energy %v (avg %vW, cap %vW)",
				seed, res.EnergyJ, res.AvgPowerW, maxP)
		}
		// No request finishes faster than physics allows: the fastest
		// possible service is all-turbo with the memory floor.
		floor := prof.ServiceAt(800*sim.Microsecond, s.cfg.Ladder.Turbo).Seconds()
		for _, lat := range res.Latencies {
			if lat < floor-1e-9 {
				t.Fatalf("seed %d: latency %v below physical floor %v", seed, lat, floor)
			}
		}
		// Monotone virtual time: the engine never reports a Fired count
		// inconsistent with progress.
		if eng.Now() < 2*sim.Second {
			t.Errorf("seed %d: clock stopped at %v", seed, eng.Now())
		}
	}
}

// hostilePolicy is a malfunctioning policy: it emits NaN/Inf/out-of-ladder
// frequencies and non-finite scores. The simulator must absorb all of it
// without panicking or corrupting its accounting.
type hostilePolicy struct {
	BasePolicy
	rng *sim.RNG
}

func (p *hostilePolicy) Name() string { return "hostile" }

func (p *hostilePolicy) OnTick(now sim.Time) {
	c := p.Ctl
	n := c.NumCores()
	core := p.rng.Intn(n)
	switch p.rng.Intn(7) {
	case 0:
		c.SetFreq(core, cpu.Freq(math.NaN()))
	case 1:
		c.SetFreq(core, cpu.Freq(math.Inf(1)))
	case 2:
		c.SetFreq(core, -1)
	case 3:
		c.SetFreq(core, 1000) // far above the ladder
	case 4:
		c.SetScore(core, math.NaN())
	case 5:
		c.SetScore(core, math.Inf(-1))
	case 6:
		c.SetFreq(core, cpu.Freq(p.rng.Uniform(0.1, 3.5)))
	}
}

// TestHostilePolicyInvariants runs NaN-spewing policies over several seeds:
// the server must never panic, conservation must hold, and every core's
// target frequency must remain finite (non-finite requests quantize to the
// ladder floor or ceiling rather than propagating).
func TestHostilePolicyInvariants(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		prof := fixedApp(800*sim.Microsecond, 3, 5*sim.Millisecond)
		eng := sim.NewEngine()
		s, err := New(eng, Config{App: prof, Seed: seed},
			&hostilePolicy{rng: sim.NewRNG(seed).Stream("hostile")})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(workload.Constant(1500, sim.Second), 2*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		inFlight := uint64(s.BusyCores()) + uint64(s.QueueLen())
		if res.Counters.Arrivals != res.Counters.Completions+inFlight {
			t.Errorf("seed %d: conservation violated: %d != %d + %d",
				seed, res.Counters.Arrivals, res.Counters.Completions, inFlight)
		}
		for i := range s.cores {
			f := float64(s.cores[i].Target())
			if math.IsNaN(f) || math.IsInf(f, 0) || f <= 0 {
				t.Errorf("seed %d: core %d target frequency corrupted to %v", seed, i, f)
			}
		}
		if math.IsNaN(res.EnergyJ) || math.IsInf(res.EnergyJ, 0) || res.EnergyJ <= 0 {
			t.Errorf("seed %d: energy accounting corrupted: %v", seed, res.EnergyJ)
		}
	}
}

// TestChaosWithZeroLatencyLadder repeats the chaos run with instantaneous
// DVFS transitions, exercising the no-pending-switch code paths.
func TestChaosWithZeroLatencyLadder(t *testing.T) {
	ladder := cpu.DefaultLadder()
	ladder.TransitionLatency = 0
	prof := fixedApp(sim.Millisecond, 2, 10*sim.Millisecond)
	eng := sim.NewEngine()
	s, err := New(eng, Config{App: prof, Ladder: ladder, Seed: 3},
		&chaosPolicy{rng: sim.NewRNG(3).Stream("chaos")})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workload.Constant(700, sim.Second), sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Completions == 0 {
		t.Error("no completions")
	}
}
