package server

import (
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// expSampler draws exponential service times — together with Poisson
// arrivals and c identical workers this makes the simulated server an
// M/M/c queue with a known analytic solution, validating the entire
// event-driven machinery against queueing theory.
type expSampler struct{ mean sim.Time }

func (e expSampler) Sample(r *sim.RNG) app.Work {
	return app.Work{
		ServiceRef: sim.Seconds(r.Exp(1 / e.mean.Seconds())),
		Features:   []float64{1},
	}
}
func (e expSampler) FeatureDim() int { return 1 }

// erlangC returns the probability an arrival waits in an M/M/c queue with
// offered load a = λ/µ and c servers.
func erlangC(c int, a float64) float64 {
	// P_wait = (a^c / c!) * (c/(c-a)) / (Σ_{k<c} a^k/k! + (a^c/c!)·c/(c-a))
	sum := 0.0
	term := 1.0 // a^k / k!
	for k := 0; k < c; k++ {
		sum += term
		term *= a / float64(k+1)
	}
	top := term * float64(c) / (float64(c) - a)
	return top / (sum + top)
}

func TestSimulatorMatchesErlangC(t *testing.T) {
	const (
		workers = 4
		meanSvc = 2 * sim.Millisecond
	)
	for _, util := range []float64{0.3, 0.6, 0.8} {
		mu := 1 / meanSvc.Seconds()         // per-server service rate
		lambda := util * workers * mu       // arrival rate
		a := lambda / mu                    // offered load
		pWait := erlangC(workers, a)        // Erlang C
		wq := pWait / (workers*mu - lambda) // mean wait in queue

		prof := &app.Profile{
			Name: "mmc", SLA: sim.Second, Workers: workers, RefFreq: 2.1,
			Sampler: expSampler{mean: meanSvc},
		}
		eng := sim.NewEngine()
		s, err := New(eng, Config{App: prof, Seed: 99, Warmup: 2 * sim.Second}, &maxFreqPolicy{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(workload.Constant(lambda, sim.Second), 60*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		// Mean latency = mean wait + mean service.
		want := wq + meanSvc.Seconds()
		got := res.Latency.Mean
		if rel := math.Abs(got-want) / want; rel > 0.06 {
			t.Errorf("util %.0f%%: mean latency %v, Erlang-C predicts %v (rel err %.3f)",
				util*100, got, want, rel)
		}
	}
}

// TestLittlesLaw checks L = λW on the simulated queue: the time-average
// number in system equals throughput × mean latency.
func TestLittlesLaw(t *testing.T) {
	const workers = 3
	prof := &app.Profile{
		Name: "littles", SLA: sim.Second, Workers: workers, RefFreq: 2.1,
		Sampler: expSampler{mean: sim.Millisecond},
	}
	lambda := 0.7 * float64(workers) / sim.Millisecond.Seconds()
	eng := sim.NewEngine()
	s, err := New(eng, Config{App: prof, Seed: 5, SeriesInterval: 100 * sim.Millisecond}, &maxFreqPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workload.Constant(lambda, sim.Second), 30*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	throughput := float64(res.Counters.Completions) / 30.0
	// L from sampled queue lengths + busy servers: approximate using the
	// series' queue lengths plus average busy estimated from utilization.
	var queueSum float64
	for _, row := range res.Series.Rows {
		queueSum += float64(row.QueueLen)
	}
	lQueue := queueSum / float64(len(res.Series.Rows))
	lService := throughput * sim.Millisecond.Seconds() // busy servers = λ·E[S]
	l := lQueue + lService
	w := res.Latency.Mean
	if rel := math.Abs(l-throughput*w) / l; rel > 0.15 {
		t.Errorf("Little's law violated: L=%.3f λW=%.3f (rel %.3f)", l, throughput*w, rel)
	}
}
