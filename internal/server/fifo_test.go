package server

import "testing"

// TestFIFOWraparound drives the counters across the ring boundary many times
// and checks FIFO order is preserved while head/tail wrap.
func TestFIFOWraparound(t *testing.T) {
	var q fifo
	next := uint64(0) // next ID to push
	want := uint64(0) // next ID expected from Pop
	// Keep the queue depth oscillating between 3 and 13 so the live window
	// straddles the 16-slot ring boundary repeatedly.
	for round := 0; round < 50; round++ {
		for i := 0; i < 10; i++ {
			q.Push(&Request{ID: next})
			next++
		}
		for i := 0; i < 10; i++ {
			r := q.Pop()
			if r == nil {
				t.Fatalf("round %d: unexpected empty pop", round)
			}
			if r.ID != want {
				t.Fatalf("round %d: popped ID %d, want %d", round, r.ID, want)
			}
			want++
		}
	}
	if got := len(q.buf); got != 16 {
		t.Errorf("ring grew during wraparound churn: len(buf) = %d, want 16", got)
	}
}

// TestFIFOGrowWhileWrapped forces growth at a moment when the live window
// wraps around the ring end, which exercises the unwrap-copy in grow.
func TestFIFOGrowWhileWrapped(t *testing.T) {
	var q fifo
	// Fill the initial 16-slot ring, then pop a few so head > 0.
	for i := 0; i < 16; i++ {
		q.Push(&Request{ID: uint64(i)})
	}
	for i := 0; i < 5; i++ {
		q.Pop()
	}
	// Refill past the physical end: the live window now wraps, and the next
	// pushes trigger grow() with a wrapped window.
	for i := 16; i < 40; i++ {
		q.Push(&Request{ID: uint64(i)})
	}
	if q.Len() != 35 {
		t.Fatalf("Len = %d, want 35", q.Len())
	}
	for want := uint64(5); want < 40; want++ {
		r := q.Pop()
		if r == nil || r.ID != want {
			t.Fatalf("popped %v, want ID %d", r, want)
		}
	}
	if q.Pop() != nil {
		t.Error("queue should be empty")
	}
}

// TestFIFOPopReleasesSlot checks popped ring slots are nilled so the ring
// does not pin completed requests for the GC.
func TestFIFOPopReleasesSlot(t *testing.T) {
	var q fifo
	for i := 0; i < 8; i++ {
		q.Push(&Request{ID: uint64(i)})
	}
	for i := 0; i < 8; i++ {
		q.Pop()
	}
	for i, r := range q.buf {
		if r != nil {
			t.Errorf("buf[%d] still holds a request after pop", i)
		}
	}
}

// TestFIFOPeekAcrossWrap checks Peek indexes logically (0 = head) even when
// the live window wraps the physical ring end.
func TestFIFOPeekAcrossWrap(t *testing.T) {
	var q fifo
	for i := 0; i < 16; i++ {
		q.Push(&Request{ID: uint64(i)})
	}
	for i := 0; i < 12; i++ {
		q.Pop()
	}
	for i := 16; i < 26; i++ { // window [12, 26) wraps the 16-slot ring
		q.Push(&Request{ID: uint64(i)})
	}
	for i := 0; i < q.Len(); i++ {
		if r := q.Peek(i); r == nil || r.ID != uint64(12+i) {
			t.Fatalf("Peek(%d) = %v, want ID %d", i, r, 12+i)
		}
	}
	if q.Peek(-1) != nil || q.Peek(q.Len()) != nil {
		t.Error("out-of-range Peek should return nil")
	}
}

// TestFIFOSteadyStateZeroAllocs checks that once the ring has reached its
// high-water mark, push/pop cycles allocate nothing.
func TestFIFOSteadyStateZeroAllocs(t *testing.T) {
	var q fifo
	reqs := make([]*Request, 32)
	for i := range reqs {
		reqs[i] = &Request{ID: uint64(i)}
	}
	for _, r := range reqs { // establish the high-water mark
		q.Push(r)
	}
	for range reqs {
		q.Pop()
	}
	allocs := testing.AllocsPerRun(100, func() {
		for _, r := range reqs {
			q.Push(r)
		}
		for range reqs {
			q.Pop()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state push/pop allocated %.1f times per run, want 0", allocs)
	}
}
