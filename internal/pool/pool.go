// Package pool provides a bounded worker pool for running independent
// experiment work units concurrently while keeping results deterministic.
//
// The contract every caller in internal/exp relies on: units must be
// self-contained (no RNG, engine, server, or agent state shared between
// units) and results must be assembled by unit index, never by completion
// order. Under that contract a grid executed with N workers produces output
// byte-identical to the same grid executed serially — the property
// internal/exp's serial/parallel equivalence tests enforce.
package pool

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Unit is one independent piece of work. The context is the pool's run
// context; long-running units may watch it for early exit, but the pool
// itself only checks it between unit dispatches.
type Unit func(ctx context.Context) error

// Clamp normalizes a worker count: zero and negative values become
// runtime.GOMAXPROCS(0) so "use every core" is the spelled-out default.
func Clamp(workers int) int {
	if workers <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return workers
}

// Progress describes one finished unit. Callbacks are serialized by the
// pool: Done increases by exactly one per callback, from 1 to Total.
type Progress struct {
	// Index is the unit's position in the slice passed to Run.
	Index int
	// Done counts units finished so far, including this one.
	Done int
	// Total is the number of units in the grid.
	Total int
	// Err is the unit's result (nil on success, the recovered panic wrapped
	// as an error on panic).
	Err error
}

// Run executes units with at most workers goroutines. It returns the error
// of the lowest-indexed failed unit (deterministic regardless of worker
// count and scheduling), or the context's error if the run was cancelled
// before every unit completed. A unit panic is captured and surfaced as an
// error rather than crashing the process. After the first failure no new
// units are dispatched; in-flight units run to completion.
func Run(ctx context.Context, units []Unit, workers int) error {
	return RunNotify(ctx, units, workers, nil)
}

// RunNotify is Run with a per-unit completion callback. notify may be nil.
// Callbacks are invoked serially under the pool's lock, so they may touch
// shared state without further synchronization.
func RunNotify(ctx context.Context, units []Unit, workers int, notify func(Progress)) error {
	if len(units) == 0 {
		return ctx.Err()
	}
	workers = Clamp(workers)
	if workers > len(units) {
		workers = len(units)
	}

	var (
		mu     sync.Mutex
		done   int
		failed bool
	)
	errs := make([]error, len(units))
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				err := runUnit(ctx, units[i])
				mu.Lock()
				errs[i] = err
				done++
				if err != nil {
					failed = true
				}
				if notify != nil {
					notify(Progress{Index: i, Done: done, Total: len(units), Err: err})
				}
				mu.Unlock()
			}
		}()
	}

dispatch:
	for i := range units {
		mu.Lock()
		stop := failed
		mu.Unlock()
		if stop {
			break
		}
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return ctx.Err()
}

// Map runs fn over every item with bounded parallelism and returns the
// results in item order. It shares Run's semantics: first (lowest-index)
// error wins, cancellation stops dispatch, panics become errors.
func Map[T, R any](ctx context.Context, items []T, workers int, fn func(ctx context.Context, item T, idx int) (R, error)) ([]R, error) {
	out := make([]R, len(items))
	units := make([]Unit, len(items))
	for i := range items {
		i := i
		units[i] = func(ctx context.Context) error {
			r, err := fn(ctx, items[i], i)
			if err != nil {
				return err
			}
			out[i] = r
			return nil
		}
	}
	if err := Run(ctx, units, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// runUnit invokes u, converting a panic into an error with the panicking
// goroutine's stack attached.
func runUnit(ctx context.Context, u Unit) (err error) {
	defer func() {
		if r := recover(); r != nil {
			buf := make([]byte, 8192)
			n := runtime.Stack(buf, false)
			err = fmt.Errorf("pool: unit panicked: %v\n%s", r, buf[:n])
		}
	}()
	return u(ctx)
}
