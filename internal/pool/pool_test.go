package pool

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunExecutesEveryUnit(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var ran [20]atomic.Bool
		units := make([]Unit, len(ran))
		for i := range units {
			i := i
			units[i] = func(context.Context) error { ran[i].Store(true); return nil }
		}
		if err := Run(context.Background(), units, workers); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if !ran[i].Load() {
				t.Errorf("workers=%d: unit %d never ran", workers, i)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	if err := Run(context.Background(), nil, 4); err != nil {
		t.Fatalf("empty grid: %v", err)
	}
}

func TestClampWorkers(t *testing.T) {
	want := runtime.GOMAXPROCS(0)
	for _, w := range []int{0, -1, -100} {
		if got := Clamp(w); got != want {
			t.Errorf("Clamp(%d) = %d, want GOMAXPROCS %d", w, got, want)
		}
	}
	if got := Clamp(7); got != 7 {
		t.Errorf("Clamp(7) = %d", got)
	}
	// Run itself must accept degenerate worker counts.
	var n atomic.Int32
	units := []Unit{func(context.Context) error { n.Add(1); return nil }}
	for _, w := range []int{0, -5} {
		if err := Run(context.Background(), units, w); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
	}
	if n.Load() != 2 {
		t.Errorf("unit ran %d times, want 2", n.Load())
	}
}

func TestCancellationMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int32
	release := make(chan struct{})
	units := make([]Unit, 50)
	for i := range units {
		units[i] = func(context.Context) error {
			started.Add(1)
			<-release
			return nil
		}
	}
	done := make(chan error, 1)
	go func() { done <- Run(ctx, units, 2) }()

	// Wait for both workers to be mid-unit, cancel, then release them.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run deadlocked after cancellation")
	}
	// Only the in-flight units (plus at most the one blocked in dispatch)
	// may have started; the rest of the grid must never run.
	if s := started.Load(); s > 3 {
		t.Errorf("%d units started after mid-grid cancel, want <= 3", s)
	}
}

func TestPanicSurfacesAsError(t *testing.T) {
	var after atomic.Bool
	units := []Unit{
		func(context.Context) error { panic("boom") },
		func(context.Context) error { after.Store(true); return nil },
	}
	done := make(chan error, 1)
	go func() { done <- Run(context.Background(), units, 1) }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "boom") {
			t.Fatalf("err = %v, want captured panic", err)
		}
		if !strings.Contains(err.Error(), "pool_test.go") {
			t.Errorf("panic error lacks a stack trace: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run deadlocked after panic")
	}
	// Fail-fast: with one worker the unit after the panic is never dispatched.
	if after.Load() {
		t.Error("unit after panicking unit still ran")
	}
}

func TestFirstErrorPropagationIsDeterministic(t *testing.T) {
	// Several units fail; the returned error must be the lowest-indexed
	// one regardless of worker count or completion order.
	for _, workers := range []int{1, 2, 8} {
		units := make([]Unit, 10)
		for i := range units {
			i := i
			units[i] = func(context.Context) error {
				if i%3 == 1 { // units 1, 4, 7 fail
					return fmt.Errorf("unit %d failed", i)
				}
				return nil
			}
		}
		err := Run(context.Background(), units, workers)
		if err == nil || err.Error() != "unit 1 failed" {
			t.Errorf("workers=%d: err = %v, want unit 1's error", workers, err)
		}
	}
}

func TestProgressCallbackOrdering(t *testing.T) {
	const n = 30
	units := make([]Unit, n)
	for i := range units {
		units[i] = func(context.Context) error { return nil }
	}
	var (
		mu    sync.Mutex
		dones []int
		seen  = map[int]int{}
	)
	err := RunNotify(context.Background(), units, 4, func(p Progress) {
		mu.Lock()
		defer mu.Unlock()
		dones = append(dones, p.Done)
		seen[p.Index]++
		if p.Total != n {
			t.Errorf("Total = %d, want %d", p.Total, n)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != n {
		t.Fatalf("%d callbacks, want %d", len(dones), n)
	}
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("callback %d reported Done=%d, want %d (strictly increasing)", i, d, i+1)
		}
	}
	for i := 0; i < n; i++ {
		if seen[i] != 1 {
			t.Errorf("unit %d reported %d times", i, seen[i])
		}
	}
}

func TestMapOrderIndependentOfScheduling(t *testing.T) {
	items := make([]int, 100)
	for i := range items {
		items[i] = i
	}
	out, err := Map(context.Background(), items, 8, func(_ context.Context, v, idx int) (string, error) {
		if v != idx {
			t.Errorf("item %d delivered with idx %d", v, idx)
		}
		// Stagger completions so results would interleave if assembled by
		// completion order.
		time.Sleep(time.Duration(v%7) * time.Millisecond)
		return fmt.Sprintf("r%d", v), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range out {
		if want := fmt.Sprintf("r%d", i); s != want {
			t.Fatalf("out[%d] = %q, want %q", i, s, want)
		}
	}
}

func TestMapError(t *testing.T) {
	_, err := Map(context.Background(), []int{0, 1, 2}, 2, func(_ context.Context, v, _ int) (int, error) {
		if v == 1 {
			return 0, errors.New("nope")
		}
		return v, nil
	})
	if err == nil || err.Error() != "nope" {
		t.Fatalf("err = %v", err)
	}
}
