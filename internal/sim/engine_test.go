package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		in   Time
		secs float64
	}{
		{Second, 1},
		{Millisecond, 0.001},
		{Microsecond, 1e-6},
		{2500 * Millisecond, 2.5},
	}
	for _, c := range cases {
		if got := c.in.Seconds(); got != c.secs {
			t.Errorf("%v.Seconds() = %v, want %v", c.in, got, c.secs)
		}
	}
	if got := Seconds(1.5); got != 1500*Millisecond {
		t.Errorf("Seconds(1.5) = %v", got)
	}
	if got := Millis(2); got != 2*Millisecond {
		t.Errorf("Millis(2) = %v", got)
	}
	if got := Micros(3); got != 3*Microsecond {
		t.Errorf("Micros(3) = %v", got)
	}
}

func TestTimeString(t *testing.T) {
	cases := []struct {
		in   Time
		want string
	}{
		{500 * Nanosecond, "500ns"},
		{Millisecond, "1ms"},
		{Second, "1s"},
		{MaxTime, "∞"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.in), got, c.want)
		}
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("events fired out of order: %v", order)
	}
	if e.Now() != 30 {
		t.Errorf("clock = %v, want 30", e.Now())
	}
	if e.Fired() != 3 {
		t.Errorf("fired = %d, want 3", e.Fired())
	}
}

func TestEngineFIFOAtSameInstant(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	e.Cancel(ev)
	e.Run()
	if fired {
		t.Error("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Error("Cancelled() = false after cancel")
	}
	// Double cancel is a no-op, as is cancelling the zero Event.
	e.Cancel(ev)
	e.Cancel(Event{})
}

func TestEngineCancelDuringRun(t *testing.T) {
	e := NewEngine()
	fired := false
	var ev Event
	e.At(5, func() { e.Cancel(ev) })
	ev = e.At(10, func() { fired = true })
	e.Run()
	if fired {
		t.Error("event cancelled mid-run still fired")
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want exactly events at 10 and 20", fired)
	}
	if e.Now() != 25 {
		t.Errorf("clock = %v, want 25", e.Now())
	}
	// Events at exactly the boundary fire.
	e.RunUntil(30)
	if len(fired) != 3 {
		t.Errorf("boundary event at 30 did not fire: %v", fired)
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Errorf("After fired at %v, want 150", at)
	}
}

func TestEngineEvery(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	cancel := e.Every(0, 10, func(now Time) {
		ticks = append(ticks, now)
	})
	e.At(35, func() { cancel() })
	e.Run()
	want := []Time{0, 10, 20, 30}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Error("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestEngineNilFuncPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("nil event func did not panic")
		}
	}()
	e.At(1, nil)
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced different sequences")
		}
	}
	s1 := NewRNG(42).Stream("arrivals")
	s2 := NewRNG(42).Stream("arrivals")
	if s1.Float64() != s2.Float64() {
		t.Error("derived streams with same name differ")
	}
	s3 := NewRNG(42).Stream("service")
	if s1.Seed() == s3.Seed() {
		t.Error("different stream names produced same seed")
	}
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(7)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(4.0)
	}
	mean := sum / n
	if math.Abs(mean-0.25) > 0.01 {
		t.Errorf("Exp(4) mean = %v, want ~0.25", mean)
	}
}

func TestRNGLogNormalMedian(t *testing.T) {
	r := NewRNG(9)
	const n = 100001
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = r.LogNormal(1.0, 0.5)
	}
	// Median of lognormal is e^mu.
	med := quickSelectMedian(xs)
	if math.Abs(med-math.E) > 0.1 {
		t.Errorf("LogNormal median = %v, want ~%v", med, math.E)
	}
}

func quickSelectMedian(xs []float64) float64 {
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return cp[len(cp)/2]
}

func TestRNGParetoTail(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	exceed := 0
	for i := 0; i < n; i++ {
		if r.Pareto(1.0, 2.0) > 2.0 {
			exceed++
		}
	}
	// P(X > 2) = (1/2)^2 = 0.25.
	frac := float64(exceed) / n
	if math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Pareto tail fraction = %v, want ~0.25", frac)
	}
}

func TestRNGParetoAboveScale(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			if r.Pareto(3.0, 1.5) < 3.0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRNGUniformRange(t *testing.T) {
	f := func(seed int64) bool {
		r := NewRNG(seed)
		for i := 0; i < 100; i++ {
			v := r.Uniform(2, 5)
			if v < 2 || v >= 5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEngineMonotonicClock property-checks that no event sequence can move
// the clock backwards.
func TestEngineMonotonicClock(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Time(-1)
		ok := true
		for _, d := range delays {
			e.After(Time(d), func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkEngineScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(1, func() {})
		e.Step()
	}
}

func TestEnginePendingAndPeekSkipsCancelled(t *testing.T) {
	e := NewEngine()
	ev1 := e.At(10, func() {})
	e.At(20, func() {})
	if e.Pending() != 2 {
		t.Errorf("Pending = %d", e.Pending())
	}
	e.Cancel(ev1)
	// RunUntil must skip the cancelled head cleanly.
	e.RunUntil(15)
	if e.Now() != 15 {
		t.Errorf("Now = %v", e.Now())
	}
	e.Run()
	if e.Fired() != 1 {
		t.Errorf("Fired = %d, want only the surviving event", e.Fired())
	}
}

func TestTimeDuration(t *testing.T) {
	if (1500 * Millisecond).Duration() != 1500*time.Millisecond {
		t.Error("Duration conversion wrong")
	}
}

func TestEveryZeroPeriodPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Error("Every(0) did not panic")
		}
	}()
	e.Every(0, 0, func(Time) {})
}

func TestRNGBadDistributionsPanic(t *testing.T) {
	r := NewRNG(1)
	for name, fn := range map[string]func(){
		"Exp":    func() { r.Exp(0) },
		"Pareto": func() { r.Pareto(0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with bad params did not panic", name)
				}
			}()
			fn()
		}()
	}
}
