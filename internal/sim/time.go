// Package sim provides the discrete-event simulation substrate used by every
// experiment in this repository: a virtual clock, an event queue, and seeded
// random-number streams.
//
// All latency and energy numbers in the reproduction are measured against the
// virtual clock, never wall time, so runs are deterministic under a seed and
// complete orders of magnitude faster than the real-time experiments in the
// paper.
package sim

import (
	"fmt"
	"time"
)

// Time is a point (or span) of virtual time in nanoseconds.
//
// It deliberately mirrors time.Duration arithmetic but is a distinct type so
// that virtual timestamps cannot be accidentally mixed with wall-clock values.
type Time int64

// Common virtual durations.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// MaxTime is the largest representable virtual time.
const MaxTime = Time(1<<63 - 1)

// Seconds converts a float64 number of seconds into a Time.
func Seconds(s float64) Time { return Time(s * float64(Second)) }

// Millis converts a float64 number of milliseconds into a Time.
func Millis(ms float64) Time { return Time(ms * float64(Millisecond)) }

// Micros converts a float64 number of microseconds into a Time.
func Micros(us float64) Time { return Time(us * float64(Microsecond)) }

// Seconds reports t as a float64 number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a float64 number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// Microseconds reports t as a float64 number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// Duration converts t into a time.Duration for interoperability with
// formatting helpers. Virtual and wall durations share the nanosecond unit.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// String formats the time with an adaptive unit, e.g. "1.5ms" or "2.25s".
func (t Time) String() string {
	switch {
	case t == MaxTime:
		return "∞"
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.3gus", t.Microseconds())
	case t < Second:
		return fmt.Sprintf("%.4gms", t.Milliseconds())
	default:
		return fmt.Sprintf("%.4gs", t.Seconds())
	}
}
