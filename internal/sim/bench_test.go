package sim

import "testing"

// BenchmarkEngineSchedule measures the scheduler's steady-state churn: one
// After + one Step per iteration against a standing population of pending
// events, the access pattern the server's arrival/completion/tick traffic
// produces. results/BENCH_sim.json snapshots events/sec and allocs/op.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	const standing = 512
	for i := 0; i < standing; i++ {
		e.After(Time(i+1), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(standing, fn)
		e.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}

// BenchmarkEngineScheduleCancel measures the schedule-then-cancel pattern the
// server's tentative completion events produce: every DVFS actuation on a
// busy core cancels and reschedules that worker's completion.
func BenchmarkEngineScheduleCancel(b *testing.B) {
	e := NewEngine()
	fn := func() {}
	const standing = 512
	for i := 0; i < standing; i++ {
		e.After(Time(i+1), fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ev := e.After(standing/2, fn)
		e.Cancel(ev)
		e.After(standing, fn)
		e.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "events/sec")
}
