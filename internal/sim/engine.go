package sim

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled callback. Events are created through Engine.At or
// Engine.After and may be cancelled with Engine.Cancel before they fire.
type Event struct {
	at    Time
	seq   uint64 // tie-breaker: FIFO among events at the same instant
	fn    func()
	index int // heap index, -1 once popped or cancelled
}

// At reports when the event is scheduled to fire.
func (e *Event) At() Time { return e.at }

// Cancelled reports whether the event was removed before firing.
func (e *Event) Cancelled() bool { return e.fn == nil }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation driver. It is not safe for concurrent
// use; a simulation is a single logical thread of control whose parallelism,
// if any, lives inside individual event handlers.
type Engine struct {
	now     Time
	events  eventHeap
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an engine whose clock starts at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return len(e.events) }

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event func")
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) *Event {
	return e.At(e.now+d, fn)
}

// Every schedules fn to run first at start and then every period thereafter,
// until the engine stops or cancel is invoked. fn receives the firing time.
// It returns a cancel function.
func (e *Engine) Every(start, period Time, fn func(Time)) (cancel func()) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	var cur *Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		at := e.now
		cur = e.At(at+period, tick)
		fn(at)
	}
	cur = e.At(start, tick)
	return func() {
		stopped = true
		if cur != nil {
			e.Cancel(cur)
		}
	}
}

// Cancel removes ev from the schedule. Cancelling an already-fired or
// already-cancelled event is a no-op.
func (e *Engine) Cancel(ev *Event) {
	if ev == nil || ev.fn == nil {
		return
	}
	ev.fn = nil
	if ev.index >= 0 {
		heap.Remove(&e.events, ev.index)
	}
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.fn == nil {
			continue // cancelled
		}
		e.now = ev.at
		fn := ev.fn
		ev.fn = nil
		e.fired++
		fn()
		return true
	}
	return false
}

// RunUntil fires events in order until the next event would be after t, then
// sets the clock to exactly t. Events scheduled at t itself do fire.
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	for {
		ev := e.peek()
		if ev == nil || ev.at > t {
			break
		}
		e.Step()
	}
	e.now = t
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

func (e *Engine) peek() *Event {
	for len(e.events) > 0 {
		if e.events[0].fn == nil {
			heap.Pop(&e.events)
			continue
		}
		return e.events[0]
	}
	return nil
}
