package sim

import "fmt"

// Event is a cancellable handle to a scheduled callback, returned by
// Engine.At and Engine.After. It is a small value (not a pointer): the
// engine stores events in an index-stable arena and hands out generation-
// checked references, so scheduling allocates nothing in steady state and a
// stale handle (fired, cancelled, or from before a Reset) can never reach a
// recycled slot. The zero Event refers to no event; cancelling it is a no-op.
type Event struct {
	eng *Engine
	at  Time
	ref uint32 // arena index + 1; 0 = no event
	gen uint32 // must match the slot's generation to be live
}

// At reports when the event was scheduled to fire.
func (ev Event) At() Time { return ev.at }

// Cancelled reports whether the event is no longer pending: it fired, was
// cancelled, or the engine was reset. The zero Event reports true.
func (ev Event) Cancelled() bool {
	if ev.eng == nil || ev.ref == 0 {
		return true
	}
	return ev.eng.arena[ev.ref-1].gen != ev.gen
}

// slot is one arena entry. Slots are recycled through a free list; gen
// increments on every release so outstanding handles become inert rather
// than aliasing the slot's next occupant.
type slot struct {
	fn  func()
	gen uint32
	pos int32 // index into the heap's node array, -1 when not queued
}

// node is one entry of the typed 4-ary min-heap. The sort key (at, seq)
// lives inline in the node so comparisons never chase an arena pointer.
type node struct {
	at  Time
	seq uint64
	idx int32 // arena slot holding the callback
}

// Engine is a discrete-event simulation driver. It is not safe for concurrent
// use; a simulation is a single logical thread of control whose parallelism,
// if any, lives inside individual event handlers.
//
// The scheduler is a concrete 4-ary min-heap over an index-stable event
// arena with a free list: At/After/Cancel and the run loop perform zero heap
// allocations in steady state and no interface boxing. Events with equal
// firing times keep FIFO order via a monotone sequence number, so the pop
// order is a strict total order on (at, seq) — identical to the previous
// container/heap implementation bit for bit.
type Engine struct {
	now   Time
	nodes []node // 4-ary min-heap ordered by (at, seq)
	arena []slot
	free  []int32 // recycled arena indices (LIFO)
	seq   uint64
	fired uint64
}

// NewEngine returns an engine whose clock starts at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are scheduled but not yet fired.
func (e *Engine) Pending() int { return len(e.nodes) }

// Reset returns the engine to its initial state — clock at zero, no pending
// events, counters cleared — while keeping the event arena, free list, and
// heap storage so a reused engine schedules without re-growing them. All
// outstanding Event handles are invalidated (Cancel on them is a no-op).
// A reset engine is observably identical to a fresh NewEngine.
func (e *Engine) Reset() {
	e.nodes = e.nodes[:0]
	e.free = e.free[:0]
	for i := range e.arena {
		s := &e.arena[i]
		s.fn = nil
		s.gen++
		s.pos = -1
		e.free = append(e.free, int32(i))
	}
	e.now, e.seq, e.fired = 0, 0, 0
}

// At schedules fn to run at absolute virtual time t. Scheduling in the past
// panics: it is always a logic error in a discrete-event model.
func (e *Engine) At(t Time, fn func()) Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	if fn == nil {
		panic("sim: scheduling nil event func")
	}
	var idx int32
	if n := len(e.free); n > 0 {
		idx = e.free[n-1]
		e.free = e.free[:n-1]
	} else {
		e.arena = append(e.arena, slot{})
		idx = int32(len(e.arena) - 1)
	}
	s := &e.arena[idx]
	s.fn = fn
	e.nodes = append(e.nodes, node{at: t, seq: e.seq, idx: idx})
	e.seq++
	e.siftUp(len(e.nodes) - 1)
	return Event{eng: e, at: t, ref: uint32(idx) + 1, gen: s.gen}
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Time, fn func()) Event {
	return e.At(e.now+d, fn)
}

// Every schedules fn to run first at start and then every period thereafter,
// until the engine stops or cancel is invoked. fn receives the firing time.
// It returns a cancel function.
func (e *Engine) Every(start, period Time, fn func(Time)) (cancel func()) {
	if period <= 0 {
		panic("sim: Every with non-positive period")
	}
	var cur Event
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		at := e.now
		cur = e.At(at+period, tick)
		fn(at)
	}
	cur = e.At(start, tick)
	return func() {
		stopped = true
		e.Cancel(cur)
	}
}

// Cancel removes ev from the schedule. Cancelling an already-fired,
// already-cancelled, or zero Event is a no-op.
func (e *Engine) Cancel(ev Event) {
	if ev.eng != e || ev.ref == 0 {
		return
	}
	idx := int32(ev.ref - 1)
	s := &e.arena[idx]
	if s.gen != ev.gen {
		return // fired, cancelled, or pre-Reset: stale handle
	}
	e.remove(int(s.pos))
	e.release(idx)
}

// release returns an arena slot to the free list, invalidating handles.
func (e *Engine) release(idx int32) {
	s := &e.arena[idx]
	s.fn = nil
	s.gen++
	s.pos = -1
	e.free = append(e.free, idx)
}

// Step fires the earliest pending event, advancing the clock to its time.
// It reports whether an event was fired.
func (e *Engine) Step() bool {
	if len(e.nodes) == 0 {
		return false
	}
	n := e.popMin()
	e.now = n.at
	fn := e.arena[n.idx].fn
	e.release(n.idx)
	e.fired++
	fn()
	return true
}

// RunUntil fires events in order until the next event would be after t, then
// sets the clock to exactly t. Events scheduled at t itself do fire.
func (e *Engine) RunUntil(t Time) {
	if t < e.now {
		panic(fmt.Sprintf("sim: RunUntil(%v) before now %v", t, e.now))
	}
	for len(e.nodes) > 0 && e.nodes[0].at <= t {
		e.Step()
	}
	e.now = t
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// nodeLess orders heap nodes by (at, seq): earliest time first, FIFO among
// events at the same instant. seq is unique, so the order is strict and the
// pop sequence is independent of the heap's internal arrangement.
func nodeLess(a, b node) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// siftUp restores the heap property for the node at position i by moving it
// toward the root, updating arena back-references along the way.
func (e *Engine) siftUp(i int) {
	n := e.nodes[i]
	for i > 0 {
		p := (i - 1) / 4
		if !nodeLess(n, e.nodes[p]) {
			break
		}
		e.nodes[i] = e.nodes[p]
		e.arena[e.nodes[i].idx].pos = int32(i)
		i = p
	}
	e.nodes[i] = n
	e.arena[n.idx].pos = int32(i)
}

// siftDown restores the heap property for the node at position i by moving
// it toward the leaves.
func (e *Engine) siftDown(i int) {
	n := e.nodes[i]
	sz := len(e.nodes)
	for {
		c := i*4 + 1
		if c >= sz {
			break
		}
		m := c
		end := c + 4
		if end > sz {
			end = sz
		}
		for k := c + 1; k < end; k++ {
			if nodeLess(e.nodes[k], e.nodes[m]) {
				m = k
			}
		}
		if !nodeLess(e.nodes[m], n) {
			break
		}
		e.nodes[i] = e.nodes[m]
		e.arena[e.nodes[i].idx].pos = int32(i)
		i = m
	}
	e.nodes[i] = n
	e.arena[n.idx].pos = int32(i)
}

// popMin removes and returns the root node.
func (e *Engine) popMin() node {
	root := e.nodes[0]
	last := len(e.nodes) - 1
	e.nodes[0] = e.nodes[last]
	e.nodes = e.nodes[:last]
	if last > 0 {
		e.siftDown(0)
	}
	return root
}

// remove deletes the node at heap position i (for Cancel).
func (e *Engine) remove(i int) {
	last := len(e.nodes) - 1
	if i == last {
		e.nodes = e.nodes[:last]
		return
	}
	moved := e.nodes[last]
	e.nodes[i] = moved
	e.nodes = e.nodes[:last]
	if i > 0 && nodeLess(moved, e.nodes[(i-1)/4]) {
		e.siftUp(i)
	} else {
		e.siftDown(i)
	}
}
