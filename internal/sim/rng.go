package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
)

// RNG is a seedable random source with the distribution samplers the
// simulator needs. Independent named substreams can be derived with Stream,
// so that, e.g., arrival randomness and service-time randomness do not
// perturb each other when one component changes how many draws it makes.
//
// An RNG's full state is (Seed, DrawCount): every sampler ultimately steps
// the underlying source exactly once per raw draw, and the source is counted,
// so NewRNGAt(seed, draws) rebuilds a generator that continues the stream
// bit-for-bit. This is what makes checkpointed trainers resumable.
type RNG struct {
	*rand.Rand
	seed int64
	src  *countedSource
}

// countedSource wraps the standard source and counts state advances. Both
// Int63 and Uint64 advance math/rand's generator by exactly one step, so a
// single counter captures the position in the stream regardless of which
// sampler consumed the draw.
type countedSource struct {
	src rand.Source64
	n   uint64
}

func (c *countedSource) Int63() int64 {
	c.n++
	return c.src.Int63()
}

func (c *countedSource) Uint64() uint64 {
	c.n++
	return c.src.Uint64()
}

func (c *countedSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.n = 0
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	src := &countedSource{src: rand.NewSource(seed).(rand.Source64)}
	return &RNG{Rand: rand.New(src), seed: seed, src: src}
}

// NewRNGAt rebuilds a generator mid-stream: it reseeds with seed and then
// advances the source draws times, so the result emits exactly the values a
// NewRNG(seed) generator would after its first draws samples. Restoring is
// O(draws) — replaying tens of millions of draws costs well under a second,
// which is cheap next to the training run that produced them.
func NewRNGAt(seed int64, draws uint64) *RNG {
	r := NewRNG(seed)
	for i := uint64(0); i < draws; i++ {
		r.src.src.Uint64()
	}
	r.src.n = draws
	return r
}

// Seed returns the seed this generator was created with.
func (r *RNG) Seed() int64 { return r.seed }

// DrawCount reports how many raw source draws the generator has made since
// seeding. (Seed(), DrawCount()) is the generator's complete serializable
// state; see NewRNGAt.
func (r *RNG) DrawCount() uint64 { return r.src.n }

// Stream derives an independent generator keyed by name. Streams derived
// from the same (seed, name) pair are identical across runs.
func (r *RNG) Stream(name string) *RNG {
	return NewRNG(SubSeed(r.seed, name))
}

// SubSeed derives a deterministic child seed from (seed, name). It is the
// seed arithmetic behind Stream, exposed so that parallel experiment work
// units can each construct their own private RNG from a named substream of
// the experiment seed without sharing any generator state:
//
//	rng := sim.NewRNG(sim.SubSeed(scale.Seed, "fig7/xapian/retail"))
//
// Identical (seed, name) pairs yield identical substreams on every run and
// platform, which is what makes a parallel grid byte-identical to a serial
// one.
func SubSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(name))
	return int64(h.Sum64() ^ (uint64(seed) * 0x9E3779B97F4A7C15))
}

// Exp samples an exponential with the given rate (events per unit).
// The mean of the distribution is 1/rate.
func (r *RNG) Exp(rate float64) float64 {
	if rate <= 0 {
		panic("sim: Exp with non-positive rate")
	}
	return r.ExpFloat64() / rate
}

// LogNormal samples exp(N(mu, sigma^2)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Pareto samples a Pareto distribution with scale xm > 0 and shape alpha > 0.
// P(X > x) = (xm/x)^alpha for x >= xm.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("sim: Pareto with non-positive parameter")
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// Normal samples N(mu, sigma^2).
func (r *RNG) Normal(mu, sigma float64) float64 {
	return mu + sigma*r.NormFloat64()
}

// Uniform samples uniformly from [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli reports true with probability p.
func (r *RNG) Bernoulli(p float64) bool {
	return r.Float64() < p
}
