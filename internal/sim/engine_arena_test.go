package sim

import (
	"math/rand"
	"testing"
)

// TestEngineOrderMatchesReference cross-checks the 4-ary heap's pop order
// against a reference model: events must fire in strict (at, seq) order
// regardless of insertion pattern and interleaved cancellations.
func TestEngineOrderMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		e := NewEngine()
		type ref struct {
			at  Time
			seq int
		}
		var want []ref
		var got []ref
		var handles []Event
		n := 50 + rng.Intn(200)
		for i := 0; i < n; i++ {
			at := Time(rng.Intn(40)) // dense: many same-instant ties
			i := i
			handles = append(handles, e.At(at, func() {
				got = append(got, ref{e.Now(), i})
			}))
			want = append(want, ref{at, i})
		}
		// Cancel a random subset before running.
		cancelled := map[int]bool{}
		for i := 0; i < n/4; i++ {
			k := rng.Intn(n)
			cancelled[k] = true
			e.Cancel(handles[k])
		}
		e.Run()
		// Reference: stable sort by at (seq order preserved among ties),
		// minus the cancelled events.
		var exp []ref
		for at := Time(0); at < 40; at++ {
			for i := 0; i < n; i++ {
				if want[i].at == at && !cancelled[i] {
					exp = append(exp, ref{at, i})
				}
			}
		}
		if len(got) != len(exp) {
			t.Fatalf("trial %d: fired %d events, want %d", trial, len(got), len(exp))
		}
		for i := range exp {
			if got[i] != exp[i] {
				t.Fatalf("trial %d: event %d fired as %+v, want %+v", trial, i, got[i], exp[i])
			}
		}
	}
}

// TestEngineResetEquivalence: a Reset engine must behave identically to a
// fresh one — same fire order, clock, and counters — even after arbitrary
// prior use grew its arena and heap.
func TestEngineResetEquivalence(t *testing.T) {
	run := func(e *Engine) (order []Time, fired uint64, now Time) {
		var cancelMe Event
		e.At(5, func() {
			order = append(order, e.Now())
			e.Cancel(cancelMe)
			e.After(7, func() { order = append(order, e.Now()) })
		})
		cancelMe = e.At(6, func() { order = append(order, -1) })
		e.At(6, func() { order = append(order, e.Now()) })
		e.Run()
		return order, e.Fired(), e.Now()
	}

	fresh := NewEngine()
	wantOrder, wantFired, wantNow := run(fresh)

	reused := NewEngine()
	// Arbitrary prior traffic: grow arena and heap, leave pending events.
	for i := 0; i < 300; i++ {
		reused.After(Time(i%17+1), func() {})
		if i%3 == 0 {
			reused.Step()
		}
	}
	stale := reused.After(1000, func() {})
	reused.Reset()

	if reused.Now() != 0 || reused.Fired() != 0 || reused.Pending() != 0 {
		t.Fatalf("Reset left state: now=%v fired=%d pending=%d",
			reused.Now(), reused.Fired(), reused.Pending())
	}
	gotOrder, gotFired, gotNow := run(reused)
	if gotFired != wantFired || gotNow != wantNow {
		t.Errorf("reset engine: fired=%d now=%v, fresh: fired=%d now=%v",
			gotFired, gotNow, wantFired, wantNow)
	}
	if len(gotOrder) != len(wantOrder) {
		t.Fatalf("order %v, want %v", gotOrder, wantOrder)
	}
	for i := range wantOrder {
		if gotOrder[i] != wantOrder[i] {
			t.Fatalf("order %v, want %v", gotOrder, wantOrder)
		}
	}
	// A pre-Reset handle is stale: cancelling it must not disturb anything.
	if !stale.Cancelled() {
		t.Error("pre-Reset handle still reports live")
	}
	reused.Cancel(stale)
}

// TestEngineStaleHandleAfterReuse: once an event fires, its arena slot may
// be recycled by a new event. Cancelling the old handle must not cancel the
// slot's new occupant (the ABA hazard generation counters exist for).
func TestEngineStaleHandleAfterReuse(t *testing.T) {
	e := NewEngine()
	first := e.At(1, func() {})
	if !e.Step() {
		t.Fatal("first event did not fire")
	}
	fired := false
	second := e.At(2, func() { fired = true })
	e.Cancel(first) // stale: must not touch the recycled slot
	e.Run()
	if !fired {
		t.Fatal("stale cancel killed the slot's new occupant")
	}
	if second.Cancelled() != true {
		t.Error("fired event should report Cancelled (not pending)")
	}
}

// TestEngineScheduleZeroAllocs: steady-state scheduling — At/After, Step,
// Cancel against a warmed arena — must not allocate.
func TestEngineScheduleZeroAllocs(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	for i := 0; i < 256; i++ {
		e.After(Time(i+1), fn)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ev := e.After(100, fn)
		e.Cancel(ev)
		e.After(300, fn)
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state schedule/cancel/fire allocates %v allocs/op, want 0", allocs)
	}
}

// TestEngineArenaRecycling: the arena must not grow beyond the maximum
// number of simultaneously pending events, no matter how many events flow
// through in total.
func TestEngineArenaRecycling(t *testing.T) {
	e := NewEngine()
	fn := func() {}
	const standing = 64
	for i := 0; i < standing; i++ {
		e.After(Time(i+1), fn)
	}
	for i := 0; i < 10000; i++ {
		e.After(standing+1, fn)
		e.Step()
	}
	if got := len(e.arena); got > standing+1 {
		t.Errorf("arena grew to %d slots for %d standing events", got, standing+1)
	}
}
