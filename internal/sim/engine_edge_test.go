package sim

import "testing"

// TestEngineCancelAfterFire: cancelling an event that has already fired
// must be a harmless no-op and must not disturb later events.
func TestEngineCancelAfterFire(t *testing.T) {
	e := NewEngine()
	fired := 0
	ev := e.At(10, func() { fired++ })
	later := e.At(20, func() { fired++ })
	if !e.Step() {
		t.Fatal("no event to fire")
	}
	if fired != 1 || !ev.Cancelled() {
		t.Fatalf("fired=%d cancelled=%v after Step", fired, ev.Cancelled())
	}
	e.Cancel(ev) // already fired: no-op
	e.Cancel(ev) // and again
	e.RunUntil(30)
	if fired != 2 {
		t.Errorf("later event disturbed by post-fire cancel: fired=%d", fired)
	}
	_ = later
}

// TestEngineCancelTwice: double-cancel must remove the event exactly once
// and leave the heap consistent.
func TestEngineCancelTwice(t *testing.T) {
	e := NewEngine()
	fired := 0
	ev := e.At(10, func() { fired++ })
	e.At(15, func() { fired += 10 })
	e.Cancel(ev)
	if e.Pending() != 1 {
		t.Fatalf("Pending()=%d after first cancel, want 1", e.Pending())
	}
	e.Cancel(ev)
	if e.Pending() != 1 {
		t.Fatalf("Pending()=%d after second cancel, want 1", e.Pending())
	}
	e.RunUntil(20)
	if fired != 10 {
		t.Errorf("fired=%d, want only the surviving event (10)", fired)
	}
	e.Cancel(Event{}) // the zero Event is also a no-op
}

// TestEngineEventAtNow: scheduling at exactly the current instant is legal
// and the event fires, both via Step and via RunUntil(now).
func TestEngineEventAtNow(t *testing.T) {
	e := NewEngine()
	e.RunUntil(50)
	fired := 0
	e.At(e.Now(), func() { fired++ })
	if !e.Step() {
		t.Fatal("event at now did not fire via Step")
	}
	if fired != 1 || e.Now() != 50 {
		t.Fatalf("fired=%d now=%v after at-now event", fired, e.Now())
	}
	e.At(e.Now(), func() { fired++ })
	e.RunUntil(e.Now()) // RunUntil(t) fires events at t itself
	if fired != 2 {
		t.Errorf("event at now did not fire via RunUntil: fired=%d", fired)
	}
	// After(0) is the same boundary through the other constructor.
	e.After(0, func() { fired++ })
	e.RunUntil(e.Now())
	if fired != 3 {
		t.Errorf("After(0) event did not fire: fired=%d", fired)
	}
}

// TestEngineCancelFromSameInstant: an event firing at time t can cancel a
// sibling also scheduled at t that has not fired yet.
func TestEngineCancelFromSameInstant(t *testing.T) {
	e := NewEngine()
	fired := 0
	var victim Event
	e.At(10, func() {
		fired++
		e.Cancel(victim)
	})
	victim = e.At(10, func() { fired += 100 })
	e.RunUntil(20)
	if fired != 1 {
		t.Errorf("fired=%d: same-instant sibling was not cancelled", fired)
	}
}

// TestEngineSelfCancelInCallback: an event cancelling itself from inside
// its own callback must not corrupt the heap.
func TestEngineSelfCancelInCallback(t *testing.T) {
	e := NewEngine()
	fired := 0
	var self Event
	self = e.At(5, func() {
		fired++
		e.Cancel(self) // already firing: no-op
	})
	e.At(6, func() { fired++ })
	e.RunUntil(10)
	if fired != 2 {
		t.Errorf("fired=%d, want 2", fired)
	}
}
