package sim

import (
	"math/rand"
	"testing"
)

// TestRNGMatchesStdlib pins the counted-source wrapper to the raw stdlib
// stream: wrapping must not change a single emitted value, or every golden
// artifact in the repo would shift.
func TestRNGMatchesStdlib(t *testing.T) {
	r := NewRNG(42)
	ref := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		switch i % 5 {
		case 0:
			if got, want := r.Float64(), ref.Float64(); got != want {
				t.Fatalf("draw %d: Float64 %v != %v", i, got, want)
			}
		case 1:
			if got, want := r.Int63(), ref.Int63(); got != want {
				t.Fatalf("draw %d: Int63 %v != %v", i, got, want)
			}
		case 2:
			if got, want := r.NormFloat64(), ref.NormFloat64(); got != want {
				t.Fatalf("draw %d: NormFloat64 %v != %v", i, got, want)
			}
		case 3:
			if got, want := r.Uint64(), ref.Uint64(); got != want {
				t.Fatalf("draw %d: Uint64 %v != %v", i, got, want)
			}
		case 4:
			if got, want := r.ExpFloat64(), ref.ExpFloat64(); got != want {
				t.Fatalf("draw %d: ExpFloat64 %v != %v", i, got, want)
			}
		}
	}
}

// TestNewRNGAtResumesStream is the RNG restore contract: a generator rebuilt
// at (seed, DrawCount) continues the original stream bit-for-bit across all
// sampler kinds, including the variable-draw ziggurat samplers.
func TestNewRNGAtResumesStream(t *testing.T) {
	for _, seed := range []int64{0, 1, -7, 123456789} {
		orig := NewRNG(seed)
		// Mixed draws so the count covers variable-consumption samplers.
		for i := 0; i < 777; i++ {
			switch i % 4 {
			case 0:
				orig.Float64()
			case 1:
				orig.NormFloat64()
			case 2:
				orig.ExpFloat64()
			case 3:
				orig.Intn(100)
			}
		}
		resumed := NewRNGAt(seed, orig.DrawCount())
		if resumed.DrawCount() != orig.DrawCount() {
			t.Fatalf("seed %d: resumed count %d != %d", seed, resumed.DrawCount(), orig.DrawCount())
		}
		for i := 0; i < 500; i++ {
			var got, want float64
			switch i % 3 {
			case 0:
				got, want = resumed.Float64(), orig.Float64()
			case 1:
				got, want = resumed.NormFloat64(), orig.NormFloat64()
			case 2:
				got, want = resumed.ExpFloat64(), orig.ExpFloat64()
			}
			if got != want {
				t.Fatalf("seed %d post-resume draw %d: %v != %v", seed, i, got, want)
			}
		}
		if resumed.DrawCount() != orig.DrawCount() {
			t.Fatalf("seed %d: counts diverged after identical draws", seed)
		}
	}
}

// TestDrawCountAdvances sanity-checks that every sampler is counted.
func TestDrawCountAdvances(t *testing.T) {
	r := NewRNG(9)
	before := r.DrawCount()
	r.Float64()
	if r.DrawCount() == before {
		t.Fatal("Float64 did not advance the draw count")
	}
	before = r.DrawCount()
	r.Normal(0, 1)
	if r.DrawCount() == before {
		t.Fatal("Normal did not advance the draw count")
	}
	before = r.DrawCount()
	r.Uint64()
	if r.DrawCount() != before+1 {
		t.Fatalf("Uint64 advanced by %d, want 1", r.DrawCount()-before)
	}
}
