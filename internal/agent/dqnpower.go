package agent

import (
	"fmt"
	"io"

	"github.com/deeppower/deeppower/internal/control"
	"github.com/deeppower/deeppower/internal/rl"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// DQNPowerConfig parameterizes the value-based DeepPower variant: a DQN (or
// DDQN) agent choosing thread-controller parameters from a discrete
// GridSize×GridSize lattice over [0,1]². The paper formulates the problem
// with continuous actions and DDPG (§4.3); this variant is the natural
// ablation quantifying what discretization costs.
type DQNPowerConfig struct {
	// LongTime is the agent step interval (default 1 s).
	LongTime sim.Time
	// GridSize discretizes each parameter into GridSize levels (default 5
	// → 25 actions).
	GridSize int
	// Reward weights (defaults as in RewardConfig).
	Reward RewardConfig
	// Double selects DDQN updates.
	Double bool
	// EpsStart, EpsEnd, EpsDecay control ε-greedy exploration
	// (defaults 1.0 → 0.05, decay 0.99 per step).
	EpsStart, EpsEnd, EpsDecay float64
	// WarmupSteps of pure random actions (default 20).
	WarmupSteps int
	// BatchSize (default 64), UpdatesPerStep (default 1),
	// ReplayCap (default 100000).
	BatchSize, UpdatesPerStep, ReplayCap int
	// Train enables exploration and learning.
	Train bool
	// InitialParams seeds the controller.
	InitialParams control.Params
	Seed          int64
}

func (c DQNPowerConfig) withDefaults() DQNPowerConfig {
	if c.LongTime == 0 {
		c.LongTime = sim.Second
	}
	if c.GridSize == 0 {
		c.GridSize = 5
	}
	if c.EpsStart == 0 {
		c.EpsStart = 1.0
	}
	if c.EpsEnd == 0 {
		c.EpsEnd = 0.05
	}
	if c.EpsDecay == 0 {
		c.EpsDecay = 0.99
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = 20
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.UpdatesPerStep == 0 {
		c.UpdatesPerStep = 1
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = 100000
	}
	if c.InitialParams == (control.Params{}) {
		c.InitialParams = control.Params{BaseFreq: 0.6, ScalingCoef: 0.6}
	}
	return c
}

// DQNPower is the discrete-action DeepPower variant.
type DQNPower struct {
	server.BasePolicy
	cfg DQNPowerConfig

	tc       *control.ThreadController
	agent    *rl.DQN
	replay   *rl.Replay
	observer *Observer
	reward   *Reward
	rng      *sim.RNG

	eps        float64
	step       int
	nextAct    sim.Time
	lastState  []float64
	lastAction int

	// batchBuf is the reused minibatch buffer for replay sampling.
	batchBuf []rl.Transition

	// EpisodeReturn accumulates reward over the current episode.
	EpisodeReturn float64
}

// NewDQNPower builds the policy.
func NewDQNPower(cfg DQNPowerConfig) (*DQNPower, error) {
	full := cfg.withDefaults()
	if full.GridSize < 2 {
		return nil, fmt.Errorf("agent: grid size %d too small", full.GridSize)
	}
	dqn, err := rl.NewDQN(rl.DQNConfig{
		StateDim:   StateDim,
		NumActions: full.GridSize * full.GridSize,
		Double:     full.Double,
		Seed:       full.Seed,
	})
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(full.Seed).Stream("dqnpower")
	return &DQNPower{
		cfg:    full,
		tc:     control.NewThreadController(full.InitialParams),
		agent:  dqn,
		replay: rl.NewReplay(full.ReplayCap, rng.Stream("replay")),
		reward: NewReward(full.Reward),
		rng:    rng.Stream("explore"),
		eps:    full.EpsStart,
	}, nil
}

// SavePolicy writes the trained Q-network — the same policy-export entry
// point the DDPG-backed DeepPower provides, so the checkpoint registry and
// rollback hook work with either variant.
func (dq *DQNPower) SavePolicy(w io.Writer) error { return dq.agent.SavePolicy(w) }

// LoadPolicy installs a trained Q-network and switches to inference.
func (dq *DQNPower) LoadPolicy(r io.Reader) error {
	if err := dq.agent.LoadPolicy(r); err != nil {
		return fmt.Errorf("agent: %w", err)
	}
	dq.cfg.Train = false
	return nil
}

// Agent exposes the underlying DQN learner.
func (dq *DQNPower) Agent() *rl.DQN { return dq.agent }

// Name implements server.Policy.
func (dq *DQNPower) Name() string {
	if dq.cfg.Double {
		return "ddqn-power"
	}
	return "dqn-power"
}

// Params returns the controller's current parameters.
func (dq *DQNPower) Params() control.Params { return dq.tc.Params() }

// paramsOf maps an action index onto the parameter lattice.
func (dq *DQNPower) paramsOf(action int) control.Params {
	g := dq.cfg.GridSize
	row, col := action/g, action%g
	den := float64(g - 1)
	return control.Params{
		BaseFreq:    float64(row) / den,
		ScalingCoef: float64(col) / den,
	}
}

// Init implements server.Policy.
func (dq *DQNPower) Init(c server.Control) {
	dq.BasePolicy.Init(c)
	dq.tc.Init(c)
	if dq.observer == nil {
		dq.observer = NewObserver(c.SLA())
	} else {
		dq.observer.Reset()
	}
	dq.reward.Reset()
	dq.lastState = nil
	dq.EpisodeReturn = 0
	dq.nextAct = c.Now()
	dq.tc.SetParams(dq.cfg.InitialParams)
}

// OnTick implements server.Policy.
func (dq *DQNPower) OnTick(now sim.Time) {
	if now >= dq.nextAct {
		dq.agentStep(now)
		dq.nextAct = now + dq.cfg.LongTime
	}
	dq.tc.Apply(now, dq.Ctl)
}

// OnDispatch implements server.Policy.
func (dq *DQNPower) OnDispatch(r *server.Request, core int) {
	dq.tc.OnDispatch(r, core)
}

func (dq *DQNPower) agentStep(now sim.Time) {
	snap := dq.Ctl.Snapshot()
	state := dq.observer.Observe(snap)
	rew := dq.reward.Step(snap.Energy, snap.Counters.Timeouts, snap.QueueLen, dq.cfg.LongTime)

	if dq.cfg.Train && dq.lastState != nil {
		dq.replay.Push(rl.Transition{
			State:     dq.lastState,
			Action:    []float64{float64(dq.lastAction)},
			Reward:    rew.Total,
			NextState: state,
		})
		if dq.step >= dq.cfg.WarmupSteps && dq.replay.Len() >= dq.cfg.BatchSize {
			if dq.batchBuf == nil {
				dq.batchBuf = make([]rl.Transition, dq.cfg.BatchSize)
			}
			for u := 0; u < dq.cfg.UpdatesPerStep; u++ {
				dq.replay.SampleInto(dq.batchBuf)
				dq.agent.Update(dq.batchBuf)
			}
		}
	}
	dq.EpisodeReturn += rew.Total

	var action int
	switch {
	case dq.cfg.Train && dq.step < dq.cfg.WarmupSteps:
		action = dq.rng.Intn(dq.cfg.GridSize * dq.cfg.GridSize)
	case dq.cfg.Train:
		action = dq.agent.ActEpsilonGreedy(state, dq.eps)
		dq.eps *= dq.cfg.EpsDecay
		if dq.eps < dq.cfg.EpsEnd {
			dq.eps = dq.cfg.EpsEnd
		}
	default:
		action = dq.agent.Act(state)
	}
	dq.tc.SetParams(dq.paramsOf(action))
	dq.lastState = state
	dq.lastAction = action
	dq.step++
}

// SetTrain toggles training mode.
func (dq *DQNPower) SetTrain(train bool) { dq.cfg.Train = train }

// Return implements Trainable.
func (dq *DQNPower) Return() float64 { return dq.EpisodeReturn }
