package agent

import (
	"fmt"
	"io"

	"github.com/deeppower/deeppower/internal/control"
	"github.com/deeppower/deeppower/internal/rl"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// DQNPowerConfig parameterizes the value-based DeepPower variant: a DQN (or
// DDQN) agent choosing thread-controller parameters from a discrete
// GridSize×GridSize lattice over [0,1]². The paper formulates the problem
// with continuous actions and DDPG (§4.3); this variant is the natural
// ablation quantifying what discretization costs.
type DQNPowerConfig struct {
	// LongTime is the agent step interval (default 1 s).
	LongTime sim.Time
	// GridSize discretizes each parameter into GridSize levels (default 5
	// → 25 actions).
	GridSize int
	// Reward weights (defaults as in RewardConfig).
	Reward RewardConfig
	// Double selects DDQN updates.
	Double bool
	// EpsStart, EpsEnd, EpsDecay control ε-greedy exploration
	// (defaults 1.0 → 0.05, decay 0.99 per step).
	EpsStart, EpsEnd, EpsDecay float64
	// WarmupSteps of pure random actions (default 20).
	WarmupSteps int
	// BatchSize (default 64), UpdatesPerStep (default 1),
	// ReplayCap (default 100000).
	BatchSize, UpdatesPerStep, ReplayCap int
	// Train enables exploration and learning.
	Train bool
	// InitialParams seeds the controller.
	InitialParams control.Params
	Seed          int64
}

func (c DQNPowerConfig) withDefaults() DQNPowerConfig {
	if c.LongTime == 0 {
		c.LongTime = sim.Second
	}
	if c.GridSize == 0 {
		c.GridSize = 5
	}
	if c.EpsStart == 0 {
		c.EpsStart = 1.0
	}
	if c.EpsEnd == 0 {
		c.EpsEnd = 0.05
	}
	if c.EpsDecay == 0 {
		c.EpsDecay = 0.99
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = 20
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.UpdatesPerStep == 0 {
		c.UpdatesPerStep = 1
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = 100000
	}
	if c.InitialParams == (control.Params{}) {
		c.InitialParams = control.Params{BaseFreq: 0.6, ScalingCoef: 0.6}
	}
	return c
}

// DQNPower is the discrete-action DeepPower variant.
type DQNPower struct {
	server.BasePolicy
	cfg DQNPowerConfig

	tc       *control.ThreadController
	agent    *rl.DQN
	replay   *rl.Replay
	observer *Observer
	reward   *Reward
	rng      *sim.RNG

	eps        float64
	step       int
	nextAct    sim.Time
	lastState  []float64
	lastAction int

	// external marks this instance as externally driven: OnTick keeps the
	// thread controller running but never acts inline — the vector trainer
	// acts at lockstep boundaries instead (see vector.go).
	external bool
	// vecSteps counts lockstep boundaries for the vectorized learn gating.
	vecSteps int
	// pendingState/pendingRew carry the boundary observation between the
	// observe and act halves of a vector step.
	pendingState []float64
	pendingRew   Breakdown

	// batchBuf is the reused minibatch buffer for replay sampling.
	batchBuf []rl.Transition

	// EpisodeReturn accumulates reward over the current episode.
	EpisodeReturn float64
	// CriticLoss tracks the most recent update's TD loss.
	CriticLoss float64
}

// NewDQNPower builds the policy.
func NewDQNPower(cfg DQNPowerConfig) (*DQNPower, error) {
	full := cfg.withDefaults()
	if full.GridSize < 2 {
		return nil, fmt.Errorf("agent: grid size %d too small", full.GridSize)
	}
	dqn, err := rl.NewDQN(rl.DQNConfig{
		StateDim:   StateDim,
		NumActions: full.GridSize * full.GridSize,
		Double:     full.Double,
		Seed:       full.Seed,
	})
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(full.Seed).Stream("dqnpower")
	return &DQNPower{
		cfg:    full,
		tc:     control.NewThreadController(full.InitialParams),
		agent:  dqn,
		replay: rl.NewReplay(full.ReplayCap, rng.Stream("replay")),
		reward: NewReward(full.Reward),
		rng:    rng.Stream("explore"),
		eps:    full.EpsStart,
	}, nil
}

// SavePolicy writes the trained Q-network — the same policy-export entry
// point the DDPG-backed DeepPower provides, so the checkpoint registry and
// rollback hook work with either variant.
func (dq *DQNPower) SavePolicy(w io.Writer) error { return dq.agent.SavePolicy(w) }

// LoadPolicy installs a trained Q-network and switches to inference.
func (dq *DQNPower) LoadPolicy(r io.Reader) error {
	if err := dq.agent.LoadPolicy(r); err != nil {
		return fmt.Errorf("agent: %w", err)
	}
	dq.cfg.Train = false
	return nil
}

// Agent exposes the underlying DQN learner.
func (dq *DQNPower) Agent() *rl.DQN { return dq.agent }

// Name implements server.Policy.
func (dq *DQNPower) Name() string {
	if dq.cfg.Double {
		return "ddqn-power"
	}
	return "dqn-power"
}

// Params returns the controller's current parameters.
func (dq *DQNPower) Params() control.Params { return dq.tc.Params() }

// paramsOf maps an action index onto the parameter lattice.
func (dq *DQNPower) paramsOf(action int) control.Params {
	g := dq.cfg.GridSize
	row, col := action/g, action%g
	den := float64(g - 1)
	return control.Params{
		BaseFreq:    float64(row) / den,
		ScalingCoef: float64(col) / den,
	}
}

// Init implements server.Policy.
func (dq *DQNPower) Init(c server.Control) {
	dq.BasePolicy.Init(c)
	dq.tc.Init(c)
	if dq.observer == nil {
		dq.observer = NewObserver(c.SLA())
	} else {
		dq.observer.Reset()
	}
	dq.reward.Reset()
	dq.lastState = nil
	dq.EpisodeReturn = 0
	dq.nextAct = c.Now()
	dq.tc.SetParams(dq.cfg.InitialParams)
}

// OnTick implements server.Policy.
func (dq *DQNPower) OnTick(now sim.Time) {
	if !dq.external && now >= dq.nextAct {
		dq.agentStep()
		dq.nextAct = now + dq.cfg.LongTime
	}
	dq.tc.Apply(now, dq.Ctl)
}

// OnDispatch implements server.Policy.
func (dq *DQNPower) OnDispatch(r *server.Request, core int) {
	dq.tc.OnDispatch(r, core)
}

// agentStep is the value-based analog of DeepPower.agentStep; the same
// halves run split across a lockstep boundary in vectorized training.
func (dq *DQNPower) agentStep() {
	state, rew := dq.observeStep()
	if dq.pushTransition(state, rew) &&
		dq.step >= dq.cfg.WarmupSteps && dq.replay.Len() >= dq.cfg.BatchSize {
		dq.learnStep()
	}
	dq.EpisodeReturn += rew.Total
	dq.commitAction(state, dq.selectAction(state))
}

// observeStep computes the boundary state and reward.
func (dq *DQNPower) observeStep() ([]float64, Breakdown) {
	snap := dq.Ctl.Snapshot()
	state := dq.observer.Observe(snap)
	rew := dq.reward.Step(snap.Energy, snap.Counters.Timeouts, snap.QueueLen, dq.cfg.LongTime)
	return state, rew
}

// pushTransition stores the completed transition and reports whether it was
// stored.
func (dq *DQNPower) pushTransition(state []float64, rew Breakdown) bool {
	if !dq.cfg.Train || dq.lastState == nil {
		return false
	}
	dq.replay.Push(rl.Transition{
		State:     dq.lastState,
		Action:    []float64{float64(dq.lastAction)},
		Reward:    rew.Total,
		NextState: state,
	})
	return true
}

// learnStep runs the configured gradient updates from the replay pool.
func (dq *DQNPower) learnStep() {
	if dq.batchBuf == nil {
		dq.batchBuf = make([]rl.Transition, dq.cfg.BatchSize)
	}
	for u := 0; u < dq.cfg.UpdatesPerStep; u++ {
		dq.replay.SampleInto(dq.batchBuf)
		dq.CriticLoss = dq.agent.Update(dq.batchBuf)
	}
}

// selectAction picks the next discrete action inline.
func (dq *DQNPower) selectAction(state []float64) int {
	switch {
	case dq.cfg.Train && dq.step < dq.cfg.WarmupSteps:
		return dq.rng.Intn(dq.cfg.GridSize * dq.cfg.GridSize)
	case dq.cfg.Train:
		action := dq.agent.ActEpsilonGreedy(state, dq.eps)
		dq.decayEps()
		return action
	default:
		return dq.agent.Act(state)
	}
}

func (dq *DQNPower) decayEps() {
	dq.eps *= dq.cfg.EpsDecay
	if dq.eps < dq.cfg.EpsEnd {
		dq.eps = dq.cfg.EpsEnd
	}
}

// commitAction actuates a selected action and advances step bookkeeping.
func (dq *DQNPower) commitAction(state []float64, action int) {
	dq.tc.SetParams(dq.paramsOf(action))
	dq.lastState = state
	dq.lastAction = action
	dq.step++
}

// --- vectorized acting (VectorPolicy; driven by VectorTrainer) -------------

// vecPeriod implements VectorPolicy.
func (dq *DQNPower) vecPeriod() sim.Time { return dq.cfg.LongTime }

// vecRowWidth implements VectorPolicy: one Q-value row per env.
func (dq *DQNPower) vecRowWidth() int { return dq.cfg.GridSize * dq.cfg.GridSize }

// vecForward implements VectorPolicy: one batched Q evaluation for all envs.
func (dq *DQNPower) vecForward(states []float64, n int) []float64 {
	return dq.agent.ActBatch(states, n)
}

// vecNewShell implements VectorPolicy: a per-env acting shell with its own
// controller, observer, reward, ε schedule, and RNG substream, sharing the
// owner's Q-network and replay pool.
func (dq *DQNPower) vecNewShell(envIdx int) (vecShell, error) {
	cfg := dq.cfg
	cfg.Seed = sim.SubSeed(dq.cfg.Seed, fmt.Sprintf("vec-env/%d", envIdx))
	shell, err := NewDQNPower(cfg)
	if err != nil {
		return nil, err
	}
	shell.agent = dq.agent
	shell.replay = dq.replay
	shell.external = true
	return shell, nil
}

// vecObserve runs the observation half of a lockstep step (serial, env
// ascending — see DeepPower.vecObserve).
func (dq *DQNPower) vecObserve(sim.Time) {
	state, rew := dq.observeStep()
	dq.pushTransition(state, rew)
	dq.EpisodeReturn += rew.Total
	dq.pendingState = state
	dq.pendingRew = rew
}

// vecStateInto copies the pending boundary observation into one gather row.
func (dq *DQNPower) vecStateInto(dst []float64) { copy(dst, dq.pendingState) }

// vecActRow consumes this env's batched Q-value row. Unlike the inline
// path, whose ε draws come from the learner's own RNG, vectorized ε-greedy
// draws from the shell's substream so environments stay draw-order
// decoupled whatever the worker count.
func (dq *DQNPower) vecActRow(now sim.Time, row []float64) {
	state := dq.pendingState
	var action int
	switch {
	case dq.cfg.Train && dq.step < dq.cfg.WarmupSteps:
		action = dq.rng.Intn(dq.cfg.GridSize * dq.cfg.GridSize)
	case dq.cfg.Train:
		if dq.rng.Float64() < dq.eps {
			action = dq.rng.Intn(dq.cfg.GridSize * dq.cfg.GridSize)
		} else {
			action = rl.Argmax(row)
		}
		dq.decayEps()
	default:
		action = rl.Argmax(row)
	}
	dq.commitAction(state, action)
	dq.tc.Apply(now, dq.Ctl)
}

// vecLearn implements VectorPolicy (see DeepPower.vecLearn).
func (dq *DQNPower) vecLearn() {
	dq.vecSteps++
	if !dq.cfg.Train || dq.vecSteps <= dq.cfg.WarmupSteps || dq.replay.Len() < dq.cfg.BatchSize {
		return
	}
	dq.learnStep()
}

// Experience reports how many transitions have entered the replay pool.
func (dq *DQNPower) Experience() uint64 { return dq.replay.Pushed() }

// LastCriticLoss implements LossReporter.
func (dq *DQNPower) LastCriticLoss() float64 { return dq.CriticLoss }

// DivergenceCount implements DivergenceReporter: the DQN learner has no
// divergence-rollback guard, so the count is always zero.
func (dq *DQNPower) DivergenceCount() uint64 { return 0 }

// SetTrain toggles training mode.
func (dq *DQNPower) SetTrain(train bool) { dq.cfg.Train = train }

// Return implements Trainable.
func (dq *DQNPower) Return() float64 { return dq.EpisodeReturn }
