package agent

import (
	"io"

	"github.com/deeppower/deeppower/internal/rl"
)

// Backend abstracts the continuous-action learner driving DeepPower: the
// paper's DDPG (default) or the TD3 ablation.
type Backend interface {
	// Act returns the deterministic action for a state.
	Act(state []float64) []float64
	// ActNoisy adds exploration noise (Algorithm 2 line 5).
	ActNoisy(state []float64, noise rl.Noise) []float64
	// ActBatch evaluates the deterministic policy for n row-major states
	// packed in states ([n×StateDim]), returning [n×ActionDim] action rows
	// that alias the actor's internal buffers — consume them before the
	// next forward or update call. Row i is bit-identical to Act(state i);
	// the vectorized trainer batches all environments through one call.
	ActBatch(states []float64, n int) []float64
	// Update runs one gradient step and returns (critic, actor) losses.
	Update(batch []rl.Transition) (criticLoss, actorLoss float64)
	// SavePolicy and LoadPolicy persist the actor.
	SavePolicy(w io.Writer) error
	LoadPolicy(r io.Reader) error
	// NumParams reports the actor's parameter count.
	NumParams() int
}

// ddpgBackend is *rl.DDPG verbatim — its method set already matches.
var _ Backend = (*rl.DDPG)(nil)

// td3Backend adapts TD3's twin-critic losses onto the Backend surface.
type td3Backend struct {
	*rl.TD3
}

// Update implements Backend: the reported critic loss is the twin mean.
func (b td3Backend) Update(batch []rl.Transition) (float64, float64) {
	c1, c2, a := b.TD3.Update(batch)
	return (c1 + c2) / 2, a
}

var _ Backend = td3Backend{}

// BackendName selects the learner in Config.
type BackendName string

// Supported backends.
const (
	BackendDDPG BackendName = "ddpg" // the paper's algorithm (default)
	BackendTD3  BackendName = "td3"  // twin-delayed DDPG ablation
)
