// Package agent implements the DeepPower framework of the paper's §4: the
// state observer, the reward calculator, the DRL agent (DDPG) driving the
// thread controller's parameters, and the training loop of Algorithm 2.
package agent

import (
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// StateDim is the dimension of the observation vector (§4.4.1).
const StateDim = 8

// State vector component indices.
const (
	StateNumReq = iota // requests received in the last period
	StateQueueLen
	StateQueue25 // queued requests with < 25% of the SLA budget left
	StateQueue50
	StateQueue75
	StateCore25 // in-service requests with < 25% of the SLA budget left
	StateCore50
	StateCore75
)

// StateNames labels the vector components for diagnostics.
var StateNames = [StateDim]string{
	"NumReq", "QueueLen", "Queue25", "Queue50", "Queue75",
	"Core25", "Core50", "Core75",
}

// Observer converts server snapshots into the paper's 8-dimensional
// normalized state vector. Each component is divided by a running maximum so
// the representation stays in [0,1] without application-specific tuning.
// With classes > 0 the vector gains two components per core class — busy
// fraction and enabled fraction — so a placement-aware agent sees where its
// threads sit on a heterogeneous topology.
type Observer struct {
	sla          sim.Time
	classes      int
	lastArrivals uint64
	norms        [StateDim]float64
}

// NewObserver returns an observer for an application with the given SLA.
// The SLA must be positive: every state component is a fraction of it, and
// a zero SLA would turn the whole state vector into NaNs.
func NewObserver(sla sim.Time) *Observer {
	return NewObserverClasses(sla, 0)
}

// NewObserverClasses returns an observer that additionally emits per-class
// busy/enabled fractions for classes core classes (0 = the flat 8-dim
// state). Snapshots from a homogeneous server leave those dims zero.
func NewObserverClasses(sla sim.Time, classes int) *Observer {
	if sla <= 0 {
		panic("agent: NewObserver requires a positive SLA")
	}
	if classes < 0 {
		panic("agent: negative class count")
	}
	o := &Observer{sla: sla, classes: classes}
	for i := range o.norms {
		o.norms[i] = 1
	}
	return o
}

// Dim returns the observation vector's length.
func (o *Observer) Dim() int { return StateDim + 2*o.classes }

// Reset clears inter-step memory (arrival deltas) at episode boundaries,
// keeping learned normalization.
func (o *Observer) Reset() { o.lastArrivals = 0 }

// Raw computes the unnormalized state vector from a snapshot.
func (o *Observer) Raw(snap server.Snapshot) [StateDim]float64 {
	var v [StateDim]float64
	v[StateNumReq] = float64(snap.Counters.Arrivals - o.lastArrivals)
	v[StateQueueLen] = float64(snap.QueueLen)
	for _, rem := range snap.QueueSLARemaining {
		frac := float64(rem) / float64(o.sla)
		if frac < 0.25 {
			v[StateQueue25]++
		}
		if frac < 0.50 {
			v[StateQueue50]++
		}
		if frac < 0.75 {
			v[StateQueue75]++
		}
	}
	for _, rem := range snap.CoreSLARemaining {
		frac := float64(rem) / float64(o.sla)
		if frac < 0.25 {
			v[StateCore25]++
		}
		if frac < 0.50 {
			v[StateCore50]++
		}
		if frac < 0.75 {
			v[StateCore75]++
		}
	}
	return v
}

// Observe produces the normalized state vector and advances the arrival
// delta tracking.
func (o *Observer) Observe(snap server.Snapshot) []float64 {
	raw := o.Raw(snap)
	o.lastArrivals = snap.Counters.Arrivals
	out := make([]float64, o.Dim())
	for i, x := range raw {
		if x > o.norms[i] {
			o.norms[i] = x
		}
		out[i] = x / o.norms[i]
	}
	// Per-class busy/enabled fractions are already in [0,1]; no running-max
	// normalization needed. Missing classes (homogeneous server) stay zero.
	for c := 0; c < o.classes && c < len(snap.Classes); c++ {
		cs := snap.Classes[c]
		if cs.Cores > 0 {
			out[StateDim+2*c] = float64(cs.Busy) / float64(cs.Cores)
			out[StateDim+2*c+1] = float64(cs.Enabled) / float64(cs.Cores)
		}
	}
	return out
}
