// Package agent implements the DeepPower framework of the paper's §4: the
// state observer, the reward calculator, the DRL agent (DDPG) driving the
// thread controller's parameters, and the training loop of Algorithm 2.
package agent

import (
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// StateDim is the dimension of the observation vector (§4.4.1).
const StateDim = 8

// State vector component indices.
const (
	StateNumReq = iota // requests received in the last period
	StateQueueLen
	StateQueue25 // queued requests with < 25% of the SLA budget left
	StateQueue50
	StateQueue75
	StateCore25 // in-service requests with < 25% of the SLA budget left
	StateCore50
	StateCore75
)

// StateNames labels the vector components for diagnostics.
var StateNames = [StateDim]string{
	"NumReq", "QueueLen", "Queue25", "Queue50", "Queue75",
	"Core25", "Core50", "Core75",
}

// Observer converts server snapshots into the paper's 8-dimensional
// normalized state vector. Each component is divided by a running maximum so
// the representation stays in [0,1] without application-specific tuning.
type Observer struct {
	sla          sim.Time
	lastArrivals uint64
	norms        [StateDim]float64
}

// NewObserver returns an observer for an application with the given SLA.
// The SLA must be positive: every state component is a fraction of it, and
// a zero SLA would turn the whole state vector into NaNs.
func NewObserver(sla sim.Time) *Observer {
	if sla <= 0 {
		panic("agent: NewObserver requires a positive SLA")
	}
	o := &Observer{sla: sla}
	for i := range o.norms {
		o.norms[i] = 1
	}
	return o
}

// Reset clears inter-step memory (arrival deltas) at episode boundaries,
// keeping learned normalization.
func (o *Observer) Reset() { o.lastArrivals = 0 }

// Raw computes the unnormalized state vector from a snapshot.
func (o *Observer) Raw(snap server.Snapshot) [StateDim]float64 {
	var v [StateDim]float64
	v[StateNumReq] = float64(snap.Counters.Arrivals - o.lastArrivals)
	v[StateQueueLen] = float64(snap.QueueLen)
	for _, rem := range snap.QueueSLARemaining {
		frac := float64(rem) / float64(o.sla)
		if frac < 0.25 {
			v[StateQueue25]++
		}
		if frac < 0.50 {
			v[StateQueue50]++
		}
		if frac < 0.75 {
			v[StateQueue75]++
		}
	}
	for _, rem := range snap.CoreSLARemaining {
		frac := float64(rem) / float64(o.sla)
		if frac < 0.25 {
			v[StateCore25]++
		}
		if frac < 0.50 {
			v[StateCore50]++
		}
		if frac < 0.75 {
			v[StateCore75]++
		}
	}
	return v
}

// Observe produces the normalized state vector and advances the arrival
// delta tracking.
func (o *Observer) Observe(snap server.Snapshot) []float64 {
	raw := o.Raw(snap)
	o.lastArrivals = snap.Counters.Arrivals
	out := make([]float64, StateDim)
	for i, x := range raw {
		if x > o.norms[i] {
			o.norms[i] = x
		}
		out[i] = x / o.norms[i]
	}
	return out
}
