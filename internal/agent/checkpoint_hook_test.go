package agent

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"github.com/deeppower/deeppower/internal/ckpt"
	"github.com/deeppower/deeppower/internal/server"
)

// TestOnEpisodeCheckpointsToRegistry wires the training loop's episode hook
// to a checkpoint registry: every episode exports the current policy, Puts
// it, and Promotes it, so a crash at any point leaves a loadable last-good
// version behind.
func TestOnEpisodeCheckpointsToRegistry(t *testing.T) {
	reg, err := ckpt.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	dp, err := New(Config{Seed: 21, Train: true, WarmupSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	const episodes = 3
	_, err = Train(dp, TrainConfig{
		Episodes: episodes,
		Server:   server.Config{App: smallApp(), Seed: 21, DiscardLatencies: true},
		Trace:    testTrace(),
		OnEpisode: func(ep int, st EpisodeStats) error {
			var buf bytes.Buffer
			if err := dp.SavePolicy(&buf); err != nil {
				return err
			}
			v, err := reg.Put(buf.Bytes())
			if err != nil {
				return err
			}
			return reg.Promote(v)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	versions, err := reg.Versions()
	if err != nil {
		t.Fatal(err)
	}
	if len(versions) != episodes {
		t.Fatalf("registry holds %d versions after %d episodes", len(versions), episodes)
	}
	if got := reg.History(); len(got) != episodes {
		t.Fatalf("promotion history %v, want %d entries", got, episodes)
	}

	// The promoted head must load back into a fresh policy.
	_, kind, payload, err := reg.GetCurrent()
	if err != nil {
		t.Fatal(err)
	}
	dp2, err := New(Config{Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp2.LoadPolicy(bytes.NewReader(ckpt.Seal(kind, payload))); err != nil {
		t.Fatalf("promoted checkpoint does not load: %v", err)
	}
	s := make([]float64, StateDim)
	a1, a2 := dp.Agent().Act(s), dp2.Agent().Act(s)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("restored policy acts differently from the trained one")
		}
	}
}

// TestOnEpisodeErrorAbortsTraining checks a failing hook stops the loop and
// surfaces the partial stats.
func TestOnEpisodeErrorAbortsTraining(t *testing.T) {
	dp, err := New(Config{Seed: 23, Train: true})
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("disk full")
	stats, err := Train(dp, TrainConfig{
		Episodes: 5,
		Server:   server.Config{App: smallApp(), Seed: 23, DiscardLatencies: true},
		Trace:    testTrace(),
		OnEpisode: func(ep int, st EpisodeStats) error {
			if ep == 1 {
				return fmt.Errorf("checkpoint: %w", boom)
			}
			return nil
		},
	})
	if !errors.Is(err, boom) {
		t.Fatalf("hook error not surfaced: %v", err)
	}
	if len(stats) != 2 {
		t.Fatalf("got %d episode stats before the abort, want 2", len(stats))
	}
}

// TestDQNPowerPolicyExport checks the value-based variant shares the policy
// export/import entry points.
func TestDQNPowerPolicyExport(t *testing.T) {
	dq, err := NewDQNPower(DQNPowerConfig{Seed: 31, Train: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dq.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}
	if k, ok := ckpt.PeekKind(buf.Bytes()); !ok || k != ckpt.KindPolicy {
		t.Fatalf("DQNPower export is not a sealed policy container (kind %v ok %v)", k, ok)
	}
	dq2, err := NewDQNPower(DQNPowerConfig{Seed: 32, Train: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := dq2.LoadPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	if dq2.cfg.Train {
		t.Error("LoadPolicy should switch to inference mode")
	}
	s := make([]float64, StateDim)
	if dq.Agent().Act(s) != dq2.Agent().Act(s) {
		t.Fatal("loaded Q-network acts differently")
	}
	if err := dq2.LoadPolicy(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("junk accepted")
	}
}
