package agent

import (
	"math"

	"github.com/deeppower/deeppower/internal/sim"
)

// RewardConfig weights the three penalty terms of §4.4.2:
//
//	R_total = -(α·R_energy + β·R_timeout + γ·R_queue)
type RewardConfig struct {
	// Alpha weights energy (default 1).
	Alpha float64
	// Beta weights timeouts (default 10) — raise it if tail latency sits
	// above the SLA, per the paper's tuning note.
	Beta float64
	// Gamma weights queue growth (default 1).
	Gamma float64
	// Eta is the scaleFunc threshold: queues shorter than Eta are barely
	// punished, longer queues strongly (default 100, Fig. 5).
	Eta float64
	// RefPowerW normalizes R_energy: the energy of one step is divided by
	// RefPowerW·step so a fully-loaded baseline scores ≈ 1.
	RefPowerW float64
	// ClassRefPowerW, when set, makes StepClasses normalize each core
	// class's energy delta by its own reference power (one entry per
	// class); R_energy becomes the mean of the per-class terms, so waste
	// on a low-power efficiency class is not drowned out by the fast
	// class's scale. Ignored by Step.
	ClassRefPowerW []float64
}

// Weights set to a negative value disable the corresponding term (zero
// selects the default) — the sentinel the reward ablations use.
func (c RewardConfig) withDefaults() RewardConfig {
	if c.Alpha == 0 {
		c.Alpha = 1
	}
	if c.Beta == 0 {
		c.Beta = 10
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.Alpha < 0 {
		c.Alpha = 0
	}
	if c.Beta < 0 {
		c.Beta = 0
	}
	if c.Gamma < 0 {
		c.Gamma = 0
	}
	if c.Eta == 0 {
		c.Eta = 100
	}
	if c.RefPowerW == 0 {
		c.RefPowerW = 300
	}
	return c
}

// ScaleFunc is the paper's queue scaling function (Fig. 5):
//
//	scaleFunc(x) = (x/η) / (x/η + η/(x+ε))
//
// ≈0 below η, →1 as x → ∞. Out-of-domain inputs (negative or non-finite x,
// possible when queue telemetry is faulted) clamp to the nearest valid
// value rather than poisoning the reward with NaN.
func ScaleFunc(x, eta float64) float64 {
	const eps = 1e-9
	if math.IsNaN(x) || x < 0 {
		return 0
	}
	if math.IsInf(x, 1) {
		return 1
	}
	a := x / eta
	return a / (a + eta/(x+eps))
}

// Reward computes per-step rewards from interval deltas.
type Reward struct {
	cfg             RewardConfig
	lastEnergy      float64
	lastClassEnergy []float64
	lastTimeouts    uint64
	lastQueueLen    int
	primed          bool
}

// NewReward returns a calculator with the given (defaulted) weights.
func NewReward(cfg RewardConfig) *Reward {
	return &Reward{cfg: cfg.withDefaults()}
}

// Config returns the effective (defaulted) configuration.
func (rw *Reward) Config() RewardConfig { return rw.cfg }

// Reset clears inter-step state at episode boundaries.
func (rw *Reward) Reset() { rw.primed = false }

// Breakdown decomposes one step's reward.
type Breakdown struct {
	Energy  float64 // α·R_energy
	Timeout float64 // β·R_timeout
	Queue   float64 // γ·R_queue
	Total   float64 // -(sum)
}

// Step computes the reward for the interval ending now, given cumulative
// energy (joules), cumulative timeout count, the current queue length, and
// the step duration. The first call after Reset only primes the deltas and
// returns a zero Breakdown.
func (rw *Reward) Step(energyJ float64, timeouts uint64, queueLen int, step sim.Time) Breakdown {
	defer func() {
		rw.lastEnergy = energyJ
		rw.lastTimeouts = timeouts
		rw.lastQueueLen = queueLen
		rw.primed = true
	}()
	if !rw.primed {
		return Breakdown{}
	}
	var b Breakdown
	// R_energy: interval energy normalized to the reference power budget.
	// Faulted energy sensors can report non-monotone or non-finite
	// cumulative readings; a bad delta contributes zero rather than a
	// NaN/negative reward, and the bad reading is not retained as the
	// baseline for the next step.
	dE := energyJ - rw.lastEnergy
	if math.IsNaN(dE) || math.IsInf(dE, 0) || dE < 0 {
		dE = 0
	}
	if math.IsNaN(energyJ) || math.IsInf(energyJ, 0) {
		energyJ = rw.lastEnergy
	}
	denom := rw.cfg.RefPowerW * step.Seconds()
	if denom > 0 {
		b.Energy = rw.cfg.Alpha * dE / denom
	}
	// R_timeout: timeouts in the interval, compressed with log1p so a
	// thousand-timeout burst does not dwarf every other signal.
	dt := float64(timeouts - rw.lastTimeouts)
	b.Timeout = rw.cfg.Beta * math.Log1p(dt) / 10
	// R_queue: scaleFunc(ql)·max(ql − ql_prev, 0) (§4.4.2).
	growth := float64(queueLen - rw.lastQueueLen)
	if growth < 0 {
		growth = 0
	}
	b.Queue = rw.cfg.Gamma * ScaleFunc(float64(queueLen), rw.cfg.Eta) * growth
	b.Total = -(b.Energy + b.Timeout + b.Queue)
	return b
}

// StepClasses is Step with per-class energy attribution for heterogeneous
// servers: when ClassRefPowerW matches classEnergy's length, R_energy is the
// mean of each class's energy delta normalized by that class's reference
// power. Without class references it degrades to Step's total-energy term.
// The timeout and queue terms are identical to Step's.
func (rw *Reward) StepClasses(energyJ float64, classEnergy []float64, timeouts uint64, queueLen int, step sim.Time) Breakdown {
	refs := rw.cfg.ClassRefPowerW
	if len(refs) != len(classEnergy) || len(classEnergy) == 0 {
		return rw.Step(energyJ, timeouts, queueLen, step)
	}
	if len(rw.lastClassEnergy) != len(classEnergy) {
		rw.lastClassEnergy = make([]float64, len(classEnergy))
	}
	primed := rw.primed
	b := rw.Step(energyJ, timeouts, queueLen, step)
	if primed {
		sum, n := 0.0, 0
		for c, e := range classEnergy {
			dE := e - rw.lastClassEnergy[c]
			if math.IsNaN(dE) || math.IsInf(dE, 0) || dE < 0 {
				dE = 0
			}
			if denom := refs[c] * step.Seconds(); denom > 0 {
				sum += dE / denom
				n++
			}
		}
		if n > 0 {
			b.Total += b.Energy // retract the total-energy term
			b.Energy = rw.cfg.Alpha * sum / float64(n)
			b.Total -= b.Energy
		}
	}
	for c, e := range classEnergy {
		if math.IsNaN(e) || math.IsInf(e, 0) {
			e = rw.lastClassEnergy[c]
		}
		rw.lastClassEnergy[c] = e
	}
	return b
}
