package agent

import (
	"bytes"
	"context"
	"math"
	"reflect"
	"testing"

	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// vecTestConfig is a small-but-real training configuration: enough
// boundaries past warmup that gradient updates run, and a replay capacity
// small enough that the shared write cursor wraps.
func vecTestConfig(seed int64) Config {
	return Config{
		Seed:        seed,
		Train:       true,
		LongTime:    500 * sim.Millisecond,
		WarmupSteps: 4,
		BatchSize:   16,
		ReplayCap:   48,
	}
}

func vecTrainConfig(envs, workers int) TrainVectorConfig {
	return TrainVectorConfig{
		Envs:       envs,
		Workers:    workers,
		Episodes:   2,
		EpisodeLen: 5 * sim.Second,
		Server:     server.Config{App: smallApp(), Seed: 21, DiscardLatencies: true},
		Trace:      testTrace(),
	}
}

// trainVector trains a fresh policy with the given worker count and returns
// the policy and its per-episode stats.
func trainVector(t *testing.T, envs, workers int) (*DeepPower, []EpisodeStats) {
	t.Helper()
	dp, err := New(vecTestConfig(20))
	if err != nil {
		t.Fatal(err)
	}
	vt, err := NewVectorTrainer(dp, vecTrainConfig(envs, workers))
	if err != nil {
		t.Fatal(err)
	}
	stats, err := vt.Train(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if vt.Experience() == 0 {
		t.Fatal("no experience collected")
	}
	return dp, stats
}

func TestVectorTrainerWorkerEquivalence(t *testing.T) {
	dp1, stats1 := trainVector(t, 8, 1)
	dp8, stats8 := trainVector(t, 8, 8)

	// Shared replay pool: same cursor, same contents, same order.
	if dp1.replay.Pushed() != dp8.replay.Pushed() {
		t.Fatalf("write cursor differs: workers=1 %d, workers=8 %d",
			dp1.replay.Pushed(), dp8.replay.Pushed())
	}
	if dp1.replay.Pushed() <= uint64(dp1.replay.Len()) {
		t.Fatalf("replay never wrapped (pushed %d, retained %d) — config too small to exercise the cursor",
			dp1.replay.Pushed(), dp1.replay.Len())
	}
	if dp1.replay.Len() != dp8.replay.Len() {
		t.Fatalf("replay length differs: %d vs %d", dp1.replay.Len(), dp8.replay.Len())
	}
	for i := 0; i < dp1.replay.Len(); i++ {
		a, b := dp1.replay.At(i), dp8.replay.At(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("replay transition %d differs:\n  workers=1: %+v\n  workers=8: %+v", i, a, b)
		}
	}

	// Final weights byte-identical.
	var w1, w8 bytes.Buffer
	if err := dp1.SavePolicy(&w1); err != nil {
		t.Fatal(err)
	}
	if err := dp8.SavePolicy(&w8); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w8.Bytes()) {
		t.Fatal("final policy weights differ between worker counts")
	}

	// Episode stats identical too (returns, losses, aggregates).
	if !reflect.DeepEqual(stats1, stats8) {
		t.Fatalf("episode stats differ:\n  workers=1: %+v\n  workers=8: %+v", stats1, stats8)
	}
	for _, st := range stats1 {
		if math.IsNaN(st.Return) || math.IsInf(st.Return, 0) {
			t.Fatalf("non-finite return: %+v", st)
		}
	}
}

func TestVectorTrainerLearns(t *testing.T) {
	dp, stats := trainVector(t, 4, 0)
	if len(stats) != 2 {
		t.Fatalf("episodes = %d, want 2", len(stats))
	}
	// Past warmup with a full replay, boundary learning must have run.
	if dp.CriticLoss == 0 {
		t.Error("critic loss never recorded — vecLearn did not update")
	}
	if stats[1].CriticLoss != dp.CriticLoss {
		t.Errorf("stats loss %v != policy loss %v", stats[1].CriticLoss, dp.CriticLoss)
	}
	// 4 envs × 2 episodes × 10 boundaries, minus the unpushed first
	// boundary of each (env, episode): 72 transitions.
	if got := dp.Experience(); got != 72 {
		t.Errorf("experience = %d, want 72", got)
	}
}

func TestVectorTrainerDQNPower(t *testing.T) {
	build := func() *DQNPower {
		dq, err := NewDQNPower(DQNPowerConfig{
			Seed:        22,
			Train:       true,
			LongTime:    500 * sim.Millisecond,
			WarmupSteps: 3,
			BatchSize:   8,
			ReplayCap:   32,
		})
		if err != nil {
			t.Fatal(err)
		}
		return dq
	}
	train := func(dq *DQNPower, workers int) []EpisodeStats {
		cfg := vecTrainConfig(4, workers)
		cfg.Episodes = 1
		vt, err := NewVectorTrainer(dq, cfg)
		if err != nil {
			t.Fatal(err)
		}
		stats, err := vt.Train(context.Background())
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	dq1, dq4 := build(), build()
	stats1 := train(dq1, 1)
	stats4 := train(dq4, 4)
	if dq1.Experience() == 0 {
		t.Fatal("no experience collected")
	}
	if !reflect.DeepEqual(stats1, stats4) {
		t.Fatalf("DQN stats differ across worker counts:\n  %+v\n  %+v", stats1, stats4)
	}
	var w1, w4 bytes.Buffer
	if err := dq1.SavePolicy(&w1); err != nil {
		t.Fatal(err)
	}
	if err := dq4.SavePolicy(&w4); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w1.Bytes(), w4.Bytes()) {
		t.Fatal("DQN weights differ between worker counts")
	}
}

func TestVectorTrainerValidation(t *testing.T) {
	dp, err := New(vecTestConfig(23))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewVectorTrainer(dp, TrainVectorConfig{}); err == nil {
		t.Error("missing trace accepted")
	}
	cfg := vecTrainConfig(1, 1)
	cfg.Envs = -2
	if _, err := NewVectorTrainer(dp, cfg); err == nil {
		t.Error("negative env count accepted")
	}
	cfg = vecTrainConfig(1, 1)
	cfg.Episodes = -1
	if _, err := NewVectorTrainer(dp, cfg); err == nil {
		t.Error("negative episode count accepted")
	}
}

func TestEvaluateWithMatchesEvaluate(t *testing.T) {
	// The policy itself is stateful across runs (observer normalization
	// persists by design), so compare fresh same-seed policies: one on a
	// fresh engine, one on a warm engine another evaluation already grew.
	cfg := server.Config{App: smallApp(), Seed: 25}
	dpA, err := New(Config{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Evaluate(dpA, cfg, testTrace(), 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}

	eng := sim.NewEngine()
	warmup, err := New(Config{Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := EvaluateWith(eng, warmup, cfg, testTrace(), 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	dpB, err := New(Config{Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	got, err := EvaluateWith(eng, dpB, cfg, testTrace(), 5*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if got.AvgPowerW != want.AvgPowerW || got.Latency.P99 != want.Latency.P99 ||
		got.Counters != want.Counters {
		t.Fatalf("warm-engine result differs: %+v vs %+v", got, want)
	}
}
