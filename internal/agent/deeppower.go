package agent

import (
	"fmt"
	"io"
	"math"

	"github.com/deeppower/deeppower/internal/control"
	"github.com/deeppower/deeppower/internal/rl"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// ActionDim is the paper actor's output width: (BaseFreq, ScalingCoef).
// With Config.Placement a third component — the placement score — widens
// the action space (see Config.Placement).
const ActionDim = 2

// placementActionDim is the widened action width when Placement is on.
const placementActionDim = 3

// Config parameterizes the DeepPower policy.
type Config struct {
	// LongTime is the DRL agent's step interval (default 1 s, §4.6). The
	// controller's ShortTime is the server tick.
	LongTime sim.Time
	// Reward weights.
	Reward RewardConfig
	// Backend selects the learner: BackendDDPG (default, the paper's
	// algorithm) or BackendTD3.
	Backend BackendName
	// DDPG hyper-parameters; state/action dims are fixed by the paper.
	// (For the TD3 backend, the analogous fields are mapped across.)
	DDPG rl.DDPGConfig
	// NoiseMu and NoiseSigma parameterize exploration noise N(µ,δ); the
	// paper defaults to (0.3, 1) — the positive mean avoids early queue
	// congestion (§4.6).
	NoiseMu, NoiseSigma float64
	// NoiseDecay anneals exploration per agent step (default 0.999).
	NoiseDecay float64
	// WarmupSteps selects random actions before learning starts
	// (Algorithm 2 line 7; default 20).
	WarmupSteps int
	// BatchSize is the replay minibatch (default 64, §5.5).
	BatchSize int
	// UpdatesPerStep is how many gradient updates run per agent step
	// (default 1, as in Algorithm 2; quick-scale experiments raise it to
	// compensate for fewer steps).
	UpdatesPerStep int
	// ReplayCap bounds the experience pool (default 100000).
	ReplayCap int
	// Train enables exploration and network updates. Off = pure inference
	// with the current actor.
	Train bool
	// Flat disables the hierarchical mechanism: instead of parameterizing
	// the thread controller, the agent's first action component directly
	// sets one uniform frequency score for every core, once per LongTime.
	// This is the ablation showing why the hierarchy matters.
	Flat bool
	// Classes is the number of heterogeneous core classes the observer
	// distinguishes: the state vector gains 2 dims per class (busy and
	// enabled fractions). 0 keeps the paper's 8-dim state. Snapshots from
	// a homogeneous server leave the extra dims zero.
	Classes int
	// Placement widens the action space with a third component that
	// selects how many threads run on each core class, mapped onto the
	// server topology's placement ladder. Requires Classes > 0 and uses
	// the plain MLP actor (the paper's two-head actor is 2-dim only).
	Placement bool
	// InitialParams seeds the thread controller before the first action.
	InitialParams control.Params
	// RecordLog retains per-step actions and rewards (Fig. 8).
	RecordLog bool
	// Seed drives exploration and initialization.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.LongTime == 0 {
		c.LongTime = sim.Second
	}
	if c.NoiseMu == 0 && c.NoiseSigma == 0 {
		c.NoiseMu, c.NoiseSigma = 0.3, 1.0
	}
	if c.NoiseDecay == 0 {
		c.NoiseDecay = 0.999
	}
	if c.WarmupSteps == 0 {
		c.WarmupSteps = 20
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.UpdatesPerStep == 0 {
		c.UpdatesPerStep = 1
	}
	if c.ReplayCap == 0 {
		c.ReplayCap = 100000
	}
	if c.InitialParams == (control.Params{}) {
		c.InitialParams = control.Params{BaseFreq: 0.6, ScalingCoef: 0.6}
	}
	if c.Backend == "" {
		c.Backend = BackendDDPG
	}
	c.DDPG.StateDim = StateDim + 2*c.Classes
	c.DDPG.ActionDim = ActionDim
	if c.Placement {
		c.DDPG.ActionDim = placementActionDim
		c.DDPG.TwoHeadActor = false // the paper's two-head actor is 2-dim only
	}
	if c.DDPG.Seed == 0 {
		c.DDPG.Seed = c.Seed
	}
	return c
}

// LogPoint is one agent step's record (for Fig. 8's parameter curves).
type LogPoint struct {
	At     sim.Time
	Params control.Params
	Reward Breakdown
	State  []float64
}

// DeepPower is the full framework of Fig. 3 wired as a server.Policy: the
// thread controller runs every tick; once per LongTime the DRL agent
// observes, rewards, learns, and emits new controller parameters.
type DeepPower struct {
	server.BasePolicy
	cfg Config

	tc       *control.ThreadController
	agent    Backend
	replay   *rl.Replay
	noise    rl.Noise
	observer *Observer
	reward   *Reward
	rng      *sim.RNG

	step       int
	nextAct    sim.Time
	lastState  []float64
	lastAction []float64

	// external marks this instance as externally driven: OnTick keeps the
	// thread controller running but never acts inline — the vector trainer
	// acts at lockstep boundaries instead (see vector.go).
	external bool
	// vecSteps counts lockstep boundaries the shared learner has seen; it
	// plays step's role in the vectorized warmup/learn gating.
	vecSteps int
	// pendingState/pendingRew carry the boundary observation between the
	// observe and act halves of a vector step.
	pendingState []float64
	pendingRew   Breakdown
	// noiseBuf is the reused exploration-noise row for vecActRow, sized
	// for the widest action space.
	noiseBuf [placementActionDim]float64

	// placeLevels is the server topology's placement ladder, captured at
	// Init when Placement is on (nil on homogeneous servers).
	placeLevels [][]int
	// classEnergyBuf is the reused per-class energy row for observeStep.
	classEnergyBuf []float64

	// batchBuf is the reused minibatch buffer for replay sampling
	// (rl.Replay.SampleInto), so the steady-state train loop allocates
	// nothing per update.
	batchBuf []rl.Transition

	// Log holds per-step records when RecordLog is set.
	Log []LogPoint
	// EpisodeReturn accumulates reward over the current episode.
	EpisodeReturn float64
	// Losses tracks the most recent update's losses.
	CriticLoss, ActorLoss float64
}

// New builds a DeepPower policy.
func New(cfg Config) (*DeepPower, error) {
	full := cfg.withDefaults()
	if full.Classes < 0 {
		return nil, fmt.Errorf("agent: negative class count %d", full.Classes)
	}
	if full.Placement && full.Classes == 0 {
		return nil, fmt.Errorf("agent: Placement requires Classes > 0")
	}
	var agent Backend
	switch full.Backend {
	case BackendDDPG:
		a, err := rl.NewDDPG(full.DDPG)
		if err != nil {
			return nil, err
		}
		agent = a
	case BackendTD3:
		a, err := rl.NewTD3(rl.TD3Config{
			StateDim:  full.DDPG.StateDim,
			ActionDim: full.DDPG.ActionDim,
			ActorLR:   full.DDPG.ActorLR,
			CriticLR:  full.DDPG.CriticLR,
			Gamma:     full.DDPG.Gamma,
			Tau:       full.DDPG.Tau,
			Seed:      full.DDPG.Seed,
		})
		if err != nil {
			return nil, err
		}
		agent = td3Backend{a}
	default:
		return nil, fmt.Errorf("agent: unknown backend %q", full.Backend)
	}
	rng := sim.NewRNG(full.Seed).Stream("deeppower")
	dp := &DeepPower{
		cfg:    full,
		tc:     control.NewThreadController(full.InitialParams),
		agent:  agent,
		replay: rl.NewReplay(full.ReplayCap, rng.Stream("replay")),
		noise: &rl.DecayedNoise{
			Inner: rl.NewGaussianNoise(full.NoiseMu, full.NoiseSigma, rng.Stream("noise")),
			Scale: 1, Decay: full.NoiseDecay, Floor: 0.05,
		},
		reward: NewReward(full.Reward),
		rng:    rng.Stream("warmup-actions"),
	}
	return dp, nil
}

// Name implements server.Policy.
func (dp *DeepPower) Name() string { return "deeppower" }

// Params returns the thread controller's current parameters.
func (dp *DeepPower) Params() control.Params { return dp.tc.Params() }

// Agent exposes the underlying learner (diagnostics, ablations).
func (dp *DeepPower) Agent() Backend { return dp.agent }

// StepCount reports completed agent steps across all episodes.
func (dp *DeepPower) StepCount() int { return dp.step }

// Return implements Trainable.
func (dp *DeepPower) Return() float64 { return dp.EpisodeReturn }

// Init implements server.Policy: per-episode reset. Learned networks, the
// replay pool, and exploration decay persist across episodes.
func (dp *DeepPower) Init(c server.Control) {
	dp.BasePolicy.Init(c)
	dp.tc.Init(c)
	if dp.cfg.Placement {
		if t := c.Topology(); t != nil {
			dp.placeLevels = t.PlacementLevels()
		}
	}
	if dp.observer == nil {
		dp.observer = NewObserverClasses(c.SLA(), dp.cfg.Classes)
	} else {
		// Keep learned normalization across episodes so training-time and
		// evaluation-time state representations agree.
		dp.observer.Reset()
	}
	dp.reward.Reset()
	dp.lastState = nil
	dp.lastAction = nil
	dp.EpisodeReturn = 0
	dp.nextAct = c.Now() // act immediately on the first tick
	dp.tc.SetParams(dp.cfg.InitialParams)
}

// OnTick implements server.Policy: Algorithm 1 every tick, Algorithm 2 every
// LongTime. In Flat mode the controller is bypassed and the agent's score
// applies uniformly (set once at the agent step).
func (dp *DeepPower) OnTick(now sim.Time) {
	if !dp.external && now >= dp.nextAct {
		dp.agentStep(now)
		dp.nextAct = now + dp.cfg.LongTime
	}
	if !dp.cfg.Flat {
		dp.tc.Apply(now, dp.Ctl)
	}
}

// OnDispatch implements server.Policy (delegated to the controller so new
// requests get scored immediately).
func (dp *DeepPower) OnDispatch(r *server.Request, core int) {
	if !dp.cfg.Flat {
		dp.tc.OnDispatch(r, core)
	}
}

// agentStep is one iteration of Algorithm 2's loop body: observe and
// reward, store the completed transition, learn, select, actuate. The
// vectorized trainer runs the same halves split across a lockstep boundary
// (vecObserve / vecActRow / vecLearn below).
func (dp *DeepPower) agentStep(now sim.Time) {
	state, rew := dp.observeStep()
	if dp.pushTransition(state, rew) &&
		dp.step >= dp.cfg.WarmupSteps && dp.replay.Len() >= dp.cfg.BatchSize {
		dp.learnStep()
	}
	dp.EpisodeReturn += rew.Total
	dp.commitAction(now, state, dp.selectAction(state), rew)
}

// observeStep computes the boundary state and reward from the control seam
// (Algorithm 2 lines 3–4).
func (dp *DeepPower) observeStep() ([]float64, Breakdown) {
	snap := dp.Ctl.Snapshot()
	state := dp.observer.Observe(snap)
	var rew Breakdown
	if dp.cfg.Classes > 0 && len(snap.Classes) > 0 {
		if cap(dp.classEnergyBuf) < len(snap.Classes) {
			dp.classEnergyBuf = make([]float64, len(snap.Classes))
		}
		buf := dp.classEnergyBuf[:len(snap.Classes)]
		for i, cs := range snap.Classes {
			buf[i] = cs.EnergyJ
		}
		rew = dp.reward.StepClasses(snap.Energy, buf, snap.Counters.Timeouts, snap.QueueLen, dp.cfg.LongTime)
	} else {
		rew = dp.reward.Step(snap.Energy, snap.Counters.Timeouts, snap.QueueLen, dp.cfg.LongTime)
	}
	return state, rew
}

// pushTransition stores the completed (s, a, r, s') tuple and reports
// whether it was stored. Transitions carrying non-finite values (possible
// under faulted telemetry) are dropped before they can poison the replay
// pool.
func (dp *DeepPower) pushTransition(state []float64, rew Breakdown) bool {
	if !dp.cfg.Train || dp.lastState == nil || !finiteVec(state) || !isFinite(rew.Total) {
		return false
	}
	dp.replay.Push(rl.Transition{
		State:     dp.lastState,
		Action:    dp.lastAction,
		Reward:    rew.Total,
		NextState: state,
	})
	return true
}

// learnStep runs the configured gradient updates from the replay pool.
func (dp *DeepPower) learnStep() {
	if dp.batchBuf == nil {
		dp.batchBuf = make([]rl.Transition, dp.cfg.BatchSize)
	}
	for u := 0; u < dp.cfg.UpdatesPerStep; u++ {
		dp.replay.SampleInto(dp.batchBuf)
		dp.CriticLoss, dp.ActorLoss = dp.agent.Update(dp.batchBuf)
	}
}

// actionDim is the actor's effective output width (2, or 3 with Placement).
func (dp *DeepPower) actionDim() int { return dp.cfg.DDPG.ActionDim }

// randomAction draws a uniform warmup action of the full width —
// randomSelect() of Algorithm 2 line 7. For the 2-dim paper agent the draw
// count and order match earlier versions exactly.
func (dp *DeepPower) randomAction() []float64 {
	a := make([]float64, dp.actionDim())
	for i := range a {
		a[i] = dp.rng.Float64()
	}
	return a
}

// selectAction picks the next action inline (Algorithm 2 line 5).
func (dp *DeepPower) selectAction(state []float64) []float64 {
	switch {
	case dp.cfg.Train && dp.step < dp.cfg.WarmupSteps:
		return dp.randomAction()
	case dp.cfg.Train:
		return dp.agent.ActNoisy(state, dp.noise)
	default:
		return dp.agent.Act(state)
	}
}

// commitAction actuates a selected action and advances the step bookkeeping
// — the shared tail of the inline agent step and the vectorized boundary
// act.
func (dp *DeepPower) commitAction(now sim.Time, state, action []float64, rew Breakdown) {
	params := control.Params{BaseFreq: action[0], ScalingCoef: action[1]}
	dp.tc.SetParams(params)
	if dp.cfg.Placement && len(action) > 2 && dp.placeLevels != nil {
		dp.Ctl.SetPlacement(control.PlacementFromScore(action[2], dp.placeLevels))
	}
	if dp.cfg.Flat {
		for i := 0; i < dp.Ctl.NumCores(); i++ {
			dp.Ctl.SetScore(i, action[0])
		}
	}

	if dp.cfg.RecordLog {
		dp.Log = append(dp.Log, LogPoint{At: now, Params: dp.tc.Params(), Reward: rew, State: state})
	}
	dp.lastState = state
	dp.lastAction = action
	dp.step++
}

// --- vectorized acting (VectorPolicy; driven by VectorTrainer) -------------

// vecPeriod implements VectorPolicy.
func (dp *DeepPower) vecPeriod() sim.Time { return dp.cfg.LongTime }

// vecRowWidth implements VectorPolicy: the actor emits one action per row.
func (dp *DeepPower) vecRowWidth() int { return dp.actionDim() }

// vecForward implements VectorPolicy: one batched actor call for all envs.
func (dp *DeepPower) vecForward(states []float64, n int) []float64 {
	return dp.agent.ActBatch(states, n)
}

// vecNewShell implements VectorPolicy: a per-env acting shell with its own
// controller, observer, reward, and RNG substreams (exploration stays
// env-decoupled, seeded via sim.SubSeed so any worker count draws the same
// noise), sharing the owner's learner networks and replay pool.
func (dp *DeepPower) vecNewShell(envIdx int) (vecShell, error) {
	cfg := dp.cfg
	cfg.Seed = sim.SubSeed(dp.cfg.Seed, fmt.Sprintf("vec-env/%d", envIdx))
	cfg.DDPG.Seed = 0 // re-derive the (discarded) shell learner's seed
	cfg.RecordLog = false
	shell, err := New(cfg)
	if err != nil {
		return nil, err
	}
	shell.agent = dp.agent
	shell.replay = dp.replay
	shell.external = true
	return shell, nil
}

// vecObserve runs the observation half of a lockstep step: state, reward,
// and the completed transition pushed into the (shared) replay pool. The
// trainer calls it serially in ascending env order — the deterministic
// interleave that makes the shared write cursor worker-count independent.
func (dp *DeepPower) vecObserve(sim.Time) {
	state, rew := dp.observeStep()
	dp.pushTransition(state, rew)
	dp.EpisodeReturn += rew.Total
	dp.pendingState = state
	dp.pendingRew = rew
}

// vecStateInto copies the pending boundary observation into one row of the
// trainer's gather buffer.
func (dp *DeepPower) vecStateInto(dst []float64) { copy(dst, dp.pendingState) }

// vecActRow consumes this env's row of the batched actor output: warmup
// envs draw random actions from their own RNG substream, training envs add
// their own exploration noise (same numerics and draw order as ActNoisy),
// and the action actuates immediately — matching the inline path, where the
// tick that triggered the agent step applies the controller right after.
func (dp *DeepPower) vecActRow(now sim.Time, row []float64) {
	state := dp.pendingState
	var action []float64
	switch {
	case dp.cfg.Train && dp.step < dp.cfg.WarmupSteps:
		action = dp.randomAction()
	case dp.cfg.Train:
		action = append(make([]float64, 0, len(row)), row...)
		noise := dp.noiseBuf[:len(row)]
		dp.noise.SampleInto(noise)
		for i := range action {
			action[i] += noise[i]
		}
		clipAction(action)
	default:
		action = append(make([]float64, 0, len(row)), row...)
	}
	dp.commitAction(now, state, action, dp.pendingRew)
	if !dp.cfg.Flat {
		dp.tc.Apply(now, dp.Ctl)
	}
}

// vecLearn implements VectorPolicy: one lockstep boundary's gradient
// updates from the shared pool — the same UpdatesPerStep cadence as one
// inline agent step, amortized across all E transitions the boundary
// contributed.
func (dp *DeepPower) vecLearn() {
	dp.vecSteps++
	if !dp.cfg.Train || dp.vecSteps <= dp.cfg.WarmupSteps || dp.replay.Len() < dp.cfg.BatchSize {
		return
	}
	dp.learnStep()
}

// Experience reports how many transitions have entered the replay pool —
// the experience-throughput counter the vector benchmarks rate.
func (dp *DeepPower) Experience() uint64 { return dp.replay.Pushed() }

// LastCriticLoss implements LossReporter.
func (dp *DeepPower) LastCriticLoss() float64 { return dp.CriticLoss }

// DivergenceCount implements DivergenceReporter: the backend's cumulative
// rolled-back updates (zero for backends without a divergence guard).
func (dp *DeepPower) DivergenceCount() uint64 {
	if div, ok := dp.agent.(interface{ Divergences() uint64 }); ok {
		return div.Divergences()
	}
	return 0
}

// clipAction clamps into the actor's [0,1] range — rl's clip semantics
// (NaN → 0), mirrored here for the vectorized noise path.
func clipAction(a []float64) {
	for i, v := range a {
		if v < 0 {
			a[i] = 0
		} else if v > 1 {
			a[i] = 1
		} else if math.IsNaN(v) {
			a[i] = 0
		}
	}
}

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func finiteVec(v []float64) bool {
	for _, x := range v {
		if !isFinite(x) {
			return false
		}
	}
	return true
}

// SavePolicy writes the trained actor.
func (dp *DeepPower) SavePolicy(w io.Writer) error { return dp.agent.SavePolicy(w) }

// LoadPolicy installs a trained actor and switches the policy to inference.
func (dp *DeepPower) LoadPolicy(r io.Reader) error {
	if err := dp.agent.LoadPolicy(r); err != nil {
		return fmt.Errorf("agent: %w", err)
	}
	dp.cfg.Train = false
	return nil
}

// SetTrain toggles training mode.
func (dp *DeepPower) SetTrain(train bool) { dp.cfg.Train = train }

// EnableLog turns on per-step action/reward logging (Fig. 8).
func (dp *DeepPower) EnableLog() { dp.cfg.RecordLog = true }
