package agent

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/control"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

func TestScaleFuncShape(t *testing.T) {
	// Fig. 5: ≈0 well below η, 0.5 crossing near η... the paper's change
	// point, and →1 at infinity.
	const eta = 100
	if v := ScaleFunc(1, eta); v > 0.01 {
		t.Errorf("scaleFunc(1) = %v, want ≈0", v)
	}
	if v := ScaleFunc(10, eta); v > 0.05 {
		t.Errorf("scaleFunc(10) = %v, want small", v)
	}
	if v := ScaleFunc(1e6, eta); v < 0.99 {
		t.Errorf("scaleFunc(1e6) = %v, want ≈1", v)
	}
	// Monotone increasing.
	last := -1.0
	for x := 0.0; x < 1000; x += 10 {
		v := ScaleFunc(x, eta)
		if v < last {
			t.Fatalf("scaleFunc not monotone at %v", x)
		}
		last = v
	}
}

func TestScaleFuncBounded(t *testing.T) {
	f := func(raw float64) bool {
		x := math.Abs(raw)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		v := ScaleFunc(x, 100)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestObserverVector(t *testing.T) {
	sla := 8 * sim.Millisecond
	o := NewObserver(sla)
	snap := server.Snapshot{
		QueueLen: 4,
		QueueSLARemaining: []sim.Time{
			sim.Millisecond,     // 12.5% left → counts in 25/50/75
			3 * sim.Millisecond, // 37.5% → 50/75
			5 * sim.Millisecond, // 62.5% → 75
			7 * sim.Millisecond, // 87.5% → none
		},
		CoreSLARemaining: []sim.Time{
			-1 * sim.Millisecond, // already late → all buckets
			6 * sim.Millisecond,  // 75% exactly → not < 75? 6/8 = 0.75
		},
		Counters: server.Counters{Arrivals: 10},
	}
	raw := o.Raw(snap)
	if raw[StateNumReq] != 10 {
		t.Errorf("NumReq = %v", raw[StateNumReq])
	}
	if raw[StateQueueLen] != 4 {
		t.Errorf("QueueLen = %v", raw[StateQueueLen])
	}
	if raw[StateQueue25] != 1 || raw[StateQueue50] != 2 || raw[StateQueue75] != 3 {
		t.Errorf("queue buckets = %v %v %v, want 1 2 3",
			raw[StateQueue25], raw[StateQueue50], raw[StateQueue75])
	}
	if raw[StateCore25] != 1 || raw[StateCore50] != 1 || raw[StateCore75] != 1 {
		t.Errorf("core buckets = %v %v %v, want 1 1 1",
			raw[StateCore25], raw[StateCore50], raw[StateCore75])
	}
}

func TestObserverNormalization(t *testing.T) {
	o := NewObserver(sim.Millisecond)
	s1 := o.Observe(server.Snapshot{QueueLen: 50, Counters: server.Counters{Arrivals: 100}})
	for i, v := range s1 {
		if v < 0 || v > 1 {
			t.Errorf("dim %s = %v outside [0,1]", StateNames[i], v)
		}
	}
	// Arrival delta: second observation with 150 cumulative = 50 new.
	s2 := o.Observe(server.Snapshot{QueueLen: 25, Counters: server.Counters{Arrivals: 150}})
	if s2[StateNumReq] != 0.5 { // 50 new / running max 100
		t.Errorf("NumReq norm = %v, want 0.5", s2[StateNumReq])
	}
	if s2[StateQueueLen] != 0.5 {
		t.Errorf("QueueLen norm = %v, want 0.5", s2[StateQueueLen])
	}
}

func TestRewardBreakdown(t *testing.T) {
	rw := NewReward(RewardConfig{Alpha: 1, Beta: 10, Gamma: 1, Eta: 100, RefPowerW: 100})
	// Priming call.
	if b := rw.Step(0, 0, 0, sim.Second); b.Total != 0 {
		t.Errorf("priming step reward = %v, want 0", b.Total)
	}
	// 50 J over 1 s at 100 W reference → R_energy = 0.5.
	b := rw.Step(50, 0, 0, sim.Second)
	if math.Abs(b.Energy-0.5) > 1e-12 {
		t.Errorf("R_energy = %v, want 0.5", b.Energy)
	}
	if b.Timeout != 0 || b.Queue != 0 {
		t.Errorf("unexpected penalties: %+v", b)
	}
	if math.Abs(b.Total+0.5) > 1e-12 {
		t.Errorf("total = %v, want -0.5", b.Total)
	}
}

func TestRewardTimeoutPenalty(t *testing.T) {
	rw := NewReward(RewardConfig{})
	rw.Step(0, 0, 0, sim.Second)
	none := rw.Step(0, 0, 0, sim.Second)
	rw.Reset()
	rw.Step(0, 0, 0, sim.Second)
	some := rw.Step(0, 50, 0, sim.Second)
	if some.Total >= none.Total {
		t.Errorf("timeouts not punished: %v vs %v", some.Total, none.Total)
	}
}

func TestRewardQueueGrowthOnlyPunishedWhenLong(t *testing.T) {
	// Growth below η barely matters; growth of a long queue hurts.
	rw := NewReward(RewardConfig{Eta: 100})
	rw.Step(0, 0, 0, sim.Second)
	short := rw.Step(0, 0, 20, sim.Second) // 0 → 20, still short
	rw.Reset()
	rw.Step(0, 0, 400, sim.Second)
	long := rw.Step(0, 0, 420, sim.Second) // 400 → 420, long queue grows
	if math.Abs(short.Queue) > 1 {
		t.Errorf("short queue growth punished too much: %v", short.Queue)
	}
	if long.Queue < 5*math.Abs(short.Queue) {
		t.Errorf("long queue growth (%v) not much worse than short (%v)",
			long.Queue, short.Queue)
	}
	// Shrinking queues are never punished.
	rw.Reset()
	rw.Step(0, 0, 500, sim.Second)
	shrink := rw.Step(0, 0, 100, sim.Second)
	if shrink.Queue != 0 {
		t.Errorf("queue shrink punished: %v", shrink.Queue)
	}
}

func TestConfigDefaults(t *testing.T) {
	dp, err := New(Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if dp.cfg.LongTime != sim.Second {
		t.Errorf("LongTime = %v", dp.cfg.LongTime)
	}
	if dp.cfg.NoiseMu != 0.3 || dp.cfg.NoiseSigma != 1.0 {
		t.Errorf("noise defaults = %v/%v, want paper's 0.3/1", dp.cfg.NoiseMu, dp.cfg.NoiseSigma)
	}
	if dp.cfg.BatchSize != 64 {
		t.Errorf("batch = %d, want 64", dp.cfg.BatchSize)
	}
	if dp.Name() != "deeppower" {
		t.Errorf("name = %q", dp.Name())
	}
}

func testTrace() *workload.Trace {
	cfg := workload.DefaultDiurnal()
	cfg.Period = 20 * sim.Second
	cfg.Buckets = 20
	cfg.BaseRPS = 300
	cfg.PeakRPS = 1200
	return workload.Diurnal(cfg)
}

func smallApp() *app.Profile {
	p := app.MustByName(app.Xapian)
	p.Workers = 4
	return p
}

func TestDeepPowerRunsAndActs(t *testing.T) {
	dp, err := New(Config{Seed: 2, Train: true, RecordLog: true, WarmupSteps: 3, LongTime: sim.Second})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{App: smallApp(), Seed: 2}, dp)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(testTrace(), 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if dp.StepCount() < 9 {
		t.Errorf("agent steps = %d, want ~10 (one per second)", dp.StepCount())
	}
	if len(dp.Log) != dp.StepCount() {
		t.Errorf("log length %d != steps %d", len(dp.Log), dp.StepCount())
	}
	for _, lp := range dp.Log {
		if lp.Params.Validate() != nil {
			t.Errorf("invalid params logged: %+v", lp.Params)
		}
		if len(lp.State) != StateDim {
			t.Errorf("state dim %d", len(lp.State))
		}
	}
	if res.Counters.Completions == 0 {
		t.Error("no requests completed")
	}
}

func TestTrainImprovesOverRandom(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	dp, err := New(Config{Seed: 3, Train: true, WarmupSteps: 10})
	if err != nil {
		t.Fatal(err)
	}
	cfg := TrainConfig{
		Episodes: 6,
		Server:   server.Config{App: smallApp(), Seed: 3, DiscardLatencies: true},
		Trace:    testTrace(),
	}
	stats, err := Train(dp, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 6 {
		t.Fatalf("episodes = %d", len(stats))
	}
	// Training must produce finite numbers and the late policy should not
	// be worse than the early random one by a large margin.
	for _, s := range stats {
		if math.IsNaN(s.Return) || math.IsInf(s.Return, 0) {
			t.Fatalf("non-finite return: %+v", s)
		}
	}
	early := stats[0].Return
	late := stats[len(stats)-1].Return
	if late < early-math.Abs(early) {
		t.Errorf("return degraded badly: early %v late %v", early, late)
	}
	// Evaluation runs deterministically after training.
	res, err := Evaluate(dp, server.Config{App: smallApp(), Seed: 99}, testTrace(), 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPowerW <= 0 {
		t.Error("evaluation produced no power reading")
	}
}

func TestPolicySaveLoadRoundTrip(t *testing.T) {
	dp, err := New(Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := dp.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}
	dp2, err := New(Config{Seed: 5, Train: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := dp2.LoadPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	if dp2.cfg.Train {
		t.Error("LoadPolicy should switch to inference mode")
	}
	s := make([]float64, StateDim)
	a1 := dp.Agent().Act(s)
	a2 := dp2.Agent().Act(s)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("loaded policy acts differently")
		}
	}
}

func TestTrainConfigValidation(t *testing.T) {
	dp, _ := New(Config{Seed: 6})
	if _, err := Train(dp, TrainConfig{}); err == nil {
		t.Error("missing trace accepted")
	}
	if _, err := Train(dp, TrainConfig{Trace: testTrace(), Episodes: -1}); err == nil {
		t.Error("negative episodes accepted")
	}
}

func TestInitialParamsApplied(t *testing.T) {
	want := control.Params{BaseFreq: 0.9, ScalingCoef: 0.1}
	dp, err := New(Config{Seed: 7, InitialParams: want})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	if _, err := server.New(eng, server.Config{App: smallApp(), Seed: 7}, dp); err != nil {
		t.Fatal(err)
	}
	// Init is called by Run; call directly for the check.
	// (The params survive until the first agent step.)
	if got := dp.Params(); got != want {
		t.Errorf("params = %+v, want %+v", got, want)
	}
}

func TestFlatModeBypassesController(t *testing.T) {
	dp, err := New(Config{Seed: 8, Flat: true, LongTime: 500 * sim.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{App: smallApp(), Seed: 8}, dp)
	if err != nil {
		t.Fatal(err)
	}
	ft := srv.EnableFreqTrace(0, 5*sim.Second)
	if _, err := srv.Run(testTrace(), 5*sim.Second); err != nil {
		t.Fatal(err)
	}
	// In flat mode, all cores share one frequency at any sample (no
	// per-request ramping).
	for i, row := range ft.Freqs {
		for c := 1; c < len(row); c++ {
			if row[c] != row[0] {
				t.Fatalf("sample %d: cores at different frequencies in flat mode: %v", i, row)
			}
		}
	}
	// And the frequency only changes at agent steps — far fewer changes
	// than hierarchical control would make under load.
	if ch := ft.Changes(); ch > 20*len(ft.Freqs[0]) {
		t.Errorf("flat mode changed frequency %d times, expected one per agent step", ch)
	}
}

func TestTD3BackendTrains(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	dp, err := New(Config{Seed: 9, Train: true, Backend: BackendTD3, WarmupSteps: 5})
	if err != nil {
		t.Fatal(err)
	}
	stats, err := Train(dp, TrainConfig{
		Episodes: 3,
		Server:   server.Config{App: smallApp(), Seed: 9, DiscardLatencies: true},
		Trace:    testTrace(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("episodes = %d", len(stats))
	}
	for _, s := range stats {
		if math.IsNaN(s.Return) || math.IsInf(s.Return, 0) {
			t.Fatalf("non-finite return %+v", s)
		}
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	if _, err := New(Config{Backend: "ppo"}); err == nil {
		t.Error("unknown backend accepted")
	}
}

func TestTwoHeadActorThroughAgent(t *testing.T) {
	cfg := Config{Seed: 10}
	cfg.DDPG.TwoHeadActor = true
	dp, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n := dp.Agent().NumParams(); n < 1500 || n > 2700 {
		t.Errorf("two-head agent params = %d, want ~2k (paper: 2096)", n)
	}
	a := dp.Agent().Act(make([]float64, StateDim))
	if len(a) != ActionDim {
		t.Fatalf("action dim %d", len(a))
	}
}
