package agent

import (
	"testing"

	"github.com/deeppower/deeppower/internal/control"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

func TestDQNPowerParamsLattice(t *testing.T) {
	dq, err := NewDQNPower(DQNPowerConfig{GridSize: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Corners and center of the 5×5 lattice.
	cases := []struct {
		action int
		want   control.Params
	}{
		{0, control.Params{BaseFreq: 0, ScalingCoef: 0}},
		{4, control.Params{BaseFreq: 0, ScalingCoef: 1}},
		{20, control.Params{BaseFreq: 1, ScalingCoef: 0}},
		{24, control.Params{BaseFreq: 1, ScalingCoef: 1}},
		{12, control.Params{BaseFreq: 0.5, ScalingCoef: 0.5}},
	}
	for _, c := range cases {
		if got := dq.paramsOf(c.action); got != c.want {
			t.Errorf("paramsOf(%d) = %+v, want %+v", c.action, got, c.want)
		}
	}
	// Every action maps into [0,1]².
	for a := 0; a < 25; a++ {
		if p := dq.paramsOf(a); p.Validate() != nil {
			t.Errorf("action %d → invalid params %+v", a, p)
		}
	}
}

func TestDQNPowerRejectsTinyGrid(t *testing.T) {
	if _, err := NewDQNPower(DQNPowerConfig{GridSize: 1}); err == nil {
		t.Error("grid size 1 accepted")
	}
}

func TestDQNPowerRunsAndLearnsSignals(t *testing.T) {
	dq, err := NewDQNPower(DQNPowerConfig{
		Seed: 2, Train: true, WarmupSteps: 3,
		LongTime: 500 * sim.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{App: smallApp(), Seed: 2}, dq)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(testTrace(), 10*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.Completions == 0 {
		t.Fatal("no completions")
	}
	if dq.step < 19 {
		t.Errorf("agent steps = %d, want ~20", dq.step)
	}
	if dq.Params().Validate() != nil {
		t.Errorf("invalid final params %+v", dq.Params())
	}
	// Epsilon must have decayed from its start.
	if dq.eps >= dq.cfg.EpsStart {
		t.Errorf("epsilon never decayed: %v", dq.eps)
	}
	if dq.Name() != "dqn-power" {
		t.Errorf("name = %q", dq.Name())
	}
}

func TestDDQNPowerName(t *testing.T) {
	dq, err := NewDQNPower(DQNPowerConfig{Double: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if dq.Name() != "ddqn-power" {
		t.Errorf("name = %q", dq.Name())
	}
}

func TestDQNPowerEvaluationDeterministic(t *testing.T) {
	run := func() float64 {
		dq, err := NewDQNPower(DQNPowerConfig{Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		eng := sim.NewEngine()
		srv, err := server.New(eng, server.Config{App: smallApp(), Seed: 4}, dq)
		if err != nil {
			t.Fatal(err)
		}
		res, err := srv.Run(testTrace(), 5*sim.Second)
		if err != nil {
			t.Fatal(err)
		}
		return res.EnergyJ
	}
	if a, b := run(), run(); a != b {
		t.Errorf("evaluation not deterministic: %v vs %v", a, b)
	}
}
