package agent

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// VectorPolicy is a trainable policy that can drive E environments in
// lockstep through one shared learner: DeepPower and DQNPower both qualify.
// The unexported methods are the vectorized act protocol (implemented in
// deeppower.go / dqnpower.go); external packages obtain a VectorPolicy by
// constructing one of those concrete types.
type VectorPolicy interface {
	Trainable
	// vecPeriod is the control period between lockstep boundaries.
	vecPeriod() sim.Time
	// vecRowWidth is one env's slice width in the batched forward output.
	vecRowWidth() int
	// vecForward evaluates the policy network for n gathered states in one
	// batched call; rows alias network-internal buffers and must be consumed
	// before the next forward or update.
	vecForward(states []float64, n int) []float64
	// vecNewShell builds the per-env acting shell for env envIdx.
	vecNewShell(envIdx int) (vecShell, error)
	// vecLearn runs one boundary's gradient updates on the shared learner.
	vecLearn()
	// Experience counts transitions pushed into the shared replay pool.
	Experience() uint64
}

// vecShell is one environment's acting surface: a full policy instance with
// its own controller, observer, reward tracker, and RNG substreams, sharing
// the owner's learner networks and replay pool. Its inline act path is
// disabled; the trainer drives the observe/act halves at each boundary.
type vecShell interface {
	Trainable
	// vecObserve observes, rewards, and pushes the completed transition.
	vecObserve(now sim.Time)
	// vecStateInto copies the pending observation into one gather row.
	vecStateInto(dst []float64)
	// vecActRow consumes this env's row of the batched forward output.
	vecActRow(now sim.Time, row []float64)
}

// TrainVectorConfig drives VectorTrainer.
type TrainVectorConfig struct {
	// Envs is the number of environments run in lockstep (default 8).
	Envs int
	// Workers bounds the goroutines advancing environments between
	// boundaries (0 = all cores). Results are byte-identical at any value.
	Workers int
	// Episodes is how many trace periods to train for (default 8).
	Episodes int
	// EpisodeLen is the virtual duration of one episode (default: one trace
	// period).
	EpisodeLen sim.Time
	// Server configures each environment; env i of episode ep gets seed
	// SubSeed(Server.Seed, "vec-env/i") + ep·7919, so environments see
	// decoupled arrival processes that still vary per episode.
	Server server.Config
	// Trace is the request-rate trace every environment replays.
	Trace *workload.Trace
	// OnEpisode, when non-nil, runs after every episode with its aggregated
	// stats. A returned error aborts training with the stats so far.
	OnEpisode func(ep int, st EpisodeStats) error
}

// VectorTrainer trains one shared policy on E environments advanced in
// lockstep. Each control period has two phases:
//
//   - parallel: every environment's engine runs independently up to the
//     boundary (Server.RunSegment fanned out over internal/pool). Units
//     touch only per-env state, so any worker count computes the same thing.
//   - serial, ascending env index: observe each env and push its transition
//     into the shared replay (one fixed interleave order), gather all E
//     observations, evaluate the policy network once for the whole batch
//     (vecForward), act each env from its row, then run the boundary's
//     gradient updates (vecLearn).
//
// Shared state — learner networks, replay pool, write cursor — is touched
// only in the serial phase, so training is race-clean and byte-identical
// across worker counts, while per-step cost amortizes one batched forward
// and one update schedule over E transitions.
type VectorTrainer struct {
	cfg    TrainVectorConfig
	owner  VectorPolicy
	shells []vecShell
	engs   []*sim.Engine
	srvs   []*server.Server
	units  []pool.Unit
	// states is the preallocated [Envs×StateDim] observation gather buffer.
	states []float64
	// segEnd is the boundary the current parallel phase runs to; the pool
	// units close over the trainer and read it (and srvs) per call.
	segEnd sim.Time
}

// NewVectorTrainer builds the trainer and its per-env shells. The policy dp
// becomes the shared learner; it must not be driven by another server while
// vector training runs.
func NewVectorTrainer(dp VectorPolicy, cfg TrainVectorConfig) (*VectorTrainer, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("agent: TrainVectorConfig.Trace is required")
	}
	if cfg.Envs == 0 {
		cfg.Envs = 8
	}
	if cfg.Envs < 0 {
		return nil, fmt.Errorf("agent: negative env count %d", cfg.Envs)
	}
	if cfg.Episodes == 0 {
		cfg.Episodes = 8
	}
	if cfg.Episodes < 0 {
		return nil, fmt.Errorf("agent: negative episode count %d", cfg.Episodes)
	}
	if cfg.EpisodeLen == 0 {
		cfg.EpisodeLen = cfg.Trace.Period
	}
	if dp.vecPeriod() <= 0 {
		return nil, fmt.Errorf("agent: non-positive control period %v", dp.vecPeriod())
	}
	vt := &VectorTrainer{
		cfg:    cfg,
		owner:  dp,
		shells: make([]vecShell, cfg.Envs),
		engs:   make([]*sim.Engine, cfg.Envs),
		srvs:   make([]*server.Server, cfg.Envs),
		units:  make([]pool.Unit, cfg.Envs),
		states: make([]float64, cfg.Envs*StateDim),
	}
	for i := 0; i < cfg.Envs; i++ {
		shell, err := dp.vecNewShell(i)
		if err != nil {
			return nil, fmt.Errorf("agent: env %d shell: %w", i, err)
		}
		vt.shells[i] = shell
		vt.engs[i] = sim.NewEngine()
		i := i
		vt.units[i] = func(context.Context) error {
			vt.srvs[i].RunSegment(vt.segEnd)
			return nil
		}
	}
	return vt, nil
}

// Experience reports how many transitions have entered the shared replay
// pool — the throughput numerator for the vector benchmarks.
func (vt *VectorTrainer) Experience() uint64 { return vt.owner.Experience() }

// Train runs the vectorized loop for the configured episodes, returning
// per-episode statistics aggregated across environments.
func (vt *VectorTrainer) Train(ctx context.Context) ([]EpisodeStats, error) {
	vt.owner.SetTrain(true)
	for _, sh := range vt.shells {
		sh.SetTrain(true)
	}
	period := vt.owner.vecPeriod()
	rowW := vt.owner.vecRowWidth()
	stats := make([]EpisodeStats, 0, vt.cfg.Episodes)
	for ep := 0; ep < vt.cfg.Episodes; ep++ {
		// Arm every environment: engines Reset to recycle their warm event
		// arenas, fresh servers over them (the request pool is per-server
		// and re-pools within the episode).
		for i, sh := range vt.shells {
			sc := vt.cfg.Server
			sc.Seed = sim.SubSeed(vt.cfg.Server.Seed, fmt.Sprintf("vec-env/%d", i)) + int64(ep)*7919
			sc.DiscardLatencies = false
			vt.engs[i].Reset()
			srv, err := server.New(vt.engs[i], sc, sh)
			if err != nil {
				return stats, err
			}
			if err := srv.Begin(vt.cfg.Trace, vt.cfg.EpisodeLen); err != nil {
				return stats, err
			}
			vt.srvs[i] = srv
		}

		// Lockstep boundaries at 0, period, 2·period, … — at each, the
		// parallel phase settles every env at the boundary (the control
		// tick scheduled exactly there fires inside its segment), then the
		// serial phase observes, acts, and learns in ascending env order.
		for t := sim.Time(0); t < vt.cfg.EpisodeLen; t += period {
			if err := ctx.Err(); err != nil {
				return stats, err
			}
			vt.segEnd = t
			if err := pool.Run(ctx, vt.units, vt.cfg.Workers); err != nil {
				return stats, err
			}
			for _, sh := range vt.shells {
				sh.vecObserve(t)
			}
			for i, sh := range vt.shells {
				sh.vecStateInto(vt.states[i*StateDim : (i+1)*StateDim])
			}
			rows := vt.owner.vecForward(vt.states, vt.cfg.Envs)
			for i, sh := range vt.shells {
				sh.vecActRow(t, rows[i*rowW:(i+1)*rowW])
			}
			vt.owner.vecLearn()
		}

		// Drain every env to the episode end and settle results.
		vt.segEnd = vt.cfg.EpisodeLen
		if err := pool.Run(ctx, vt.units, vt.cfg.Workers); err != nil {
			return stats, err
		}
		st := EpisodeStats{Episode: ep}
		var timeouts, completions uint64
		for i, sh := range vt.shells {
			res := vt.srvs[i].End()
			st.Return += sh.Return()
			st.AvgPowerW += res.AvgPowerW
			st.P99Seconds += res.Latency.P99
			timeouts += res.Counters.Timeouts
			completions += res.Counters.Completions
		}
		inv := 1 / float64(vt.cfg.Envs)
		st.Return *= inv // mean episode return across environments
		st.AvgPowerW *= inv
		st.P99Seconds *= inv
		if completions > 0 {
			st.TimeoutRate = float64(timeouts) / float64(completions)
		}
		reportInto(&st, vt.owner)
		stats = append(stats, st)
		if vt.cfg.OnEpisode != nil {
			if err := vt.cfg.OnEpisode(ep, st); err != nil {
				return stats, fmt.Errorf("agent: episode %d hook: %w", ep, err)
			}
		}
	}
	vt.owner.SetTrain(false)
	for _, sh := range vt.shells {
		sh.SetTrain(false)
	}
	return stats, nil
}
