package agent

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// TrainConfig drives the training loop of Algorithm 2: the paper trains
// "with a long running workload", then tests the frozen policy on a short
// one.
type TrainConfig struct {
	// Episodes is how many trace periods to train for (default 8).
	Episodes int
	// EpisodeLen is the virtual duration of one episode (default: one
	// trace period).
	EpisodeLen sim.Time
	// Server configures the simulated latency-critical system; its Seed is
	// perturbed per episode so the agent sees varied arrivals.
	Server server.Config
	// Trace is the request-rate trace to train against.
	Trace *workload.Trace
	// OnEpisode, when non-nil, runs after every episode with its stats —
	// the hook point for periodic checkpointing (export the policy, Put
	// and Promote it into a ckpt.Registry). A returned error aborts
	// training with the stats collected so far.
	OnEpisode func(ep int, st EpisodeStats) error
}

// Trainable is a policy the training loop can drive: DeepPower (DDPG) and
// DQNPower both qualify.
type Trainable interface {
	server.Policy
	// SetTrain toggles exploration and learning.
	SetTrain(train bool)
	// Return reports the reward accumulated over the current episode.
	Return() float64
}

// LossReporter is a policy that exposes its most recent training loss; the
// trainers record it into EpisodeStats for any policy that implements it,
// instead of type-switching on concrete agents.
type LossReporter interface {
	LastCriticLoss() float64
}

// DivergenceReporter is a policy that counts learner updates rolled back by
// a divergence guard.
type DivergenceReporter interface {
	DivergenceCount() uint64
}

var (
	_ LossReporter       = (*DeepPower)(nil)
	_ LossReporter       = (*DQNPower)(nil)
	_ DivergenceReporter = (*DeepPower)(nil)
	_ DivergenceReporter = (*DQNPower)(nil)
)

// reportInto copies optional telemetry from a policy into episode stats.
func reportInto(st *EpisodeStats, dp Trainable) {
	if lr, ok := dp.(LossReporter); ok {
		st.CriticLoss = lr.LastCriticLoss()
	}
	if dr, ok := dp.(DivergenceReporter); ok {
		st.Divergences = dr.DivergenceCount()
	}
}

// EpisodeStats summarizes one training episode.
type EpisodeStats struct {
	Episode     int
	Return      float64 // summed reward
	AvgPowerW   float64
	TimeoutRate float64
	P99Seconds  float64
	CriticLoss  float64
	// Divergences is the learner's cumulative count of rolled-back
	// updates (non-finite loss or weights detected and recovered).
	Divergences uint64
}

// Train runs the policy through cfg.Episodes episodes, returning per-episode
// statistics. The policy's networks persist and improve across episodes.
func Train(dp Trainable, cfg TrainConfig) ([]EpisodeStats, error) {
	if cfg.Trace == nil {
		return nil, fmt.Errorf("agent: TrainConfig.Trace is required")
	}
	if cfg.Episodes == 0 {
		cfg.Episodes = 8
	}
	if cfg.Episodes < 0 {
		return nil, fmt.Errorf("agent: negative episode count %d", cfg.Episodes)
	}
	if cfg.EpisodeLen == 0 {
		cfg.EpisodeLen = cfg.Trace.Period
	}
	dp.SetTrain(true)
	stats := make([]EpisodeStats, 0, cfg.Episodes)
	// One engine serves the whole run: Reset recycles its event arena and
	// free-list between episodes, so episode N+1 schedules into the warm
	// storage episode N grew instead of reallocating it.
	eng := sim.NewEngine()
	for ep := 0; ep < cfg.Episodes; ep++ {
		sc := cfg.Server
		sc.Seed = cfg.Server.Seed + int64(ep)*7919
		sc.DiscardLatencies = false
		eng.Reset()
		srv, err := server.New(eng, sc, dp)
		if err != nil {
			return stats, err
		}
		res, err := srv.Run(cfg.Trace, cfg.EpisodeLen)
		if err != nil {
			return stats, err
		}
		st := EpisodeStats{
			Episode:     ep,
			Return:      dp.Return(),
			AvgPowerW:   res.AvgPowerW,
			TimeoutRate: res.TimeoutRate,
			P99Seconds:  res.Latency.P99,
		}
		reportInto(&st, dp)
		stats = append(stats, st)
		if cfg.OnEpisode != nil {
			if err := cfg.OnEpisode(ep, st); err != nil {
				return stats, fmt.Errorf("agent: episode %d hook: %w", ep, err)
			}
		}
	}
	dp.SetTrain(false)
	return stats, nil
}

// Evaluate runs the policy (without exploration or learning) once and
// returns the result.
func Evaluate(dp Trainable, cfg server.Config, trace *workload.Trace, duration sim.Time) (*server.Result, error) {
	return EvaluateWith(sim.NewEngine(), dp, cfg, trace, duration)
}

// EvaluateWith is Evaluate on a caller-provided engine: the engine is Reset
// first, so repeated evaluations (parameter sweeps, method comparisons, the
// vectrain harness) recycle one warm event arena instead of growing a fresh
// engine per call.
func EvaluateWith(eng *sim.Engine, dp Trainable, cfg server.Config, trace *workload.Trace, duration sim.Time) (*server.Result, error) {
	dp.SetTrain(false)
	eng.Reset()
	srv, err := server.New(eng, cfg, dp)
	if err != nil {
		return nil, err
	}
	return srv.Run(trace, duration)
}
