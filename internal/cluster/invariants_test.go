package cluster

import (
	"context"
	"fmt"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// clSampler serves fixed-size requests for the invariant suite.
type clSampler struct{ service sim.Time }

func (s clSampler) Sample(*sim.RNG) app.Work {
	return app.Work{ServiceRef: s.service, Features: []float64{1}}
}
func (s clSampler) FeatureDim() int { return 1 }

func clProfile(service, sla sim.Time, workers int) *app.Profile {
	return &app.Profile{
		Name:    "cl",
		SLA:     sla,
		Workers: workers,
		RefFreq: 2.1,
		Sampler: clSampler{service: service},
	}
}

// clPolicy pins every core at one frequency.
type clPolicy struct {
	server.BasePolicy
	f cpu.Freq
}

func (p *clPolicy) Name() string { return "fixed" }
func (p *clPolicy) OnTick(sim.Time) {
	for i := 0; i < p.Ctl.NumCores(); i++ {
		p.Ctl.SetFreq(i, p.f)
	}
}

// jsqChecker wraps JSQ and asserts, at every pick, that the chosen shard's
// backlog is minimal — JSQ must never route to a shard whose backlog
// strictly exceeds another's.
type jsqChecker struct {
	JSQ
	violations int
}

func (b *jsqChecker) Pick(at sim.Time, shards []ShardState, pending []int) int {
	i := b.JSQ.Pick(at, shards, pending)
	if i >= 0 {
		got := shards[i].Backlog(pending[i])
		for j := range shards {
			if shards[j].Backlog(pending[j]) < got {
				b.violations++
				break
			}
		}
	}
	return i
}

// clShardConfigs builds n self-contained fixed-frequency shards.
func clShardConfigs(n, workers int, service, sla sim.Time, seed int64) []ShardConfig {
	cfgs := make([]ShardConfig, n)
	for i := range cfgs {
		cfgs[i] = ShardConfig{
			Server: server.Config{
				App:  clProfile(service, sla, workers),
				Seed: sim.SubSeed(seed, fmt.Sprintf("shard/%d", i)),
			},
			Policy: &clPolicy{f: 2.1},
		}
	}
	return cfgs
}

// TestClusterRandomizedInvariants is the fleet tier's 100-seed property
// suite, in the style of internal/exp's randomized invariants: for each
// randomized fleet configuration it checks fleet-wide request conservation
// (routed = Σ per-shard completed + in-flight, with timeouts a subset of
// completions), the round-robin fairness bound, and the JSQ
// never-route-to-a-strictly-longer-queue property at every routing decision.
func TestClusterRandomizedInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("100 randomized fleet simulations")
	}
	const iters = 100
	for seed := int64(0); seed < iters; seed++ {
		rng := sim.NewRNG(seed).Stream("cluster-invariants")
		nShards := 1 + rng.Intn(4)
		workers := 1 + rng.Intn(3)
		service := sim.Time(200+rng.Intn(800)) * sim.Microsecond
		sla := sim.Time(2+rng.Intn(8)) * sim.Millisecond
		rate := (100 + 300*float64(workers)*rng.Float64()) * float64(nShards)
		dur := 500 * sim.Millisecond
		epoch := sim.Time(20+rng.Intn(80)) * sim.Millisecond
		withGlobal := rng.Intn(2) == 0

		run := func(bal Balancer) *Result {
			t.Helper()
			cfg := Config{
				Trace:    workload.Constant(rate, dur),
				Duration: dur,
				Epoch:    epoch,
				Seed:     seed,
				Balancer: bal,
			}
			if withGlobal {
				cfg.Global = &GlobalConfig{Every: 2, PowerBudgetW: 30 * float64(nShards)}
			}
			res, err := Run(context.Background(), cfg,
				clShardConfigs(nShards, workers, service, sla, seed), 1+int(seed%4))
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res
		}

		// Invariant 1 — fleet request conservation: every routed request is
		// in exactly one shard, and within each shard is completed or still
		// in flight; timeouts are completions past the deadline.
		rr := run(&RoundRobin{})
		var sumRouted uint64
		for _, n := range rr.Routed {
			sumRouted += n
		}
		if rr.TotalRouted != sumRouted {
			t.Fatalf("seed %d: routed %d != Σ per-shard %d", seed, rr.TotalRouted, sumRouted)
		}
		if rr.TotalRouted != rr.Arrivals {
			t.Fatalf("seed %d: routed %d requests but shards saw %d arrivals",
				seed, rr.TotalRouted, rr.Arrivals)
		}
		if rr.Arrivals != rr.Completions+rr.InFlight {
			t.Fatalf("seed %d: conservation violated: %d arrivals vs %d completed + %d in flight",
				seed, rr.Arrivals, rr.Completions, rr.InFlight)
		}
		if rr.Timeouts > rr.Completions {
			t.Fatalf("seed %d: %d timeouts exceed %d completions", seed, rr.Timeouts, rr.Completions)
		}
		if rr.TotalRouted == 0 || rr.Completions == 0 {
			t.Fatalf("seed %d: degenerate run %+v", seed, rr)
		}

		// Invariant 2 — round-robin fairness: per-shard routed counts differ
		// by at most one.
		min, max := rr.Routed[0], rr.Routed[0]
		for _, n := range rr.Routed[1:] {
			if n < min {
				min = n
			}
			if n > max {
				max = n
			}
		}
		if max-min > 1 {
			t.Fatalf("seed %d: round-robin unfair: routed %v", seed, rr.Routed)
		}

		// Invariant 3 — JSQ property, checked at every routing decision.
		checker := &jsqChecker{}
		jr := run(checker)
		if checker.violations > 0 {
			t.Fatalf("seed %d: JSQ routed to a strictly longer queue %d times", seed, checker.violations)
		}
		if jr.TotalRouted != rr.TotalRouted {
			t.Fatalf("seed %d: balancers saw different arrival processes: %d vs %d",
				seed, jr.TotalRouted, rr.TotalRouted)
		}
	}
}

// TestClusterWorkerCountEquivalence pins the package-level determinism
// contract directly (the harness-level test lives in internal/exp): the same
// fleet advanced with 1 worker and with 8 yields identical results.
func TestClusterWorkerCountEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated fleet simulations")
	}
	for _, name := range BalancerNames() {
		results := make([]*Result, 2)
		for i, workers := range []int{1, 8} {
			bal, err := NewBalancer(name)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(context.Background(), Config{
				Trace:    workload.Constant(800, sim.Second),
				Duration: sim.Second,
				Epoch:    50 * sim.Millisecond,
				Seed:     7,
				Balancer: bal,
				Global:   &GlobalConfig{Every: 3, PowerBudgetW: 120},
			}, clShardConfigs(6, 2, 500*sim.Microsecond, 5*sim.Millisecond, 7), workers)
			if err != nil {
				t.Fatal(err)
			}
			results[i] = res
		}
		a, b := results[0], results[1]
		if a.String() != b.String() {
			t.Errorf("%s: results differ between workers=1 and workers=8:\n  %s\n  %s", name, a, b)
		}
		for i := range a.Routed {
			if a.Routed[i] != b.Routed[i] {
				t.Errorf("%s: shard %d routed %d vs %d", name, i, a.Routed[i], b.Routed[i])
			}
		}
		if fmt.Sprint(a.Series) != fmt.Sprint(b.Series) {
			t.Errorf("%s: fleet series differ across worker counts", name)
		}
	}
}
