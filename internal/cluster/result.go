package cluster

import (
	"fmt"
	"sort"

	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// EpochRow is one fleet time-series sample: telemetry summed over all shards
// across SeriesEvery control epochs.
type EpochRow struct {
	// At is the virtual time at the end of the sampled window.
	At sim.Time
	// Arrivals, Completions, Timeouts are fleet totals within the window.
	Arrivals    uint64
	Completions uint64
	Timeouts    uint64
	// EnergyJ is fleet socket energy consumed within the window.
	EnergyJ float64
	// PowerW is EnergyJ over the window length.
	PowerW float64
	// Queue is the total queued-request count at the window's end.
	Queue int
}

// Result summarizes one fleet campaign.
type Result struct {
	// Balancer is the routing policy's name.
	Balancer string
	// Shards is the fleet size.
	Shards int
	// Duration and Epoch echo the campaign config.
	Duration sim.Time
	Epoch    sim.Time

	// TotalRouted is the number of fleet requests the balancer dispatched.
	TotalRouted uint64
	// Routed[i] is how many of them went to shard i.
	Routed []uint64

	// Arrivals, Completions, Timeouts, InFlight are fleet request totals at
	// campaign end. Timeouts are completions past the SLA deadline (a subset
	// of Completions, matching the single-server accounting); InFlight are
	// requests still queued or in service when the campaign ended.
	Arrivals    uint64
	Completions uint64
	Timeouts    uint64
	InFlight    uint64

	// EnergyJ is total fleet socket energy (per-shard measured windows, so
	// warmup exclusions apply) and AvgPowerW the fleet-wide average draw —
	// the sum of per-shard average powers over their measured windows.
	EnergyJ   float64
	AvgPowerW float64

	// TimeoutRate is fleet timeouts / completions, and TimeoutBudgetMet the
	// paper's Eq. 2 1% budget applied fleet-wide.
	TimeoutRate      float64
	TimeoutBudgetMet bool

	// WorstP99 and MedianP99 are the highest and median per-shard p99
	// latencies in seconds. A fleet has no single exact p99 without merging
	// every sample; per-shard digests bracket it and the worst shard is
	// what an operator pages on.
	WorstP99  float64
	MedianP99 float64

	// CappedWrites counts governor writes clamped by the global tier's
	// power-budget frequency ceilings, summed over shards.
	CappedWrites uint64

	// PerShard holds each shard's full single-server result.
	PerShard []*server.Result
	// Series is the fleet time series (one row per SeriesEvery epochs).
	Series []EpochRow
}

// finish ends every shard's run and folds the per-shard results into the
// fleet summary.
func (r *Result) finish(shards []*shard) {
	r.Routed = make([]uint64, len(shards))
	r.PerShard = make([]*server.Result, len(shards))
	p99s := make([]float64, 0, len(shards))
	for i, sh := range shards {
		sr := sh.srv.End()
		r.PerShard[i] = sr
		r.Routed[i] = sh.routed
		c := sr.Counters
		r.Arrivals += c.Arrivals
		r.Completions += c.Completions
		r.Timeouts += c.Timeouts
		r.InFlight += c.Arrivals - c.Completions
		r.EnergyJ += sr.EnergyJ
		r.AvgPowerW += sr.AvgPowerW
		if sr.FaultStats != nil {
			r.CappedWrites += sr.FaultStats["cluster.capped_writes"]
		}
		if sr.Latency.N > 0 {
			p99s = append(p99s, sr.Latency.P99)
		}
	}
	if r.Completions > 0 {
		r.TimeoutRate = float64(r.Timeouts) / float64(r.Completions)
	}
	r.TimeoutBudgetMet = r.TimeoutRate <= 0.01
	if len(p99s) > 0 {
		sort.Float64s(p99s)
		r.WorstP99 = p99s[len(p99s)-1]
		r.MedianP99 = p99s[len(p99s)/2]
	}
}

// String renders a one-line fleet report.
func (r *Result) String() string {
	return fmt.Sprintf(
		"fleet/%s: shards=%d routed=%d energy=%.1fkJ avg=%.1fW worstP99=%v medP99=%v timeout=%.3f%% budgetMet=%v",
		r.Balancer, r.Shards, r.TotalRouted, r.EnergyJ/1e3, r.AvgPowerW,
		sim.Seconds(r.WorstP99), sim.Seconds(r.MedianP99),
		r.TimeoutRate*100, r.TimeoutBudgetMet)
}
