package cluster

import (
	"fmt"
	"math"

	"github.com/deeppower/deeppower/internal/sim"
)

// ShardState is the per-shard telemetry snapshot the balancer and the global
// tier act on. Snapshots are taken at control-epoch boundaries — the fleet
// tier sees the world with up to one epoch of staleness, which is exactly
// what makes concurrent shard advancement deterministic: no routing decision
// ever depends on mid-epoch state.
type ShardState struct {
	// ID is the shard index.
	ID int
	// Cores is the shard's worker-core count.
	Cores int
	// Online is how many cores accepted dispatches at the snapshot (cores
	// can be down under a fault campaign).
	Online int
	// Queue is the number of queued (undispatched) requests.
	Queue int
	// Busy is the number of cores processing a request.
	Busy int
	// Share is the global tier's request-share weight for this shard
	// (fleet mean 1; balancers that honor shares divide load by it).
	Share float64
	// FreqCapGHz is the global tier's power-budget frequency ceiling
	// currently enforced on the shard (0 = uncapped).
	FreqCapGHz float64
	// EffCost is the shard's marginal-energy proxy: the power one active
	// core draws at the ladder maximum (watts). Heterogeneous fleets have
	// different per-shard power models, so this is the signal that lets a
	// power-aware balancer prefer efficient machines.
	EffCost float64
	// PowerW is the shard's average socket power over the last epoch.
	PowerW float64
	// WindowTimeoutRate is timeouts/completions over the last epoch
	// (0 when the shard completed nothing).
	WindowTimeoutRate float64
}

// Backlog is the shard's apparent outstanding work at routing time: queued
// plus in-service requests from the snapshot, plus everything already routed
// there in the current epoch.
func (st *ShardState) Backlog(pending int) int {
	return st.Queue + st.Busy + pending
}

// Balancer routes fleet-level requests to shards. Implementations must be
// deterministic pure functions of (at, shards, pending) and their own
// internal routing state: the cluster calls Pick serially, in arrival order,
// so serial and parallel fleet runs route identically.
type Balancer interface {
	// Name identifies the balancer in artifacts.
	Name() string
	// Pick returns the destination shard index for a request arriving at
	// time at. shards holds the last epoch-boundary snapshots; pending[i]
	// counts requests already routed to shard i in the current epoch. Pick
	// must return an index in [0, len(shards)) — or -1 for an empty fleet.
	Pick(at sim.Time, shards []ShardState, pending []int) int
}

// Balancer registry names.
const (
	RoundRobinName = "round-robin"
	JSQName        = "jsq"
	PowerAwareName = "power-aware"
)

// BalancerNames lists the built-in balancers in comparison order.
func BalancerNames() []string {
	return []string{RoundRobinName, JSQName, PowerAwareName}
}

// NewBalancer constructs a fresh built-in balancer by name. Balancers carry
// routing state (the round-robin cursor), so every campaign needs its own.
func NewBalancer(name string) (Balancer, error) {
	switch name {
	case RoundRobinName:
		return &RoundRobin{}, nil
	case JSQName:
		return &JSQ{}, nil
	case PowerAwareName:
		return &PowerAware{}, nil
	}
	return nil, fmt.Errorf("cluster: unknown balancer %q", name)
}

// RoundRobin cycles through shards in index order, ignoring all telemetry.
// Its fairness contract: after n picks, per-shard counts differ by at most
// one.
type RoundRobin struct {
	next int
}

// Name implements Balancer.
func (b *RoundRobin) Name() string { return RoundRobinName }

// Pick implements Balancer.
func (b *RoundRobin) Pick(_ sim.Time, shards []ShardState, _ []int) int {
	if len(shards) == 0 {
		return -1
	}
	if b.next >= len(shards) {
		b.next = 0
	}
	i := b.next
	b.next++
	return i
}

// JSQ is join-shortest-queue over the epoch-boundary view: it routes to the
// shard with the smallest backlog (snapshot queue + busy + already routed
// this epoch), breaking ties toward the lowest index. It never routes to a
// shard whose backlog strictly exceeds another's.
type JSQ struct{}

// Name implements Balancer.
func (b *JSQ) Name() string { return JSQName }

// Pick implements Balancer.
func (b *JSQ) Pick(_ sim.Time, shards []ShardState, pending []int) int {
	best, bestLen := -1, 0
	for i := range shards {
		n := shards[i].Backlog(pending[i])
		if best == -1 || n < bestLen {
			best, bestLen = i, n
		}
	}
	return best
}

// PowerAware routes on a cost blending per-core load against the shard's
// marginal energy, honoring the global tier's request shares: efficient,
// lightly loaded, well-shared shards win. With EnergyWeight 0 and uniform
// shares it degenerates to per-core-normalized JSQ.
type PowerAware struct {
	// EnergyWeight scales the (dimensionless, fleet-min-normalized)
	// marginal-energy term against the per-core load term. Zero means the
	// default; use NoEnergyTerm for a pure load balancer.
	EnergyWeight float64
	// NoEnergyTerm disables the energy term entirely.
	NoEnergyTerm bool
}

// DefaultEnergyWeight is the routing cost's energy-vs-load trade-off used
// when PowerAware.EnergyWeight is zero. It is deliberately small: under the
// global tier, efficiency-proportional shares already steer the bulk of the
// traffic toward efficient machines, so the balancer's energy term only
// needs to break near-ties. Large weights starve inefficient shards until
// their backlog forces high-frequency catch-up — and the voltage-squared
// cost of those catch-up bursts exceeds what the generation gap saves (a
// 100-shard sweep measured w=2 *above* round-robin fleet energy, w≤1 below
// it, best near 0.25).
const DefaultEnergyWeight = 0.25

// offlineCost dominates any plausible load/energy cost so fully offline
// shards are picked only when every shard is down.
const offlineCost = 1e9

func (b *PowerAware) weight() float64 {
	if b.NoEnergyTerm {
		return 0
	}
	if b.EnergyWeight > 0 && !math.IsInf(b.EnergyWeight, 0) && !math.IsNaN(b.EnergyWeight) {
		return b.EnergyWeight
	}
	return DefaultEnergyWeight
}

// Name implements Balancer.
func (b *PowerAware) Name() string { return PowerAwareName }

// Pick implements Balancer. It is total on arbitrary (even non-finite)
// snapshot values: any shard whose cost fails to evaluate finitely is
// considered last, and a non-empty fleet always yields a valid index.
func (b *PowerAware) Pick(_ sim.Time, shards []ShardState, pending []int) int {
	if len(shards) == 0 {
		return -1
	}
	// Normalize the energy term by the fleet's best (lowest finite,
	// positive) marginal cost so it is dimensionless and zero-based.
	minEff := math.Inf(1)
	for i := range shards {
		if e := shards[i].EffCost; e > 0 && !math.IsInf(e, 1) && e < minEff {
			minEff = e
		}
	}
	w := b.weight()
	best, bestCost := -1, math.Inf(1)
	for i := range shards {
		st := &shards[i]
		cores := st.Online
		if cores <= 0 {
			cores = st.Cores
		}
		if cores <= 0 {
			cores = 1
		}
		load := float64(st.Backlog(pending[i])) / float64(cores)
		share := st.Share
		if !(share > 0) || math.IsInf(share, 0) || math.IsNaN(share) {
			share = minShare
		}
		cost := load / share
		if w > 0 && !math.IsInf(minEff, 1) && st.EffCost > 0 && !math.IsInf(st.EffCost, 1) {
			cost += w * (st.EffCost/minEff - 1)
		}
		if st.Online == 0 && st.Cores > 0 {
			cost += offlineCost
		}
		// NaN costs (hostile snapshot values) compare false and are skipped.
		if cost < bestCost || best == -1 && !math.IsNaN(cost) {
			best, bestCost = i, cost
		}
	}
	if best == -1 {
		// Every cost was NaN; fall back to the lowest index so the fleet
		// keeps serving.
		return 0
	}
	return best
}
