package cluster

import (
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

// state is a test shorthand for a healthy shard snapshot.
func state(id, cores, queue, busy int, eff float64) ShardState {
	return ShardState{
		ID: id, Cores: cores, Online: cores,
		Queue: queue, Busy: busy, Share: 1, EffCost: eff,
	}
}

func TestNewBalancer(t *testing.T) {
	for _, name := range BalancerNames() {
		b, err := NewBalancer(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if b.Name() != name {
			t.Errorf("NewBalancer(%q).Name() = %q", name, b.Name())
		}
	}
	if _, err := NewBalancer("nope"); err == nil {
		t.Error("unknown balancer name did not error")
	}
}

// TestBalancerPickTable drives every balancer through the shared edge cases
// (empty fleet, single shard, saturation, ties) plus per-balancer routing
// expectations.
func TestBalancerPickTable(t *testing.T) {
	saturated := []ShardState{
		state(0, 2, 10, 2, 8), state(1, 2, 10, 2, 8), state(2, 2, 10, 2, 8),
	}
	cases := []struct {
		name     string
		balancer string
		shards   []ShardState
		pending  []int
		want     int
	}{
		{"empty fleet/rr", RoundRobinName, nil, nil, -1},
		{"empty fleet/jsq", JSQName, nil, nil, -1},
		{"empty fleet/power", PowerAwareName, nil, nil, -1},

		{"single shard/rr", RoundRobinName, []ShardState{state(0, 2, 5, 2, 8)}, []int{0}, 0},
		{"single shard/jsq", JSQName, []ShardState{state(0, 2, 5, 2, 8)}, []int{0}, 0},
		{"single shard/power", PowerAwareName, []ShardState{state(0, 2, 5, 2, 8)}, []int{0}, 0},

		// All shards equally saturated: deterministic lowest-index tie-break.
		{"saturated tie/jsq", JSQName, saturated, []int{0, 0, 0}, 0},
		{"saturated tie/power", PowerAwareName, saturated, []int{0, 0, 0}, 0},

		// JSQ routes to the strictly shortest backlog, counting same-epoch
		// pending routes.
		{"jsq shortest", JSQName,
			[]ShardState{state(0, 2, 4, 2, 8), state(1, 2, 1, 2, 8), state(2, 2, 2, 2, 8)},
			[]int{0, 0, 0}, 1},
		{"jsq pending breaks snapshot", JSQName,
			[]ShardState{state(0, 2, 1, 0, 8), state(1, 2, 2, 0, 8)},
			[]int{4, 0}, 1},

		// Power-aware prefers the efficient shard at equal load, and an
		// offline shard only when everything is down.
		{"power prefers efficient", PowerAwareName,
			[]ShardState{state(0, 2, 1, 1, 12), state(1, 2, 1, 1, 8)},
			[]int{0, 0}, 1},
		{"power load beats efficiency", PowerAwareName,
			[]ShardState{state(0, 2, 20, 2, 8), state(1, 2, 0, 0, 12)},
			[]int{0, 0}, 1},
		{"power avoids offline", PowerAwareName,
			[]ShardState{
				{ID: 0, Cores: 2, Online: 0, Share: 1, EffCost: 8},
				{ID: 1, Cores: 2, Online: 2, Queue: 5, Busy: 2, Share: 1, EffCost: 12},
			},
			[]int{0, 0}, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b, err := NewBalancer(tc.balancer)
			if err != nil {
				t.Fatal(err)
			}
			if got := b.Pick(0, tc.shards, tc.pending); got != tc.want {
				t.Errorf("Pick = %d, want %d", got, tc.want)
			}
		})
	}
}

// TestRoundRobinFairness is the round-robin contract: after any number of
// picks, per-shard counts differ by at most one.
func TestRoundRobinFairness(t *testing.T) {
	shards := []ShardState{state(0, 2, 0, 0, 8), state(1, 2, 0, 0, 8), state(2, 2, 0, 0, 8)}
	pending := make([]int, len(shards))
	b := &RoundRobin{}
	counts := make([]int, len(shards))
	for n := 1; n <= 100; n++ {
		i := b.Pick(0, shards, pending)
		if i < 0 || i >= len(shards) {
			t.Fatalf("pick %d: invalid index %d", n, i)
		}
		counts[i]++
		min, max := counts[0], counts[0]
		for _, c := range counts[1:] {
			if c < min {
				min = c
			}
			if c > max {
				max = c
			}
		}
		if max-min > 1 {
			t.Fatalf("after %d picks counts diverge: %v", n, counts)
		}
	}
}

// TestPickDeterminism: identical inputs into fresh balancers produce
// identical pick sequences (the property cluster.Run's serial routing leans
// on).
func TestPickDeterminism(t *testing.T) {
	shards := []ShardState{
		state(0, 2, 3, 1, 8), state(1, 4, 1, 2, 10), state(2, 1, 0, 1, 12),
	}
	for _, name := range BalancerNames() {
		a, _ := NewBalancer(name)
		b, _ := NewBalancer(name)
		pa, pb := make([]int, len(shards)), make([]int, len(shards))
		for n := 0; n < 50; n++ {
			ia := a.Pick(sim.Time(n), shards, pa)
			ib := b.Pick(sim.Time(n), shards, pb)
			if ia != ib {
				t.Fatalf("%s: pick %d diverged: %d vs %d", name, n, ia, ib)
			}
			pa[ia]++
			pb[ib]++
		}
	}
}

// TestPowerAwareHostileStates feeds non-finite telemetry straight into the
// scoring function: picks must stay in range whatever the snapshot claims.
func TestPowerAwareHostileStates(t *testing.T) {
	nan, inf := math.NaN(), math.Inf(1)
	cases := [][]ShardState{
		{{ID: 0, Cores: 2, Online: 2, EffCost: nan, Share: nan}},
		{{ID: 0, Cores: 0, Online: 0, EffCost: inf, Share: -1}},
		{
			{ID: 0, Cores: 2, Online: 2, Queue: -5, Busy: -1, EffCost: -inf, Share: 0},
			{ID: 1, Cores: 2, Online: 2, EffCost: inf, Share: inf},
		},
	}
	b := &PowerAware{}
	for i, shards := range cases {
		pending := make([]int, len(shards))
		if got := b.Pick(0, shards, pending); got < 0 || got >= len(shards) {
			t.Errorf("case %d: Pick = %d out of range [0,%d)", i, got, len(shards))
		}
	}
}

// FuzzPowerAwarePick fuzzes the power-aware scoring function with raw bit
// patterns (NaNs, infinities, negative counts included): it must never panic
// and must always return a valid shard index for a non-empty fleet.
func FuzzPowerAwarePick(f *testing.F) {
	f.Add(uint8(3), int64(1), uint64(0x3FF0000000000000), uint64(0x4000000000000000), int64(2), int64(1), uint64(0))
	f.Add(uint8(1), int64(-4), uint64(0x7FF8000000000000), uint64(0xFFF0000000000000), int64(0), int64(-1), uint64(0x7FF0000000000000))
	f.Add(uint8(8), int64(1000), uint64(0), uint64(0x0010000000000000), int64(-3), int64(64), uint64(0x4030000000000000))
	f.Fuzz(func(t *testing.T, n uint8, queue int64, effBits, shareBits uint64, cores, online int64, weightBits uint64) {
		shards := make([]ShardState, int(n%8)+1)
		pending := make([]int, len(shards))
		for i := range shards {
			k := int64(i)
			shards[i] = ShardState{
				ID:      i,
				Cores:   int(cores + k),
				Online:  int(online - k),
				Queue:   int(queue * (k + 1)),
				Busy:    int(queue - k),
				Share:   math.Float64frombits(shareBits + uint64(i)),
				EffCost: math.Float64frombits(effBits ^ uint64(i)),
			}
			pending[i] = int(queue) >> uint(i%4)
		}
		b := &PowerAware{EnergyWeight: math.Float64frombits(weightBits)}
		got := b.Pick(0, shards, pending)
		if got < 0 || got >= len(shards) {
			t.Fatalf("Pick = %d out of range [0,%d)", got, len(shards))
		}
	})
}
