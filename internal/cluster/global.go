package cluster

import (
	"math"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// GlobalConfig parameterizes the fleet-level controller — the global tier of
// Liu et al.'s hierarchical framework. Every Every epochs it reassigns
// per-shard request shares from window telemetry (shedding load off shards
// breaching the timeout budget, steering the remainder toward efficient
// machines) and, when PowerBudgetW is set, splits the fleet power budget
// into per-shard frequency ceilings. The per-shard DVFS decisions below the
// caps stay with each shard's local agent — the local tier.
type GlobalConfig struct {
	// Every is the reassignment cadence in control epochs (default 10).
	Every int
	// TimeoutBudget is the per-shard window timeout-rate budget that
	// triggers load shedding (default 0.01, the paper's Eq. 2 rate).
	TimeoutBudget float64
	// PowerBudgetW is the fleet-wide average power budget (0 = uncapped).
	// Shards drawing more than their load-proportional slice get their
	// frequency ceiling stepped down one ladder notch; shards comfortably
	// under it get the ceiling stepped back up.
	PowerBudgetW float64
	// Adapt is the share adaptation rate per reassignment in (0, 1]
	// (default 0.25).
	Adapt float64
}

func (c GlobalConfig) withDefaults() GlobalConfig {
	if c.Every <= 0 {
		c.Every = 10
	}
	if c.TimeoutBudget <= 0 {
		c.TimeoutBudget = 0.01
	}
	if c.Adapt <= 0 || c.Adapt > 1 {
		c.Adapt = 0.25
	}
	return c
}

// Share bounds: a shard is never starved below minShare of its fair share
// (it must keep completing requests so its telemetry stays live) and never
// loaded past maxShare of it.
const (
	minShare = 0.05
	maxShare = 4.0
)

// globalTier holds the controller's state: current shares, efficiency-
// preferred share targets, per-shard power floors, and frequency ceilings.
type globalTier struct {
	cfg    GlobalConfig
	share  []float64
	target []float64
	floor  []float64  // minimum feasible draw: uncore + all cores idle at Min
	caps   []cpu.Freq // 0 = uncapped
}

// newGlobalTier derives the efficiency-preferred share targets: shares
// proportional to inverse marginal energy (normalized to mean 1), honoring
// relative core counts. A homogeneous fleet gets uniform targets.
func newGlobalTier(cfg GlobalConfig, shards []*shard) *globalTier {
	g := &globalTier{
		cfg:    cfg.withDefaults(),
		share:  make([]float64, len(shards)),
		target: make([]float64, len(shards)),
		floor:  make([]float64, len(shards)),
		caps:   make([]cpu.Freq, len(shards)),
	}
	sum := 0.0
	for i, sh := range shards {
		w := 1.0
		if sh.effCost > 0 && !math.IsInf(sh.effCost, 0) {
			w = 1 / sh.effCost
		}
		g.target[i] = w
		g.floor[i] = sh.floorW
		sum += w
	}
	for i := range g.target {
		if sum > 0 {
			g.target[i] *= float64(len(shards)) / sum
		} else {
			g.target[i] = 1
		}
		g.share[i] = 1
	}
	return g
}

// reassign is one global-tier control step over the latest epoch snapshots.
// It mutates shares toward the efficiency targets, sheds load off breaching
// shards, renormalizes to mean 1, and (under a power budget) steps the
// per-shard frequency ceilings. Deterministic: pure arithmetic over the
// snapshots in shard order.
func (g *globalTier) reassign(states []ShardState) {
	a := g.cfg.Adapt
	for i := range states {
		if states[i].WindowTimeoutRate > g.cfg.TimeoutBudget {
			// The shard is breaching: shed load multiplicatively. The local
			// guard (when configured) handles the latency emergency; the
			// global tier just stops feeding it.
			g.share[i] *= 1 - a
		} else {
			g.share[i] += a * (g.target[i] - g.share[i])
		}
		g.share[i] = math.Min(math.Max(g.share[i], minShare), maxShare)
	}
	// Renormalize to mean 1 so shares stay comparable across steps.
	sum := 0.0
	for _, s := range g.share {
		sum += s
	}
	if sum > 0 {
		k := float64(len(g.share)) / sum
		for i := range g.share {
			g.share[i] *= k
		}
	}
}

// rebudget enforces the fleet power budget. Each shard's slice is its
// minimum feasible draw (uncore plus idle cores at the ladder floor — power
// no frequency cap can remove) plus a share-proportional cut of the
// remaining discretionary headroom; a purely share-proportional split would
// hand low-share shards a slice below their idle floor and ratchet them
// into a permanent frequency-floor tarpit. The ceiling moves one ladder
// step per reassignment toward compliance — except on shards breaching the
// timeout budget, which get relief instead (QoS overrides power capping).
// When the budget cannot even cover the fleet's idle floors, slices degrade
// to share-proportional.
func (g *globalTier) rebudget(states []ShardState, shards []*shard) {
	if g.cfg.PowerBudgetW <= 0 {
		return
	}
	sum, sumFloor := 0.0, 0.0
	for i, s := range g.share {
		sum += s
		sumFloor += g.floor[i]
	}
	if sum <= 0 {
		return
	}
	headroom := g.cfg.PowerBudgetW - sumFloor
	for i := range states {
		var slice float64
		if headroom > 0 {
			slice = g.floor[i] + headroom*g.share[i]/sum
		} else {
			slice = g.cfg.PowerBudgetW * g.share[i] / sum
		}
		lad := shards[i].ladder
		switch {
		case states[i].WindowTimeoutRate > g.cfg.TimeoutBudget:
			// QoS override: never tighten the ceiling on a shard already
			// breaching its timeout window. A capped shard cannot burn down
			// backlog, the backlog keeps its power at the slice, and the
			// ceiling ratchets to the ladder floor — a death spiral in which
			// a transient fault becomes a permanent outage. Power capping
			// yields to the latency emergency, one step of relief per
			// reassignment; the budget re-engages once the window is healthy.
			if g.caps[i] != 0 {
				if next := g.caps[i] + lad.Step; next >= lad.Max {
					g.caps[i] = 0
				} else {
					g.caps[i] = lad.Quantize(next)
				}
			}
		case states[i].PowerW > slice:
			cur := g.caps[i]
			if cur == 0 {
				cur = lad.Max
			}
			if next := cur - lad.Step; next >= lad.Min {
				g.caps[i] = lad.Quantize(next)
			} else {
				g.caps[i] = lad.Min
			}
		case states[i].PowerW < 0.8*slice && g.caps[i] != 0:
			next := g.caps[i] + lad.Step
			if next >= lad.Max {
				g.caps[i] = 0 // back to uncapped
			} else {
				g.caps[i] = lad.Quantize(next)
			}
		}
		shards[i].inj.setCap(g.caps[i])
	}
}

// capInjector is the enforcement point for the global tier's power-budget
// frequency ceilings. It chains an optional inner fault injector (the fault
// campaign) and clamps both new governor writes and the standing target to
// the budget cap, reusing the server's existing FreqCap machinery.
type capInjector struct {
	inner  server.FaultInjector
	cap    cpu.Freq // 0 = uncapped; written only between epochs
	capped uint64
}

func (ci *capInjector) setCap(c cpu.Freq) { ci.cap = c }

// OnFreqSet implements server.FaultInjector.
func (ci *capInjector) OnFreqSet(now sim.Time, core int, f cpu.Freq) (cpu.Freq, sim.Time, bool) {
	var delay sim.Time
	var drop bool
	if ci.inner != nil {
		f, delay, drop = ci.inner.OnFreqSet(now, core, f)
	}
	if !drop && ci.cap > 0 && f > ci.cap {
		f = ci.cap
		ci.capped++
	}
	return f, delay, drop
}

// FreqCap implements server.FaultInjector: the tighter of the fault
// campaign's thermal throttle and the global tier's budget cap.
func (ci *capInjector) FreqCap(now sim.Time, core int) cpu.Freq {
	c := cpu.Freq(0)
	if ci.inner != nil {
		c = ci.inner.FreqCap(now, core)
	}
	if ci.cap > 0 && (c == 0 || ci.cap < c) {
		c = ci.cap
	}
	return c
}

// CoreOffline implements server.FaultInjector.
func (ci *capInjector) CoreOffline(now sim.Time, core int) bool {
	return ci.inner != nil && ci.inner.CoreOffline(now, core)
}

// PerturbSnapshot implements server.FaultInjector.
func (ci *capInjector) PerturbSnapshot(now sim.Time, snap server.Snapshot) server.Snapshot {
	if ci.inner != nil {
		return ci.inner.PerturbSnapshot(now, snap)
	}
	return snap
}

// Stats implements server.FaultInjector: the inner campaign's counters plus
// the number of governor writes the budget cap clamped.
func (ci *capInjector) Stats() map[string]uint64 {
	var out map[string]uint64
	if ci.inner != nil {
		out = ci.inner.Stats()
	}
	if out == nil {
		out = map[string]uint64{}
	}
	out["cluster.capped_writes"] = ci.capped
	return out
}
