// Package cluster scales the single-server simulation out to a fleet: N
// sharded server+engine instances — each the existing allocation-free fast
// path — advanced concurrently over a bounded worker pool, behind a
// pluggable load balancer and a global control tier.
//
// The control structure reproduces the two-level split of Liu et al.'s
// hierarchical cloud resource-allocation framework: the global tier assigns
// requests (shares) and power budgets across servers, while each server's
// local policy — here DeepPower's DVFS controller — manages its own cores.
//
// Determinism under parallelism is the package's core contract, and it
// falls out of a time-sliced design: virtual time advances in control
// epochs. At each epoch boundary the fleet tier runs serially — the global
// tier reassigns shares/budgets from epoch-boundary telemetry, and the
// balancer routes every arrival in the coming epoch, in arrival order,
// seeing only that stale boundary snapshot plus its own routing counts.
// Then all shards advance one epoch concurrently; each owns its engine,
// server, policy, and RNG substream, so no state is shared mid-epoch.
// Routing never observes mid-epoch state, shard evolution never depends on
// sibling shards, and a fleet run with one worker is byte-identical to the
// same run with eight.
package cluster

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/power"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// ShardConfig is one server slot of the fleet. Configs must be fully
// self-contained — own *app.Profile, own policy, own fault injector — since
// shards run concurrently; sharing any mutable state between shard configs
// breaks both the race-freedom and the determinism contract.
type ShardConfig struct {
	// Server is the shard's simulation config. Its Seed drives the shard's
	// private service-time RNG; derive it from the fleet seed with
	// sim.SubSeed so serial and parallel runs agree (see Config.Seed).
	Server server.Config
	// Policy is the shard's local power-management policy (the local tier).
	Policy server.Policy
}

// Config parameterizes a fleet run.
type Config struct {
	// Trace is the fleet-level aggregate arrival-rate trace; the balancer
	// splits it across shards.
	Trace *workload.Trace
	// Duration is the campaign length.
	Duration sim.Time
	// Epoch is the control-epoch width: the balancer's telemetry staleness
	// and the granularity of parallel shard advancement. It should be a
	// multiple of the shards' control tick so epoch boundaries land on
	// settled accounting (default 100 ms).
	Epoch sim.Time
	// Seed drives the fleet arrival process (substream "fleet/arrivals").
	// Per-shard randomness comes from each ShardConfig's own server seed.
	Seed int64
	// Balancer routes arrivals to shards. Required.
	Balancer Balancer
	// Global, when non-nil, enables the global tier: periodic share
	// reassignment and (optionally) power budgeting. Nil keeps static
	// uniform shares.
	Global *GlobalConfig
	// SeriesEvery emits one fleet time-series row every SeriesEvery epochs
	// (default 1; the fleet harness uses 10 to get one row per second).
	SeriesEvery int
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Trace == nil {
		return out, fmt.Errorf("cluster: Config.Trace is required")
	}
	if err := out.Trace.Validate(); err != nil {
		return out, err
	}
	if out.Duration <= 0 {
		return out, fmt.Errorf("cluster: non-positive duration %v", out.Duration)
	}
	if out.Epoch == 0 {
		out.Epoch = 100 * sim.Millisecond
	}
	if out.Epoch <= 0 {
		return out, fmt.Errorf("cluster: non-positive epoch %v", out.Epoch)
	}
	if out.Balancer == nil {
		return out, fmt.Errorf("cluster: Config.Balancer is required")
	}
	if out.SeriesEvery <= 0 {
		out.SeriesEvery = 1
	}
	return out, nil
}

// shard is one running server instance plus its fleet-side accounting.
type shard struct {
	id      int
	eng     *sim.Engine
	srv     *server.Server
	inj     *capInjector
	ladder  cpu.Ladder
	effCost float64
	floorW  float64

	state  ShardState // last epoch-boundary snapshot
	routed uint64     // fleet requests routed here

	// window accounting for per-epoch telemetry deltas
	lastCounters server.Counters
	lastEnergy   float64
	epochEnergyJ float64
	epochPowerW  float64
	epochArr     uint64
	epochComp    uint64
	epochTmo     uint64
}

// snapshot refreshes the shard's epoch-boundary telemetry over the epoch
// that just elapsed (span may be short on the final epoch). Called inside
// the shard's pool unit — it touches only shard-local state.
func (sh *shard) snapshot(now, span sim.Time) {
	c := sh.srv.Counters()
	e := sh.srv.Energy()
	sh.epochArr = c.Arrivals - sh.lastCounters.Arrivals
	sh.epochComp = c.Completions - sh.lastCounters.Completions
	sh.epochTmo = c.Timeouts - sh.lastCounters.Timeouts
	sh.epochEnergyJ = e - sh.lastEnergy
	sh.epochPowerW = 0
	if dt := span.Seconds(); dt > 0 {
		sh.epochPowerW = sh.epochEnergyJ / dt
	}
	online := 0
	for i := 0; i < sh.srv.NumCores(); i++ {
		if !sh.inj.CoreOffline(now, i) {
			online++
		}
	}
	wtr := 0.0
	if sh.epochComp > 0 {
		wtr = float64(sh.epochTmo) / float64(sh.epochComp)
	}
	sh.state = ShardState{
		ID:                sh.id,
		Cores:             sh.srv.NumCores(),
		Online:            online,
		Queue:             sh.srv.QueueLen(),
		Busy:              sh.srv.BusyCores(),
		Share:             sh.state.Share, // global tier overwrites between epochs
		FreqCapGHz:        float64(sh.inj.cap),
		EffCost:           sh.effCost,
		PowerW:            sh.epochPowerW,
		WindowTimeoutRate: wtr,
	}
	sh.lastCounters = c
	sh.lastEnergy = e
}

// Run executes one fleet campaign: the given shards under cfg's balancer
// and (optional) global tier, advancing up to workers shards concurrently
// per epoch. The result is byte-identical at any worker count.
func Run(ctx context.Context, cfg Config, shardCfgs []ShardConfig, workers int) (*Result, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(shardCfgs) == 0 {
		return nil, fmt.Errorf("cluster: no shards")
	}

	shards := make([]*shard, len(shardCfgs))
	for i, sc := range shardCfgs {
		inj := &capInjector{inner: sc.Server.Faults}
		scfg := sc.Server
		scfg.Faults = inj
		lad := scfg.Ladder
		if lad == (cpu.Ladder{}) {
			lad = cpu.DefaultLadder()
		}
		pm := scfg.Power
		if pm == (power.Model{}) {
			pm = power.DefaultModel()
		}
		eng := sim.NewEngine()
		srv, err := server.New(eng, scfg, sc.Policy)
		if err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		if err := srv.BeginExternal(full.Duration); err != nil {
			return nil, fmt.Errorf("cluster: shard %d: %w", i, err)
		}
		effCost := pm.CorePower(lad.Max, true)
		floorW := pm.Uncore + float64(srv.NumCores())*pm.CorePower(lad.Min, false)
		if t := scfg.Topology; t != nil {
			// Heterogeneous shard: the efficiency cost is the per-core mean
			// of each class's ladder-max draw, and the floor sums each
			// class's idle draw at its own ladder minimum — so the global
			// tier's power-aware weighting sees hybrid machines as cheaper
			// per core than their fast-only peers.
			var maxW, minW float64
			for _, c := range t.Classes {
				maxW += float64(c.Count) * pm.CorePowerScaled(c.Ladder.Max, true, c.DynFactor(), c.LeakFactor())
				minW += float64(c.Count) * pm.CorePowerScaled(c.Ladder.Min, false, c.DynFactor(), c.LeakFactor())
			}
			effCost = maxW / float64(t.TotalCores())
			floorW = pm.Uncore + minW
		}
		shards[i] = &shard{
			id:      i,
			eng:     eng,
			srv:     srv,
			inj:     inj,
			ladder:  lad,
			effCost: effCost,
			floorW:  floorW,
		}
		shards[i].state = ShardState{
			ID:      i,
			Cores:   srv.NumCores(),
			Online:  srv.NumCores(),
			Share:   1,
			EffCost: shards[i].effCost,
		}
	}

	var global *globalTier
	if full.Global != nil {
		global = newGlobalTier(*full.Global, shards)
	}

	arrivals := workload.NewArrivals(full.Trace, sim.NewRNG(full.Seed).Stream("fleet/arrivals"))
	next := arrivals.Next()

	res := &Result{
		Balancer: full.Balancer.Name(),
		Shards:   len(shards),
		Duration: full.Duration,
		Epoch:    full.Epoch,
	}
	states := make([]ShardState, len(shards))
	pending := make([]int, len(shards))
	units := make([]pool.Unit, len(shards))
	var epochStart, epochEnd sim.Time
	for i, sh := range shards {
		sh := sh
		units[i] = func(context.Context) error {
			sh.eng.RunUntil(epochEnd)
			sh.snapshot(epochEnd, epochEnd-epochStart)
			return nil
		}
	}

	var acc seriesAccum
	for epoch, t := 0, sim.Time(0); t < full.Duration; epoch, t = epoch+1, epochEnd {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		epochStart = t
		epochEnd = t + full.Epoch
		if epochEnd > full.Duration {
			epochEnd = full.Duration
		}

		// Serial fleet tier: global reassignment, then arrival routing.
		for i, sh := range shards {
			states[i] = sh.state
		}
		if global != nil && epoch > 0 && epoch%global.cfg.Every == 0 {
			global.reassign(states)
			global.rebudget(states, shards)
			for i, sh := range shards {
				sh.state.Share = global.share[i]
				states[i].Share = global.share[i]
				states[i].FreqCapGHz = float64(global.caps[i])
			}
		}
		for i := range pending {
			pending[i] = 0
		}
		for next < epochEnd {
			i := full.Balancer.Pick(next, states, pending)
			if i < 0 || i >= len(shards) {
				return nil, fmt.Errorf("cluster: balancer %q returned shard %d of %d",
					full.Balancer.Name(), i, len(shards))
			}
			if err := shards[i].srv.Inject(next); err != nil {
				return nil, err
			}
			pending[i]++
			shards[i].routed++
			res.TotalRouted++
			next = arrivals.Next()
		}

		// Parallel shard advancement: each unit owns exactly one shard.
		if err := pool.Run(ctx, units, workers); err != nil {
			return nil, err
		}

		acc.add(shards, epochEnd-epochStart)
		if (epoch+1)%full.SeriesEvery == 0 || epochEnd == full.Duration {
			res.Series = append(res.Series, acc.row(epochEnd, shards))
			acc = seriesAccum{}
		}
	}

	res.finish(shards)
	return res, nil
}

// seriesAccum aggregates per-epoch fleet telemetry between series rows.
type seriesAccum struct {
	span    sim.Time
	energyJ float64
	arr     uint64
	comp    uint64
	tmo     uint64
}

func (a *seriesAccum) add(shards []*shard, span sim.Time) {
	a.span += span
	for _, sh := range shards {
		a.energyJ += sh.epochEnergyJ
		a.arr += sh.epochArr
		a.comp += sh.epochComp
		a.tmo += sh.epochTmo
	}
}

func (a *seriesAccum) row(at sim.Time, shards []*shard) EpochRow {
	r := EpochRow{
		At:          at,
		Arrivals:    a.arr,
		Completions: a.comp,
		Timeouts:    a.tmo,
		EnergyJ:     a.energyJ,
	}
	if dt := a.span.Seconds(); dt > 0 {
		r.PowerW = a.energyJ / dt
	}
	for _, sh := range shards {
		r.Queue += sh.state.Queue
	}
	return r
}
