package exp

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/baselines"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// Methods in the paper's Fig. 7 comparison.
const (
	MethodBaseline  = "baseline"
	MethodRetail    = "retail"
	MethodGemini    = "gemini"
	MethodDeepPower = "deeppower"
	// MethodRubik is the related-work statistical comparator (not part of
	// the paper's Fig. 7, available for extended comparisons).
	MethodRubik = "rubik"
)

// Fig7Methods lists the comparison in the paper's order.
var Fig7Methods = []string{MethodBaseline, MethodRetail, MethodGemini, MethodDeepPower}

// PeakLoad is the per-application peak load fraction (of reference-frequency
// capacity) the diurnal trace is scaled to. §5.2: the RPS is multiplied "by
// a factor to make the tail latency close to SLA when running without
// frequency scaling".
var PeakLoad = map[string]float64{
	app.Xapian:   0.85,
	app.Masstree: 0.80,
	app.Moses:    0.75,
	app.Sphinx:   0.85,
	app.ImgDNN:   0.85,
}

// Setup bundles everything a comparison run needs for one application.
type Setup struct {
	Prof  *app.Profile
	Trace *workload.Trace
	Scale Scale
}

// NewSetup builds the application profile and its scaled diurnal trace.
func NewSetup(appName string, scale Scale) (*Setup, error) {
	prof, err := app.ByName(appName)
	if err != nil {
		return nil, err
	}
	if scale.Workers > 0 {
		prof.Workers = scale.Workers
	}
	cfg := workload.DefaultDiurnal()
	cfg.Period = scale.TracePeriod
	cfg.Buckets = int(scale.TracePeriod.Seconds())
	if cfg.Buckets < 10 {
		cfg.Buckets = 10
	}
	cfg.Seed = scale.Seed
	trace := workload.Diurnal(cfg).
		ScaleToPeak(PeakLoad[appName] * prof.MaxCapacity(prof.RefFreq, scale.Seed))
	return &Setup{Prof: prof, Trace: trace, Scale: scale}, nil
}

// ServerConfig returns the per-run server configuration. Applications with
// second-scale latency use a coarser tick, per the paper's note that
// ShortTime "can be changed according to the service time of different
// applications".
func (s *Setup) ServerConfig(seed int64) server.Config {
	cfg := server.Config{
		App:    s.Prof,
		Seed:   seed,
		Warmup: s.Scale.EvalDuration / 10,
	}
	if s.Prof.SLA >= sim.Second {
		cfg.Tick = 10 * sim.Millisecond
	}
	return cfg
}

// BuildPolicy constructs (and, where needed, profiles/trains) one method.
func (s *Setup) BuildPolicy(method string) (server.Policy, error) {
	switch method {
	case MethodBaseline:
		return baselines.NewMaxFreq(), nil
	case MethodRetail:
		samples, err := s.profilingData()
		if err != nil {
			return nil, err
		}
		return baselines.FitRetail(samples)
	case MethodGemini:
		samples, err := s.profilingData()
		if err != nil {
			return nil, err
		}
		return baselines.FitGemini(samples, baselines.GeminiTrainConfig{Seed: s.Scale.Seed})
	case MethodRubik:
		samples, err := s.profilingData()
		if err != nil {
			return nil, err
		}
		return baselines.FitRubik(samples)
	case MethodDeepPower:
		return s.TrainDeepPower()
	}
	return nil, fmt.Errorf("exp: unknown method %q", method)
}

// profilingData collects the offline predictor dataset at a representative
// (mid) load, as the prediction-based baselines require.
func (s *Setup) profilingData() ([]baselines.ServiceSample, error) {
	n := s.Scale.Samples
	if n > 4000 {
		n = 4000
	}
	return baselines.CollectServiceData(s.Prof, 0.5, n, s.Scale.Seed+17)
}

// agentConfig adapts the agent's cadence to the experiment scale: small
// quick-scale traces use a shorter LongTime and more gradient updates per
// step so the agent still sees enough learning signal.
func (s *Setup) agentConfig() agent.Config {
	cfg := agent.Config{Seed: s.Scale.Seed, Train: true}
	if s.Scale.TracePeriod < 60*sim.Second && s.Prof.SLA < sim.Second {
		cfg.LongTime = 250 * sim.Millisecond
		cfg.UpdatesPerStep = 8
		cfg.WarmupSteps = 30
		// Compressed runs see far fewer agent steps than the paper's long
		// training, so exploration anneals faster and less violently.
		cfg.NoiseMu = 0.2
		cfg.NoiseSigma = 0.5
		cfg.NoiseDecay = 0.99
	}
	return cfg
}

// TrainDeepPower trains a fresh DeepPower policy on the setup's trace
// (Algorithm 2; the paper trains on a long workload and tests on a short
// one from the same process).
func (s *Setup) TrainDeepPower() (*agent.DeepPower, error) {
	dp, err := agent.New(s.agentConfig())
	if err != nil {
		return nil, err
	}
	_, err = agent.Train(dp, agent.TrainConfig{
		Episodes:   s.Scale.TrainEpisodes,
		EpisodeLen: s.Trace.Period,
		Server:     s.trainServerConfig(),
		Trace:      s.Trace,
	})
	if err != nil {
		return nil, err
	}
	return dp, nil
}

// TrainDeepPowerVector is TrainDeepPower over envs lockstep environments
// feeding one shared learner (agent.VectorTrainer): the same episode count,
// several times the experience throughput, byte-identical at any worker
// count.
func (s *Setup) TrainDeepPowerVector(envs, workers int) (*agent.DeepPower, error) {
	dp, err := agent.New(s.agentConfig())
	if err != nil {
		return nil, err
	}
	vt, err := agent.NewVectorTrainer(dp, agent.TrainVectorConfig{
		Envs:       envs,
		Workers:    workers,
		Episodes:   s.Scale.TrainEpisodes,
		EpisodeLen: s.Trace.Period,
		Server:     s.trainServerConfig(),
		Trace:      s.Trace,
	})
	if err != nil {
		return nil, err
	}
	if _, err := vt.Train(context.Background()); err != nil {
		return nil, err
	}
	return dp, nil
}

// trainServerConfig is ServerConfig adjusted for training runs.
func (s *Setup) trainServerConfig() server.Config {
	cfg := s.ServerConfig(s.Scale.Seed)
	cfg.Warmup = 0
	cfg.DiscardLatencies = true
	return cfg
}

// Evaluate runs one policy over the evaluation window with a seed distinct
// from training.
func (s *Setup) Evaluate(pol server.Policy) (*server.Result, error) {
	return s.EvaluateOn(sim.NewEngine(), pol)
}

// EvaluateOn is Evaluate on a caller-provided engine, Reset first — back-to-
// back evaluations (the vectrain harness, repeated sweeps) reuse one warm
// event arena instead of growing a fresh engine per policy.
func (s *Setup) EvaluateOn(eng *sim.Engine, pol server.Policy) (*server.Result, error) {
	eng.Reset()
	srv, err := server.New(eng, s.ServerConfig(s.Scale.Seed+104729), pol)
	if err != nil {
		return nil, err
	}
	return srv.Run(s.Trace, s.Scale.EvalDuration)
}

// Fig7Result is the paper's headline comparison: power, power saving, tail
// latency vs SLA, mean/tail ratio and timeout rate for every (app, method).
type Fig7Result struct {
	Apps    []string
	Results map[string]map[string]*server.Result // app → method → result
}

// fig7Unit is one (app, method) cell of the comparison grid.
type fig7Unit struct {
	app    string
	method string
}

// Fig7 runs the full comparison for the given applications (nil = all
// five). Every (app, method) cell is one self-contained pool work unit: it
// builds its own Setup (profile, trace) and its own policy — including any
// profiling or training the method needs — so nothing is shared between
// concurrently running cells and the assembled result is identical at any
// worker count.
func Fig7(ctx context.Context, scale Scale, apps []string, workers int) (*Fig7Result, error) {
	if apps == nil {
		apps = app.Names()
	}
	var units []fig7Unit
	for _, name := range apps {
		for _, method := range Fig7Methods {
			units = append(units, fig7Unit{app: name, method: method})
		}
	}
	results, err := pool.Map(ctx, units, workers, func(_ context.Context, u fig7Unit, _ int) (*server.Result, error) {
		setup, err := NewSetup(u.app, scale)
		if err != nil {
			return nil, err
		}
		pol, err := setup.BuildPolicy(u.method)
		if err != nil {
			return nil, fmt.Errorf("exp: fig7 %s/%s: %w", u.app, u.method, err)
		}
		res, err := setup.Evaluate(pol)
		if err != nil {
			return nil, fmt.Errorf("exp: fig7 %s/%s: %w", u.app, u.method, err)
		}
		return res, nil
	})
	if err != nil {
		return nil, err
	}
	out := &Fig7Result{Apps: apps, Results: map[string]map[string]*server.Result{}}
	for i, u := range units {
		if out.Results[u.app] == nil {
			out.Results[u.app] = map[string]*server.Result{}
		}
		out.Results[u.app][u.method] = results[i]
	}
	return out, nil
}

// Saving returns a method's power saving vs. the baseline for an app.
func (r *Fig7Result) Saving(appName, method string) float64 {
	base := r.Results[appName][MethodBaseline].AvgPowerW
	if base == 0 {
		return 0
	}
	return 1 - r.Results[appName][method].AvgPowerW/base
}

// DeepPowerVsBestSOTA returns how much less power DeepPower uses than the
// better of ReTail/Gemini (positive = DeepPower wins); the paper reports
// 12.7% (Img-dnn) to 28.4% (Moses).
func (r *Fig7Result) DeepPowerVsBestSOTA(appName string) float64 {
	retail := r.Results[appName][MethodRetail].AvgPowerW
	gemini := r.Results[appName][MethodGemini].AvgPowerW
	sota := retail
	if gemini < sota {
		sota = gemini
	}
	if sota == 0 {
		return 0
	}
	return 1 - r.Results[appName][MethodDeepPower].AvgPowerW/sota
}

// PowerTable renders Fig. 7a.
func (r *Fig7Result) PowerTable() *Table {
	t := &Table{
		Title:   "Fig. 7a — power (W) and saving vs baseline",
		Columns: []string{"app", "baseline", "retail", "gemini", "deeppower", "dp saving", "dp vs SOTA"},
	}
	for _, name := range r.Apps {
		t.AddRow(name,
			f2(r.Results[name][MethodBaseline].AvgPowerW),
			f2(r.Results[name][MethodRetail].AvgPowerW),
			f2(r.Results[name][MethodGemini].AvgPowerW),
			f2(r.Results[name][MethodDeepPower].AvgPowerW),
			f2(r.Saving(name, MethodDeepPower)*100)+"%",
			f2(r.DeepPowerVsBestSOTA(name)*100)+"%",
		)
	}
	return t
}

// LatencyTable renders Fig. 7b.
func (r *Fig7Result) LatencyTable() *Table {
	t := &Table{
		Title:   "Fig. 7b — p99 latency (ms) vs SLA",
		Columns: []string{"app", "SLA", "baseline", "retail", "gemini", "deeppower"},
	}
	for _, name := range r.Apps {
		row := []string{name, f(r.Results[name][MethodBaseline].SLA.Milliseconds())}
		for _, m := range Fig7Methods {
			row = append(row, f3(r.Results[name][m].Latency.P99*1000))
		}
		t.AddRow(row...)
	}
	return t
}

// QualityTable renders Fig. 7c (mean/tail ratio and timeout rate).
func (r *Fig7Result) QualityTable() *Table {
	t := &Table{
		Title: "Fig. 7c — mean/tail ratio | timeout %",
		Columns: []string{"app",
			"baseline", "retail", "gemini", "deeppower"},
	}
	for _, name := range r.Apps {
		row := []string{name}
		for _, m := range Fig7Methods {
			res := r.Results[name][m]
			row = append(row, fmt.Sprintf("%s | %s%%",
				f2(res.MeanTailRatio), f3(res.TimeoutRate*100)))
		}
		t.AddRow(row...)
	}
	return t
}
