package exp

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/fault"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// dagserve workload variants: the same request population served either as
// one monolithic request or as the stage graph it decomposes into.
const (
	DAGServeFlat = "flat"
	DAGServeDAG  = "dag"
)

// DAGServeWorkloads is the comparison order.
var DAGServeWorkloads = []string{DAGServeFlat, DAGServeDAG}

// DAGServeModes are the policy-wrapping variants of the dagserve grid.
var DAGServeModes = []string{"bare", "guarded"}

// dagserve sizing: default worker count when the scale does not override it,
// end-to-end SLA, and the peak load fraction of flat capacity the diurnal
// trace is scaled to (precedence stalls make DAG capacity lower than the
// work-conserving flat bound, so the peak leaves headroom).
const (
	dagServeWorkers = 8
	dagServeSLA     = 10 * sim.Millisecond
	dagServePeak    = 0.50
)

// DAGServeDAG4 returns the dagserve microservice stage graph: a gate fans
// out to an auth check and a heavy-tailed search running in parallel, and a
// merge joins them —
//
//	gate ─┬─ auth ──┬─ merge
//	      └─ search ┘
//
// The search stage carries the long tail (Pareto spikes), so the job's
// critical path almost always runs gate→search→merge.
func DAGServeDAG4() *app.DAG {
	d := &app.DAG{
		Name: "searchsvc",
		Stages: []app.DAGStage{
			{Name: "gate", Sampler: &app.TailedSampler{
				BaseUS: 60, CoefUS: 25, Sigma1: 0.4, NoiseSigma: 0.10}},
			{Name: "auth", Preds: []int{0}, Sampler: &app.TailedSampler{
				BaseUS: 120, CoefUS: 60, Sigma1: 0.5, NoiseSigma: 0.15}},
			{Name: "search", Preds: []int{0}, Sampler: &app.TailedSampler{
				BaseUS: 200, CoefUS: 320, Sigma1: 0.9, Inter: 0.5, NoiseSigma: 0.25,
				TailProb: 0.01, TailScale: 900, TailAlpha: 1.6}},
			{Name: "merge", Preds: []int{1, 2}, Sampler: &app.TailedSampler{
				BaseUS: 90, CoefUS: 45, Sigma1: 0.5, NoiseSigma: 0.15}},
		},
	}
	if err := d.Validate(); err != nil {
		panic(err) // static graph; unreachable
	}
	return d
}

// sumSampler serves a DAG's total work as one monolithic request: it draws
// every stage in index order and sums the service times, so the flat and DAG
// variants of dagserve offer identical total work distributions.
type sumSampler struct {
	d       *app.DAG
	scratch app.Work
}

// FeatureDim implements app.Sampler (the summed request has no features).
func (s *sumSampler) FeatureDim() int { return 0 }

// Sample implements app.Sampler.
func (s *sumSampler) Sample(r *sim.RNG) app.Work {
	var w app.Work
	s.SampleInto(r, &w)
	return w
}

// SampleInto implements app.IntoSampler.
func (s *sumSampler) SampleInto(r *sim.RNG, w *app.Work) {
	var total sim.Time
	for _, st := range s.d.Stages {
		if into, ok := st.Sampler.(app.IntoSampler); ok {
			into.SampleInto(r, &s.scratch)
			total += s.scratch.ServiceRef
		} else {
			total += st.Sampler.Sample(r).ServiceRef
		}
	}
	w.ServiceRef = total
	w.Features = w.Features[:0]
}

// DAGServeProfile returns the dagserve application in one of its two forms:
// DAGServeDAG serves the stage graph, DAGServeFlat the same population
// collapsed into monolithic requests. Both share the end-to-end SLA.
func DAGServeProfile(kind string, workers int) (*app.Profile, error) {
	prof := &app.Profile{
		Name:           "searchsvc-" + kind,
		SLA:            dagServeSLA,
		Workers:        workers,
		RefFreq:        cpu.Freq(2.1),
		MemFrac:        0.25,
		ContentionCoef: 0.30,
	}
	switch kind {
	case DAGServeDAG:
		prof.DAG = DAGServeDAG4()
	case DAGServeFlat:
		prof.Sampler = &sumSampler{d: DAGServeDAG4()}
	default:
		return nil, fmt.Errorf("exp: unknown dagserve workload %q", kind)
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	return prof, nil
}

// dagServeSetup builds the Setup for one dagserve workload variant, scaling
// the diurnal trace against the variant's own capacity estimate (identical
// for both variants: same total work per arrival).
func dagServeSetup(kind string, scale Scale) (*Setup, error) {
	workers := scale.Workers
	if workers <= 0 {
		workers = dagServeWorkers
	}
	prof, err := DAGServeProfile(kind, workers)
	if err != nil {
		return nil, err
	}
	cfg := workload.DefaultDiurnal()
	cfg.Period = scale.TracePeriod
	cfg.Buckets = int(scale.TracePeriod.Seconds())
	if cfg.Buckets < 10 {
		cfg.Buckets = 10
	}
	cfg.Seed = scale.Seed
	trace := workload.Diurnal(cfg).
		ScaleToPeak(dagServePeak * prof.MaxCapacity(prof.RefFreq, scale.Seed))
	return &Setup{Prof: prof, Trace: trace, Scale: scale}, nil
}

// DAGServeFaultPlan is the light fault campaign both dagserve variants are
// evaluated under: governor-write lag plus occasional transient core
// failures — enough pressure to separate bare from guarded serving without
// drowning the DAG-vs-flat signal.
func DAGServeFaultPlan(seed int64, period sim.Time) fault.Plan {
	return fault.Plan{
		Seed: seed,
		Actuation: fault.ActuationPlan{
			ExtraLatency:  2 * sim.Millisecond,
			JitterLatency: 6 * sim.Millisecond,
			DropProb:      0.15,
		},
		Cores: fault.CorePlan{
			MTBF: period / 2,
			MTTR: period / 30,
		},
	}
}

// DAGServeResult is the dagserve grid: workload (flat vs DAG) × mode (bare
// vs guarded), each cell a trained DeepPower policy evaluated under the
// light fault plan.
type DAGServeResult struct {
	// Results maps workload → mode → result.
	Results map[string]map[string]*server.Result
}

// dagServeUnit is one (workload, mode) cell.
type dagServeUnit struct {
	workload string
	mode     string
}

// DAGServe runs the DAG-vs-flat serving comparison: the same request
// population — a four-stage microservice graph and its monolithic collapse —
// served by a freshly trained DeepPower policy, bare and guarded, under a
// light fault campaign. Each cell is one self-contained pool work unit
// (its own profile, trace, and training run), so the assembled result is
// byte-identical at any worker count.
func DAGServe(ctx context.Context, scale Scale, workers int) (*DAGServeResult, error) {
	var units []dagServeUnit
	for _, w := range DAGServeWorkloads {
		for _, mode := range DAGServeModes {
			units = append(units, dagServeUnit{workload: w, mode: mode})
		}
	}
	results, err := pool.Map(ctx, units, workers,
		func(_ context.Context, u dagServeUnit, _ int) (*server.Result, error) {
			setup, err := dagServeSetup(u.workload, scale)
			if err != nil {
				return nil, err
			}
			dp, err := setup.TrainDeepPower()
			if err != nil {
				return nil, fmt.Errorf("exp: dagserve %s/%s: %w", u.workload, u.mode, err)
			}
			var pol server.Policy = dp
			if u.mode == "guarded" {
				pol = fault.WithGuard(pol)
			}
			plan := DAGServeFaultPlan(sim.SubSeed(scale.Seed, "dagserve/"+u.workload), setup.Trace.Period)
			res, err := setup.EvaluateUnderFaults(pol, plan)
			if err != nil {
				return nil, fmt.Errorf("exp: dagserve %s/%s: %w", u.workload, u.mode, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	out := &DAGServeResult{Results: map[string]map[string]*server.Result{}}
	for i, u := range units {
		if out.Results[u.workload] == nil {
			out.Results[u.workload] = map[string]*server.Result{}
		}
		out.Results[u.workload][u.mode] = results[i]
	}
	return out, nil
}

// Table renders the grid with the DAG rows' critical-path accounting: the
// mean critical path lower-bounds achievable latency, and its share of the
// end-to-end mean separates processing from queueing/precedence stall.
func (r *DAGServeResult) Table() *Table {
	t := &Table{
		Title: "DAG serving (searchsvc: gate → auth ∥ search → merge, end-to-end SLA)",
		Columns: []string{"workload", "mode", "power W", "p99 ms", "timeout %", "Eq.2 met",
			"jobs", "CP ms", "CP share", "fallbacks"},
	}
	for _, w := range DAGServeWorkloads {
		for _, mode := range DAGServeModes {
			res := r.Results[w][mode]
			if res == nil {
				continue
			}
			cp, cpShare := "-", "-"
			jobs := res.Counters.Completions
			if res.Counters.JobCompletions > 0 {
				jobs = res.Counters.JobCompletions
				cp = f3(res.MeanCriticalPathSec * 1e3)
				cpShare = f2(res.MeanCriticalPathShare)
			}
			t.AddRow(w, mode,
				f2(res.AvgPowerW), f3(res.Latency.P99*1e3), f3(res.TimeoutRate*100),
				fmt.Sprint(res.TimeoutBudgetMet), fmt.Sprint(jobs), cp, cpShare,
				f(res.PolicyStats["guard.fallbacks"]))
		}
	}
	return t
}
