package exp

import (
	"time"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/rl"
)

// Table2Result reports the wall-clock inference time of the four DRL
// algorithms the paper times in Table 2 (DQN 125 µs, DDQN 140 µs, DDPG
// 231 µs, SAC 472 µs on their Python/PyTorch stack). Absolute numbers
// differ across stacks — compiled Go on tiny networks is much faster than
// Python — but the ordering (value-based < deterministic actor < stochastic
// actor) and the paper's conclusion (all far too slow for per-request
// control at sub-millisecond service times, fine at 1 s agent intervals)
// must hold.
type Table2Result struct {
	// InferenceUS maps algorithm → mean single-action latency (µs).
	InferenceUS map[string]float64
	// PaperUS is the paper's reported numbers for side-by-side rendering.
	PaperUS map[string]float64
}

// Table2 measures each algorithm's action-generation path.
func Table2(iters int) (*Table2Result, error) {
	if iters <= 0 {
		iters = 2000
	}
	state := make([]float64, agent.StateDim)
	for i := range state {
		state[i] = 0.5
	}
	res := &Table2Result{
		InferenceUS: map[string]float64{},
		PaperUS: map[string]float64{
			"DQN": 125, "DDQN": 140, "DDPG": 231, "SAC": 472,
		},
	}

	dqn, err := rl.NewDQN(rl.DQNConfig{StateDim: agent.StateDim, NumActions: 25, Seed: 1})
	if err != nil {
		return nil, err
	}
	ddqn, err := rl.NewDQN(rl.DQNConfig{StateDim: agent.StateDim, NumActions: 25, Seed: 1, Double: true})
	if err != nil {
		return nil, err
	}
	ddpg, err := rl.NewDDPG(rl.DDPGConfig{StateDim: agent.StateDim, ActionDim: agent.ActionDim, Seed: 1})
	if err != nil {
		return nil, err
	}
	sac, err := rl.NewSAC(rl.SACConfig{StateDim: agent.StateDim, ActionDim: agent.ActionDim, Seed: 1})
	if err != nil {
		return nil, err
	}

	res.InferenceUS["DQN"] = timeUS(iters, func() { dqn.Act(state) })
	// DDQN's inference path is the same Q-network; its extra cost is in
	// training. Measure it independently anyway.
	res.InferenceUS["DDQN"] = timeUS(iters, func() { ddqn.Act(state) })
	res.InferenceUS["DDPG"] = timeUS(iters, func() { ddpg.Act(state) })
	// SAC inference samples the squashed Gaussian (the paper measures the
	// stochastic path, hence its higher cost).
	res.InferenceUS["SAC"] = timeUS(iters, func() { sac.SampleAction(state) })
	return res, nil
}

func timeUS(iters int, fn func()) float64 {
	// Warm up.
	for i := 0; i < 50; i++ {
		fn()
	}
	start := time.Now()
	for i := 0; i < iters; i++ {
		fn()
	}
	return float64(time.Since(start).Microseconds()) / float64(iters)
}

// Algorithms lists Table 2's column order.
var table2Order = []string{"DQN", "DDQN", "DDPG", "SAC"}

// Table renders measured vs. paper numbers.
func (r *Table2Result) Table() *Table {
	t := &Table{
		Title:   "Table 2 — DRL inference time",
		Columns: []string{"algorithm", "measured (us)", "paper (us, PyTorch)"},
	}
	for _, alg := range table2Order {
		t.AddRow(alg, f3(r.InferenceUS[alg]), f(r.PaperUS[alg]))
	}
	return t
}
