package exp

import (
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/baselines"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// TestEpisodeStepZeroAllocs is the allocation guard for the simulation fast
// path: once an episode reaches steady state — request pool, queue ring,
// event arena, and latency digests all warmed to their high-water marks — a
// 1 ms episode step (arrivals, dispatches, completions, the policy tick, and
// power accounting) must allocate zero bytes. Any regression in the typed
// heap, the request pool, the fifo ring, or the sampler fast path shows up
// here as a nonzero count.
func TestEpisodeStepZeroAllocs(t *testing.T) {
	prof, err := app.ByName(app.Xapian)
	if err != nil {
		t.Fatal(err)
	}
	prof.Workers = 4
	// A constant-rate trace keeps the steady state genuinely steady: no
	// diurnal ramp can raise a high-water mark mid-measurement.
	trace := workload.Constant(300, 60*sim.Second)
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{
		App:  prof,
		Seed: 42,
		// The long-training-run configuration: latency samples stream into
		// the mean/p99 digests instead of being retained per request.
		DiscardLatencies: true,
	}, baselines.NewMaxFreq())
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Begin(trace, 60*sim.Second); err != nil {
		t.Fatal(err)
	}
	// Warm up for two simulated seconds (~600 requests) to fill every pool.
	at := 2 * sim.Second
	eng.RunUntil(at)

	allocs := testing.AllocsPerRun(200, func() {
		at += sim.Millisecond
		eng.RunUntil(at)
	})
	if allocs != 0 {
		t.Errorf("steady-state episode step allocated %.2f times per 1ms step, want 0", allocs)
	}
}
