package exp

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/power"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// heteroplace placement methods: the learned 3-dim agent against three
// static placements of the same 2-class topology.
const (
	PlaceLearned   = "learned"
	PlaceFastOnly  = "fast-only"
	PlaceEffOnly   = "efficient-only"
	PlaceStaticMix = "static-split"
)

// HeteroPlaceMethods is the comparison order.
var HeteroPlaceMethods = []string{PlaceLearned, PlaceFastOnly, PlaceEffOnly, PlaceStaticMix}

// heteroPlaceBudgetFrac is the power budget the comparison is reported
// against: 90% of the topology's all-cores-busy, all-ladder-max draw.
const heteroPlaceBudgetFrac = 0.9

// HeteroPlaceTopology returns the harness's 2-class topology: the profile's
// worker count as fast cores plus the same number of efficiency cores.
func HeteroPlaceTopology(workers int) cpu.Topology {
	return cpu.DefaultHetero(workers, workers)
}

// classDrawW returns each class's all-busy ladder-max core draw.
func classDrawW(m power.Model, t cpu.Topology) []float64 {
	draw := make([]float64, len(t.Classes))
	for i, c := range t.Classes {
		draw[i] = float64(c.Count) * m.CorePowerScaled(c.Ladder.Max, true, c.DynFactor(), c.LeakFactor())
	}
	return draw
}

// classRefPowerW returns the per-class reward normalizers: the classes' max
// draws rescaled to sum to refPowerW, the homogeneous reward's reference
// power. The rescaling keeps the energy term's overall magnitude identical
// to the flat reward — only the attribution across classes changes, so
// wasted watts on the low-power efficiency class are not drowned out by the
// fast class's scale. (Normalizing by raw class draws instead would shrink
// the denominator by an order of magnitude and train agents that trade
// double-digit timeout rates for watts.)
func classRefPowerW(m power.Model, t cpu.Topology, refPowerW float64) []float64 {
	refs := classDrawW(m, t)
	total := 0.0
	for _, d := range refs {
		total += d
	}
	if total <= 0 {
		return refs
	}
	for i := range refs {
		refs[i] *= refPowerW / total
	}
	return refs
}

// HeteroPlaceBudgetW returns the comparison's power budget for a topology.
func HeteroPlaceBudgetW(m power.Model, t cpu.Topology) float64 {
	total := m.Uncore
	for _, d := range classDrawW(m, t) {
		total += d
	}
	return heteroPlaceBudgetFrac * total
}

// placedPolicy pins a fixed per-class thread placement around any trainable
// policy: Init applies the placement after the inner policy's own Init, so
// both training episodes and evaluation run under the static split.
type placedPolicy struct {
	agent.Trainable
	counts []int
	label  string
}

// Name implements server.Policy.
func (p *placedPolicy) Name() string { return p.Trainable.Name() + "+" + p.label }

// Init implements server.Policy.
func (p *placedPolicy) Init(c server.Control) {
	p.Trainable.Init(c)
	c.SetPlacement(p.counts)
}

// heteroPlaceLoadFrac scales the diurnal trace below the fast class's
// capacity so every placement in the ladder can in principle serve the load:
// at Xapian's native 0.85 peak only fast-heavy placements survive and the
// comparison degenerates into a saturation test, while at half load the
// placement choice is the real trade — idle fast silicon leaks watts the
// efficiency class doesn't.
const heteroPlaceLoadFrac = 0.5

// heteroPlaceSetup builds the harness's Setup: the Xapian workload at the
// same looser 20 ms operating point the robustness, policy-lifecycle, and
// fleet experiments use (so the comparison measures placement quality rather
// than raw saturation), with the trace scaled to heteroPlaceLoadFrac.
func heteroPlaceSetup(scale Scale) (*Setup, error) {
	setup, err := NewSetup(app.Xapian, scale)
	if err != nil {
		return nil, err
	}
	setup.Prof.SLA = 20 * sim.Millisecond
	setup.Trace = setup.Trace.Scale(heteroPlaceLoadFrac)
	return setup, nil
}

// HeteroPlaceResult compares placement strategies on one heterogeneous
// server under a shared power budget.
type HeteroPlaceResult struct {
	App     string
	BudgetW float64
	Classes []string
	// Results maps method → result, in HeteroPlaceMethods order.
	Results map[string]*server.Result
}

// HeteroPlace runs the heterogeneous-placement comparison: a Xapian server
// whose worker pool spans fast and efficiency core classes, served by (a) a
// DeepPower agent whose widened action space picks the placement itself and
// (b) the same agent pinned to fast-only, efficient-only, and half-and-half
// static splits. Every method trains its own policy under its own placement
// (the agent must learn the frequency policy that suits where its threads
// sit), and all evaluate on the same diurnal trace against the same power
// budget. Each method is one self-contained pool work unit.
func HeteroPlace(ctx context.Context, scale Scale, workers int) (*HeteroPlaceResult, error) {
	results, err := pool.Map(ctx, HeteroPlaceMethods, workers,
		func(_ context.Context, method string, _ int) (*server.Result, error) {
			res, err := heteroPlaceCell(method, scale)
			if err != nil {
				return nil, fmt.Errorf("exp: heteroplace %s: %w", method, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	setup, err := heteroPlaceSetup(scale)
	if err != nil {
		return nil, err
	}
	topo := HeteroPlaceTopology(setup.Prof.Workers)
	out := &HeteroPlaceResult{
		App:     setup.Prof.Name,
		BudgetW: HeteroPlaceBudgetW(power.DefaultModel(), topo),
		Results: map[string]*server.Result{},
	}
	for _, c := range topo.Classes {
		out.Classes = append(out.Classes, c.Name)
	}
	for i, method := range HeteroPlaceMethods {
		out.Results[method] = results[i]
	}
	return out, nil
}

// heteroPlaceCell trains and evaluates one placement method.
func heteroPlaceCell(method string, scale Scale) (*server.Result, error) {
	setup, err := heteroPlaceSetup(scale)
	if err != nil {
		return nil, err
	}
	topo := HeteroPlaceTopology(setup.Prof.Workers)
	fast, eff := topo.Classes[0].Count, topo.Classes[1].Count

	acfg := setup.agentConfig()
	acfg.Classes = len(topo.Classes)
	acfg.Reward.ClassRefPowerW = classRefPowerW(power.DefaultModel(), topo,
		agent.NewReward(acfg.Reward).Config().RefPowerW)
	if method == PlaceLearned {
		acfg.Placement = true
	}
	dp, err := agent.New(acfg)
	if err != nil {
		return nil, err
	}
	var pol agent.Trainable = dp
	switch method {
	case PlaceLearned:
		// The third action component drives placement.
	case PlaceFastOnly:
		pol = &placedPolicy{Trainable: dp, counts: []int{fast, 0}, label: method}
	case PlaceEffOnly:
		pol = &placedPolicy{Trainable: dp, counts: []int{0, eff}, label: method}
	case PlaceStaticMix:
		pol = &placedPolicy{Trainable: dp, counts: []int{(fast + 1) / 2, (eff + 1) / 2}, label: method}
	default:
		return nil, fmt.Errorf("unknown method %q", method)
	}

	trainCfg := setup.trainServerConfig()
	trainCfg.Topology = &topo
	if _, err := agent.Train(pol, agent.TrainConfig{
		Episodes:   scale.TrainEpisodes,
		EpisodeLen: setup.Trace.Period,
		Server:     trainCfg,
		Trace:      setup.Trace,
	}); err != nil {
		return nil, err
	}

	evalCfg := setup.ServerConfig(scale.Seed + 104729)
	evalCfg.Topology = &topo
	return agent.Evaluate(pol, evalCfg, setup.Trace, scale.EvalDuration)
}

// Table renders the placement comparison with per-class energy attribution.
func (r *HeteroPlaceResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Heterogeneous placement (%s, classes %v, budget %.1f W)",
			r.App, r.Classes, r.BudgetW),
		Columns: []string{"method", "power W", "in budget", "p99 ms", "timeout %", "Eq.2 met",
			"fast J", "eff J"},
	}
	for _, method := range HeteroPlaceMethods {
		res := r.Results[method]
		if res == nil {
			continue
		}
		fastJ, effJ := "-", "-"
		if len(res.ClassEnergyJ) == 2 {
			fastJ, effJ = f2(res.ClassEnergyJ[0]), f2(res.ClassEnergyJ[1])
		}
		t.AddRow(method,
			f2(res.AvgPowerW), fmt.Sprint(res.AvgPowerW <= r.BudgetW),
			f3(res.Latency.P99*1e3), f3(res.TimeoutRate*100),
			fmt.Sprint(res.TimeoutBudgetMet), fastJ, effJ)
	}
	return t
}
