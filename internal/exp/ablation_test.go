package exp

import (
	"context"
	"testing"
)

func TestAblationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-variant training")
	}
	scale := Quick()
	scale.TrainEpisodes = 3
	// A representative subset keeps the test fast.
	var subset []AblationVariant
	for _, v := range AblationVariants {
		switch v.Name {
		case "deeppower", "flat-control", "dqn-power", "deeppower+c6":
			subset = append(subset, v)
		}
	}
	r, err := Ablation(context.Background(), "xapian", scale, subset, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Results) != 4 {
		t.Fatalf("results = %d", len(r.Results))
	}
	for name, res := range r.Results {
		if res.AvgPowerW <= 0 || res.Counters.Completions == 0 {
			t.Errorf("%s: degenerate result", name)
		}
	}
	if r.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestGeneralizationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	scale := Quick()
	scale.TrainEpisodes = 8
	r, err := Generalization(context.Background(), "xapian", scale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) != 3 {
		t.Fatalf("scenarios = %v", r.Scenarios)
	}
	for _, sc := range r.Scenarios {
		if r.DeepPower[sc].Counters.Completions == 0 {
			t.Errorf("%s: no completions", sc)
		}
		// The frozen policy must still beat the baseline on power in
		// every unseen scenario.
		if sav := r.Saving(sc); sav <= 0 {
			t.Errorf("%s: no power saving (%.1f%%)", sc, sav*100)
		}
	}
	if r.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestCrossoverQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-method sweep")
	}
	scale := Quick()
	scale.TrainEpisodes = 4
	r, err := Crossover(context.Background(), "xapian", scale, []string{MethodBaseline, MethodRetail, MethodRubik}, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range r.Methods {
		if len(r.PowerW[m]) != len(r.Loads) {
			t.Fatalf("%s: %d power points", m, len(r.PowerW[m]))
		}
		// Power must rise with load for every method.
		for i := 1; i < len(r.PowerW[m]); i++ {
			if r.PowerW[m][i] < r.PowerW[m][i-1]*0.95 {
				t.Errorf("%s: power dropped with load: %v", m, r.PowerW[m])
			}
		}
	}
	// Baseline burns the most at every load level.
	for i := range r.Loads {
		for _, m := range []string{MethodRetail, MethodRubik} {
			if r.PowerW[m][i] >= r.PowerW[MethodBaseline][i] {
				t.Errorf("%s at load %v not below baseline", m, r.Loads[i])
			}
		}
	}
	if r.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestColocationQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-method run")
	}
	scale := Quick()
	scale.TrainEpisodes = 8
	r, err := Colocation(context.Background(), "xapian", scale, []string{MethodBaseline, MethodRetail, MethodDeepPower}, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := r.Results[MethodBaseline]
	retail := r.Results[MethodRetail]
	dp := r.Results[MethodDeepPower]
	if base.Counters.Completions == 0 || retail.Counters.Completions == 0 || dp.Counters.Completions == 0 {
		t.Fatal("degenerate colocation run")
	}
	// The offline-profiled predictor must suffer under the unseen
	// neighbor: more timeouts than the all-turbo baseline.
	if retail.TimeoutRate <= base.TimeoutRate {
		t.Errorf("retail timeout %v not above baseline %v under interference",
			retail.TimeoutRate, base.TimeoutRate)
	}
	if r.Table().Render() == "" {
		t.Error("empty table")
	}
}
