package exp

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// GeneralizationResult backs the paper's §1 claim that DeepPower "can be
// generalized to different scenarios": a policy trained once on the diurnal
// trace is evaluated unchanged on workload shapes it never saw (a different
// diurnal seed, a square-wave load shift, a flash-crowd spike), with the
// no-management baseline on the same traces as the reference.
type GeneralizationResult struct {
	App       string
	Scenarios []string
	// DeepPower and Baseline map scenario → result.
	DeepPower map[string]*server.Result
	Baseline  map[string]*server.Result
}

// Generalization trains DeepPower on appName's standard diurnal setup and
// evaluates the frozen policy across shifted workloads.
func Generalization(appName string, scale Scale) (*GeneralizationResult, error) {
	setup, err := NewSetup(appName, scale)
	if err != nil {
		return nil, err
	}
	dp, err := setup.TrainDeepPower()
	if err != nil {
		return nil, err
	}

	peak := setup.Trace.MaxRate()
	period := setup.Trace.Period
	shiftedDiurnal := workload.Diurnal(workload.DiurnalConfig{
		Period:    period,
		Buckets:   len(setup.Trace.Rates),
		BaseRPS:   1,
		PeakRPS:   3,
		NoiseFrac: 0.08,
		BurstProb: 0.03,
		BurstMul:  1.3,
		Seed:      scale.Seed + 555,
	}).ScaleToPeak(peak)

	scenarios := []struct {
		name  string
		trace *workload.Trace
	}{
		{"diurnal-shifted-seed", shiftedDiurnal},
		{"step", workload.Step(peak*0.25, peak, period, len(setup.Trace.Rates))},
		{"spike", workload.Spike(peak*0.3, peak, period, len(setup.Trace.Rates), 0.1)},
	}

	out := &GeneralizationResult{
		App:       appName,
		DeepPower: map[string]*server.Result{},
		Baseline:  map[string]*server.Result{},
	}
	for _, sc := range scenarios {
		out.Scenarios = append(out.Scenarios, sc.name)
		dpRes, err := runOn(setup, dp, sc.trace, scale)
		if err != nil {
			return nil, fmt.Errorf("exp: generalization %s: %w", sc.name, err)
		}
		baseline, err := setup.BuildPolicy(MethodBaseline)
		if err != nil {
			return nil, err
		}
		baseRes, err := runOn(setup, baseline, sc.trace, scale)
		if err != nil {
			return nil, fmt.Errorf("exp: generalization %s baseline: %w", sc.name, err)
		}
		out.DeepPower[sc.name] = dpRes
		out.Baseline[sc.name] = baseRes
	}
	return out, nil
}

func runOn(setup *Setup, pol server.Policy, trace *workload.Trace, scale Scale) (*server.Result, error) {
	eng := sim.NewEngine()
	srv, err := server.New(eng, setup.ServerConfig(scale.Seed+271), pol)
	if err != nil {
		return nil, err
	}
	return srv.Run(trace, scale.EvalDuration)
}

// Saving returns DeepPower's power saving vs baseline for one scenario.
func (r *GeneralizationResult) Saving(scenario string) float64 {
	base := r.Baseline[scenario].AvgPowerW
	if base == 0 {
		return 0
	}
	return 1 - r.DeepPower[scenario].AvgPowerW/base
}

// Table renders the comparison.
func (r *GeneralizationResult) Table() *Table {
	t := &Table{
		Title:   "Generalization — " + r.App + " (trained on diurnal only)",
		Columns: []string{"scenario", "dp power(W)", "base power(W)", "saving", "dp p99(ms)", "dp timeout %"},
	}
	for _, sc := range r.Scenarios {
		dp := r.DeepPower[sc]
		t.AddRow(sc,
			f2(dp.AvgPowerW),
			f2(r.Baseline[sc].AvgPowerW),
			f2(r.Saving(sc)*100)+"%",
			f3(dp.Latency.P99*1000),
			f3(dp.TimeoutRate*100))
	}
	return t
}
