package exp

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// GeneralizationResult backs the paper's §1 claim that DeepPower "can be
// generalized to different scenarios": a policy trained once on the diurnal
// trace is evaluated unchanged on workload shapes it never saw (a different
// diurnal seed, a square-wave load shift, a flash-crowd spike), with the
// no-management baseline on the same traces as the reference.
type GeneralizationResult struct {
	App       string
	Scenarios []string
	// DeepPower and Baseline map scenario → result.
	DeepPower map[string]*server.Result
	Baseline  map[string]*server.Result
}

// GeneralizationScenarios are the unseen workload shapes, in render order.
var GeneralizationScenarios = []string{"diurnal-shifted-seed", "step", "spike"}

// generalizationTrace builds one scenario's workload from a setup's trace
// parameters. Deterministic in (setup, scale, name).
func generalizationTrace(setup *Setup, scale Scale, name string) *workload.Trace {
	peak := setup.Trace.MaxRate()
	period := setup.Trace.Period
	switch name {
	case "diurnal-shifted-seed":
		return workload.Diurnal(workload.DiurnalConfig{
			Period:    period,
			Buckets:   len(setup.Trace.Rates),
			BaseRPS:   1,
			PeakRPS:   3,
			NoiseFrac: 0.08,
			BurstProb: 0.03,
			BurstMul:  1.3,
			Seed:      scale.Seed + 555,
		}).ScaleToPeak(peak)
	case "step":
		return workload.Step(peak*0.25, peak, period, len(setup.Trace.Rates))
	case "spike":
		return workload.Spike(peak*0.3, peak, period, len(setup.Trace.Rates), 0.1)
	}
	panic("exp: unknown generalization scenario " + name)
}

// Generalization trains DeepPower on appName's standard diurnal setup and
// evaluates the frozen policy across shifted workloads. Each scenario is
// one self-contained pool work unit that deterministically retrains its own
// copy of the policy (identical weights at every worker count) rather than
// sharing one stateful agent across concurrent evaluations.
func Generalization(ctx context.Context, appName string, scale Scale, workers int) (*GeneralizationResult, error) {
	type genOut struct{ dp, base *server.Result }
	outs, err := pool.Map(ctx, GeneralizationScenarios, workers,
		func(_ context.Context, name string, _ int) (genOut, error) {
			setup, err := NewSetup(appName, scale)
			if err != nil {
				return genOut{}, err
			}
			dp, err := setup.TrainDeepPower()
			if err != nil {
				return genOut{}, err
			}
			trace := generalizationTrace(setup, scale, name)
			dpRes, err := runOn(setup, dp, trace, scale)
			if err != nil {
				return genOut{}, fmt.Errorf("exp: generalization %s: %w", name, err)
			}
			baseline, err := setup.BuildPolicy(MethodBaseline)
			if err != nil {
				return genOut{}, err
			}
			baseRes, err := runOn(setup, baseline, trace, scale)
			if err != nil {
				return genOut{}, fmt.Errorf("exp: generalization %s baseline: %w", name, err)
			}
			return genOut{dp: dpRes, base: baseRes}, nil
		})
	if err != nil {
		return nil, err
	}
	out := &GeneralizationResult{
		App:       appName,
		DeepPower: map[string]*server.Result{},
		Baseline:  map[string]*server.Result{},
	}
	for i, name := range GeneralizationScenarios {
		out.Scenarios = append(out.Scenarios, name)
		out.DeepPower[name] = outs[i].dp
		out.Baseline[name] = outs[i].base
	}
	return out, nil
}

func runOn(setup *Setup, pol server.Policy, trace *workload.Trace, scale Scale) (*server.Result, error) {
	eng := sim.NewEngine()
	srv, err := server.New(eng, setup.ServerConfig(scale.Seed+271), pol)
	if err != nil {
		return nil, err
	}
	return srv.Run(trace, scale.EvalDuration)
}

// Saving returns DeepPower's power saving vs baseline for one scenario.
func (r *GeneralizationResult) Saving(scenario string) float64 {
	base := r.Baseline[scenario].AvgPowerW
	if base == 0 {
		return 0
	}
	return 1 - r.DeepPower[scenario].AvgPowerW/base
}

// Table renders the comparison.
func (r *GeneralizationResult) Table() *Table {
	t := &Table{
		Title:   "Generalization — " + r.App + " (trained on diurnal only)",
		Columns: []string{"scenario", "dp power(W)", "base power(W)", "saving", "dp p99(ms)", "dp timeout %"},
	}
	for _, sc := range r.Scenarios {
		dp := r.DeepPower[sc]
		t.AddRow(sc,
			f2(dp.AvgPowerW),
			f2(r.Baseline[sc].AvgPowerW),
			f2(r.Saving(sc)*100)+"%",
			f3(dp.Latency.P99*1000),
			f3(dp.TimeoutRate*100))
	}
	return t
}
