package exp

import (
	"context"
	"fmt"
	"strings"
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

// equivScale is Quick with the expensive knobs turned down: the
// serial/parallel determinism contract does not depend on how long the
// simulations run, so the equivalence suite uses short episodes to keep
// two full registry executions CI-friendly.
func equivScale() Scale {
	s := Quick()
	s.TrainEpisodes = 1
	s.EvalDuration = 12 * sim.Second
	s.TracePeriod = 10 * sim.Second
	s.Samples = 2000
	return s
}

// TestSerialParallelEquivalence is the determinism contract behind
// cmd/repro -parallel: every registered harness, run with workers=1 and
// workers=8, must render byte-identical tables and CSVs. Harnesses whose
// artifacts embed wall-clock measurements (table2, overhead) are checked
// for shape equality instead.
func TestSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full registry twice")
	}
	scale := equivScale()
	for _, h := range Harnesses() {
		h := h
		t.Run(h.Name, func(t *testing.T) {
			serial, err := h.Run(context.Background(), scale, 1)
			if err != nil {
				t.Fatalf("serial run: %v", err)
			}
			parallel, err := h.Run(context.Background(), scale, 8)
			if err != nil {
				t.Fatalf("parallel run: %v", err)
			}
			if len(serial) == 0 {
				t.Fatal("harness produced no artifacts")
			}
			if len(serial) != len(parallel) {
				t.Fatalf("artifact count differs: serial %d, parallel %d", len(serial), len(parallel))
			}
			for i := range serial {
				s, p := serial[i], parallel[i]
				if s.Name != p.Name || s.Ext != p.Ext {
					t.Fatalf("artifact %d identity differs: %s.%s vs %s.%s", i, s.Name, s.Ext, p.Name, p.Ext)
				}
				if !h.Deterministic {
					if err := sameShape(s.Data, p.Data); err != nil {
						t.Errorf("%s.%s shape: %v", s.Name, s.Ext, err)
					}
					continue
				}
				if s.Data != p.Data {
					t.Errorf("%s.%s differs between workers=1 and workers=8:\n%s",
						s.Name, s.Ext, firstDiff(s.Data, p.Data))
				}
			}
		})
	}
}

// sameShape asserts two renderings have the same line count and identical
// first (header) line — the stability contract for wall-clock artifacts.
func sameShape(a, b string) error {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	if len(la) != len(lb) {
		return fmt.Errorf("line count %d vs %d", len(la), len(lb))
	}
	if len(la) > 0 && la[0] != lb[0] {
		return fmt.Errorf("header %q vs %q", la[0], lb[0])
	}
	return nil
}

// firstDiff locates the first differing line for a readable failure.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	n := len(la)
	if len(lb) < n {
		n = len(lb)
	}
	for i := 0; i < n; i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d:\n  serial:   %q\n  parallel: %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("line counts differ: %d vs %d", len(la), len(lb))
}

// TestHarnessRunsAreSeedStable asserts a deterministic harness renders the
// same artifacts when executed twice in one process with the same seed —
// the prerequisite for the serial/parallel comparison being meaningful.
func TestHarnessRunsAreSeedStable(t *testing.T) {
	if testing.Short() {
		t.Skip("repeated harness runs")
	}
	scale := equivScale()
	// A cheap deterministic subset: sampling-only, a simulation grid, and a
	// pooled frequency-trace harness.
	for _, name := range []string{"fig1", "table3", "fig11"} {
		h, err := HarnessByName(name)
		if err != nil {
			t.Fatal(err)
		}
		first, err := h.Run(context.Background(), scale, 4)
		if err != nil {
			t.Fatal(err)
		}
		second, err := h.Run(context.Background(), scale, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(first) != len(second) {
			t.Fatalf("%s: artifact count changed between runs", name)
		}
		for i := range first {
			if first[i].Data != second[i].Data {
				t.Errorf("%s: artifact %s not stable across same-seed runs:\n%s",
					name, first[i].Name, firstDiff(first[i].Data, second[i].Data))
			}
		}
	}
}
