package exp

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/workload"
)

// CrossoverResult sweeps the offered peak load and records every method's
// power at each level — locating where methods' orderings cross (e.g.
// prediction-based policies excel at low load where slack abounds, while at
// high load every method converges toward the baseline).
type CrossoverResult struct {
	App     string
	Loads   []float64
	Methods []string
	// PowerW[m][i] is method m's power at Loads[i].
	PowerW map[string][]float64
	// SLAMet[m][i] reports whether p99 stayed within the SLA.
	SLAMet map[string][]bool
}

// CrossoverLoads is the default sweep grid.
var CrossoverLoads = []float64{0.3, 0.5, 0.7, 0.85}

// Crossover evaluates the methods across constant-rate loads for one app.
// Each method is one self-contained pool work unit: it builds its own Setup
// and policy (DeepPower is trained once per unit and reused at every level —
// its training distribution covers the swept range), then sweeps the loads
// serially inside the unit so the policy's state evolution stays identical
// at any worker count.
func Crossover(ctx context.Context, appName string, scale Scale, methods []string, workers int) (*CrossoverResult, error) {
	if methods == nil {
		methods = []string{MethodBaseline, MethodRubik, MethodRetail, MethodGemini, MethodDeepPower}
	}
	type sweep struct {
		powerW []float64
		slaMet []bool
	}
	sweeps, err := pool.Map(ctx, methods, workers,
		func(_ context.Context, m string, _ int) (sweep, error) {
			setup, err := NewSetup(appName, scale)
			if err != nil {
				return sweep{}, err
			}
			cap := setup.Prof.MaxCapacity(setup.Prof.RefFreq, scale.Seed)
			pol, err := setup.BuildPolicy(m)
			if err != nil {
				return sweep{}, fmt.Errorf("exp: crossover %s: %w", m, err)
			}
			var sw sweep
			for _, load := range CrossoverLoads {
				trace := workload.Constant(load*cap, setup.Trace.Period)
				res, err := runOn(setup, pol, trace, scale)
				if err != nil {
					return sweep{}, fmt.Errorf("exp: crossover %s@%v: %w", m, load, err)
				}
				sw.powerW = append(sw.powerW, res.AvgPowerW)
				sw.slaMet = append(sw.slaMet, res.SLAMet)
			}
			return sw, nil
		})
	if err != nil {
		return nil, err
	}
	out := &CrossoverResult{
		App:     appName,
		Loads:   CrossoverLoads,
		Methods: methods,
		PowerW:  map[string][]float64{},
		SLAMet:  map[string][]bool{},
	}
	for i, m := range methods {
		out.PowerW[m] = sweeps[i].powerW
		out.SLAMet[m] = sweeps[i].slaMet
	}
	return out, nil
}

// Table renders power per (method, load); cells carry a * when the SLA was
// violated at that point.
func (r *CrossoverResult) Table() *Table {
	t := &Table{
		Title:   "Load sweep — " + r.App + " (power W; * = SLA violated)",
		Columns: []string{"method"},
	}
	for _, l := range r.Loads {
		t.Columns = append(t.Columns, fmt.Sprintf("%d%%", int(l*100)))
	}
	for _, m := range r.Methods {
		row := []string{m}
		for i := range r.Loads {
			cell := f2(r.PowerW[m][i])
			if !r.SLAMet[m][i] {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}
