package exp

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/workload"
)

// CrossoverResult sweeps the offered peak load and records every method's
// power at each level — locating where methods' orderings cross (e.g.
// prediction-based policies excel at low load where slack abounds, while at
// high load every method converges toward the baseline).
type CrossoverResult struct {
	App     string
	Loads   []float64
	Methods []string
	// PowerW[m][i] is method m's power at Loads[i].
	PowerW map[string][]float64
	// SLAMet[m][i] reports whether p99 stayed within the SLA.
	SLAMet map[string][]bool
}

// CrossoverLoads is the default sweep grid.
var CrossoverLoads = []float64{0.3, 0.5, 0.7, 0.85}

// Crossover evaluates the methods across constant-rate loads for one app.
// DeepPower is trained once on the standard diurnal setup and reused at
// every level (its training distribution covers the swept range).
func Crossover(appName string, scale Scale, methods []string) (*CrossoverResult, error) {
	if methods == nil {
		methods = []string{MethodBaseline, MethodRubik, MethodRetail, MethodGemini, MethodDeepPower}
	}
	setup, err := NewSetup(appName, scale)
	if err != nil {
		return nil, err
	}
	out := &CrossoverResult{
		App:     appName,
		Loads:   CrossoverLoads,
		Methods: methods,
		PowerW:  map[string][]float64{},
		SLAMet:  map[string][]bool{},
	}
	cap := setup.Prof.MaxCapacity(setup.Prof.RefFreq, scale.Seed)
	for _, m := range methods {
		pol, err := setup.BuildPolicy(m)
		if err != nil {
			return nil, fmt.Errorf("exp: crossover %s: %w", m, err)
		}
		for _, load := range out.Loads {
			trace := workload.Constant(load*cap, setup.Trace.Period)
			res, err := runOn(setup, pol, trace, scale)
			if err != nil {
				return nil, fmt.Errorf("exp: crossover %s@%v: %w", m, load, err)
			}
			out.PowerW[m] = append(out.PowerW[m], res.AvgPowerW)
			out.SLAMet[m] = append(out.SLAMet[m], res.SLAMet)
		}
	}
	return out, nil
}

// Table renders power per (method, load); cells carry a * when the SLA was
// violated at that point.
func (r *CrossoverResult) Table() *Table {
	t := &Table{
		Title:   "Load sweep — " + r.App + " (power W; * = SLA violated)",
		Columns: []string{"method"},
	}
	for _, l := range r.Loads {
		t.Columns = append(t.Columns, fmt.Sprintf("%d%%", int(l*100)))
	}
	for _, m := range r.Methods {
		row := []string{m}
		for i := range r.Loads {
			cell := f2(r.PowerW[m][i])
			if !r.SLAMet[m][i] {
				cell += "*"
			}
			row = append(row, cell)
		}
		t.AddRow(row...)
	}
	return t
}
