package exp

import (
	"time"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/rl"
	"github.com/deeppower/deeppower/internal/sim"
)

// OverheadResult reproduces the §5.5 overhead analysis:
//
//   - the DDPG parameter update with batch 64 (paper: 13 ms on their CPU)
//   - action generation (paper: < 1 ms)
//   - actor parameter count (paper: 2096)
//   - per-core frequency-set cost in the thread controller (paper: < 10 µs)
//
// The paper also measures +2.81 W of framework power on real hardware; in a
// simulation the framework executes outside the modeled socket, so that row
// is reported as the paper's value with measurement not applicable.
type OverheadResult struct {
	TrainStepMS     float64 // batch-64 DDPG update
	ActionGenUS     float64 // single inference
	ActorParams     int
	FreqSetUS       float64 // one SetFreq round-trip in the simulator
	PaperTrainMS    float64
	PaperActorParam int

	// SimEvents and SimEventsPerSec report the simulation core's own
	// throughput over a ten-second reference episode: how many engine
	// events fired, and fired events per wall-clock second. They bound the
	// simulator's contribution to any measured overhead above.
	SimEvents       uint64
	SimEventsPerSec float64
}

// Overhead measures the framework's computational costs.
func Overhead() (*OverheadResult, error) {
	ddpg, err := rl.NewDDPG(rl.DDPGConfig{
		StateDim:  agent.StateDim,
		ActionDim: agent.ActionDim,
		Seed:      1,
	})
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(1)
	replay := rl.NewReplay(1024, rng.Stream("replay"))
	for i := 0; i < 1024; i++ {
		replay.Push(rl.Transition{
			State:     randState(rng),
			Action:    []float64{rng.Float64(), rng.Float64()},
			Reward:    -rng.Float64(),
			NextState: randState(rng),
		})
	}
	batch := replay.Sample(64)

	res := &OverheadResult{
		ActorParams:     ddpg.NumParams(),
		PaperTrainMS:    13,
		PaperActorParam: 2096,
	}

	const trainIters = 50
	start := time.Now()
	for i := 0; i < trainIters; i++ {
		ddpg.Update(batch)
	}
	res.TrainStepMS = float64(time.Since(start).Milliseconds()) / trainIters

	state := randState(rng)
	const actIters = 5000
	start = time.Now()
	for i := 0; i < actIters; i++ {
		ddpg.Act(state)
	}
	res.ActionGenUS = float64(time.Since(start).Microseconds()) / actIters

	// Frequency-set cost: a SetFreq call against a live core model.
	res.FreqSetUS = measureFreqSet()

	// Simulator throughput: events fired over a reference episode.
	res.SimEvents, res.SimEventsPerSec, err = measureSimThroughput()
	if err != nil {
		return nil, err
	}
	return res, nil
}

func randState(rng *sim.RNG) []float64 {
	s := make([]float64, agent.StateDim)
	for i := range s {
		s[i] = rng.Float64()
	}
	return s
}

// Table renders measured vs. paper overheads.
func (r *OverheadResult) Table() *Table {
	t := &Table{
		Title:   "§5.5 — framework overhead",
		Columns: []string{"metric", "measured", "paper"},
	}
	t.AddRow("DDPG update, batch 64 (ms)", f3(r.TrainStepMS), f(r.PaperTrainMS))
	t.AddRow("action generation (us)", f3(r.ActionGenUS), "< 1000")
	t.AddRow("actor parameters", f(float64(r.ActorParams)), f(float64(r.PaperActorParam)))
	t.AddRow("per-core freq set (us)", f3(r.FreqSetUS), "< 10")
	t.AddRow("framework power (W)", "n/a (simulated)", "2.81")
	t.AddRow("sim events, 10s episode", f(float64(r.SimEvents)), "n/a (simulation)")
	t.AddRow("sim throughput (events/s)", f(r.SimEventsPerSec), "n/a (simulation)")
	return t
}
