package exp

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/baselines"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// Table3Loads are the paper's load levels.
var Table3Loads = []float64{0.2, 0.5, 0.7}

// Table3Result reproduces Table 3: per-application SLA and 99th-percentile
// latency at 20/50/70% load, running at the reference (maximum non-turbo)
// frequency without power management.
type Table3Result struct {
	// P99ms maps app name → measured p99 latency (ms) per load level.
	P99ms map[string][]float64
	// SLAms echoes each app's SLA.
	SLAms map[string]float64
}

// Table3 measures every built-in application. Workers from scale override
// the paper's counts for quick runs.
func Table3(scale Scale) (*Table3Result, error) {
	res := &Table3Result{P99ms: map[string][]float64{}, SLAms: map[string]float64{}}
	for _, name := range app.Names() {
		prof := app.MustByName(name)
		if scale.Workers > 0 {
			prof.Workers = scale.Workers
		}
		res.SLAms[name] = prof.SLA.Milliseconds()
		for _, load := range Table3Loads {
			rate := load * prof.MaxCapacity(prof.RefFreq, scale.Seed)
			// Aim for enough completions to resolve a p99; cap the
			// virtual duration for the second-scale apps.
			dur := sim.Seconds(20000 / rate)
			if dur > 100*sim.Second {
				dur = 100 * sim.Second
			}
			if dur < 10*sim.Second {
				dur = 10 * sim.Second
			}
			eng := sim.NewEngine()
			srv, err := server.New(eng, server.Config{App: prof, Seed: scale.Seed},
				baselines.NewFixedFreq(prof.RefFreq))
			if err != nil {
				return nil, err
			}
			r, err := srv.Run(workload.Constant(rate, sim.Second), dur)
			if err != nil {
				return nil, fmt.Errorf("exp: table3 %s at %v: %w", name, load, err)
			}
			res.P99ms[name] = append(res.P99ms[name], r.Latency.P99*1000)
		}
	}
	return res, nil
}

// Table renders measured vs. paper numbers.
func (r *Table3Result) Table() *Table {
	t := &Table{
		Title: "Table 3 — p99 latency (ms) at 20/50/70% load, max frequency",
		Columns: []string{"app", "SLA(ms)",
			"20% meas", "20% paper", "50% meas", "50% paper", "70% meas", "70% paper"},
	}
	for _, name := range app.Names() {
		paper := app.PaperTable3[name]
		row := []string{name, f(r.SLAms[name])}
		for i := range Table3Loads {
			row = append(row, f3(r.P99ms[name][i]), f3(paper.P99ms[i]))
		}
		t.AddRow(row...)
	}
	return t
}
