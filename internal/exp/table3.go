package exp

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/baselines"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// Table3Loads are the paper's load levels.
var Table3Loads = []float64{0.2, 0.5, 0.7}

// Table3Result reproduces Table 3: per-application SLA and 99th-percentile
// latency at 20/50/70% load, running at the reference (maximum non-turbo)
// frequency without power management.
type Table3Result struct {
	// P99ms maps app name → measured p99 latency (ms) per load level.
	P99ms map[string][]float64
	// SLAms echoes each app's SLA.
	SLAms map[string]float64
}

// table3Unit is one self-contained (app, load) measurement cell.
type table3Unit struct {
	app  string
	load float64
}

// Table3 measures every built-in application. Workers from scale override
// the paper's counts for quick runs; the (app, load) grid runs on up to
// workers concurrent pool workers, each cell with its own engine, server,
// and profile, so the result is identical at any parallelism.
func Table3(ctx context.Context, scale Scale, workers int) (*Table3Result, error) {
	var units []table3Unit
	for _, name := range app.Names() {
		for _, load := range Table3Loads {
			units = append(units, table3Unit{app: name, load: load})
		}
	}
	p99s, err := pool.Map(ctx, units, workers, func(_ context.Context, u table3Unit, _ int) (float64, error) {
		prof := app.MustByName(u.app)
		if scale.Workers > 0 {
			prof.Workers = scale.Workers
		}
		rate := u.load * prof.MaxCapacity(prof.RefFreq, scale.Seed)
		// Aim for enough completions to resolve a p99; cap the
		// virtual duration for the second-scale apps.
		dur := sim.Seconds(20000 / rate)
		if dur > 100*sim.Second {
			dur = 100 * sim.Second
		}
		if dur < 10*sim.Second {
			dur = 10 * sim.Second
		}
		eng := sim.NewEngine()
		srv, err := server.New(eng, server.Config{App: prof, Seed: scale.Seed},
			baselines.NewFixedFreq(prof.RefFreq))
		if err != nil {
			return 0, err
		}
		r, err := srv.Run(workload.Constant(rate, sim.Second), dur)
		if err != nil {
			return 0, fmt.Errorf("exp: table3 %s at %v: %w", u.app, u.load, err)
		}
		return r.Latency.P99 * 1000, nil
	})
	if err != nil {
		return nil, err
	}

	res := &Table3Result{P99ms: map[string][]float64{}, SLAms: map[string]float64{}}
	for _, name := range app.Names() {
		res.SLAms[name] = app.MustByName(name).SLA.Milliseconds()
	}
	for i, u := range units {
		res.P99ms[u.app] = append(res.P99ms[u.app], p99s[i])
	}
	return res, nil
}

// Table renders measured vs. paper numbers.
func (r *Table3Result) Table() *Table {
	t := &Table{
		Title: "Table 3 — p99 latency (ms) at 20/50/70% load, max frequency",
		Columns: []string{"app", "SLA(ms)",
			"20% meas", "20% paper", "50% meas", "50% paper", "70% meas", "70% paper"},
	}
	for _, name := range app.Names() {
		paper := app.PaperTable3[name]
		row := []string{name, f(r.SLAms[name])}
		for i := range Table3Loads {
			row = append(row, f3(r.P99ms[name][i]), f3(paper.P99ms[i]))
		}
		t.AddRow(row...)
	}
	return t
}
