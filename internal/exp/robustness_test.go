package exp

import (
	"context"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/fault"
	"github.com/deeppower/deeppower/internal/sim"
)

func robustnessScale() Scale {
	return Scale{
		Workers:       4,
		TrainEpisodes: 2,
		EvalDuration:  20 * sim.Second,
		TracePeriod:   10 * sim.Second,
		Samples:       2000,
		Seed:          1,
	}
}

// breakingPlan is an actuation-fault campaign hostile to fine-grained DVFS
// policies: most governor writes are lost and the survivors land tens of
// milliseconds late, so per-tick deadline boosting stops working. A policy
// that simply parks cores at max frequency is barely affected — once a
// write lands, no further writes are needed.
func breakingPlan(seed int64) fault.Plan { return WriteLossPlan(seed) }

// TestGuardRestoresTimeoutBudget is the robustness acceptance criterion:
// under the breaking scenario, bare DeepPower must violate the paper's
// Eq. 2 timeout budget (>1% timeouts), while the same trained policy
// wrapped in the guarded watchdog must restore TimeoutBudgetMet.
func TestGuardRestoresTimeoutBudget(t *testing.T) {
	sc := robustnessScale()
	sc.TrainEpisodes = 4
	sc.EvalDuration = 40 * sim.Second
	setup, err := NewSetup(app.Xapian, sc)
	if err != nil {
		t.Fatal(err)
	}
	// A looser SLA than the default profile: at this operating point the
	// diurnal peaks are servable at turbo, so a max-frequency fallback can
	// genuinely restore the budget, while a policy whose fine-grained DVFS
	// writes are being dropped still drowns in peak-hour timeouts.
	setup.Prof.SLA = 20 * sim.Millisecond
	plan := breakingPlan(11)

	bare, err := setup.BuildPolicy(MethodDeepPower)
	if err != nil {
		t.Fatal(err)
	}
	bareRes, err := setup.EvaluateUnderFaults(bare, plan)
	if err != nil {
		t.Fatal(err)
	}
	if bareRes.TimeoutBudgetMet {
		t.Fatalf("bare deeppower unexpectedly met the Eq.2 budget under faults "+
			"(timeout rate %.3f%%); the breaking scenario is too weak",
			bareRes.TimeoutRate*100)
	}

	inner, err := setup.BuildPolicy(MethodDeepPower)
	if err != nil {
		t.Fatal(err)
	}
	guard := fault.NewGuardedPolicy(inner, fault.GuardConfig{
		// Trip exactly at the paper's Eq. 2 budget, check frequently so the
		// first diurnal peak trips the guard early in its ramp, and make
		// safe mode sticky for the rest of the run: with actuation faults
		// this severe there is no reason to hand control back.
		TimeoutRateLimit: 0.01,
		CheckEvery:       10 * sim.Millisecond,
		MinSamples:       16,
		Backoff:          10 * sim.Minute,
	})
	guardRes, err := setup.EvaluateUnderFaults(guard, plan)
	if err != nil {
		t.Fatal(err)
	}
	if !guardRes.TimeoutBudgetMet {
		t.Fatalf("guarded deeppower still violates Eq.2: timeout rate %.3f%% "+
			"(bare %.3f%%), guard stats %+v",
			guardRes.TimeoutRate*100, bareRes.TimeoutRate*100, guardRes.PolicyStats)
	}
	if guardRes.PolicyStats["guard.fallbacks"] == 0 {
		t.Error("guarded run met the budget without ever engaging safe mode; " +
			"the scenario no longer exercises the watchdog")
	}
	t.Logf("bare timeout %.3f%% -> guarded %.3f%% (fallbacks=%v, safe ticks=%v)",
		bareRes.TimeoutRate*100, guardRes.TimeoutRate*100,
		guardRes.PolicyStats["guard.fallbacks"], guardRes.PolicyStats["guard.safe_ticks"])
}

// TestRobustnessHarness smoke-tests the exp harness end to end at a tiny
// scale: one scenario, tables render, and every (method, bare/guarded)
// cell is populated.
func TestRobustnessHarness(t *testing.T) {
	if testing.Short() {
		t.Skip("trains several policies")
	}
	scale := robustnessScale()
	scale.EvalDuration = 10 * sim.Second
	r, err := Robustness(context.Background(), scale, app.Xapian, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Scenarios) == 0 {
		t.Fatal("no scenarios ran")
	}
	for _, sc := range r.Scenarios {
		for _, m := range RobustnessMethods {
			if r.Bare[sc][m] == nil || r.Guarded[sc][m] == nil {
				t.Fatalf("missing result for %s/%s", sc, m)
			}
		}
	}
	tables := r.Tables()
	if len(tables) != len(r.Scenarios) {
		t.Fatalf("got %d tables for %d scenarios", len(tables), len(r.Scenarios))
	}
	for _, tb := range tables {
		if tb.Render() == "" || len(tb.Rows) != len(RobustnessMethods) {
			t.Fatalf("malformed table %q", tb.Title)
		}
	}
}
