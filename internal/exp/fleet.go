package exp

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"strings"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/ckpt"
	"github.com/deeppower/deeppower/internal/cluster"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/fault"
	"github.com/deeppower/deeppower/internal/power"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// Fleet-harness constants: the control epoch the global/local split runs on,
// the global tier's reassignment cadence in epochs, and the time-series
// decimation (one row per second of virtual time).
const (
	fleetEpoch       = 100 * sim.Millisecond
	fleetGlobalEvery = 10
	fleetSeriesEvery = 10
	fleetMaxDuration = 90 * sim.Second
)

// fleetGen describes one machine generation of the heterogeneous fleet.
// Generations differ in power draw and core complement: newer parts burn
// fewer watts per cycle and bolt efficiency cores next to the fast ones,
// while the oldest generation is a homogeneous fast-core part from before
// hybrid silicon. Mixed hardware ages in one fleet is the signal a
// power-aware balancer exploits — a load-only balancer cannot tell the
// machines apart.
type fleetGen struct {
	name                 string
	dynMul, leakMul, unc float64
	// efficient is the generation's efficiency-core complement as a fraction
	// of the profile's fast-core count (0 = homogeneous).
	efficient float64
}

// fleetGens is the generation mix, assigned round-robin by shard index.
var fleetGens = []fleetGen{
	{name: "new", dynMul: 0.80, leakMul: 0.80, unc: 0.90, efficient: 1.0},
	{name: "mid", dynMul: 1.00, leakMul: 1.00, unc: 1.00, efficient: 0.5},
	{name: "old", dynMul: 1.30, leakMul: 1.25, unc: 1.10, efficient: 0},
}

// fleetPowerModel returns shard i's generation-scaled power model.
func fleetPowerModel(i int) power.Model {
	g := fleetGens[i%len(fleetGens)]
	m := power.DefaultModel()
	m.DynCoef *= g.dynMul
	m.LeakPerCore *= g.leakMul
	m.Uncore *= g.unc
	return m
}

// fleetTopology returns shard i's core topology: the generation's efficiency
// complement alongside the profile's fast cores, or nil for the homogeneous
// old generation. The fleet's sealed policy was trained homogeneous and does
// not drive placement, so hybrid shards run all cores — the extra efficiency
// cores add cheap capacity that the per-class power curves price in.
func fleetTopology(i, workers int) *cpu.Topology {
	g := fleetGens[i%len(fleetGens)]
	eff := int(g.efficient*float64(workers) + 0.5)
	if eff <= 0 {
		return nil
	}
	t := cpu.DefaultHetero(workers, eff)
	return &t
}

// FleetFaultPlan is the per-shard fault campaign of the fleet's degraded-mode
// variant: transient core failures plus thermal throttle episodes, scaled so
// every shard sees a few events per diurnal period.
func FleetFaultPlan(seed int64, period sim.Time) fault.Plan {
	return fault.Plan{
		Seed: seed,
		Cores: fault.CorePlan{
			MTBF:         period / 2,
			MTTR:         period / 20,
			ThrottleCap:  1.4,
			ThrottleMTBF: period / 4,
			ThrottleMTTR: period / 30,
		},
	}
}

// FleetResult holds the balancer-comparison campaigns and the fault-campaign
// variant of the fleet experiment.
type FleetResult struct {
	App    string
	Shards int
	// Campaigns maps balancer name → fleet result, in BalancerNames order.
	Campaigns map[string]*cluster.Result
	// Fault maps FleetFaultModes entries → fleet result under the fault
	// campaign (power-aware balancer, fleet power budget engaged).
	Fault map[string]*cluster.Result
}

// Fleet fault-variant modes: each shard's local agent runs bare, or wrapped
// in the max-frequency-pinning watchdog.
const (
	FleetFaultBare    = "bare"
	FleetFaultGuarded = "guarded"
)

// FleetFaultModes is the fault-variant comparison order.
var FleetFaultModes = []string{FleetFaultBare, FleetFaultGuarded}

// Fleet runs the cluster-scale experiment: one DeepPower policy is trained on
// the single-server diurnal workload, promoted through a checkpoint registry,
// and loaded into every shard's inference-only local agent; then the same
// heterogeneous fleet (FleetShards servers, mixed machine generations) serves
// the fleet-level diurnal trace once per balancer, with the global tier
// reassigning request shares every second. A final pair of campaigns repeats
// the power-aware run under a per-shard fault plan plus a fleet power budget,
// with bare and guarded local agents.
//
// Campaigns run sequentially; the parallelism is inside cluster.Run, which
// advances up to workers shards concurrently per epoch and is byte-identical
// at any worker count.
func Fleet(ctx context.Context, scale Scale, workers int) (*FleetResult, error) {
	shards := scale.FleetShards
	if shards <= 0 {
		shards = 4
	}
	setup, err := NewSetup(app.Xapian, scale)
	if err != nil {
		return nil, err
	}
	// The same looser operating point as the policy-lifecycle and robustness
	// experiments: a 20 ms fleet SLO leaves the peaks servable at turbo, so
	// the Eq. 2 budget measures balancing quality rather than raw saturation.
	setup.Prof.SLA = 20 * sim.Millisecond

	sealed, err := fleetTrainPromote(setup)
	if err != nil {
		return nil, err
	}

	out := &FleetResult{
		App:       setup.Prof.Name,
		Shards:    shards,
		Campaigns: map[string]*cluster.Result{},
		Fault:     map[string]*cluster.Result{},
	}
	// The fleet campaign compresses one full diurnal period into at most
	// fleetMaxDuration of virtual time: the balancer comparison needs the
	// whole load sweep (trough, ramp, peak), but a 100-server campaign at
	// the paper's 360 s horizon would be hundreds of millions of requests.
	// The compressed window still routes tens of millions at full scale.
	dur := scale.EvalDuration
	if dur > fleetMaxDuration {
		dur = fleetMaxDuration
	}
	fleetTrace := setup.Trace.Scale(float64(shards))
	if fleetTrace.Period > dur {
		fleetTrace.Period = dur
	}
	for _, name := range cluster.BalancerNames() {
		bal, err := cluster.NewBalancer(name)
		if err != nil {
			return nil, err
		}
		cfgs, err := fleetShardConfigs(setup, scale, shards, dur, sealed, "", nil)
		if err != nil {
			return nil, err
		}
		res, err := cluster.Run(ctx, cluster.Config{
			Trace:       fleetTrace,
			Duration:    dur,
			Epoch:       fleetEpoch,
			Seed:        sim.SubSeed(scale.Seed, "fleet/arrivals"),
			Balancer:    bal,
			Global:      &cluster.GlobalConfig{Every: fleetGlobalEvery},
			SeriesEvery: fleetSeriesEvery,
		}, cfgs, workers)
		if err != nil {
			return nil, fmt.Errorf("exp: fleet %s: %w", name, err)
		}
		out.Campaigns[name] = res
	}

	// Fault variant: power-aware balancing, per-shard fault campaigns, and a
	// fleet power budget tight enough that the global tier's frequency
	// ceilings engage on the inefficient generations.
	budget := fleetPowerBudget(setup, shards)
	for _, mode := range FleetFaultModes {
		bal, err := cluster.NewBalancer(cluster.PowerAwareName)
		if err != nil {
			return nil, err
		}
		cfgs, err := fleetShardConfigs(setup, scale, shards, dur, sealed, mode, func(i int) fault.Plan {
			return FleetFaultPlan(sim.SubSeed(scale.Seed, fmt.Sprintf("fleet/fault/%d", i)), setup.Trace.Period)
		})
		if err != nil {
			return nil, err
		}
		res, err := cluster.Run(ctx, cluster.Config{
			Trace:       fleetTrace,
			Duration:    dur,
			Epoch:       fleetEpoch,
			Seed:        sim.SubSeed(scale.Seed, "fleet/arrivals"),
			Balancer:    bal,
			Global:      &cluster.GlobalConfig{Every: fleetGlobalEvery, PowerBudgetW: budget},
			SeriesEvery: fleetSeriesEvery,
		}, cfgs, workers)
		if err != nil {
			return nil, fmt.Errorf("exp: fleet fault %s: %w", mode, err)
		}
		out.Fault[mode] = res
	}
	return out, nil
}

// fleetTrainPromote trains the fleet's single DeepPower policy on the
// per-server workload, promotes it through a (throwaway) checkpoint registry,
// and returns the promoted version re-sealed as a policy container — the
// bytes every shard's local agent loads.
func fleetTrainPromote(setup *Setup) ([]byte, error) {
	dp, err := setup.TrainDeepPower()
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := dp.SavePolicy(&buf); err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "fleet-registry-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	reg, err := ckpt.OpenRegistry(dir)
	if err != nil {
		return nil, err
	}
	v, err := reg.Put(buf.Bytes())
	if err != nil {
		return nil, err
	}
	if err := reg.Promote(v); err != nil {
		return nil, err
	}
	_, kind, payload, err := reg.GetCurrent()
	if err != nil {
		return nil, err
	}
	return ckpt.Seal(kind, payload), nil
}

// fleetShardConfigs builds one self-contained ShardConfig per shard: a fresh
// inference-only agent loaded from the promoted policy bytes, the shard's
// generation-scaled power model, a SubSeed-derived service RNG stream, and —
// for the fault variant — the shard's own injector and (optionally) guard.
func fleetShardConfigs(setup *Setup, scale Scale, shards int, dur sim.Time, sealed []byte,
	faultMode string, plan func(i int) fault.Plan) ([]cluster.ShardConfig, error) {
	cfgs := make([]cluster.ShardConfig, shards)
	for i := 0; i < shards; i++ {
		dp, err := agent.New(setup.agentConfig())
		if err != nil {
			return nil, err
		}
		if err := dp.LoadPolicy(bytes.NewReader(sealed)); err != nil {
			return nil, fmt.Errorf("exp: fleet shard %d load policy: %w", i, err)
		}
		scfg := setup.ServerConfig(sim.SubSeed(scale.Seed, fmt.Sprintf("fleet/shard/%d", i)))
		scfg.Power = fleetPowerModel(i)
		scfg.Topology = fleetTopology(i, setup.Prof.Workers)
		scfg.Warmup = dur / 10
		scfg.DiscardLatencies = true
		cores := setup.Prof.Workers
		if scfg.Topology != nil {
			cores = scfg.Topology.TotalCores()
		}
		var pol server.Policy = dp
		if plan != nil {
			inj, err := fault.NewInjector(plan(i), cores)
			if err != nil {
				return nil, err
			}
			scfg.Faults = inj
			if faultMode == FleetFaultGuarded {
				pol = fault.NewGuardedPolicy(dp, fault.GuardConfig{
					TimeoutRateLimit: 0.01,
					CheckEvery:       10 * sim.Millisecond,
					MinSamples:       16,
					Backoff:          10 * sim.Minute,
				})
			}
		}
		cfgs[i] = cluster.ShardConfig{Server: scfg, Policy: pol}
	}
	return cfgs, nil
}

// fleetPowerBudget is the fault variant's fleet-wide power cap: 90% of the
// fleet's all-on, all-turbo draw. The fraction is a measured trade between
// energy shed and timeouts added on top of the fault campaign's own ~2.3%:
// at 0.8 the ceilings bind so hard at peak that timeouts reach 15%, while
// at 0.9 the budget still clamps tens of millions of governor writes on
// busy inefficient shards but the fleet stays serviceable.
func fleetPowerBudget(setup *Setup, shards int) float64 {
	turbo := cpu.DefaultLadder().Max
	total := 0.0
	for i := 0; i < shards; i++ {
		m := fleetPowerModel(i)
		total += m.Uncore
		if t := fleetTopology(i, setup.Prof.Workers); t != nil {
			for _, c := range t.Classes {
				total += float64(c.Count) * m.CorePowerScaled(c.Ladder.Max, true, c.DynFactor(), c.LeakFactor())
			}
		} else {
			total += float64(setup.Prof.Workers) * m.CorePower(turbo, true)
		}
	}
	return 0.9 * total
}

// Table renders the balancer comparison.
func (r *FleetResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fleet balancer comparison (%s, %d shards, hierarchical control)", r.App, r.Shards),
		Columns: []string{"balancer", "energy kJ", "avg power W", "worst p99 ms", "median p99 ms",
			"timeout %", "Eq.2 met", "routed", "spread"},
	}
	for _, name := range cluster.BalancerNames() {
		c := r.Campaigns[name]
		if c == nil {
			continue
		}
		t.AddRow(name,
			f2(c.EnergyJ/1e3), f2(c.AvgPowerW),
			f2(c.WorstP99*1e3), f2(c.MedianP99*1e3),
			f3(c.TimeoutRate*100), fmt.Sprint(c.TimeoutBudgetMet),
			fmt.Sprint(c.TotalRouted), f2(routedSpread(c.Routed)))
	}
	return t
}

// FaultTable renders the fault-campaign variant.
func (r *FleetResult) FaultTable() *Table {
	t := &Table{
		Title: fmt.Sprintf("Fleet fault campaign (%s, %d shards, power-aware, fleet power budget)", r.App, r.Shards),
		Columns: []string{"mode", "energy kJ", "avg power W", "worst p99 ms",
			"timeout %", "Eq.2 met", "capped writes", "fallbacks", "safe ticks"},
	}
	for _, mode := range FleetFaultModes {
		c := r.Fault[mode]
		if c == nil {
			continue
		}
		var fallbacks, safeTicks float64
		for _, sr := range c.PerShard {
			fallbacks += sr.PolicyStats["guard.fallbacks"]
			safeTicks += sr.PolicyStats["guard.safe_ticks"]
		}
		t.AddRow(mode,
			f2(c.EnergyJ/1e3), f2(c.AvgPowerW), f2(c.WorstP99*1e3),
			f3(c.TimeoutRate*100), fmt.Sprint(c.TimeoutBudgetMet),
			fmt.Sprint(c.CappedWrites), f(fallbacks), f(safeTicks))
	}
	return t
}

// routedSpread is max/min over per-shard routed counts (fleet balance skew;
// 1.0 = perfectly even).
func routedSpread(routed []uint64) float64 {
	if len(routed) == 0 {
		return 0
	}
	min, max := routed[0], routed[0]
	for _, n := range routed[1:] {
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if min == 0 {
		return float64(max)
	}
	return float64(max) / float64(min)
}

// CSVSeries renders every campaign's fleet time series as one long-format
// CSV (balancer, window end, fleet counts, energy, power, queue).
func (r *FleetResult) CSVSeries() string {
	var b strings.Builder
	b.WriteString("balancer,at_s,arrivals,completions,timeouts,energy_j,power_w,queue\n")
	for _, name := range cluster.BalancerNames() {
		c := r.Campaigns[name]
		if c == nil {
			continue
		}
		for _, row := range c.Series {
			fmt.Fprintf(&b, "%s,%.3f,%d,%d,%d,%.3f,%.3f,%d\n",
				name, row.At.Seconds(), row.Arrivals, row.Completions, row.Timeouts,
				row.EnergyJ, row.PowerW, row.Queue)
		}
	}
	return b.String()
}
