package exp

import (
	"context"
	"strings"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/sim"
)

// policyLifeScale mirrors the robustness acceptance scale: enough training
// for a usable policy and a long enough faulted window for the guard's
// ladder to play out.
func policyLifeScale() Scale {
	return Scale{
		Workers:       4,
		TrainEpisodes: 4,
		EvalDuration:  40 * sim.Second,
		TracePeriod:   10 * sim.Second,
		Samples:       2000,
		Seed:          1,
	}
}

// TestPolicyLifeRollbackLadder is the hot-swap acceptance criterion: under
// the 60% write-loss campaign the registry rollback rung must engage before
// max-frequency pinning, and the rollback-equipped guard must hold the
// timeout budget at least as well as the plain guard.
func TestPolicyLifeRollbackLadder(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three policies")
	}
	r, err := PolicyLife(context.Background(), policyLifeScale(), app.Xapian, 3)
	if err != nil {
		t.Fatal(err)
	}

	bare := r.Cells[PolicyLifeBare]
	guarded := r.Cells[PolicyLifeGuarded]
	rollback := r.Cells[PolicyLifeRollback]

	if bare.Result.TimeoutBudgetMet {
		t.Fatalf("bare deeppower unexpectedly met the Eq.2 budget (timeout %.3f%%); "+
			"the write-loss campaign is too weak", bare.Result.TimeoutRate*100)
	}
	if !guarded.Result.TimeoutBudgetMet {
		t.Fatalf("plain guard failed to restore the budget: timeout %.3f%%",
			guarded.Result.TimeoutRate*100)
	}

	// The registry must have been populated during training and drained by
	// the rollback rung under faults.
	if rollback.TrainedVersions != policyLifeScale().TrainEpisodes {
		t.Errorf("registry holds %d versions, want one per training episode (%d)",
			rollback.TrainedVersions, policyLifeScale().TrainEpisodes)
	}
	if rollback.Stats.Rollbacks == 0 {
		t.Fatal("rollback rung never engaged under the write-loss campaign")
	}
	if !r.RollbackBeforeSafe() {
		t.Fatalf("guard pinned max frequency before trying a rollback: transitions %+v",
			rollback.Transitions)
	}
	if rollback.HistoryDepth >= rollback.TrainedVersions {
		t.Errorf("promotion history depth %d did not shrink from %d despite %d rollbacks",
			rollback.HistoryDepth, rollback.TrainedVersions, rollback.Stats.Rollbacks)
	}

	// Rollback must not cost QoS: the ladder still ends in safe mode when
	// no version survives the campaign, so the budget holds. Probing the
	// last-good policy under a campaign that dooms every learned policy
	// costs exactly one breach-detection window relative to pinning
	// immediately, so the rate must stay within a twentieth of a percent of
	// the plain guard (≈0.27% here), far inside the 1% Eq. 2 budget.
	if !rollback.Result.TimeoutBudgetMet {
		t.Fatalf("guarded+rollback violates Eq.2: timeout %.3f%% (guarded %.3f%%)",
			rollback.Result.TimeoutRate*100, guarded.Result.TimeoutRate*100)
	}
	if rollback.Result.TimeoutRate > guarded.Result.TimeoutRate+0.0005 {
		t.Fatalf("guarded+rollback timeout %.3f%% drifted from the guarded baseline %.3f%%",
			rollback.Result.TimeoutRate*100, guarded.Result.TimeoutRate*100)
	}
	t.Logf("timeout%%: bare %.3f -> guarded %.3f -> guarded+rollback %.3f (rollbacks=%d, fallbacks=%d)",
		bare.Result.TimeoutRate*100, guarded.Result.TimeoutRate*100,
		rollback.Result.TimeoutRate*100, rollback.Stats.Rollbacks, rollback.Stats.Fallbacks)

	tbl := r.Table()
	if len(tbl.Rows) != len(PolicyLifeModes) {
		t.Fatalf("table has %d rows", len(tbl.Rows))
	}
	if !strings.Contains(tbl.Render(), PolicyLifeRollback) {
		t.Fatal("table missing the rollback mode row")
	}
}
