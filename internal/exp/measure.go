package exp

import (
	"time"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
)

// measureFreqSet times the simulator's per-core frequency actuation path.
// On real hardware this is a sysfs write the paper measures at < 10 µs; in
// the simulator it is the core state machine update.
func measureFreqSet() float64 {
	core := cpu.NewCore(0, cpu.DefaultLadder())
	const iters = 100000
	now := sim.Time(0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		now += sim.Millisecond
		if i%2 == 0 {
			core.SetFreq(now, 1.0)
		} else {
			core.SetFreq(now, 2.0)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / 1000 / iters
}
