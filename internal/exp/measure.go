package exp

import (
	"time"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/baselines"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// measureFreqSet times the simulator's per-core frequency actuation path.
// On real hardware this is a sysfs write the paper measures at < 10 µs; in
// the simulator it is the core state machine update.
func measureFreqSet() float64 {
	core := cpu.NewCore(0, cpu.DefaultLadder())
	const iters = 100000
	now := sim.Time(0)
	start := time.Now()
	for i := 0; i < iters; i++ {
		now += sim.Millisecond
		if i%2 == 0 {
			core.SetFreq(now, 1.0)
		} else {
			core.SetFreq(now, 2.0)
		}
	}
	return float64(time.Since(start).Nanoseconds()) / 1000 / iters
}

// measureSimThroughput runs one ten-second steady-state episode (Xapian on
// four workers, constant 300 rps, all-turbo baseline) and reports how many
// events the engine fired and the wall-clock event throughput. It is the
// overhead table's view of the simulation core's own cost: every arrival,
// dispatch, completion, and tick is one fired event.
func measureSimThroughput() (events uint64, perSec float64, err error) {
	prof, err := app.ByName(app.Xapian)
	if err != nil {
		return 0, 0, err
	}
	prof.Workers = 4
	trace := workload.Constant(300, 60*sim.Second)
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{
		App:              prof,
		Seed:             7,
		DiscardLatencies: true,
	}, baselines.NewMaxFreq())
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	if _, err := srv.Run(trace, 10*sim.Second); err != nil {
		return 0, 0, err
	}
	elapsed := time.Since(start).Seconds()
	return eng.Fired(), float64(eng.Fired()) / elapsed, nil
}
