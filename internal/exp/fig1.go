package exp

import (
	"context"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/stats"
)

// Fig1Result holds the service-time CDFs of Fig. 1: for each application,
// the CDF of service time divided by its mean, demonstrating the long tail
// (Moses' tail is ≈ 8× its mean).
type Fig1Result struct {
	// Apps maps application name → CDF points over normalized service time.
	Apps map[string][]stats.CDFPoint
	// TailOverMean maps application name → p99.9 / mean.
	TailOverMean map[string]float64
}

// fig1Apps are the applications the paper plots.
var fig1Apps = []string{app.Xapian, app.Masstree, app.Moses, app.Sphinx}

// Fig1 samples each application's request population and builds normalized
// service-time CDFs. Each application is one pool work unit with its own
// profile and a private RNG derived from the "fig1-<app>" substream of the
// experiment seed.
func Fig1(ctx context.Context, scale Scale, workers int) (*Fig1Result, error) {
	type fig1Out struct {
		cdf  []stats.CDFPoint
		tail float64
	}
	outs, err := pool.Map(ctx, fig1Apps, workers, func(_ context.Context, name string, _ int) (fig1Out, error) {
		prof := app.MustByName(name)
		rng := sim.NewRNG(sim.SubSeed(scale.Seed, "fig1-"+name))
		xs := make([]float64, scale.Samples)
		for i := range xs {
			xs[i] = prof.Sampler.Sample(rng).ServiceRef.Seconds()
		}
		mean := stats.Mean(xs)
		norm := make([]float64, len(xs))
		for i, x := range xs {
			norm[i] = x / mean
		}
		return fig1Out{cdf: stats.CDF(norm, 200), tail: stats.Percentile(norm, 99.9)}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig1Result{
		Apps:         map[string][]stats.CDFPoint{},
		TailOverMean: map[string]float64{},
	}
	for i, name := range fig1Apps {
		res.Apps[name] = outs[i].cdf
		res.TailOverMean[name] = outs[i].tail
	}
	return res, nil
}

// Table renders the tail/mean summary.
func (r *Fig1Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 1 — service-time skew (normalized to mean)",
		Columns: []string{"app", "p50/mean", "p99/mean", "p99.9/mean"},
	}
	for _, name := range fig1Apps {
		cdf := r.Apps[name]
		t.AddRow(name, f2(quantileOf(cdf, 0.50)), f2(quantileOf(cdf, 0.99)), f2(r.TailOverMean[name]))
	}
	return t
}

// CSVCurves renders all CDF curves as long-form CSV (app, x, p).
func (r *Fig1Result) CSVCurves() string {
	t := &Table{Columns: []string{"app", "service_over_mean", "cdf"}}
	for _, name := range fig1Apps {
		for _, pt := range r.Apps[name] {
			t.AddRow(name, f(pt.X), f(pt.P))
		}
	}
	return t.CSV()
}

func quantileOf(cdf []stats.CDFPoint, p float64) float64 {
	for _, pt := range cdf {
		if pt.P >= p {
			return pt.X
		}
	}
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].X
}
