package exp

import (
	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/stats"
)

// Fig1Result holds the service-time CDFs of Fig. 1: for each application,
// the CDF of service time divided by its mean, demonstrating the long tail
// (Moses' tail is ≈ 8× its mean).
type Fig1Result struct {
	// Apps maps application name → CDF points over normalized service time.
	Apps map[string][]stats.CDFPoint
	// TailOverMean maps application name → p99.9 / mean.
	TailOverMean map[string]float64
}

// Fig1 samples each application's request population and builds normalized
// service-time CDFs. The paper plots Xapian, Masstree, Moses, and Sphinx.
func Fig1(scale Scale) *Fig1Result {
	res := &Fig1Result{
		Apps:         map[string][]stats.CDFPoint{},
		TailOverMean: map[string]float64{},
	}
	for _, name := range []string{app.Xapian, app.Masstree, app.Moses, app.Sphinx} {
		prof := app.MustByName(name)
		rng := sim.NewRNG(scale.Seed).Stream("fig1-" + name)
		xs := make([]float64, scale.Samples)
		for i := range xs {
			xs[i] = prof.Sampler.Sample(rng).ServiceRef.Seconds()
		}
		mean := stats.Mean(xs)
		norm := make([]float64, len(xs))
		for i, x := range xs {
			norm[i] = x / mean
		}
		res.Apps[name] = stats.CDF(norm, 200)
		res.TailOverMean[name] = stats.Percentile(norm, 99.9)
	}
	return res
}

// Table renders the tail/mean summary.
func (r *Fig1Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 1 — service-time skew (normalized to mean)",
		Columns: []string{"app", "p50/mean", "p99/mean", "p99.9/mean"},
	}
	for _, name := range []string{app.Xapian, app.Masstree, app.Moses, app.Sphinx} {
		cdf := r.Apps[name]
		t.AddRow(name, f2(quantileOf(cdf, 0.50)), f2(quantileOf(cdf, 0.99)), f2(r.TailOverMean[name]))
	}
	return t
}

// CSVCurves renders all CDF curves as long-form CSV (app, x, p).
func (r *Fig1Result) CSVCurves() string {
	t := &Table{Columns: []string{"app", "service_over_mean", "cdf"}}
	for _, name := range []string{app.Xapian, app.Masstree, app.Moses, app.Sphinx} {
		for _, pt := range r.Apps[name] {
			t.AddRow(name, f(pt.X), f(pt.P))
		}
	}
	return t.CSV()
}

func quantileOf(cdf []stats.CDFPoint, p float64) float64 {
	for _, pt := range cdf {
		if pt.P >= p {
			return pt.X
		}
	}
	if len(cdf) == 0 {
		return 0
	}
	return cdf[len(cdf)-1].X
}
