package exp

import (
	"context"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// Fig8Result is the time-resolved view of DeepPower running Xapian: per
// second, the RPS, socket power, the two controller parameters the agent
// chose, and the average core frequency — the paper's evidence that power
// tracks load and that ScalingCoef rises under high load while BaseFreq
// stays moderate.
type Fig8Result struct {
	App    string
	Rows   []Fig8Row
	Series *server.Series
}

// Fig8Row merges the server series with the agent's action log.
type Fig8Row struct {
	At          sim.Time
	RPS         float64
	PowerW      float64
	BaseFreq    float64
	ScalingCoef float64
	AvgFreqGHz  float64
	QueueLen    int
}

// Fig8 trains DeepPower on the Xapian setup, then evaluates once with
// series and action logging enabled. A single train+evaluate unit: the
// context is checked on entry, not mid-run.
func Fig8(ctx context.Context, scale Scale) (*Fig8Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	setup, err := NewSetup(app.Xapian, scale)
	if err != nil {
		return nil, err
	}
	dp, err := setup.TrainDeepPower()
	if err != nil {
		return nil, err
	}
	dp.Log = nil
	dp.EnableLog()

	cfg := setup.ServerConfig(scale.Seed + 104729)
	cfg.SeriesInterval = sim.Second
	eng := sim.NewEngine()
	srv, err := server.New(eng, cfg, dp)
	if err != nil {
		return nil, err
	}
	res, err := srv.Run(setup.Trace, scale.EvalDuration)
	if err != nil {
		return nil, err
	}

	out := &Fig8Result{App: app.Xapian, Series: res.Series}
	// Join series rows with the nearest preceding action.
	for _, row := range res.Series.Rows {
		fr := Fig8Row{
			At: row.At, RPS: row.RPS, PowerW: row.PowerW,
			AvgFreqGHz: row.AvgFreqGHz, QueueLen: row.QueueLen,
		}
		for _, lp := range dp.Log {
			if lp.At <= row.At {
				fr.BaseFreq = lp.Params.BaseFreq
				fr.ScalingCoef = lp.Params.ScalingCoef
			} else {
				break
			}
		}
		out.Rows = append(out.Rows, fr)
	}
	return out, nil
}

// Table renders a downsampled view.
func (r *Fig8Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 8 — DeepPower over time (" + r.App + ")",
		Columns: []string{"t(s)", "RPS", "power(W)", "BaseFreq", "ScalingCoef", "avgFreq(GHz)", "queue"},
	}
	step := len(r.Rows)/20 + 1
	for i := 0; i < len(r.Rows); i += step {
		row := r.Rows[i]
		t.AddRow(f(row.At.Seconds()), f2(row.RPS), f2(row.PowerW),
			f2(row.BaseFreq), f2(row.ScalingCoef), f2(row.AvgFreqGHz),
			f(float64(row.QueueLen)))
	}
	return t
}

// CSVSeries renders every row.
func (r *Fig8Result) CSVSeries() string {
	t := &Table{Columns: []string{"t_s", "rps", "power_w", "base_freq", "scaling_coef", "avg_freq_ghz", "queue_len"}}
	for _, row := range r.Rows {
		t.AddRow(f(row.At.Seconds()), f(row.RPS), f(row.PowerW),
			f(row.BaseFreq), f(row.ScalingCoef), f(row.AvgFreqGHz),
			f(float64(row.QueueLen)))
	}
	return t.CSV()
}
