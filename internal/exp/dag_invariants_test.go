package exp

import (
	"fmt"
	"reflect"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// randomDAG draws a random acyclic stage graph: 1–6 stages, each wired to a
// random subset of earlier stages (forward references only, so acyclicity is
// by construction), with a mix of fixed and heavy-tailed stage samplers.
func randomDAG(rng *sim.RNG) *app.DAG {
	n := 1 + rng.Intn(6)
	d := &app.DAG{Name: "rand"}
	for i := 0; i < n; i++ {
		st := app.DAGStage{Name: fmt.Sprintf("s%d", i)}
		if rng.Float64() < 0.5 {
			st.Sampler = app.FixedSampler{Service: sim.Time(100+rng.Intn(600)) * sim.Microsecond}
		} else {
			st.Sampler = &app.TailedSampler{
				BaseUS:     50 + 200*rng.Float64(),
				CoefUS:     20 + 100*rng.Float64(),
				Sigma1:     0.3 + 0.4*rng.Float64(),
				NoiseSigma: 0.1,
			}
		}
		for p := 0; p < i; p++ {
			if rng.Float64() < 0.4 {
				st.Preds = append(st.Preds, p)
			}
		}
		d.Stages = append(d.Stages, st)
	}
	return d
}

// TestDAGRandomizedInvariants is the DAG counterpart of the randomized
// invariant suite: 100 random stage graphs under random load, each checked
// against the properties that must hold whatever the draw — per-stage request
// conservation, precedence (a stage never starts before its last predecessor
// finishes), end-to-end latency bounded below by the critical path, and exact
// repeat-run stability of every counter, trace, and joule.
func TestDAGRandomizedInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("100 randomized DAG simulations")
	}
	const iters = 100
	for seed := int64(0); seed < iters; seed++ {
		rng := sim.NewRNG(seed).Stream("dag-invariants")
		d := randomDAG(rng)
		workers := 1 + rng.Intn(4)
		prof := &app.Profile{
			Name:    "dag-inv",
			SLA:     sim.Time(2+rng.Intn(8)) * sim.Millisecond,
			Workers: workers,
			RefFreq: 2.1,
			DAG:     d,
		}
		n := d.NumStages()
		dur := 500 * sim.Millisecond
		mean := d.MeanTotalService(seed, 2000).Seconds()
		rate := (0.2 + 0.4*rng.Float64()) * float64(workers) / mean
		trace := workload.Constant(rate, dur)

		run := func() *server.Result {
			t.Helper()
			eng := sim.NewEngine()
			srv, err := server.New(eng, server.Config{App: prof, Seed: seed, RecordJobs: true},
				&fixedFreqPolicy{f: 1.7})
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := srv.Run(trace, dur)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res
		}
		res := run()
		c := res.Counters

		// Invariant 1 — conservation. Stage requests: completed ≤ dispatched
		// ≤ admitted, with in-service work bounded by the core count. Jobs:
		// a job admits at most one request per stage, and a completed job
		// completed every stage exactly once.
		if c.Completions > c.Dispatched || c.Dispatched > c.Arrivals {
			t.Fatalf("seed %d: stage counter conservation violated: %+v", seed, c)
		}
		if inFlight := c.Dispatched - c.Completions; inFlight > uint64(workers) {
			t.Fatalf("seed %d: %d stages in service on %d cores", seed, inFlight, workers)
		}
		if c.JobCompletions > c.JobArrivals {
			t.Fatalf("seed %d: more jobs completed than arrived: %+v", seed, c)
		}
		if c.Arrivals > c.JobArrivals*uint64(n) {
			t.Fatalf("seed %d: %d stage admissions exceed %d jobs × %d stages", seed, c.Arrivals, c.JobArrivals, n)
		}
		if c.Completions < c.JobCompletions*uint64(n) {
			t.Fatalf("seed %d: %d stage completions below %d completed jobs × %d stages",
				seed, c.Completions, c.JobCompletions, n)
		}
		if c.JobArrivals == 0 || c.JobCompletions == 0 {
			t.Fatalf("seed %d: degenerate run %+v", seed, c)
		}
		if uint64(len(res.Jobs)) != c.JobCompletions {
			t.Fatalf("seed %d: %d traces for %d completed jobs", seed, len(res.Jobs), c.JobCompletions)
		}

		// Invariants 2–4 — per-job schedule properties.
		seen := make(map[uint64]bool, len(res.Jobs))
		for _, j := range res.Jobs {
			if seen[j.ID] {
				t.Fatalf("seed %d: duplicate job trace %d", seed, j.ID)
			}
			seen[j.ID] = true
			if len(j.StageStart) != n || len(j.StageFinish) != n {
				t.Fatalf("seed %d job %d: %d stage times for %d stages", seed, j.ID, len(j.StageStart), n)
			}
			var last sim.Time
			var sumDur float64
			for i := 0; i < n; i++ {
				start, finish := j.StageStart[i], j.StageFinish[i]
				if start < j.Arrive || finish < start {
					t.Fatalf("seed %d job %d stage %d: schedule [%v,%v] outside [%v,...]",
						seed, j.ID, i, start, finish, j.Arrive)
				}
				sumDur += (finish - start).Seconds()
				if finish > last {
					last = finish
				}
				// Precedence: a stage is admitted only when every predecessor
				// has finished, so it can never start earlier.
				for _, p := range d.Preds(i) {
					if start < j.StageFinish[p] {
						t.Fatalf("seed %d job %d: stage %d started %v before predecessor %d finished %v",
							seed, j.ID, i, start, p, j.StageFinish[p])
					}
				}
			}
			if j.Finish != last {
				t.Fatalf("seed %d job %d: finish %v != last stage finish %v", seed, j.ID, j.Finish, last)
			}
			// Critical path: positive, within the total processing time, and
			// a lower bound on the end-to-end latency.
			lat := (j.Finish - j.Arrive).Seconds()
			if j.CriticalPathSec <= 0 || j.CriticalPathSec > sumDur*(1+1e-9) {
				t.Fatalf("seed %d job %d: critical path %v outside (0, Σdurations %v]",
					seed, j.ID, j.CriticalPathSec, sumDur)
			}
			if lat < j.CriticalPathSec*(1-1e-9) {
				t.Fatalf("seed %d job %d: e2e latency %v below critical path %v",
					seed, j.ID, lat, j.CriticalPathSec)
			}
		}

		// Invariant 5 — repeat-run determinism: an identical configuration
		// reproduces every counter, every job trace, and the exact energy.
		again := run()
		if res.Counters != again.Counters {
			t.Fatalf("seed %d: counters not stable: %+v vs %+v", seed, res.Counters, again.Counters)
		}
		if !reflect.DeepEqual(res.Jobs, again.Jobs) {
			t.Fatalf("seed %d: job traces not stable across identical runs", seed)
		}
		if res.EnergyJ != again.EnergyJ {
			t.Fatalf("seed %d: energy not stable: %v vs %v", seed, res.EnergyJ, again.EnergyJ)
		}
	}
}
