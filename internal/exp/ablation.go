package exp

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/baselines"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/server"
)

// AblationVariant names one modified DeepPower configuration.
type AblationVariant struct {
	Name  string
	Build func(setup *Setup) (agent.Trainable, error)
}

// AblationVariants are the design-choice ablations DESIGN.md §6 calls out,
// plus the two extensions (value-based agent, sleep states).
var AblationVariants = []AblationVariant{
	{Name: "deeppower", Build: ddpgVariant(func(*agent.Config) {})},
	{Name: "flat-control", Build: ddpgVariant(func(c *agent.Config) { c.Flat = true })},
	{Name: "no-timeout-term", Build: ddpgVariant(func(c *agent.Config) { c.Reward.Beta = -1 })},
	{Name: "no-queue-term", Build: ddpgVariant(func(c *agent.Config) { c.Reward.Gamma = -1 })},
	{Name: "zero-mean-noise", Build: ddpgVariant(func(c *agent.Config) {
		c.NoiseMu = -1e-12
		c.NoiseSigma = 1
	})},
	{Name: "eta-10", Build: ddpgVariant(func(c *agent.Config) { c.Reward.Eta = 10 })},
	{Name: "eta-1000", Build: ddpgVariant(func(c *agent.Config) { c.Reward.Eta = 1000 })},
	{Name: "two-head-actor", Build: ddpgVariant(func(c *agent.Config) { c.DDPG.TwoHeadActor = true })},
	{Name: "td3", Build: ddpgVariant(func(c *agent.Config) { c.Backend = agent.BackendTD3 })},
	{Name: "dqn-power", Build: func(s *Setup) (agent.Trainable, error) {
		return agent.NewDQNPower(agent.DQNPowerConfig{Seed: s.Scale.Seed, Train: true})
	}},
	{Name: "deeppower+c6", Build: func(s *Setup) (agent.Trainable, error) {
		dp, err := agent.New(s.agentConfig())
		if err != nil {
			return nil, err
		}
		return &trainableSleep{baselines.NewSleepWrapper(dp), dp}, nil
	}},
}

// ddpgVariant builds a DeepPower agent with the setup's scale-adapted
// config, mutated by mut.
func ddpgVariant(mut func(*agent.Config)) func(*Setup) (agent.Trainable, error) {
	return func(s *Setup) (agent.Trainable, error) {
		cfg := s.agentConfig()
		mut(&cfg)
		return agent.New(cfg)
	}
}

// trainableSleep adapts a sleep-wrapped DeepPower to the Trainable surface.
type trainableSleep struct {
	*baselines.SleepWrapper
	dp *agent.DeepPower
}

func (t *trainableSleep) SetTrain(train bool) { t.dp.SetTrain(train) }
func (t *trainableSleep) Return() float64     { return t.dp.Return() }

// AblationResult compares DeepPower variants on one application.
type AblationResult struct {
	App     string
	Results map[string]*server.Result
}

// Ablation trains and evaluates each variant on the given app. Every
// variant is one self-contained pool work unit that builds its own Setup,
// trains its own agent, and evaluates it — no state is shared across
// concurrently running variants.
func Ablation(ctx context.Context, appName string, scale Scale, variants []AblationVariant, workers int) (*AblationResult, error) {
	if variants == nil {
		variants = AblationVariants
	}
	results, err := pool.Map(ctx, variants, workers,
		func(_ context.Context, v AblationVariant, _ int) (*server.Result, error) {
			setup, err := NewSetup(appName, scale)
			if err != nil {
				return nil, err
			}
			pol, err := v.Build(setup)
			if err != nil {
				return nil, fmt.Errorf("exp: ablation %s: %w", v.Name, err)
			}
			if _, err := agent.Train(pol, agent.TrainConfig{
				Episodes:   scale.TrainEpisodes,
				EpisodeLen: setup.Trace.Period,
				Server:     setup.trainServerConfig(),
				Trace:      setup.Trace,
			}); err != nil {
				return nil, fmt.Errorf("exp: ablation %s training: %w", v.Name, err)
			}
			res, err := setup.Evaluate(pol)
			if err != nil {
				return nil, fmt.Errorf("exp: ablation %s eval: %w", v.Name, err)
			}
			res.Policy = v.Name
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	out := &AblationResult{App: appName, Results: map[string]*server.Result{}}
	for i, v := range variants {
		out.Results[v.Name] = results[i]
	}
	return out, nil
}

// Table renders the comparison.
func (r *AblationResult) Table() *Table {
	t := &Table{
		Title:   "Ablations — " + r.App,
		Columns: []string{"variant", "power(W)", "p99(ms)", "timeout %", "avg freq"},
	}
	for _, v := range AblationVariants {
		res, ok := r.Results[v.Name]
		if !ok {
			continue
		}
		t.AddRow(v.Name, f2(res.AvgPowerW), f3(res.Latency.P99*1000),
			f3(res.TimeoutRate*100), f2(res.AvgFreqGHz))
	}
	return t
}
