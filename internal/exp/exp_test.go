package exp

import (
	"context"
	"strings"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
)

func TestTableRendering(t *testing.T) {
	tbl := &Table{Title: "demo", Columns: []string{"a", "bee"}}
	tbl.AddRow("1", "2")
	tbl.AddRow("long-cell", "x,y")
	out := tbl.Render()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "long-cell") {
		t.Errorf("render missing content:\n%s", out)
	}
	csv := tbl.CSV()
	if !strings.Contains(csv, "a,bee") {
		t.Errorf("csv missing header:\n%s", csv)
	}
	if !strings.Contains(csv, `"x,y"`) {
		t.Errorf("csv cell with comma not quoted:\n%s", csv)
	}
}

func TestFig1(t *testing.T) {
	scale := Quick()
	scale.Samples = 30000
	r, err := Fig1(context.Background(), scale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Apps) != 4 {
		t.Fatalf("apps = %d, want 4", len(r.Apps))
	}
	// Paper: Moses tail ≈ 8× mean; must be the most skewed of the four.
	if r.TailOverMean[app.Moses] < 4 {
		t.Errorf("Moses tail/mean = %v, want >= 4", r.TailOverMean[app.Moses])
	}
	for name, tm := range r.TailOverMean {
		if name != app.Moses && tm > r.TailOverMean[app.Moses] {
			t.Errorf("%s (%.2f) more skewed than Moses (%.2f)", name, tm, r.TailOverMean[app.Moses])
		}
	}
	// CDFs must be monotone and end at 1.
	for name, cdf := range r.Apps {
		for i := 1; i < len(cdf); i++ {
			if cdf[i].P < cdf[i-1].P || cdf[i].X < cdf[i-1].X {
				t.Fatalf("%s CDF not monotone", name)
			}
		}
		if cdf[len(cdf)-1].P != 1 {
			t.Errorf("%s CDF does not reach 1", name)
		}
	}
	if r.Table().Render() == "" || r.CSVCurves() == "" {
		t.Error("empty rendering")
	}
}

func TestFig2CrossLoadDegradation(t *testing.T) {
	scale := Quick()
	scale.Samples = 1500
	r, err := Fig2(context.Background(), app.Masstree, scale, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Diagonal is exactly 1 by construction.
	for i := range r.RelRMSE {
		if d := r.RelRMSE[i][i]; d != 1 {
			t.Errorf("diagonal (%d,%d) = %v, want 1", i, i, d)
		}
	}
	// The paper's point: extreme-load mismatch degrades prediction.
	if worst := r.MaxOffDiagonal(); worst < 1.02 {
		t.Errorf("max off-diagonal relative RMSE = %v, want > 1 (cross-load degradation)", worst)
	}
	if r.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestTable2Ordering(t *testing.T) {
	r, err := Table2(500)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []string{"DQN", "DDQN", "DDPG", "SAC"} {
		v := r.InferenceUS[alg]
		if v <= 0 {
			t.Errorf("%s inference time %v not positive", alg, v)
		}
		// Compiled Go on tiny nets: all far below the paper's numbers and
		// far below 1 ms.
		if v > 1000 {
			t.Errorf("%s inference time %v us implausibly slow", alg, v)
		}
	}
	// All four algorithms run comparably tiny networks; their costs must
	// be the same order of magnitude. (The paper's 125–472 µs spread is a
	// Python-interpreter artifact; compiled Go compresses it.)
	lo, hi := r.InferenceUS["DQN"], r.InferenceUS["DQN"]
	for _, v := range r.InferenceUS {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi > 100*lo {
		t.Errorf("inference times spread implausibly: %v", r.InferenceUS)
	}
	if r.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestTable3ShapeMatchesPaper(t *testing.T) {
	scale := Quick()
	scale.Workers = 0 // Table 3 needs the paper's worker counts
	r, err := Table3(context.Background(), scale, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range app.Names() {
		got := r.P99ms[name]
		paper := app.PaperTable3[name]
		if len(got) != 3 {
			t.Fatalf("%s: %d load levels", name, len(got))
		}
		// p99 must grow with load.
		if !(got[0] <= got[1] && got[1] <= got[2]) {
			t.Errorf("%s p99 not monotone in load: %v", name, got)
		}
		// Within 2.5× of the paper at every level (same order of
		// magnitude and shape; we don't chase exact numbers).
		for i := range got {
			lo, hi := paper.P99ms[i]/2.5, paper.P99ms[i]*2.5
			if got[i] < lo || got[i] > hi {
				t.Errorf("%s level %d: p99 %.3f ms outside [%.3f, %.3f] (paper %.3f)",
					name, i, got[i], lo, hi, paper.P99ms[i])
			}
		}
	}
	if r.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestFig5ChangePoint(t *testing.T) {
	r := Fig5(100)
	if len(r.X) != len(r.Y) || len(r.X) == 0 {
		t.Fatal("empty curve")
	}
	// Below η: small. Far above η: near 1.
	for i, x := range r.X {
		if x <= 20 && r.Y[i] > 0.1 {
			t.Errorf("scaleFunc(%v) = %v, want ≈0", x, r.Y[i])
		}
		if x >= 900 && r.Y[i] < 0.85 {
			t.Errorf("scaleFunc(%v) = %v, want ≈1", x, r.Y[i])
		}
	}
	if r.Table().Render() == "" || r.CSVCurve() == "" {
		t.Error("empty rendering")
	}
}

func TestFig6TraceShape(t *testing.T) {
	r := Fig6(Quick())
	if err := r.Trace.Validate(); err != nil {
		t.Fatal(err)
	}
	if r.Trace.MaxRate() <= r.Trace.MeanRate() {
		t.Error("trace has no peak structure")
	}
	if r.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestOverheadWithinPaperEnvelope(t *testing.T) {
	r, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	// §5.5: action generation in "less than a millisecond"; a compiled
	// tiny MLP must satisfy this easily.
	if r.ActionGenUS >= 1000 {
		t.Errorf("action generation %v us, want < 1000", r.ActionGenUS)
	}
	// Parameter update at batch 64 took 13 ms in PyTorch; ours must be
	// same order or faster.
	if r.TrainStepMS > 50 {
		t.Errorf("train step %v ms implausibly slow", r.TrainStepMS)
	}
	// Actor parameter count in the paper's ballpark.
	if r.ActorParams < 1000 || r.ActorParams > 3000 {
		t.Errorf("actor params = %d, want ~2k", r.ActorParams)
	}
	if r.FreqSetUS >= 10 {
		t.Errorf("freq set %v us, want < 10 (paper bound)", r.FreqSetUS)
	}
	if r.Table().Render() == "" {
		t.Error("empty table")
	}
}

func TestSetupScalesTraceToApp(t *testing.T) {
	scale := Quick()
	s, err := NewSetup(app.Xapian, scale)
	if err != nil {
		t.Fatal(err)
	}
	cap := s.Prof.MaxCapacity(s.Prof.RefFreq, scale.Seed)
	peak := s.Trace.MaxRate()
	want := PeakLoad[app.Xapian] * cap
	if peak < want*0.99 || peak > want*1.01 {
		t.Errorf("trace peak %v, want %v", peak, want)
	}
	if _, err := NewSetup("unknown", scale); err == nil {
		t.Error("unknown app accepted")
	}
}

// The centerpiece: on a quick scale, DeepPower must beat the baseline on
// power while keeping p99 within the SLA, and the baseline must have the
// highest power of all methods.
func TestFig7QuickXapian(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-method comparison")
	}
	scale := Quick()
	scale.TrainEpisodes = 10
	r, err := Fig7(context.Background(), scale, []string{app.Xapian}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := r.Results[app.Xapian]
	base := res[MethodBaseline]
	dp := res[MethodDeepPower]
	if dp.AvgPowerW >= base.AvgPowerW {
		t.Errorf("DeepPower power %v not below baseline %v", dp.AvgPowerW, base.AvgPowerW)
	}
	if saving := r.Saving(app.Xapian, MethodDeepPower); saving < 0.08 {
		t.Errorf("DeepPower saving %.1f%%, want >= 8%%", saving*100)
	}
	// The quick scale (4 workers, a 20 s "day") is much harsher than the
	// paper's 20-worker, 360 s setup: allow modest SLA overshoot here.
	// Full-scale runs (cmd/repro, EXPERIMENTS.md) hold the strict bound.
	sla := dp.SLA.Seconds()
	if dp.Latency.P99 > sla*1.6 {
		t.Errorf("DeepPower p99 %v far above SLA %v", dp.Latency.P99, sla)
	}
	for _, m := range []string{MethodRetail, MethodGemini} {
		if res[m].AvgPowerW >= base.AvgPowerW {
			t.Errorf("%s power %v not below baseline %v", m, res[m].AvgPowerW, base.AvgPowerW)
		}
	}
	for _, tbl := range []*Table{r.PowerTable(), r.LatencyTable(), r.QualityTable()} {
		if tbl.Render() == "" {
			t.Error("empty table")
		}
	}
}

func TestFig11FixedParams(t *testing.T) {
	scale := Quick()
	r, err := Fig11(context.Background(), scale, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Traces) != 3 {
		t.Fatalf("traces = %d", len(r.Traces))
	}
	// Higher BaseFreq settings have a higher idle-floor frequency: the
	// minimum frequency seen in setting 3 (base 0.6) must exceed that of
	// setting 1 (base 0.4).
	min1 := r.Traces[0].MinFreq()
	min3 := r.Traces[2].MinFreq()
	if min3 <= min1 {
		t.Errorf("base 0.6 floor %v not above base 0.4 floor %v", min3, min1)
	}
	if CSVFreqTrace(r.Traces[0]) == "" {
		t.Error("empty CSV")
	}
}

func TestFig4ControllerTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	scale := Quick()
	scale.TrainEpisodes = 2
	r, err := Fig4(context.Background(), scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Trace.Times) < 1500 {
		t.Errorf("2 s window has %d samples, want ~2000", len(r.Trace.Times))
	}
	if r.Summary().Render() == "" {
		t.Error("empty summary")
	}
}

func TestFig9MethodsDiffer(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-method traces")
	}
	scale := Quick()
	scale.TrainEpisodes = 8
	retail, err := Fig9(context.Background(), MethodRetail, scale)
	if err != nil {
		t.Fatal(err)
	}
	dp, err := Fig9(context.Background(), MethodDeepPower, scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(retail.Trace.Times) == 0 || len(dp.Trace.Times) == 0 {
		t.Fatal("empty traces")
	}
	// DeepPower's fine-grained ramping changes frequency much more often
	// than ReTail's per-request selection.
	if dp.Trace.Changes() == 0 {
		t.Error("DeepPower trace has no frequency changes")
	}
}

func TestTable1Static(t *testing.T) {
	tbl := Table1()
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d, want 4 methods", len(tbl.Rows))
	}
	out := tbl.Render()
	for _, want := range []string{"DeepPower", "ReTail", "Gemini", "Rubik"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %s", want)
		}
	}
}
