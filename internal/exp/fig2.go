package exp

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/baselines"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/regress"
	"github.com/deeppower/deeppower/internal/stats"
)

// Fig2Loads are the load levels of the §3.1 motivation experiment.
var Fig2Loads = []float64{0.2, 0.35, 0.5, 0.6, 0.7}

// Fig2Result is the Relative RMSE heatmap of Fig. 2: cell (i, j) is the RMSE
// of a linear-regression service-time model trained at load level i
// predicting data from load level j, divided by the matched-load RMSE
// error(j, j). Values near 1 on the diagonal and above 1 off it demonstrate
// that static predictors degrade when the load shifts — the paper's case for
// workload-aware power management.
type Fig2Result struct {
	App     string
	Loads   []float64
	RelRMSE [][]float64 // [train][test]
}

// Fig2 runs the motivation experiment for one application (the paper shows
// Masstree and Sphinx). Each load level's profiling run is one pool work
// unit with its own profile and simulation; model fitting needs every
// dataset and stays serial.
func Fig2(ctx context.Context, appName string, scale Scale, workers int) (*Fig2Result, error) {
	n := scale.Samples
	if n > 5000 {
		n = 5000 // profiling runs are simulation-bound; 5k is plenty for LR
	}

	// Collect a dataset at every load level.
	datasets, err := pool.Map(ctx, Fig2Loads, workers,
		func(_ context.Context, load float64, i int) ([]baselines.ServiceSample, error) {
			prof := app.MustByName(appName)
			if scale.Workers > 0 {
				prof.Workers = scale.Workers
			}
			samples, err := baselines.CollectServiceData(prof, load, n, scale.Seed+int64(i)*101)
			if err != nil {
				return nil, fmt.Errorf("exp: fig2 load %v: %w", load, err)
			}
			return samples, nil
		})
	if err != nil {
		return nil, err
	}

	// Fit model_i on data_i; evaluate on every data_j.
	models := make([]*regress.Linear, len(datasets))
	for i, ds := range datasets {
		X, y := baselines.SplitXY(ds)
		m, err := regress.Fit(X, y, 1e-9)
		if err != nil {
			return nil, fmt.Errorf("exp: fig2 fitting at load %v: %w", Fig2Loads[i], err)
		}
		models[i] = m
	}

	abs := make([][]float64, len(models))
	for i, m := range models {
		abs[i] = make([]float64, len(datasets))
		for j, ds := range datasets {
			X, y := baselines.SplitXY(ds)
			abs[i][j] = stats.RMSE(m.PredictAll(X), y)
		}
	}
	rel := make([][]float64, len(models))
	for i := range abs {
		rel[i] = make([]float64, len(datasets))
		for j := range abs[i] {
			rel[i][j] = abs[i][j] / abs[j][j]
		}
	}
	return &Fig2Result{App: appName, Loads: Fig2Loads, RelRMSE: rel}, nil
}

// MaxOffDiagonal returns the largest relative RMSE outside the diagonal —
// the headline number showing cross-load degradation.
func (r *Fig2Result) MaxOffDiagonal() float64 {
	worst := 0.0
	for i := range r.RelRMSE {
		for j := range r.RelRMSE[i] {
			if i != j && r.RelRMSE[i][j] > worst {
				worst = r.RelRMSE[i][j]
			}
		}
	}
	return worst
}

// Table renders the heatmap.
func (r *Fig2Result) Table() *Table {
	t := &Table{
		Title:   fmt.Sprintf("Fig. 2 — relative RMSE heatmap (%s)", r.App),
		Columns: []string{"train\\test"},
	}
	for _, l := range r.Loads {
		t.Columns = append(t.Columns, fmt.Sprintf("%d%%", int(l*100)))
	}
	for i, l := range r.Loads {
		row := []string{fmt.Sprintf("%d%%", int(l*100))}
		for j := range r.Loads {
			row = append(row, f2(r.RelRMSE[i][j]))
		}
		t.AddRow(row...)
	}
	return t
}
