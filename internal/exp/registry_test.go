package exp

import "testing"

// registrySize is the single source of truth for the harness count. Prose
// (ROADMAP.md, EXPERIMENTS.md) must not hard-code the number — earlier
// revisions drifted ("19-entry registry" outliving three additions) — it
// should point here instead.
const registrySize = 24

// TestRegistryShape pins the registry's structural contract: the expected
// entry count, unique non-empty names, a Run function per entry, and
// HarnessByName resolving every registered name (and only those).
func TestRegistryShape(t *testing.T) {
	hs := Harnesses()
	if len(hs) != registrySize {
		t.Fatalf("registry has %d harnesses, want %d (update registrySize and any prose that names the count)",
			len(hs), registrySize)
	}
	seen := make(map[string]bool, len(hs))
	for _, h := range hs {
		if h.Name == "" {
			t.Fatal("harness with empty name")
		}
		if seen[h.Name] {
			t.Fatalf("duplicate harness name %q", h.Name)
		}
		seen[h.Name] = true
		if h.Run == nil {
			t.Fatalf("harness %q has no Run function", h.Name)
		}
		got, err := HarnessByName(h.Name)
		if err != nil {
			t.Fatalf("HarnessByName(%q): %v", h.Name, err)
		}
		if got.Name != h.Name {
			t.Fatalf("HarnessByName(%q) returned %q", h.Name, got.Name)
		}
	}
	for _, name := range []string{"dagserve", "heteroplace"} {
		if !seen[name] {
			t.Fatalf("harness %q not registered", name)
		}
	}
	if _, err := HarnessByName("no-such-harness"); err == nil {
		t.Fatal("HarnessByName accepted an unknown name")
	}
}
