package exp

import (
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// placedFixedPolicy pins a frequency and a static per-class placement.
type placedFixedPolicy struct {
	fixedFreqPolicy
	counts []int
}

func (p *placedFixedPolicy) Init(c server.Control) {
	p.fixedFreqPolicy.Init(c)
	c.SetPlacement(p.counts)
}

// heteroRun executes one fixed-frequency episode on a heterogeneous server.
func heteroRun(t *testing.T, topo cpu.Topology, pol server.Policy, seed int64,
	prof *app.Profile, trace *workload.Trace, dur sim.Time, recordJobs bool) *server.Result {
	t.Helper()
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{
		App: prof, Seed: seed, Topology: &topo, RecordJobs: recordJobs,
	}, pol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(trace, dur)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestHeteroClassEnergyMonotone checks per-class energy monotonicity: with a
// class isolated by placement (so the frequency choice cannot shift work to
// the other class's cores), serving the same workload at a higher fixed
// frequency must not cost that class less energy — its power curve rises
// superlinearly with the (ladder-clamped) frequency, so each request costs
// more joules even though it finishes sooner.
func TestHeteroClassEnergyMonotone(t *testing.T) {
	if testing.Short() {
		t.Skip("randomized simulations")
	}
	for seed := int64(0); seed < 20; seed++ {
		rng := sim.NewRNG(seed).Stream("hetero-energy")
		topo := cpu.DefaultHetero(1+rng.Intn(3), 1+rng.Intn(3))
		workers := topo.TotalCores()
		prof := invProfile(sim.Time(200+rng.Intn(600))*sim.Microsecond,
			sim.Time(2+rng.Intn(8))*sim.Millisecond, workers)
		dur := 400 * sim.Millisecond
		for c, cl := range topo.Classes {
			counts := make([]int, len(topo.Classes))
			counts[c] = cl.Count
			rate := (0.1 + 0.3*rng.Float64()) * float64(cl.Count) / prof.Sampler.Sample(rng).ServiceRef.Seconds()
			trace := workload.Constant(rate, dur)
			run := func(f cpu.Freq) *server.Result {
				return heteroRun(t, topo, &placedFixedPolicy{
					fixedFreqPolicy: fixedFreqPolicy{f: f}, counts: counts,
				}, seed, prof, trace, dur, false)
			}
			lo, hi := run(0.8), run(2.1)
			if len(lo.ClassEnergyJ) != len(topo.Classes) || len(hi.ClassEnergyJ) != len(topo.Classes) {
				t.Fatalf("seed %d: class energy vectors %v / %v for %d classes",
					seed, lo.ClassEnergyJ, hi.ClassEnergyJ, len(topo.Classes))
			}
			if lo.ClassEnergyJ[c] <= 0 {
				t.Fatalf("seed %d class %d: non-positive energy %v", seed, c, lo.ClassEnergyJ[c])
			}
			if hi.ClassEnergyJ[c] < lo.ClassEnergyJ[c] {
				t.Fatalf("seed %d class %d: energy not monotone in frequency: %.4f J @2.1GHz < %.4f J @0.8GHz",
					seed, c, hi.ClassEnergyJ[c], lo.ClassEnergyJ[c])
			}
		}
	}
}

// TestEfficientNeverBeatsFastOnCriticalPath pins the class speed model: with
// contention off, fixed service draws, and both placements actuating the same
// frequency, an efficient-only placement (0.7× throughput per GHz) can never
// produce a shorter per-job critical path than the fast-only placement.
func TestEfficientNeverBeatsFastOnCriticalPath(t *testing.T) {
	if testing.Short() {
		t.Skip("paired simulations")
	}
	dag, err := app.ParseDAG("cp", "gate(300us); auth(500us):gate; search(900us):gate; merge(400us):auth,search")
	if err != nil {
		t.Fatal(err)
	}
	topo := cpu.DefaultHetero(2, 2)
	prof := &app.Profile{
		Name:    "cp-prop",
		SLA:     20 * sim.Millisecond,
		Workers: topo.TotalCores(),
		RefFreq: 2.1,
		DAG:     dag,
	}
	dur := 400 * sim.Millisecond
	trace := workload.Constant(200, dur)
	// 1.2 GHz is a valid rung on both the fast (0.8–2.1) and efficient
	// (0.6–1.6) ladders, so the two placements sit at the same absolute
	// operating point and differ only in class speed.
	const f = cpu.Freq(1.2)
	for seed := int64(0); seed < 10; seed++ {
		fast := heteroRun(t, topo, &placedFixedPolicy{
			fixedFreqPolicy: fixedFreqPolicy{f: f}, counts: []int{2, 0},
		}, seed, prof, trace, dur, true)
		eff := heteroRun(t, topo, &placedFixedPolicy{
			fixedFreqPolicy: fixedFreqPolicy{f: f}, counts: []int{0, 2},
		}, seed, prof, trace, dur, true)

		fastCP := make(map[uint64]float64, len(fast.Jobs))
		for _, j := range fast.Jobs {
			fastCP[j.ID] = j.CriticalPathSec
		}
		matched := 0
		for _, j := range eff.Jobs {
			fcp, ok := fastCP[j.ID]
			if !ok {
				continue
			}
			matched++
			if j.CriticalPathSec < fcp*(1-1e-9) {
				t.Fatalf("seed %d job %d: efficient-only critical path %v beats fast-only %v at %.1f GHz",
					seed, j.ID, j.CriticalPathSec, fcp, float64(f))
			}
		}
		if matched == 0 {
			t.Fatalf("seed %d: no jobs completed under both placements", seed)
		}
	}
}

// TestPlacementAppliesToServer checks the placement actuation path end to
// end: hostile vectors are clamped or ignored, enabled counts follow the
// vector, and a placement that would disable every thread is rejected.
func TestPlacementAppliesToServer(t *testing.T) {
	topo := cpu.DefaultHetero(2, 3)
	prof := invProfile(500*sim.Microsecond, 5*sim.Millisecond, topo.TotalCores())
	eng := sim.NewEngine()
	pol := &fixedFreqPolicy{f: 1.2}
	srv, err := server.New(eng, server.Config{App: prof, Seed: 1, Topology: &topo}, pol)
	if err != nil {
		t.Fatal(err)
	}
	enabled := func() []int {
		var out []int
		for _, cs := range srv.Snapshot().Classes {
			out = append(out, cs.Enabled)
		}
		return out
	}
	check := func(counts, want []int) {
		t.Helper()
		srv.SetPlacement(counts)
		got := enabled()
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("SetPlacement(%v): enabled %v, want %v", counts, got, want)
			}
		}
	}
	check([]int{1, 2}, []int{1, 2})
	// Out-of-range entries clamp into [0, class size].
	check([]int{99, -7}, []int{2, 0})
	// An all-zero placement would deadlock the server and is ignored.
	check([]int{0, 0}, []int{2, 0})
	// A wrong-arity vector is ignored.
	check([]int{1}, []int{2, 0})
	check([]int{2, 3}, []int{2, 3})
}
