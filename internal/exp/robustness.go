package exp

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/fault"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// Scenario is one named fault-injection campaign.
type Scenario struct {
	Name string
	Plan fault.Plan
}

// Scenarios returns the robustness evaluation's fault campaigns, each
// reproducible from the given seed. They map to the hardware phenomena
// DESIGN.md catalogs: slow/lossy governor writes, noisy RAPL telemetry,
// core hotplug and thermal throttling, and flash-crowd load bursts.
func Scenarios(seed int64) []Scenario {
	return []Scenario{
		{
			Name: "actuation-lag",
			Plan: fault.Plan{
				Seed: seed,
				Actuation: fault.ActuationPlan{
					ExtraLatency:  5 * sim.Millisecond,
					JitterLatency: 15 * sim.Millisecond,
					DropProb:      0.40,
				},
			},
		},
		{
			Name: "sensor-noise",
			Plan: fault.Plan{
				Seed: seed,
				Sensor: fault.SensorPlan{
					EnergyNoiseFrac: 0.05,
					StaleProb:       0.20,
					DropProb:        0.05,
					QueueJitter:     2,
				},
			},
		},
		{
			Name: "core-failures",
			Plan: fault.Plan{
				Seed: seed,
				Cores: fault.CorePlan{
					MTBF:         4 * sim.Second,
					MTTR:         500 * sim.Millisecond,
					ThrottleCap:  cpu.Freq(1.2),
					ThrottleMTBF: 6 * sim.Second,
					ThrottleMTTR: 400 * sim.Millisecond,
				},
			},
		},
		{
			Name: "load-bursts",
			Plan: fault.Plan{
				Seed: seed,
				Load: fault.LoadPlan{SpikeProb: 0.15, SpikeMul: 1.6},
			},
		},
		{
			Name: "combined",
			Plan: fault.Plan{
				Seed: seed,
				Actuation: fault.ActuationPlan{
					ExtraLatency:  2 * sim.Millisecond,
					JitterLatency: 8 * sim.Millisecond,
					DropProb:      0.20,
				},
				Sensor: fault.SensorPlan{
					EnergyNoiseFrac: 0.03,
					StaleProb:       0.10,
					QueueJitter:     1,
				},
				Cores: fault.CorePlan{
					MTBF: 8 * sim.Second,
					MTTR: 300 * sim.Millisecond,
				},
				Load: fault.LoadPlan{SpikeProb: 0.08, SpikeMul: 1.4},
			},
		},
	}
}

// EvaluateUnderFaults runs one policy over the evaluation window with the
// given fault campaign active: the plan's load bursts are layered onto the
// trace and a fresh injector perturbs actuation, sensing, and cores.
func (s *Setup) EvaluateUnderFaults(pol server.Policy, plan fault.Plan) (*server.Result, error) {
	inj, err := fault.NewInjector(plan, s.Prof.Workers)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	cfg := s.ServerConfig(s.Scale.Seed + 104729)
	cfg.Faults = inj
	srv, err := server.New(eng, cfg, pol)
	if err != nil {
		return nil, err
	}
	return srv.Run(plan.ApplyToTrace(s.Trace), s.Scale.EvalDuration)
}

// RobustnessMethods is the comparison set for the robustness experiment.
var RobustnessMethods = []string{MethodRetail, MethodGemini, MethodDeepPower}

// RobustnessResult compares each method bare vs guarded under every fault
// scenario for one application.
type RobustnessResult struct {
	App       string
	Scenarios []string
	// Bare and Guarded map scenario → method → result.
	Bare    map[string]map[string]*server.Result
	Guarded map[string]map[string]*server.Result
}

// robustnessUnit is one (scenario, method, guarded) evaluation cell.
type robustnessUnit struct {
	scenario Scenario
	method   string
	guarded  bool
}

// Robustness runs the fault-injection comparison: every method is trained
// on the clean trace, then evaluated both bare and wrapped in the
// guarded-policy watchdog under each fault scenario. Each (scenario,
// method, bare/guarded) cell is one self-contained pool work unit that
// rebuilds its own Setup and policy — policies keep state across runs
// (DeepPower's controller, the guard's window), so nothing may be shared.
func Robustness(ctx context.Context, scale Scale, appName string, workers int) (*RobustnessResult, error) {
	var units []robustnessUnit
	for _, sc := range Scenarios(scale.Seed) {
		for _, method := range RobustnessMethods {
			for _, guarded := range []bool{false, true} {
				units = append(units, robustnessUnit{scenario: sc, method: method, guarded: guarded})
			}
		}
	}
	results, err := pool.Map(ctx, units, workers,
		func(_ context.Context, u robustnessUnit, _ int) (*server.Result, error) {
			setup, err := NewSetup(appName, scale)
			if err != nil {
				return nil, err
			}
			pol, err := setup.BuildPolicy(u.method)
			if err != nil {
				return nil, fmt.Errorf("exp: robustness %s/%s: %w", u.scenario.Name, u.method, err)
			}
			if u.guarded {
				pol = fault.WithGuard(pol)
			}
			res, err := setup.EvaluateUnderFaults(pol, u.scenario.Plan)
			if err != nil {
				return nil, fmt.Errorf("exp: robustness %s/%s: %w", u.scenario.Name, u.method, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}

	out := &RobustnessResult{
		App:     appName,
		Bare:    map[string]map[string]*server.Result{},
		Guarded: map[string]map[string]*server.Result{},
	}
	for i, u := range units {
		name := u.scenario.Name
		if out.Bare[name] == nil {
			out.Scenarios = append(out.Scenarios, name)
			out.Bare[name] = map[string]*server.Result{}
			out.Guarded[name] = map[string]*server.Result{}
		}
		if u.guarded {
			out.Guarded[name][u.method] = results[i]
		} else {
			out.Bare[name][u.method] = results[i]
		}
	}
	return out, nil
}

// Tables renders one table per scenario: per method, bare vs guarded power,
// timeout rate, Eq. 2 budget, and guard interventions.
func (r *RobustnessResult) Tables() []*Table {
	var out []*Table
	for _, sc := range r.Scenarios {
		t := &Table{
			Title: fmt.Sprintf("Robustness (%s) — scenario %q", r.App, sc),
			Columns: []string{"method", "power W", "timeout %", "Eq.2 met",
				"guard power W", "guard timeout %", "guard Eq.2", "fallbacks", "invalid"},
		}
		for _, m := range RobustnessMethods {
			b, g := r.Bare[sc][m], r.Guarded[sc][m]
			t.AddRow(m,
				f2(b.AvgPowerW), f3(b.TimeoutRate*100), fmt.Sprint(b.TimeoutBudgetMet),
				f2(g.AvgPowerW), f3(g.TimeoutRate*100), fmt.Sprint(g.TimeoutBudgetMet),
				f(g.PolicyStats["guard.fallbacks"]), f(g.PolicyStats["guard.invalid_actions"]),
			)
		}
		out = append(out, t)
	}
	return out
}
