package exp

import (
	"bytes"
	"context"
	"fmt"
	"os"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/ckpt"
	"github.com/deeppower/deeppower/internal/fault"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// WriteLossPlan is the actuation campaign the policy-lifecycle experiment
// (and the robustness acceptance test) runs under: 60% of governor writes are
// silently lost and the survivors land tens of milliseconds late, which
// defeats any policy that depends on fine-grained per-tick DVFS boosting.
func WriteLossPlan(seed int64) fault.Plan {
	return fault.Plan{
		Seed: seed,
		Actuation: fault.ActuationPlan{
			ExtraLatency:  10 * sim.Millisecond,
			JitterLatency: 30 * sim.Millisecond,
			DropProb:      0.6,
		},
	}
}

// Policy-lifecycle modes: the three escalation configurations compared.
const (
	PolicyLifeBare     = "bare"
	PolicyLifeGuarded  = "guarded"
	PolicyLifeRollback = "guarded+rollback"
)

// PolicyLifeModes is the comparison order.
var PolicyLifeModes = []string{PolicyLifeBare, PolicyLifeGuarded, PolicyLifeRollback}

// PolicyLifeCell is one mode's outcome under the write-loss campaign.
type PolicyLifeCell struct {
	Result *server.Result
	// Guard diagnostics (zero for the bare mode).
	Stats       fault.GuardStats
	Transitions []fault.GuardTransition
	// Registry state (rollback mode only): versions checkpointed during
	// training and the promotion-history depth left after the faulted run.
	TrainedVersions int
	HistoryDepth    int
}

// PolicyLifeResult compares the guard's escalation ladder configurations for
// one application: an unguarded policy, the max-frequency-pinning guard, and
// the guard with a checkpoint-registry rollback rung ahead of the pin.
type PolicyLifeResult struct {
	App   string
	Cells map[string]*PolicyLifeCell
}

// PolicyLife trains DeepPower with per-episode checkpointing into a policy
// registry, then evaluates it under the write-loss fault campaign in each
// escalation configuration. Every mode is one self-contained pool unit that
// retrains its own policy, so results are byte-identical at any worker count.
func PolicyLife(ctx context.Context, scale Scale, appName string, workers int) (*PolicyLifeResult, error) {
	cells, err := pool.Map(ctx, PolicyLifeModes, workers,
		func(_ context.Context, mode string, _ int) (*PolicyLifeCell, error) {
			cell, err := policyLifeUnit(mode, appName, scale)
			if err != nil {
				return nil, fmt.Errorf("exp: policylife %s: %w", mode, err)
			}
			return cell, nil
		})
	if err != nil {
		return nil, err
	}
	out := &PolicyLifeResult{App: appName, Cells: map[string]*PolicyLifeCell{}}
	for i, mode := range PolicyLifeModes {
		out.Cells[mode] = cells[i]
	}
	return out, nil
}

// policyLifeGuardConfig trips exactly at the paper's Eq. 2 budget, checks
// often enough that the first diurnal peak is caught early, and makes safe
// mode sticky for the rest of the run (mirroring the robustness acceptance
// configuration). The rollback hook, when present, is tried before the pin.
func policyLifeGuardConfig(rollback func() bool) fault.GuardConfig {
	return fault.GuardConfig{
		TimeoutRateLimit: 0.01,
		CheckEvery:       10 * sim.Millisecond,
		MinSamples:       16,
		Backoff:          10 * sim.Minute,
		Rollback:         rollback,
		// One rollback attempt: under a campaign this hostile every learned
		// policy fails, so additional attempts only delay the frequency pin
		// and cost tail latency.
		MaxRollbacks: 1,
	}
}

func policyLifeUnit(mode, appName string, scale Scale) (*PolicyLifeCell, error) {
	setup, err := NewSetup(appName, scale)
	if err != nil {
		return nil, err
	}
	// The same looser operating point as the robustness acceptance test: at
	// SLA 20 ms the peaks are servable at turbo, so the safe-mode fallback
	// can genuinely restore the budget.
	setup.Prof.SLA = 20 * sim.Millisecond

	dp, err := agent.New(setup.agentConfig())
	if err != nil {
		return nil, err
	}
	trainCfg := agent.TrainConfig{
		Episodes:   scale.TrainEpisodes,
		EpisodeLen: setup.Trace.Period,
		Server:     setup.trainServerConfig(),
		Trace:      setup.Trace,
	}

	cell := &PolicyLifeCell{}
	var reg *ckpt.Registry
	if mode == PolicyLifeRollback {
		// The registry lives in a throwaway directory: its contents are
		// derived entirely from the deterministic training run, so only the
		// guard counters (not the path) reach the artifact.
		dir, err := os.MkdirTemp("", "policylife-registry-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
		if reg, err = ckpt.OpenRegistry(dir); err != nil {
			return nil, err
		}
		trainCfg.OnEpisode = func(int, agent.EpisodeStats) error {
			var buf bytes.Buffer
			if err := dp.SavePolicy(&buf); err != nil {
				return err
			}
			v, err := reg.Put(buf.Bytes())
			if err != nil {
				return err
			}
			return reg.Promote(v)
		}
	}
	if _, err := agent.Train(dp, trainCfg); err != nil {
		return nil, err
	}
	if reg != nil {
		versions, err := reg.Versions()
		if err != nil {
			return nil, err
		}
		cell.TrainedVersions = len(versions)
	}

	var pol server.Policy = dp
	var guard *fault.GuardedPolicy
	switch mode {
	case PolicyLifeGuarded:
		guard = fault.NewGuardedPolicy(dp, policyLifeGuardConfig(nil))
	case PolicyLifeRollback:
		guard = fault.NewGuardedPolicy(dp, policyLifeGuardConfig(fault.RegistryRollback(reg, dp)))
	}
	if guard != nil {
		pol = guard
	}

	res, err := setup.EvaluateUnderFaults(pol, WriteLossPlan(scale.Seed+10))
	if err != nil {
		return nil, err
	}
	cell.Result = res
	if guard != nil {
		cell.Stats = guard.Stats()
		cell.Transitions = guard.Transitions
	}
	if reg != nil {
		cell.HistoryDepth = len(reg.History())
	}
	return cell, nil
}

// RollbackBeforeSafe reports whether, in the rollback mode, the guard tried
// at least one registry rollback strictly before its first transition into
// max-frequency safe mode — the escalation-ladder ordering contract.
func (r *PolicyLifeResult) RollbackBeforeSafe() bool {
	cell := r.Cells[PolicyLifeRollback]
	if cell == nil || cell.Stats.Rollbacks == 0 {
		return false
	}
	for _, tr := range cell.Transitions {
		if tr.RolledBack {
			return true
		}
		if tr.ToSafe {
			return false
		}
	}
	return false
}

// Table renders the mode comparison.
func (r *PolicyLifeResult) Table() *Table {
	t := &Table{
		Title: fmt.Sprintf("Policy lifecycle under 60%% write-loss (%s)", r.App),
		Columns: []string{"mode", "power W", "timeout %", "Eq.2 met",
			"rollbacks", "fallbacks", "safe ticks", "ckpt versions", "history depth"},
	}
	for _, mode := range PolicyLifeModes {
		c := r.Cells[mode]
		t.AddRow(mode,
			f2(c.Result.AvgPowerW), f3(c.Result.TimeoutRate*100), fmt.Sprint(c.Result.TimeoutBudgetMet),
			fmt.Sprint(c.Stats.Rollbacks), fmt.Sprint(c.Stats.Fallbacks), fmt.Sprint(c.Stats.SafeTicks),
			fmt.Sprint(c.TrainedVersions), fmt.Sprint(c.HistoryDepth),
		)
	}
	return t
}
