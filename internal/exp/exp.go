// Package exp contains one harness per table and figure of the paper's
// evaluation (§5), plus the ablations DESIGN.md lists. Each harness returns
// a structured result that renders both as an aligned text table (for
// terminals and EXPERIMENTS.md) and as CSV (for replotting).
package exp

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/deeppower/deeppower/internal/sim"
)

// Scale selects how big an experiment run is. Quick keeps unit tests and
// benchmarks snappy; Full approximates the paper's setup (20 workers, 360 s
// trace periods, longer training).
type Scale struct {
	// Workers overrides each app's worker count (0 keeps the paper's).
	Workers int
	// TrainEpisodes is how many trace periods DeepPower trains for.
	TrainEpisodes int
	// EvalDuration is the measured run length.
	EvalDuration sim.Time
	// TracePeriod is the diurnal trace's period.
	TracePeriod sim.Time
	// Samples bounds sampling-based experiments (Fig. 1, Fig. 2).
	Samples int
	// FleetShards is the fleet harness's server count (0 defaults to 4).
	FleetShards int
	// Seed drives everything.
	Seed int64
}

// Quick is the CI-friendly scale.
func Quick() Scale {
	return Scale{
		Workers:       4,
		TrainEpisodes: 4,
		EvalDuration:  40 * sim.Second,
		TracePeriod:   20 * sim.Second,
		Samples:       20000,
		FleetShards:   4,
		Seed:          1,
	}
}

// Full approximates the paper's experimental scale.
func Full() Scale {
	return Scale{
		Workers:       0, // paper values: 20 (8 for Masstree)
		TrainEpisodes: 20,
		EvalDuration:  360 * sim.Second,
		TracePeriod:   360 * sim.Second,
		Samples:       200000,
		FleetShards:   100,
		Seed:          1,
	}
}

// Table is a generic labeled grid used by every harness's rendering.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render returns an aligned text table.
func (t *Table) Render() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "== %s ==\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Columns)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV returns the table as comma-separated values with a header.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Columns, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		quoted := make([]string, len(row))
		for i, cell := range row {
			if strings.ContainsAny(cell, ",\"\n") {
				cell = strconv.Quote(cell)
			}
			quoted[i] = cell
		}
		b.WriteString(strings.Join(quoted, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// f formats a float compactly for table cells.
func f(v float64) string { return strconv.FormatFloat(v, 'g', 5, 64) }

// f2 formats with fixed precision.
func f2(v float64) string { return strconv.FormatFloat(v, 'f', 2, 64) }

// f3 formats with three decimals.
func f3(v float64) string { return strconv.FormatFloat(v, 'f', 3, 64) }
