package exp

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden regenerates the committed golden artifacts:
//
//	go test ./internal/exp -run TestGoldenArtifacts -update-golden
//
// The goldens exist to pin the repository's numerics: performance work on
// the nn/rl hot paths (batched kernels, scratch arenas) must change speed,
// not results, so training harness output is kept byte-identical across
// such refactors. Only regenerate after a change that intentionally alters
// experiment numerics.
var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden artifacts")

// goldenHarnesses are the fixed-seed harnesses pinned byte-for-byte. fig8
// trains the full DDPG DeepPower agent; ablation additionally exercises the
// two-head actor, the TD3 backend, and the DQN comparison — together they
// cover every training code path the batched kernels replaced. fig4 records
// a tick-resolution controller frequency trace with request begin/end
// markers, pinning the event engine's exact firing order (arrivals,
// completions, ticks) through the simulation-core fast path.
var goldenHarnesses = []string{"fig4", "fig8", "ablation"}

// TestGoldenArtifacts asserts every pinned harness renders byte-identical
// artifacts to the committed goldens in testdata/golden/.
func TestGoldenArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("trains agents")
	}
	scale := equivScale()
	for _, name := range goldenHarnesses {
		name := name
		t.Run(name, func(t *testing.T) {
			h, err := HarnessByName(name)
			if err != nil {
				t.Fatal(err)
			}
			arts, err := h.Run(context.Background(), scale, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(arts) == 0 {
				t.Fatal("harness produced no artifacts")
			}
			dir := filepath.Join("testdata", "golden", name)
			if *updateGolden {
				if err := os.MkdirAll(dir, 0o755); err != nil {
					t.Fatal(err)
				}
			}
			for _, a := range arts {
				path := filepath.Join(dir, a.Name+"."+a.Ext+".golden")
				if *updateGolden {
					if err := os.WriteFile(path, []byte(a.Data), 0o644); err != nil {
						t.Fatal(err)
					}
					continue
				}
				want, err := os.ReadFile(path)
				if err != nil {
					t.Fatalf("missing golden (run with -update-golden): %v", err)
				}
				if a.Data != string(want) {
					t.Errorf("%s.%s drifted from golden:\n%s",
						a.Name, a.Ext, firstDiff(a.Data, string(want)))
				}
			}
		})
	}
}
