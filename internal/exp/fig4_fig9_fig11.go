package exp

import (
	"context"
	"fmt"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/control"
	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// FreqTraceResult wraps a recorded per-tick frequency trace with request
// lifecycle markers — the raw material behind the paper's Figs. 4, 9, 10
// and 11.
type FreqTraceResult struct {
	App    string
	Method string
	Trace  *server.FreqTrace
}

// Fig4 records 2 seconds of millisecond-level frequency under the thread
// controller with DRL-updated parameters (a trained DeepPower policy on
// Xapian), reproducing Fig. 4's sawtooth ramps between request begin/end
// markers.
func Fig4(ctx context.Context, scale Scale) (*FreqTraceResult, error) {
	return methodFreqTrace(ctx, app.Xapian, MethodDeepPower, scale, 2*sim.Second)
}

// Fig9 records the same window under a chosen method for Xapian
// (millisecond-scale latency; the paper contrasts DeepPower's gradual ramps
// with ReTail's and Gemini's coarse per-request selections).
func Fig9(ctx context.Context, method string, scale Scale) (*FreqTraceResult, error) {
	return methodFreqTrace(ctx, app.Xapian, method, scale, 2*sim.Second)
}

// Fig10 records Sphinx (second-scale latency) under a chosen method.
func Fig10(ctx context.Context, method string, scale Scale) (*FreqTraceResult, error) {
	return methodFreqTrace(ctx, app.Sphinx, method, scale, 10*sim.Second)
}

func methodFreqTrace(ctx context.Context, appName, method string, scale Scale, window sim.Time) (*FreqTraceResult, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	setup, err := NewSetup(appName, scale)
	if err != nil {
		return nil, err
	}
	pol, err := setup.BuildPolicy(method)
	if err != nil {
		return nil, err
	}
	eng := sim.NewEngine()
	srv, err := server.New(eng, setup.ServerConfig(scale.Seed+31), pol)
	if err != nil {
		return nil, err
	}
	// Place the window mid-run, past warmup, inside a rising-load phase.
	from := scale.EvalDuration / 3
	ft := srv.EnableFreqTrace(from, from+window)
	if _, err := srv.Run(setup.Trace, from+window+sim.Second); err != nil {
		return nil, err
	}
	return &FreqTraceResult{App: appName, Method: method, Trace: ft}, nil
}

// Fig11Settings are the fixed (BaseFreq, ScalingCoef) pairs of Fig. 11.
var Fig11Settings = []control.Params{
	{BaseFreq: 0.4, ScalingCoef: 1.0},
	{BaseFreq: 0.5, ScalingCoef: 0.75},
	{BaseFreq: 0.6, ScalingCoef: 0.5},
}

// Fig11Result holds one frequency heatmap per fixed parameter setting.
type Fig11Result struct {
	Settings []control.Params
	Traces   []*server.FreqTrace
}

// Fig11 runs Xapian under the bare thread controller with each fixed
// parameter pair and records a 50 ms window of per-core frequencies. Each
// parameter setting is one self-contained pool work unit.
func Fig11(ctx context.Context, scale Scale, workers int) (*Fig11Result, error) {
	traces, err := pool.Map(ctx, Fig11Settings, workers,
		func(_ context.Context, params control.Params, _ int) (*server.FreqTrace, error) {
			setup, err := NewSetup(app.Xapian, scale)
			if err != nil {
				return nil, err
			}
			tc := control.NewThreadController(params)
			eng := sim.NewEngine()
			srv, err := server.New(eng, setup.ServerConfig(scale.Seed+7), tc)
			if err != nil {
				return nil, err
			}
			from := scale.EvalDuration / 3
			ft := srv.EnableFreqTrace(from, from+50*sim.Millisecond)
			if _, err := srv.Run(setup.Trace, from+51*sim.Millisecond+sim.Second); err != nil {
				return nil, err
			}
			return ft, nil
		})
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Settings: Fig11Settings, Traces: traces}, nil
}

// Summary reduces a frequency trace to per-core mean frequency plus marker
// counts, for table rendering.
func (r *FreqTraceResult) Summary() *Table {
	t := &Table{
		Title:   fmt.Sprintf("%s/%s — frequency trace summary", r.App, r.Method),
		Columns: []string{"metric", "value"},
	}
	t.AddRow("samples", f(float64(len(r.Trace.Times))))
	t.AddRow("request begins", f(float64(len(r.Trace.Begins))))
	t.AddRow("request ends", f(float64(len(r.Trace.Ends))))
	var sum float64
	var n int
	for _, row := range r.Trace.Freqs {
		for _, fr := range row {
			sum += fr
			n++
		}
	}
	if n > 0 {
		t.AddRow("mean freq (GHz)", f3(sum/float64(n)))
	}
	return t
}

// CSVFreqTrace renders any FreqTrace as long-form CSV (t, core, ghz).
func CSVFreqTrace(ft *server.FreqTrace) string {
	t := &Table{Columns: []string{"t_s", "core", "freq_ghz"}}
	for i, tm := range ft.Times {
		for c, fr := range ft.Freqs[i] {
			t.AddRow(f(tm.Seconds()), f(float64(c)), f(fr))
		}
	}
	return t.CSV()
}
