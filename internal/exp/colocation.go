package exp

import (
	"context"
	"fmt"
	"math"

	"github.com/deeppower/deeppower/internal/pool"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// ColocationResult closes the loop on the paper's §3.1 motivation: a
// colocated workload (e.g. a batch job sharing the LLC and memory
// bandwidth) phases in mid-run, inflating service times beyond anything the
// offline-profiled predictors saw. Prediction-based policies mis-predict and
// time out; DeepPower's feedback loop observes the slowdown through its
// state vector and compensates.
type ColocationResult struct {
	App     string
	Methods []string
	// Results maps method → evaluation under the phasing neighbor.
	Results map[string]*server.Result
}

// neighborPhase describes the colocated job: off for the first third of the
// run, fully on for the middle third, off again for the rest.
func neighborPhase(duration sim.Time) func(sim.Time) float64 {
	oneThird := duration / 3
	return func(t sim.Time) float64 {
		if t >= oneThird && t < 2*oneThird {
			return 1.0
		}
		return 0
	}
}

// Colocation evaluates methods under the phasing neighbor. Predictors are
// profiled (and DeepPower trained) WITHOUT the neighbor, as in practice:
// colocation changes after deployment. Each method is one self-contained
// pool work unit with its own Setup, policy, and engine.
func Colocation(ctx context.Context, appName string, scale Scale, methods []string, workers int) (*ColocationResult, error) {
	if methods == nil {
		methods = []string{MethodBaseline, MethodRetail, MethodGemini, MethodDeepPower}
	}
	results, err := pool.Map(ctx, methods, workers,
		func(_ context.Context, m string, _ int) (*server.Result, error) {
			setup, err := NewSetup(appName, scale)
			if err != nil {
				return nil, err
			}
			pol, err := setup.BuildPolicy(m)
			if err != nil {
				return nil, fmt.Errorf("exp: colocation %s: %w", m, err)
			}
			cfg := setup.ServerConfig(scale.Seed + 631)
			cfg.Interference = neighborPhase(scale.EvalDuration)
			eng := sim.NewEngine()
			srv, err := server.New(eng, cfg, pol)
			if err != nil {
				return nil, err
			}
			res, err := srv.Run(setup.Trace, scale.EvalDuration)
			if err != nil {
				return nil, fmt.Errorf("exp: colocation %s: %w", m, err)
			}
			return res, nil
		})
	if err != nil {
		return nil, err
	}
	out := &ColocationResult{App: appName, Methods: methods, Results: map[string]*server.Result{}}
	for i, m := range methods {
		out.Results[m] = results[i]
	}
	return out, nil
}

// Table renders the comparison.
func (r *ColocationResult) Table() *Table {
	t := &Table{
		Title:   "Colocation — " + r.App + " (neighbor phases in mid-run)",
		Columns: []string{"method", "power(W)", "p99(ms)", "timeout %", "SLA met"},
	}
	for _, m := range r.Methods {
		res, ok := r.Results[m]
		if !ok {
			continue
		}
		t.AddRow(m, f2(res.AvgPowerW), f3(res.Latency.P99*1000),
			f3(res.TimeoutRate*100), fmt.Sprint(res.SLAMet))
	}
	return t
}

// TimeoutRatio returns a method's timeout rate relative to DeepPower's
// (NaN when DeepPower was not run or had zero timeouts).
func (r *ColocationResult) TimeoutRatio(method string) float64 {
	dp, ok := r.Results[MethodDeepPower]
	if !ok || dp.TimeoutRate == 0 {
		return math.NaN()
	}
	return r.Results[method].TimeoutRate / dp.TimeoutRate
}
