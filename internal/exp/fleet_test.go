package exp

import (
	"context"
	"strings"
	"testing"

	"github.com/deeppower/deeppower/internal/cluster"
	"github.com/deeppower/deeppower/internal/sim"
)

// fleetTestScale is the 100-server fleet at test-friendly durations: the
// determinism and conservation contracts do not depend on campaign length,
// so the suite compresses the diurnal period to a few seconds while keeping
// the full-scale shard count.
func fleetTestScale() Scale {
	s := Quick()
	s.TrainEpisodes = 1
	s.EvalDuration = 3 * sim.Second
	s.TracePeriod = 3 * sim.Second
	s.Samples = 2000
	s.FleetShards = 100
	return s
}

// TestFleetSerialParallelEquivalence is the ISSUE's headline determinism
// check at full fleet width: a 100-server campaign advanced with one worker
// must render byte-identical artifacts to the same campaign advanced with
// eight. (The registry-wide equivalence suite already covers the fleet
// harness at Quick's 4 shards; this pins the width where epoch batches
// actually span many pool units.)
func TestFleetSerialParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("two 100-server fleet campaigns")
	}
	h, err := HarnessByName("fleet")
	if err != nil {
		t.Fatal(err)
	}
	scale := fleetTestScale()
	serial, err := h.Run(context.Background(), scale, 1)
	if err != nil {
		t.Fatalf("serial run: %v", err)
	}
	parallel, err := h.Run(context.Background(), scale, 8)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	if len(serial) == 0 || len(serial) != len(parallel) {
		t.Fatalf("artifact counts: serial %d, parallel %d", len(serial), len(parallel))
	}
	for i := range serial {
		s, p := serial[i], parallel[i]
		if s.Name != p.Name || s.Ext != p.Ext {
			t.Fatalf("artifact %d identity differs: %s.%s vs %s.%s", i, s.Name, s.Ext, p.Name, p.Ext)
		}
		if s.Data != p.Data {
			t.Errorf("%s.%s differs between workers=1 and workers=8:\n%s",
				s.Name, s.Ext, firstDiff(s.Data, p.Data))
		}
	}
}

// TestFleetResultShape sanity-checks one tiny fleet run end to end: every
// balancer campaign and both fault modes present, conservation intact, and
// the time-series CSV covering each campaign.
func TestFleetResultShape(t *testing.T) {
	if testing.Short() {
		t.Skip("trains a policy and runs five fleet campaigns")
	}
	scale := fleetTestScale()
	scale.FleetShards = 6
	res, err := Fleet(context.Background(), scale, 4)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != 6 {
		t.Errorf("Shards = %d, want 6", res.Shards)
	}
	for _, name := range cluster.BalancerNames() {
		c := res.Campaigns[name]
		if c == nil {
			t.Fatalf("missing campaign %q", name)
		}
		if c.TotalRouted == 0 || c.Completions == 0 {
			t.Errorf("%s: degenerate campaign: %s", name, c)
		}
		if c.Arrivals != c.Completions+c.InFlight {
			t.Errorf("%s: conservation violated: %d arrivals vs %d completed + %d in flight",
				name, c.Arrivals, c.Completions, c.InFlight)
		}
		if len(c.Series) == 0 {
			t.Errorf("%s: empty fleet time series", name)
		}
	}
	for _, mode := range FleetFaultModes {
		c := res.Fault[mode]
		if c == nil {
			t.Fatalf("missing fault mode %q", mode)
		}
		if c.TotalRouted == 0 {
			t.Errorf("fault %s: no requests routed", mode)
		}
	}
	csv := res.CSVSeries()
	for _, name := range cluster.BalancerNames() {
		if !strings.Contains(csv, name+",") {
			t.Errorf("time-series CSV missing campaign %q", name)
		}
	}
	if res.Table().Render() == "" || res.FaultTable().Render() == "" {
		t.Error("empty table rendering")
	}
}
