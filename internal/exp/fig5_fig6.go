package exp

import (
	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/workload"
)

// Fig5Result is the scaleFunc curve of Fig. 5 (η = 100): near zero below
// the threshold, rising to 1 above it, with the change point near x = η.
type Fig5Result struct {
	Eta float64
	X   []float64
	Y   []float64
}

// Fig5 evaluates scaleFunc over a log-ish grid.
func Fig5(eta float64) *Fig5Result {
	if eta == 0 {
		eta = 100
	}
	r := &Fig5Result{Eta: eta}
	for x := 0.0; x <= 10*eta; x += eta / 20 {
		r.X = append(r.X, x)
		r.Y = append(r.Y, agent.ScaleFunc(x, eta))
	}
	return r
}

// Table renders selected points.
func (r *Fig5Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 5 — scaleFunc(x), η = 100",
		Columns: []string{"x", "scaleFunc"},
	}
	for i := 0; i < len(r.X); i += 20 {
		t.AddRow(f(r.X[i]), f3(r.Y[i]))
	}
	return t
}

// CSVCurve renders the full curve.
func (r *Fig5Result) CSVCurve() string {
	t := &Table{Columns: []string{"x", "scalefunc"}}
	for i := range r.X {
		t.AddRow(f(r.X[i]), f(r.Y[i]))
	}
	return t.CSV()
}

// Fig6Result is the dynamic workload trace of Fig. 6: the diurnal
// e-commerce RPS pattern, downsampled to one period (§5.2).
type Fig6Result struct {
	Trace *workload.Trace
}

// Fig6 synthesizes the evaluation trace.
func Fig6(scale Scale) *Fig6Result {
	cfg := workload.DefaultDiurnal()
	cfg.Period = scale.TracePeriod
	cfg.Buckets = int(scale.TracePeriod.Seconds())
	if cfg.Buckets < 10 {
		cfg.Buckets = 10
	}
	cfg.Seed = scale.Seed
	return &Fig6Result{Trace: workload.Diurnal(cfg)}
}

// Table summarizes the trace.
func (r *Fig6Result) Table() *Table {
	t := &Table{
		Title:   "Fig. 6 — dynamic workload (diurnal e-commerce trace)",
		Columns: []string{"metric", "value"},
	}
	t.AddRow("period (s)", f(r.Trace.Period.Seconds()))
	t.AddRow("buckets", f(float64(len(r.Trace.Rates))))
	t.AddRow("mean RPS", f2(r.Trace.MeanRate()))
	t.AddRow("peak RPS", f2(r.Trace.MaxRate()))
	return t
}
