package exp

import (
	"bytes"
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/fault"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// invSampler serves fixed-size requests for the invariant suite.
type invSampler struct{ service sim.Time }

func (s invSampler) Sample(*sim.RNG) app.Work {
	return app.Work{ServiceRef: s.service, Features: []float64{1}}
}
func (s invSampler) FeatureDim() int { return 1 }

func invProfile(service, sla sim.Time, workers int) *app.Profile {
	return &app.Profile{
		Name:    "inv",
		SLA:     sla,
		Workers: workers,
		RefFreq: 2.1,
		Sampler: invSampler{service: service},
	}
}

// fixedFreqPolicy pins every core at one frequency.
type fixedFreqPolicy struct {
	server.BasePolicy
	f cpu.Freq
}

func (p *fixedFreqPolicy) Name() string { return "fixed" }
func (p *fixedFreqPolicy) OnTick(sim.Time) {
	for i := 0; i < p.Ctl.NumCores(); i++ {
		p.Ctl.SetFreq(i, p.f)
	}
}

// brokenPolicy emits a non-finite frequency every tick — the degenerate
// learned policy the guard's invalid-action rung must catch.
type brokenPolicy struct{ server.BasePolicy }

func (p *brokenPolicy) Name() string { return "broken" }
func (p *brokenPolicy) OnTick(sim.Time) {
	for i := 0; i < p.Ctl.NumCores(); i++ {
		p.Ctl.SetFreq(i, cpu.Freq(math.NaN()))
	}
}

// TestRandomizedInvariants is the fuzzing suite of the crash-safety
// milestone: 100 randomized system configurations, each checked against the
// invariants that must hold whatever the draw — request conservation,
// energy monotonicity in frequency, policy-export round-trip identity, and
// guard safe-mode liveness under a poisoned policy.
func TestRandomizedInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("100 randomized simulations")
	}
	const iters = 100
	for seed := int64(0); seed < iters; seed++ {
		rng := sim.NewRNG(seed).Stream("invariants")
		workers := 1 + rng.Intn(4)
		service := sim.Time(200+rng.Intn(800)) * sim.Microsecond
		sla := sim.Time(2+rng.Intn(8)) * sim.Millisecond
		rate := 200 + 400*float64(workers)*rng.Float64()
		dur := 500 * sim.Millisecond
		trace := workload.Constant(rate, dur)

		run := func(pol server.Policy) *server.Result {
			t.Helper()
			eng := sim.NewEngine()
			srv, err := server.New(eng, server.Config{App: invProfile(service, sla, workers), Seed: seed}, pol)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			res, err := srv.Run(trace, dur)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return res
		}

		// Invariant 1 — request conservation: every request is in exactly
		// one of queued / in-service / completed, so the cumulative counters
		// are ordered and in-flight work never exceeds the core count.
		lo := run(&fixedFreqPolicy{f: 0.8})
		c := lo.Counters
		if c.Completions > c.Dispatched || c.Dispatched > c.Arrivals {
			t.Fatalf("seed %d: counter conservation violated: %+v", seed, c)
		}
		if inFlight := c.Dispatched - c.Completions; inFlight > uint64(workers) {
			t.Fatalf("seed %d: %d requests in service on %d cores", seed, inFlight, workers)
		}
		if c.Arrivals == 0 || c.Completions == 0 {
			t.Fatalf("seed %d: degenerate run %+v", seed, c)
		}

		// Invariant 2 — energy monotonicity: the same workload run at a
		// higher fixed frequency must not draw less average power (the
		// power model is superlinear in f and idle draw is identical).
		hi := run(&fixedFreqPolicy{f: 2.1})
		if hi.AvgPowerW < lo.AvgPowerW {
			t.Fatalf("seed %d: power not monotone in frequency: %.3f W @2.1GHz < %.3f W @0.8GHz",
				seed, hi.AvgPowerW, lo.AvgPowerW)
		}

		// Invariant 3 — policy-export round-trip identity: save → load →
		// save must reproduce the exact bytes.
		dp, err := agent.New(agent.Config{Seed: seed})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		var first bytes.Buffer
		if err := dp.SavePolicy(&first); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		dp2, err := agent.New(agent.Config{Seed: seed + iters})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := dp2.LoadPolicy(bytes.NewReader(first.Bytes())); err != nil {
			t.Fatalf("seed %d: exported policy does not load: %v", seed, err)
		}
		var second bytes.Buffer
		if err := dp2.SavePolicy(&second); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(first.Bytes(), second.Bytes()) {
			t.Fatalf("seed %d: policy round trip not identical (%d vs %d bytes)",
				seed, first.Len(), second.Len())
		}

		// Invariant 4 — guard safe-mode liveness: a policy emitting NaN
		// frequencies must drive the guard into safe mode, and the system
		// must keep serving requests afterwards.
		guard := fault.NewGuardedPolicy(&brokenPolicy{}, fault.GuardConfig{
			CheckEvery: 5 * sim.Millisecond,
			MinSamples: 8,
		})
		gres := run(guard)
		if gres.PolicyStats["guard.invalid_actions"] == 0 {
			t.Fatalf("seed %d: guard saw no invalid actions from the broken policy", seed)
		}
		if gres.PolicyStats["guard.fallbacks"] == 0 {
			t.Fatalf("seed %d: guard never entered safe mode (stats %v)", seed, gres.PolicyStats)
		}
		if gres.Counters.Completions == 0 {
			t.Fatalf("seed %d: no completions under the guarded broken policy", seed)
		}
	}
}
