package exp

import (
	"context"
	"fmt"
	"strings"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/pool"
)

// Artifact is one rendered output of a harness: a text table or a CSV,
// identified by the base file name cmd/repro writes it under.
type Artifact struct {
	// Name is the artifact's base file name, without extension.
	Name string
	// Ext is "txt" for aligned text tables or "csv".
	Ext string
	// Data is the rendered content.
	Data string
}

func tableArtifact(name string, t *Table) Artifact {
	return Artifact{Name: name, Ext: "txt", Data: t.Render()}
}

func csvArtifact(name, data string) Artifact {
	return Artifact{Name: name, Ext: "csv", Data: data}
}

// Harness is one registered experiment: a named generator of artifacts.
// Run executes the experiment's (policy × app × seed) grid on up to workers
// concurrent pool workers and returns artifacts in a fixed, declared order.
type Harness struct {
	// Name is the registry key (-only flag, test names).
	Name string
	// Deterministic harnesses produce byte-identical artifacts for a given
	// scale at any worker count — the serial/parallel equivalence contract
	// TestSerialParallelEquivalence enforces. Harnesses whose artifacts
	// contain wall-clock measurements (table2, overhead) are exempt from
	// byte identity; for those only the artifact shape is stable.
	Deterministic bool
	// Run produces the harness's artifacts.
	Run func(ctx context.Context, scale Scale, workers int) ([]Artifact, error)
}

// Harnesses returns every registered experiment in the paper's order. The
// registry is the single source of truth shared by cmd/repro, the
// equivalence tests, and the suite benchmarks.
func Harnesses() []Harness {
	return []Harness{
		{Name: "table1", Deterministic: true, Run: runTable1},
		{Name: "fig1", Deterministic: true, Run: runFig1},
		{Name: "fig2", Deterministic: true, Run: runFig2},
		{Name: "table2", Deterministic: false, Run: runTable2},
		{Name: "table3", Deterministic: true, Run: runTable3},
		{Name: "fig4", Deterministic: true, Run: runFig4},
		{Name: "fig5", Deterministic: true, Run: runFig5},
		{Name: "fig6", Deterministic: true, Run: runFig6},
		{Name: "fig7", Deterministic: true, Run: runFig7},
		{Name: "fig8", Deterministic: true, Run: runFig8},
		{Name: "fig9", Deterministic: true, Run: runFig9},
		{Name: "fig10", Deterministic: true, Run: runFig10},
		{Name: "fig11", Deterministic: true, Run: runFig11},
		{Name: "overhead", Deterministic: false, Run: runOverhead},
		{Name: "ablation", Deterministic: true, Run: runAblationH},
		{Name: "generalization", Deterministic: true, Run: runGeneralizationH},
		{Name: "crossover", Deterministic: true, Run: runCrossoverH},
		{Name: "colocation", Deterministic: true, Run: runColocationH},
		{Name: "robustness", Deterministic: true, Run: runRobustnessH},
		{Name: "policylife", Deterministic: true, Run: runPolicyLifeH},
		{Name: "fleet", Deterministic: true, Run: runFleetH},
		{Name: "vectrain", Deterministic: false, Run: runVecTrainH},
		{Name: "dagserve", Deterministic: true, Run: runDAGServeH},
		{Name: "heteroplace", Deterministic: true, Run: runHeteroPlaceH},
	}
}

// HarnessByName looks up one registered harness.
func HarnessByName(name string) (Harness, error) {
	for _, h := range Harnesses() {
		if h.Name == name {
			return h, nil
		}
	}
	return Harness{}, fmt.Errorf("exp: unknown harness %q", name)
}

func runTable1(context.Context, Scale, int) ([]Artifact, error) {
	return []Artifact{tableArtifact("table1_method_comparison", Table1())}, nil
}

func runFig1(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := Fig1(ctx, scale, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{
		tableArtifact("fig1_service_time_skew", r.Table()),
		csvArtifact("fig1_cdf", r.CSVCurves()),
	}, nil
}

func runFig2(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	var out []Artifact
	for _, name := range []string{app.Masstree, app.Sphinx} {
		r, err := Fig2(ctx, name, scale, workers)
		if err != nil {
			return nil, err
		}
		out = append(out, tableArtifact("fig2_rmse_"+name, r.Table()))
	}
	return out, nil
}

func runTable2(ctx context.Context, _ Scale, _ int) ([]Artifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := Table2(5000)
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("table2_inference_time", r.Table())}, nil
}

func runTable3(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	scale.Workers = 0 // Table 3 uses the paper's worker counts
	r, err := Table3(ctx, scale, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("table3_tail_latency", r.Table())}, nil
}

func runFig4(ctx context.Context, scale Scale, _ int) ([]Artifact, error) {
	r, err := Fig4(ctx, scale)
	if err != nil {
		return nil, err
	}
	return []Artifact{
		tableArtifact("fig4_controller_trace_summary", r.Summary()),
		csvArtifact("fig4_controller_trace", CSVFreqTrace(r.Trace)),
	}, nil
}

func runFig5(ctx context.Context, _ Scale, _ int) ([]Artifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := Fig5(100)
	return []Artifact{
		tableArtifact("fig5_scalefunc", r.Table()),
		csvArtifact("fig5_scalefunc", r.CSVCurve()),
	}, nil
}

func runFig6(ctx context.Context, scale Scale, _ int) ([]Artifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r := Fig6(scale)
	var sb strings.Builder
	if err := r.Trace.WriteCSV(&sb); err != nil {
		return nil, err
	}
	return []Artifact{
		tableArtifact("fig6_workload", r.Table()),
		csvArtifact("fig6_workload", sb.String()),
	}, nil
}

func runFig7(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := Fig7(ctx, scale, nil, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{
		tableArtifact("fig7a_power", r.PowerTable()),
		tableArtifact("fig7b_latency", r.LatencyTable()),
		tableArtifact("fig7c_quality", r.QualityTable()),
	}, nil
}

func runFig8(ctx context.Context, scale Scale, _ int) ([]Artifact, error) {
	r, err := Fig8(ctx, scale)
	if err != nil {
		return nil, err
	}
	return []Artifact{
		tableArtifact("fig8_timeseries_summary", r.Table()),
		csvArtifact("fig8_timeseries", r.CSVSeries()),
	}, nil
}

// freqTraceMethods is the method comparison Figs. 9 and 10 record.
var freqTraceMethods = []string{MethodDeepPower, MethodRetail, MethodGemini}

func runFig9(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	return methodTraceArtifacts(ctx, scale, workers, "fig9", Fig9)
}

func runFig10(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	return methodTraceArtifacts(ctx, scale, workers, "fig10", Fig10)
}

// methodTraceArtifacts fans the per-method frequency-trace recordings out
// over the pool; each method is one self-contained unit.
func methodTraceArtifacts(ctx context.Context, scale Scale, workers int, prefix string,
	fig func(context.Context, string, Scale) (*FreqTraceResult, error)) ([]Artifact, error) {
	traces, err := pool.Map(ctx, freqTraceMethods, workers,
		func(ctx context.Context, method string, _ int) (*FreqTraceResult, error) {
			return fig(ctx, method, scale)
		})
	if err != nil {
		return nil, err
	}
	var out []Artifact
	for i, method := range freqTraceMethods {
		out = append(out,
			tableArtifact(prefix+"_"+method+"_summary", traces[i].Summary()),
			csvArtifact(prefix+"_freq_"+method, CSVFreqTrace(traces[i].Trace)))
	}
	return out, nil
}

func runFig11(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := Fig11(ctx, scale, workers)
	if err != nil {
		return nil, err
	}
	var out []Artifact
	for i, ft := range r.Traces {
		name := fmt.Sprintf("fig11_b%.2g_s%.2g", r.Settings[i].BaseFreq, r.Settings[i].ScalingCoef)
		out = append(out, csvArtifact(name, CSVFreqTrace(ft)))
	}
	return out, nil
}

func runOverhead(ctx context.Context, _ Scale, _ int) ([]Artifact, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	r, err := Overhead()
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("overhead", r.Table())}, nil
}

func runAblationH(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := Ablation(ctx, app.Xapian, scale, nil, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("ablation_xapian", r.Table())}, nil
}

func runGeneralizationH(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := Generalization(ctx, app.Xapian, scale, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("generalization_xapian", r.Table())}, nil
}

func runCrossoverH(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := Crossover(ctx, app.Xapian, scale, nil, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("crossover_xapian", r.Table())}, nil
}

func runColocationH(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := Colocation(ctx, app.Xapian, scale, nil, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("colocation_xapian", r.Table())}, nil
}

func runPolicyLifeH(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := PolicyLife(ctx, scale, app.Xapian, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("policylife_xapian", r.Table())}, nil
}

func runFleetH(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := Fleet(ctx, scale, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{
		tableArtifact("fleet_campaign", r.Table()),
		tableArtifact("fleet_fault", r.FaultTable()),
		csvArtifact("fleet_timeseries", r.CSVSeries()),
	}, nil
}

func runVecTrainH(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := VecTrain(ctx, app.Xapian, scale, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("vectrain_xapian", r.Table())}, nil
}

func runDAGServeH(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := DAGServe(ctx, scale, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("dagserve_searchsvc", r.Table())}, nil
}

func runHeteroPlaceH(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := HeteroPlace(ctx, scale, workers)
	if err != nil {
		return nil, err
	}
	return []Artifact{tableArtifact("heteroplace_xapian", r.Table())}, nil
}

func runRobustnessH(ctx context.Context, scale Scale, workers int) ([]Artifact, error) {
	r, err := Robustness(ctx, scale, app.Xapian, workers)
	if err != nil {
		return nil, err
	}
	var out []Artifact
	for i, t := range r.Tables() {
		out = append(out, tableArtifact("robustness_xapian_"+r.Scenarios[i], t))
	}
	return out, nil
}
