package exp

// Table1 reproduces the paper's qualitative comparison of DeepPower against
// prior methods (Table 1): which are workload-aware, what granularity they
// control at, whether they need manual feature engineering, and the policy
// family. Static by nature; rendered for completeness so every table in the
// paper has a regeneration target.
func Table1() *Table {
	t := &Table{
		Title: "Table 1 — comparison of DeepPower and other methods",
		Columns: []string{
			"method", "workload-aware", "granularity", "needs features", "policy",
		},
	}
	t.AddRow("Rubik", "no", "per request", "no (distribution tail)", "statistical heuristic")
	t.AddRow("Gemini", "no", "per request (two-stage)", "yes (NN prediction)", "heuristic boost")
	t.AddRow("ReTail", "no", "per request", "yes (linear regression)", "min-frequency search")
	t.AddRow("DeepPower", "yes (DRL feedback)", "per millisecond (hierarchical)", "no", "learned (DDPG)")
	return t
}
