package exp

import (
	"context"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/sim"
)

// shapeScale keeps the train-and-evaluate shape tests snappy.
func shapeScale() Scale {
	s := Quick()
	s.TrainEpisodes = 1
	s.EvalDuration = 12 * sim.Second
	s.TracePeriod = 10 * sim.Second
	s.Samples = 2000
	return s
}

// TestFig8Shape covers the previously untested time-series harness:
// output shape, time monotonicity, physical plausibility of every column,
// and seed stability.
func TestFig8Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("training run")
	}
	scale := shapeScale()
	r, err := Fig8(context.Background(), scale)
	if err != nil {
		t.Fatal(err)
	}
	if r.App != app.Xapian {
		t.Errorf("app = %q", r.App)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no series rows")
	}
	for i, row := range r.Rows {
		if i > 0 && row.At < r.Rows[i-1].At {
			t.Fatalf("row %d: time went backwards (%v after %v)", i, row.At, r.Rows[i-1].At)
		}
		if row.RPS < 0 || row.PowerW < 0 || row.AvgFreqGHz < 0 || row.QueueLen < 0 {
			t.Fatalf("row %d: negative measurement %+v", i, row)
		}
		if row.BaseFreq < 0 || row.BaseFreq > 1 || row.ScalingCoef < 0 || row.ScalingCoef > 1 {
			t.Fatalf("row %d: controller params outside [0,1]: %+v", i, row)
		}
	}
	if r.Table().Render() == "" || r.CSVSeries() == "" {
		t.Error("empty rendering")
	}

	// Seed stability: an identical run renders the identical series.
	again, err := Fig8(context.Background(), scale)
	if err != nil {
		t.Fatal(err)
	}
	if r.CSVSeries() != again.CSVSeries() {
		t.Error("Fig8 not stable across same-seed runs")
	}
}

// TestFig7Shape table-drives the comparison harness over single-app grids:
// every (app, method) cell populated, physically plausible, and stable
// across same-seed runs at different worker counts.
func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-method comparison")
	}
	cases := []struct {
		name string
		apps []string
	}{
		{"xapian", []string{app.Xapian}},
		{"sphinx", []string{app.Sphinx}},
	}
	scale := shapeScale()
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r, err := Fig7(context.Background(), scale, tc.apps, 4)
			if err != nil {
				t.Fatal(err)
			}
			if len(r.Apps) != len(tc.apps) {
				t.Fatalf("apps = %v", r.Apps)
			}
			for _, name := range tc.apps {
				for _, m := range Fig7Methods {
					res := r.Results[name][m]
					if res == nil {
						t.Fatalf("missing result %s/%s", name, m)
					}
					if res.AvgPowerW <= 0 || res.Counters.Completions == 0 {
						t.Errorf("%s/%s: degenerate result (power %v, completions %d)",
							name, m, res.AvgPowerW, res.Counters.Completions)
					}
					if res.Latency.P99 < 0 {
						t.Errorf("%s/%s: negative p99", name, m)
					}
					// No managed method may exceed the all-turbo baseline's
					// power: turbo everywhere is the ceiling by construction.
					if base := r.Results[name][MethodBaseline]; res.AvgPowerW > base.AvgPowerW*1.01 {
						t.Errorf("%s/%s: power %v above baseline %v", name, m, res.AvgPowerW, base.AvgPowerW)
					}
				}
			}
			for _, tbl := range []*Table{r.PowerTable(), r.LatencyTable(), r.QualityTable()} {
				if len(tbl.Rows) != len(tc.apps) {
					t.Errorf("table %q has %d rows, want %d", tbl.Title, len(tbl.Rows), len(tc.apps))
				}
			}
		})
	}
}

// TestOverheadTableShape covers the overhead harness's rendering: the five
// §5.5 rows plus the two simulator-throughput rows, with the measured
// columns populated.
func TestOverheadTableShape(t *testing.T) {
	r, err := Overhead()
	if err != nil {
		t.Fatal(err)
	}
	if r.SimEvents == 0 || r.SimEventsPerSec <= 0 {
		t.Errorf("simulator throughput not measured: events=%d, events/s=%v",
			r.SimEvents, r.SimEventsPerSec)
	}
	tbl := r.Table()
	if len(tbl.Rows) != 7 {
		t.Fatalf("overhead table has %d rows, want 7", len(tbl.Rows))
	}
	for _, row := range tbl.Rows {
		if len(row) != 3 {
			t.Fatalf("row %v has %d cells, want 3", row, len(row))
		}
		if row[1] == "" || row[2] == "" {
			t.Errorf("row %v has empty cells", row)
		}
	}
}

// TestMeasureFreqSet covers the simulator's frequency-actuation timing
// probe: positive, finite, and far below the paper's 10 µs sysfs bound.
func TestMeasureFreqSet(t *testing.T) {
	us := measureFreqSet()
	if us <= 0 {
		t.Fatalf("freq-set cost %v us, want > 0", us)
	}
	if us >= 10 {
		t.Errorf("freq-set cost %v us, want < 10 (paper bound)", us)
	}
}
