package exp

import (
	"context"
	"fmt"
	"time"

	"github.com/deeppower/deeppower/internal/agent"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// VecTrainEnvs are the vector widths the harness compares against the
// single-env trainer.
var VecTrainEnvs = []int{4, 8, 16}

// VecTrainRow is one training configuration's measurement: how fast
// experience entered the replay pool, and what the resulting policy is worth
// on the standard evaluation window.
type VecTrainRow struct {
	// Name labels the configuration ("single" or "vec-E<n>").
	Name string
	// Envs is the environment count (1 for the single-env trainer).
	Envs int
	// WallSeconds is the measured training wall time.
	WallSeconds float64
	// Transitions counts experience pushed into the replay pool.
	Transitions uint64
	// TransPerSec is Transitions / WallSeconds — the experience throughput
	// the vectorized trainer exists to raise.
	TransPerSec float64
	// Speedup is TransPerSec over the single-env row's.
	Speedup float64
	// FinalReturn is the last training episode's mean return.
	FinalReturn float64
	// Eval is the trained policy evaluated on the setup's standard window.
	Eval *server.Result
}

// VecTrainResult compares single-env and vectorized DeepPower training.
type VecTrainResult struct {
	App  string
	Rows []VecTrainRow
}

// VecTrain trains one DeepPower policy per configuration — the classic
// single-env loop, then E ∈ VecTrainEnvs lockstep environments — for the
// same episode count each, and evaluates every trained policy on the same
// window. Configurations run sequentially (never pooled against each other)
// so each wall-clock measurement has the machine to itself; workers only
// bounds the env fan-out inside one vectorized trainer. Wall-clock numbers
// make this harness non-deterministic; everything else about the rows is
// seed-stable.
func VecTrain(ctx context.Context, appName string, scale Scale, workers int) (*VecTrainResult, error) {
	setup, err := NewSetup(appName, scale)
	if err != nil {
		return nil, err
	}
	out := &VecTrainResult{App: appName}
	evalEng := sim.NewEngine() // warm arena reused across all evaluations

	run := func(name string, envs int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		dp, err := agent.New(setup.agentConfig())
		if err != nil {
			return err
		}
		var finalReturn float64
		start := time.Now()
		if envs <= 1 {
			stats, err := agent.Train(dp, agent.TrainConfig{
				Episodes:   scale.TrainEpisodes,
				EpisodeLen: setup.Trace.Period,
				Server:     setup.trainServerConfig(),
				Trace:      setup.Trace,
			})
			if err != nil {
				return err
			}
			if len(stats) > 0 {
				finalReturn = stats[len(stats)-1].Return
			}
		} else {
			vt, err := agent.NewVectorTrainer(dp, agent.TrainVectorConfig{
				Envs:       envs,
				Workers:    workers,
				Episodes:   scale.TrainEpisodes,
				EpisodeLen: setup.Trace.Period,
				Server:     setup.trainServerConfig(),
				Trace:      setup.Trace,
			})
			if err != nil {
				return err
			}
			stats, err := vt.Train(ctx)
			if err != nil {
				return err
			}
			if len(stats) > 0 {
				finalReturn = stats[len(stats)-1].Return
			}
		}
		wall := time.Since(start).Seconds()
		res, err := setup.EvaluateOn(evalEng, dp)
		if err != nil {
			return err
		}
		row := VecTrainRow{
			Name:        name,
			Envs:        envs,
			WallSeconds: wall,
			Transitions: dp.Experience(),
			FinalReturn: finalReturn,
			Eval:        res,
		}
		if wall > 0 {
			row.TransPerSec = float64(row.Transitions) / wall
		}
		out.Rows = append(out.Rows, row)
		return nil
	}

	if err := run("single", 1); err != nil {
		return nil, fmt.Errorf("exp: vectrain single: %w", err)
	}
	for _, envs := range VecTrainEnvs {
		if err := run(fmt.Sprintf("vec-E%d", envs), envs); err != nil {
			return nil, fmt.Errorf("exp: vectrain E=%d: %w", envs, err)
		}
	}
	base := out.Rows[0].TransPerSec
	for i := range out.Rows {
		if base > 0 {
			out.Rows[i].Speedup = out.Rows[i].TransPerSec / base
		}
	}
	return out, nil
}

// Table renders the throughput/quality comparison.
func (r *VecTrainResult) Table() *Table {
	t := &Table{
		Title: "Vectorized training — experience throughput vs policy quality (" + r.App + ")",
		Columns: []string{"config", "envs", "wall s", "transitions", "trans/s",
			"speedup", "return", "power W", "p99 ms", "timeout %"},
	}
	for _, row := range r.Rows {
		t.AddRow(row.Name,
			fmt.Sprintf("%d", row.Envs),
			f2(row.WallSeconds),
			fmt.Sprintf("%d", row.Transitions),
			f2(row.TransPerSec),
			f2(row.Speedup),
			f2(row.FinalReturn),
			f2(row.Eval.AvgPowerW),
			f3(row.Eval.Latency.P99*1000),
			f3(row.Eval.TimeoutRate*100),
		)
	}
	return t
}
