package results

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteSnapshotFormat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_x.json")
	snap := Snapshot{
		Command: "go test -bench X",
		CPU:     "test-cpu",
		Benchmarks: []Bench{
			{
				Name:        "VectorTrainer/E8",
				NsPerOp:     1234.5,
				Extra:       map[string]float64{"transitions_per_sec": 100, "envs": 8},
				BytesPerOp:  64,
				AllocsPerOp: 2,
			},
		},
		Derived: map[string]float64{"speedup_e8_vs_single": 3.5},
	}
	if err := Write(path, snap); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	text := string(data)
	if !strings.HasSuffix(text, "\n") {
		t.Error("snapshot missing trailing newline")
	}
	// Extras must land between ns_per_op and bytes_per_op, sorted.
	iNs := strings.Index(text, `"ns_per_op"`)
	iEnvs := strings.Index(text, `"envs"`)
	iTps := strings.Index(text, `"transitions_per_sec"`)
	iBytes := strings.Index(text, `"bytes_per_op"`)
	if !(iNs < iEnvs && iEnvs < iTps && iTps < iBytes) {
		t.Errorf("field order wrong: ns=%d envs=%d tps=%d bytes=%d", iNs, iEnvs, iTps, iBytes)
	}

	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Command != snap.Command || back.CPU != snap.CPU {
		t.Errorf("round-trip header mismatch: %+v", back)
	}
	if back.Derived["speedup_e8_vs_single"] != 3.5 {
		t.Errorf("derived lost: %+v", back.Derived)
	}

	// Deterministic output: same snapshot, same bytes.
	path2 := filepath.Join(t.TempDir(), "BENCH_y.json")
	if err := Write(path2, snap); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(path2)
	if err != nil {
		t.Fatal(err)
	}
	if string(data2) != text {
		t.Error("Write is not deterministic")
	}
}

func TestCPUModelNonEmpty(t *testing.T) {
	if CPUModel() == "" {
		t.Error("CPUModel returned empty string")
	}
}
