// Package results writes the benchmark snapshots kept under results/
// (BENCH_nn.json, BENCH_sim.json, BENCH_vec.json): small JSON documents
// recording a benchmark command, the CPU it ran on, per-benchmark metrics,
// and derived ratios. Before this package the snapshots were maintained by
// hand; benchmarks now regenerate them with Write behind an opt-in flag so
// the checked-in numbers always match a command that actually ran.
package results

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
)

// Bench is one benchmark's metrics row.
type Bench struct {
	// Name is the benchmark name, without the Benchmark prefix.
	Name string
	// NsPerOp is wall nanoseconds per benchmark operation.
	NsPerOp float64
	// Extra holds named metrics beyond the standard trio (throughputs,
	// counts); keys marshal in sorted order between ns_per_op and
	// bytes_per_op.
	Extra map[string]float64
	// BytesPerOp and AllocsPerOp are the allocation metrics.
	BytesPerOp  uint64
	AllocsPerOp uint64
}

// MarshalJSON keeps the snapshot field order of the hand-written
// predecessors: name, ns_per_op, extras (sorted), bytes_per_op,
// allocs_per_op.
func (b Bench) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	name, err := json.Marshal(b.Name)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&buf, `{"name":%s,"ns_per_op":%s`, name, jsonNum(b.NsPerOp))
	keys := make([]string, 0, len(b.Extra))
	for k := range b.Extra {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		kb, err := json.Marshal(k)
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&buf, `,%s:%s`, kb, jsonNum(b.Extra[k]))
	}
	fmt.Fprintf(&buf, `,"bytes_per_op":%d,"allocs_per_op":%d}`, b.BytesPerOp, b.AllocsPerOp)
	return buf.Bytes(), nil
}

func jsonNum(v float64) string {
	out, err := json.Marshal(v)
	if err != nil {
		// NaN/Inf have no JSON encoding; snapshots record them as null.
		return "null"
	}
	return string(out)
}

// Snapshot is one results/BENCH_*.json document.
type Snapshot struct {
	// Command reproduces the run.
	Command string `json:"command"`
	// CPU identifies the machine (CPUModel()).
	CPU string `json:"cpu"`
	// Note summarizes what the snapshot demonstrates.
	Note string `json:"note,omitempty"`
	// Benchmarks are the measured rows.
	Benchmarks []Bench `json:"benchmarks"`
	// Derived holds ratios computed from the rows (speedups vs a baseline);
	// map keys marshal sorted.
	Derived map[string]float64 `json:"derived,omitempty"`
}

// Write marshals the snapshot with two-space indentation and a trailing
// newline — the format of the checked-in snapshots — and atomically
// replaces path.
func Write(path string, s Snapshot) error {
	out, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return fmt.Errorf("results: marshal %s: %w", path, err)
	}
	out = append(out, '\n')
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, out, 0o644); err != nil {
		return fmt.Errorf("results: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("results: %w", err)
	}
	return nil
}

// CPUModel reports the processor model (from /proc/cpuinfo on Linux),
// falling back to the GOARCH name.
func CPUModel() string {
	if data, err := os.ReadFile("/proc/cpuinfo"); err == nil {
		for _, line := range strings.Split(string(data), "\n") {
			if name, ok := strings.CutPrefix(line, "model name"); ok {
				if _, v, ok := strings.Cut(name, ":"); ok {
					return strings.TrimSpace(v)
				}
			}
		}
	}
	return runtime.GOARCH
}
