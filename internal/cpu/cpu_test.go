package cpu

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/deeppower/deeppower/internal/sim"
)

func TestDefaultLadderValid(t *testing.T) {
	l := DefaultLadder()
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	levels := l.Levels()
	if len(levels) != 15 { // 0.8..2.1 (14 points) + turbo
		t.Fatalf("levels = %v (%d), want 15", levels, len(levels))
	}
	if levels[0] != 0.8 || levels[len(levels)-2] != 2.1 || levels[len(levels)-1] != 2.8 {
		t.Errorf("levels = %v", levels)
	}
	if l.NumLevels() != len(levels) {
		t.Error("NumLevels mismatch")
	}
}

func TestLadderValidate(t *testing.T) {
	bad := []Ladder{
		{Min: 0, Max: 2, Step: 0.1, Turbo: 2.5},
		{Min: 2, Max: 1, Step: 0.1, Turbo: 2.5},
		{Min: 1, Max: 2, Step: 0, Turbo: 2.5},
		{Min: 1, Max: 2, Step: 0.1, Turbo: 1.5},
		{Min: 1, Max: 2, Step: 0.1, Turbo: 2.5, TransitionLatency: -1},
	}
	for i, l := range bad {
		if l.Validate() == nil {
			t.Errorf("case %d: expected error for %+v", i, l)
		}
	}
}

func TestQuantize(t *testing.T) {
	l := DefaultLadder()
	cases := []struct{ in, want Freq }{
		{0.5, 0.8},  // clamp low
		{3.0, 2.1},  // clamp high (never turbo)
		{1.04, 1.0}, // round down
		{1.06, 1.1}, // round up
		{2.1, 2.1},
	}
	for _, c := range cases {
		if got := l.Quantize(c.in); got != c.want {
			t.Errorf("Quantize(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestQuantizeOnGrid(t *testing.T) {
	l := DefaultLadder()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		q := l.Quantize(Freq(raw))
		if q < l.Min || q > l.Max {
			return false
		}
		steps := (float64(q) - float64(l.Min)) / float64(l.Step)
		return math.Abs(steps-math.Round(steps)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInterpolate(t *testing.T) {
	l := DefaultLadder()
	if got := l.Interpolate(0); got != l.Min {
		t.Errorf("Interpolate(0) = %v", got)
	}
	if got := l.Interpolate(1); got != l.Max {
		t.Errorf("Interpolate(1) = %v", got)
	}
	if got := l.Interpolate(-5); got != l.Min {
		t.Errorf("Interpolate(-5) = %v", got)
	}
	if got := l.Interpolate(7); got != l.Max {
		t.Errorf("Interpolate(7) = %v", got)
	}
	mid := l.Interpolate(0.5)
	if mid <= l.Min || mid >= l.Max {
		t.Errorf("Interpolate(0.5) = %v not strictly inside ladder", mid)
	}
}

func TestInterpolateMonotone(t *testing.T) {
	l := DefaultLadder()
	last := Freq(0)
	for s := 0.0; s <= 1.0; s += 0.01 {
		f := l.Interpolate(s)
		if f < last {
			t.Fatalf("Interpolate not monotone at score %v: %v < %v", s, f, last)
		}
		last = f
	}
}

func TestCoreStartsAtMax(t *testing.T) {
	c := NewCore(3, DefaultLadder())
	if c.ID() != 3 {
		t.Errorf("ID = %d", c.ID())
	}
	if c.FreqAt(0) != 2.1 {
		t.Errorf("initial freq = %v, want 2.1", c.FreqAt(0))
	}
}

func TestSetFreqTransitionLatency(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	c.SetFreq(0, 1.0)
	if got := c.FreqAt(5 * sim.Microsecond); got != 2.1 {
		t.Errorf("freq during transition = %v, want old 2.1", got)
	}
	if got := c.FreqAt(10 * sim.Microsecond); got != 1.0 {
		t.Errorf("freq after transition = %v, want 1.0", got)
	}
	if c.Target() != 1.0 {
		t.Errorf("Target = %v", c.Target())
	}
}

func TestSetFreqNoOp(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	c.SetFreq(0, 2.1) // already at 2.1
	if c.Transitions() != 0 {
		t.Errorf("no-op SetFreq counted a transition")
	}
	c.SetFreq(0, 1.5)
	c.SetFreq(sim.Millisecond, 1.5) // same target again
	if c.Transitions() != 1 {
		t.Errorf("Transitions = %d, want 1", c.Transitions())
	}
}

func TestSetTurbo(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	c.SetTurbo(0)
	if got := c.FreqAt(sim.Millisecond); got != 2.8 {
		t.Errorf("turbo freq = %v, want 2.8", got)
	}
}

func TestZeroLatencyImmediate(t *testing.T) {
	l := DefaultLadder()
	l.TransitionLatency = 0
	c := NewCore(0, l)
	c.SetFreq(100, 1.2)
	if got := c.FreqAt(100); got != 1.2 {
		t.Errorf("zero-latency freq = %v, want 1.2", got)
	}
}

func TestCyclesConstantFreq(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	// 2.1 GHz for 1 second = 2.1 Gcycles.
	got := c.Cycles(0, sim.Second)
	if math.Abs(got-2.1) > 1e-9 {
		t.Errorf("Cycles = %v, want 2.1", got)
	}
}

func TestCyclesAcrossSwitch(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	c.SetFreq(0, 0.8) // effective at 10us
	// Over [0, 20us]: 10us at 2.1 + 10us at 0.8.
	got := c.Cycles(0, 20*sim.Microsecond)
	want := 2.1*10e-6 + 0.8*10e-6
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Cycles = %v, want %v", got, want)
	}
}

func TestCyclesReversedPanics(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	defer func() {
		if recover() == nil {
			t.Error("reversed Cycles interval did not panic")
		}
	}()
	c.Cycles(10, 5)
}

func TestTimeFor(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	// 2.1 Gcycles at 2.1 GHz = 1 s.
	if got := c.TimeFor(0, 2.1); got != sim.Second {
		t.Errorf("TimeFor = %v, want 1s", got)
	}
	if got := c.TimeFor(0, 0); got != 0 {
		t.Errorf("TimeFor(0 cycles) = %v", got)
	}
}

func TestTimeForAcrossSwitch(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	c.SetFreq(0, 0.8) // matures at 10us
	// Head: 2.1GHz * 10us = 21e-6 Gcyc. Ask for twice that.
	want := 10*sim.Microsecond + sim.Seconds(21e-6/0.8)
	got := c.TimeFor(0, 42e-6)
	if d := got - want; d < -1 || d > 1 { // 1ns tolerance
		t.Errorf("TimeFor = %v, want %v", got, want)
	}
	// Work finishing before the switch uses the old frequency only.
	short := c.TimeFor(0, 2.1e-6) // 1us of work at 2.1GHz
	if d := short - sim.Microsecond; d < -1 || d > 1 {
		t.Errorf("TimeFor short = %v, want 1us", short)
	}
}

// TimeFor and Cycles must be inverse operations.
func TestTimeForCyclesRoundTrip(t *testing.T) {
	f := func(rawFreq, rawWork float64, switchEarly bool) bool {
		work := math.Abs(rawWork)
		if math.IsNaN(work) || math.IsInf(work, 0) || work > 1e3 || work < 1e-9 {
			return true
		}
		c := NewCore(0, DefaultLadder())
		if switchEarly {
			c.SetFreq(0, Freq(math.Abs(rawFreq))) // quantized internally
		}
		d := c.TimeFor(0, work)
		got := c.Cycles(0, d)
		return math.Abs(got-work) < 1e-6*(1+work)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreqString(t *testing.T) {
	if s := Freq(2.1).String(); s != "2.1GHz" {
		t.Errorf("String = %q", s)
	}
}

func BenchmarkSetFreq(b *testing.B) {
	c := NewCore(0, DefaultLadder())
	now := sim.Time(0)
	for i := 0; i < b.N; i++ {
		now += sim.Millisecond
		if i%2 == 0 {
			c.SetFreq(now, 1.0)
		} else {
			c.SetFreq(now, 2.0)
		}
	}
}

func BenchmarkCycles(b *testing.B) {
	c := NewCore(0, DefaultLadder())
	for i := 0; i < b.N; i++ {
		c.Cycles(0, sim.Millisecond)
	}
}

func TestSegmentsSplitAtPendingSwitch(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	c.SetFreq(0, 1.0) // matures at 10us
	segs := c.Segments(0, 20*sim.Microsecond)
	if len(segs) != 2 {
		t.Fatalf("segments = %d, want 2", len(segs))
	}
	if segs[0].F != 2.1 || segs[1].F != 1.0 {
		t.Errorf("segment freqs = %v, %v", segs[0].F, segs[1].F)
	}
	if segs[0].To != 10*sim.Microsecond || segs[1].From != 10*sim.Microsecond {
		t.Errorf("split point wrong: %+v", segs)
	}
	// Interval entirely before or after the switch: one segment.
	if got := c.Segments(20*sim.Microsecond, 30*sim.Microsecond); len(got) != 1 || got[0].F != 1.0 {
		t.Errorf("post-switch segments = %+v", got)
	}
}

func TestSegmentsReversedPanics(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	defer func() {
		if recover() == nil {
			t.Error("reversed Segments did not panic")
		}
	}()
	c.Segments(10, 5)
}

func TestPendingSwitch(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	if _, _, ok := c.PendingSwitch(); ok {
		t.Error("fresh core reports pending switch")
	}
	c.SetFreq(100, 1.5)
	at, f, ok := c.PendingSwitch()
	if !ok || f != 1.5 || at != 100+10*sim.Microsecond {
		t.Errorf("PendingSwitch = %v %v %v", at, f, ok)
	}
}
