package cpu

import (
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

func TestCStateBasics(t *testing.T) {
	if C0.WakeLatency() != 0 {
		t.Error("C0 should have zero wake latency")
	}
	if C6.WakeLatency() != 100*sim.Microsecond {
		t.Errorf("C6 wake latency = %v, want 100us (paper §6)", C6.WakeLatency())
	}
	if C1.WakeLatency() >= C6.WakeLatency() {
		t.Error("C1 should wake faster than C6")
	}
	if !(C6.PowerFactor() < C1.PowerFactor() && C1.PowerFactor() < C0.PowerFactor()) {
		t.Error("deeper states must draw less power")
	}
	if C0.PowerFactor() != 1 {
		t.Error("C0 factor must be 1")
	}
	for _, c := range []CState{C0, C1, C6} {
		if c.String() == "" {
			t.Error("empty state name")
		}
	}
}

func TestCoreSleepWake(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	if c.Asleep(0) {
		t.Error("fresh core should be awake")
	}
	c.Sleep(sim.Second, C6)
	if c.CState() != C6 || !c.Asleep(sim.Second) {
		t.Errorf("state = %v after Sleep", c.CState())
	}
	at := c.WakeUp(2 * sim.Second)
	if at != 2*sim.Second+100*sim.Microsecond {
		t.Errorf("wake completes at %v", at)
	}
	if c.CState() != C0 {
		t.Errorf("state after WakeUp = %v", c.CState())
	}
	// Still "asleep" (waking) until the latency elapses.
	if !c.Asleep(2*sim.Second + 50*sim.Microsecond) {
		t.Error("core should still be waking")
	}
	if c.Asleep(at) {
		t.Error("core should be awake at the wake deadline")
	}
}

func TestWakeAwakeCoreIsFree(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	if got := c.WakeUp(5 * sim.Second); got != 5*sim.Second {
		t.Errorf("waking an awake core returned %v", got)
	}
	// Waking mid-wake returns the original deadline.
	c.Sleep(6*sim.Second, C6)
	first := c.WakeUp(7 * sim.Second)
	second := c.WakeUp(7*sim.Second + 10*sim.Microsecond)
	if second != first {
		t.Errorf("double wake moved the deadline: %v then %v", first, second)
	}
}

func TestSleepToC0Wakes(t *testing.T) {
	c := NewCore(0, DefaultLadder())
	c.Sleep(0, C1)
	c.Sleep(sim.Second, C0)
	if c.CState() != C0 {
		t.Errorf("Sleep(C0) left state %v", c.CState())
	}
}
