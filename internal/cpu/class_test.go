package cpu

import (
	"strings"
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

// TestClassFactorsZeroMeansOne pins the zero-value contract: an unscaled
// class behaves exactly like a reference core.
func TestClassFactorsZeroMeansOne(t *testing.T) {
	var c Class
	if c.SpeedFactor() != 1 || c.DynFactor() != 1 || c.LeakFactor() != 1 {
		t.Fatalf("zero class factors = %v/%v/%v, want 1/1/1",
			c.SpeedFactor(), c.DynFactor(), c.LeakFactor())
	}
	c = Class{Speed: 0.7, DynScale: 0.35, LeakScale: 0.6}
	if c.SpeedFactor() != 0.7 || c.DynFactor() != 0.35 || c.LeakFactor() != 0.6 {
		t.Fatalf("explicit class factors = %v/%v/%v",
			c.SpeedFactor(), c.DynFactor(), c.LeakFactor())
	}
}

// TestTopologyValidate table-drives the topology validator.
func TestTopologyValidate(t *testing.T) {
	cases := []struct {
		name    string
		topo    Topology
		wantErr string
	}{
		{"no classes", Topology{}, "no classes"},
		{"zero count", Topology{Classes: []Class{{Name: "f", Ladder: DefaultLadder()}}}, "non-positive count"},
		{"negative count", Topology{Classes: []Class{{Name: "f", Count: -1, Ladder: DefaultLadder()}}}, "non-positive count"},
		{"bad ladder", Topology{Classes: []Class{{Name: "f", Count: 1}}}, "ladder"},
		{"negative scale", Topology{Classes: []Class{{Name: "f", Count: 1, Ladder: DefaultLadder(), Speed: -1}}}, "negative scale"},
		{"default hetero", DefaultHetero(2, 2), ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := tc.topo.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestTopologyClassOf checks the contiguous core→class mapping and its
// out-of-range panic.
func TestTopologyClassOf(t *testing.T) {
	topo := DefaultHetero(2, 3)
	if topo.TotalCores() != 5 {
		t.Fatalf("total cores = %d", topo.TotalCores())
	}
	want := []int{0, 0, 1, 1, 1}
	for core, cls := range want {
		if got := topo.ClassOf(core); got != cls {
			t.Errorf("ClassOf(%d) = %d, want %d", core, got, cls)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("ClassOf past the last core did not panic")
		}
	}()
	topo.ClassOf(5)
}

// TestDefaultHeteroShape pins the stock 2-class part: fast cores on the
// default ladder, efficiency cores slower, cooler, and on the low ladder.
func TestDefaultHeteroShape(t *testing.T) {
	topo := DefaultHetero(4, 2)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	fast, eff := topo.Classes[0], topo.Classes[1]
	if fast.Name != "fast" || fast.Count != 4 || fast.Ladder != DefaultLadder() {
		t.Fatalf("fast class = %+v", fast)
	}
	if eff.Name != "efficient" || eff.Count != 2 || eff.Ladder != EfficientLadder() {
		t.Fatalf("efficient class = %+v", eff)
	}
	if eff.SpeedFactor() >= 1 || eff.DynFactor() >= 1 || eff.LeakFactor() >= 1 {
		t.Fatalf("efficiency class not strictly cheaper/slower: %+v", eff)
	}
	if el := EfficientLadder(); el.Validate() != nil || el.Max >= DefaultLadder().Max {
		t.Fatalf("efficient ladder %+v not below the default envelope", el)
	}
}

// TestPlacementLevelsProperties checks the placement ladder invariants over
// randomized topologies: every level is in range with no negative entries and
// at least one enabled thread, adjacent levels differ by exactly one thread,
// and the sweep spans efficiency-only to performance-only.
func TestPlacementLevelsProperties(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		rng := sim.NewRNG(seed).Stream("placement-levels")
		k := 1 + rng.Intn(3)
		topo := Topology{}
		for i := 0; i < k; i++ {
			lad := DefaultLadder()
			if i > 0 {
				lad = EfficientLadder()
			}
			topo.Classes = append(topo.Classes, Class{
				Name:   string(rune('a' + i)),
				Count:  1 + rng.Intn(4),
				Ladder: lad,
			})
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		levels := topo.PlacementLevels()
		if len(levels) == 0 {
			t.Fatalf("seed %d: no levels", seed)
		}
		others := 0
		for i := 1; i < k; i++ {
			others += topo.Classes[i].Count
		}
		wantLen := topo.Classes[0].Count + others
		if k > 1 {
			wantLen++ // the initial class-0-empty level
		}
		if len(levels) != wantLen {
			t.Fatalf("seed %d: %d levels, want %d", seed, len(levels), wantLen)
		}
		prevTotal := 0
		for li, lv := range levels {
			if len(lv) != k {
				t.Fatalf("seed %d level %d: arity %d, want %d", seed, li, len(lv), k)
			}
			total := 0
			for c, n := range lv {
				if n < 0 || n > topo.Classes[c].Count {
					t.Fatalf("seed %d level %d: class %d count %d outside [0,%d]",
						seed, li, c, n, topo.Classes[c].Count)
				}
				total += n
			}
			if total == 0 {
				t.Fatalf("seed %d level %d: no enabled threads", seed, li)
			}
			if li > 0 {
				diff := 0
				for c := range lv {
					d := lv[c] - levels[li-1][c]
					if d < 0 {
						d = -d
					}
					diff += d
				}
				if diff != 1 {
					t.Fatalf("seed %d: levels %d→%d change %d threads, want 1", seed, li-1, li, diff)
				}
			}
			prevTotal = total
		}
		_ = prevTotal
		last := levels[len(levels)-1]
		if last[0] != topo.Classes[0].Count {
			t.Fatalf("seed %d: top level %v does not fully enable the performance class", seed, last)
		}
		for c := 1; c < k; c++ {
			if last[c] != 0 {
				t.Fatalf("seed %d: top level %v keeps efficiency class %d enabled", seed, last, c)
			}
		}
	}
}
