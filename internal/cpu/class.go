package cpu

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/sim"
)

// Class is one heterogeneous core class: a group of identical cores sharing
// a frequency ladder, a per-cycle speed factor, and power-curve scaling.
// It models big.LITTLE-style fast/efficient core pairings: efficient cores
// run a lower ladder, retire work slower per GHz, and burn a fraction of the
// fast cores' dynamic and leakage power.
type Class struct {
	// Name labels the class in reports ("fast", "efficient").
	Name string
	// Count is how many cores the class contributes.
	Count int
	// Ladder is the class's DVFS ladder.
	Ladder Ladder
	// Speed is the instruction-throughput multiplier relative to the
	// profile's reference core (0 means 1: same work per cycle).
	Speed float64
	// DynScale multiplies the power model's dynamic coefficient for this
	// class (0 means 1). Narrower, shallower cores burn less per cycle.
	DynScale float64
	// LeakScale multiplies static leakage (0 means 1).
	LeakScale float64
}

// speed/dynScale/leakScale return the effective factors with zero meaning 1,
// so the zero value of an unscaled class behaves like a reference core.

// SpeedFactor returns the effective throughput multiplier.
func (c Class) SpeedFactor() float64 {
	if c.Speed == 0 {
		return 1
	}
	return c.Speed
}

// DynFactor returns the effective dynamic-power multiplier.
func (c Class) DynFactor() float64 {
	if c.DynScale == 0 {
		return 1
	}
	return c.DynScale
}

// LeakFactor returns the effective leakage multiplier.
func (c Class) LeakFactor() float64 {
	if c.LeakScale == 0 {
		return 1
	}
	return c.LeakScale
}

// Topology is a heterogeneous core layout: an ordered list of classes whose
// cores are laid out contiguously (class 0 first). Class order is
// significant — placement ladders treat class 0 as the performance class.
type Topology struct {
	Classes []Class
}

// Validate reports an error for malformed topologies.
func (t *Topology) Validate() error {
	if len(t.Classes) == 0 {
		return fmt.Errorf("cpu: topology has no classes")
	}
	for i, c := range t.Classes {
		if c.Count <= 0 {
			return fmt.Errorf("cpu: class %d (%s) has non-positive count %d", i, c.Name, c.Count)
		}
		if err := c.Ladder.Validate(); err != nil {
			return fmt.Errorf("cpu: class %d (%s): %w", i, c.Name, err)
		}
		if c.Speed < 0 || c.DynScale < 0 || c.LeakScale < 0 {
			return fmt.Errorf("cpu: class %d (%s) has negative scale factors", i, c.Name)
		}
	}
	return nil
}

// TotalCores returns the number of cores across all classes.
func (t *Topology) TotalCores() int {
	n := 0
	for _, c := range t.Classes {
		n += c.Count
	}
	return n
}

// ClassOf maps a core index onto its class index (cores are contiguous by
// class). It panics on out-of-range cores.
func (t *Topology) ClassOf(core int) int {
	rest := core
	for i, c := range t.Classes {
		if rest < c.Count {
			return i
		}
		rest -= c.Count
	}
	panic(fmt.Sprintf("cpu: core %d outside topology of %d cores", core, t.TotalCores()))
}

// PlacementLevels enumerates the topology's placement ladder: a monotone
// performance sweep of per-class enabled-thread vectors, from
// "efficiency classes only" to "performance class only". The sweep first
// enables class 0 cores one at a time (all other classes fully enabled),
// then disables the other classes' cores one at a time from the last class
// backwards. Every level keeps at least one thread enabled; each returned
// vector sums to its level's active thread count with no negative entries.
func (t *Topology) PlacementLevels() [][]int {
	k := len(t.Classes)
	cur := make([]int, k)
	for i := 1; i < k; i++ {
		cur[i] = t.Classes[i].Count
	}
	var levels [][]int
	push := func() {
		total := 0
		for _, n := range cur {
			total += n
		}
		if total == 0 {
			return // a single-class topology's "no class-0 cores" start
		}
		levels = append(levels, append([]int(nil), cur...))
	}
	push()
	for cur[0] < t.Classes[0].Count {
		cur[0]++
		push()
	}
	for c := k - 1; c >= 1; c-- {
		for cur[c] > 0 {
			cur[c]--
			push()
		}
	}
	return levels
}

// EfficientLadder returns the ladder of the default efficiency class:
// 0.6–1.6 GHz in 0.1 GHz steps with no turbo headroom, matching the lower
// voltage/frequency envelope of little cores.
func EfficientLadder() Ladder {
	return Ladder{
		Min:               0.6,
		Max:               1.6,
		Step:              0.1,
		Turbo:             1.6,
		TransitionLatency: 10 * sim.Microsecond,
	}
}

// DefaultHetero returns a two-class topology: fast cores on the default
// Xeon-like ladder, and efficiency cores that run a lower ladder at 70% of
// the throughput per GHz for roughly a third of the dynamic power.
func DefaultHetero(fast, efficient int) Topology {
	return Topology{Classes: []Class{
		{Name: "fast", Count: fast, Ladder: DefaultLadder()},
		{
			Name:      "efficient",
			Count:     efficient,
			Ladder:    EfficientLadder(),
			Speed:     0.7,
			DynScale:  0.35,
			LeakScale: 0.6,
		},
	}}
}
