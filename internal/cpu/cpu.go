// Package cpu models the processor the paper's testbed uses: a multi-core
// CPU whose per-core frequency can be scaled at runtime (DVFS) with a
// microsecond-scale transition latency, over a discrete frequency ladder
// from FreqMin to FreqMax plus a turbo state above the ladder.
//
// The paper's machine is an Intel Xeon Gold 5218R (0.8–2.1 GHz under the
// Linux "userspace" governor, plus turbo). The defaults here mirror that.
package cpu

import (
	"fmt"
	"math"

	"github.com/deeppower/deeppower/internal/sim"
)

// Freq is a core frequency in GHz.
type Freq float64

// GHz returns the frequency as a plain float64 in GHz.
func (f Freq) GHz() float64 { return float64(f) }

// String formats the frequency, e.g. "2.1GHz".
func (f Freq) String() string { return fmt.Sprintf("%.2gGHz", float64(f)) }

// Ladder describes the discrete DVFS operating points of a processor.
type Ladder struct {
	Min   Freq // lowest P-state, e.g. 0.8 GHz
	Max   Freq // highest non-turbo P-state, e.g. 2.1 GHz
	Step  Freq // grid spacing, e.g. 0.1 GHz
	Turbo Freq // turbo frequency, above Max

	// TransitionLatency is how long a requested frequency change takes to
	// become effective ("a delay in a few microseconds", §1).
	TransitionLatency sim.Time
}

// DefaultLadder returns the Xeon Gold 5218R-like ladder used throughout the
// evaluation: 0.8–2.1 GHz in 0.1 GHz steps, 2.8 GHz turbo, 10 µs switches.
func DefaultLadder() Ladder {
	return Ladder{
		Min:               0.8,
		Max:               2.1,
		Step:              0.1,
		Turbo:             2.8,
		TransitionLatency: 10 * sim.Microsecond,
	}
}

// Validate reports an error if the ladder is malformed.
func (l Ladder) Validate() error {
	switch {
	case l.Min <= 0:
		return fmt.Errorf("cpu: ladder Min %v must be positive", l.Min)
	case l.Max < l.Min:
		return fmt.Errorf("cpu: ladder Max %v below Min %v", l.Max, l.Min)
	case l.Step <= 0:
		return fmt.Errorf("cpu: ladder Step %v must be positive", l.Step)
	case l.Turbo < l.Max:
		return fmt.Errorf("cpu: ladder Turbo %v below Max %v", l.Turbo, l.Max)
	case l.TransitionLatency < 0:
		return fmt.Errorf("cpu: negative transition latency")
	}
	return nil
}

// Levels enumerates the ladder's non-turbo operating points ascending,
// followed by the turbo frequency as the final element.
func (l Ladder) Levels() []Freq {
	var out []Freq
	for f := l.Min; f <= l.Max+l.Step/1000; f += l.Step {
		out = append(out, l.quantizeExact(f))
	}
	if l.Turbo > l.Max {
		out = append(out, l.Turbo)
	}
	return out
}

// NumLevels reports how many operating points Levels returns.
func (l Ladder) NumLevels() int { return len(l.Levels()) }

// Quantize clamps f into [Min, Max] and snaps it to the nearest grid point.
// It never returns Turbo; use the Turbo field explicitly to engage turbo.
func (l Ladder) Quantize(f Freq) Freq {
	if math.IsNaN(float64(f)) || f <= l.Min {
		return l.Min
	}
	if f >= l.Max {
		return l.Max
	}
	steps := math.Round(float64(f-l.Min) / float64(l.Step))
	return l.quantizeExact(l.Min + Freq(steps)*l.Step)
}

// quantizeExact rounds away float drift so 0.8+5*0.1 prints as 1.3.
func (l Ladder) quantizeExact(f Freq) Freq {
	return Freq(math.Round(float64(f)*1e6) / 1e6)
}

// Interpolate maps a score in [0,1] onto the ladder linearly:
// 0 → Min, 1 → Max, then quantizes. Scores outside [0,1] are clamped.
// This is the interpolation step of the paper's thread controller
// (Algorithm 1, line 9).
func (l Ladder) Interpolate(score float64) Freq {
	if math.IsNaN(score) || score < 0 {
		score = 0
	}
	if score > 1 {
		score = 1
	}
	return l.Quantize(l.Min + Freq(score)*(l.Max-l.Min))
}

// Core is one physical core with DVFS state. A frequency request takes
// TransitionLatency to become effective; Cycles integrates the retired
// cycle count across the switch boundary exactly.
type Core struct {
	id     int
	ladder Ladder

	cur       Freq     // effective frequency
	pending   Freq     // requested frequency not yet effective
	pendingAt sim.Time // when pending becomes effective (0 = none)

	transitions int // completed SetFreq requests that changed the target

	// Sleep-state extension (see cstate.go).
	cstate  CState
	awakeAt sim.Time
}

// NewCore returns a core starting at the ladder's maximum frequency, which is
// how the OS hands cores to the baseline (no power management) configuration.
func NewCore(id int, ladder Ladder) *Core {
	return &Core{id: id, ladder: ladder, cur: ladder.Max, pending: ladder.Max}
}

// ID returns the core's index.
func (c *Core) ID() int { return c.id }

// Ladder returns the core's frequency ladder.
func (c *Core) Ladder() Ladder { return c.ladder }

// Transitions reports how many effective frequency changes were requested.
func (c *Core) Transitions() int { return c.transitions }

// Target returns the most recently requested frequency (which may not yet be
// effective).
func (c *Core) Target() Freq {
	if c.pendingAt > 0 {
		return c.pending
	}
	return c.cur
}

// FreqAt returns the effective frequency at time t (t must not precede the
// last interaction with the core).
func (c *Core) FreqAt(t sim.Time) Freq {
	if c.pendingAt > 0 && t >= c.pendingAt {
		return c.pending
	}
	return c.cur
}

// SetFreq requests frequency f (quantized to the ladder unless it equals the
// turbo frequency exactly) at time now. The change becomes effective at
// now + TransitionLatency. Setting the current target again is a no-op.
func (c *Core) SetFreq(now sim.Time, f Freq) {
	if f != c.ladder.Turbo {
		f = c.ladder.Quantize(f)
	}
	c.settle(now)
	if f == c.Target() {
		return
	}
	// A newer request supersedes any in-flight one.
	c.pending = f
	c.pendingAt = now + c.ladder.TransitionLatency
	if c.pendingAt == now { // zero-latency ladders apply immediately
		c.cur = f
		c.pendingAt = 0
	}
	c.transitions++
}

// SetTurbo requests the turbo frequency.
func (c *Core) SetTurbo(now sim.Time) { c.SetFreq(now, c.ladder.Turbo) }

// settle folds a matured pending change into cur.
func (c *Core) settle(now sim.Time) {
	if c.pendingAt > 0 && now >= c.pendingAt {
		c.cur = c.pending
		c.pendingAt = 0
	}
}

// Cycles returns how many billions of cycles (GHz·seconds) the core retires
// between from and to, integrating across a pending frequency switch.
func (c *Core) Cycles(from, to sim.Time) float64 {
	if to < from {
		panic(fmt.Sprintf("cpu: Cycles interval reversed: %v > %v", from, to))
	}
	if c.pendingAt > 0 && c.pendingAt < to {
		split := c.pendingAt
		if split < from {
			split = from
		}
		return float64(c.cur)*(split-from).Seconds() + float64(c.pending)*(to-split).Seconds()
	}
	return float64(c.FreqAt(from)) * (to - from).Seconds()
}

// PendingSwitch reports an in-flight DVFS transition: the time it matures
// and the frequency it switches to. ok is false when no switch is pending.
func (c *Core) PendingSwitch() (at sim.Time, f Freq, ok bool) {
	if c.pendingAt > 0 {
		return c.pendingAt, c.pending, true
	}
	return 0, 0, false
}

// Segment is a span of time during which the core's frequency is constant.
type Segment struct {
	From, To sim.Time
	F        Freq
}

// Segments splits [from, to] into spans of constant frequency (one span, or
// two if a pending DVFS transition matures inside the interval).
func (c *Core) Segments(from, to sim.Time) []Segment {
	var buf [2]Segment
	n := c.SegmentsInto(from, to, &buf)
	out := make([]Segment, n)
	copy(out, buf[:n])
	return out
}

// SegmentsInto is the allocation-free form of Segments: it writes the spans
// into out and returns how many were written (1 or 2). Hot accounting loops
// pass a stack buffer so per-tick power integration allocates nothing.
func (c *Core) SegmentsInto(from, to sim.Time, out *[2]Segment) int {
	if to < from {
		panic(fmt.Sprintf("cpu: Segments interval reversed: %v > %v", from, to))
	}
	if c.pendingAt > from && c.pendingAt < to {
		out[0] = Segment{From: from, To: c.pendingAt, F: c.cur}
		out[1] = Segment{From: c.pendingAt, To: to, F: c.pending}
		return 2
	}
	out[0] = Segment{From: from, To: to, F: c.FreqAt(from)}
	return 1
}

// TimeFor returns how long the core needs, starting at from, to retire
// gcycles billions of cycles, accounting for a pending frequency switch.
// It returns sim.MaxTime if the work can never finish (zero frequency).
func (c *Core) TimeFor(from sim.Time, gcycles float64) sim.Time {
	if gcycles <= 0 {
		return 0
	}
	f0 := c.FreqAt(from)
	if c.pendingAt > from {
		// Work done before the switch matures.
		head := float64(f0) * (c.pendingAt - from).Seconds()
		if head >= gcycles {
			return sim.Seconds(gcycles / float64(f0))
		}
		rest := gcycles - head
		if c.pending <= 0 {
			return sim.MaxTime
		}
		return (c.pendingAt - from) + sim.Seconds(rest/float64(c.pending))
	}
	if f0 <= 0 {
		return sim.MaxTime
	}
	return sim.Seconds(gcycles / float64(f0))
}
