package cpu

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/sim"
)

// CState is a core sleep state. The paper's §6 discusses sleep-state
// methods (DynSleep, µDPM) and leaves integrating them with DeepPower as
// future work; this model implements that extension: an idle core can be
// put into a C-state, paying a wake-up latency (~100 µs for C6, as the
// paper quotes) when the next request arrives.
type CState int

// Supported sleep states.
const (
	// C0 is the active/idle running state (no sleep).
	C0 CState = iota
	// C1 is a light halt: cheap to enter and leave.
	C1
	// C6 is a deep sleep: large power savings, ~100 µs wake-up.
	C6
)

// String names the state.
func (c CState) String() string {
	switch c {
	case C0:
		return "C0"
	case C1:
		return "C1"
	case C6:
		return "C6"
	}
	return fmt.Sprintf("CState(%d)", int(c))
}

// WakeLatency returns how long a core needs to resume execution from the
// state ("about 100us for C6 state", §6).
func (c CState) WakeLatency() sim.Time {
	switch c {
	case C1:
		return 2 * sim.Microsecond
	case C6:
		return 100 * sim.Microsecond
	default:
		return 0
	}
}

// PowerFactor scales the core's idle power in this state: C1 gates most of
// the clock tree; C6 power-gates the core almost entirely.
func (c CState) PowerFactor() float64 {
	switch c {
	case C1:
		return 0.40
	case C6:
		return 0.03
	default:
		return 1.0
	}
}

// CState returns the core's current sleep state.
func (c *Core) CState() CState { return c.cstate }

// AwakeAt returns the time the core can next execute instructions: zero for
// an awake core, otherwise the end of the in-flight wake-up.
func (c *Core) AwakeAt() sim.Time { return c.awakeAt }

// Asleep reports whether the core is in a sleep state (or still waking) at
// time now.
func (c *Core) Asleep(now sim.Time) bool {
	return c.cstate != C0 || now < c.awakeAt
}

// Sleep puts the core into state at time now. Only the simulation layer
// should call this for idle cores; sleeping a busy core is a caller bug and
// panics.
func (c *Core) Sleep(now sim.Time, state CState) {
	if state == C0 {
		c.WakeUp(now)
		return
	}
	c.cstate = state
	c.awakeAt = 0
}

// WakeUp begins the transition back to C0 at time now and returns when the
// core will be able to execute. Waking an awake core returns now (or the
// end of an in-flight wake-up).
func (c *Core) WakeUp(now sim.Time) sim.Time {
	if c.cstate == C0 {
		if now < c.awakeAt {
			return c.awakeAt
		}
		return now
	}
	lat := c.cstate.WakeLatency()
	c.cstate = C0
	c.awakeAt = now + lat
	return c.awakeAt
}
