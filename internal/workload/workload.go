// Package workload generates the request arrival processes the paper drives
// its evaluation with: static Poisson loads (Table 3, Fig. 2) and a dynamic
// diurnal trace modeled on the Alibaba e-commerce search benchmark (Fig. 6),
// downsampled to a short period as described in §5.2.
package workload

import (
	"fmt"
	"math"

	"github.com/deeppower/deeppower/internal/sim"
)

// Trace is a piecewise-constant request-rate function over one period.
// Rates repeat with the trace's period, so a trace can drive arbitrarily
// long simulations (the paper trains on "a long running workload" and tests
// on a short one from the same process).
type Trace struct {
	// Period is the total duration covered by Rates.
	Period sim.Time
	// Rates holds requests/second for each of len(Rates) equal buckets.
	Rates []float64
}

// Validate reports an error for malformed traces.
func (tr *Trace) Validate() error {
	if tr.Period <= 0 {
		return fmt.Errorf("workload: non-positive period %v", tr.Period)
	}
	if len(tr.Rates) == 0 {
		return fmt.Errorf("workload: empty trace")
	}
	for i, r := range tr.Rates {
		if r < 0 || math.IsNaN(r) || math.IsInf(r, 0) {
			return fmt.Errorf("workload: bad rate %v at bucket %d", r, i)
		}
	}
	return nil
}

// BucketWidth returns the duration of one rate bucket.
func (tr *Trace) BucketWidth() sim.Time {
	return tr.Period / sim.Time(len(tr.Rates))
}

// RateAt returns the arrival rate at virtual time t (periodic extension).
func (tr *Trace) RateAt(t sim.Time) float64 {
	if t < 0 {
		t = -t
	}
	phase := t % tr.Period
	idx := int(int64(phase) * int64(len(tr.Rates)) / int64(tr.Period))
	if idx >= len(tr.Rates) {
		idx = len(tr.Rates) - 1
	}
	return tr.Rates[idx]
}

// MaxRate returns the peak rate of the trace.
func (tr *Trace) MaxRate() float64 {
	m := 0.0
	for _, r := range tr.Rates {
		if r > m {
			m = r
		}
	}
	return m
}

// MeanRate returns the time-average rate of the trace.
func (tr *Trace) MeanRate() float64 {
	sum := 0.0
	for _, r := range tr.Rates {
		sum += r
	}
	return sum / float64(len(tr.Rates))
}

// Scale returns a copy of the trace with every rate multiplied by k. The
// paper "multiplies the RPS by a factor to make the tail latency close to
// SLA when running without frequency scaling" (§5.2); use ScaleToPeak for
// that calibration.
func (tr *Trace) Scale(k float64) *Trace {
	out := &Trace{Period: tr.Period, Rates: make([]float64, len(tr.Rates))}
	for i, r := range tr.Rates {
		out.Rates[i] = r * k
	}
	return out
}

// ScaleToPeak returns a copy scaled so the trace's maximum rate equals peak.
func (tr *Trace) ScaleToPeak(peak float64) *Trace {
	m := tr.MaxRate()
	if m == 0 {
		return tr.Scale(0)
	}
	return tr.Scale(peak / m)
}

// Constant returns a single-bucket trace with a fixed rate, for static-load
// experiments (Table 3, Fig. 2).
func Constant(rate float64, period sim.Time) *Trace {
	return &Trace{Period: period, Rates: []float64{rate}}
}

// DiurnalConfig parameterizes the synthetic e-commerce trace generator.
type DiurnalConfig struct {
	// Period is the length of one "day" after downsampling (360 s default,
	// per §5.2).
	Period sim.Time
	// Buckets is the time resolution of the trace.
	Buckets int
	// BaseRPS is the trough request rate.
	BaseRPS float64
	// PeakRPS is the crest request rate (>= BaseRPS).
	PeakRPS float64
	// BurstProb is the per-bucket probability of a flash-crowd burst.
	BurstProb float64
	// BurstMul multiplies the rate during a burst.
	BurstMul float64
	// NoiseFrac is the relative std-dev of multiplicative bucket noise.
	NoiseFrac float64
	// Seed drives the generator.
	Seed int64
}

// DefaultDiurnal returns the configuration used across the evaluation:
// a 360 s period with a pronounced day/night swing (the Fig. 6 trace swings
// roughly 3–4× between trough and crest) and occasional bursts.
func DefaultDiurnal() DiurnalConfig {
	return DiurnalConfig{
		Period:    360 * sim.Second,
		Buckets:   360,
		BaseRPS:   100,
		PeakRPS:   400,
		BurstProb: 0.02,
		BurstMul:  1.25,
		NoiseFrac: 0.05,
		Seed:      1,
	}
}

// Diurnal synthesizes a trace with the diurnal shape of the e-commerce
// search benchmark: a dominant daily harmonic, a weaker half-day harmonic
// (the real trace's lunchtime/evening double peak), multiplicative noise,
// and occasional flash-crowd bursts.
func Diurnal(cfg DiurnalConfig) *Trace {
	if cfg.Buckets <= 0 || cfg.Period <= 0 {
		panic("workload: Diurnal needs positive Buckets and Period")
	}
	if cfg.PeakRPS < cfg.BaseRPS {
		panic("workload: PeakRPS below BaseRPS")
	}
	r := sim.NewRNG(cfg.Seed).Stream("diurnal")
	rates := make([]float64, cfg.Buckets)
	amp := (cfg.PeakRPS - cfg.BaseRPS) / 2
	mid := (cfg.PeakRPS + cfg.BaseRPS) / 2
	for i := range rates {
		phase := 2 * math.Pi * float64(i) / float64(cfg.Buckets)
		// Main daily swing with trough at phase 0, plus a second harmonic
		// producing the characteristic double hump.
		v := mid - amp*math.Cos(phase) + 0.25*amp*math.Sin(2*phase+0.7)
		if cfg.NoiseFrac > 0 {
			v *= 1 + r.Normal(0, cfg.NoiseFrac)
		}
		if cfg.BurstProb > 0 && r.Bernoulli(cfg.BurstProb) {
			v *= cfg.BurstMul
		}
		if v < 0 {
			v = 0
		}
		rates[i] = v
	}
	return &Trace{Period: cfg.Period, Rates: rates}
}

// Step returns a two-level square-wave trace alternating between lo and hi
// every half period — the abrupt load shift that stresses workload-adaptive
// policies harder than smooth diurnal curves.
func Step(lo, hi float64, period sim.Time, buckets int) *Trace {
	if buckets < 2 {
		buckets = 2
	}
	rates := make([]float64, buckets)
	for i := range rates {
		if i < buckets/2 {
			rates[i] = lo
		} else {
			rates[i] = hi
		}
	}
	return &Trace{Period: period, Rates: rates}
}

// Spike returns a mostly-flat trace at base with a short burst to peak —
// the flash-crowd scenario.
func Spike(base, peak float64, period sim.Time, buckets int, burstFrac float64) *Trace {
	if buckets < 4 {
		buckets = 4
	}
	if burstFrac <= 0 || burstFrac >= 1 {
		burstFrac = 0.1
	}
	rates := make([]float64, buckets)
	burstStart := buckets / 2
	burstLen := int(float64(buckets) * burstFrac)
	if burstLen < 1 {
		burstLen = 1
	}
	for i := range rates {
		if i >= burstStart && i < burstStart+burstLen {
			rates[i] = peak
		} else {
			rates[i] = base
		}
	}
	return &Trace{Period: period, Rates: rates}
}

// Arrivals generates request arrival times from a trace as a
// non-homogeneous Poisson process (thinning algorithm). It is an iterator:
// Next returns successive arrival instants.
type Arrivals struct {
	trace *Trace
	rng   *sim.RNG
	now   sim.Time
	peak  float64
}

// NewArrivals returns a generator starting at time 0.
func NewArrivals(trace *Trace, rng *sim.RNG) *Arrivals {
	if err := trace.Validate(); err != nil {
		panic(err)
	}
	return &Arrivals{trace: trace, rng: rng, peak: trace.MaxRate()}
}

// Next returns the next arrival time, strictly after the previous one.
// If the trace rate is zero everywhere it returns sim.MaxTime.
func (a *Arrivals) Next() sim.Time {
	if a.peak <= 0 {
		return sim.MaxTime
	}
	for {
		a.now += sim.Seconds(a.rng.Exp(a.peak))
		if a.rng.Float64()*a.peak <= a.trace.RateAt(a.now) {
			return a.now
		}
	}
}
