package workload

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"github.com/deeppower/deeppower/internal/sim"
)

func TestConstantTrace(t *testing.T) {
	tr := Constant(150, 10*sim.Second)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, at := range []sim.Time{0, sim.Second, 9 * sim.Second, 15 * sim.Second} {
		if got := tr.RateAt(at); got != 150 {
			t.Errorf("RateAt(%v) = %v, want 150", at, got)
		}
	}
	if tr.MeanRate() != 150 || tr.MaxRate() != 150 {
		t.Error("mean/max of constant trace wrong")
	}
}

func TestTraceValidate(t *testing.T) {
	bad := []*Trace{
		{Period: 0, Rates: []float64{1}},
		{Period: sim.Second, Rates: nil},
		{Period: sim.Second, Rates: []float64{-1}},
		{Period: sim.Second, Rates: []float64{math.NaN()}},
	}
	for i, tr := range bad {
		if tr.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestRateAtPeriodic(t *testing.T) {
	tr := &Trace{Period: 4 * sim.Second, Rates: []float64{10, 20, 30, 40}}
	if got := tr.RateAt(sim.Seconds(1.5)); got != 20 {
		t.Errorf("RateAt(1.5s) = %v, want 20", got)
	}
	// Periodic extension.
	if got := tr.RateAt(sim.Seconds(5.5)); got != 20 {
		t.Errorf("RateAt(5.5s) = %v, want 20", got)
	}
	if tr.BucketWidth() != sim.Second {
		t.Errorf("BucketWidth = %v", tr.BucketWidth())
	}
}

func TestScale(t *testing.T) {
	tr := &Trace{Period: 2 * sim.Second, Rates: []float64{10, 30}}
	s := tr.Scale(2)
	if s.Rates[0] != 20 || s.Rates[1] != 60 {
		t.Errorf("Scale(2) = %v", s.Rates)
	}
	// Original untouched.
	if tr.Rates[0] != 10 {
		t.Error("Scale mutated original")
	}
	p := tr.ScaleToPeak(90)
	if p.MaxRate() != 90 {
		t.Errorf("ScaleToPeak max = %v", p.MaxRate())
	}
	zero := Constant(0, sim.Second).ScaleToPeak(50)
	if zero.MaxRate() != 0 {
		t.Error("ScaleToPeak of zero trace should stay zero")
	}
}

func TestDiurnalShape(t *testing.T) {
	cfg := DefaultDiurnal()
	tr := Diurnal(cfg)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.Period != 360*sim.Second || len(tr.Rates) != 360 {
		t.Fatalf("unexpected geometry: period %v, %d buckets", tr.Period, len(tr.Rates))
	}
	// Pronounced swing: crest well above trough.
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, r := range tr.Rates {
		lo = math.Min(lo, r)
		hi = math.Max(hi, r)
	}
	if hi/lo < 2 {
		t.Errorf("diurnal swing too small: %v..%v", lo, hi)
	}
	// The trough should be near phase 0 and crest near mid-period.
	if tr.RateAt(0) > tr.RateAt(tr.Period/2) {
		t.Error("trace should rise from trough at t=0 to crest at mid-period")
	}
}

func TestDiurnalDeterministic(t *testing.T) {
	a := Diurnal(DefaultDiurnal())
	b := Diurnal(DefaultDiurnal())
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatal("same config produced different traces")
		}
	}
	cfg := DefaultDiurnal()
	cfg.Seed = 99
	c := Diurnal(cfg)
	same := true
	for i := range a.Rates {
		if a.Rates[i] != c.Rates[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestDiurnalPanicsOnBadConfig(t *testing.T) {
	cfg := DefaultDiurnal()
	cfg.Buckets = 0
	defer func() {
		if recover() == nil {
			t.Error("bad config did not panic")
		}
	}()
	Diurnal(cfg)
}

func TestArrivalsMatchRate(t *testing.T) {
	tr := Constant(1000, sim.Second)
	gen := NewArrivals(tr, sim.NewRNG(42))
	count := 0
	for {
		at := gen.Next()
		if at > 10*sim.Second {
			break
		}
		count++
	}
	// 10 s at 1000 rps → ~10000 arrivals; Poisson std ≈ 100.
	if count < 9500 || count > 10500 {
		t.Errorf("arrivals in 10s = %d, want ~10000", count)
	}
}

func TestArrivalsStrictlyIncreasing(t *testing.T) {
	f := func(seed int64) bool {
		tr := Diurnal(DefaultDiurnal())
		gen := NewArrivals(tr, sim.NewRNG(seed))
		last := sim.Time(-1)
		for i := 0; i < 500; i++ {
			at := gen.Next()
			if at <= last {
				return false
			}
			last = at
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestArrivalsTrackTraceShape(t *testing.T) {
	// More arrivals must land in high-rate buckets than low-rate buckets.
	tr := &Trace{Period: 2 * sim.Second, Rates: []float64{50, 500}}
	gen := NewArrivals(tr, sim.NewRNG(7))
	loCount, hiCount := 0, 0
	for {
		at := gen.Next()
		if at > 100*sim.Second {
			break
		}
		if (at % tr.Period) < sim.Second {
			loCount++
		} else {
			hiCount++
		}
	}
	ratio := float64(hiCount) / float64(loCount+1)
	if ratio < 5 || ratio > 20 {
		t.Errorf("arrival ratio hi/lo = %v, want ~10", ratio)
	}
}

func TestArrivalsZeroRate(t *testing.T) {
	gen := NewArrivals(Constant(0, sim.Second), sim.NewRNG(1))
	if got := gen.Next(); got != sim.MaxTime {
		t.Errorf("zero-rate Next = %v, want MaxTime", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := Diurnal(DefaultDiurnal())
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Period != tr.Period {
		t.Errorf("period %v != %v", got.Period, tr.Period)
	}
	if len(got.Rates) != len(tr.Rates) {
		t.Fatalf("rate count %d != %d", len(got.Rates), len(tr.Rates))
	}
	for i := range tr.Rates {
		if math.Abs(got.Rates[i]-tr.Rates[i]) > 0.001 {
			t.Fatalf("bucket %d: %v != %v", i, got.Rates[i], tr.Rates[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",                         // empty
		"seconds,rps\n",            // header only
		"seconds,rps\nx,1\n",       // bad time
		"seconds,rps\n0,x\n",       // bad rate
		"seconds,rps\n1,1\n0,1\n",  // non-increasing
		"seconds,rps\n0,1,extra\n", // wrong column count (csv reader catches)
		"seconds,rps\n0,-5\n",      // negative rate
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: expected error for %q", i, c)
		}
	}
}

func BenchmarkArrivalsNext(b *testing.B) {
	gen := NewArrivals(Diurnal(DefaultDiurnal()), sim.NewRNG(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Next()
	}
}

func TestStepTrace(t *testing.T) {
	tr := Step(100, 400, 10*sim.Second, 10)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.RateAt(0) != 100 || tr.RateAt(9*sim.Second) != 400 {
		t.Errorf("step levels wrong: %v / %v", tr.RateAt(0), tr.RateAt(9*sim.Second))
	}
	if tr.MaxRate() != 400 {
		t.Errorf("max = %v", tr.MaxRate())
	}
	// Degenerate bucket count gets fixed up.
	if got := Step(1, 2, sim.Second, 0); len(got.Rates) < 2 {
		t.Error("bucket floor not applied")
	}
}

func TestSpikeTrace(t *testing.T) {
	tr := Spike(100, 1000, 10*sim.Second, 20, 0.1)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.MaxRate() != 1000 {
		t.Errorf("peak = %v", tr.MaxRate())
	}
	// The burst must be short: mean well below the midpoint.
	if tr.MeanRate() > 300 {
		t.Errorf("mean = %v, burst too wide", tr.MeanRate())
	}
	// Bad burst fraction falls back to default.
	tr2 := Spike(100, 1000, 10*sim.Second, 20, 5)
	if err := tr2.Validate(); err != nil {
		t.Fatal(err)
	}
}
