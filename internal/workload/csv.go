package workload

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"github.com/deeppower/deeppower/internal/sim"
)

// WriteCSV renders the trace as "seconds,rps" rows, one per bucket, suitable
// for plotting Fig. 6 or for feeding a real benchmark client.
func (tr *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"seconds", "rps"}); err != nil {
		return err
	}
	width := tr.BucketWidth()
	for i, r := range tr.Rates {
		t := sim.Time(i) * width
		rec := []string{
			strconv.FormatFloat(t.Seconds(), 'f', 3, 64),
			strconv.FormatFloat(r, 'f', 3, 64),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a trace written by WriteCSV (or any external RPS series in
// the same two-column format). The period is inferred from the row spacing:
// period = lastTime + spacing.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: reading trace CSV: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("workload: trace CSV needs a header and at least one row")
	}
	rows = rows[1:] // drop header
	times := make([]float64, len(rows))
	rates := make([]float64, len(rows))
	for i, row := range rows {
		if len(row) != 2 {
			return nil, fmt.Errorf("workload: row %d has %d columns, want 2", i+2, len(row))
		}
		if times[i], err = strconv.ParseFloat(row[0], 64); err != nil {
			return nil, fmt.Errorf("workload: row %d time: %w", i+2, err)
		}
		if rates[i], err = strconv.ParseFloat(row[1], 64); err != nil {
			return nil, fmt.Errorf("workload: row %d rate: %w", i+2, err)
		}
		if i > 0 && times[i] <= times[i-1] {
			return nil, fmt.Errorf("workload: row %d time not increasing", i+2)
		}
	}
	var spacing float64
	if len(times) > 1 {
		spacing = (times[len(times)-1] - times[0]) / float64(len(times)-1)
	} else {
		spacing = 1
	}
	tr := &Trace{Period: sim.Seconds(times[len(times)-1] + spacing), Rates: rates}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
