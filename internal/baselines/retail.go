package baselines

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/regress"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/stats"
)

// cpuFreq aliases cpu.Freq for the shared scaling helper.
type cpuFreq = cpu.Freq

// Retail reimplements ReTail (Chen et al., HPCA 2022) as this paper
// describes it (§2.2, §6): a linear-regression service-time predictor plus a
// per-request frequency selector that "selects the minimum frequency at
// which the execution of all requests in the queue will not result in a
// timeout", applied when a request begins processing.
type Retail struct {
	server.BasePolicy
	model *regress.Linear
	// Safety discounts the available slack (default 0.9) to absorb
	// prediction error, mirroring ReTail's conservatism.
	Safety float64
	// Pad is added to every prediction; FitRetail sets it to the 95th
	// percentile of the training-set underprediction residuals, the
	// error-calibration real prediction-based schedulers must do.
	Pad sim.Time
}

// NewRetail builds the policy around a fitted predictor.
func NewRetail(model *regress.Linear) *Retail {
	return &Retail{model: model, Safety: 0.9}
}

// FitRetail fits the linear predictor from profiling samples and returns the
// policy.
func FitRetail(samples []ServiceSample) (*Retail, error) {
	X, y := SplitXY(samples)
	m, err := regress.Fit(X, y, 1e-9)
	if err != nil {
		return nil, fmt.Errorf("baselines: fitting ReTail predictor: %w", err)
	}
	p := NewRetail(m)
	p.Pad = residualPad(m.PredictAll(X), y, 0.95)
	return p, nil
}

// residualPad returns the q-quantile of positive (actual − predicted)
// residuals — how much real schedulers must pad predictions to stay safe.
func residualPad(pred, actual []float64, q float64) sim.Time {
	var under []float64
	for i := range pred {
		if d := actual[i] - pred[i]; d > 0 {
			under = append(under, d)
		}
	}
	if len(under) == 0 {
		return 0
	}
	return sim.Seconds(stats.Percentile(under, q*100))
}

// Name implements server.Policy.
func (p *Retail) Name() string { return "retail" }

// Init implements server.Policy: idle cores start at the floor frequency.
func (p *Retail) Init(c server.Control) {
	p.BasePolicy.Init(c)
	for i := 0; i < c.NumCores(); i++ {
		c.SetFreq(i, c.Ladder().Min)
	}
}

// PredictRef returns the padded predicted reference service time for a
// request's features, floored at a small positive value.
func (p *Retail) PredictRef(features []float64) sim.Time {
	pred := p.model.Predict(features)
	if pred < 1e-6 {
		pred = 1e-6
	}
	return sim.Seconds(pred) + p.Pad
}

// scaledService estimates wall time at frequency f assuming service scales
// linearly with frequency — the model real schedulers use, since the true
// memory-bound fraction of an application is unobservable to them.
func scaledService(c server.Control, ref sim.Time, f cpuFreq) sim.Time {
	return sim.Time(float64(ref) * float64(c.RefFreq()) / float64(f))
}

// OnDispatch implements server.Policy: ReTail's frequency decision point.
func (p *Retail) OnDispatch(r *server.Request, core int) {
	c := p.Ctl
	now := c.Now()
	sla := c.SLA()

	ownPred := p.PredictRef(r.Work.Features)
	ownSlack := sim.Time(float64(r.SLARemaining(now, sla)) * p.Safety)

	// Aggregate queue picture: total predicted work still waiting and the
	// tightest queued deadline.
	var queueRef sim.Time
	minQueueSlack := sim.MaxTime
	for i := 0; ; i++ {
		q := c.QueuePeek(i)
		if q == nil {
			break
		}
		queueRef += p.PredictRef(q.Work.Features)
		if s := q.SLARemaining(now, sla); s < minQueueSlack {
			minQueueSlack = s
		}
	}
	minQueueSlack = sim.Time(float64(minQueueSlack) * p.Safety)
	workers := sim.Time(c.NumCores())

	ladder := c.Ladder()
	for _, f := range ladder.Levels() {
		// (a) This request finishes inside its own slack at f.
		if scaledService(c, ownPred, f) > ownSlack {
			continue
		}
		// (b) The queue drains before its tightest deadline if every
		// worker ran at f: per-worker backlog is queueRef/workers of
		// reference time, inflated by the frequency slowdown.
		if queueRef > 0 {
			drain := scaledService(c, queueRef, f) / workers
			if drain > minQueueSlack {
				continue
			}
		}
		c.SetFreq(core, f)
		return
	}
	// No level suffices: run flat out (the ladder's final level is turbo,
	// so reaching here means even turbo misses; keep it).
	c.SetTurbo(core)
}

// OnTick implements server.Policy: dispatch-time decisions only (the
// coarse granularity §5.3 contrasts with DeepPower), so ticks are a no-op.
func (p *Retail) OnTick(sim.Time) {}

// OnComplete implements server.Policy: an idling core drops to the floor.
func (p *Retail) OnComplete(r *server.Request, core int) {
	if p.Ctl.CoreRequest(core) == nil {
		p.Ctl.SetFreq(core, p.Ctl.Ladder().Min)
	}
}
