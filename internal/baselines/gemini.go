package baselines

import (
	"fmt"
	"math"

	"github.com/deeppower/deeppower/internal/nn"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// Gemini reimplements Gemini (Zhou et al., MICRO 2020) as this paper
// describes it (§2.2, §6): a neural-network service-time predictor and a
// two-stage frequency policy — a baseline frequency chosen from the
// prediction when the request starts, boosted to the maximum frequency when
// the request or the waiting queue risks timing out.
type Gemini struct {
	server.BasePolicy
	model *nn.MLP
	// featMean/featStd normalize features for the network.
	featMean, featStd []float64
	// Margin discounts slack at stage 1 (default 0.85).
	Margin float64
	// Pad is added to every prediction (set by FitGemini from training
	// residuals).
	Pad sim.Time
	// BoostHeadroom is the fraction of a request's deadline that must
	// remain for it to stay un-boosted (default 0.15).
	BoostHeadroom float64

	// predicted holds each core's stage-1 prediction.
	predicted []sim.Time
}

// GeminiTrainConfig controls predictor fitting.
type GeminiTrainConfig struct {
	Hidden []int // default [16, 8]
	Epochs int   // default 60
	LR     float64
	Seed   int64
}

// FitGemini trains the NN predictor on profiling samples and returns the
// policy.
func FitGemini(samples []ServiceSample, cfg GeminiTrainConfig) (*Gemini, error) {
	if len(samples) < 10 {
		return nil, fmt.Errorf("baselines: %d samples too few to fit Gemini", len(samples))
	}
	if cfg.Hidden == nil {
		cfg.Hidden = []int{16, 8}
	}
	if cfg.Epochs == 0 {
		cfg.Epochs = 60
	}
	if cfg.LR == 0 {
		cfg.LR = 3e-3
	}
	d := len(samples[0].Features)

	// Standardize features; scale targets to milliseconds so the loss is
	// O(1) across applications with second-scale vs microsecond services.
	mean := make([]float64, d)
	std := make([]float64, d)
	for _, s := range samples {
		for i, f := range s.Features {
			mean[i] += f / float64(len(samples))
		}
	}
	for _, s := range samples {
		for i, f := range s.Features {
			diff := f - mean[i]
			std[i] += diff * diff / float64(len(samples))
		}
	}
	var yScale float64
	for _, s := range samples {
		yScale += s.Service / float64(len(samples))
	}
	if yScale <= 0 {
		return nil, fmt.Errorf("baselines: non-positive mean service in samples")
	}
	for i := range std {
		if std[i] < 1e-12 {
			std[i] = 1
		} else {
			std[i] = math.Sqrt(std[i])
		}
	}

	rng := sim.NewRNG(cfg.Seed).Stream("gemini-train")
	sizes := append([]int{d}, cfg.Hidden...)
	sizes = append(sizes, 1)
	m := nn.NewMLP(sizes, nn.ReLU, nn.Identity, rng)
	opt := nn.NewAdam(m.Layers, cfg.LR)
	grad := make([]float64, 1)
	x := make([]float64, d)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for bi, s := range samples {
			for i, f := range s.Features {
				x[i] = (f - mean[i]) / std[i]
			}
			pred := m.Forward(x)
			nn.MSE(pred, []float64{s.Service / yScale}, grad)
			m.Backward(grad)
			if bi%32 == 31 {
				opt.Step()
			}
		}
		opt.Step()
	}

	// Fold the target scale into the output layer so Predict returns
	// seconds directly.
	outLayer := m.Layers[len(m.Layers)-1]
	for i := range outLayer.W {
		outLayer.W[i] *= yScale
	}
	outLayer.B[0] *= yScale

	g := &Gemini{
		model:         m,
		featMean:      mean,
		featStd:       std,
		Margin:        0.85,
		BoostHeadroom: 0.15,
	}
	preds := make([]float64, len(samples))
	actuals := make([]float64, len(samples))
	for i, sm := range samples {
		preds[i] = g.rawPredict(sm.Features)
		actuals[i] = sm.Service
	}
	g.Pad = residualPad(preds, actuals, 0.90)
	return g, nil
}

// Name implements server.Policy.
func (p *Gemini) Name() string { return "gemini" }

// Init implements server.Policy.
func (p *Gemini) Init(c server.Control) {
	p.BasePolicy.Init(c)
	p.predicted = make([]sim.Time, c.NumCores())
	for i := 0; i < c.NumCores(); i++ {
		c.SetFreq(i, c.Ladder().Min)
	}
}

// rawPredict evaluates the network on standardized features (seconds).
func (p *Gemini) rawPredict(features []float64) float64 {
	x := make([]float64, len(features))
	for i, f := range features {
		x[i] = (f - p.featMean[i]) / p.featStd[i]
	}
	pred := p.model.Forward(x)[0]
	if pred < 1e-6 {
		pred = 1e-6
	}
	return pred
}

// PredictRef returns the padded service-time prediction in reference time.
func (p *Gemini) PredictRef(features []float64) sim.Time {
	return sim.Seconds(p.rawPredict(features)) + p.Pad
}

// OnDispatch implements server.Policy: Gemini's stage 1 — pick the lowest
// frequency whose predicted completion fits in the discounted slack.
func (p *Gemini) OnDispatch(r *server.Request, core int) {
	c := p.Ctl
	pred := p.PredictRef(r.Work.Features)
	p.predicted[core] = pred
	slack := sim.Time(float64(r.SLARemaining(c.Now(), c.SLA())) * p.Margin)
	for _, f := range c.Ladder().Levels() {
		if scaledService(c, pred, f) <= slack {
			c.SetFreq(core, f)
			return
		}
	}
	c.SetTurbo(core)
}

// OnTick implements server.Policy: Gemini's stage 2 — boost requests (and,
// under queue pressure, every busy core) to the maximum frequency when a
// timeout threatens.
func (p *Gemini) OnTick(now sim.Time) {
	c := p.Ctl
	sla := c.SLA()

	// Queue risk: any waiting request close to its deadline forces a
	// global boost so the queue drains.
	queueRisk := false
	for i := 0; ; i++ {
		q := c.QueuePeek(i)
		if q == nil {
			break
		}
		if q.SLARemaining(now, sla) < sim.Time(float64(sla)*0.5) {
			queueRisk = true
			break
		}
	}

	for i := 0; i < c.NumCores(); i++ {
		r := c.CoreRequest(i)
		if r == nil {
			c.SetFreq(i, c.Ladder().Min)
			continue
		}
		if queueRisk {
			c.SetTurbo(i)
			continue
		}
		// Request risk: predicted completion at the current frequency
		// would eat into the final headroom of the deadline.
		pred := p.predicted[i]
		elapsed := now - r.Start
		wall := scaledService(c, pred, c.Freq(i))
		remaining := wall - elapsed
		if remaining < 0 {
			remaining = 0 // prediction exhausted; rely on deadline check
		}
		deadline := r.SLARemaining(now, sla)
		if remaining+sim.Time(float64(sla)*p.BoostHeadroom) > deadline {
			c.SetTurbo(i)
		}
	}
}

// OnComplete implements server.Policy.
func (p *Gemini) OnComplete(r *server.Request, core int) {
	p.predicted[core] = 0
	if p.Ctl.CoreRequest(core) == nil {
		p.Ctl.SetFreq(core, p.Ctl.Ladder().Min)
	}
}
