package baselines

import (
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/stats"
	"github.com/deeppower/deeppower/internal/workload"
)

func smallXapian() *app.Profile {
	p := app.MustByName(app.Xapian)
	p.Workers = 4
	return p
}

func runPolicy(t *testing.T, prof *app.Profile, pol server.Policy, loadFrac float64, dur sim.Time) *server.Result {
	t.Helper()
	rate := loadFrac * prof.MaxCapacity(prof.RefFreq, 1)
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{App: prof, Seed: 21}, pol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(workload.Constant(rate, sim.Second), dur)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestMaxFreqRunsAtTurbo(t *testing.T) {
	prof := smallXapian()
	res := runPolicy(t, prof, NewMaxFreq(), 0.3, 2*sim.Second)
	if res.Policy != "baseline" {
		t.Errorf("name = %q", res.Policy)
	}
	if math.Abs(res.AvgFreqGHz-2.8) > 0.01 {
		t.Errorf("avg freq %v, want turbo 2.8", res.AvgFreqGHz)
	}
	if res.TimeoutRate > 0.01 {
		t.Errorf("baseline at 30%% load should rarely time out, got %v", res.TimeoutRate)
	}
}

func TestFixedFreqPins(t *testing.T) {
	prof := smallXapian()
	res := runPolicy(t, prof, NewFixedFreq(1.2), 0.2, 2*sim.Second)
	if math.Abs(res.AvgFreqGHz-1.2) > 0.01 {
		t.Errorf("avg freq %v, want 1.2", res.AvgFreqGHz)
	}
	if res.Policy != "fixed-1.2GHz" {
		t.Errorf("name = %q", res.Policy)
	}
}

func TestCollectServiceData(t *testing.T) {
	prof := smallXapian()
	samples, err := CollectServiceData(prof, 0.3, 400, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) < 200 {
		t.Fatalf("only %d samples", len(samples))
	}
	for _, s := range samples {
		if s.Service <= 0 {
			t.Fatal("non-positive service time")
		}
		if len(s.Features) != prof.Sampler.FeatureDim() {
			t.Fatal("feature width mismatch")
		}
	}
	X, y := SplitXY(samples)
	if len(X) != len(samples) || len(y) != len(samples) {
		t.Error("SplitXY size mismatch")
	}
}

func TestCollectServiceDataErrors(t *testing.T) {
	prof := smallXapian()
	if _, err := CollectServiceData(prof, 0, 10, 1); err == nil {
		t.Error("zero load accepted")
	}
	if _, err := CollectServiceData(prof, 0.5, 0, 1); err == nil {
		t.Error("zero samples accepted")
	}
}

// Predictors must actually predict: correlation between predicted and true
// service times on held-out data should be strong at the profiling load.
func TestPredictorsLearnServiceTime(t *testing.T) {
	prof := smallXapian()
	train, err := CollectServiceData(prof, 0.4, 800, 6)
	if err != nil {
		t.Fatal(err)
	}
	test, err := CollectServiceData(prof, 0.4, 300, 7)
	if err != nil {
		t.Fatal(err)
	}

	retail, err := FitRetail(train)
	if err != nil {
		t.Fatal(err)
	}
	gemini, err := FitGemini(train, GeminiTrainConfig{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}

	for name, predict := range map[string]func([]float64) sim.Time{
		"retail": retail.PredictRef,
		"gemini": gemini.PredictRef,
	} {
		var preds, truths []float64
		for _, s := range test {
			preds = append(preds, predict(s.Features).Seconds())
			truths = append(truths, s.Service)
		}
		rmse := stats.RMSE(preds, truths)
		// Predicting the mean would give RMSE = std; the model must beat it.
		if std := stats.StdDev(truths); rmse > 0.9*std {
			t.Errorf("%s RMSE %.4g not better than mean-predictor %.4g", name, rmse, std)
		}
	}
}

func TestRetailSavesPowerMeetsSLA(t *testing.T) {
	prof := smallXapian()
	samples, err := CollectServiceData(prof, 0.4, 600, 8)
	if err != nil {
		t.Fatal(err)
	}
	retail, err := FitRetail(samples)
	if err != nil {
		t.Fatal(err)
	}
	base := runPolicy(t, prof, NewMaxFreq(), 0.4, 4*sim.Second)
	res := runPolicy(t, prof, retail, 0.4, 4*sim.Second)
	if res.AvgPowerW >= base.AvgPowerW {
		t.Errorf("ReTail power %v not below baseline %v", res.AvgPowerW, base.AvgPowerW)
	}
	if res.Latency.P99 > prof.SLA.Seconds()*1.3 {
		t.Errorf("ReTail p99 %v far above SLA %v", res.Latency.P99, prof.SLA.Seconds())
	}
}

func TestGeminiSavesPowerMeetsSLA(t *testing.T) {
	prof := smallXapian()
	samples, err := CollectServiceData(prof, 0.4, 600, 9)
	if err != nil {
		t.Fatal(err)
	}
	gemini, err := FitGemini(samples, GeminiTrainConfig{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	base := runPolicy(t, prof, NewMaxFreq(), 0.4, 4*sim.Second)
	res := runPolicy(t, prof, gemini, 0.4, 4*sim.Second)
	if res.AvgPowerW >= base.AvgPowerW {
		t.Errorf("Gemini power %v not below baseline %v", res.AvgPowerW, base.AvgPowerW)
	}
	if res.Latency.P99 > prof.SLA.Seconds()*1.3 {
		t.Errorf("Gemini p99 %v far above SLA %v", res.Latency.P99, prof.SLA.Seconds())
	}
}

func TestFitGeminiErrors(t *testing.T) {
	if _, err := FitGemini(nil, GeminiTrainConfig{}); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestFitRetailErrors(t *testing.T) {
	if _, err := FitRetail(nil); err == nil {
		t.Error("empty samples accepted")
	}
}

func TestRubikOverestimatesButSafe(t *testing.T) {
	prof := smallXapian()
	samples, err := CollectServiceData(prof, 0.4, 600, 11)
	if err != nil {
		t.Fatal(err)
	}
	rubik, err := FitRubik(samples)
	if err != nil {
		t.Fatal(err)
	}
	// The tail estimate must exceed the mean observed service by a lot
	// (§6: "this prediction is overestimated").
	var mean float64
	for _, s := range samples {
		mean += s.Service / float64(len(samples))
	}
	if rubik.TailPred.Seconds() < 1.5*mean {
		t.Errorf("tail prediction %v not well above mean %v", rubik.TailPred.Seconds(), mean)
	}
	base := runPolicy(t, prof, NewMaxFreq(), 0.4, 4*sim.Second)
	res := runPolicy(t, prof, rubik, 0.4, 4*sim.Second)
	if res.AvgPowerW >= base.AvgPowerW {
		t.Errorf("Rubik power %v not below baseline %v", res.AvgPowerW, base.AvgPowerW)
	}
	if res.Latency.P99 > prof.SLA.Seconds()*1.3 {
		t.Errorf("Rubik p99 %v far above SLA", res.Latency.P99)
	}
}

func TestRubikCostlierThanRetail(t *testing.T) {
	// Feature-free tail planning must burn more power than per-request
	// prediction at the same load — the reason ReTail/Gemini exist.
	prof := smallXapian()
	samples, err := CollectServiceData(prof, 0.4, 600, 12)
	if err != nil {
		t.Fatal(err)
	}
	rubik, err := FitRubik(samples)
	if err != nil {
		t.Fatal(err)
	}
	retail, err := FitRetail(samples)
	if err != nil {
		t.Fatal(err)
	}
	rb := runPolicy(t, prof, rubik, 0.5, 4*sim.Second)
	rt := runPolicy(t, prof, retail, 0.5, 4*sim.Second)
	if rb.AvgPowerW <= rt.AvgPowerW {
		t.Errorf("Rubik power %v not above ReTail %v", rb.AvgPowerW, rt.AvgPowerW)
	}
}

func TestFitRubikErrors(t *testing.T) {
	if _, err := FitRubik(nil); err == nil {
		t.Error("empty samples accepted")
	}
}
