package baselines

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// ServiceSample is one profiled request: its observable features and the
// measured service time (seconds of wall time at the reference frequency).
type ServiceSample struct {
	Features []float64
	Service  float64
}

// CollectServiceData runs the application at a constant Poisson load
// (loadFrac of its reference-frequency capacity) with all cores pinned at
// the reference frequency, and records up to n completed requests'
// (features, service time) pairs. This is the offline profiling pass both
// ReTail and Gemini use to fit their service-time predictors, and the
// data-generation procedure of the paper's Fig. 2 experiment.
func CollectServiceData(prof *app.Profile, loadFrac float64, n int, seed int64) ([]ServiceSample, error) {
	if loadFrac <= 0 || loadFrac >= 1.2 {
		return nil, fmt.Errorf("baselines: load fraction %v outside (0, 1.2)", loadFrac)
	}
	if n <= 0 {
		return nil, fmt.Errorf("baselines: non-positive sample count %d", n)
	}
	rate := loadFrac * prof.MaxCapacity(prof.RefFreq, seed)
	collector := &serviceCollector{want: n}
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{
		App:              prof,
		Seed:             seed,
		DiscardLatencies: true,
	}, collector)
	if err != nil {
		return nil, err
	}
	// Run long enough to observe n completions at the offered rate, with
	// slack for warmup and tail effects.
	duration := sim.Seconds(float64(n)/rate*1.5) + 2*sim.Second
	if _, err := srv.Run(workload.Constant(rate, sim.Second), duration); err != nil {
		return nil, err
	}
	if len(collector.samples) < n/2 {
		return nil, fmt.Errorf("baselines: profiling collected only %d of %d samples",
			len(collector.samples), n)
	}
	return collector.samples, nil
}

// serviceCollector pins cores at the reference frequency and records
// completions.
type serviceCollector struct {
	server.BasePolicy
	want    int
	samples []ServiceSample
}

func (c *serviceCollector) Name() string { return "profiler" }

func (c *serviceCollector) Init(ctl server.Control) {
	c.BasePolicy.Init(ctl)
	for i := 0; i < ctl.NumCores(); i++ {
		ctl.SetFreq(i, ctl.Ladder().Max)
	}
}

func (c *serviceCollector) OnComplete(r *server.Request, core int) {
	if len(c.samples) >= c.want {
		return
	}
	c.samples = append(c.samples, ServiceSample{
		Features: append([]float64(nil), r.Work.Features...),
		Service:  (r.Finish - r.Start).Seconds(),
	})
}

// SplitXY converts samples into regression matrices.
func SplitXY(samples []ServiceSample) (X [][]float64, y []float64) {
	X = make([][]float64, len(samples))
	y = make([]float64, len(samples))
	for i, s := range samples {
		X[i] = s.Features
		y[i] = s.Service
	}
	return X, y
}
