package baselines

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/stats"
)

// Rubik reimplements the feature-free statistical comparator the paper's
// related work describes (Kasture et al., MICRO 2015): instead of
// predicting each request's service time from features, Rubik models the
// service-time *distribution* and plans against its tail — "Rubik takes the
// tail of the distribution as the predicted latency", which §6 notes makes
// the prediction overestimated for most requests.
type Rubik struct {
	server.BasePolicy
	// TailPred is the distribution-tail service estimate used for every
	// request (the profiling distribution's TailQ quantile).
	TailPred sim.Time
	// Safety discounts available slack, as in ReTail.
	Safety float64
}

// RubikTailQuantile is the distribution quantile Rubik plans against.
const RubikTailQuantile = 95.0

// FitRubik computes the tail estimate from profiling samples.
func FitRubik(samples []ServiceSample) (*Rubik, error) {
	if len(samples) < 10 {
		return nil, fmt.Errorf("baselines: %d samples too few to fit Rubik", len(samples))
	}
	services := make([]float64, len(samples))
	for i, s := range samples {
		services[i] = s.Service
	}
	return &Rubik{
		TailPred: sim.Seconds(stats.Percentile(services, RubikTailQuantile)),
		Safety:   0.9,
	}, nil
}

// Name implements server.Policy.
func (p *Rubik) Name() string { return "rubik" }

// Init implements server.Policy.
func (p *Rubik) Init(c server.Control) {
	p.BasePolicy.Init(c)
	for i := 0; i < c.NumCores(); i++ {
		c.SetFreq(i, c.Ladder().Min)
	}
}

// OnDispatch implements server.Policy: pick the minimum frequency at which
// the tail-estimate service fits in the request's (and the queue's) slack.
func (p *Rubik) OnDispatch(r *server.Request, core int) {
	c := p.Ctl
	now := c.Now()
	sla := c.SLA()
	ownSlack := sim.Time(float64(r.SLARemaining(now, sla)) * p.Safety)

	queueLen := c.QueueLen()
	minQueueSlack := sim.MaxTime
	for i := 0; i < queueLen; i++ {
		if q := c.QueuePeek(i); q != nil {
			if s := q.SLARemaining(now, sla); s < minQueueSlack {
				minQueueSlack = s
			}
		}
	}
	minQueueSlack = sim.Time(float64(minQueueSlack) * p.Safety)
	workers := sim.Time(c.NumCores())

	for _, f := range c.Ladder().Levels() {
		if scaledService(c, p.TailPred, f) > ownSlack {
			continue
		}
		if queueLen > 0 {
			drain := scaledService(c, p.TailPred*sim.Time(queueLen), f) / workers
			if drain > minQueueSlack {
				continue
			}
		}
		c.SetFreq(core, f)
		return
	}
	c.SetTurbo(core)
}

// OnComplete implements server.Policy.
func (p *Rubik) OnComplete(r *server.Request, core int) {
	if p.Ctl.CoreRequest(core) == nil {
		p.Ctl.SetFreq(core, p.Ctl.Ladder().Min)
	}
}

// OnTick implements server.Policy: dispatch-time decisions only.
func (p *Rubik) OnTick(sim.Time) {}
