package baselines

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// SleepWrapper adds C-state management on top of any DVFS policy: cores
// idle for longer than Grace are put into State and wake automatically —
// paying the wake-up latency — when the next request is dispatched to them.
//
// This implements the sleep-state integration the paper's §6 leaves as
// future work, in the spirit of DynSleep/µDPM: DVFS decisions stay with the
// inner policy, sleep decisions are layered on idleness.
type SleepWrapper struct {
	// Inner makes all frequency decisions.
	Inner server.Policy
	// Grace is how long a core must stay idle before sleeping (default
	// 1 ms — several mean inter-arrival gaps at moderate load).
	Grace sim.Time
	// State is the C-state to enter (default C6).
	State cpu.CState

	ctl       server.Control
	idleSince []sim.Time
}

// NewSleepWrapper wraps inner with default grace and state.
func NewSleepWrapper(inner server.Policy) *SleepWrapper {
	return &SleepWrapper{Inner: inner, Grace: sim.Millisecond, State: cpu.C6}
}

// Name implements server.Policy.
func (p *SleepWrapper) Name() string {
	return fmt.Sprintf("%s+%v", p.Inner.Name(), p.State)
}

// Init implements server.Policy.
func (p *SleepWrapper) Init(c server.Control) {
	p.ctl = c
	p.idleSince = make([]sim.Time, c.NumCores())
	p.Inner.Init(c)
}

// OnTick implements server.Policy.
func (p *SleepWrapper) OnTick(now sim.Time) {
	p.Inner.OnTick(now)
	for i := 0; i < p.ctl.NumCores(); i++ {
		if p.ctl.CoreRequest(i) != nil {
			continue
		}
		if p.ctl.CoreCState(i) != cpu.C0 {
			continue // already asleep
		}
		if now-p.idleSince[i] >= p.Grace {
			p.ctl.Sleep(i, p.State)
		}
	}
}

// OnArrival implements server.Policy.
func (p *SleepWrapper) OnArrival(r *server.Request) { p.Inner.OnArrival(r) }

// OnDispatch implements server.Policy. The server has already woken the
// core; the inner policy's frequency choice applies once it resumes.
func (p *SleepWrapper) OnDispatch(r *server.Request, core int) {
	p.Inner.OnDispatch(r, core)
}

// OnComplete implements server.Policy.
func (p *SleepWrapper) OnComplete(r *server.Request, core int) {
	p.idleSince[core] = r.Finish
	p.Inner.OnComplete(r, core)
}
