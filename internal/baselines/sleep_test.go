package baselines

import (
	"testing"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

func runSleepTest(t *testing.T, pol server.Policy, loadFrac float64) *server.Result {
	t.Helper()
	prof := smallXapian()
	rate := loadFrac * prof.MaxCapacity(prof.RefFreq, 1)
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{App: prof, Seed: 31}, pol)
	if err != nil {
		t.Fatal(err)
	}
	res, err := srv.Run(workload.Constant(rate, sim.Second), 4*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSleepWrapperSavesPowerAtLowLoad(t *testing.T) {
	// At 10% load most cores idle most of the time: C6 idling should cut
	// power clearly versus the same inner policy without sleep.
	plain := runSleepTest(t, NewMaxFreq(), 0.1)
	slept := runSleepTest(t, NewSleepWrapper(NewMaxFreq()), 0.1)
	if slept.AvgPowerW >= plain.AvgPowerW*0.95 {
		t.Errorf("sleep wrapper power %v not clearly below plain %v",
			slept.AvgPowerW, plain.AvgPowerW)
	}
}

func TestSleepWrapperWakeLatencyCost(t *testing.T) {
	// Wake-ups add up to 100 µs to some requests' latency; the mean must
	// shift by at most that order, and correctness must hold.
	plain := runSleepTest(t, NewMaxFreq(), 0.1)
	slept := runSleepTest(t, NewSleepWrapper(NewMaxFreq()), 0.1)
	extra := slept.Latency.Mean - plain.Latency.Mean
	if extra < 0 {
		t.Errorf("sleeping made requests faster? Δmean = %v", extra)
	}
	if extra > 150e-6 {
		t.Errorf("wake latency cost %v s, want <= ~100us", extra)
	}
	if slept.Counters.Completions == 0 {
		t.Fatal("no completions with sleep wrapper")
	}
}

func TestSleepWrapperKeepsRequestsCorrect(t *testing.T) {
	plain := runSleepTest(t, NewMaxFreq(), 0.5)
	slept := runSleepTest(t, NewSleepWrapper(NewMaxFreq()), 0.5)
	// Same seed, same arrivals: completion counts within a whisker.
	diff := int64(plain.Counters.Completions) - int64(slept.Counters.Completions)
	if diff < -5 || diff > 5 {
		t.Errorf("completions diverged: %d vs %d",
			plain.Counters.Completions, slept.Counters.Completions)
	}
}

func TestSleepWrapperName(t *testing.T) {
	w := NewSleepWrapper(NewMaxFreq())
	if w.Name() != "baseline+C6" {
		t.Errorf("name = %q", w.Name())
	}
	w.State = cpu.C1
	if w.Name() != "baseline+C1" {
		t.Errorf("name = %q", w.Name())
	}
}

func TestSleepRefusedWhileBusy(t *testing.T) {
	prof := smallXapian()
	probe := &sleepProbe{}
	eng := sim.NewEngine()
	srv, err := server.New(eng, server.Config{App: prof, Seed: 33}, probe)
	if err != nil {
		t.Fatal(err)
	}
	rate := 0.9 * prof.MaxCapacity(prof.RefFreq, 1)
	if _, err := srv.Run(workload.Constant(rate, sim.Second), sim.Second); err != nil {
		t.Fatal(err)
	}
	if !probe.sawBusyRefusal {
		t.Error("Sleep on a busy core was never refused")
	}
}

type sleepProbe struct {
	server.BasePolicy
	sawBusyRefusal bool
}

func (p *sleepProbe) Name() string { return "sleep-probe" }
func (p *sleepProbe) OnTick(now sim.Time) {
	for i := 0; i < p.Ctl.NumCores(); i++ {
		if p.Ctl.CoreRequest(i) != nil {
			if p.Ctl.Sleep(i, cpu.C6) {
				panic("sleeping a busy core succeeded")
			}
			p.sawBusyRefusal = true
		}
	}
}

// SleepWrapper composes with prediction-based policies too — the µDPM-style
// DVFS+sleep combination the paper's related work describes.
func TestSleepWrapperOverRetail(t *testing.T) {
	prof := smallXapian()
	samples, err := CollectServiceData(prof, 0.3, 500, 35)
	if err != nil {
		t.Fatal(err)
	}
	retail, err := FitRetail(samples)
	if err != nil {
		t.Fatal(err)
	}
	retailSlept, err := FitRetail(samples)
	if err != nil {
		t.Fatal(err)
	}
	plain := runSleepTest(t, retail, 0.15)
	slept := runSleepTest(t, NewSleepWrapper(retailSlept), 0.15)
	if slept.AvgPowerW >= plain.AvgPowerW {
		t.Errorf("retail+C6 power %v not below plain retail %v",
			slept.AvgPowerW, plain.AvgPowerW)
	}
	if slept.Latency.P99 > prof.SLA.Seconds()*1.3 {
		t.Errorf("retail+C6 p99 %v far above SLA", slept.Latency.P99)
	}
}
