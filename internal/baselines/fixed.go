// Package baselines implements the power-management comparators of the
// paper's evaluation: the no-management baseline (maximum computing
// ability), a fixed-frequency governor, and the two state-of-the-art
// request-level methods, ReTail (HPCA'22) and Gemini (MICRO'20).
package baselines

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// MaxFreq is the paper's "Baseline": no power management, every core at the
// maximum (turbo) frequency for the whole run, exploiting the processor's
// full computing ability and its full power budget.
type MaxFreq struct {
	server.BasePolicy
}

// NewMaxFreq returns the no-power-management baseline.
func NewMaxFreq() *MaxFreq { return &MaxFreq{} }

// Name implements server.Policy.
func (p *MaxFreq) Name() string { return "baseline" }

// Init implements server.Policy.
func (p *MaxFreq) Init(c server.Control) {
	p.BasePolicy.Init(c)
	for i := 0; i < c.NumCores(); i++ {
		c.SetTurbo(i)
	}
}

// FixedFreq pins every core at one frequency for the whole run. It is the
// configuration the paper's §5.5 overhead experiment uses and a useful
// ablation point.
type FixedFreq struct {
	server.BasePolicy
	freq cpu.Freq
}

// NewFixedFreq returns a governor pinned at f.
func NewFixedFreq(f cpu.Freq) *FixedFreq { return &FixedFreq{freq: f} }

// Name implements server.Policy.
func (p *FixedFreq) Name() string { return fmt.Sprintf("fixed-%.2gGHz", float64(p.freq)) }

// Init implements server.Policy.
func (p *FixedFreq) Init(c server.Control) {
	p.BasePolicy.Init(c)
	for i := 0; i < c.NumCores(); i++ {
		c.SetFreq(i, p.freq)
	}
}

// OnTick implements server.Policy: re-asserts the pin so a fixed governor
// stays fixed even if another component touched a core.
func (p *FixedFreq) OnTick(now sim.Time) {
	for i := 0; i < p.Ctl.NumCores(); i++ {
		if p.Ctl.Freq(i) != p.freq {
			p.Ctl.SetFreq(i, p.freq)
		}
	}
}
