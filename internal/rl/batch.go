package rl

// trainArena holds the flat, row-major minibatch buffers a trainer reuses
// across updates, so assembling a batch and driving the batched nn kernels
// performs zero steady-state heap allocations. Buffers grow on demand (the
// first update at a given batch size allocates) and are reused afterwards.
type trainArena struct {
	states  []float64 // [n×stateDim]
	actions []float64 // [n×actionDim]
	next    []float64 // [n×stateDim]
	rewards []float64 // [n]
	done    []bool    // [n]
	y       []float64 // [n] bootstrapped targets
	dq      []float64 // [n] dL/dQ seeds
	grad    []float64 // [n×gradDim] network-output gradient rows
	n       int
}

// ensure grows the arena to hold n samples of the given widths.
func (a *trainArena) ensure(n, stateDim, actionDim, gradDim int) {
	if cap(a.states) < n*stateDim {
		a.states = make([]float64, n*stateDim)
		a.next = make([]float64, n*stateDim)
	}
	if cap(a.actions) < n*actionDim {
		a.actions = make([]float64, n*actionDim)
	}
	if cap(a.rewards) < n {
		a.rewards = make([]float64, n)
		a.done = make([]bool, n)
		a.y = make([]float64, n)
		a.dq = make([]float64, n)
	}
	if cap(a.grad) < n*gradDim {
		a.grad = make([]float64, n*gradDim)
	}
	a.states = a.states[:n*stateDim]
	a.actions = a.actions[:n*actionDim]
	a.next = a.next[:n*stateDim]
	a.rewards = a.rewards[:n]
	a.done = a.done[:n]
	a.y = a.y[:n]
	a.dq = a.dq[:n]
	a.grad = a.grad[:n*gradDim]
	a.n = n
}

// load flattens a minibatch into the arena's row-major buffers — the only
// per-transition work is a bounded copy, no slice allocations.
func (a *trainArena) load(batch []Transition, stateDim, actionDim, gradDim int) {
	a.ensure(len(batch), stateDim, actionDim, gradDim)
	for i, tr := range batch {
		copy(a.states[i*stateDim:(i+1)*stateDim], tr.State)
		copy(a.actions[i*actionDim:(i+1)*actionDim], tr.Action)
		copy(a.next[i*stateDim:(i+1)*stateDim], tr.NextState)
		a.rewards[i] = tr.Reward
		a.done[i] = tr.Done
	}
}
