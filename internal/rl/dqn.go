package rl

import (
	"fmt"
	"io"

	"github.com/deeppower/deeppower/internal/nn"
	"github.com/deeppower/deeppower/internal/sim"
)

// DQNConfig parameterizes DQN and DDQN agents over a discrete action set.
type DQNConfig struct {
	StateDim   int
	NumActions int
	// Hidden defaults to [32, 24, 16], the paper's lightweight size.
	Hidden []int
	// LR defaults to 1e-3.
	LR float64
	// Gamma defaults to 0.95.
	Gamma float64
	// Tau is the soft target-update coefficient (default 0.01).
	Tau float64
	// Double selects DDQN's decoupled action selection/evaluation.
	Double bool
	Seed   int64
}

func (c DQNConfig) withDefaults() (DQNConfig, error) {
	if c.StateDim <= 0 || c.NumActions <= 0 {
		return c, fmt.Errorf("rl: DQN needs positive dims, got state %d actions %d",
			c.StateDim, c.NumActions)
	}
	if c.Hidden == nil {
		c.Hidden = []int{32, 24, 16}
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.95
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return c, fmt.Errorf("rl: gamma %v outside [0,1)", c.Gamma)
	}
	if c.Tau == 0 {
		c.Tau = 0.01
	}
	return c, nil
}

// DQN is a deep Q-network agent; with Double=true it performs DDQN updates
// (van Hasselt et al. 2016).
type DQN struct {
	cfg    DQNConfig
	Q      *nn.MLP
	Target *nn.MLP
	opt    *nn.Adam
	rng    *sim.RNG

	// arena holds the reused flat minibatch buffers of the batched update
	// path; sel caches the DDQN per-row action selections.
	arena trainArena
	sel   []int
}

// NewDQN builds an agent.
func NewDQN(cfg DQNConfig) (*DQN, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(full.Seed).Stream("dqn-init")
	sizes := append([]int{full.StateDim}, full.Hidden...)
	sizes = append(sizes, full.NumActions)
	q := nn.NewMLP(sizes, nn.ReLU, nn.Identity, rng)
	d := &DQN{
		cfg:    full,
		Q:      q,
		Target: q.Clone(),
		rng:    sim.NewRNG(full.Seed).Stream("dqn-explore"),
	}
	d.opt = nn.NewAdam(q.Layers, full.LR)
	d.opt.MaxGradNorm = 5
	return d, nil
}

// Act returns the greedy action index for a state.
func (d *DQN) Act(state []float64) int {
	return argmax(d.Q.Forward(state))
}

// ActEpsilonGreedy explores with probability eps.
func (d *DQN) ActEpsilonGreedy(state []float64, eps float64) int {
	if d.rng.Float64() < eps {
		return d.rng.Intn(d.cfg.NumActions)
	}
	return d.Act(state)
}

// ActBatch evaluates Q(s,·) for n row-major states and returns the
// [n×NumActions] value rows (aliasing the network's internal buffers;
// consume before the next forward or update). Argmax over row i equals
// Act on state i — the vectorized greedy act path.
func (d *DQN) ActBatch(states []float64, n int) []float64 {
	return d.Q.ForwardBatch(states, n)
}

// Argmax returns the index of a row's maximum element — the greedy action
// over one Q-value row, with Act's first-max tie-breaking.
func Argmax(q []float64) int { return argmax(q) }

// QValues returns a copy of Q(s, ·).
func (d *DQN) QValues(state []float64) []float64 {
	return append([]float64(nil), d.Q.Forward(state)...)
}

// Update performs one gradient step on a minibatch. Transitions must carry
// a single-element Action slice holding the action index.
//
// The step runs on the batched nn kernels over reused flat buffers; it is
// bit-identical to the per-sample reference path (updatePerSample) and
// allocation-free at steady state.
func (d *DQN) Update(batch []Transition) (loss float64) {
	if len(batch) == 0 {
		return 0
	}
	n := len(batch)
	inv := 1 / float64(n)
	k := d.cfg.NumActions
	ar := &d.arena
	ar.load(batch, d.cfg.StateDim, 1, k)
	if cap(d.sel) < n {
		d.sel = make([]int, n)
	}
	d.sel = d.sel[:n]

	// Bootstrap targets, batch-wide (terminal rows are computed but masked
	// out of y; no RNG is involved, so the discarded work is harmless).
	if d.cfg.Double {
		// DDQN: online net selects, target net evaluates.
		qNext := d.Q.ForwardBatch(ar.next, n)
		for i := 0; i < n; i++ {
			d.sel[i] = argmax(qNext[i*k : (i+1)*k])
		}
	}
	tNext := d.Target.ForwardBatch(ar.next, n)
	for i := 0; i < n; i++ {
		y := ar.rewards[i]
		if !ar.done[i] {
			if d.cfg.Double {
				y += d.cfg.Gamma * tNext[i*k+d.sel[i]]
			} else {
				y += d.cfg.Gamma * maxOf(tNext[i*k:(i+1)*k])
			}
		}
		ar.y[i] = y
	}

	d.Q.ZeroGrad()
	q := d.Q.ForwardBatch(ar.states, n)
	for i := range ar.grad {
		ar.grad[i] = 0
	}
	for i := 0; i < n; i++ {
		a := int(ar.actions[i])
		diff := q[i*k+a] - ar.y[i]
		loss += diff * diff * inv
		ar.grad[i*k+a] = 2 * diff * inv
	}
	d.Q.BackwardBatch(ar.grad, n)
	d.opt.Step()
	d.Target.SoftUpdateFrom(d.Q, d.cfg.Tau)
	return loss
}

// updatePerSample is the pre-batching reference implementation, retained as
// the benchmark baseline and the bit-identity oracle for the batched Update.
func (d *DQN) updatePerSample(batch []Transition) (loss float64) {
	if len(batch) == 0 {
		return 0
	}
	inv := 1 / float64(len(batch))
	d.Q.ZeroGrad()
	for _, tr := range batch {
		a := int(tr.Action[0])
		y := tr.Reward
		if !tr.Done {
			if d.cfg.Double {
				sel := argmax(d.Q.Forward(tr.NextState))
				y += d.cfg.Gamma * d.Target.Forward(tr.NextState)[sel]
			} else {
				y += d.cfg.Gamma * maxOf(d.Target.Forward(tr.NextState))
			}
		}
		q := d.Q.Forward(tr.State)
		diff := q[a] - y
		loss += diff * diff * inv
		grad := make([]float64, d.cfg.NumActions)
		grad[a] = 2 * diff * inv
		d.Q.Backward(grad)
	}
	d.opt.Step()
	d.Target.SoftUpdateFrom(d.Q, d.cfg.Tau)
	return loss
}

// NumParams reports the Q-network parameter count.
func (d *DQN) NumParams() int { return d.Q.NumParams() }

// SavePolicy writes the trained Q-network as a sealed KindPolicy container —
// the same exported entry point the continuous-action agents provide.
func (d *DQN) SavePolicy(w io.Writer) error { return savePolicyNet(w, d.Q) }

// LoadPolicy replaces the Q-network (and its target) with a saved network.
func (d *DQN) LoadPolicy(r io.Reader) error {
	m, err := loadPolicyNet(r)
	if err != nil {
		return err
	}
	if m.InDim() != d.cfg.StateDim || m.OutDim() != d.cfg.NumActions {
		return fmt.Errorf("rl: loaded policy is %d→%d, DQN agent expects %d→%d",
			m.InDim(), m.OutDim(), d.cfg.StateDim, d.cfg.NumActions)
	}
	mlp, ok := m.(*nn.MLP)
	if !ok {
		return fmt.Errorf("rl: DQN network must be sequential, got %T", m)
	}
	d.Q = mlp
	d.Target = mlp.Clone()
	d.opt = nn.NewAdam(d.Q.Layers, d.cfg.LR)
	d.opt.MaxGradNorm = 5
	return nil
}

func argmax(xs []float64) int {
	best := 0
	for i, v := range xs {
		if v > xs[best] {
			best = i
		}
	}
	return best
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, v := range xs[1:] {
		if v > m {
			m = v
		}
	}
	return m
}
