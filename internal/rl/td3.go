package rl

import (
	"fmt"
	"io"
	"math"

	"github.com/deeppower/deeppower/internal/nn"
	"github.com/deeppower/deeppower/internal/sim"
)

// TD3Config parameterizes a Twin Delayed DDPG agent (Fujimoto et al. 2018)
// — the modern successor to the paper's DDPG, provided as an agent ablation:
// twin critics curb Q overestimation, target-policy smoothing regularizes
// the bootstrap, and delayed actor updates stabilize training.
type TD3Config struct {
	StateDim, ActionDim int
	// ActorHidden defaults to [32, 24, 16]; CriticHidden to the same.
	ActorHidden  []int
	CriticHidden [3]int
	// ActorLR and CriticLR default to 1e-3.
	ActorLR, CriticLR float64
	// Gamma defaults to 0.95; Tau to 0.01.
	Gamma, Tau float64
	// PolicyDelay updates the actor every Nth critic update (default 2).
	PolicyDelay int
	// TargetNoise and NoiseClip shape target-policy smoothing
	// (defaults 0.1, 0.25 — scaled for the [0,1] action range).
	TargetNoise, NoiseClip float64
	Seed                   int64
}

func (c TD3Config) withDefaults() (TD3Config, error) {
	if c.StateDim <= 0 || c.ActionDim <= 0 {
		return c, fmt.Errorf("rl: TD3 needs positive dims, got %d/%d", c.StateDim, c.ActionDim)
	}
	if c.ActorHidden == nil {
		c.ActorHidden = []int{32, 24, 16}
	}
	if c.CriticHidden == [3]int{} {
		c.CriticHidden = [3]int{32, 24, 16}
	}
	if c.ActorLR == 0 {
		c.ActorLR = 1e-3
	}
	if c.CriticLR == 0 {
		c.CriticLR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.95
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return c, fmt.Errorf("rl: gamma %v outside [0,1)", c.Gamma)
	}
	if c.Tau == 0 {
		c.Tau = 0.01
	}
	if c.PolicyDelay == 0 {
		c.PolicyDelay = 2
	}
	if c.TargetNoise == 0 {
		c.TargetNoise = 0.1
	}
	if c.NoiseClip == 0 {
		c.NoiseClip = 0.25
	}
	return c, nil
}

// TD3 is a twin-delayed DDPG agent.
type TD3 struct {
	cfg TD3Config

	Actor            nn.Network
	ActorTarget      nn.Network
	Critic1, Critic2 *Critic
	Target1, Target2 *Critic

	actorOpt, c1Opt, c2Opt *nn.Adam
	rng                    *sim.RNG
	updates                int

	// arena and a2B are the reused flat minibatch buffers of the batched
	// update path ([n×dim] row-major, grown on demand).
	arena trainArena
	a2B   []float64
}

// NewTD3 builds an agent.
func NewTD3(cfg TD3Config) (*TD3, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(full.Seed).Stream("td3-init")
	sizes := append([]int{full.StateDim}, full.ActorHidden...)
	sizes = append(sizes, full.ActionDim)
	actor := nn.NewMLP(sizes, nn.ReLU, nn.Sigmoid, rng)
	for _, l := range actor.Params() {
		if l.Act == nn.Sigmoid {
			shrinkFinalLayer(l, 3e-3)
		}
	}
	c1 := NewCritic(full.StateDim, full.ActionDim, full.CriticHidden, rng)
	c2 := NewCritic(full.StateDim, full.ActionDim, full.CriticHidden, rng)
	shrinkFinalLayer(c1.out, 3e-3)
	shrinkFinalLayer(c2.out, 3e-3)
	t := &TD3{
		cfg:         full,
		Actor:       actor,
		ActorTarget: actor.CloneNet(),
		Critic1:     c1, Critic2: c2,
		Target1: c1.Clone(), Target2: c2.Clone(),
		rng: sim.NewRNG(full.Seed).Stream("td3-smooth"),
	}
	t.actorOpt = nn.NewAdam(actor.Params(), full.ActorLR)
	t.c1Opt = nn.NewAdam(c1.Layers(), full.CriticLR)
	t.c2Opt = nn.NewAdam(c2.Layers(), full.CriticLR)
	t.actorOpt.MaxGradNorm = 5
	t.c1Opt.MaxGradNorm = 5
	t.c2Opt.MaxGradNorm = 5
	return t, nil
}

// Act returns the deterministic policy action, in [0,1]^dim.
func (t *TD3) Act(state []float64) []float64 {
	out := t.Actor.Forward(state)
	return append([]float64(nil), out...)
}

// ActNoisy adds exploration noise and clips to the action range.
func (t *TD3) ActNoisy(state []float64, noise Noise) []float64 {
	a := t.Act(state)
	n := noise.Sample(len(a))
	for i := range a {
		a[i] += n[i]
	}
	return clip01(a)
}

// ActBatch evaluates the deterministic policy for n row-major states and
// returns the [n×ActionDim] action rows (aliasing the actor's internal
// buffers; consume before the next forward or update). Rows are
// bit-identical to per-state Act calls.
func (t *TD3) ActBatch(states []float64, n int) []float64 {
	return t.Actor.ForwardBatch(states, n)
}

// Update performs one TD3 step and returns the critic losses (actor loss is
// only defined on delayed updates and returned as NaN otherwise).
//
// The step runs on the batched nn kernels over reused flat buffers; it is
// bit-identical to the per-sample reference path (updatePerSample),
// including the target-smoothing RNG draw order, and allocation-free at
// steady state.
func (t *TD3) Update(batch []Transition) (critic1Loss, critic2Loss, actorLoss float64) {
	if len(batch) == 0 {
		return 0, 0, math.NaN()
	}
	n := len(batch)
	inv := 1 / float64(n)
	t.updates++
	ar := &t.arena
	ar.load(batch, t.cfg.StateDim, t.cfg.ActionDim, t.cfg.ActionDim)
	ad := t.cfg.ActionDim
	if cap(t.a2B) < n*ad {
		t.a2B = make([]float64, n*ad)
	}
	t.a2B = t.a2B[:n*ad]

	// Critics: y = r + γ·min_i Q'_i(s', π'(s') + clipped noise). Target
	// actions are forwarded batch-wide, then the clipped smoothing noise is
	// drawn for non-terminal rows only, in ascending sample order — the
	// exact RNG sequence of the per-sample path. Terminal rows are computed
	// but masked out of y below (the discarded forwards involve no RNG, so
	// they cannot perturb determinism).
	copy(t.a2B, t.ActorTarget.ForwardBatch(ar.next, n))
	for i := 0; i < n; i++ {
		if ar.done[i] {
			continue
		}
		row := t.a2B[i*ad : (i+1)*ad]
		for j := range row {
			eps := t.rng.Normal(0, t.cfg.TargetNoise)
			eps = math.Max(-t.cfg.NoiseClip, math.Min(t.cfg.NoiseClip, eps))
			row[j] += eps
		}
		clip01(row)
	}
	q1B := t.Target1.ForwardBatch(ar.next, t.a2B, n)
	q2B := t.Target2.ForwardBatch(ar.next, t.a2B, n)
	for i := 0; i < n; i++ {
		y := ar.rewards[i]
		if !ar.done[i] {
			y += t.cfg.Gamma * math.Min(q1B[i], q2B[i])
		}
		ar.y[i] = y
	}

	t.Critic1.ZeroGrad()
	t.Critic2.ZeroGrad()
	q := t.Critic1.ForwardBatch(ar.states, ar.actions, n)
	for i := 0; i < n; i++ {
		d := q[i] - ar.y[i]
		critic1Loss += d * d * inv
		ar.dq[i] = 2 * d * inv
	}
	t.Critic1.BackwardBatch(ar.dq, n)
	q = t.Critic2.ForwardBatch(ar.states, ar.actions, n)
	for i := 0; i < n; i++ {
		d := q[i] - ar.y[i]
		critic2Loss += d * d * inv
		ar.dq[i] = 2 * d * inv
	}
	t.Critic2.BackwardBatch(ar.dq, n)
	t.c1Opt.Step()
	t.c2Opt.Step()

	actorLoss = math.NaN()
	if t.updates%t.cfg.PolicyDelay == 0 {
		// Delayed actor update through Critic1 only, as in the TD3 paper.
		t.Actor.ZeroGrad()
		actorLoss = 0
		a := t.Actor.ForwardBatch(ar.states, n)
		q = t.Critic1.ForwardBatch(ar.states, a, n)
		for i := 0; i < n; i++ {
			actorLoss += -q[i] * inv
			ar.dq[i] = -inv
		}
		_, da := t.Critic1.BackwardBatch(ar.dq, n)
		t.Actor.BackwardBatch(da, n)
		t.Critic1.ZeroGrad()
		t.actorOpt.Step()

		t.ActorTarget.SoftUpdateNet(t.Actor, t.cfg.Tau)
		t.Target1.SoftUpdateFrom(t.Critic1, t.cfg.Tau)
		t.Target2.SoftUpdateFrom(t.Critic2, t.cfg.Tau)
	}
	return critic1Loss, critic2Loss, actorLoss
}

// updatePerSample is the pre-batching reference implementation, retained as
// the benchmark baseline and the bit-identity oracle for the batched Update.
func (t *TD3) updatePerSample(batch []Transition) (critic1Loss, critic2Loss, actorLoss float64) {
	if len(batch) == 0 {
		return 0, 0, math.NaN()
	}
	inv := 1 / float64(len(batch))
	t.updates++

	t.Critic1.ZeroGrad()
	t.Critic2.ZeroGrad()
	for _, tr := range batch {
		y := tr.Reward
		if !tr.Done {
			a2 := append([]float64(nil), t.ActorTarget.Forward(tr.NextState)...)
			for i := range a2 {
				eps := t.rng.Normal(0, t.cfg.TargetNoise)
				eps = math.Max(-t.cfg.NoiseClip, math.Min(t.cfg.NoiseClip, eps))
				a2[i] += eps
			}
			clip01(a2)
			q1 := t.Target1.Forward(tr.NextState, a2)
			q2 := t.Target2.Forward(tr.NextState, a2)
			y += t.cfg.Gamma * math.Min(q1, q2)
		}
		q := t.Critic1.Forward(tr.State, tr.Action)
		d := q - y
		critic1Loss += d * d * inv
		t.Critic1.Backward(2 * d * inv)

		q = t.Critic2.Forward(tr.State, tr.Action)
		d = q - y
		critic2Loss += d * d * inv
		t.Critic2.Backward(2 * d * inv)
	}
	t.c1Opt.Step()
	t.c2Opt.Step()

	actorLoss = math.NaN()
	if t.updates%t.cfg.PolicyDelay == 0 {
		t.Actor.ZeroGrad()
		actorLoss = 0
		for _, tr := range batch {
			a := append([]float64(nil), t.Actor.Forward(tr.State)...)
			q := t.Critic1.Forward(tr.State, a)
			actorLoss += -q * inv
			_, da := t.Critic1.Backward(-inv)
			t.Actor.Backward(da)
		}
		t.Critic1.ZeroGrad()
		t.actorOpt.Step()

		t.ActorTarget.SoftUpdateNet(t.Actor, t.cfg.Tau)
		t.Target1.SoftUpdateFrom(t.Critic1, t.cfg.Tau)
		t.Target2.SoftUpdateFrom(t.Critic2, t.cfg.Tau)
	}
	return critic1Loss, critic2Loss, actorLoss
}

// NumParams reports the actor parameter count.
func (t *TD3) NumParams() int { return t.Actor.NumParams() }

// SavePolicy writes the trained actor network as a sealed KindPolicy
// container.
func (t *TD3) SavePolicy(w io.Writer) error { return savePolicyNet(w, t.Actor) }

// LoadPolicy replaces the actor (and its target) with a saved network
// (binary containers and legacy JSON snapshots both load).
func (t *TD3) LoadPolicy(r io.Reader) error {
	m, err := loadPolicyNet(r)
	if err != nil {
		return err
	}
	if m.InDim() != t.cfg.StateDim || m.OutDim() != t.cfg.ActionDim {
		return fmt.Errorf("rl: loaded policy is %d→%d, agent expects %d→%d",
			m.InDim(), m.OutDim(), t.cfg.StateDim, t.cfg.ActionDim)
	}
	t.Actor = m
	t.ActorTarget = m.CloneNet()
	t.actorOpt = nn.NewAdam(t.Actor.Params(), t.cfg.ActorLR)
	return nil
}
