package rl

import (
	"math"

	"github.com/deeppower/deeppower/internal/sim"
)

// PrioritizedReplay implements proportional prioritized experience replay
// (Schaul et al., 2016) as an extension of the paper's uniform pool: rare
// high-error transitions — e.g. the occasional load spike that caused
// timeouts — are replayed more often, which matters when such events are a
// tiny fraction of a mostly-calm trace.
type PrioritizedReplay struct {
	buf        []Transition
	priorities []float64
	cap        int
	next       int
	rng        *sim.RNG

	// Alpha shapes the priority distribution (0 = uniform; default 0.6).
	Alpha float64
	// Eps keeps every transition sampleable (default 1e-3).
	Eps float64

	maxPriority float64
	sumCache    float64
	dirty       bool
}

// NewPrioritizedReplay returns a pool holding up to capacity transitions.
func NewPrioritizedReplay(capacity int, rng *sim.RNG) *PrioritizedReplay {
	if capacity <= 0 {
		panic("rl: non-positive prioritized replay capacity")
	}
	return &PrioritizedReplay{
		cap:         capacity,
		rng:         rng,
		Alpha:       0.6,
		Eps:         1e-3,
		maxPriority: 1,
	}
}

// Len reports how many transitions are stored.
func (pr *PrioritizedReplay) Len() int { return len(pr.buf) }

// Push stores a transition with maximal priority (so everything is tried at
// least once), evicting the oldest when full.
func (pr *PrioritizedReplay) Push(t Transition) {
	p := math.Pow(pr.maxPriority+pr.Eps, pr.Alpha)
	if len(pr.buf) < pr.cap {
		pr.buf = append(pr.buf, t)
		pr.priorities = append(pr.priorities, p)
	} else {
		pr.buf[pr.next] = t
		pr.priorities[pr.next] = p
		pr.next = (pr.next + 1) % pr.cap
	}
	pr.dirty = true
}

// SampleIndexed draws n transitions proportionally to priority, returning
// the transitions and their pool indices (for UpdatePriorities).
func (pr *PrioritizedReplay) SampleIndexed(n int) ([]Transition, []int) {
	if len(pr.buf) == 0 {
		panic("rl: sampling from empty prioritized pool")
	}
	if pr.dirty {
		pr.sumCache = 0
		for _, p := range pr.priorities {
			pr.sumCache += p
		}
		pr.dirty = false
	}
	out := make([]Transition, n)
	idx := make([]int, n)
	for i := 0; i < n; i++ {
		target := pr.rng.Float64() * pr.sumCache
		acc := 0.0
		chosen := len(pr.buf) - 1
		for j, p := range pr.priorities {
			acc += p
			if target < acc {
				chosen = j
				break
			}
		}
		out[i] = pr.buf[chosen]
		idx[i] = chosen
	}
	return out, idx
}

// Sample draws n transitions proportionally to priority.
func (pr *PrioritizedReplay) Sample(n int) []Transition {
	out, _ := pr.SampleIndexed(n)
	return out
}

// UpdatePriorities sets the priorities of previously sampled indices to
// their new absolute TD errors.
func (pr *PrioritizedReplay) UpdatePriorities(indices []int, tdErrors []float64) {
	if len(indices) != len(tdErrors) {
		panic("rl: UpdatePriorities length mismatch")
	}
	for i, ix := range indices {
		if ix < 0 || ix >= len(pr.priorities) {
			continue // evicted since sampling
		}
		e := math.Abs(tdErrors[i])
		if e > pr.maxPriority {
			pr.maxPriority = e
		}
		pr.priorities[ix] = math.Pow(e+pr.Eps, pr.Alpha)
	}
	pr.dirty = true
}
