package rl

import (
	"math"

	"github.com/deeppower/deeppower/internal/sim"
)

// Noise is an exploration-noise process added to the actor's action.
type Noise interface {
	// Sample returns a noise vector of the given dimension.
	Sample(dim int) []float64
	// SampleInto fills dst with one draw of dimension len(dst) without
	// allocating. It consumes the process's RNG in exactly the same order
	// as Sample, so the two are interchangeable under a fixed seed — the
	// property the vectorized act path relies on to stay bit-identical to
	// the inline one.
	SampleInto(dst []float64)
	// Reset restarts the process (relevant for temporally-correlated noise).
	Reset()
}

// GaussianNoise is i.i.d. N(Mu, Sigma²) noise. The paper uses N(0.3, 1) by
// default (§4.6): the positive mean biases early exploration toward higher
// frequencies so the queue does not congest while the policy is random.
type GaussianNoise struct {
	Mu, Sigma float64
	rng       *sim.RNG
}

// NewGaussianNoise returns a Gaussian noise source.
func NewGaussianNoise(mu, sigma float64, rng *sim.RNG) *GaussianNoise {
	return &GaussianNoise{Mu: mu, Sigma: sigma, rng: rng}
}

// Sample implements Noise.
func (g *GaussianNoise) Sample(dim int) []float64 {
	out := make([]float64, dim)
	g.SampleInto(out)
	return out
}

// SampleInto implements Noise.
func (g *GaussianNoise) SampleInto(dst []float64) {
	for i := range dst {
		dst[i] = g.rng.Normal(g.Mu, g.Sigma)
	}
}

// Reset implements Noise (no state).
func (g *GaussianNoise) Reset() {}

// OUNoise is an Ornstein-Uhlenbeck process — the temporally-correlated noise
// of the original DDPG paper, provided as an alternative exploration scheme.
type OUNoise struct {
	Theta, Sigma, Mu float64
	state            []float64
	rng              *sim.RNG
}

// NewOUNoise returns an OU process with mean-reversion theta and volatility
// sigma around mu.
func NewOUNoise(theta, sigma, mu float64, rng *sim.RNG) *OUNoise {
	return &OUNoise{Theta: theta, Sigma: sigma, Mu: mu, rng: rng}
}

// Sample implements Noise.
func (o *OUNoise) Sample(dim int) []float64 {
	out := make([]float64, dim)
	o.SampleInto(out)
	return out
}

// SampleInto implements Noise.
func (o *OUNoise) SampleInto(dst []float64) {
	if len(o.state) != len(dst) {
		o.state = make([]float64, len(dst))
		for i := range o.state {
			o.state[i] = o.Mu
		}
	}
	for i := range o.state {
		o.state[i] += o.Theta*(o.Mu-o.state[i]) + o.Sigma*o.rng.NormFloat64()
		dst[i] = o.state[i]
	}
}

// Reset implements Noise.
func (o *OUNoise) Reset() { o.state = nil }

// DecayedNoise wraps another process, scaling its samples by a factor that
// decays geometrically per draw — a common trick to anneal exploration as
// training progresses.
type DecayedNoise struct {
	Inner Noise
	Scale float64
	Decay float64 // per-sample multiplicative decay, e.g. 0.999
	Floor float64
}

// Sample implements Noise.
func (d *DecayedNoise) Sample(dim int) []float64 {
	out := make([]float64, dim)
	d.SampleInto(out)
	return out
}

// SampleInto implements Noise.
func (d *DecayedNoise) SampleInto(dst []float64) {
	d.Inner.SampleInto(dst)
	for i := range dst {
		dst[i] *= d.Scale
	}
	d.Scale *= d.Decay
	if d.Scale < d.Floor {
		d.Scale = d.Floor
	}
}

// Reset implements Noise.
func (d *DecayedNoise) Reset() { d.Inner.Reset() }

// clip01 clamps every element of a into [0,1] — the actor's action range
// (BaseFreq, ScalingCoef are sigmoid-bounded, §4.4.3).
func clip01(a []float64) []float64 {
	for i, v := range a {
		if v < 0 {
			a[i] = 0
		} else if v > 1 {
			a[i] = 1
		} else if math.IsNaN(v) {
			a[i] = 0
		}
	}
	return a
}
