package rl

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"github.com/deeppower/deeppower/internal/sim"
)

func TestReplayPushSample(t *testing.T) {
	rp := NewReplay(4, sim.NewRNG(1))
	for i := 0; i < 6; i++ {
		rp.Push(Transition{Reward: float64(i)})
	}
	if rp.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (capacity)", rp.Len())
	}
	// Oldest entries (0, 1) must have been evicted.
	batch := rp.Sample(100)
	for _, tr := range batch {
		if tr.Reward < 2 {
			t.Fatalf("sampled evicted transition with reward %v", tr.Reward)
		}
	}
}

func TestReplayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewReplay(0, sim.NewRNG(1))
}

func TestReplayEmptySamplePanics(t *testing.T) {
	rp := NewReplay(4, sim.NewRNG(1))
	defer func() {
		if recover() == nil {
			t.Error("empty sample did not panic")
		}
	}()
	rp.Sample(1)
}

func TestGaussianNoiseStats(t *testing.T) {
	n := NewGaussianNoise(0.3, 1.0, sim.NewRNG(2))
	var sum, sum2 float64
	const k = 50000
	for i := 0; i < k; i++ {
		v := n.Sample(1)[0]
		sum += v
		sum2 += v * v
	}
	mean := sum / k
	std := math.Sqrt(sum2/k - mean*mean)
	if math.Abs(mean-0.3) > 0.02 {
		t.Errorf("noise mean %v, want 0.3 (paper default)", mean)
	}
	if math.Abs(std-1.0) > 0.02 {
		t.Errorf("noise std %v, want 1.0", std)
	}
}

func TestOUNoiseMeanReverting(t *testing.T) {
	n := NewOUNoise(0.15, 0.2, 0.5, sim.NewRNG(3))
	var sum float64
	const k = 20000
	for i := 0; i < k; i++ {
		sum += n.Sample(2)[0]
	}
	if mean := sum / k; math.Abs(mean-0.5) > 0.1 {
		t.Errorf("OU mean %v, want ~0.5", mean)
	}
	n.Reset()
	if len(n.state) != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestDecayedNoiseShrinks(t *testing.T) {
	d := &DecayedNoise{
		Inner: NewGaussianNoise(0, 1, sim.NewRNG(4)),
		Scale: 1, Decay: 0.9, Floor: 0.1,
	}
	for i := 0; i < 100; i++ {
		d.Sample(1)
	}
	if d.Scale != 0.1 {
		t.Errorf("Scale = %v, want floor 0.1", d.Scale)
	}
}

func TestClip01(t *testing.T) {
	a := clip01([]float64{-0.5, 0.5, 1.5, math.NaN()})
	want := []float64{0, 0.5, 1, 0}
	for i := range want {
		if a[i] != want[i] {
			t.Errorf("clip01[%d] = %v, want %v", i, a[i], want[i])
		}
	}
}

func TestCriticGradCheck(t *testing.T) {
	rng := sim.NewRNG(5)
	c := NewCritic(3, 2, [3]int{6, 5, 4}, rng)
	s := []float64{0.2, -0.4, 0.7}
	a := []float64{0.5, 0.9}

	c.ZeroGrad()
	c.Forward(s, a)
	ds, da := c.Backward(1)

	const h = 1e-6
	for i := range s {
		sp := append([]float64(nil), s...)
		sm := append([]float64(nil), s...)
		sp[i] += h
		sm[i] -= h
		num := (c.Forward(sp, a) - c.Forward(sm, a)) / (2 * h)
		if math.Abs(num-ds[i]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("dQ/ds[%d]: analytic %v numerical %v", i, ds[i], num)
		}
	}
	for i := range a {
		ap := append([]float64(nil), a...)
		am := append([]float64(nil), a...)
		ap[i] += h
		am[i] -= h
		num := (c.Forward(s, ap) - c.Forward(s, am)) / (2 * h)
		if math.Abs(num-da[i]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("dQ/da[%d]: analytic %v numerical %v", i, da[i], num)
		}
	}
	// Weight gradients, spot-check the concat layer.
	c.ZeroGrad()
	c.Forward(s, a)
	c.Backward(1)
	l2 := c.Layers()[1]
	for wi := 0; wi < len(l2.W); wi += 7 {
		old := l2.W[wi]
		l2.W[wi] = old + h
		up := c.Forward(s, a)
		l2.W[wi] = old - h
		down := c.Forward(s, a)
		l2.W[wi] = old
		num := (up - down) / (2 * h)
		if math.Abs(num-l2.GW[wi]) > 1e-5*(1+math.Abs(num)) {
			t.Errorf("l2 dQ/dW[%d]: analytic %v numerical %v", wi, l2.GW[wi], num)
		}
	}
}

func TestCriticCloneAndSoftUpdate(t *testing.T) {
	rng := sim.NewRNG(6)
	c := NewCritic(2, 1, [3]int{4, 4, 4}, rng)
	clone := c.Clone()
	s, a := []float64{0.1, 0.2}, []float64{0.3}
	if c.Forward(s, a) != clone.Forward(s, a) {
		t.Error("clone output differs")
	}
	c.Layers()[0].W[0] += 1
	if c.Forward(s, a) == clone.Forward(s, a) {
		t.Error("clone shares storage")
	}
	// Repeated soft updates converge to src.
	for i := 0; i < 2000; i++ {
		clone.SoftUpdateFrom(c, 0.05)
	}
	if math.Abs(c.Forward(s, a)-clone.Forward(s, a)) > 1e-6 {
		t.Error("soft update did not converge")
	}
}

func TestDDPGConfigDefaults(t *testing.T) {
	d, err := NewDDPG(DDPGConfig{StateDim: 8, ActionDim: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Paper: actor hidden layers 32, 24, 16 → 8→32→24→16→2.
	if got := len(d.Actor.Params()); got != 4 {
		t.Errorf("actor layers = %d, want 4", got)
	}
	if n := d.NumParams(); n < 1000 || n > 3000 {
		t.Errorf("actor params = %d, want ~1.5-2k (paper: 2096)", n)
	}
	a := d.Act(make([]float64, 8))
	if len(a) != 2 {
		t.Fatalf("action dim = %d", len(a))
	}
	for _, v := range a {
		if v < 0 || v > 1 {
			t.Errorf("action %v outside [0,1]", v)
		}
	}
}

func TestDDPGConfigErrors(t *testing.T) {
	if _, err := NewDDPG(DDPGConfig{}); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := NewDDPG(DDPGConfig{StateDim: 2, ActionDim: 1, Gamma: 1.5}); err == nil {
		t.Error("gamma >= 1 accepted")
	}
}

func TestDDPGActNoisyClipped(t *testing.T) {
	d, err := NewDDPG(DDPGConfig{StateDim: 2, ActionDim: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	noise := NewGaussianNoise(0.3, 1.0, sim.NewRNG(7))
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		act := d.ActNoisy([]float64{clampUnit(a), clampUnit(b)}, noise)
		for _, v := range act {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clampUnit(x float64) float64 { return math.Mod(math.Abs(x), 1) }

// toyEnv is a 1-step continuous-control problem: the optimal action is a
// known function of the state, and reward is the negative squared distance
// to it. A correct DDPG implementation learns it quickly.
func toyOptimal(s float64) float64 { return 0.2 + 0.6*s }

func toyReward(s, a float64) float64 {
	d := a - toyOptimal(s)
	return 1 - 4*d*d
}

func TestDDPGLearnsToyControl(t *testing.T) {
	d, err := NewDDPG(DDPGConfig{StateDim: 1, ActionDim: 1, Seed: 11, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	rp := NewReplay(5000, rng.Stream("replay"))
	noise := NewGaussianNoise(0, 0.3, rng.Stream("noise"))

	for step := 0; step < 3000; step++ {
		s := []float64{rng.Float64()}
		var a []float64
		if step < 200 {
			a = []float64{rng.Float64()}
		} else {
			a = d.ActNoisy(s, noise)
		}
		r := toyReward(s[0], a[0])
		rp.Push(Transition{State: s, Action: a, Reward: r, NextState: []float64{rng.Float64()}, Done: true})
		if step >= 200 {
			d.Update(rp.Sample(64))
		}
	}
	// Policy should be close to optimal across the state space.
	var worst float64
	for s := 0.05; s < 1; s += 0.1 {
		a := d.Act([]float64{s})[0]
		if diff := math.Abs(a - toyOptimal(s)); diff > worst {
			worst = diff
		}
	}
	if worst > 0.15 {
		t.Errorf("DDPG policy error %v, want < 0.15", worst)
	}
}

func TestDDPGPolicySaveLoad(t *testing.T) {
	d, err := NewDDPG(DDPGConfig{StateDim: 3, ActionDim: 2, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDDPG(DDPGConfig{StateDim: 3, ActionDim: 2, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.LoadPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	s := []float64{0.1, 0.5, 0.9}
	a1, a2 := d.Act(s), d2.Act(s)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("loaded policy differs from saved")
		}
	}
	// Shape mismatch rejected.
	var buf2 bytes.Buffer
	if err := d.SavePolicy(&buf2); err != nil {
		t.Fatal(err)
	}
	d3, _ := NewDDPG(DDPGConfig{StateDim: 4, ActionDim: 2})
	if err := d3.LoadPolicy(&buf2); err == nil {
		t.Error("mismatched policy accepted")
	}
}

func TestDQNLearnsToyControl(t *testing.T) {
	for _, double := range []bool{false, true} {
		const nActions = 11
		d, err := NewDQN(DQNConfig{StateDim: 1, NumActions: nActions, Seed: 13, Gamma: 0, Double: double})
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(13)
		rp := NewReplay(5000, rng.Stream("replay"))
		for step := 0; step < 2500; step++ {
			s := []float64{rng.Float64()}
			eps := math.Max(0.05, 1-float64(step)/1500)
			ai := d.ActEpsilonGreedy(s, eps)
			a := float64(ai) / (nActions - 1)
			r := toyReward(s[0], a)
			rp.Push(Transition{State: s, Action: []float64{float64(ai)}, Reward: r,
				NextState: []float64{rng.Float64()}, Done: true})
			if step >= 100 {
				d.Update(rp.Sample(32))
			}
		}
		var worst float64
		for s := 0.05; s < 1; s += 0.1 {
			a := float64(d.Act([]float64{s})) / (nActions - 1)
			if diff := math.Abs(a - toyOptimal(s)); diff > worst {
				worst = diff
			}
		}
		if worst > 0.2 {
			t.Errorf("double=%v: DQN policy error %v, want < 0.2", double, worst)
		}
	}
}

func TestDQNConfigErrors(t *testing.T) {
	if _, err := NewDQN(DQNConfig{}); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := NewDQN(DQNConfig{StateDim: 1, NumActions: 2, Gamma: -1}); err == nil {
		t.Error("negative gamma accepted")
	}
}

func TestSACActRange(t *testing.T) {
	s, err := NewSAC(SACConfig{StateDim: 4, ActionDim: 2, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		state := []float64{float64(i) / 200, 0.5, -0.3, 0.1}
		for _, a := range [][]float64{s.Act(state), s.SampleAction(state)} {
			for _, v := range a {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("SAC action %v outside [0,1]", v)
				}
			}
		}
	}
}

func TestSACLearnsToyControl(t *testing.T) {
	agent, err := NewSAC(SACConfig{StateDim: 1, ActionDim: 1, Seed: 15, Gamma: 0, Alpha: 0.02})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(15)
	rp := NewReplay(5000, rng.Stream("replay"))
	for step := 0; step < 3000; step++ {
		s := []float64{rng.Float64()}
		var a []float64
		if step < 200 {
			a = []float64{rng.Float64()}
		} else {
			a = agent.SampleAction(s)
		}
		r := toyReward(s[0], a[0])
		rp.Push(Transition{State: s, Action: a, Reward: r, NextState: []float64{rng.Float64()}, Done: true})
		if step >= 200 {
			agent.Update(rp.Sample(64))
		}
	}
	var worst float64
	for s := 0.05; s < 1; s += 0.1 {
		a := agent.Act([]float64{s})[0]
		if diff := math.Abs(a - toyOptimal(s)); diff > worst {
			worst = diff
		}
	}
	if worst > 0.2 {
		t.Errorf("SAC policy error %v, want < 0.2", worst)
	}
}

func TestSACConfigErrors(t *testing.T) {
	if _, err := NewSAC(SACConfig{}); err == nil {
		t.Error("zero dims accepted")
	}
}

func TestDDPGUpdateEmptyBatch(t *testing.T) {
	d, _ := NewDDPG(DDPGConfig{StateDim: 1, ActionDim: 1})
	if cl, al := d.Update(nil); cl != 0 || al != 0 {
		t.Error("empty batch should be a no-op")
	}
}

// Inference-path benchmarks backing Table 2.
func BenchmarkDDPGInference(b *testing.B) {
	d, _ := NewDDPG(DDPGConfig{StateDim: 8, ActionDim: 2, Seed: 1})
	s := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Act(s)
	}
}

func BenchmarkDQNInference(b *testing.B) {
	d, _ := NewDQN(DQNConfig{StateDim: 8, NumActions: 25, Seed: 1})
	s := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Act(s)
	}
}

func BenchmarkSACInference(b *testing.B) {
	agent, _ := NewSAC(SACConfig{StateDim: 8, ActionDim: 2, Seed: 1})
	s := make([]float64, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agent.SampleAction(s)
	}
}

func BenchmarkDDPGUpdateBatch64(b *testing.B) {
	d, _ := NewDDPG(DDPGConfig{StateDim: 8, ActionDim: 2, Seed: 1})
	rng := sim.NewRNG(1)
	rp := NewReplay(1000, rng)
	for i := 0; i < 1000; i++ {
		rp.Push(Transition{
			State:     randVec(rng, 8),
			Action:    randVec(rng, 2),
			Reward:    rng.Float64(),
			NextState: randVec(rng, 8),
		})
	}
	batch := rp.Sample(64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Update(batch)
	}
}

func randVec(rng *sim.RNG, n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = rng.Float64()
	}
	return v
}

// A two-dimensional toy problem for the two-headed actor: each action
// component has its own optimal line.
func toyOptimal2(s float64) (float64, float64) { return 0.2 + 0.6*s, 0.8 - 0.5*s }

func TestDDPGTwoHeadActorLearnsToyControl(t *testing.T) {
	d, err := NewDDPG(DDPGConfig{
		StateDim: 1, ActionDim: 2, Seed: 21, Gamma: 0, TwoHeadActor: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := d.NumParams(); n < 1500 || n > 2700 {
		t.Errorf("two-head actor params = %d, want ~2k", n)
	}
	rng := sim.NewRNG(21)
	rp := NewReplay(5000, rng.Stream("replay"))
	noise := NewGaussianNoise(0, 0.3, rng.Stream("noise"))
	for step := 0; step < 3500; step++ {
		s := []float64{rng.Float64()}
		var a []float64
		if step < 200 {
			a = []float64{rng.Float64(), rng.Float64()}
		} else {
			a = d.ActNoisy(s, noise)
		}
		o1, o2 := toyOptimal2(s[0])
		r := 2 - 4*(a[0]-o1)*(a[0]-o1) - 4*(a[1]-o2)*(a[1]-o2)
		rp.Push(Transition{State: s, Action: a, Reward: r, NextState: []float64{rng.Float64()}, Done: true})
		if step >= 200 {
			d.Update(rp.Sample(64))
		}
	}
	var worst float64
	for s := 0.05; s < 1; s += 0.1 {
		a := d.Act([]float64{s})
		o1, o2 := toyOptimal2(s)
		worst = math.Max(worst, math.Max(math.Abs(a[0]-o1), math.Abs(a[1]-o2)))
	}
	if worst > 0.2 {
		t.Errorf("two-head policy error %v, want < 0.2", worst)
	}
}

func TestDDPGTwoHeadRequiresTwoActions(t *testing.T) {
	if _, err := NewDDPG(DDPGConfig{StateDim: 2, ActionDim: 1, TwoHeadActor: true}); err == nil {
		t.Error("two-head actor with 1 action accepted")
	}
}

func TestDDPGTwoHeadSaveLoad(t *testing.T) {
	d, err := NewDDPG(DDPGConfig{StateDim: 8, ActionDim: 2, Seed: 22, TwoHeadActor: true})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.SavePolicy(&buf); err != nil {
		t.Fatal(err)
	}
	d2, err := NewDDPG(DDPGConfig{StateDim: 8, ActionDim: 2, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.LoadPolicy(&buf); err != nil {
		t.Fatal(err)
	}
	s := make([]float64, 8)
	a1, a2 := d.Act(s), d2.Act(s)
	for i := range a1 {
		if a1[i] != a2[i] {
			t.Fatal("loaded two-head policy acts differently")
		}
	}
}

func TestPrioritizedReplayBasics(t *testing.T) {
	pr := NewPrioritizedReplay(4, sim.NewRNG(31))
	for i := 0; i < 6; i++ {
		pr.Push(Transition{Reward: float64(i)})
	}
	if pr.Len() != 4 {
		t.Fatalf("Len = %d", pr.Len())
	}
	batch := pr.Sample(50)
	for _, tr := range batch {
		if tr.Reward < 2 {
			t.Fatal("sampled evicted transition")
		}
	}
}

func TestPrioritizedReplayBiasesHighError(t *testing.T) {
	pr := NewPrioritizedReplay(100, sim.NewRNG(32))
	for i := 0; i < 100; i++ {
		pr.Push(Transition{Reward: float64(i)})
	}
	// Give index 7 a huge TD error, everything else tiny.
	idx := make([]int, 100)
	errs := make([]float64, 100)
	for i := range idx {
		idx[i] = i
		errs[i] = 0.001
	}
	errs[7] = 100
	pr.UpdatePriorities(idx, errs)
	count7 := 0
	const draws = 2000
	_, indices := pr.SampleIndexed(draws)
	for _, ix := range indices {
		if ix == 7 {
			count7++
		}
	}
	// Uniform would give ~20 hits; prioritized must give far more.
	if count7 < 200 {
		t.Errorf("high-error transition sampled %d/%d times, want heavy bias", count7, draws)
	}
}

func TestPrioritizedReplayPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("zero capacity did not panic")
		}
	}()
	NewPrioritizedReplay(0, sim.NewRNG(1))
}

func TestPrioritizedReplayUpdateMismatchPanics(t *testing.T) {
	pr := NewPrioritizedReplay(4, sim.NewRNG(1))
	pr.Push(Transition{})
	defer func() {
		if recover() == nil {
			t.Error("length mismatch did not panic")
		}
	}()
	pr.UpdatePriorities([]int{0}, []float64{1, 2})
}

func TestTD3ConfigErrors(t *testing.T) {
	if _, err := NewTD3(TD3Config{}); err == nil {
		t.Error("zero dims accepted")
	}
	if _, err := NewTD3(TD3Config{StateDim: 1, ActionDim: 1, Gamma: 2}); err == nil {
		t.Error("gamma >= 1 accepted")
	}
}

func TestTD3ActRange(t *testing.T) {
	agent, err := NewTD3(TD3Config{StateDim: 4, ActionDim: 2, Seed: 41})
	if err != nil {
		t.Fatal(err)
	}
	noise := NewGaussianNoise(0.3, 1, sim.NewRNG(41))
	for i := 0; i < 100; i++ {
		s := []float64{float64(i) / 100, 0.2, 0.8, 0.5}
		for _, a := range [][]float64{agent.Act(s), agent.ActNoisy(s, noise)} {
			for _, v := range a {
				if v < 0 || v > 1 || math.IsNaN(v) {
					t.Fatalf("action %v outside [0,1]", v)
				}
			}
		}
	}
}

func TestTD3LearnsToyControl(t *testing.T) {
	agent, err := NewTD3(TD3Config{StateDim: 1, ActionDim: 1, Seed: 42, Gamma: 0})
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(42)
	rp := NewReplay(5000, rng.Stream("replay"))
	noise := NewGaussianNoise(0, 0.3, rng.Stream("noise"))
	for step := 0; step < 3000; step++ {
		s := []float64{rng.Float64()}
		var a []float64
		if step < 200 {
			a = []float64{rng.Float64()}
		} else {
			a = agent.ActNoisy(s, noise)
		}
		r := toyReward(s[0], a[0])
		rp.Push(Transition{State: s, Action: a, Reward: r, NextState: []float64{rng.Float64()}, Done: true})
		if step >= 200 {
			agent.Update(rp.Sample(64))
		}
	}
	var worst float64
	for s := 0.05; s < 1; s += 0.1 {
		a := agent.Act([]float64{s})[0]
		if diff := math.Abs(a - toyOptimal(s)); diff > worst {
			worst = diff
		}
	}
	if worst > 0.15 {
		t.Errorf("TD3 policy error %v, want < 0.15", worst)
	}
}

func TestTD3DelayedActorUpdates(t *testing.T) {
	agent, err := NewTD3(TD3Config{StateDim: 1, ActionDim: 1, Seed: 43, PolicyDelay: 2})
	if err != nil {
		t.Fatal(err)
	}
	batch := []Transition{{State: []float64{0.5}, Action: []float64{0.5}, Reward: 1, NextState: []float64{0.5}}}
	_, _, a1 := agent.Update(batch) // update 1: no actor step
	_, _, a2 := agent.Update(batch) // update 2: actor steps
	if !math.IsNaN(a1) {
		t.Error("actor updated before the policy delay elapsed")
	}
	if math.IsNaN(a2) {
		t.Error("actor not updated at the policy delay")
	}
}
