package rl

import (
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

const benchBatch = 64

// BenchmarkTrainStep compares one full trainer update on the batched
// kernels against the per-sample reference path, at the paper's network
// sizes and a batch of 64.
func BenchmarkTrainStep(b *testing.B) {
	rng := sim.NewRNG(77)
	contBatch := mkTransitions(rng, benchBatch, 6, 2, false, 0)
	discBatch := mkTransitions(rng, benchBatch, 6, 0, true, 4)

	newDDPG := func() *DDPG {
		d, err := NewDDPG(DDPGConfig{StateDim: 6, ActionDim: 2, TwoHeadActor: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}
	newTD3 := func() *TD3 {
		t, err := NewTD3(TD3Config{StateDim: 6, ActionDim: 2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return t
	}
	newSAC := func() *SAC {
		s, err := NewSAC(SACConfig{StateDim: 6, ActionDim: 2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return s
	}
	newDQN := func() *DQN {
		d, err := NewDQN(DQNConfig{StateDim: 6, NumActions: 4, Double: true, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		return d
	}

	for _, bc := range []struct {
		name string
		step func() func()
	}{
		{"ddpg/batched", func() func() { d := newDDPG(); return func() { d.Update(contBatch) } }},
		{"ddpg/persample", func() func() { d := newDDPG(); return func() { d.updatePerSample(contBatch) } }},
		{"td3/batched", func() func() { t := newTD3(); return func() { t.Update(contBatch) } }},
		{"td3/persample", func() func() { t := newTD3(); return func() { t.updatePerSample(contBatch) } }},
		{"sac/batched", func() func() { s := newSAC(); return func() { s.Update(contBatch) } }},
		{"sac/persample", func() func() { s := newSAC(); return func() { s.updatePerSample(contBatch) } }},
		{"dqn/batched", func() func() { d := newDQN(); return func() { d.Update(discBatch) } }},
		{"dqn/persample", func() func() { d := newDQN(); return func() { d.updatePerSample(discBatch) } }},
	} {
		b.Run(bc.name, func(b *testing.B) {
			step := bc.step()
			step() // warm-up grows the scratch arenas
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				step()
			}
		})
	}
}

// BenchmarkActorInference measures the control-loop hot path: a single
// deterministic policy evaluation for both actor topologies.
func BenchmarkActorInference(b *testing.B) {
	rng := sim.NewRNG(79)
	state := make([]float64, 6)
	for i := range state {
		state[i] = rng.Uniform(0, 1)
	}
	for _, twoHead := range []struct {
		name string
		on   bool
	}{{"mlp", false}, {"twohead", true}} {
		b.Run(twoHead.name, func(b *testing.B) {
			d, err := NewDDPG(DDPGConfig{StateDim: 6, ActionDim: 2, TwoHeadActor: twoHead.on, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.Actor.Forward(state)
			}
		})
	}
}
