package rl

import (
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/nn"
	"github.com/deeppower/deeppower/internal/sim"
)

// mkTransitions builds a deterministic minibatch with a mix of terminal and
// non-terminal rows. For discrete agents the action is a single index.
func mkTransitions(rng *sim.RNG, n, stateDim, actionDim int, discrete bool, numActions int) []Transition {
	batch := make([]Transition, n)
	for i := range batch {
		tr := Transition{
			State:     make([]float64, stateDim),
			NextState: make([]float64, stateDim),
			Reward:    rng.Uniform(-1, 1),
			Done:      i%5 == 3,
		}
		for j := range tr.State {
			tr.State[j] = rng.Uniform(0, 1)
			tr.NextState[j] = rng.Uniform(0, 1)
		}
		if discrete {
			tr.Action = []float64{float64(rng.Intn(numActions))}
		} else {
			tr.Action = make([]float64, actionDim)
			for j := range tr.Action {
				tr.Action[j] = rng.Uniform(0, 1)
			}
		}
		batch[i] = tr
	}
	return batch
}

// bitEqSlice fails unless two float slices match bit-for-bit.
func bitEqSlice(t *testing.T, what string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("%s[%d]: batched %v vs per-sample %v", what, i, got[i], want[i])
		}
	}
}

func bitEqLayers(t *testing.T, what string, got, want []*nn.Dense) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: layer count %d vs %d", what, len(got), len(want))
	}
	for i := range got {
		bitEqSlice(t, what+" W", got[i].W, want[i].W)
		bitEqSlice(t, what+" B", got[i].B, want[i].B)
	}
}

func bitEqLoss(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.Float64bits(got) != math.Float64bits(want) {
		t.Fatalf("%s: batched %v vs per-sample %v", what, got, want)
	}
}

// TestDDPGBatchBitIdentity trains two identically-seeded agents — one on the
// batched Update, one on the per-sample reference — and requires every
// weight of all four networks to stay bit-identical, for both actor
// topologies.
func TestDDPGBatchBitIdentity(t *testing.T) {
	for _, twoHead := range []bool{false, true} {
		cfg := DDPGConfig{StateDim: 6, ActionDim: 2, TwoHeadActor: twoHead, Seed: 99}
		bat, err := NewDDPG(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewDDPG(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(7)
		for step := 0; step < 5; step++ {
			batch := mkTransitions(rng, 32, cfg.StateDim, cfg.ActionDim, false, 0)
			cB, aB := bat.Update(batch)
			cR, aR := ref.updatePerSample(batch)
			bitEqLoss(t, "critic loss", cB, cR)
			bitEqLoss(t, "actor loss", aB, aR)
		}
		bitEqLayers(t, "actor", bat.Actor.Params(), ref.Actor.Params())
		bitEqLayers(t, "actor target", bat.ActorTarget.Params(), ref.ActorTarget.Params())
		bitEqLayers(t, "critic", bat.Critic.Layers(), ref.Critic.Layers())
		bitEqLayers(t, "critic target", bat.CriticTarget.Layers(), ref.CriticTarget.Layers())
	}
}

// TestTD3BatchBitIdentity covers the twin critics, the delayed actor update,
// and the target-smoothing RNG draw order (noise is drawn for non-terminal
// rows only).
func TestTD3BatchBitIdentity(t *testing.T) {
	cfg := TD3Config{StateDim: 6, ActionDim: 2, Seed: 101}
	bat, err := NewTD3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewTD3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(11)
	for step := 0; step < 4; step++ {
		batch := mkTransitions(rng, 32, cfg.StateDim, cfg.ActionDim, false, 0)
		c1B, c2B, aB := bat.Update(batch)
		c1R, c2R, aR := ref.updatePerSample(batch)
		bitEqLoss(t, "critic1 loss", c1B, c1R)
		bitEqLoss(t, "critic2 loss", c2B, c2R)
		if !math.IsNaN(aB) || !math.IsNaN(aR) {
			bitEqLoss(t, "actor loss", aB, aR)
		}
	}
	bitEqLayers(t, "actor", bat.Actor.Params(), ref.Actor.Params())
	bitEqLayers(t, "actor target", bat.ActorTarget.Params(), ref.ActorTarget.Params())
	bitEqLayers(t, "critic1", bat.Critic1.Layers(), ref.Critic1.Layers())
	bitEqLayers(t, "critic2", bat.Critic2.Layers(), ref.Critic2.Layers())
	bitEqLayers(t, "target1", bat.Target1.Layers(), ref.Target1.Layers())
	bitEqLayers(t, "target2", bat.Target2.Layers(), ref.Target2.Layers())
}

// TestSACBatchBitIdentity covers the reparameterized draws (RNG order: next
// states for non-terminal rows, then all rows in the actor pass) and the
// masked min-critic backward.
func TestSACBatchBitIdentity(t *testing.T) {
	cfg := SACConfig{StateDim: 6, ActionDim: 2, Seed: 103}
	bat, err := NewSAC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewSAC(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(13)
	for step := 0; step < 4; step++ {
		batch := mkTransitions(rng, 32, cfg.StateDim, cfg.ActionDim, false, 0)
		c1B, c2B, aB := bat.Update(batch)
		c1R, c2R, aR := ref.updatePerSample(batch)
		bitEqLoss(t, "critic1 loss", c1B, c1R)
		bitEqLoss(t, "critic2 loss", c2B, c2R)
		bitEqLoss(t, "actor loss", aB, aR)
	}
	bitEqLayers(t, "actor", bat.Actor.Layers, ref.Actor.Layers)
	bitEqLayers(t, "critic1", bat.Critic1.Layers(), ref.Critic1.Layers())
	bitEqLayers(t, "critic2", bat.Critic2.Layers(), ref.Critic2.Layers())
	bitEqLayers(t, "target1", bat.Target1.Layers(), ref.Target1.Layers())
	bitEqLayers(t, "target2", bat.Target2.Layers(), ref.Target2.Layers())
}

// TestDQNBatchBitIdentity covers both the plain and double (decoupled
// selection/evaluation) bootstrap paths.
func TestDQNBatchBitIdentity(t *testing.T) {
	for _, double := range []bool{false, true} {
		cfg := DQNConfig{StateDim: 6, NumActions: 4, Double: double, Seed: 107}
		bat, err := NewDQN(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewDQN(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(17)
		for step := 0; step < 5; step++ {
			batch := mkTransitions(rng, 32, cfg.StateDim, 0, true, cfg.NumActions)
			bitEqLoss(t, "loss", bat.Update(batch), ref.updatePerSample(batch))
		}
		bitEqLayers(t, "q", bat.Q.Layers, ref.Q.Layers)
		bitEqLayers(t, "target", bat.Target.Layers, ref.Target.Layers)
	}
}

// TestTrainStepZeroAllocs pins the tentpole guarantee: after a warm-up has
// grown every scratch arena, a steady-state train step performs zero heap
// allocations, for all four trainers.
func TestTrainStepZeroAllocs(t *testing.T) {
	rng := sim.NewRNG(23)
	const n = 64

	ddpg, err := NewDDPG(DDPGConfig{StateDim: 6, ActionDim: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	contBatch := mkTransitions(rng, n, 6, 2, false, 0)
	td3, err := NewTD3(TD3Config{StateDim: 6, ActionDim: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sac, err := NewSAC(SACConfig{StateDim: 6, ActionDim: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	dqn, err := NewDQN(DQNConfig{StateDim: 6, NumActions: 4, Double: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	discBatch := mkTransitions(rng, n, 6, 0, true, 4)

	for name, step := range map[string]func(){
		"ddpg": func() { ddpg.Update(contBatch) },
		"td3":  func() { td3.Update(contBatch) },
		"sac":  func() { sac.Update(contBatch) },
		"dqn":  func() { dqn.Update(discBatch) },
	} {
		step() // warm-up grows the arenas
		step()
		if allocs := testing.AllocsPerRun(10, step); allocs != 0 {
			t.Errorf("%s: steady-state train step allocates %v times, want 0", name, allocs)
		}
	}
}

// TestSampleIntoMatchesSample: under the same seed, SampleInto must consume
// the RNG identically to Sample and pick the same transitions.
func TestSampleIntoMatchesSample(t *testing.T) {
	mk := func(seed int64) *Replay {
		rp := NewReplay(8, sim.NewRNG(seed))
		for i := 0; i < 8; i++ {
			rp.Push(Transition{Reward: float64(i)})
		}
		return rp
	}
	a, b := mk(5), mk(5)
	for round := 0; round < 3; round++ {
		want := a.Sample(6)
		got := make([]Transition, 6)
		b.SampleInto(got)
		for i := range want {
			if got[i].Reward != want[i].Reward {
				t.Fatalf("round %d sample %d: SampleInto picked %v, Sample picked %v",
					round, i, got[i].Reward, want[i].Reward)
			}
		}
	}
}

// TestSampleIntoWraparound samples from a ring that has evicted its oldest
// entries: only live transitions may appear.
func TestSampleIntoWraparound(t *testing.T) {
	rp := NewReplay(4, sim.NewRNG(3))
	for i := 0; i < 7; i++ { // rewards 3..6 survive
		rp.Push(Transition{Reward: float64(i)})
	}
	dst := make([]Transition, 64)
	rp.SampleInto(dst)
	for i, tr := range dst {
		if tr.Reward < 3 || tr.Reward > 6 {
			t.Fatalf("dst[%d]: sampled evicted/out-of-range transition %v", i, tr.Reward)
		}
	}
}

// TestSampleIntoShortPool: a destination larger than the pool draws with
// replacement from whatever is stored rather than reading stale slots.
func TestSampleIntoShortPool(t *testing.T) {
	rp := NewReplay(16, sim.NewRNG(9))
	rp.Push(Transition{Reward: 1})
	rp.Push(Transition{Reward: 2})
	dst := make([]Transition, 32)
	rp.SampleInto(dst)
	seen := map[float64]bool{}
	for i, tr := range dst {
		if tr.Reward != 1 && tr.Reward != 2 {
			t.Fatalf("dst[%d]: sampled uninitialized slot (reward %v)", i, tr.Reward)
		}
		seen[tr.Reward] = true
	}
	if len(seen) != 2 {
		t.Fatalf("32 draws from a 2-entry pool hit %d distinct entries, want 2", len(seen))
	}
}

// TestSampleIntoEmptyPanics documents the empty-pool contract.
func TestSampleIntoEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("SampleInto on an empty pool did not panic")
		}
	}()
	rp := NewReplay(4, sim.NewRNG(1))
	rp.SampleInto(make([]Transition, 1))
}
