// Package rl implements the deep reinforcement-learning algorithms the paper
// uses: DDPG (the DeepPower agent, §4.5) and the three comparison algorithms
// of Table 2 — DQN, DDQN and SAC — on top of the internal/nn library.
package rl

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/sim"
)

// Transition is one experience tuple (s, a, r, s').
type Transition struct {
	State     []float64
	Action    []float64
	Reward    float64
	NextState []float64
	// Done marks terminal transitions (no bootstrapping). The paper's
	// control task is continuing, so Done is normally false.
	Done bool
}

// Replay is the experience replay pool of Fig. 3 (⑥): a fixed-capacity ring
// from which training samples minibatches uniformly.
type Replay struct {
	buf    []Transition
	cap    int
	next   int
	full   bool
	pushed uint64
	rng    *sim.RNG
}

// NewReplay returns a pool holding up to capacity transitions.
func NewReplay(capacity int, rng *sim.RNG) *Replay {
	if capacity <= 0 {
		panic(fmt.Sprintf("rl: non-positive replay capacity %d", capacity))
	}
	return &Replay{buf: make([]Transition, 0, capacity), cap: capacity, rng: rng}
}

// Push stores a transition, evicting the oldest when full.
func (rp *Replay) Push(t Transition) {
	rp.pushed++
	if len(rp.buf) < rp.cap {
		rp.buf = append(rp.buf, t)
		return
	}
	rp.buf[rp.next] = t
	rp.next = (rp.next + 1) % rp.cap
	rp.full = true
}

// Len reports how many transitions are stored.
func (rp *Replay) Len() int { return len(rp.buf) }

// Pushed reports the pool's write cursor: the total number of transitions
// ever pushed, including ones since evicted. Shared-pool writers (the
// vectorized trainer interleaves E environments into one pool) use it as
// their experience-throughput counter; Pushed() mod cap locates the ring's
// next eviction slot once the pool is full.
func (rp *Replay) Pushed() uint64 { return rp.pushed }

// At returns the i-th oldest stored transition (0 = next to be evicted).
// It exposes the ring in logical age order for tests that pin the shared
// write-cursor interleave; sampling paths use SampleInto.
func (rp *Replay) At(i int) Transition {
	if i < 0 || i >= len(rp.buf) {
		panic(fmt.Sprintf("rl: replay index %d out of %d", i, len(rp.buf)))
	}
	if !rp.full {
		return rp.buf[i]
	}
	return rp.buf[(rp.next+i)%rp.cap]
}

// SampleInto fills dst with transitions drawn uniformly with replacement,
// without allocating: trainers reuse one minibatch buffer across updates.
// It draws exactly len(dst) RNG values in the same order as Sample, so the
// two are interchangeable under a fixed seed. Panics when the pool is
// empty.
func (rp *Replay) SampleInto(dst []Transition) {
	if len(rp.buf) == 0 {
		panic("rl: sampling from empty replay pool")
	}
	for i := range dst {
		dst[i] = rp.buf[rp.rng.Intn(len(rp.buf))]
	}
}

// Sample draws n transitions uniformly with replacement into a fresh slice.
// Hot paths should prefer SampleInto.
func (rp *Replay) Sample(n int) []Transition {
	out := make([]Transition, n)
	rp.SampleInto(out)
	return out
}
