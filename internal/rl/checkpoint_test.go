package rl

import (
	"bytes"
	"errors"
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/ckpt"
	"github.com/deeppower/deeppower/internal/sim"
)

// fillReplay populates a pool with synthetic transitions. discrete selects
// single-index actions (DQN) instead of continuous vectors.
func fillReplay(rp *Replay, rng *sim.RNG, n, stateDim, actionDim int, discrete bool) {
	for i := 0; i < n; i++ {
		tr := Transition{
			State:     make([]float64, stateDim),
			NextState: make([]float64, stateDim),
			Reward:    rng.Normal(0, 1),
			Done:      rng.Bernoulli(0.05),
		}
		for j := range tr.State {
			tr.State[j] = rng.Float64()
			tr.NextState[j] = rng.Float64()
		}
		if discrete {
			tr.Action = []float64{float64(rng.Intn(actionDim))}
		} else {
			tr.Action = make([]float64, actionDim)
			for j := range tr.Action {
				tr.Action[j] = rng.Float64()
			}
		}
		rp.Push(tr)
	}
}

// trainerHarness abstracts one trainer kind for the shared resume test: it
// can train a step from a replay pool, checkpoint itself (with the pool),
// and compare complete states bitwise via checkpoint bytes.
type trainerHarness struct {
	name     string
	discrete bool
	make     func(seed int64) any
	step     func(tr any, rp *Replay, batch []Transition)
	dump     func(tr any, rp *Replay) []byte
	load     func(data []byte) (any, *Replay, error)
	act      func(tr any, state []float64) []float64
}

func harnesses() []trainerHarness {
	return []trainerHarness{
		{
			name: "ddpg",
			make: func(seed int64) any {
				d, err := NewDDPG(DDPGConfig{StateDim: 4, ActionDim: 2, ActorHidden: []int{8, 6}, CriticHidden: [3]int{8, 6, 4}, Seed: seed})
				if err != nil {
					panic(err)
				}
				return d
			},
			step: func(tr any, rp *Replay, batch []Transition) {
				rp.SampleInto(batch)
				tr.(*DDPG).Update(batch)
			},
			dump: func(tr any, rp *Replay) []byte { return tr.(*DDPG).Checkpoint(rp) },
			load: func(data []byte) (any, *Replay, error) { return LoadDDPGCheckpoint(data) },
			act:  func(tr any, state []float64) []float64 { return tr.(*DDPG).Act(state) },
		},
		{
			name: "td3",
			make: func(seed int64) any {
				t3, err := NewTD3(TD3Config{StateDim: 4, ActionDim: 2, ActorHidden: []int{8, 6}, CriticHidden: [3]int{8, 6, 4}, Seed: seed})
				if err != nil {
					panic(err)
				}
				return t3
			},
			step: func(tr any, rp *Replay, batch []Transition) {
				rp.SampleInto(batch)
				tr.(*TD3).Update(batch)
			},
			dump: func(tr any, rp *Replay) []byte { return tr.(*TD3).Checkpoint(rp) },
			load: func(data []byte) (any, *Replay, error) { return LoadTD3Checkpoint(data) },
			act:  func(tr any, state []float64) []float64 { return tr.(*TD3).Act(state) },
		},
		{
			name: "sac",
			make: func(seed int64) any {
				s, err := NewSAC(SACConfig{StateDim: 4, ActionDim: 2, Hidden: []int{8, 6}, CriticHidden: [3]int{8, 6, 4}, Seed: seed})
				if err != nil {
					panic(err)
				}
				return s
			},
			step: func(tr any, rp *Replay, batch []Transition) {
				rp.SampleInto(batch)
				tr.(*SAC).Update(batch)
			},
			dump: func(tr any, rp *Replay) []byte { return tr.(*SAC).Checkpoint(rp) },
			load: func(data []byte) (any, *Replay, error) { return LoadSACCheckpoint(data) },
			act:  func(tr any, state []float64) []float64 { return tr.(*SAC).Act(state) },
		},
		{
			name:     "dqn",
			discrete: true,
			make: func(seed int64) any {
				d, err := NewDQN(DQNConfig{StateDim: 4, NumActions: 5, Hidden: []int{8, 6}, Double: true, Seed: seed})
				if err != nil {
					panic(err)
				}
				return d
			},
			step: func(tr any, rp *Replay, batch []Transition) {
				rp.SampleInto(batch)
				tr.(*DQN).Update(batch)
			},
			dump: func(tr any, rp *Replay) []byte { return tr.(*DQN).Checkpoint(rp) },
			load: func(data []byte) (any, *Replay, error) { return LoadDQNCheckpoint(data) },
			act: func(tr any, state []float64) []float64 {
				return []float64{float64(tr.(*DQN).Act(state))}
			},
		},
	}
}

// TestBitwiseResumeEquivalence is the tentpole acceptance test: for every
// trainer, "train N steps → checkpoint → reload in fresh state → train M
// steps" must be bitwise identical to an uninterrupted N+M-step run — every
// weight, optimizer slot, RNG position, replay slot, and emitted action.
func TestBitwiseResumeEquivalence(t *testing.T) {
	const (
		nSteps    = 25
		mSteps    = 15
		batchSize = 8
		replayCap = 64
	)
	for _, h := range harnesses() {
		t.Run(h.name, func(t *testing.T) {
			actionDim := 2
			if h.discrete {
				actionDim = 5
			}
			mkReplay := func() *Replay {
				rp := NewReplay(replayCap, sim.NewRNG(sim.SubSeed(99, "resume-replay")))
				fillReplay(rp, sim.NewRNG(sim.SubSeed(99, "resume-env")), replayCap, 4, actionDim, h.discrete)
				return rp
			}
			batch := make([]Transition, batchSize)

			// Uninterrupted N+M run.
			ref := h.make(99)
			refRp := mkReplay()
			for i := 0; i < nSteps+mSteps; i++ {
				h.step(ref, refRp, batch)
			}

			// Interrupted run: N steps, checkpoint, reload, M steps.
			a := h.make(99)
			aRp := mkReplay()
			for i := 0; i < nSteps; i++ {
				h.step(a, aRp, batch)
			}
			mid := h.dump(a, aRp)
			b, bRp, err := h.load(mid)
			if err != nil {
				t.Fatalf("loading mid-run checkpoint: %v", err)
			}
			if bRp == nil {
				t.Fatal("checkpoint dropped the replay pool")
			}
			for i := 0; i < mSteps; i++ {
				h.step(b, bRp, batch)
			}

			// Full-state comparison via checkpoint bytes: covers weights,
			// optimizer moments, counters, RNG positions, and replay.
			want := h.dump(ref, refRp)
			got := h.dump(b, bRp)
			if !bytes.Equal(want, got) {
				t.Fatalf("resumed state differs from uninterrupted run (%d vs %d bytes)", len(got), len(want))
			}

			// And the policy actuates identically.
			probe := []float64{0.2, 0.4, 0.6, 0.8}
			wa, ga := h.act(ref, probe), h.act(b, probe)
			for i := range wa {
				if wa[i] != ga[i] {
					t.Fatalf("action[%d]: %v != %v", i, ga[i], wa[i])
				}
			}
		})
	}
}

// TestCheckpointRejectsCorruption flips kind/truncation/weight corruption on
// a real trainer checkpoint and checks for typed failures.
func TestCheckpointRejectsCorruption(t *testing.T) {
	d, err := NewDDPG(DDPGConfig{StateDim: 3, ActionDim: 2, ActorHidden: []int{6}, CriticHidden: [3]int{6, 4, 3}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	good := d.Checkpoint(nil)
	if _, _, err := LoadDDPGCheckpoint(good); err != nil {
		t.Fatalf("pristine checkpoint rejected: %v", err)
	}

	t.Run("wrong kind", func(t *testing.T) {
		if _, _, err := LoadTD3Checkpoint(good); !errors.Is(err, ckpt.ErrKind) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, _, err := LoadDDPGCheckpoint(good[:len(good)-20]); err == nil {
			t.Fatal("accepted truncated checkpoint")
		}
	})
	t.Run("payload corruption fails crc", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(b)/2] ^= 0x10
		if _, _, err := LoadDDPGCheckpoint(b); !errors.Is(err, ckpt.ErrChecksum) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("non-finite weights", func(t *testing.T) {
		d2, _ := NewDDPG(DDPGConfig{StateDim: 3, ActionDim: 2, ActorHidden: []int{6}, CriticHidden: [3]int{6, 4, 3}, Seed: 1})
		d2.Actor.Params()[0].W[0] = math.Inf(1)
		if _, _, err := LoadDDPGCheckpoint(d2.Checkpoint(nil)); !errors.Is(err, ckpt.ErrNonFinite) {
			t.Fatalf("got %v", err)
		}
	})
	t.Run("trailing bytes", func(t *testing.T) {
		payload, err := ckpt.OpenKind(good, ckpt.KindDDPG)
		if err != nil {
			t.Fatal(err)
		}
		bloated := ckpt.Seal(ckpt.KindDDPG, append(append([]byte(nil), payload...), 0xAA))
		if _, _, err := LoadDDPGCheckpoint(bloated); !errors.Is(err, ckpt.ErrMalformed) {
			t.Fatalf("got %v", err)
		}
	})
}

// TestCheckpointEncodeAllocFree proves periodic checkpointing does not
// re-introduce allocations into the train step: a steady-state Update plus a
// full encode+seal into reused buffers performs zero heap allocations.
func TestCheckpointEncodeAllocFree(t *testing.T) {
	d, err := NewDDPG(DDPGConfig{StateDim: 6, ActionDim: 2, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rp := NewReplay(128, sim.NewRNG(sim.SubSeed(7, "alloc-replay")))
	fillReplay(rp, sim.NewRNG(sim.SubSeed(7, "alloc-env")), 128, 6, 2, false)
	batch := make([]Transition, 16)
	var enc ckpt.Enc
	var sealed []byte

	// Warm-up: grow every arena and buffer to steady-state capacity.
	for i := 0; i < 3; i++ {
		rp.SampleInto(batch)
		d.Update(batch)
		enc.Reset()
		d.EncodeCheckpoint(&enc, rp)
		sealed = ckpt.SealInto(sealed[:0], ckpt.KindDDPG, enc.Bytes())
	}

	allocs := testing.AllocsPerRun(20, func() {
		rp.SampleInto(batch)
		d.Update(batch)
		enc.Reset()
		d.EncodeCheckpoint(&enc, rp)
		sealed = ckpt.SealInto(sealed[:0], ckpt.KindDDPG, enc.Bytes())
	})
	if allocs != 0 {
		t.Fatalf("train step + checkpoint encode allocated %.1f times per run", allocs)
	}
	if _, _, err := LoadDDPGCheckpoint(sealed); err != nil {
		t.Fatalf("sealed checkpoint does not load: %v", err)
	}
}

// TestCheckpointRoundTripProperty is the randomized identity property: over
// 100 random seeds (rotating trainer kinds, varying shapes and steps),
// checkpoint → load → checkpoint must reproduce the exact bytes.
func TestCheckpointRoundTripProperty(t *testing.T) {
	hs := harnesses()
	for seed := int64(0); seed < 100; seed++ {
		h := hs[int(seed)%len(hs)]
		rng := sim.NewRNG(sim.SubSeed(seed, "ckpt-prop"))
		steps := 1 + rng.Intn(6)
		actionDim := 2
		if h.discrete {
			actionDim = 5
		}
		tr := h.make(seed)
		rp := NewReplay(32, sim.NewRNG(sim.SubSeed(seed, "prop-replay")))
		fillReplay(rp, rng, 32, 4, actionDim, h.discrete)
		batch := make([]Transition, 4)
		for i := 0; i < steps; i++ {
			h.step(tr, rp, batch)
		}
		first := h.dump(tr, rp)
		tr2, rp2, err := h.load(first)
		if err != nil {
			t.Fatalf("seed %d (%s): load: %v", seed, h.name, err)
		}
		second := h.dump(tr2, rp2)
		if !bytes.Equal(first, second) {
			t.Fatalf("seed %d (%s): re-encoded checkpoint differs", seed, h.name)
		}
	}
}

// TestReplayCodecResumesSampling checks the replay pool's RNG round-trips
// mid-stream: post-restore sample draws match the original exactly.
func TestReplayCodecResumesSampling(t *testing.T) {
	rp := NewReplay(16, sim.NewRNG(5))
	fillReplay(rp, sim.NewRNG(6), 24, 3, 2, false) // overfill to exercise the ring
	dst := make([]Transition, 8)
	rp.SampleInto(dst) // advance the sampler RNG mid-stream

	var e ckpt.Enc
	rp.Encode(&e)
	rp2, err := DecodeReplay(ckpt.NewDec(e.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if rp2.Len() != rp.Len() {
		t.Fatalf("restored length %d != %d", rp2.Len(), rp.Len())
	}
	dst2 := make([]Transition, 8)
	for round := 0; round < 5; round++ {
		rp.SampleInto(dst)
		rp2.SampleInto(dst2)
		for i := range dst {
			if dst[i].Reward != dst2[i].Reward || dst[i].State[0] != dst2[i].State[0] {
				t.Fatalf("round %d sample %d diverged", round, i)
			}
		}
	}

	// Corrupt geometry must be rejected.
	e.Reset()
	e.Int(0) // cap=0
	e.Int(0)
	e.Bool(false)
	e.I64(1)
	e.U64(0)
	e.Int(0)
	if _, err := DecodeReplay(ckpt.NewDec(e.Bytes())); !errors.Is(err, ckpt.ErrMalformed) {
		t.Fatalf("got %v", err)
	}
}

// TestPolicyExportCompat exercises the compat shim: binary SavePolicy output
// loads, and so do legacy JSON snapshots written by the old format.
func TestPolicyExportCompat(t *testing.T) {
	d, err := NewDDPG(DDPGConfig{StateDim: 4, ActionDim: 2, TwoHeadActor: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var bin bytes.Buffer
	if err := d.SavePolicy(&bin); err != nil {
		t.Fatal(err)
	}
	if k, ok := ckpt.PeekKind(bin.Bytes()); !ok || k != ckpt.KindPolicy {
		t.Fatalf("SavePolicy did not write a sealed policy container (kind %v ok %v)", k, ok)
	}

	// Legacy JSON path (what the old SavePolicy wrote).
	var legacy bytes.Buffer
	if err := d.Actor.Save(&legacy); err != nil {
		t.Fatal(err)
	}

	probe := []float64{0.1, 0.2, 0.3, 0.4}
	want := d.Act(probe)
	for _, src := range []*bytes.Buffer{&bin, &legacy} {
		d2, err := NewDDPG(DDPGConfig{StateDim: 4, ActionDim: 2, TwoHeadActor: true, Seed: 8})
		if err != nil {
			t.Fatal(err)
		}
		if err := d2.LoadPolicy(bytes.NewReader(src.Bytes())); err != nil {
			t.Fatal(err)
		}
		got := d2.Act(probe)
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("loaded policy action[%d] %v != %v", i, got[i], want[i])
			}
		}
	}

	// SAC and DQN share the exported entry point.
	s, err := NewSAC(SACConfig{StateDim: 3, ActionDim: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var sb bytes.Buffer
	if err := s.SavePolicy(&sb); err != nil {
		t.Fatal(err)
	}
	s2, _ := NewSAC(SACConfig{StateDim: 3, ActionDim: 2, Seed: 9})
	if err := s2.LoadPolicy(&sb); err != nil {
		t.Fatal(err)
	}
	sp := []float64{0.5, 0.1, 0.9}
	sw, sg := s.Act(sp), s2.Act(sp)
	for i := range sw {
		if sw[i] != sg[i] {
			t.Fatalf("SAC loaded policy action[%d] %v != %v", i, sg[i], sw[i])
		}
	}

	q, err := NewDQN(DQNConfig{StateDim: 3, NumActions: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	var qb bytes.Buffer
	if err := q.SavePolicy(&qb); err != nil {
		t.Fatal(err)
	}
	q2, _ := NewDQN(DQNConfig{StateDim: 3, NumActions: 4, Seed: 10})
	if err := q2.LoadPolicy(&qb); err != nil {
		t.Fatal(err)
	}
	if q.Act(sp) != q2.Act(sp) {
		t.Fatal("DQN loaded policy disagrees with source")
	}

	// Garbage must be rejected by every loader.
	for _, junk := range [][]byte{nil, []byte("DPCKjunk"), []byte("{\"broken\":")} {
		if err := q2.LoadPolicy(bytes.NewReader(junk)); err == nil {
			t.Fatalf("DQN loaded junk %q", junk)
		}
	}
}
