package rl

import (
	"fmt"
	"io"
	"math"

	"github.com/deeppower/deeppower/internal/nn"
	"github.com/deeppower/deeppower/internal/sim"
)

// DDPGConfig parameterizes a DDPG agent. Zero values select the paper's
// defaults (§4.6): a 32-24-16 actor with ReLU hidden activations and a
// sigmoid output bounding actions to [0,1].
type DDPGConfig struct {
	StateDim, ActionDim int
	// ActorHidden defaults to [32, 24, 16] (§4.6).
	ActorHidden []int
	// CriticHidden defaults to [32, 24, 16].
	CriticHidden [3]int
	// ActorLR and CriticLR default to 1e-3.
	ActorLR, CriticLR float64
	// Gamma is the discount factor (default 0.95).
	Gamma float64
	// Tau is the soft target-update coefficient (default 0.01).
	Tau float64
	// TwoHeadActor selects the paper's §4.6 actor topology: a shared
	// fully-connected trunk feeding two separate per-parameter heads
	// (~2k parameters). Off = a plain sequential MLP.
	TwoHeadActor bool
	// Seed drives weight init and replay sampling.
	Seed int64
}

func (c DDPGConfig) withDefaults() (DDPGConfig, error) {
	if c.StateDim <= 0 || c.ActionDim <= 0 {
		return c, fmt.Errorf("rl: DDPG needs positive state/action dims, got %d/%d",
			c.StateDim, c.ActionDim)
	}
	if c.ActorHidden == nil {
		c.ActorHidden = []int{32, 24, 16}
	}
	if c.CriticHidden == [3]int{} {
		c.CriticHidden = [3]int{32, 24, 16}
	}
	if c.ActorLR == 0 {
		c.ActorLR = 1e-3
	}
	if c.CriticLR == 0 {
		c.CriticLR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.95
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return c, fmt.Errorf("rl: gamma %v outside [0,1)", c.Gamma)
	}
	if c.Tau == 0 {
		c.Tau = 0.01
	}
	return c, nil
}

// DDPG is the deep deterministic policy gradient agent of Algorithm 2:
// actor π_θ, critic Q_w, and their targets π_θ', Q_w'.
type DDPG struct {
	cfg          DDPGConfig
	Actor        nn.Network
	ActorTarget  nn.Network
	Critic       *Critic
	CriticTarget *Critic

	actorOpt  *nn.Adam
	criticOpt *nn.Adam

	divergences uint64

	// actorParams caches Actor.Params() so the per-update finiteness scan
	// and snapshot never allocate.
	actorParams []*nn.Dense

	// Pre-update weight snapshot for divergence rollback: flat copies of
	// every live and target layer's (W, B), preallocated once so the
	// steady-state train step stays allocation-free.
	snapLayers []*nn.Dense
	snapW      [][]float64
	snapB      [][]float64

	// arena holds the reused flat minibatch buffers of the batched path.
	arena trainArena
}

// NewDDPG builds an agent.
func NewDDPG(cfg DDPGConfig) (*DDPG, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(full.Seed).Stream("ddpg-init")
	var actor nn.Network
	if full.TwoHeadActor {
		if full.ActionDim != 2 {
			return nil, fmt.Errorf("rl: two-head actor requires ActionDim 2, got %d", full.ActionDim)
		}
		actor = nn.NewPaperActor(full.StateDim, rng)
	} else {
		sizes := append([]int{full.StateDim}, full.ActorHidden...)
		sizes = append(sizes, full.ActionDim)
		actor = nn.NewMLP(sizes, nn.ReLU, nn.Sigmoid, rng)
	}
	critic := NewCritic(full.StateDim, full.ActionDim, full.CriticHidden, rng)
	// Lillicrap et al.'s final-layer initialization: tiny weights keep the
	// sigmoid outputs near 0.5 at the start, avoiding early corner
	// saturation (where the sigmoid's vanishing gradient would freeze the
	// policy).
	for _, l := range actor.Params() {
		if l.Act == nn.Sigmoid {
			shrinkFinalLayer(l, 3e-3)
		}
	}
	shrinkFinalLayer(critic.out, 3e-3)
	d := &DDPG{
		cfg:          full,
		Actor:        actor,
		ActorTarget:  actor.CloneNet(),
		Critic:       critic,
		CriticTarget: critic.Clone(),
	}
	d.actorOpt = nn.NewAdam(actor.Params(), full.ActorLR)
	d.criticOpt = nn.NewAdam(critic.Layers(), full.CriticLR)
	d.criticOpt.MaxGradNorm = 5
	d.actorOpt.MaxGradNorm = 5
	d.rebuildCaches()
	return d, nil
}

// rebuildCaches refreshes the cached parameter lists and the rollback
// snapshot arena after the network objects change (construction,
// LoadPolicy).
func (d *DDPG) rebuildCaches() {
	d.actorParams = d.Actor.Params()
	d.snapLayers = d.snapLayers[:0]
	d.snapLayers = append(d.snapLayers, d.Actor.Params()...)
	d.snapLayers = append(d.snapLayers, d.ActorTarget.Params()...)
	d.snapLayers = append(d.snapLayers, d.Critic.Layers()...)
	d.snapLayers = append(d.snapLayers, d.CriticTarget.Layers()...)
	d.snapW = d.snapW[:0]
	d.snapB = d.snapB[:0]
	for _, l := range d.snapLayers {
		d.snapW = append(d.snapW, make([]float64, len(l.W)))
		d.snapB = append(d.snapB, make([]float64, len(l.B)))
	}
}

// snapshot copies every live and target weight into the preallocated
// rollback arena.
func (d *DDPG) snapshot() {
	for i, l := range d.snapLayers {
		copy(d.snapW[i], l.W)
		copy(d.snapB[i], l.B)
	}
}

// rollback restores the snapshot taken at the top of the failed update and
// rebuilds the optimizers (their moments may carry the NaN).
func (d *DDPG) rollback() {
	for i, l := range d.snapLayers {
		copy(l.W, d.snapW[i])
		copy(l.B, d.snapB[i])
	}
	d.actorOpt = nn.NewAdam(d.Actor.Params(), d.cfg.ActorLR)
	d.criticOpt = nn.NewAdam(d.Critic.Layers(), d.cfg.CriticLR)
	d.actorOpt.MaxGradNorm = 5
	d.criticOpt.MaxGradNorm = 5
	d.divergences++
}

// shrinkFinalLayer rescales a layer's weights to uniform ±limit.
func shrinkFinalLayer(l *nn.Dense, limit float64) {
	var maxAbs float64
	for _, w := range l.W {
		if a := abs(w); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs == 0 {
		return
	}
	scale := limit / maxAbs
	for i := range l.W {
		l.W[i] *= scale
	}
	for i := range l.B {
		l.B[i] *= scale
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Act returns the deterministic policy action for a state, in [0,1]^dim.
// The returned slice is freshly allocated.
func (d *DDPG) Act(state []float64) []float64 {
	out := d.Actor.Forward(state)
	return append([]float64(nil), out...)
}

// ActNoisy returns Act plus exploration noise, clipped to [0,1] (Algorithm 2
// line 5: a_t = π_θ(s_t) + N(µ,δ)).
func (d *DDPG) ActNoisy(state []float64, noise Noise) []float64 {
	a := d.Act(state)
	n := noise.Sample(len(a))
	for i := range a {
		a[i] += n[i]
	}
	return clip01(a)
}

// ActBatch evaluates the deterministic policy for n row-major states packed
// in states ([n×StateDim]) and returns the [n×ActionDim] action rows. The
// result aliases the actor's internal forward buffers — consume it before
// the next Forward/ForwardBatch/Update call. Each row is bit-identical to
// Act on the corresponding state (ForwardBatch preserves per-sample
// accumulation order exactly).
func (d *DDPG) ActBatch(states []float64, n int) []float64 {
	return d.Actor.ForwardBatch(states, n)
}

// Update performs one gradient step on a minibatch (Algorithm 2 lines
// 14–18) and returns the critic and actor losses.
//
// The step runs on the batched nn kernels over reused flat buffers: a
// steady-state call performs zero heap allocations and is bit-identical to
// the per-sample reference path (updatePerSample) — the kernels preserve
// per-sample accumulation order exactly.
//
// Update is divergence-guarded: if the step produces a non-finite loss or
// non-finite weights anywhere (possible when faulted telemetry slips a
// pathological transition into replay), the step is rolled back to the
// pre-update weights, the optimizers are rebuilt (their moments may carry
// the NaN), the divergence counter is bumped, and the batch is skipped.
func (d *DDPG) Update(batch []Transition) (criticLoss, actorLoss float64) {
	if len(batch) == 0 {
		return 0, 0
	}
	n := len(batch)
	d.snapshot()
	inv := 1 / float64(n)
	ar := &d.arena
	ar.load(batch, d.cfg.StateDim, d.cfg.ActionDim, d.cfg.ActionDim)

	// Critic: minimize Σ (y_i - Q_w(s_i, a_i))² with
	// y_i = r_i + γ·Q_w'(s'_i, π_θ'(s'_i)). Targets for terminal samples
	// are computed batch-wide but masked out below (no RNG is involved, so
	// the discarded work cannot perturb determinism).
	a2 := d.ActorTarget.ForwardBatch(ar.next, n)
	q2 := d.CriticTarget.ForwardBatch(ar.next, a2, n)
	for i := 0; i < n; i++ {
		y := ar.rewards[i]
		if !ar.done[i] {
			y += d.cfg.Gamma * q2[i]
		}
		ar.y[i] = y
	}
	d.Critic.ZeroGrad()
	q := d.Critic.ForwardBatch(ar.states, ar.actions, n)
	for i := 0; i < n; i++ {
		diff := q[i] - ar.y[i]
		criticLoss += diff * diff * inv
		ar.dq[i] = 2 * diff * inv
	}
	d.Critic.BackwardBatch(ar.dq, n)
	d.criticOpt.Step()

	// Actor: maximize Σ Q_w(s_i, π_θ(s_i)) — i.e. descend on L_a = -Q.
	d.Actor.ZeroGrad()
	a := d.Actor.ForwardBatch(ar.states, n)
	q = d.Critic.ForwardBatch(ar.states, a, n)
	for i := 0; i < n; i++ {
		actorLoss += -q[i] * inv
		ar.dq[i] = -inv // dL_a/dQ per sample
	}
	_, da := d.Critic.BackwardBatch(ar.dq, n)
	d.Actor.BackwardBatch(da, n)
	// The actor pass accumulated unwanted critic gradients; drop them.
	d.Critic.ZeroGrad()
	d.actorOpt.Step()

	// Soft-update targets.
	d.ActorTarget.SoftUpdateNet(d.Actor, d.cfg.Tau)
	d.CriticTarget.SoftUpdateFrom(d.Critic, d.cfg.Tau)

	if !isFinite(criticLoss) || !isFinite(actorLoss) || !d.weightsFinite() {
		d.rollback()
		return 0, 0
	}
	return criticLoss, actorLoss
}

// updatePerSample is the pre-batching reference implementation: one
// transition at a time through all four networks, with allocating snapshot
// clones. It is retained as the baseline for BenchmarkTrainStep and for the
// bit-identity tests proving the batched Update changed speed, not
// numerics.
func (d *DDPG) updatePerSample(batch []Transition) (criticLoss, actorLoss float64) {
	if len(batch) == 0 {
		return 0, 0
	}
	// Snapshot for rollback; the networks are ~2k parameters, so this is
	// cheap next to the gradient pass itself.
	snapActor, snapActorT := d.Actor.CloneNet(), d.ActorTarget.CloneNet()
	snapCritic, snapCriticT := d.Critic.Clone(), d.CriticTarget.Clone()
	inv := 1 / float64(len(batch))

	d.Critic.ZeroGrad()
	for _, tr := range batch {
		y := tr.Reward
		if !tr.Done {
			a2 := d.ActorTarget.Forward(tr.NextState)
			y += d.cfg.Gamma * d.CriticTarget.Forward(tr.NextState, a2)
		}
		q := d.Critic.Forward(tr.State, tr.Action)
		diff := q - y
		criticLoss += diff * diff * inv
		d.Critic.Backward(2 * diff * inv)
	}
	d.criticOpt.Step()

	d.Actor.ZeroGrad()
	for _, tr := range batch {
		a := d.Actor.Forward(tr.State)
		aCopy := append([]float64(nil), a...)
		q := d.Critic.Forward(tr.State, aCopy)
		actorLoss += -q * inv
		_, da := d.Critic.Backward(-inv) // dL_a/da through the critic
		d.Actor.Backward(da)
	}
	d.Critic.ZeroGrad()
	d.actorOpt.Step()

	d.ActorTarget.SoftUpdateNet(d.Actor, d.cfg.Tau)
	d.CriticTarget.SoftUpdateFrom(d.Critic, d.cfg.Tau)

	if !isFinite(criticLoss) || !isFinite(actorLoss) || !d.weightsFinite() {
		d.Actor, d.ActorTarget = snapActor, snapActorT
		d.Critic, d.CriticTarget = snapCritic, snapCriticT
		d.actorOpt = nn.NewAdam(d.Actor.Params(), d.cfg.ActorLR)
		d.criticOpt = nn.NewAdam(d.Critic.Layers(), d.cfg.CriticLR)
		d.actorOpt.MaxGradNorm = 5
		d.criticOpt.MaxGradNorm = 5
		d.divergences++
		d.rebuildCaches()
		return 0, 0
	}
	return criticLoss, actorLoss
}

// Divergences reports how many updates were rolled back for producing
// non-finite losses or weights.
func (d *DDPG) Divergences() uint64 { return d.divergences }

func isFinite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// weightsFinite scans every parameter of the live networks using the cached
// layer lists (no allocation on the hot path).
func (d *DDPG) weightsFinite() bool {
	for _, l := range d.actorParams {
		if !denseFinite(l) {
			return false
		}
	}
	for _, l := range d.Critic.Layers() {
		if !denseFinite(l) {
			return false
		}
	}
	return true
}

func denseFinite(l *nn.Dense) bool {
	for _, w := range l.W {
		if !isFinite(w) {
			return false
		}
	}
	for _, b := range l.B {
		if !isFinite(b) {
			return false
		}
	}
	return true
}

// QValue exposes the critic's estimate for diagnostics.
func (d *DDPG) QValue(state, action []float64) float64 {
	return d.Critic.Forward(state, action)
}

// NumParams reports actor parameter count (the paper quotes ~2096, §5.5).
func (d *DDPG) NumParams() int { return d.Actor.NumParams() }

// SavePolicy writes the trained actor network as a sealed KindPolicy
// container (crash-detectable: magic + CRC; see internal/ckpt).
func (d *DDPG) SavePolicy(w io.Writer) error { return savePolicyNet(w, d.Actor) }

// LoadPolicy replaces the actor (and its target) with a saved network
// (either topology; binary containers and legacy JSON snapshots both load).
func (d *DDPG) LoadPolicy(r io.Reader) error {
	m, err := loadPolicyNet(r)
	if err != nil {
		return err
	}
	if m.InDim() != d.cfg.StateDim || m.OutDim() != d.cfg.ActionDim {
		return fmt.Errorf("rl: loaded policy is %d→%d, agent expects %d→%d",
			m.InDim(), m.OutDim(), d.cfg.StateDim, d.cfg.ActionDim)
	}
	d.Actor = m
	d.ActorTarget = m.CloneNet()
	d.actorOpt = nn.NewAdam(d.Actor.Params(), d.cfg.ActorLR)
	d.rebuildCaches()
	return nil
}
