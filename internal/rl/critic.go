package rl

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/nn"
	"github.com/deeppower/deeppower/internal/sim"
)

// Critic is the paper's Q-network (§4.6): the state passes through a first
// hidden layer, its output is concatenated with the action, and two further
// fully-connected layers produce the scalar Q value.
type Critic struct {
	l1  *nn.Dense // stateDim → h1 (ReLU)
	l2  *nn.Dense // h1+actionDim → h2 (ReLU)
	l3  *nn.Dense // h2 → h3 (ReLU)
	out *nn.Dense // h3 → 1 (identity)

	stateDim, actionDim int
	concat              []float64
	daction             []float64   // per-sample Backward scratch
	dqScratch           [1]float64  // per-sample Backward dq seed
	layers              []*nn.Dense // cached Layers() result

	// Batched-path scratch ([n×dim] row-major), grown on demand and reused
	// so a steady-state batched train step never allocates.
	concatB  []float64
	dh1B     []float64
	dactionB []float64
	bn       int
}

// NewCritic builds a critic with hidden sizes (h1, h2, h3).
func NewCritic(stateDim, actionDim int, hidden [3]int, rng *sim.RNG) *Critic {
	c := &Critic{
		l1:        nn.NewDense(stateDim, hidden[0], nn.ReLU, rng),
		l2:        nn.NewDense(hidden[0]+actionDim, hidden[1], nn.ReLU, rng),
		l3:        nn.NewDense(hidden[1], hidden[2], nn.ReLU, rng),
		out:       nn.NewDense(hidden[2], 1, nn.Identity, rng),
		stateDim:  stateDim,
		actionDim: actionDim,
		concat:    make([]float64, hidden[0]+actionDim),
		daction:   make([]float64, actionDim),
	}
	c.layers = []*nn.Dense{c.l1, c.l2, c.l3, c.out}
	return c
}

// Forward returns Q(s, a) and caches activations for Backward.
func (c *Critic) Forward(state, action []float64) float64 {
	h1 := c.l1.Forward(state)
	copy(c.concat, h1)
	copy(c.concat[len(h1):], action)
	h2 := c.l2.Forward(c.concat)
	h3 := c.l3.Forward(h2)
	return c.out.Forward(h3)[0]
}

// Backward propagates dL/dQ of the most recent Forward, accumulating weight
// gradients, and returns (dL/dstate, dL/daction). Both slices are
// critic-owned scratch, overwritten by the next Backward call.
func (c *Critic) Backward(dq float64) (dstate, daction []float64) {
	c.dqScratch[0] = dq
	dh3 := c.out.Backward(c.dqScratch[:])
	dh2 := c.l3.Backward(dh3)
	dconcat := c.l2.Backward(dh2)
	h1Dim := len(c.concat) - c.actionDim
	// Copy the action slice out before l1.Backward reuses dconcat's layer
	// scratch (dconcat aliases l2's dx buffer, which survives, but keeping a
	// critic-owned copy preserves the old return-value independence).
	copy(c.daction, dconcat[h1Dim:])
	dstate = c.l1.Backward(dconcat[:h1Dim])
	return dstate, c.daction
}

// ForwardBatch computes Q(s, a) for n row-major [n×stateDim] states and
// [n×actionDim] actions, caching activations for BackwardBatch. The
// returned [n] slice aliases an internal buffer. Bit-identical to n Forward
// calls (see nn.Dense.ForwardBatch).
func (c *Critic) ForwardBatch(states, actions []float64, n int) []float64 {
	h1 := c.l1.ForwardBatch(states, n)
	h1Dim := c.l1.Out
	cw := h1Dim + c.actionDim
	if cap(c.concatB) < n*cw {
		c.concatB = make([]float64, n*cw)
		c.dh1B = make([]float64, n*h1Dim)
		c.dactionB = make([]float64, n*c.actionDim)
	}
	c.concatB = c.concatB[:n*cw]
	c.dh1B = c.dh1B[:n*h1Dim]
	c.dactionB = c.dactionB[:n*c.actionDim]
	c.bn = n
	for b := 0; b < n; b++ {
		row := c.concatB[b*cw : (b+1)*cw]
		copy(row, h1[b*h1Dim:(b+1)*h1Dim])
		copy(row[h1Dim:], actions[b*c.actionDim:(b+1)*c.actionDim])
	}
	h2 := c.l2.ForwardBatch(c.concatB, n)
	h3 := c.l3.ForwardBatch(h2, n)
	return c.out.ForwardBatch(h3, n)
}

// BackwardBatch propagates dL/dQ for the most recent ForwardBatch (dq is
// [n]), accumulating weight gradients in ascending sample order, and
// returns ([n×stateDim], [n×actionDim]) input gradients aliasing internal
// scratch. Bit-identical to n Forward/Backward pairs.
func (c *Critic) BackwardBatch(dq []float64, n int) (dstate, daction []float64) {
	if n != c.bn {
		panic(fmt.Sprintf("rl: Critic.BackwardBatch rows %d, last ForwardBatch had %d", n, c.bn))
	}
	dh3 := c.out.BackwardBatch(dq, n)
	dh2 := c.l3.BackwardBatch(dh3, n)
	dconcat := c.l2.BackwardBatch(dh2, n)
	h1Dim := c.l1.Out
	cw := h1Dim + c.actionDim
	for b := 0; b < n; b++ {
		row := dconcat[b*cw : (b+1)*cw]
		copy(c.dh1B[b*h1Dim:], row[:h1Dim])
		copy(c.dactionB[b*c.actionDim:], row[h1Dim:])
	}
	dstate = c.l1.BackwardBatch(c.dh1B, n)
	return dstate, c.dactionB
}

// Layers exposes the trainable layers for optimizers. The slice is cached
// at construction so hot paths (soft updates, finiteness sweeps) don't
// allocate.
func (c *Critic) Layers() []*nn.Dense { return c.layers }

// ZeroGrad clears accumulated gradients.
func (c *Critic) ZeroGrad() {
	for _, l := range c.Layers() {
		l.ZeroGrad()
	}
}

// NumParams returns the total trainable parameter count.
func (c *Critic) NumParams() int {
	n := 0
	for _, l := range c.Layers() {
		n += l.NumParams()
	}
	return n
}

// Clone deep-copies the critic.
func (c *Critic) Clone() *Critic {
	cc := &Critic{
		l1: c.l1.Clone(), l2: c.l2.Clone(), l3: c.l3.Clone(), out: c.out.Clone(),
		stateDim: c.stateDim, actionDim: c.actionDim,
		concat:  make([]float64, len(c.concat)),
		daction: make([]float64, c.actionDim),
	}
	cc.layers = []*nn.Dense{cc.l1, cc.l2, cc.l3, cc.out}
	return cc
}

// SoftUpdateFrom blends src into this critic: θ ← τ·θ_src + (1-τ)·θ.
func (c *Critic) SoftUpdateFrom(src *Critic, tau float64) {
	mine, theirs := c.Layers(), src.Layers()
	for i := range mine {
		mine[i].SoftUpdateFrom(theirs[i], tau)
	}
}
