package rl

import (
	"github.com/deeppower/deeppower/internal/nn"
	"github.com/deeppower/deeppower/internal/sim"
)

// Critic is the paper's Q-network (§4.6): the state passes through a first
// hidden layer, its output is concatenated with the action, and two further
// fully-connected layers produce the scalar Q value.
type Critic struct {
	l1  *nn.Dense // stateDim → h1 (ReLU)
	l2  *nn.Dense // h1+actionDim → h2 (ReLU)
	l3  *nn.Dense // h2 → h3 (ReLU)
	out *nn.Dense // h3 → 1 (identity)

	stateDim, actionDim int
	concat              []float64
}

// NewCritic builds a critic with hidden sizes (h1, h2, h3).
func NewCritic(stateDim, actionDim int, hidden [3]int, rng *sim.RNG) *Critic {
	return &Critic{
		l1:        nn.NewDense(stateDim, hidden[0], nn.ReLU, rng),
		l2:        nn.NewDense(hidden[0]+actionDim, hidden[1], nn.ReLU, rng),
		l3:        nn.NewDense(hidden[1], hidden[2], nn.ReLU, rng),
		out:       nn.NewDense(hidden[2], 1, nn.Identity, rng),
		stateDim:  stateDim,
		actionDim: actionDim,
		concat:    make([]float64, hidden[0]+actionDim),
	}
}

// Forward returns Q(s, a) and caches activations for Backward.
func (c *Critic) Forward(state, action []float64) float64 {
	h1 := c.l1.Forward(state)
	copy(c.concat, h1)
	copy(c.concat[len(h1):], action)
	h2 := c.l2.Forward(c.concat)
	h3 := c.l3.Forward(h2)
	return c.out.Forward(h3)[0]
}

// Backward propagates dL/dQ of the most recent Forward, accumulating weight
// gradients, and returns (dL/dstate, dL/daction).
func (c *Critic) Backward(dq float64) (dstate, daction []float64) {
	dh3 := c.out.Backward([]float64{dq})
	dh2 := c.l3.Backward(dh3)
	dconcat := c.l2.Backward(dh2)
	h1Dim := len(c.concat) - c.actionDim
	dstate = c.l1.Backward(dconcat[:h1Dim])
	daction = append([]float64(nil), dconcat[h1Dim:]...)
	return dstate, daction
}

// Layers exposes the trainable layers for optimizers.
func (c *Critic) Layers() []*nn.Dense {
	return []*nn.Dense{c.l1, c.l2, c.l3, c.out}
}

// ZeroGrad clears accumulated gradients.
func (c *Critic) ZeroGrad() {
	for _, l := range c.Layers() {
		l.ZeroGrad()
	}
}

// NumParams returns the total trainable parameter count.
func (c *Critic) NumParams() int {
	n := 0
	for _, l := range c.Layers() {
		n += l.NumParams()
	}
	return n
}

// Clone deep-copies the critic.
func (c *Critic) Clone() *Critic {
	return &Critic{
		l1: c.l1.Clone(), l2: c.l2.Clone(), l3: c.l3.Clone(), out: c.out.Clone(),
		stateDim: c.stateDim, actionDim: c.actionDim,
		concat: make([]float64, len(c.concat)),
	}
}

// SoftUpdateFrom blends src into this critic: θ ← τ·θ_src + (1-τ)·θ.
func (c *Critic) SoftUpdateFrom(src *Critic, tau float64) {
	mine, theirs := c.Layers(), src.Layers()
	for i := range mine {
		mine[i].SoftUpdateFrom(theirs[i], tau)
	}
}
