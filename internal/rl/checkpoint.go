package rl

import (
	"bytes"
	"fmt"
	"io"

	"github.com/deeppower/deeppower/internal/ckpt"
	"github.com/deeppower/deeppower/internal/nn"
	"github.com/deeppower/deeppower/internal/sim"
)

// This file implements full trainer checkpoints: every live and target
// network, optimizer moments, internal RNG positions, counters, and
// (optionally) the replay pool, so that "train N steps → checkpoint →
// restart → train M steps" is bitwise identical to an uninterrupted N+M run.
//
// Each payload starts with the trainer's resolved config (the shape header),
// so the loader can rebuild the exact object graph before installing the
// serialized weights. Encoding into a reused ckpt.Enc is allocation-free at
// steady state; decoding validates shapes, chaining, and finiteness at every
// layer and fails with typed ckpt errors.

// --- shared pieces ---------------------------------------------------------

// encodeCritic appends the critic's four layers. Shape comes from the
// trainer config; chaining is re-validated on decode.
func encodeCritic(e *ckpt.Enc, c *Critic) {
	nn.EncodeDense(e, c.l1)
	nn.EncodeDense(e, c.l2)
	nn.EncodeDense(e, c.l3)
	nn.EncodeDense(e, c.out)
}

// decodeCritic reads four layers and rebuilds a critic for the given
// state/action dims, validating the concat wiring and hidden sizes.
func decodeCritic(dec *ckpt.Dec, stateDim, actionDim int, hidden [3]int) (*Critic, error) {
	l1, err := nn.DecodeDense(dec, stateDim)
	if err != nil {
		return nil, err
	}
	l2, err := nn.DecodeDense(dec, l1.Out+actionDim)
	if err != nil {
		return nil, err
	}
	l3, err := nn.DecodeDense(dec, l2.Out)
	if err != nil {
		return nil, err
	}
	out, err := nn.DecodeDense(dec, l3.Out)
	if err != nil {
		return nil, err
	}
	if l1.Out != hidden[0] || l2.Out != hidden[1] || l3.Out != hidden[2] || out.Out != 1 {
		return nil, fmt.Errorf("%w: critic hidden sizes (%d,%d,%d,%d) do not match config (%d,%d,%d,1)",
			ckpt.ErrMalformed, l1.Out, l2.Out, l3.Out, out.Out, hidden[0], hidden[1], hidden[2])
	}
	c := &Critic{
		l1: l1, l2: l2, l3: l3, out: out,
		stateDim:  stateDim,
		actionDim: actionDim,
		concat:    make([]float64, l1.Out+actionDim),
		daction:   make([]float64, actionDim),
	}
	c.layers = []*nn.Dense{c.l1, c.l2, c.l3, c.out}
	return c, nil
}

// decodeActorNet reads a network and checks its interface dims.
func decodeActorNet(dec *ckpt.Dec, inDim, outDim int) (nn.Network, error) {
	n, err := nn.DecodeNetwork(dec)
	if err != nil {
		return nil, err
	}
	if n.InDim() != inDim || n.OutDim() != outDim {
		return nil, fmt.Errorf("%w: network is %d→%d, config declares %d→%d",
			ckpt.ErrMalformed, n.InDim(), n.OutDim(), inDim, outDim)
	}
	return n, nil
}

func encodeOptionalReplay(e *ckpt.Enc, rp *Replay) {
	if rp == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	rp.Encode(e)
}

func decodeOptionalReplay(dec *ckpt.Dec) (*Replay, error) {
	present := dec.Bool()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if !present {
		return nil, nil
	}
	return DecodeReplay(dec)
}

// restoredStream rebuilds a trainer's named RNG substream at a serialized
// draw position (see sim.NewRNGAt).
func restoredStream(seed int64, name string, draws uint64) *sim.RNG {
	return sim.NewRNGAt(sim.SubSeed(seed, name), draws)
}

// --- replay ----------------------------------------------------------------

// Encode appends the pool's complete state: geometry, sampler RNG position,
// and every stored transition. Transition values round-trip exactly (bit
// patterns), including any non-finite values faulted telemetry may have
// injected — the divergence guards handle those at train time, as they did
// in the original run.
func (rp *Replay) Encode(e *ckpt.Enc) {
	e.Int(rp.cap)
	e.Int(rp.next)
	e.Bool(rp.full)
	e.I64(rp.rng.Seed())
	e.U64(rp.rng.DrawCount())
	e.Int(len(rp.buf))
	for _, t := range rp.buf {
		e.F64s(t.State)
		e.F64s(t.Action)
		e.F64(t.Reward)
		e.F64s(t.NextState)
		e.Bool(t.Done)
	}
}

// DecodeReplay reads a pool written by Replay.Encode, rebuilding the sampler
// RNG mid-stream so subsequent minibatch draws match the original run.
func DecodeReplay(dec *ckpt.Dec) (*Replay, error) {
	capacity := dec.Int()
	next := dec.Int()
	full := dec.Bool()
	seed := dec.I64()
	draws := dec.U64()
	n := dec.Int()
	if err := dec.Err(); err != nil {
		return nil, err
	}
	if capacity <= 0 || n < 0 || n > capacity || next < 0 || next >= capacity {
		return nil, fmt.Errorf("%w: replay geometry cap=%d len=%d next=%d",
			ckpt.ErrMalformed, capacity, n, next)
	}
	rp := &Replay{
		buf:  make([]Transition, 0, capacity),
		cap:  capacity,
		next: next,
		full: full,
		// The write cursor is a telemetry counter (experience throughput),
		// not training state; restarts resume it from the retained count.
		pushed: uint64(n),
		rng:    sim.NewRNGAt(seed, draws),
	}
	for i := 0; i < n; i++ {
		t := Transition{
			State:     dec.F64s(),
			Action:    dec.F64s(),
			Reward:    dec.F64(),
			NextState: dec.F64s(),
			Done:      dec.Bool(),
		}
		if err := dec.Err(); err != nil {
			return nil, err
		}
		rp.buf = append(rp.buf, t)
	}
	return rp, nil
}

// --- policy export (compat shim) ------------------------------------------

// savePolicyNet writes net as a sealed KindPolicy container — the unit the
// registry stores and the serving path consumes.
func savePolicyNet(w io.Writer, net nn.Network) error {
	var e ckpt.Enc
	nn.EncodeNetwork(&e, net)
	if _, err := w.Write(ckpt.Seal(ckpt.KindPolicy, e.Bytes())); err != nil {
		return fmt.Errorf("rl: writing policy: %w", err)
	}
	return nil
}

// loadPolicyNet reads an exported policy: the sealed binary format, or —
// compatibility shim — the legacy JSON snapshot the old SavePolicy wrote.
func loadPolicyNet(r io.Reader) (nn.Network, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("rl: reading policy: %w", err)
	}
	if _, ok := ckpt.PeekKind(data); !ok {
		return nn.LoadAny(bytes.NewReader(data))
	}
	payload, err := ckpt.OpenKind(data, ckpt.KindPolicy)
	if err != nil {
		return nil, err
	}
	return DecodePolicy(payload)
}

// DecodePolicy decodes the payload of a KindPolicy container into a network
// (for callers holding an already-opened container, e.g. the registry path).
func DecodePolicy(payload []byte) (nn.Network, error) {
	dec := ckpt.NewDec(payload)
	net, err := nn.DecodeNetwork(dec)
	if err != nil {
		return nil, err
	}
	if err := dec.Finish(); err != nil {
		return nil, err
	}
	return net, nil
}

// EncodePolicy seals a network as a KindPolicy container — the inverse of
// DecodePolicy.
func EncodePolicy(net nn.Network) []byte {
	var e ckpt.Enc
	nn.EncodeNetwork(&e, net)
	return ckpt.Seal(ckpt.KindPolicy, e.Bytes())
}

// --- DDPG ------------------------------------------------------------------

// EncodeCheckpoint appends the agent's complete training state. Pass the
// replay pool to make the checkpoint fully resumable; nil omits it.
func (d *DDPG) EncodeCheckpoint(e *ckpt.Enc, replay *Replay) {
	c := d.cfg
	e.Int(c.StateDim)
	e.Int(c.ActionDim)
	e.Ints(c.ActorHidden)
	e.Int(c.CriticHidden[0])
	e.Int(c.CriticHidden[1])
	e.Int(c.CriticHidden[2])
	e.F64(c.ActorLR)
	e.F64(c.CriticLR)
	e.F64(c.Gamma)
	e.F64(c.Tau)
	e.Bool(c.TwoHeadActor)
	e.I64(c.Seed)
	nn.EncodeNetwork(e, d.Actor)
	nn.EncodeNetwork(e, d.ActorTarget)
	encodeCritic(e, d.Critic)
	encodeCritic(e, d.CriticTarget)
	d.actorOpt.EncodeState(e)
	d.criticOpt.EncodeState(e)
	e.U64(d.divergences)
	encodeOptionalReplay(e, replay)
}

// Checkpoint returns the sealed KindDDPG container.
func (d *DDPG) Checkpoint(replay *Replay) []byte {
	var e ckpt.Enc
	d.EncodeCheckpoint(&e, replay)
	return ckpt.Seal(ckpt.KindDDPG, e.Bytes())
}

// LoadDDPGCheckpoint rebuilds an agent (and its replay pool, when the
// checkpoint carries one) from a sealed container. Training resumed from the
// result is bitwise identical to the uninterrupted run.
func LoadDDPGCheckpoint(data []byte) (*DDPG, *Replay, error) {
	payload, err := ckpt.OpenKind(data, ckpt.KindDDPG)
	if err != nil {
		return nil, nil, err
	}
	dec := ckpt.NewDec(payload)
	var cfg DDPGConfig
	cfg.StateDim = dec.Int()
	cfg.ActionDim = dec.Int()
	cfg.ActorHidden = dec.Ints()
	cfg.CriticHidden[0] = dec.Int()
	cfg.CriticHidden[1] = dec.Int()
	cfg.CriticHidden[2] = dec.Int()
	cfg.ActorLR = dec.FiniteF64()
	cfg.CriticLR = dec.FiniteF64()
	cfg.Gamma = dec.FiniteF64()
	cfg.Tau = dec.FiniteF64()
	cfg.TwoHeadActor = dec.Bool()
	cfg.Seed = dec.I64()
	if err := dec.Err(); err != nil {
		return nil, nil, err
	}
	d, err := NewDDPG(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: checkpoint config rejected: %v", ckpt.ErrMalformed, err)
	}
	if d.Actor, err = decodeActorNet(dec, cfg.StateDim, cfg.ActionDim); err != nil {
		return nil, nil, err
	}
	if d.ActorTarget, err = decodeActorNet(dec, cfg.StateDim, cfg.ActionDim); err != nil {
		return nil, nil, err
	}
	if d.Critic, err = decodeCritic(dec, cfg.StateDim, cfg.ActionDim, d.cfg.CriticHidden); err != nil {
		return nil, nil, err
	}
	if d.CriticTarget, err = decodeCritic(dec, cfg.StateDim, cfg.ActionDim, d.cfg.CriticHidden); err != nil {
		return nil, nil, err
	}
	d.actorOpt = nn.NewAdam(d.Actor.Params(), d.cfg.ActorLR)
	d.criticOpt = nn.NewAdam(d.Critic.Layers(), d.cfg.CriticLR)
	if err := d.actorOpt.RestoreState(dec); err != nil {
		return nil, nil, err
	}
	if err := d.criticOpt.RestoreState(dec); err != nil {
		return nil, nil, err
	}
	d.divergences = dec.U64()
	replay, err := decodeOptionalReplay(dec)
	if err != nil {
		return nil, nil, err
	}
	if err := dec.Finish(); err != nil {
		return nil, nil, err
	}
	d.rebuildCaches()
	return d, replay, nil
}

// --- TD3 -------------------------------------------------------------------

// EncodeCheckpoint appends the agent's complete training state, including
// the target-smoothing RNG position and the policy-delay counter.
func (t *TD3) EncodeCheckpoint(e *ckpt.Enc, replay *Replay) {
	c := t.cfg
	e.Int(c.StateDim)
	e.Int(c.ActionDim)
	e.Ints(c.ActorHidden)
	e.Int(c.CriticHidden[0])
	e.Int(c.CriticHidden[1])
	e.Int(c.CriticHidden[2])
	e.F64(c.ActorLR)
	e.F64(c.CriticLR)
	e.F64(c.Gamma)
	e.F64(c.Tau)
	e.Int(c.PolicyDelay)
	e.F64(c.TargetNoise)
	e.F64(c.NoiseClip)
	e.I64(c.Seed)
	nn.EncodeNetwork(e, t.Actor)
	nn.EncodeNetwork(e, t.ActorTarget)
	encodeCritic(e, t.Critic1)
	encodeCritic(e, t.Critic2)
	encodeCritic(e, t.Target1)
	encodeCritic(e, t.Target2)
	t.actorOpt.EncodeState(e)
	t.c1Opt.EncodeState(e)
	t.c2Opt.EncodeState(e)
	e.Int(t.updates)
	e.U64(t.rng.DrawCount())
	encodeOptionalReplay(e, replay)
}

// Checkpoint returns the sealed KindTD3 container.
func (t *TD3) Checkpoint(replay *Replay) []byte {
	var e ckpt.Enc
	t.EncodeCheckpoint(&e, replay)
	return ckpt.Seal(ckpt.KindTD3, e.Bytes())
}

// LoadTD3Checkpoint rebuilds an agent from a sealed container.
func LoadTD3Checkpoint(data []byte) (*TD3, *Replay, error) {
	payload, err := ckpt.OpenKind(data, ckpt.KindTD3)
	if err != nil {
		return nil, nil, err
	}
	dec := ckpt.NewDec(payload)
	var cfg TD3Config
	cfg.StateDim = dec.Int()
	cfg.ActionDim = dec.Int()
	cfg.ActorHidden = dec.Ints()
	cfg.CriticHidden[0] = dec.Int()
	cfg.CriticHidden[1] = dec.Int()
	cfg.CriticHidden[2] = dec.Int()
	cfg.ActorLR = dec.FiniteF64()
	cfg.CriticLR = dec.FiniteF64()
	cfg.Gamma = dec.FiniteF64()
	cfg.Tau = dec.FiniteF64()
	cfg.PolicyDelay = dec.Int()
	cfg.TargetNoise = dec.FiniteF64()
	cfg.NoiseClip = dec.FiniteF64()
	cfg.Seed = dec.I64()
	if err := dec.Err(); err != nil {
		return nil, nil, err
	}
	t, err := NewTD3(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: checkpoint config rejected: %v", ckpt.ErrMalformed, err)
	}
	if t.Actor, err = decodeActorNet(dec, cfg.StateDim, cfg.ActionDim); err != nil {
		return nil, nil, err
	}
	if t.ActorTarget, err = decodeActorNet(dec, cfg.StateDim, cfg.ActionDim); err != nil {
		return nil, nil, err
	}
	hid := t.cfg.CriticHidden
	if t.Critic1, err = decodeCritic(dec, cfg.StateDim, cfg.ActionDim, hid); err != nil {
		return nil, nil, err
	}
	if t.Critic2, err = decodeCritic(dec, cfg.StateDim, cfg.ActionDim, hid); err != nil {
		return nil, nil, err
	}
	if t.Target1, err = decodeCritic(dec, cfg.StateDim, cfg.ActionDim, hid); err != nil {
		return nil, nil, err
	}
	if t.Target2, err = decodeCritic(dec, cfg.StateDim, cfg.ActionDim, hid); err != nil {
		return nil, nil, err
	}
	t.actorOpt = nn.NewAdam(t.Actor.Params(), t.cfg.ActorLR)
	t.c1Opt = nn.NewAdam(t.Critic1.Layers(), t.cfg.CriticLR)
	t.c2Opt = nn.NewAdam(t.Critic2.Layers(), t.cfg.CriticLR)
	if err := t.actorOpt.RestoreState(dec); err != nil {
		return nil, nil, err
	}
	if err := t.c1Opt.RestoreState(dec); err != nil {
		return nil, nil, err
	}
	if err := t.c2Opt.RestoreState(dec); err != nil {
		return nil, nil, err
	}
	updates := dec.Int()
	draws := dec.U64()
	replay, err := decodeOptionalReplay(dec)
	if err != nil {
		return nil, nil, err
	}
	if err := dec.Finish(); err != nil {
		return nil, nil, err
	}
	if updates < 0 {
		return nil, nil, fmt.Errorf("%w: negative update counter %d", ckpt.ErrMalformed, updates)
	}
	t.updates = updates
	t.rng = restoredStream(t.cfg.Seed, "td3-smooth", draws)
	return t, replay, nil
}

// --- SAC -------------------------------------------------------------------

// EncodeCheckpoint appends the agent's complete training state, including
// the reparameterization-sampling RNG position.
func (s *SAC) EncodeCheckpoint(e *ckpt.Enc, replay *Replay) {
	c := s.cfg
	e.Int(c.StateDim)
	e.Int(c.ActionDim)
	e.Ints(c.Hidden)
	e.Int(c.CriticHidden[0])
	e.Int(c.CriticHidden[1])
	e.Int(c.CriticHidden[2])
	e.F64(c.LR)
	e.F64(c.Gamma)
	e.F64(c.Tau)
	e.F64(c.Alpha)
	e.I64(c.Seed)
	nn.EncodeNetwork(e, s.Actor)
	encodeCritic(e, s.Critic1)
	encodeCritic(e, s.Critic2)
	encodeCritic(e, s.Target1)
	encodeCritic(e, s.Target2)
	s.actorOpt.EncodeState(e)
	s.c1Opt.EncodeState(e)
	s.c2Opt.EncodeState(e)
	e.U64(s.rng.DrawCount())
	encodeOptionalReplay(e, replay)
}

// Checkpoint returns the sealed KindSAC container.
func (s *SAC) Checkpoint(replay *Replay) []byte {
	var e ckpt.Enc
	s.EncodeCheckpoint(&e, replay)
	return ckpt.Seal(ckpt.KindSAC, e.Bytes())
}

// LoadSACCheckpoint rebuilds an agent from a sealed container.
func LoadSACCheckpoint(data []byte) (*SAC, *Replay, error) {
	payload, err := ckpt.OpenKind(data, ckpt.KindSAC)
	if err != nil {
		return nil, nil, err
	}
	dec := ckpt.NewDec(payload)
	var cfg SACConfig
	cfg.StateDim = dec.Int()
	cfg.ActionDim = dec.Int()
	cfg.Hidden = dec.Ints()
	cfg.CriticHidden[0] = dec.Int()
	cfg.CriticHidden[1] = dec.Int()
	cfg.CriticHidden[2] = dec.Int()
	cfg.LR = dec.FiniteF64()
	cfg.Gamma = dec.FiniteF64()
	cfg.Tau = dec.FiniteF64()
	cfg.Alpha = dec.FiniteF64()
	cfg.Seed = dec.I64()
	if err := dec.Err(); err != nil {
		return nil, nil, err
	}
	s, err := NewSAC(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: checkpoint config rejected: %v", ckpt.ErrMalformed, err)
	}
	actor, err := decodeActorNet(dec, cfg.StateDim, 2*cfg.ActionDim)
	if err != nil {
		return nil, nil, err
	}
	mlp, ok := actor.(*nn.MLP)
	if !ok {
		return nil, nil, fmt.Errorf("%w: SAC actor must be sequential, found %T", ckpt.ErrMalformed, actor)
	}
	s.Actor = mlp
	hid := s.cfg.CriticHidden
	if s.Critic1, err = decodeCritic(dec, cfg.StateDim, cfg.ActionDim, hid); err != nil {
		return nil, nil, err
	}
	if s.Critic2, err = decodeCritic(dec, cfg.StateDim, cfg.ActionDim, hid); err != nil {
		return nil, nil, err
	}
	if s.Target1, err = decodeCritic(dec, cfg.StateDim, cfg.ActionDim, hid); err != nil {
		return nil, nil, err
	}
	if s.Target2, err = decodeCritic(dec, cfg.StateDim, cfg.ActionDim, hid); err != nil {
		return nil, nil, err
	}
	s.actorOpt = nn.NewAdam(s.Actor.Layers, s.cfg.LR)
	s.c1Opt = nn.NewAdam(s.Critic1.Layers(), s.cfg.LR)
	s.c2Opt = nn.NewAdam(s.Critic2.Layers(), s.cfg.LR)
	if err := s.actorOpt.RestoreState(dec); err != nil {
		return nil, nil, err
	}
	if err := s.c1Opt.RestoreState(dec); err != nil {
		return nil, nil, err
	}
	if err := s.c2Opt.RestoreState(dec); err != nil {
		return nil, nil, err
	}
	draws := dec.U64()
	replay, err := decodeOptionalReplay(dec)
	if err != nil {
		return nil, nil, err
	}
	if err := dec.Finish(); err != nil {
		return nil, nil, err
	}
	s.rng = restoredStream(s.cfg.Seed, "sac-sample", draws)
	return s, replay, nil
}

// --- DQN -------------------------------------------------------------------

// EncodeCheckpoint appends the agent's complete training state, including
// the exploration RNG position.
func (d *DQN) EncodeCheckpoint(e *ckpt.Enc, replay *Replay) {
	c := d.cfg
	e.Int(c.StateDim)
	e.Int(c.NumActions)
	e.Ints(c.Hidden)
	e.F64(c.LR)
	e.F64(c.Gamma)
	e.F64(c.Tau)
	e.Bool(c.Double)
	e.I64(c.Seed)
	nn.EncodeNetwork(e, d.Q)
	nn.EncodeNetwork(e, d.Target)
	d.opt.EncodeState(e)
	e.U64(d.rng.DrawCount())
	encodeOptionalReplay(e, replay)
}

// Checkpoint returns the sealed KindDQN container.
func (d *DQN) Checkpoint(replay *Replay) []byte {
	var e ckpt.Enc
	d.EncodeCheckpoint(&e, replay)
	return ckpt.Seal(ckpt.KindDQN, e.Bytes())
}

// LoadDQNCheckpoint rebuilds an agent from a sealed container.
func LoadDQNCheckpoint(data []byte) (*DQN, *Replay, error) {
	payload, err := ckpt.OpenKind(data, ckpt.KindDQN)
	if err != nil {
		return nil, nil, err
	}
	dec := ckpt.NewDec(payload)
	var cfg DQNConfig
	cfg.StateDim = dec.Int()
	cfg.NumActions = dec.Int()
	cfg.Hidden = dec.Ints()
	cfg.LR = dec.FiniteF64()
	cfg.Gamma = dec.FiniteF64()
	cfg.Tau = dec.FiniteF64()
	cfg.Double = dec.Bool()
	cfg.Seed = dec.I64()
	if err := dec.Err(); err != nil {
		return nil, nil, err
	}
	d, err := NewDQN(cfg)
	if err != nil {
		return nil, nil, fmt.Errorf("%w: checkpoint config rejected: %v", ckpt.ErrMalformed, err)
	}
	for _, dst := range []**nn.MLP{&d.Q, &d.Target} {
		net, err := decodeActorNet(dec, cfg.StateDim, cfg.NumActions)
		if err != nil {
			return nil, nil, err
		}
		mlp, ok := net.(*nn.MLP)
		if !ok {
			return nil, nil, fmt.Errorf("%w: DQN network must be sequential, found %T", ckpt.ErrMalformed, net)
		}
		*dst = mlp
	}
	d.opt = nn.NewAdam(d.Q.Layers, d.cfg.LR)
	if err := d.opt.RestoreState(dec); err != nil {
		return nil, nil, err
	}
	draws := dec.U64()
	replay, err := decodeOptionalReplay(dec)
	if err != nil {
		return nil, nil, err
	}
	if err := dec.Finish(); err != nil {
		return nil, nil, err
	}
	d.rng = restoredStream(d.cfg.Seed, "dqn-explore", draws)
	return d, replay, nil
}
