package rl

import (
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

func trVal(v float64) Transition {
	return Transition{
		State:     []float64{v},
		Action:    []float64{v},
		Reward:    v,
		NextState: []float64{v},
	}
}

func TestReplayPushedCursorAndAtWraparound(t *testing.T) {
	rp := NewReplay(4, sim.NewRNG(1))
	for i := 0; i < 7; i++ {
		rp.Push(trVal(float64(i)))
	}
	if got := rp.Pushed(); got != 7 {
		t.Errorf("Pushed = %d, want 7 (cursor counts past capacity)", got)
	}
	if rp.Len() != 4 {
		t.Fatalf("Len = %d, want 4", rp.Len())
	}
	// After wraparound the ring must hold exactly the tail of the push
	// sequence, oldest retained first.
	for i := 0; i < 4; i++ {
		want := float64(3 + i)
		if got := rp.At(i).Reward; got != want {
			t.Errorf("At(%d).Reward = %v, want %v", i, got, want)
		}
	}
}

func TestReplayAtBeforeWraparound(t *testing.T) {
	rp := NewReplay(8, sim.NewRNG(1))
	for i := 0; i < 3; i++ {
		rp.Push(trVal(float64(i)))
	}
	if rp.Pushed() != 3 {
		t.Errorf("Pushed = %d, want 3", rp.Pushed())
	}
	for i := 0; i < 3; i++ {
		if got := rp.At(i).Reward; got != float64(i) {
			t.Errorf("At(%d).Reward = %v, want %v", i, got, float64(i))
		}
	}
}

func TestReplayAtPanicsOutOfRange(t *testing.T) {
	rp := NewReplay(4, sim.NewRNG(1))
	rp.Push(trVal(1))
	defer func() {
		if recover() == nil {
			t.Error("At(1) with one element did not panic")
		}
	}()
	rp.At(1)
}

// randStates fills a row-major [n×dim] buffer with state vectors in [0,1].
func randStates(rng *sim.RNG, n, dim int) []float64 {
	out := make([]float64, n*dim)
	for i := range out {
		out[i] = rng.Float64()
	}
	return out
}

func TestDDPGActBatchMatchesAct(t *testing.T) {
	d, err := NewDDPG(DDPGConfig{StateDim: 8, ActionDim: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	states := randStates(sim.NewRNG(32), n, 8)
	rows := append([]float64(nil), d.ActBatch(states, n)...)
	for i := 0; i < n; i++ {
		single := d.Act(states[i*8 : (i+1)*8])
		for j, v := range single {
			if rows[i*2+j] != v {
				t.Errorf("state %d dim %d: batch %v != single %v", i, j, rows[i*2+j], v)
			}
		}
	}
}

func TestTD3ActBatchMatchesAct(t *testing.T) {
	a, err := NewTD3(TD3Config{StateDim: 8, ActionDim: 2, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	const n = 4
	states := randStates(sim.NewRNG(34), n, 8)
	rows := append([]float64(nil), a.ActBatch(states, n)...)
	for i := 0; i < n; i++ {
		single := a.Act(states[i*8 : (i+1)*8])
		for j, v := range single {
			if rows[i*2+j] != v {
				t.Errorf("state %d dim %d: batch %v != single %v", i, j, rows[i*2+j], v)
			}
		}
	}
}

func TestDQNActBatchArgmaxMatchesAct(t *testing.T) {
	d, err := NewDQN(DQNConfig{StateDim: 8, NumActions: 25, Seed: 35})
	if err != nil {
		t.Fatal(err)
	}
	const n = 6
	states := randStates(sim.NewRNG(36), n, 8)
	rows := append([]float64(nil), d.ActBatch(states, n)...)
	for i := 0; i < n; i++ {
		if got, want := Argmax(rows[i*25:(i+1)*25]), d.Act(states[i*8:(i+1)*8]); got != want {
			t.Errorf("state %d: batch argmax %d != Act %d", i, got, want)
		}
	}
}
