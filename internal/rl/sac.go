package rl

import (
	"fmt"
	"io"
	"math"

	"github.com/deeppower/deeppower/internal/nn"
	"github.com/deeppower/deeppower/internal/sim"
)

// SACConfig parameterizes a Soft Actor-Critic agent (Haarnoja et al. 2018)
// with a squashed-Gaussian policy over [0,1]^dim actions and twin critics.
type SACConfig struct {
	StateDim, ActionDim int
	// Hidden defaults to [32, 24, 16].
	Hidden []int
	// CriticHidden defaults to [32, 24, 16].
	CriticHidden [3]int
	// LR defaults to 1e-3 for actor and critics.
	LR float64
	// Gamma defaults to 0.95.
	Gamma float64
	// Tau defaults to 0.01.
	Tau float64
	// Alpha is the (fixed) entropy temperature, default 0.05.
	Alpha float64
	Seed  int64
}

func (c SACConfig) withDefaults() (SACConfig, error) {
	if c.StateDim <= 0 || c.ActionDim <= 0 {
		return c, fmt.Errorf("rl: SAC needs positive dims, got %d/%d", c.StateDim, c.ActionDim)
	}
	if c.Hidden == nil {
		c.Hidden = []int{32, 24, 16}
	}
	if c.CriticHidden == [3]int{} {
		c.CriticHidden = [3]int{32, 24, 16}
	}
	if c.LR == 0 {
		c.LR = 1e-3
	}
	if c.Gamma == 0 {
		c.Gamma = 0.95
	}
	if c.Gamma < 0 || c.Gamma >= 1 {
		return c, fmt.Errorf("rl: gamma %v outside [0,1)", c.Gamma)
	}
	if c.Tau == 0 {
		c.Tau = 0.01
	}
	if c.Alpha == 0 {
		c.Alpha = 0.05
	}
	return c, nil
}

const (
	logStdMin = -5
	logStdMax = 2
	sacEps    = 1e-6
)

// SAC is a soft actor-critic agent. The actor outputs (µ, logσ) per action
// dimension; actions are tanh-squashed and affinely mapped to [0,1].
type SAC struct {
	cfg SACConfig
	// Actor outputs 2·ActionDim values: means then log-stds.
	Actor                  *nn.MLP
	Critic1, Critic2       *Critic
	Target1, Target2       *Critic
	actorOpt, c1Opt, c2Opt *nn.Adam
	rng                    *sim.RNG

	// Batched-update scratch: the flat minibatch arena plus [n×dim]
	// row-major buffers for the reparameterized draws, grown on demand so a
	// steady-state Update never allocates.
	arena                           trainArena
	a01B, aTanhB, epsB, stdB, dRawB []float64 // [n×ActionDim]
	logPiB                          []float64 // [n]
	dq1B, dq2B                      []float64 // [n] min-critic masks
	bn                              int
}

// ensureBatch grows the SAC-specific sampling scratch to n rows.
func (s *SAC) ensureBatch(n int) {
	d := s.cfg.ActionDim
	if cap(s.a01B) < n*d {
		s.a01B = make([]float64, n*d)
		s.aTanhB = make([]float64, n*d)
		s.epsB = make([]float64, n*d)
		s.stdB = make([]float64, n*d)
		s.dRawB = make([]float64, n*d)
	}
	if cap(s.logPiB) < n {
		s.logPiB = make([]float64, n)
		s.dq1B = make([]float64, n)
		s.dq2B = make([]float64, n)
	}
	s.a01B = s.a01B[:n*d]
	s.aTanhB = s.aTanhB[:n*d]
	s.epsB = s.epsB[:n*d]
	s.stdB = s.stdB[:n*d]
	s.dRawB = s.dRawB[:n*d]
	s.logPiB = s.logPiB[:n]
	s.dq1B = s.dq1B[:n]
	s.dq2B = s.dq2B[:n]
	s.bn = n
}

// NewSAC builds an agent.
func NewSAC(cfg SACConfig) (*SAC, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := sim.NewRNG(full.Seed).Stream("sac-init")
	sizes := append([]int{full.StateDim}, full.Hidden...)
	sizes = append(sizes, 2*full.ActionDim)
	actor := nn.NewMLP(sizes, nn.ReLU, nn.Identity, rng)
	c1 := NewCritic(full.StateDim, full.ActionDim, full.CriticHidden, rng)
	c2 := NewCritic(full.StateDim, full.ActionDim, full.CriticHidden, rng)
	s := &SAC{
		cfg:     full,
		Actor:   actor,
		Critic1: c1, Critic2: c2,
		Target1: c1.Clone(), Target2: c2.Clone(),
		rng: sim.NewRNG(full.Seed).Stream("sac-sample"),
	}
	s.actorOpt = nn.NewAdam(actor.Layers, full.LR)
	s.c1Opt = nn.NewAdam(c1.Layers(), full.LR)
	s.c2Opt = nn.NewAdam(c2.Layers(), full.LR)
	s.actorOpt.MaxGradNorm = 5
	s.c1Opt.MaxGradNorm = 5
	s.c2Opt.MaxGradNorm = 5
	return s, nil
}

// head splits the actor output into means and log-stds. The log-std is
// smoothly bounded via tanh (logStdMin..logStdMax) so gradients never hit a
// hard clamp; dRaw is d(logStd)/d(raw output) for the chain rule.
func (s *SAC) head(state []float64) (mu, logStd, dRaw []float64) {
	out := s.Actor.Forward(state)
	d := s.cfg.ActionDim
	mu = append([]float64(nil), out[:d]...)
	logStd = make([]float64, d)
	dRaw = make([]float64, d)
	half := 0.5 * (logStdMax - logStdMin)
	for i := 0; i < d; i++ {
		t := math.Tanh(out[d+i])
		logStd[i] = logStdMin + half*(t+1)
		dRaw[i] = half * (1 - t*t)
	}
	return mu, logStd, dRaw
}

// Act returns the deterministic (mean) action mapped into [0,1]^dim.
func (s *SAC) Act(state []float64) []float64 {
	mu, _, _ := s.head(state)
	out := make([]float64, len(mu))
	for i, m := range mu {
		out[i] = (math.Tanh(m) + 1) / 2
	}
	return out
}

// sacSample carries one reparameterized draw and everything Update's chain
// rule needs.
type sacSample struct {
	a01, aTanh, eps, std []float64
	dLogStdDRaw          []float64
	logPi                float64
}

// sample draws a reparameterized action from the policy at state.
func (s *SAC) sample(state []float64) sacSample {
	mu, logStd, dRaw := s.head(state)
	d := len(mu)
	out := sacSample{
		a01: make([]float64, d), aTanh: make([]float64, d),
		eps: make([]float64, d), std: make([]float64, d),
		dLogStdDRaw: dRaw,
	}
	for i := 0; i < d; i++ {
		out.std[i] = math.Exp(logStd[i])
		out.eps[i] = s.rng.NormFloat64()
		u := mu[i] + out.std[i]*out.eps[i]
		out.aTanh[i] = math.Tanh(u)
		out.a01[i] = (out.aTanh[i] + 1) / 2
		out.logPi += -0.5*out.eps[i]*out.eps[i] - logStd[i] - 0.5*math.Log(2*math.Pi) -
			math.Log(1-out.aTanh[i]*out.aTanh[i]+sacEps)
	}
	return out
}

// SampleAction draws a stochastic action in [0,1]^dim (exploration).
func (s *SAC) SampleAction(state []float64) []float64 {
	return s.sample(state).a01
}

// sampleBatch fills the sampling scratch rows from a batched actor output
// (out is [n×2·ActionDim]: means then raw log-stds per row). Rows where skip
// is true are left untouched and consume no RNG draws, so the draw sequence
// matches the per-sample path exactly (which samples non-terminal rows only
// in the critic pass). The per-element arithmetic mirrors head/sample
// verbatim — bit-identical results.
func (s *SAC) sampleBatch(out []float64, n int, skip []bool) {
	d := s.cfg.ActionDim
	half := 0.5 * (logStdMax - logStdMin)
	for b := 0; b < n; b++ {
		if skip != nil && skip[b] {
			continue
		}
		row := out[b*2*d : (b+1)*2*d]
		logPi := 0.0
		for i := 0; i < d; i++ {
			mu := row[i]
			t := math.Tanh(row[d+i])
			logStd := logStdMin + half*(t+1)
			s.dRawB[b*d+i] = half * (1 - t*t)
			std := math.Exp(logStd)
			eps := s.rng.NormFloat64()
			u := mu + std*eps
			aTanh := math.Tanh(u)
			s.stdB[b*d+i] = std
			s.epsB[b*d+i] = eps
			s.aTanhB[b*d+i] = aTanh
			s.a01B[b*d+i] = (aTanh + 1) / 2
			logPi += -0.5*eps*eps - logStd - 0.5*math.Log(2*math.Pi) -
				math.Log(1-aTanh*aTanh+sacEps)
		}
		s.logPiB[b] = logPi
	}
}

// Update performs one SAC gradient step on a minibatch and returns the twin
// critic losses and the actor loss.
//
// The step runs on the batched nn kernels over reused flat buffers; it is
// bit-identical to the per-sample reference path (updatePerSample),
// including the reparameterization RNG draw order, and allocation-free at
// steady state.
func (s *SAC) Update(batch []Transition) (critic1Loss, critic2Loss, actorLoss float64) {
	if len(batch) == 0 {
		return
	}
	n := len(batch)
	inv := 1 / float64(n)
	d := s.cfg.ActionDim
	ar := &s.arena
	ar.load(batch, s.cfg.StateDim, d, 2*d)
	s.ensureBatch(n)

	// Critic update: y = r + γ·(min_i Q'_i(s', ã') - α·logπ(ã'|s')). The
	// next-state policy head is forwarded batch-wide; reparameterized draws
	// happen for non-terminal rows only, in ascending sample order (the
	// per-sample RNG sequence). Terminal rows carry stale actions through
	// the target forwards and are masked out of y — no RNG is involved in
	// the discarded work.
	outB := s.Actor.ForwardBatch(ar.next, n)
	s.sampleBatch(outB, n, ar.done)
	q1B := s.Target1.ForwardBatch(ar.next, s.a01B, n)
	q2B := s.Target2.ForwardBatch(ar.next, s.a01B, n)
	for i := 0; i < n; i++ {
		y := ar.rewards[i]
		if !ar.done[i] {
			y += s.cfg.Gamma * (math.Min(q1B[i], q2B[i]) - s.cfg.Alpha*s.logPiB[i])
		}
		ar.y[i] = y
	}
	s.Critic1.ZeroGrad()
	s.Critic2.ZeroGrad()
	q := s.Critic1.ForwardBatch(ar.states, ar.actions, n)
	for i := 0; i < n; i++ {
		diff := q[i] - ar.y[i]
		critic1Loss += diff * diff * inv
		ar.dq[i] = 2 * diff * inv
	}
	s.Critic1.BackwardBatch(ar.dq, n)
	q = s.Critic2.ForwardBatch(ar.states, ar.actions, n)
	for i := 0; i < n; i++ {
		diff := q[i] - ar.y[i]
		critic2Loss += diff * diff * inv
		ar.dq[i] = 2 * diff * inv
	}
	s.Critic2.BackwardBatch(ar.dq, n)
	s.c1Opt.Step()
	s.c2Opt.Step()

	// Actor update: minimize E[α·logπ(ã|s) - min_i Q_i(s, ã)] with the
	// reparameterization trick through the tanh squash. Per sample, only
	// the smaller critic backpropagates: both critics run BackwardBatch
	// with complementary 1/0 masks (a masked row's backward contributes
	// exact zeros, and the unwanted critic weight gradients are zeroed
	// below anyway), and each sample reads dQ/da from its min critic's
	// input-gradient row — bit-identical to minC.Backward(1).
	s.Actor.ZeroGrad()
	outB = s.Actor.ForwardBatch(ar.states, n)
	s.sampleBatch(outB, n, nil)
	q1B = s.Critic1.ForwardBatch(ar.states, s.a01B, n)
	q2B = s.Critic2.ForwardBatch(ar.states, s.a01B, n)
	for i := 0; i < n; i++ {
		if q2B[i] < q1B[i] {
			s.dq1B[i], s.dq2B[i] = 0, 1
			actorLoss += (s.cfg.Alpha*s.logPiB[i] - q2B[i]) * inv
		} else {
			s.dq1B[i], s.dq2B[i] = 1, 0
			actorLoss += (s.cfg.Alpha*s.logPiB[i] - q1B[i]) * inv
		}
	}
	_, da1 := s.Critic1.BackwardBatch(s.dq1B, n)
	_, da2 := s.Critic2.BackwardBatch(s.dq2B, n)
	for b := 0; b < n; b++ {
		dqda := da1[b*d : (b+1)*d]
		if s.dq2B[b] == 1 {
			dqda = da2[b*d : (b+1)*d]
		}
		grad := ar.grad[b*2*d : (b+1)*2*d]
		for i := 0; i < d; i++ {
			aTanh := s.aTanhB[b*d+i]
			sech2 := 1 - aTanh*aTanh // da_tanh/du
			da01du := 0.5 * sech2
			dLogPiDu := 2 * aTanh * sech2 / (sech2 + sacEps)
			// dL/dµ_i.
			grad[i] = inv * (s.cfg.Alpha*dLogPiDu - dqda[i]*da01du)
			// dL/dlogσ_i: u depends on logσ via σ·ε; logπ also carries the
			// explicit -logσ term. Chain through the tanh bounding of logσ
			// to reach the raw network output.
			duDLogStd := s.stdB[b*d+i] * s.epsB[b*d+i]
			dLdLogStd := s.cfg.Alpha*(dLogPiDu*duDLogStd-1) - dqda[i]*da01du*duDLogStd
			grad[d+i] = inv * dLdLogStd * s.dRawB[b*d+i]
		}
	}
	s.Actor.BackwardBatch(ar.grad, n)
	// Drop critic gradients accumulated during the actor pass.
	s.Critic1.ZeroGrad()
	s.Critic2.ZeroGrad()
	s.actorOpt.Step()

	s.Target1.SoftUpdateFrom(s.Critic1, s.cfg.Tau)
	s.Target2.SoftUpdateFrom(s.Critic2, s.cfg.Tau)
	return critic1Loss, critic2Loss, actorLoss
}

// updatePerSample is the pre-batching reference implementation, retained as
// the benchmark baseline and the bit-identity oracle for the batched Update.
func (s *SAC) updatePerSample(batch []Transition) (critic1Loss, critic2Loss, actorLoss float64) {
	if len(batch) == 0 {
		return
	}
	inv := 1 / float64(len(batch))

	// Critic update: y = r + γ·(min_i Q'_i(s', ã') - α·logπ(ã'|s')).
	s.Critic1.ZeroGrad()
	s.Critic2.ZeroGrad()
	for _, tr := range batch {
		y := tr.Reward
		if !tr.Done {
			next := s.sample(tr.NextState)
			q1 := s.Target1.Forward(tr.NextState, next.a01)
			q2 := s.Target2.Forward(tr.NextState, next.a01)
			y += s.cfg.Gamma * (math.Min(q1, q2) - s.cfg.Alpha*next.logPi)
		}
		q := s.Critic1.Forward(tr.State, tr.Action)
		diff := q - y
		critic1Loss += diff * diff * inv
		s.Critic1.Backward(2 * diff * inv)

		q = s.Critic2.Forward(tr.State, tr.Action)
		diff = q - y
		critic2Loss += diff * diff * inv
		s.Critic2.Backward(2 * diff * inv)
	}
	s.c1Opt.Step()
	s.c2Opt.Step()

	// Actor update: minimize E[α·logπ(ã|s) - min_i Q_i(s, ã)] with the
	// reparameterization trick through the tanh squash.
	s.Actor.ZeroGrad()
	d := s.cfg.ActionDim
	for _, tr := range batch {
		sp := s.sample(tr.State)
		q1 := s.Critic1.Forward(tr.State, sp.a01)
		q2 := s.Critic2.Forward(tr.State, sp.a01)
		// Each critic caches its own forward pass, so the min critic can
		// backprop directly.
		minC, q := s.Critic1, q1
		if q2 < q1 {
			minC, q = s.Critic2, q2
		}
		actorLoss += (s.cfg.Alpha*sp.logPi - q) * inv
		_, dqda := minC.Backward(1) // dQ/da01

		// Chain into (dL/dµ, dL/d rawLogStd) for the actor outputs.
		grad := make([]float64, 2*d)
		for i := 0; i < d; i++ {
			sech2 := 1 - sp.aTanh[i]*sp.aTanh[i] // da_tanh/du
			da01du := 0.5 * sech2
			dLogPiDu := 2 * sp.aTanh[i] * sech2 / (sech2 + sacEps)
			// dL/dµ_i.
			grad[i] = inv * (s.cfg.Alpha*dLogPiDu - dqda[i]*da01du)
			// dL/dlogσ_i: u depends on logσ via σ·ε; logπ also carries the
			// explicit -logσ term. Chain through the tanh bounding of
			// logσ to reach the raw network output.
			duDLogStd := sp.std[i] * sp.eps[i]
			dLdLogStd := s.cfg.Alpha*(dLogPiDu*duDLogStd-1) - dqda[i]*da01du*duDLogStd
			grad[d+i] = inv * dLdLogStd * sp.dLogStdDRaw[i]
		}
		s.Actor.Backward(grad)
	}
	// Drop critic gradients accumulated during the actor pass.
	s.Critic1.ZeroGrad()
	s.Critic2.ZeroGrad()
	s.actorOpt.Step()

	s.Target1.SoftUpdateFrom(s.Critic1, s.cfg.Tau)
	s.Target2.SoftUpdateFrom(s.Critic2, s.cfg.Tau)
	return critic1Loss, critic2Loss, actorLoss
}

// NumParams reports the actor parameter count.
func (s *SAC) NumParams() int { return s.Actor.NumParams() }

// SavePolicy writes the trained actor (the (µ, logσ) head network) as a
// sealed KindPolicy container — the same exported entry point DDPG and TD3
// provide.
func (s *SAC) SavePolicy(w io.Writer) error { return savePolicyNet(w, s.Actor) }

// LoadPolicy replaces the actor with a saved network. The network must be
// sequential with output width 2·ActionDim (means then log-stds).
func (s *SAC) LoadPolicy(r io.Reader) error {
	m, err := loadPolicyNet(r)
	if err != nil {
		return err
	}
	if m.InDim() != s.cfg.StateDim || m.OutDim() != 2*s.cfg.ActionDim {
		return fmt.Errorf("rl: loaded policy is %d→%d, SAC agent expects %d→%d",
			m.InDim(), m.OutDim(), s.cfg.StateDim, 2*s.cfg.ActionDim)
	}
	mlp, ok := m.(*nn.MLP)
	if !ok {
		return fmt.Errorf("rl: SAC actor must be a sequential network, got %T", m)
	}
	s.Actor = mlp
	s.actorOpt = nn.NewAdam(s.Actor.Layers, s.cfg.LR)
	s.actorOpt.MaxGradNorm = 5
	return nil
}
