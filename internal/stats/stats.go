// Package stats provides the descriptive statistics the evaluation needs:
// percentiles (tail latency), CDFs (Fig. 1), RMSE (Fig. 2), and summary
// digests of latency samples.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile of xs (p in [0,100]) using linear
// interpolation between closest ranks, matching numpy.percentile's default.
// It returns 0 for an empty slice.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v out of [0,100]", p))
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return percentileSorted(cp, p)
}

func percentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// RMSE returns the root mean squared error between predictions and truth.
// The slices must have equal, non-zero length.
func RMSE(pred, truth []float64) float64 {
	if len(pred) != len(truth) {
		panic("stats: RMSE length mismatch")
	}
	if len(pred) == 0 {
		return 0
	}
	sum := 0.0
	for i := range pred {
		d := pred[i] - truth[i]
		sum += d * d
	}
	return math.Sqrt(sum / float64(len(pred)))
}

// CDFPoint is one point of an empirical CDF.
type CDFPoint struct {
	X float64 // value
	P float64 // fraction of samples <= X
}

// CDF returns the empirical CDF of xs evaluated at up to points evenly-spaced
// quantiles. The result is sorted by X.
func CDF(xs []float64, points int) []CDFPoint {
	if len(xs) == 0 || points <= 0 {
		return nil
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	if points > len(cp) {
		points = len(cp)
	}
	out := make([]CDFPoint, 0, points)
	for i := 0; i < points; i++ {
		idx := (i + 1) * len(cp) / points
		if idx > len(cp) {
			idx = len(cp)
		}
		out = append(out, CDFPoint{X: cp[idx-1], P: float64(idx) / float64(len(cp))})
	}
	return out
}

// Histogram bins xs into n equal-width buckets over [lo, hi] and returns the
// counts. Values outside the range are clamped into the edge buckets.
func Histogram(xs []float64, lo, hi float64, n int) []int {
	if n <= 0 || hi <= lo {
		return nil
	}
	counts := make([]int, n)
	w := (hi - lo) / float64(n)
	for _, x := range xs {
		b := int((x - lo) / w)
		if b < 0 {
			b = 0
		}
		if b >= n {
			b = n - 1
		}
		counts[b]++
	}
	return counts
}

// Summary is a digest of a sample set.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	return Summary{
		N:    len(cp),
		Mean: Mean(cp),
		Std:  StdDev(cp),
		Min:  cp[0],
		Max:  cp[len(cp)-1],
		P50:  percentileSorted(cp, 50),
		P90:  percentileSorted(cp, 90),
		P95:  percentileSorted(cp, 95),
		P99:  percentileSorted(cp, 99),
	}
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g p50=%.4g p99=%.4g max=%.4g",
		s.N, s.Mean, s.Std, s.P50, s.P99, s.Max)
}

// Welford accumulates mean/variance in one pass without storing samples.
// The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
}

// Add incorporates x.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of samples added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the running population variance.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// StdDev returns the running population standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }
