package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); got != 2 {
		t.Errorf("StdDev = %v, want 2", got)
	}
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Error("empty-input statistics should be zero")
	}
	if CDF(nil, 10) != nil {
		t.Error("CDF of empty input should be nil")
	}
	if s := Summarize(nil); s.N != 0 {
		t.Error("Summarize(nil) should be zero value")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {90, 9.1},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almost(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	// Single element.
	if got := Percentile([]float64{7}, 99); got != 7 {
		t.Errorf("Percentile of singleton = %v, want 7", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentile(101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestPercentileMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		last := math.Inf(-1)
		for p := 0.0; p <= 100; p += 7 {
			v := Percentile(xs, p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRMSE(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 3}
	if got := RMSE(pred, truth); got != 0 {
		t.Errorf("RMSE of identical = %v", got)
	}
	if got := RMSE([]float64{0, 0}, []float64{3, 4}); !almost(got, math.Sqrt(12.5), 1e-9) {
		t.Errorf("RMSE = %v, want sqrt(12.5)", got)
	}
}

func TestRMSEMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RMSE mismatch did not panic")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestCDF(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	pts := CDF(xs, 4)
	if len(pts) != 4 {
		t.Fatalf("got %d points", len(pts))
	}
	wantX := []float64{1, 2, 3, 4}
	wantP := []float64{0.25, 0.5, 0.75, 1.0}
	for i := range pts {
		if pts[i].X != wantX[i] || !almost(pts[i].P, wantP[i], 1e-9) {
			t.Errorf("point %d = %+v, want {%v %v}", i, pts[i], wantX[i], wantP[i])
		}
	}
	// Last point always reaches P=1.
	pts = CDF(xs, 3)
	if pts[len(pts)-1].P != 1 {
		t.Error("CDF does not reach 1")
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.6, 0.9, -5, 27}
	h := Histogram(xs, 0, 1, 2)
	if h[0] != 3 || h[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3]", h)
	}
	if Histogram(xs, 1, 0, 2) != nil || Histogram(xs, 0, 1, 0) != nil {
		t.Error("degenerate histogram should be nil")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s := Summarize(xs)
	if s.N != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("bad extremes: %+v", s)
	}
	if !almost(s.Mean, 50.5, 1e-9) {
		t.Errorf("mean = %v", s.Mean)
	}
	if !almost(s.P99, 99.01, 1e-9) {
		t.Errorf("p99 = %v", s.P99)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestWelfordMatchesBatch(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e6 {
				xs = append(xs, x)
			}
		}
		var w Welford
		for _, x := range xs {
			w.Add(x)
		}
		if w.N() != len(xs) {
			return false
		}
		if len(xs) == 0 {
			return w.Mean() == 0 && w.Variance() == 0
		}
		scale := 1 + math.Abs(Mean(xs))
		return almost(w.Mean(), Mean(xs), 1e-6*scale) &&
			almost(w.Variance(), Variance(xs), 1e-4*(1+Variance(xs)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Errorf("Min/Max = %v/%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be infinities")
	}
}

func BenchmarkPercentile(b *testing.B) {
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = float64(i * 7919 % 10007)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Percentile(xs, 99)
	}
}
