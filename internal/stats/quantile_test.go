package stats

import (
	"math"
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

func TestP2QuantileUniform(t *testing.T) {
	rng := sim.NewRNG(1)
	for _, p := range []float64{0.5, 0.9, 0.99} {
		est := NewP2Quantile(p)
		for i := 0; i < 200000; i++ {
			est.Add(rng.Float64())
		}
		if got := est.Value(); math.Abs(got-p) > 0.01 {
			t.Errorf("p%.0f of U(0,1) = %v, want ~%v", p*100, got, p)
		}
		if est.N() != 200000 {
			t.Errorf("N = %d", est.N())
		}
	}
}

func TestP2QuantileLogNormalTail(t *testing.T) {
	// Long-tailed data — the shape that matters for latency monitoring.
	rng := sim.NewRNG(2)
	est := NewP2Quantile(0.99)
	xs := make([]float64, 100000)
	for i := range xs {
		xs[i] = rng.LogNormal(0, 1)
		est.Add(xs[i])
	}
	exact := Percentile(xs, 99)
	if rel := math.Abs(est.Value()-exact) / exact; rel > 0.1 {
		t.Errorf("p99 estimate %v vs exact %v (rel err %.3f)", est.Value(), exact, rel)
	}
}

func TestP2QuantileSmallSamples(t *testing.T) {
	est := NewP2Quantile(0.5)
	if est.Value() != 0 {
		t.Error("empty estimator should return 0")
	}
	for _, x := range []float64{3, 1, 2} {
		est.Add(x)
	}
	if got := est.Value(); got != 2 {
		t.Errorf("median of {1,2,3} = %v, want 2", got)
	}
}

// TestP2QuantileUnderFiveSamples pins the exact small-sample fallback for
// every count below the P² activation threshold of five markers.
func TestP2QuantileUnderFiveSamples(t *testing.T) {
	// One sample: every quantile is that sample.
	one := NewP2Quantile(0.99)
	one.Add(7)
	if got := one.Value(); got != 7 {
		t.Errorf("p99 of {7} = %v, want 7", got)
	}
	if one.N() != 1 {
		t.Errorf("N=%d, want 1", one.N())
	}

	// Two samples: p99 interpolates nearly to the max.
	two := NewP2Quantile(0.99)
	two.Add(10)
	two.Add(2)
	if got := two.Value(); got < 9 || got > 10 {
		t.Errorf("p99 of {2,10} = %v, want in [9,10]", got)
	}
	lo := NewP2Quantile(0.01)
	lo.Add(10)
	lo.Add(2)
	if got := lo.Value(); got < 2 || got > 3 {
		t.Errorf("p1 of {2,10} = %v, want in [2,3]", got)
	}

	// Four samples, unsorted input: exact percentile of the sorted set,
	// and the estimator must not have switched to marker mode.
	four := NewP2Quantile(0.5)
	for _, x := range []float64{4, 1, 3, 2} {
		four.Add(x)
	}
	if got := four.Value(); got < 2 || got > 3 {
		t.Errorf("median of {1,2,3,4} = %v, want in [2,3]", got)
	}
	if four.N() != 4 {
		t.Errorf("N=%d, want 4", four.N())
	}

	// The fifth sample activates P²; the estimate stays sane across the
	// boundary.
	four.Add(5)
	if got := four.Value(); got < 2 || got > 4 {
		t.Errorf("median of {1..5} = %v after P² activation, want in [2,4]", got)
	}
}

func TestP2QuantileBadPPanics(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 2} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("p=%v did not panic", p)
				}
			}()
			NewP2Quantile(p)
		}()
	}
}

func TestP2QuantileMonotoneData(t *testing.T) {
	// Sorted input is a classic stress case for P².
	est := NewP2Quantile(0.9)
	for i := 0; i < 10000; i++ {
		est.Add(float64(i))
	}
	if got := est.Value(); math.Abs(got-9000) > 300 {
		t.Errorf("p90 of 0..9999 = %v, want ~9000", got)
	}
}

func BenchmarkP2QuantileAdd(b *testing.B) {
	est := NewP2Quantile(0.99)
	rng := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Add(rng.Float64())
	}
}
