package stats

import (
	"fmt"
	"sort"
)

// P2Quantile is the P² (P-square) streaming quantile estimator of Jain &
// Chlamtac (1985): it tracks a single quantile in O(1) memory, letting
// multi-million-request runs monitor tail latency without retaining samples.
type P2Quantile struct {
	p       float64
	q       [5]float64 // marker heights
	n       [5]int     // marker positions
	np      [5]float64 // desired positions
	dn      [5]float64 // position increments
	count   int
	initial []float64
}

// NewP2Quantile tracks the p-quantile, p in (0, 1) — e.g. 0.99 for p99.
func NewP2Quantile(p float64) *P2Quantile {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: P2 quantile %v outside (0,1)", p))
	}
	return &P2Quantile{p: p}
}

// Add incorporates one observation.
func (q *P2Quantile) Add(x float64) {
	q.count++
	if q.count <= 5 {
		q.initial = append(q.initial, x)
		if q.count == 5 {
			sort.Float64s(q.initial)
			for i := 0; i < 5; i++ {
				q.q[i] = q.initial[i]
				q.n[i] = i + 1
			}
			p := q.p
			q.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
			q.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
		}
		return
	}

	// Find the cell containing x and adjust extremes.
	var k int
	switch {
	case x < q.q[0]:
		q.q[0] = x
		k = 0
	case x >= q.q[4]:
		q.q[4] = x
		k = 3
	default:
		for k = 0; k < 4; k++ {
			if x < q.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		q.n[i]++
	}
	for i := 0; i < 5; i++ {
		q.np[i] += q.dn[i]
	}

	// Adjust interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.np[i] - float64(q.n[i])
		if (d >= 1 && q.n[i+1]-q.n[i] > 1) || (d <= -1 && q.n[i-1]-q.n[i] < -1) {
			sign := 1
			if d < 0 {
				sign = -1
			}
			// Piecewise-parabolic prediction.
			qn := q.parabolic(i, sign)
			if q.q[i-1] < qn && qn < q.q[i+1] {
				q.q[i] = qn
			} else {
				q.q[i] = q.linear(i, sign)
			}
			q.n[i] += sign
		}
	}
}

func (q *P2Quantile) parabolic(i, sign int) float64 {
	d := float64(sign)
	ni := float64(q.n[i])
	nm := float64(q.n[i-1])
	np := float64(q.n[i+1])
	return q.q[i] + d/(np-nm)*((ni-nm+d)*(q.q[i+1]-q.q[i])/(np-ni)+
		(np-ni-d)*(q.q[i]-q.q[i-1])/(ni-nm))
}

func (q *P2Quantile) linear(i, sign int) float64 {
	d := float64(sign)
	return q.q[i] + d*(q.q[i+sign]-q.q[i])/(float64(q.n[i+sign])-float64(q.n[i]))
}

// Value returns the current quantile estimate. With fewer than five
// observations it falls back to the exact small-sample quantile.
func (q *P2Quantile) Value() float64 {
	if q.count == 0 {
		return 0
	}
	if q.count < 5 {
		cp := append([]float64(nil), q.initial...)
		sort.Float64s(cp)
		return percentileSorted(cp, q.p*100)
	}
	return q.q[2]
}

// N reports how many observations were added.
func (q *P2Quantile) N() int { return q.count }
