package app

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/stats"
)

func TestAllProfilesValid(t *testing.T) {
	for _, p := range All() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if ts, ok := p.Sampler.(*TailedSampler); ok {
			if err := ts.Validate(); err != nil {
				t.Errorf("%s sampler: %v", p.Name, err)
			}
		}
	}
}

func TestByName(t *testing.T) {
	for _, n := range Names() {
		p, err := ByName(n)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != n {
			t.Errorf("ByName(%q).Name = %q", n, p.Name)
		}
	}
	if _, err := ByName("nginx"); err == nil {
		t.Error("unknown app did not error")
	}
}

func TestMustByNamePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustByName of unknown app did not panic")
		}
	}()
	MustByName("nope")
}

func TestProfilesMatchPaperSLAs(t *testing.T) {
	want := map[string]sim.Time{
		Xapian:   8 * sim.Millisecond,
		Masstree: 1 * sim.Millisecond,
		Moses:    120 * sim.Millisecond,
		Sphinx:   4000 * sim.Millisecond,
		ImgDNN:   5 * sim.Millisecond,
	}
	for name, sla := range want {
		if got := MustByName(name).SLA; got != sla {
			t.Errorf("%s SLA = %v, want %v", name, got, sla)
		}
	}
	if MustByName(Masstree).Workers != 8 {
		t.Error("Masstree should use 8 workers (paper footnote 1)")
	}
	if MustByName(Xapian).Workers != 20 {
		t.Error("Xapian should use 20 workers")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := MustByName(Xapian)
	mutations := []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.SLA = 0 },
		func(p *Profile) { p.Workers = 0 },
		func(p *Profile) { p.RefFreq = 0 },
		func(p *Profile) { p.MemFrac = 1.0 },
		func(p *Profile) { p.ContentionCoef = -1 },
		func(p *Profile) { p.Sampler = nil },
	}
	for i, mut := range mutations {
		p := *good
		mut(&p)
		if p.Validate() == nil {
			t.Errorf("mutation %d not rejected", i)
		}
	}
}

func TestServiceAtScaling(t *testing.T) {
	p := MustByName(Xapian) // MemFrac 0.15
	ref := sim.Millisecond
	// At reference frequency, no change.
	if got := p.ServiceAt(ref, p.RefFreq); got != ref {
		t.Errorf("ServiceAt(ref) = %v, want %v", got, ref)
	}
	// At half frequency the CPU part doubles, memory part unchanged.
	half := p.ServiceAt(ref, p.RefFreq/2)
	want := sim.Time(0.15*float64(ref) + 0.85*2*float64(ref))
	if math.Abs(float64(half-want)) > 1 {
		t.Errorf("ServiceAt(half) = %v, want %v", half, want)
	}
	// Zero frequency never finishes.
	if got := p.ServiceAt(ref, 0); got != sim.MaxTime {
		t.Errorf("ServiceAt(0) = %v", got)
	}
}

func TestSpeedAtInverseOfServiceAt(t *testing.T) {
	p := MustByName(Moses)
	f := func(rawF float64) bool {
		fr := 0.8 + math.Mod(math.Abs(rawF), 2.0)
		ref := 10 * sim.Millisecond
		viaService := p.ServiceAt(ref, cpuFreq(fr)).Seconds()
		viaSpeed := ref.Seconds() / p.SpeedAt(cpuFreq(fr))
		return math.Abs(viaService-viaSpeed) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSamplerDeterminism(t *testing.T) {
	p := MustByName(Moses)
	a := p.Sampler.Sample(sim.NewRNG(1))
	b := p.Sampler.Sample(sim.NewRNG(1))
	if a.ServiceRef != b.ServiceRef {
		t.Error("same seed produced different work")
	}
	if len(a.Features) != p.Sampler.FeatureDim() {
		t.Errorf("feature dim %d != declared %d", len(a.Features), p.Sampler.FeatureDim())
	}
}

func TestSamplerPositiveService(t *testing.T) {
	for _, p := range All() {
		r := sim.NewRNG(3)
		for i := 0; i < 10000; i++ {
			w := p.Sampler.Sample(r)
			if w.ServiceRef <= 0 {
				t.Fatalf("%s produced non-positive service time %v", p.Name, w.ServiceRef)
			}
		}
	}
}

// Long-tail shape (Fig. 1): p99/mean ratios; Moses is the most skewed
// (the paper reports its tail ≈ 8× mean), Img-dnn nearly deterministic.
func TestFig1TailShape(t *testing.T) {
	ratios := map[string]float64{}
	for _, p := range All() {
		r := sim.NewRNG(5)
		xs := make([]float64, 50000)
		for i := range xs {
			xs[i] = p.Sampler.Sample(r).ServiceRef.Seconds()
		}
		ratios[p.Name] = stats.Percentile(xs, 99.9) / stats.Mean(xs)
	}
	if ratios[Moses] < 5 {
		t.Errorf("Moses tail/mean = %.2f, want >= 5 (paper: ~8)", ratios[Moses])
	}
	if ratios[ImgDNN] > 2 {
		t.Errorf("Img-dnn tail/mean = %.2f, want nearly deterministic (< 2)", ratios[ImgDNN])
	}
	if ratios[Moses] <= ratios[Xapian] {
		t.Errorf("Moses (%.2f) should be more skewed than Xapian (%.2f)",
			ratios[Moses], ratios[Xapian])
	}
}

// Mean service times must be on the right order of magnitude for each app:
// they anchor all load calculations.
func TestMeanServiceMagnitude(t *testing.T) {
	want := map[string][2]float64{ // [lo, hi) in milliseconds
		Xapian:   {0.5, 3},
		Masstree: {0.02, 0.2},
		Moses:    {5, 40},
		Sphinx:   {400, 1500},
		ImgDNN:   {1, 3},
	}
	for name, bounds := range want {
		p := MustByName(name)
		m := p.MeanService(1, 30000).Milliseconds()
		if m < bounds[0] || m >= bounds[1] {
			t.Errorf("%s mean service %.3f ms outside [%g, %g)", name, m, bounds[0], bounds[1])
		}
	}
}

func TestMaxCapacityScalesWithFrequency(t *testing.T) {
	p := MustByName(Xapian)
	lo := p.MaxCapacity(1.0, 1)
	hi := p.MaxCapacity(2.1, 1)
	if hi <= lo {
		t.Errorf("capacity at 2.1GHz (%v) not above 1.0GHz (%v)", hi, lo)
	}
	// With MemFrac > 0, capacity is sub-linear in frequency.
	if hi/lo >= 2.1 {
		t.Errorf("capacity ratio %v should be sub-linear (memory-bound floor)", hi/lo)
	}
}

func TestServiceQuantilesSorted(t *testing.T) {
	p := MustByName(Xapian)
	qs := p.ServiceQuantiles(1, 10000, 0.5, 0.9, 0.99)
	if !(qs[0] < qs[1] && qs[1] < qs[2]) {
		t.Errorf("quantiles not increasing: %v", qs)
	}
}

func TestTailedSamplerValidate(t *testing.T) {
	bad := []TailedSampler{
		{BaseUS: -1},
		{Sigma1: -1},
		{TailProb: 1.5},
		{TailProb: 0.1, TailScale: 0, TailAlpha: 1},
		{TypeMuls: []float64{1}, TypeProbs: nil},
	}
	for i, s := range bad {
		if s.Validate() == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestMasstreeRequestTypes(t *testing.T) {
	p := MustByName(Masstree)
	r := sim.NewRNG(8)
	counts := map[int]int{}
	const n = 20000
	for i := 0; i < n; i++ {
		w := p.Sampler.Sample(r)
		counts[int(w.Features[2])]++
	}
	putFrac := float64(counts[0]) / n
	if math.Abs(putFrac-0.9) > 0.02 {
		t.Errorf("PUT fraction = %v, want ~0.9", putFrac)
	}
}

func cpuFreq(f float64) cpu.Freq { return cpu.Freq(f) }

func BenchmarkSample(b *testing.B) {
	p := MustByName(Moses)
	r := sim.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Sampler.Sample(r)
	}
}
