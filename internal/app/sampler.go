package app

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/sim"
)

// TailedSampler is the request population generator shared by all profiles.
//
// A request draws three observable features:
//
//	x1 ~ LogNormal(0, Sigma1)   — "input size" (query terms, sentence length…)
//	x2 ~ Uniform[0, 1)          — secondary input property
//	x3 ~ categorical type       — request class (e.g. GET vs PUT)
//
// and its uncontended reference service time is
//
//	S = (BaseUS + CoefUS·x1·(1 + Inter·x2)) · typeMul(x3) · noise  [+ tail]
//
// where noise is LogNormal(0, NoiseSigma) and, with probability TailProb, a
// Pareto(TailScaleUS, TailAlpha) spike is added. The observable features
// explain most of the variance (so per-request predictors can work at a
// fixed load, as ReTail reports), while the interaction term, noise, and
// spikes leave the irreducible long tail seen in Fig. 1.
type TailedSampler struct {
	BaseUS     float64   // constant service component, µs
	CoefUS     float64   // µs of service per unit x1
	Sigma1     float64   // log-σ of x1
	Inter      float64   // strength of the x1·x2 interaction
	TypeMuls   []float64 // service multiplier per request type
	TypeProbs  []float64 // probability of each type (sums to 1)
	NoiseSigma float64   // log-σ of multiplicative noise
	TailProb   float64   // probability of a Pareto spike
	TailScale  float64   // Pareto scale, µs
	TailAlpha  float64   // Pareto shape
}

// FeatureDim implements Sampler. Features are [x1, x2, type].
func (s *TailedSampler) FeatureDim() int { return 3 }

// Sample implements Sampler.
func (s *TailedSampler) Sample(r *sim.RNG) Work {
	var w Work
	s.SampleInto(r, &w)
	return w
}

// SampleInto implements IntoSampler: identical draws to Sample, but the
// sampled work overwrites w, reusing its Features storage when the backing
// array is large enough.
func (s *TailedSampler) SampleInto(r *sim.RNG, w *Work) {
	x1 := r.LogNormal(0, s.Sigma1)
	x2 := r.Float64()
	typ := s.sampleType(r)

	us := (s.BaseUS + s.CoefUS*x1*(1+s.Inter*x2)) * s.typeMul(typ)
	if s.NoiseSigma > 0 {
		us *= r.LogNormal(0, s.NoiseSigma)
	}
	if s.TailProb > 0 && r.Bernoulli(s.TailProb) {
		us += r.Pareto(s.TailScale, s.TailAlpha)
	}
	w.ServiceRef = sim.Micros(us)
	w.Features = append(w.Features[:0], x1, x2, float64(typ))
}

func (s *TailedSampler) sampleType(r *sim.RNG) int {
	if len(s.TypeProbs) == 0 {
		return 0
	}
	u := r.Float64()
	acc := 0.0
	for i, p := range s.TypeProbs {
		acc += p
		if u < acc {
			return i
		}
	}
	return len(s.TypeProbs) - 1
}

func (s *TailedSampler) typeMul(typ int) float64 {
	if typ < len(s.TypeMuls) {
		return s.TypeMuls[typ]
	}
	return 1
}

// Validate reports an error for malformed samplers.
func (s *TailedSampler) Validate() error {
	switch {
	case s.BaseUS < 0 || s.CoefUS < 0:
		return fmt.Errorf("app: negative service coefficients")
	case s.Sigma1 < 0 || s.NoiseSigma < 0:
		return fmt.Errorf("app: negative sigma")
	case s.TailProb < 0 || s.TailProb > 1:
		return fmt.Errorf("app: TailProb outside [0,1]")
	case s.TailProb > 0 && (s.TailScale <= 0 || s.TailAlpha <= 0):
		return fmt.Errorf("app: tail enabled with invalid Pareto parameters")
	case len(s.TypeMuls) != len(s.TypeProbs):
		return fmt.Errorf("app: TypeMuls/TypeProbs length mismatch")
	}
	return nil
}
