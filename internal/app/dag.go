package app

import (
	"fmt"
	"strings"
	"time"

	"github.com/deeppower/deeppower/internal/sim"
)

// DAGStage is one stage of a DAG-structured request: a unit of work with its
// own service-time distribution that may run only after its predecessors.
type DAGStage struct {
	// Name labels the stage ("auth", "rank").
	Name string
	// Sampler draws the stage's work.
	Sampler Sampler
	// Preds are indices of stages that must complete before this one is
	// admitted to the server queue.
	Preds []int
}

// DAG is a request's stage graph: a microservice chain/fan-out where the SLA
// applies to the end-to-end latency of the whole graph, not to any single
// stage (the HiDVFS-style real-time DAG workload model). Validate must
// succeed before the DAG is used; it also precomputes successor lists,
// roots, and a topological order.
type DAG struct {
	// Name labels the graph in reports.
	Name string
	// Stages in index order. Edges are Preds indices into this slice.
	Stages []DAGStage

	succs [][]int
	roots []int
	order []int
}

// Validate checks the graph — in-range acyclic edges, no self-loops,
// samplers present — and precomputes the derived views (successors, roots,
// topological order) the server's admission path consumes.
func (d *DAG) Validate() error {
	n := len(d.Stages)
	if n == 0 {
		return fmt.Errorf("app: DAG %q has no stages", d.Name)
	}
	d.succs = make([][]int, n)
	d.roots = d.roots[:0]
	indeg := make([]int, n)
	for i, st := range d.Stages {
		if st.Sampler == nil {
			return fmt.Errorf("app: DAG %q stage %d (%s): nil sampler", d.Name, i, st.Name)
		}
		seen := make(map[int]bool, len(st.Preds))
		for _, p := range st.Preds {
			if p < 0 || p >= n {
				return fmt.Errorf("app: DAG %q stage %d (%s): dangling predecessor %d", d.Name, i, st.Name, p)
			}
			if p == i {
				return fmt.Errorf("app: DAG %q stage %d (%s): self-loop", d.Name, i, st.Name)
			}
			if seen[p] {
				return fmt.Errorf("app: DAG %q stage %d (%s): duplicate predecessor %d", d.Name, i, st.Name, p)
			}
			seen[p] = true
			d.succs[p] = append(d.succs[p], i)
			indeg[i]++
		}
	}
	// Kahn's algorithm: a complete topological order proves acyclicity.
	d.order = d.order[:0]
	var frontier []int
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			frontier = append(frontier, i)
			d.roots = append(d.roots, i)
		}
	}
	for len(frontier) > 0 {
		i := frontier[0]
		frontier = frontier[1:]
		d.order = append(d.order, i)
		for _, nx := range d.succs[i] {
			indeg[nx]--
			if indeg[nx] == 0 {
				frontier = append(frontier, nx)
			}
		}
	}
	if len(d.order) != n {
		return fmt.Errorf("app: DAG %q contains a cycle", d.Name)
	}
	return nil
}

// NumStages returns the number of stages.
func (d *DAG) NumStages() int { return len(d.Stages) }

// Roots returns the stages with no predecessors (callers must not mutate).
func (d *DAG) Roots() []int { return d.roots }

// Succs returns the successors of stage i (callers must not mutate).
func (d *DAG) Succs(i int) []int { return d.succs[i] }

// Preds returns the predecessors of stage i (callers must not mutate).
func (d *DAG) Preds(i int) []int { return d.Stages[i].Preds }

// MeanTotalService estimates the population mean of the summed per-stage
// reference service times — the total work one job brings, which bounds
// sustainable job throughput at Workers/mean. Deterministic for a seed.
func (d *DAG) MeanTotalService(seed int64, n int) sim.Time {
	r := sim.NewRNG(seed).Stream("mean-service-dag-" + d.Name)
	var sum float64
	for i := 0; i < n; i++ {
		for _, st := range d.Stages {
			sum += float64(st.Sampler.Sample(r).ServiceRef)
		}
	}
	return sim.Time(sum / float64(n))
}

// FixedSampler draws a constant service time with no features — the
// degenerate distribution ParseDAG attaches to parsed stages and tests use
// for exactly predictable schedules.
type FixedSampler struct{ Service sim.Time }

// Sample implements Sampler.
func (s FixedSampler) Sample(*sim.RNG) Work { return Work{ServiceRef: s.Service} }

// FeatureDim implements Sampler.
func (s FixedSampler) FeatureDim() int { return 0 }

// SampleInto implements IntoSampler. It consumes no randomness, like Sample.
func (s FixedSampler) SampleInto(_ *sim.RNG, w *Work) {
	w.ServiceRef = s.Service
	w.Features = w.Features[:0]
}

// ParseDAG builds a DAG from a compact text form: stages separated by ';'
// or newlines, each
//
//	name
//	name(duration)
//	name:pred1,pred2
//	name(duration):pred1,pred2
//
// where predecessors are earlier stage names and duration is a Go duration
// ("500us", "2ms") giving the stage a FixedSampler (default 1ms). Example:
//
//	gate(500us); auth(1ms):gate; search(2ms):gate; merge(1ms):auth,search
//
// The returned DAG is validated: cycles (unreachable in this forward-
// reference-free form), dangling predecessor names, duplicate stage names,
// and empty graphs are all errors.
func ParseDAG(name, spec string) (*DAG, error) {
	d := &DAG{Name: name}
	index := make(map[string]int)
	fields := strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == '\n' })
	for _, raw := range fields {
		raw = strings.TrimSpace(raw)
		if raw == "" {
			continue
		}
		head, predPart, hasPreds := strings.Cut(raw, ":")
		head = strings.TrimSpace(head)
		service := sim.Millisecond
		if open := strings.IndexByte(head, '('); open >= 0 {
			if !strings.HasSuffix(head, ")") {
				return nil, fmt.Errorf("app: DAG %q stage %q: unterminated duration", name, head)
			}
			dur, err := time.ParseDuration(head[open+1 : len(head)-1])
			if err != nil || dur <= 0 {
				return nil, fmt.Errorf("app: DAG %q stage %q: bad duration", name, head)
			}
			service = sim.Time(dur.Nanoseconds())
			head = strings.TrimSpace(head[:open])
		}
		if head == "" {
			return nil, fmt.Errorf("app: DAG %q: unnamed stage in %q", name, raw)
		}
		if _, dup := index[head]; dup {
			return nil, fmt.Errorf("app: DAG %q: duplicate stage %q", name, head)
		}
		st := DAGStage{Name: head, Sampler: FixedSampler{Service: service}}
		if hasPreds {
			for _, p := range strings.Split(predPart, ",") {
				p = strings.TrimSpace(p)
				if p == "" {
					return nil, fmt.Errorf("app: DAG %q stage %q: empty predecessor", name, head)
				}
				pi, ok := index[p]
				if !ok {
					return nil, fmt.Errorf("app: DAG %q stage %q: unknown predecessor %q", name, head, p)
				}
				st.Preds = append(st.Preds, pi)
			}
		}
		index[head] = len(d.Stages)
		d.Stages = append(d.Stages, st)
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}
