// Package app models the five Tailbench latency-critical applications the
// paper evaluates (Xapian, Masstree, Moses, Sphinx, Img-dnn).
//
// The real Tailbench binaries enter the paper's evaluation only through
// (i) their request service-time distributions (long-tailed, Fig. 1),
// (ii) their SLAs and measured 99th-percentile latency at different loads
// (Table 3), (iii) how service time responds to CPU frequency, and (iv) the
// per-request features the ReTail/Gemini predictors consume. Profiles here
// encode exactly those four things, calibrated against the paper's Table 3.
package app

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/sim"
)

// Work describes one request's computational demand and its observable
// features, as sampled from an application's request population.
type Work struct {
	// ServiceRef is the uncontended service time at the profile's reference
	// frequency. The server converts it into cycles.
	ServiceRef sim.Time
	// Features is the observable request feature vector (e.g. query terms,
	// sentence length) that service-time predictors may use. It does NOT
	// determine ServiceRef exactly: profiles include irreducible noise and a
	// heavy tail, as real applications do.
	Features []float64
}

// Sampler draws request Work from an application's population.
type Sampler interface {
	Sample(r *sim.RNG) Work
	// FeatureDim reports the length of Work.Features.
	FeatureDim() int
}

// IntoSampler is an optional Sampler extension for allocation-free request
// generation: SampleInto overwrites w in place, reusing w.Features' backing
// storage. It must consume the RNG exactly as Sample does, so the two forms
// are interchangeable without perturbing seeded runs. The server uses it to
// pool Request objects without allocating a feature vector per arrival.
type IntoSampler interface {
	Sampler
	SampleInto(r *sim.RNG, w *Work)
}

// Profile is one latency-critical application.
type Profile struct {
	// Name is the Tailbench application name.
	Name string
	// SLA is the tail-latency requirement (Table 3).
	SLA sim.Time
	// Workers is the number of worker threads, each pinned to one core
	// (20 in the paper; 8 for Masstree due to its memory overhead).
	Workers int
	// RefFreq is the frequency ServiceRef is defined at (the 2.1 GHz
	// non-turbo maximum of the testbed CPU).
	RefFreq cpu.Freq
	// MemFrac is the fraction of service time that does not scale with
	// frequency (memory/IO-bound work). 0 = perfectly frequency-scalable.
	MemFrac float64
	// ContentionCoef inflates service time with worker utilization:
	// actual = sampled · (1 + ContentionCoef·ρ) where ρ is the fraction of
	// other workers busy at dispatch. This models the shared cache/memory
	// contention §3.1 identifies as what breaks static predictors.
	ContentionCoef float64
	// Sampler draws request work.
	Sampler Sampler
	// DAG, when non-nil, makes every arrival a stage graph instead of a
	// single request: stages carry their own samplers and enter the queue
	// only when their predecessors complete, and the SLA applies to the
	// job's end-to-end latency. Sampler may be nil when DAG is set.
	DAG *DAG
}

// Validate reports an error for malformed profiles.
func (p *Profile) Validate() error {
	switch {
	case p.Name == "":
		return fmt.Errorf("app: profile missing name")
	case p.SLA <= 0:
		return fmt.Errorf("app %s: non-positive SLA", p.Name)
	case p.Workers <= 0:
		return fmt.Errorf("app %s: non-positive worker count", p.Name)
	case p.RefFreq <= 0:
		return fmt.Errorf("app %s: non-positive reference frequency", p.Name)
	case p.MemFrac < 0 || p.MemFrac >= 1:
		return fmt.Errorf("app %s: MemFrac %v outside [0,1)", p.Name, p.MemFrac)
	case p.ContentionCoef < 0:
		return fmt.Errorf("app %s: negative ContentionCoef", p.Name)
	case p.Sampler == nil && p.DAG == nil:
		return fmt.Errorf("app %s: nil sampler", p.Name)
	}
	if p.DAG != nil {
		if err := p.DAG.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// ServiceAt converts an uncontended reference service time into wall time at
// frequency f: the memory-bound fraction is invariant, the CPU-bound
// remainder scales as RefFreq/f.
func (p *Profile) ServiceAt(ref sim.Time, f cpu.Freq) sim.Time {
	if f <= 0 {
		return sim.MaxTime
	}
	mem := float64(ref) * p.MemFrac
	cpuPart := float64(ref) * (1 - p.MemFrac) * float64(p.RefFreq) / float64(f)
	return sim.Time(mem + cpuPart)
}

// SpeedAt returns the rate (reference-service seconds retired per wall
// second) a worker progresses at frequency f. ServiceAt(ref,f) == ref/SpeedAt(f).
func (p *Profile) SpeedAt(f cpu.Freq) float64 {
	if f <= 0 {
		return 0
	}
	return 1 / (p.MemFrac + (1-p.MemFrac)*float64(p.RefFreq)/float64(f))
}

// MeanService estimates the population mean of ServiceRef by sampling. For
// DAG profiles without a flat sampler it is the mean total work of one job
// (summed over stages). It is deterministic for a given seed.
func (p *Profile) MeanService(seed int64, n int) sim.Time {
	if p.Sampler == nil && p.DAG != nil {
		return p.DAG.MeanTotalService(seed, n)
	}
	r := sim.NewRNG(seed).Stream("mean-service-" + p.Name)
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(p.Sampler.Sample(r).ServiceRef)
	}
	return sim.Time(sum / float64(n))
}

// MaxCapacity returns the highest sustainable request rate (requests/second)
// with all workers at frequency f and no contention: Workers / meanService(f).
func (p *Profile) MaxCapacity(f cpu.Freq, seed int64) float64 {
	mean := p.MeanService(seed, 20000)
	at := p.ServiceAt(mean, f)
	return float64(p.Workers) / at.Seconds()
}
