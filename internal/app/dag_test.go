package app

import (
	"strings"
	"testing"

	"github.com/deeppower/deeppower/internal/sim"
)

// TestDAGValidate table-drives the graph validator over malformed graphs.
func TestDAGValidate(t *testing.T) {
	s := func(preds ...int) DAGStage {
		return DAGStage{Name: "s", Sampler: FixedSampler{Service: sim.Millisecond}, Preds: preds}
	}
	cases := []struct {
		name    string
		stages  []DAGStage
		wantErr string
	}{
		{"empty", nil, "no stages"},
		{"nil sampler", []DAGStage{{Name: "s"}}, "nil sampler"},
		{"dangling low", []DAGStage{s(-1)}, "dangling"},
		{"dangling high", []DAGStage{s(7)}, "dangling"},
		{"self loop", []DAGStage{s(0)}, "self-loop"},
		{"duplicate pred", []DAGStage{s(), s(0, 0)}, "duplicate"},
		{"two cycle", []DAGStage{s(1), s(0)}, "cycle"},
		{"three cycle", []DAGStage{s(), s(2), s(1)}, "cycle"},
		{"single stage", []DAGStage{s()}, ""},
		{"diamond", []DAGStage{s(), s(0), s(0), s(1, 2)}, ""},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			d := &DAG{Name: tc.name, Stages: tc.stages}
			err := d.Validate()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("Validate = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestDAGDerivedViews checks the precomputed roots/successors/order on the
// diamond graph.
func TestDAGDerivedViews(t *testing.T) {
	d, err := ParseDAG("diamond", "gate(500us); auth(1ms):gate; search(2ms):gate; merge(1ms):auth,search")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumStages() != 4 {
		t.Fatalf("stages = %d", d.NumStages())
	}
	if got := d.Roots(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("roots = %v", got)
	}
	if got := d.Succs(0); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("succs(0) = %v", got)
	}
	if got := d.Preds(3); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("preds(3) = %v", got)
	}
	if w := d.Stages[2].Sampler.Sample(nil); w.ServiceRef != 2*sim.Millisecond {
		t.Fatalf("parsed duration = %v", w.ServiceRef)
	}
}

// TestParseDAGErrors covers the parser's rejection paths.
func TestParseDAGErrors(t *testing.T) {
	cases := []struct {
		spec, wantErr string
	}{
		{"", "no stages"},
		{" ; \n ", "no stages"},
		{"a; a", "duplicate stage"},
		{"a; b:c", "unknown predecessor"},
		{"a; b:", "empty predecessor"},
		{"a; b:a,,a", "empty predecessor"},
		{"a(", "unterminated duration"},
		{"a(1ms", "unterminated duration"},
		{"a(xyz)", "bad duration"},
		{"a(-1ms)", "bad duration"},
		{"a(0s)", "bad duration"},
		{"(1ms)", "unnamed stage"},
		{"a; b:b", "unknown predecessor"}, // forward/self references can't resolve
	}
	for _, tc := range cases {
		if _, err := ParseDAG("t", tc.spec); err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("ParseDAG(%q) = %v, want error containing %q", tc.spec, err, tc.wantErr)
		}
	}
}

// TestParseDAGSingleStage covers the degenerate one-stage graph: no edges,
// default duration, trivially valid.
func TestParseDAGSingleStage(t *testing.T) {
	d, err := ParseDAG("one", "only")
	if err != nil {
		t.Fatal(err)
	}
	if d.NumStages() != 1 || len(d.Roots()) != 1 || len(d.Succs(0)) != 0 {
		t.Fatalf("degenerate graph views: stages=%d roots=%v succs=%v",
			d.NumStages(), d.Roots(), d.Succs(0))
	}
	if w := d.Stages[0].Sampler.Sample(nil); w.ServiceRef != sim.Millisecond {
		t.Fatalf("default duration = %v", w.ServiceRef)
	}
}

// TestMeanTotalServiceDeterministic pins the capacity estimate: positive,
// seed-stable, and at least the sum of fixed stage durations.
func TestMeanTotalServiceDeterministic(t *testing.T) {
	d, err := ParseDAG("m", "a(1ms); b(2ms):a; c(3ms):b")
	if err != nil {
		t.Fatal(err)
	}
	m1, m2 := d.MeanTotalService(7, 500), d.MeanTotalService(7, 500)
	if m1 != m2 {
		t.Fatalf("not seed-stable: %v vs %v", m1, m2)
	}
	if m1 != 6*sim.Millisecond {
		t.Fatalf("fixed-sampler mean = %v, want 6ms", m1)
	}
}

// FuzzParseDAG throws arbitrary specs at the parser. Invariants: never
// panics, and anything accepted is a well-formed acyclic graph — Validate
// holds (and is idempotent), every stage has a sampler, roots are non-empty,
// and predecessor edges only point at earlier stages (the forward-reference-
// free text form cannot express a cycle).
func FuzzParseDAG(f *testing.F) {
	f.Add("gate(500us); auth(1ms):gate; search(2ms):gate; merge(1ms):auth,search")
	f.Add("only")
	f.Add("a; b:a\nc(250us):a,b")
	f.Add("a; a")     // duplicate stage name
	f.Add("x:y")      // dangling predecessor
	f.Add("a(")       // unterminated duration
	f.Add("a(10h):a") // self reference
	f.Add("; ; ;")    // empty
	f.Add("a(1ns); b(1000h):a")
	f.Fuzz(func(t *testing.T, spec string) {
		d, err := ParseDAG("fuzz", spec)
		if err != nil {
			return
		}
		if d.NumStages() == 0 {
			t.Fatal("accepted an empty graph")
		}
		if len(d.Roots()) == 0 {
			t.Fatal("accepted a graph with no roots")
		}
		seen := make(map[string]bool, d.NumStages())
		for i, st := range d.Stages {
			if st.Sampler == nil {
				t.Fatalf("stage %d: nil sampler", i)
			}
			if st.Name == "" || seen[st.Name] {
				t.Fatalf("stage %d: empty or duplicate name %q", i, st.Name)
			}
			seen[st.Name] = true
			for _, p := range st.Preds {
				if p < 0 || p >= i {
					t.Fatalf("stage %d: non-forward predecessor %d", i, p)
				}
			}
		}
		if err := d.Validate(); err != nil {
			t.Fatalf("re-Validate failed on an accepted graph: %v", err)
		}
	})
}
