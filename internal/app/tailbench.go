package app

import (
	"fmt"
	"sort"

	"github.com/deeppower/deeppower/internal/sim"
)

// The five Tailbench applications of the paper's Table 3, with their SLAs.
// Sampler constants are calibrated so that (a) the 99th-percentile latency
// at 20/50/70% load under maximum frequency approximates the paper's
// Table 3 rows and (b) tail/mean service ratios follow Fig. 1 (Moses ≈ 8×).
const (
	Xapian   = "xapian"
	Masstree = "masstree"
	Moses    = "moses"
	Sphinx   = "sphinx"
	ImgDNN   = "img-dnn"
)

// Names lists the built-in application names in the paper's Table 3 order.
func Names() []string {
	return []string{Xapian, Masstree, Moses, Sphinx, ImgDNN}
}

// ByName returns a fresh Profile for one of the built-in applications.
// The returned profile is owned by the caller and may be modified.
func ByName(name string) (*Profile, error) {
	switch name {
	case Xapian:
		return newXapian(), nil
	case Masstree:
		return newMasstree(), nil
	case Moses:
		return newMoses(), nil
	case Sphinx:
		return newSphinx(), nil
	case ImgDNN:
		return newImgDNN(), nil
	}
	return nil, fmt.Errorf("app: unknown application %q (have %v)", name, Names())
}

// MustByName is ByName for static names; it panics on error.
func MustByName(name string) *Profile {
	p, err := ByName(name)
	if err != nil {
		panic(err)
	}
	return p
}

// All returns fresh profiles for every built-in application.
func All() []*Profile {
	out := make([]*Profile, 0, len(Names()))
	for _, n := range Names() {
		out = append(out, MustByName(n))
	}
	return out
}

const refFreq = 2.1 // GHz, the testbed's non-turbo maximum

// newXapian models the Xapian search engine over English Wikipedia:
// millisecond-scale queries whose cost tracks term count, moderate tail.
// SLA 8 ms; Table 3 p99 latency 2.74/3.61/4.62 ms at 20/50/70% load.
func newXapian() *Profile {
	return &Profile{
		Name:           Xapian,
		SLA:            8 * sim.Millisecond,
		Workers:        20,
		RefFreq:        refFreq,
		MemFrac:        0.15,
		ContentionCoef: 0.30,
		Sampler: &TailedSampler{
			BaseUS:     300,
			CoefUS:     650,
			Sigma1:     0.42,
			Inter:      0.5,
			TypeMuls:   []float64{1},
			TypeProbs:  []float64{1},
			NoiseSigma: 0.10,
			TailProb:   0.008,
			TailScale:  1300,
			TailAlpha:  2.6,
		},
	}
}

// newMasstree models the Masstree key-value store under YCSB-A-like traffic
// (two request classes: cheap GETs, dearer PUTs): tens-of-microseconds
// requests, 8 workers. SLA 1 ms; p99 0.191/0.402/0.657 ms.
func newMasstree() *Profile {
	return &Profile{
		Name:           Masstree,
		SLA:            1 * sim.Millisecond,
		Workers:        8,
		RefFreq:        refFreq,
		MemFrac:        0.35, // KV stores are memory-latency bound
		ContentionCoef: 0.30,
		Sampler: &TailedSampler{
			BaseUS:     20,
			CoefUS:     32,
			Sigma1:     0.52,
			Inter:      0.4,
			TypeMuls:   []float64{1.25, 0.55}, // PUT, GET
			TypeProbs:  []float64{0.9, 0.1},   // "90% PUTs 10% GETs"
			NoiseSigma: 0.12,
			TailProb:   0.010,
			TailScale:  90,
			TailAlpha:  2.4,
		},
	}
}

// newMoses models the Moses statistical machine translation system:
// service cost grows with sentence length, strongly long-tailed
// (Fig. 1: tail ≈ 8× mean). SLA 120 ms; p99 31.0/77.9/100.5 ms.
func newMoses() *Profile {
	return &Profile{
		Name:           Moses,
		SLA:            120 * sim.Millisecond,
		Workers:        20,
		RefFreq:        refFreq,
		MemFrac:        0.10,
		ContentionCoef: 0.40,
		Sampler: &TailedSampler{
			BaseUS:     1500,
			CoefUS:     6200,
			Sigma1:     0.50,
			Inter:      0.6,
			TypeMuls:   []float64{1},
			TypeProbs:  []float64{1},
			NoiseSigma: 0.15,
			TailProb:   0.010,
			TailScale:  14000,
			TailAlpha:  1.9,
		},
	}
}

// newSphinx models the Sphinx speech recognizer on CMU AN4: second-scale
// utterance decoding with broad spread. SLA 4000 ms; p99 1760/2041/2293 ms.
func newSphinx() *Profile {
	return &Profile{
		Name:           Sphinx,
		SLA:            4000 * sim.Millisecond,
		Workers:        20,
		RefFreq:        refFreq,
		MemFrac:        0.10,
		ContentionCoef: 0.20,
		Sampler: &TailedSampler{
			BaseUS:     165000,
			CoefUS:     385000,
			Sigma1:     0.50,
			Inter:      0.4,
			TypeMuls:   []float64{1},
			TypeProbs:  []float64{1},
			NoiseSigma: 0.10,
			TailProb:   0.008,
			TailScale:  700000,
			TailAlpha:  3.0,
		},
	}
}

// newImgDNN models Img-dnn MNIST inference: a fixed-size network makes
// service time nearly deterministic (Table 3's p99 barely moves with load).
// SLA 5 ms; p99 2.302/2.295/2.476 ms.
func newImgDNN() *Profile {
	return &Profile{
		Name:           ImgDNN,
		SLA:            5 * sim.Millisecond,
		Workers:        20,
		RefFreq:        refFreq,
		MemFrac:        0.12,
		ContentionCoef: 0.05,
		Sampler: &TailedSampler{
			BaseUS:     1750,
			CoefUS:     150,
			Sigma1:     0.25,
			Inter:      0.2,
			TypeMuls:   []float64{1},
			TypeProbs:  []float64{1},
			NoiseSigma: 0.04,
			TailProb:   0,
			TailScale:  0,
			TailAlpha:  0,
		},
	}
}

// PaperTable3 records the paper's measured 99th-percentile latency (ms) at
// each load level, used by EXPERIMENTS.md comparisons and calibration tests.
var PaperTable3 = map[string]struct {
	SLAms float64
	P99ms [3]float64 // at 20%, 50%, 70% load
}{
	Xapian:   {8, [3]float64{2.742, 3.614, 4.617}},
	Masstree: {1, [3]float64{0.191, 0.402, 0.657}},
	Moses:    {120, [3]float64{30.99, 77.92, 100.49}},
	Sphinx:   {4000, [3]float64{1759.8, 2040.7, 2292.8}},
	ImgDNN:   {5, [3]float64{2.302, 2.295, 2.476}},
}

// ServiceQuantiles samples n requests and returns the requested quantiles of
// ServiceRef in milliseconds (helper for calibration and Fig. 1).
func (p *Profile) ServiceQuantiles(seed int64, n int, qs ...float64) []float64 {
	r := sim.NewRNG(seed).Stream("quantiles-" + p.Name)
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = p.Sampler.Sample(r).ServiceRef.Milliseconds()
	}
	sort.Float64s(xs)
	out := make([]float64, len(qs))
	for i, q := range qs {
		idx := int(q * float64(n-1))
		out[i] = xs[idx]
	}
	return out
}
