package fault

import (
	"bytes"
	"io"

	"github.com/deeppower/deeppower/internal/ckpt"
)

// PolicyReloader is any agent whose decision network can be replaced from a
// saved policy snapshot; every rl trainer implements it via LoadPolicy.
type PolicyReloader interface {
	LoadPolicy(io.Reader) error
}

// RegistryRollback builds a GuardConfig.Rollback hook over a checkpoint
// registry: each invocation demotes the registry's current policy version
// and loads the newly current (previous known-good) version into target.
// It reports false — letting the guard escalate to max-frequency safe mode —
// when no older version exists or the stored snapshot fails validation.
func RegistryRollback(reg *ckpt.Registry, target PolicyReloader) func() bool {
	return func() bool {
		if _, err := reg.Rollback(); err != nil {
			return false
		}
		_, kind, payload, err := reg.GetCurrent()
		if err != nil {
			return false
		}
		return target.LoadPolicy(bytes.NewReader(ckpt.Seal(kind, payload))) == nil
	}
}
