package fault

import (
	"bytes"
	"testing"

	"github.com/deeppower/deeppower/internal/ckpt"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/rl"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// fakeCtl is the minimal Control surface the guard itself touches. The nil
// embedded interface panics on any other method, catching accidental use.
type fakeCtl struct {
	server.Control
	now   sim.Time
	sla   sim.Time
	freqs []cpu.Freq
	turbo cpu.Freq
}

func (f *fakeCtl) Now() sim.Time              { return f.now }
func (f *fakeCtl) NumCores() int              { return len(f.freqs) }
func (f *fakeCtl) SLA() sim.Time              { return f.sla }
func (f *fakeCtl) Ladder() cpu.Ladder         { return cpu.Ladder{Min: 0.8, Max: 2.1, Turbo: f.turbo} }
func (f *fakeCtl) Freq(i int) cpu.Freq        { return f.freqs[i] }
func (f *fakeCtl) SetTurbo(i int)             { f.freqs[i] = f.turbo }
func (f *fakeCtl) SetFreq(i int, fr cpu.Freq) { f.freqs[i] = fr }
func (f *fakeCtl) Topology() *cpu.Topology    { return nil }

// rollbackGuardConfig is shared by the ladder tests: checks every 10 ms over
// a 100 ms window, trips at a 10% timeout rate after 4 samples.
func rollbackGuardConfig(hook func() bool, maxRollbacks int) GuardConfig {
	return GuardConfig{
		CheckEvery:       10 * sim.Millisecond,
		Window:           100 * sim.Millisecond,
		TimeoutRateLimit: 0.10,
		MinSamples:       4,
		Rollback:         hook,
		MaxRollbacks:     maxRollbacks,
	}
}

// feed pushes n completions with the given latency and advances virtual time
// past the next health check.
func feed(g *GuardedPolicy, ctl *fakeCtl, n int, latency sim.Time) {
	for i := 0; i < n; i++ {
		ctl.now += sim.Millisecond
		g.OnComplete(&server.Request{Arrive: ctl.now - latency}, 0)
	}
	ctl.now += 10 * sim.Millisecond
	g.OnTick(ctl.now)
}

// TestGuardEscalationLadder walks the full ladder: healthy → breach →
// rollback (engaged) → breach → rollback → breach with the budget exhausted
// → max-frequency safe mode.
func TestGuardEscalationLadder(t *testing.T) {
	hookCalls := 0
	g := NewGuardedPolicy(&server.BasePolicy{}, rollbackGuardConfig(func() bool {
		hookCalls++
		return true
	}, 2))
	ctl := &fakeCtl{sla: 10 * sim.Millisecond, freqs: make([]cpu.Freq, 3), turbo: 2.8}
	g.Init(ctl)

	// Healthy traffic: no intervention.
	feed(g, ctl, 8, 2*sim.Millisecond)
	if g.SafeMode() || hookCalls != 0 {
		t.Fatalf("healthy window tripped the guard: safe=%v hook=%d", g.SafeMode(), hookCalls)
	}

	// First breach → rollback rung, guard stays engaged.
	feed(g, ctl, 8, 50*sim.Millisecond)
	if hookCalls != 1 || g.SafeMode() {
		t.Fatalf("first breach: hook=%d safe=%v, want rollback while engaged", hookCalls, g.SafeMode())
	}
	st := g.Stats()
	if st.Rollbacks != 1 || st.Fallbacks != 0 {
		t.Fatalf("stats after first breach: %+v", st)
	}
	last := g.Transitions[len(g.Transitions)-1]
	if !last.RolledBack || last.ToSafe {
		t.Fatalf("transition not recorded as rollback: %+v", last)
	}
	if last.WindowTimeoutRate == 0 {
		t.Fatal("rollback transition lost its health-window reading")
	}

	// Second breach → second (final budgeted) rollback.
	feed(g, ctl, 8, 50*sim.Millisecond)
	if hookCalls != 2 || g.SafeMode() {
		t.Fatalf("second breach: hook=%d safe=%v", hookCalls, g.SafeMode())
	}

	// Third breach: rollback budget exhausted → safe mode, turbo pinned.
	feed(g, ctl, 8, 50*sim.Millisecond)
	if hookCalls != 2 {
		t.Fatalf("hook called past MaxRollbacks: %d", hookCalls)
	}
	if !g.SafeMode() {
		t.Fatal("exhausted rollback budget did not escalate to safe mode")
	}
	g.OnTick(ctl.now + sim.Millisecond)
	for i, f := range ctl.freqs {
		if f != ctl.turbo {
			t.Fatalf("core %d not pinned at turbo in safe mode: %v", i, f)
		}
	}
	st = g.Stats()
	if st.Rollbacks != 2 || st.Fallbacks != 1 {
		t.Fatalf("final stats: %+v", st)
	}
}

// TestGuardRollbackHookFailureEscalates checks a failing hook (no earlier
// version to fall back to) sends the guard straight to safe mode.
func TestGuardRollbackHookFailureEscalates(t *testing.T) {
	g := NewGuardedPolicy(&server.BasePolicy{}, rollbackGuardConfig(func() bool { return false }, 3))
	ctl := &fakeCtl{sla: 10 * sim.Millisecond, freqs: make([]cpu.Freq, 2), turbo: 2.8}
	g.Init(ctl)

	feed(g, ctl, 8, 50*sim.Millisecond)
	if !g.SafeMode() {
		t.Fatal("failed rollback hook did not escalate to safe mode")
	}
	st := g.Stats()
	if st.Rollbacks != 0 || st.Fallbacks != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestGuardRollbackBudgetResets checks a rolled-back policy that survives a
// full healthy window earns its rollback budget back.
func TestGuardRollbackBudgetResets(t *testing.T) {
	hookCalls := 0
	g := NewGuardedPolicy(&server.BasePolicy{}, rollbackGuardConfig(func() bool {
		hookCalls++
		return true
	}, 1))
	ctl := &fakeCtl{sla: 10 * sim.Millisecond, freqs: make([]cpu.Freq, 2), turbo: 2.8}
	g.Init(ctl)

	// Breach → the single budgeted rollback.
	feed(g, ctl, 8, 50*sim.Millisecond)
	if hookCalls != 1 || g.SafeMode() {
		t.Fatalf("hook=%d safe=%v", hookCalls, g.SafeMode())
	}

	// Healthy window with enough samples → budget resets.
	feed(g, ctl, 8, 2*sim.Millisecond)
	if g.rollbacks != 0 {
		t.Fatalf("healthy window did not reset the rollback budget: %d", g.rollbacks)
	}

	// A later breach may roll back again rather than pinning frequency.
	feed(g, ctl, 8, 50*sim.Millisecond)
	if hookCalls != 2 || g.SafeMode() {
		t.Fatalf("post-reset breach: hook=%d safe=%v", hookCalls, g.SafeMode())
	}
}

// TestRegistryRollbackHook wires a real checkpoint registry to a real DDPG
// agent: the hook demotes the registry's current version and loads the
// previous policy's weights, and reports false once no fallback remains.
func TestRegistryRollbackHook(t *testing.T) {
	reg, err := ckpt.OpenRegistry(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := rl.DDPGConfig{StateDim: 3, ActionDim: 2}

	putPolicy := func(seed int64) *rl.DDPG {
		c := cfg
		c.Seed = seed
		d, err := rl.NewDDPG(c)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := d.SavePolicy(&buf); err != nil {
			t.Fatal(err)
		}
		v, err := reg.Put(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if err := reg.Promote(v); err != nil {
			t.Fatal(err)
		}
		return d
	}

	good := putPolicy(1) // v1: the known-good policy
	putPolicy(2)         // v2: the "regressed" current policy

	target, err := rl.NewDDPG(rl.DDPGConfig{StateDim: 3, ActionDim: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	hook := RegistryRollback(reg, target)

	if !hook() {
		t.Fatal("rollback hook failed with a fallback version available")
	}
	if v, err := reg.Current(); err != nil || v != 1 {
		t.Fatalf("registry current after rollback: v%d err %v", v, err)
	}
	probe := []float64{0.3, 0.6, 0.9}
	want, got := good.Act(probe), target.Act(probe)
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("rolled-back policy action[%d] %v != v1 policy %v", i, got[i], want[i])
		}
	}

	// v1 is the only remaining history entry: no further fallback.
	if hook() {
		t.Fatal("rollback hook succeeded with nothing to fall back to")
	}
}
