package fault

import (
	"math"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// GuardConfig tunes the guarded-policy watchdog. The zero value selects the
// defaults below.
type GuardConfig struct {
	// CheckEvery is how often health is evaluated (default 50 ms).
	CheckEvery sim.Time
	// Window is the sliding window health is computed over (default 1 s).
	Window sim.Time
	// TimeoutRateLimit trips the guard when the windowed timeout rate
	// exceeds it (default 0.02 — twice the paper's Eq. 2 budget, so a
	// policy that merely skirts the 1% budget is not preempted).
	TimeoutRateLimit float64
	// P99Factor trips the guard when the windowed p99 latency exceeds
	// P99Factor x SLA (default 1.5).
	P99Factor float64
	// MinSamples is the minimum completions in the window before latency
	// health is judged (default 32).
	MinSamples int
	// MaxInvalid trips the guard after this many invalid inner-policy
	// actions within one window (default 3).
	MaxInvalid int
	// Backoff is the initial safe-mode dwell before the inner policy is
	// retried (default 1 s); it doubles per consecutive failed retry up
	// to MaxBackoff (default 16 s).
	Backoff    sim.Time
	MaxBackoff sim.Time
	// Rollback, when non-nil, inserts a rung into the escalation ladder:
	// on a health breach it is invoked before the guard pins max
	// frequency, and should restore the inner policy to its last
	// known-good version (see RegistryRollback), returning whether a
	// fallback version was engaged. On success the guard stays engaged on
	// the rolled-back policy; only when the hook fails — or MaxRollbacks
	// consecutive rollbacks breach again without an intervening healthy
	// window — does the guard degrade to max-frequency safe mode.
	Rollback func() bool
	// MaxRollbacks caps consecutive rollbacks between healthy windows
	// (default 3).
	MaxRollbacks int
}

func (c GuardConfig) withDefaults() GuardConfig {
	if c.CheckEvery <= 0 {
		c.CheckEvery = 50 * sim.Millisecond
	}
	if c.Window <= 0 {
		c.Window = sim.Second
	}
	if c.TimeoutRateLimit <= 0 {
		c.TimeoutRateLimit = 0.02
	}
	if c.P99Factor <= 0 {
		c.P99Factor = 1.5
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 32
	}
	if c.MaxInvalid <= 0 {
		c.MaxInvalid = 3
	}
	if c.Backoff <= 0 {
		c.Backoff = sim.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 16 * sim.Second
	}
	if c.MaxRollbacks <= 0 {
		c.MaxRollbacks = 3
	}
	return c
}

// GuardStats counts watchdog interventions.
type GuardStats struct {
	InvalidActions uint64 // inner-policy actions rejected or clamped
	Rollbacks      uint64 // policy rollbacks to a last-good version
	Fallbacks      uint64 // transitions into safe mode
	Reengages      uint64 // successful returns to the inner policy
	SafeTicks      uint64 // ticks spent in safe mode
}

// GuardedPolicy wraps an inner server.Policy with a watchdog: every action
// the inner policy takes is validated (NaN/Inf/out-of-range rejected), and
// a sliding window of completions is monitored for timeout-rate and
// tail-latency health. On a health breach — or repeated invalid actions —
// the guard degrades to a safe mode that pins every core at maximum
// frequency (the QoS-safe, power-hungry operating point a production
// deployment falls back to), then retries the inner policy with exponential
// backoff once the window looks healthy again.
//
// The guard is itself a server.Policy, so it wraps DeepPower, baselines, or
// any other policy unchanged, and it exports its counters on the Result via
// the server.StatsReporter hook.
type GuardedPolicy struct {
	inner server.Policy
	cfg   GuardConfig

	ctl   server.Control // the real, unguarded control
	gctl  *guardedControl
	sla   sim.Time
	turbo cpu.Freq

	safeMode    bool
	safeSince   sim.Time
	backoff     sim.Time
	nextCheck   sim.Time
	retryAt     sim.Time
	invalidBase int
	rollbacks   int // consecutive rollbacks since the last healthy window
	completions []guardSample

	stats GuardStats
	// Transitions logs every mode change for diagnostics.
	Transitions []GuardTransition
}

// GuardTransition is one watchdog mode change.
type GuardTransition struct {
	At     sim.Time
	ToSafe bool
	// RolledBack marks a policy rollback: the guard swapped the inner
	// policy to its last-good version and stayed engaged (ToSafe=false).
	RolledBack bool
	// WindowTimeoutRate and WindowP99 are the health-window readings at
	// the moment of the transition (fallbacks only; zero on re-engage).
	WindowTimeoutRate float64
	WindowP99         sim.Time
}

type guardSample struct {
	at       sim.Time
	latency  sim.Time
	timedOut bool
}

// WithGuard wraps inner with a default-configured watchdog.
func WithGuard(inner server.Policy) *GuardedPolicy {
	return NewGuardedPolicy(inner, GuardConfig{})
}

// NewGuardedPolicy wraps inner with a watchdog tuned by cfg.
func NewGuardedPolicy(inner server.Policy, cfg GuardConfig) *GuardedPolicy {
	return &GuardedPolicy{inner: inner, cfg: cfg.withDefaults()}
}

var (
	_ server.Policy        = (*GuardedPolicy)(nil)
	_ server.StatsReporter = (*GuardedPolicy)(nil)
)

// Name implements server.Policy.
func (g *GuardedPolicy) Name() string { return "guarded(" + g.inner.Name() + ")" }

// Init implements server.Policy. The inner policy receives a guarded
// Control handle; the guard keeps the real one for safe-mode actuation.
func (g *GuardedPolicy) Init(c server.Control) {
	g.ctl = c
	g.sla = c.SLA()
	g.turbo = c.Ladder().Turbo
	g.gctl = &guardedControl{Control: c, g: g}
	g.nextCheck = c.Now() + g.cfg.CheckEvery
	g.backoff = g.cfg.Backoff
	g.inner.Init(g.gctl)
}

// OnTick implements server.Policy.
func (g *GuardedPolicy) OnTick(now sim.Time) {
	if now >= g.nextCheck {
		g.checkHealth(now)
		g.nextCheck = now + g.cfg.CheckEvery
	}
	if g.safeMode {
		g.stats.SafeTicks++
		// Re-assert max frequency each tick: an actuation fault may have
		// dropped or delayed an earlier request, and throttles lift.
		for i := 0; i < g.ctl.NumCores(); i++ {
			if g.ctl.Freq(i) != g.turbo {
				g.ctl.SetTurbo(i)
			}
		}
		return
	}
	g.inner.OnTick(now)
}

// OnArrival implements server.Policy.
func (g *GuardedPolicy) OnArrival(r *server.Request) {
	if !g.safeMode {
		g.inner.OnArrival(r)
	}
}

// OnDispatch implements server.Policy.
func (g *GuardedPolicy) OnDispatch(r *server.Request, core int) {
	if !g.safeMode {
		g.inner.OnDispatch(r, core)
	}
}

// OnComplete implements server.Policy. Completions feed the health window
// in both modes; the inner policy only sees them when engaged.
func (g *GuardedPolicy) OnComplete(r *server.Request, core int) {
	now := g.ctl.Now()
	lat := now - r.Arrive
	g.completions = append(g.completions, guardSample{at: now, latency: lat, timedOut: lat > g.sla})
	if !g.safeMode {
		g.inner.OnComplete(r, core)
	}
}

// ResultStats implements server.StatsReporter.
func (g *GuardedPolicy) ResultStats() map[string]float64 {
	return map[string]float64{
		"guard.invalid_actions": float64(g.stats.InvalidActions),
		"guard.rollbacks":       float64(g.stats.Rollbacks),
		"guard.fallbacks":       float64(g.stats.Fallbacks),
		"guard.reengages":       float64(g.stats.Reengages),
		"guard.safe_ticks":      float64(g.stats.SafeTicks),
	}
}

// Stats returns the watchdog's intervention counters.
func (g *GuardedPolicy) Stats() GuardStats { return g.stats }

// SafeMode reports whether the guard is currently in safe mode.
func (g *GuardedPolicy) SafeMode() bool { return g.safeMode }

func (g *GuardedPolicy) prune(now sim.Time) {
	cut := now - g.cfg.Window
	i := 0
	for i < len(g.completions) && g.completions[i].at < cut {
		i++
	}
	if i > 0 {
		g.completions = append(g.completions[:0], g.completions[i:]...)
	}
}

// windowHealth computes the pruned window's timeout rate and p99; ok
// reports whether the window passes the configured limits.
func (g *GuardedPolicy) windowHealth() (rate float64, p99 sim.Time, ok bool) {
	n := len(g.completions)
	if n < g.cfg.MinSamples {
		// Too few samples to judge either way; treat as healthy so an
		// idle period neither trips nor blocks re-engagement.
		return 0, 0, true
	}
	timeouts := 0
	lats := make([]float64, n)
	for i, s := range g.completions {
		if s.timedOut {
			timeouts++
		}
		lats[i] = float64(s.latency)
	}
	rate = float64(timeouts) / float64(n)
	// Exact p99 over the window (windows are small; sorting is cheap).
	p99 = sim.Time(quickSelect(lats, int(math.Ceil(0.99*float64(n)))-1))
	ok = rate <= g.cfg.TimeoutRateLimit && p99 <= sim.Time(g.cfg.P99Factor*float64(g.sla))
	return rate, p99, ok
}

func (g *GuardedPolicy) windowHealthy() bool {
	_, _, ok := g.windowHealth()
	return ok
}

func (g *GuardedPolicy) checkHealth(now sim.Time) {
	g.prune(now)
	if g.safeMode {
		if now >= g.retryAt && g.windowHealthy() {
			g.reengage(now)
		}
		return
	}
	if !g.windowHealthy() || int(g.stats.InvalidActions)-g.invalidAtWindowStart() > g.cfg.MaxInvalid {
		g.fallback(now)
	} else if g.rollbacks > 0 && len(g.completions) >= g.cfg.MinSamples {
		// A rolled-back policy survived a full-sample healthy window; its
		// rollback budget resets.
		g.rollbacks = 0
	}
}

// invalidAtWindowStart: invalid actions are counted cumulatively; the guard
// trips on the count accumulated since the last mode change.
func (g *GuardedPolicy) invalidAtWindowStart() int { return g.invalidBase }

func (g *GuardedPolicy) fallback(now sim.Time) {
	rate, p99, _ := g.windowHealth()
	// Escalation rung 1: swap the inner policy back to its last-good
	// version and stay engaged. Pinning max frequency (rung 2) burns the
	// whole power budget; a known-good policy usually restores QoS without
	// giving up power management.
	if g.cfg.Rollback != nil && g.rollbacks < g.cfg.MaxRollbacks && g.cfg.Rollback() {
		g.rollbacks++
		g.stats.Rollbacks++
		g.Transitions = append(g.Transitions, GuardTransition{
			At: now, RolledBack: true, WindowTimeoutRate: rate, WindowP99: p99})
		g.invalidBase = int(g.stats.InvalidActions)
		// Judge the rolled-back policy on its own completions.
		g.completions = g.completions[:0]
		return
	}
	g.safeMode = true
	g.safeSince = now
	g.stats.Fallbacks++
	g.Transitions = append(g.Transitions, GuardTransition{
		At: now, ToSafe: true, WindowTimeoutRate: rate, WindowP99: p99})
	g.retryAt = now + g.backoff
	if g.backoff < g.cfg.MaxBackoff {
		g.backoff *= 2
	}
	// Clear the window so safe mode is judged on its own completions.
	g.completions = g.completions[:0]
	// Safe mode runs at full capacity: every core enabled, pinned to turbo.
	if t := g.ctl.Topology(); t != nil {
		counts := make([]int, len(t.Classes))
		for i, c := range t.Classes {
			counts[i] = c.Count
		}
		g.ctl.SetPlacement(counts)
	}
	for i := 0; i < g.ctl.NumCores(); i++ {
		g.ctl.SetTurbo(i)
	}
}

func (g *GuardedPolicy) reengage(now sim.Time) {
	g.safeMode = false
	g.stats.Reengages++
	g.Transitions = append(g.Transitions, GuardTransition{At: now})
	g.invalidBase = int(g.stats.InvalidActions)
	g.completions = g.completions[:0]
	g.inner.OnTick(now)
}

// validFreq vets a frequency request from the inner policy.
func (g *GuardedPolicy) validFreq(f cpu.Freq) (cpu.Freq, bool) {
	v := float64(f)
	if math.IsNaN(v) || math.IsInf(v, 0) || f <= 0 {
		g.stats.InvalidActions++
		return 0, false
	}
	if f > g.turbo {
		// Out-of-ladder high request: clamp rather than reject, but count
		// it — a policy emitting these repeatedly is malfunctioning.
		g.stats.InvalidActions++
		return g.turbo, true
	}
	return f, true
}

// guardedControl is the Control handle the inner policy actuates through.
// Observation methods pass through; actuation is validated, and suppressed
// entirely while the guard is in safe mode (a degraded policy must not
// fight the safe-mode frequency pin).
type guardedControl struct {
	server.Control
	g *GuardedPolicy
}

func (gc *guardedControl) SetFreq(core int, f cpu.Freq) {
	if gc.g.safeMode {
		return
	}
	if vf, ok := gc.g.validFreq(f); ok {
		gc.Control.SetFreq(core, vf)
	}
}

func (gc *guardedControl) SetTurbo(core int) {
	if gc.g.safeMode {
		return
	}
	gc.Control.SetTurbo(core)
}

func (gc *guardedControl) SetScore(core int, score float64) {
	if gc.g.safeMode {
		return
	}
	if math.IsNaN(score) || math.IsInf(score, 0) {
		gc.g.stats.InvalidActions++
		return
	}
	gc.Control.SetScore(core, score)
}

// SetPlacement is suppressed in safe mode: the guard's frequency pin runs
// with every core enabled, so a degraded policy cannot shrink capacity.
func (gc *guardedControl) SetPlacement(counts []int) {
	if gc.g.safeMode {
		return
	}
	gc.Control.SetPlacement(counts)
}

func (gc *guardedControl) Sleep(core int, state cpu.CState) bool {
	if gc.g.safeMode {
		return false
	}
	return gc.Control.Sleep(core, state)
}

// quickSelect returns the k-th smallest element (0-indexed) of a, which it
// partially reorders in place.
func quickSelect(a []float64, k int) float64 {
	lo, hi := 0, len(a)-1
	for lo < hi {
		p := a[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for a[i] < p {
				i++
			}
			for a[j] > p {
				j--
			}
			if i <= j {
				a[i], a[j] = a[j], a[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			break
		}
	}
	return a[k]
}
