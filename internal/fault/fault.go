// Package fault is the robustness layer of the reproduction: deterministic,
// seed-driven fault injectors that recreate the messy real-world conditions
// the paper's §3.1 motivates DVFS feedback control with — slow and lossy
// `userspace` governor actuation, noisy RAPL-style telemetry, transient core
// failures and thermal throttling, and flash-crowd load bursts — plus the
// guarded-policy watchdog (guard.go) that keeps a learned policy safe under
// them.
//
// Everything an Injector does is derived from a single Plan seed through
// sim.RNG substreams, so an identical Plan reproduces a bit-identical run.
package fault

import (
	"fmt"

	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

// Plan is a reproducible fault-injection campaign. The zero value of each
// sub-plan disables that injector, so plans compose freely.
type Plan struct {
	// Seed drives every injector's randomness.
	Seed int64
	// Actuation perturbs DVFS transitions.
	Actuation ActuationPlan
	// Sensor perturbs the telemetry feed policies observe.
	Sensor SensorPlan
	// Cores fails or throttles individual cores.
	Cores CorePlan
	// Load layers burst spikes onto the request trace.
	Load LoadPlan
}

// ActuationPlan models an imperfect DVFS interface: the `userspace`
// governor's sysfs write takes time, is sometimes lost, and occasionally the
// whole per-core interface wedges for a while.
type ActuationPlan struct {
	// ExtraLatency is added to every transition on top of the ladder's
	// hardware TransitionLatency.
	ExtraLatency sim.Time
	// JitterLatency adds a further uniform [0, JitterLatency) delay.
	JitterLatency sim.Time
	// DropProb is the probability a transition request is silently lost.
	DropProb float64
	// StuckProb is the probability a transition wedges the core's DVFS
	// interface: the request and every subsequent one on that core are
	// ignored for StuckFor.
	StuckProb float64
	// StuckFor is how long a wedged interface stays unresponsive.
	StuckFor sim.Time
}

func (p ActuationPlan) enabled() bool { return p != (ActuationPlan{}) }

// SensorPlan models imperfect telemetry: RAPL energy counters are noisy,
// reads can return stale samples, and detail fields can be missing.
type SensorPlan struct {
	// EnergyNoiseFrac is the relative std-dev of multiplicative Gaussian
	// noise on the cumulative energy reading.
	EnergyNoiseFrac float64
	// StaleProb is the probability a snapshot read returns the previous
	// snapshot unchanged (a hung or rate-limited telemetry daemon).
	StaleProb float64
	// DropProb is the probability the per-request SLA-budget detail
	// fields are missing from a snapshot.
	DropProb float64
	// QueueJitter perturbs the queue-length reading by a uniform integer
	// in [-QueueJitter, +QueueJitter], clamped at zero.
	QueueJitter int
}

func (p SensorPlan) enabled() bool { return p != (SensorPlan{}) }

// CorePlan models transient per-core failures (hotplug offlining) and
// thermal throttling, each as an alternating renewal process with
// exponentially distributed up and down times.
type CorePlan struct {
	// MTBF is the mean online time before a core goes offline (0 = cores
	// never fail). An offline core drains its current request but accepts
	// no new dispatches.
	MTBF sim.Time
	// MTTR is the mean time a failed core stays offline.
	MTTR sim.Time
	// ThrottleCap caps a core's frequency while thermally throttled
	// (0 = no throttling).
	ThrottleCap cpu.Freq
	// ThrottleMTBF is the mean time between throttle episodes.
	ThrottleMTBF sim.Time
	// ThrottleMTTR is the mean duration of a throttle episode.
	ThrottleMTTR sim.Time
}

// LoadPlan layers flash-crowd spikes onto a workload trace.
type LoadPlan struct {
	// SpikeProb is the per-bucket probability of a burst.
	SpikeProb float64
	// SpikeMul multiplies the bucket's rate during a burst.
	SpikeMul float64
}

func (p LoadPlan) enabled() bool { return p.SpikeProb > 0 && p.SpikeMul > 0 }

// Validate reports an error for malformed plans.
func (p Plan) Validate() error {
	a := p.Actuation
	if a.DropProb < 0 || a.DropProb > 1 || a.StuckProb < 0 || a.StuckProb > 1 {
		return fmt.Errorf("fault: actuation probabilities outside [0,1]: %+v", a)
	}
	if a.ExtraLatency < 0 || a.JitterLatency < 0 || a.StuckFor < 0 {
		return fmt.Errorf("fault: negative actuation durations: %+v", a)
	}
	if a.StuckProb > 0 && a.StuckFor == 0 {
		return fmt.Errorf("fault: StuckProb set with zero StuckFor")
	}
	s := p.Sensor
	if s.EnergyNoiseFrac < 0 || s.StaleProb < 0 || s.StaleProb > 1 ||
		s.DropProb < 0 || s.DropProb > 1 || s.QueueJitter < 0 {
		return fmt.Errorf("fault: bad sensor plan: %+v", s)
	}
	c := p.Cores
	if c.MTBF < 0 || c.MTTR < 0 || c.ThrottleMTBF < 0 || c.ThrottleMTTR < 0 || c.ThrottleCap < 0 {
		return fmt.Errorf("fault: negative core-fault parameters: %+v", c)
	}
	if c.MTBF > 0 && c.MTTR == 0 {
		return fmt.Errorf("fault: core MTBF set with zero MTTR")
	}
	if c.ThrottleCap > 0 && (c.ThrottleMTBF == 0 || c.ThrottleMTTR == 0) {
		return fmt.Errorf("fault: ThrottleCap set without throttle MTBF/MTTR")
	}
	l := p.Load
	if l.SpikeProb < 0 || l.SpikeProb > 1 || l.SpikeMul < 0 {
		return fmt.Errorf("fault: bad load plan: %+v", l)
	}
	return nil
}

// ApplyToTrace returns trace with the plan's load bursts layered on
// (deterministic in the plan seed). The input trace is not modified.
func (p Plan) ApplyToTrace(tr *workload.Trace) *workload.Trace {
	if !p.Load.enabled() {
		return tr
	}
	rng := sim.NewRNG(p.Seed).Stream("fault-load")
	out := &workload.Trace{Period: tr.Period, Rates: make([]float64, len(tr.Rates))}
	copy(out.Rates, tr.Rates)
	for i := range out.Rates {
		if rng.Bernoulli(p.Load.SpikeProb) {
			out.Rates[i] *= p.Load.SpikeMul
		}
	}
	return out
}

// Stats counts injected faults by kind.
type Stats struct {
	DroppedTransitions uint64 // governor writes silently lost
	DelayedTransitions uint64 // writes that arrived late
	StuckWindows       uint64 // DVFS interface wedge episodes
	StuckDropped       uint64 // writes swallowed by a wedged interface
	StaleSnapshots     uint64 // telemetry reads that returned old data
	NoisyReads         uint64 // energy readings perturbed
	DroppedFields      uint64 // snapshots missing SLA detail fields
	CoreFailures       uint64 // offline episodes started
	ThrottleEpisodes   uint64 // throttle episodes started
}

// Map renders the stats as the named counters the server Result carries.
func (s Stats) Map() map[string]uint64 {
	return map[string]uint64{
		"fault.dropped_transitions": s.DroppedTransitions,
		"fault.delayed_transitions": s.DelayedTransitions,
		"fault.stuck_windows":       s.StuckWindows,
		"fault.stuck_dropped":       s.StuckDropped,
		"fault.stale_snapshots":     s.StaleSnapshots,
		"fault.noisy_reads":         s.NoisyReads,
		"fault.dropped_fields":      s.DroppedFields,
		"fault.core_failures":       s.CoreFailures,
		"fault.throttle_episodes":   s.ThrottleEpisodes,
	}
}

// renewal is a two-state alternating renewal process (up/down) with
// exponential dwell times, advanced lazily and deterministically from its
// own RNG stream.
type renewal struct {
	rng      *sim.RNG
	upMean   sim.Time
	downMean sim.Time
	down     bool
	flipAt   sim.Time
	flips    *uint64 // counts transitions into the down state
}

func newRenewal(rng *sim.RNG, upMean, downMean sim.Time, flips *uint64) *renewal {
	r := &renewal{rng: rng, upMean: upMean, downMean: downMean, flips: flips}
	r.flipAt = r.dwell(upMean)
	return r
}

func (r *renewal) dwell(mean sim.Time) sim.Time {
	return sim.Seconds(r.rng.Exp(1 / mean.Seconds()))
}

// isDown advances the process to now and reports the current state.
func (r *renewal) isDown(now sim.Time) bool {
	for r.flipAt <= now {
		r.down = !r.down
		if r.down {
			*r.flips++
			r.flipAt += r.dwell(r.downMean)
		} else {
			r.flipAt += r.dwell(r.upMean)
		}
	}
	return r.down
}

// Injector realizes a Plan against a running server. It implements
// server.FaultInjector; install it via server.Config.Faults. An Injector is
// single-run state: build a fresh one per simulation.
type Injector struct {
	plan   Plan
	act    *sim.RNG
	sensor *sim.RNG

	stuckUntil []sim.Time
	offline    []*renewal
	throttle   []*renewal

	lastSnap server.Snapshot
	haveSnap bool

	stats Stats
}

var _ server.FaultInjector = (*Injector)(nil)

// NewInjector builds an injector for a server with numCores worker cores.
func NewInjector(plan Plan, numCores int) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	if numCores <= 0 {
		return nil, fmt.Errorf("fault: non-positive core count %d", numCores)
	}
	root := sim.NewRNG(plan.Seed)
	in := &Injector{
		plan:       plan,
		act:        root.Stream("fault-actuation"),
		sensor:     root.Stream("fault-sensor"),
		stuckUntil: make([]sim.Time, numCores),
		offline:    make([]*renewal, numCores),
		throttle:   make([]*renewal, numCores),
	}
	for i := 0; i < numCores; i++ {
		if plan.Cores.MTBF > 0 {
			in.offline[i] = newRenewal(root.Stream(fmt.Sprintf("fault-core-%d", i)),
				plan.Cores.MTBF, plan.Cores.MTTR, &in.stats.CoreFailures)
		}
		if plan.Cores.ThrottleCap > 0 {
			in.throttle[i] = newRenewal(root.Stream(fmt.Sprintf("fault-throttle-%d", i)),
				plan.Cores.ThrottleMTBF, plan.Cores.ThrottleMTTR, &in.stats.ThrottleEpisodes)
		}
	}
	return in, nil
}

// Plan returns the campaign this injector realizes.
func (in *Injector) Plan() Plan { return in.plan }

// Stats implements server.FaultInjector.
func (in *Injector) Stats() map[string]uint64 { return in.stats.Map() }

// Counters returns the raw fault counters.
func (in *Injector) Counters() Stats { return in.stats }

// OnFreqSet implements server.FaultInjector.
func (in *Injector) OnFreqSet(now sim.Time, core int, f cpu.Freq) (cpu.Freq, sim.Time, bool) {
	a := in.plan.Actuation
	if !a.enabled() {
		return f, 0, false
	}
	if in.stuckUntil[core] > now {
		in.stats.StuckDropped++
		return f, 0, true
	}
	if a.StuckProb > 0 && in.act.Bernoulli(a.StuckProb) {
		in.stuckUntil[core] = now + a.StuckFor
		in.stats.StuckWindows++
		in.stats.StuckDropped++
		return f, 0, true
	}
	if a.DropProb > 0 && in.act.Bernoulli(a.DropProb) {
		in.stats.DroppedTransitions++
		return f, 0, true
	}
	delay := a.ExtraLatency
	if a.JitterLatency > 0 {
		delay += sim.Time(in.act.Float64() * float64(a.JitterLatency))
	}
	if delay > 0 {
		in.stats.DelayedTransitions++
	}
	return f, delay, false
}

// FreqCap implements server.FaultInjector.
func (in *Injector) FreqCap(now sim.Time, core int) cpu.Freq {
	if r := in.throttle[core]; r != nil && r.isDown(now) {
		return in.plan.Cores.ThrottleCap
	}
	return 0
}

// CoreOffline implements server.FaultInjector.
func (in *Injector) CoreOffline(now sim.Time, core int) bool {
	r := in.offline[core]
	return r != nil && r.isDown(now)
}

// PerturbSnapshot implements server.FaultInjector.
func (in *Injector) PerturbSnapshot(now sim.Time, snap server.Snapshot) server.Snapshot {
	sp := in.plan.Sensor
	if !sp.enabled() {
		return snap
	}
	if sp.StaleProb > 0 && in.haveSnap && in.sensor.Bernoulli(sp.StaleProb) {
		in.stats.StaleSnapshots++
		return in.lastSnap
	}
	if sp.EnergyNoiseFrac > 0 {
		snap.Energy *= 1 + in.sensor.Normal(0, sp.EnergyNoiseFrac)
		in.stats.NoisyReads++
	}
	if sp.QueueJitter > 0 {
		snap.QueueLen += in.sensor.Intn(2*sp.QueueJitter+1) - sp.QueueJitter
		if snap.QueueLen < 0 {
			snap.QueueLen = 0
		}
	}
	if sp.DropProb > 0 && in.sensor.Bernoulli(sp.DropProb) {
		snap.QueueSLARemaining = nil
		snap.CoreSLARemaining = nil
		in.stats.DroppedFields++
	}
	in.lastSnap = snap
	in.haveSnap = true
	return snap
}
