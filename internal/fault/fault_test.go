package fault

import (
	"math"
	"reflect"
	"testing"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

func testApp(service sim.Time, workers int, sla sim.Time) *app.Profile {
	return &app.Profile{
		Name:    "fixed",
		SLA:     sla,
		Workers: workers,
		RefFreq: 2.1,
		Sampler: constSampler{service: service},
	}
}

type constSampler struct{ service sim.Time }

func (c constSampler) Sample(*sim.RNG) app.Work {
	return app.Work{ServiceRef: c.service, Features: []float64{1}}
}
func (c constSampler) FeatureDim() int { return 1 }

// zigzagPolicy deterministically alternates each core between two ladder
// points every tick, generating plenty of transitions for the actuation
// injector to chew on.
type zigzagPolicy struct {
	server.BasePolicy
	hi bool
}

func (p *zigzagPolicy) Name() string { return "zigzag" }

func (p *zigzagPolicy) OnTick(now sim.Time) {
	f := p.Ctl.Ladder().Min + 0.2
	if p.hi {
		f = p.Ctl.Ladder().Max
	}
	p.hi = !p.hi
	for i := 0; i < p.Ctl.NumCores(); i++ {
		p.Ctl.SetFreq(i, f)
	}
}

func aggressivePlan(seed int64) Plan {
	return Plan{
		Seed: seed,
		Actuation: ActuationPlan{
			ExtraLatency:  sim.Millisecond,
			JitterLatency: 4 * sim.Millisecond,
			DropProb:      0.25,
			StuckProb:     0.01,
			StuckFor:      50 * sim.Millisecond,
		},
		Sensor: SensorPlan{
			EnergyNoiseFrac: 0.05,
			StaleProb:       0.15,
			DropProb:        0.05,
			QueueJitter:     2,
		},
		Cores: CorePlan{
			MTBF:         400 * sim.Millisecond,
			MTTR:         60 * sim.Millisecond,
			ThrottleCap:  1.2,
			ThrottleMTBF: 300 * sim.Millisecond,
			ThrottleMTTR: 40 * sim.Millisecond,
		},
		Load: LoadPlan{SpikeProb: 0.2, SpikeMul: 1.5},
	}
}

func runOnce(t *testing.T, plan Plan) *server.Result {
	t.Helper()
	prof := testApp(800*sim.Microsecond, 3, 5*sim.Millisecond)
	inj, err := NewInjector(plan, prof.Workers)
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	s, err := server.New(eng, server.Config{App: prof, Seed: 7, Faults: inj}, &zigzagPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(plan.ApplyToTrace(workload.Constant(1000, sim.Second)), 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestInjectionDeterminism is the acceptance criterion for reproducible
// fault injection: two runs from the same Plan seed must produce
// bit-identical Results — every latency sample, counter, and fault stat.
func TestInjectionDeterminism(t *testing.T) {
	a := runOnce(t, aggressivePlan(99))
	b := runOnce(t, aggressivePlan(99))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("identical plans diverged:\n a=%+v\n b=%+v", a, b)
	}
	var injected uint64
	for _, v := range a.FaultStats {
		injected += v
	}
	if injected == 0 {
		t.Fatal("aggressive plan injected zero faults; determinism test is vacuous")
	}
	c := runOnce(t, aggressivePlan(100))
	if reflect.DeepEqual(a.FaultStats, c.FaultStats) && reflect.DeepEqual(a.Latencies, c.Latencies) {
		t.Fatal("different seeds produced identical runs; injector ignores its seed")
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Actuation: ActuationPlan{DropProb: 1.5}},
		{Actuation: ActuationPlan{ExtraLatency: -sim.Millisecond}},
		{Actuation: ActuationPlan{StuckProb: 0.1}}, // StuckFor missing
		{Sensor: SensorPlan{StaleProb: -0.1}},
		{Cores: CorePlan{MTBF: sim.Second}}, // MTTR missing
		{Cores: CorePlan{ThrottleCap: 1.0}}, // MTBF/MTTR missing
		{Load: LoadPlan{SpikeProb: 2, SpikeMul: 1}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad plan %d validated: %+v", i, p)
		}
		if _, err := NewInjector(p, 2); err == nil {
			t.Errorf("bad plan %d built an injector", i)
		}
	}
	if err := (Plan{}).Validate(); err != nil {
		t.Errorf("zero plan rejected: %v", err)
	}
	if _, err := NewInjector(Plan{}, 0); err == nil {
		t.Error("zero core count accepted")
	}
}

func TestApplyToTrace(t *testing.T) {
	tr := workload.Constant(100, sim.Second)
	p := Plan{Seed: 5, Load: LoadPlan{SpikeProb: 0.5, SpikeMul: 2}}
	out := p.ApplyToTrace(tr)
	if out == tr {
		t.Fatal("ApplyToTrace returned the input trace despite an active load plan")
	}
	if tr.Rates[0] != 100 {
		t.Fatal("input trace was modified")
	}
	spikes := 0
	for _, r := range out.Rates {
		switch r {
		case 100:
		case 200:
			spikes++
		default:
			t.Fatalf("unexpected rate %v", r)
		}
	}
	if spikes == 0 {
		t.Error("no spikes with SpikeProb 0.5")
	}
	again := p.ApplyToTrace(tr)
	if !reflect.DeepEqual(out, again) {
		t.Error("ApplyToTrace not deterministic")
	}
	// Disabled plan passes the trace through untouched.
	if (Plan{}).ApplyToTrace(tr) != tr {
		t.Error("zero plan did not pass the trace through")
	}
}

func TestRenewalAlternates(t *testing.T) {
	var flips uint64
	r := newRenewal(sim.NewRNG(1).Stream("t"), 100*sim.Millisecond, 20*sim.Millisecond, &flips)
	down := 0
	for ms := 0; ms < 5000; ms++ {
		if r.isDown(sim.Time(ms) * sim.Millisecond) {
			down++
		}
	}
	if flips == 0 {
		t.Fatal("renewal never failed over 5 s with 100 ms MTBF")
	}
	frac := float64(down) / 5000
	// Expected downtime fraction is MTTR/(MTBF+MTTR) = 1/6 ≈ 0.167.
	if frac < 0.05 || frac > 0.4 {
		t.Errorf("downtime fraction %.3f implausible for MTTR/(MTBF+MTTR)=1/6", frac)
	}
	// Deterministic replay.
	var flips2 uint64
	r2 := newRenewal(sim.NewRNG(1).Stream("t"), 100*sim.Millisecond, 20*sim.Millisecond, &flips2)
	for ms := 0; ms < 5000; ms++ {
		_ = r2.isDown(sim.Time(ms) * sim.Millisecond)
	}
	if flips != flips2 {
		t.Errorf("renewal replay diverged: %d vs %d flips", flips, flips2)
	}
}

// TestStuckInterface checks a wedged DVFS interface swallows subsequent
// writes for its whole window.
func TestStuckInterface(t *testing.T) {
	plan := Plan{Seed: 1, Actuation: ActuationPlan{StuckProb: 1, StuckFor: 10 * sim.Millisecond}}
	inj, err := NewInjector(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, drop := inj.OnFreqSet(0, 0, 1.5); !drop {
		t.Fatal("first write should wedge and drop")
	}
	if _, _, drop := inj.OnFreqSet(5*sim.Millisecond, 0, 1.5); !drop {
		t.Fatal("write inside the stuck window should drop")
	}
	if _, _, drop := inj.OnFreqSet(11*sim.Millisecond, 0, 1.5); !drop {
		// The interface un-wedges, but StuckProb=1 wedges it again; either
		// way the write is swallowed — just assert stats moved.
		_ = drop
	}
	if inj.Counters().StuckWindows == 0 || inj.Counters().StuckDropped < 2 {
		t.Errorf("stuck stats not tracked: %+v", inj.Counters())
	}
}

// TestSnapshotPerturbation checks the sensor injector's field drops, noise,
// and staleness against a crafted snapshot stream.
func TestSnapshotPerturbation(t *testing.T) {
	plan := Plan{Seed: 3, Sensor: SensorPlan{
		EnergyNoiseFrac: 0.1, StaleProb: 0.3, DropProb: 0.3, QueueJitter: 2}}
	inj, err := NewInjector(plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	stale, noisy, dropped := 0, 0, 0
	for i := 0; i < 500; i++ {
		now := sim.Time(i) * sim.Millisecond
		in := server.Snapshot{
			Now:               now,
			QueueLen:          10,
			Energy:            float64(i + 1),
			QueueSLARemaining: []sim.Time{sim.Millisecond},
		}
		out := inj.PerturbSnapshot(now, in)
		if out.Now != now {
			stale++
			continue
		}
		if out.Energy != in.Energy {
			noisy++
		}
		if math.IsNaN(out.Energy) || math.IsInf(out.Energy, 0) {
			t.Fatalf("sensor injector produced non-finite energy at %v", now)
		}
		if out.QueueLen < 0 {
			t.Fatalf("negative queue length at %v", now)
		}
		if out.QueueSLARemaining == nil {
			dropped++
		}
	}
	if stale == 0 || noisy == 0 || dropped == 0 {
		t.Errorf("sensor faults not exercised: stale=%d noisy=%d dropped=%d", stale, noisy, dropped)
	}
	st := inj.Counters()
	if st.StaleSnapshots == 0 || st.NoisyReads == 0 || st.DroppedFields == 0 {
		t.Errorf("sensor stats not tracked: %+v", st)
	}
}

// TestThrottleCapsFrequency drives a real server with a throttle-only plan
// and checks cores never exceed the cap while a throttle episode is active
// (observable via the throttle stats moving and the run completing).
func TestThrottleCapsFrequency(t *testing.T) {
	plan := Plan{Seed: 2, Cores: CorePlan{
		ThrottleCap:  1.0,
		ThrottleMTBF: 50 * sim.Millisecond,
		ThrottleMTTR: 50 * sim.Millisecond,
	}}
	res := runOnce(t, plan)
	if res.FaultStats["fault.throttle_episodes"] == 0 {
		t.Fatal("no throttle episodes over 2 s with 50 ms MTBF")
	}
	// With ~50% throttle duty cycle at cap 1.0, the time-weighted mean
	// frequency must sit clearly below an unthrottled zigzag run.
	clean := runOnce(t, Plan{Seed: 2})
	if res.AvgFreqGHz >= clean.AvgFreqGHz {
		t.Errorf("throttling did not reduce mean frequency: %v >= %v",
			res.AvgFreqGHz, clean.AvgFreqGHz)
	}
}

// TestOfflineCoresDrain checks requests are conserved when cores fail and
// recover throughout the run.
func TestOfflineCoresDrain(t *testing.T) {
	plan := Plan{Seed: 4, Cores: CorePlan{
		MTBF: 100 * sim.Millisecond,
		MTTR: 50 * sim.Millisecond,
	}}
	res := runOnce(t, plan)
	if res.FaultStats["fault.core_failures"] == 0 {
		t.Fatal("no core failures injected")
	}
	if res.Counters.Completions == 0 {
		t.Fatal("no completions with failing cores")
	}
}
