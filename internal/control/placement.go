package control

import "math"

// PlacementFromScore maps the actor's placement output x ∈ [0,1] onto a
// topology's placement ladder (cpu.Topology.PlacementLevels): 0 selects the
// efficiency-heavy end, 1 the performance-class-only end. Hostile inputs —
// NaN, ±Inf, out-of-range values from a diverged actor or faulted telemetry
// — clamp to the nearest valid level instead of panicking or returning an
// invalid vector. The returned slice is owned by levels; callers must not
// mutate it.
func PlacementFromScore(x float64, levels [][]int) []int {
	if len(levels) == 0 {
		return nil
	}
	if math.IsNaN(x) || x <= 0 {
		return levels[0]
	}
	if x >= 1 {
		return levels[len(levels)-1]
	}
	idx := int(x * float64(len(levels)))
	if idx >= len(levels) {
		idx = len(levels) - 1
	}
	return levels[idx]
}
