package control

import (
	"math"
	"reflect"
	"testing"

	"github.com/deeppower/deeppower/internal/cpu"
)

// TestPlacementFromScoreHostile drives the action scaler with the degenerate
// outputs a diverged actor or faulted telemetry can produce: NaN, ±Inf, and
// out-of-range scores must clamp to a valid ladder level, never panic or
// return an invalid vector.
func TestPlacementFromScoreHostile(t *testing.T) {
	topo := cpu.DefaultHetero(2, 2)
	levels := topo.PlacementLevels()
	first, last := levels[0], levels[len(levels)-1]
	cases := []struct {
		name string
		x    float64
		want []int
	}{
		{"nan", math.NaN(), first},
		{"neg inf", math.Inf(-1), first},
		{"pos inf", math.Inf(1), last},
		{"below range", -0.5, first},
		{"above range", 1.5, last},
		{"zero", 0, first},
		{"one", 1, last},
		{"just under one", math.Nextafter(1, 0), last},
		{"smallest positive", math.SmallestNonzeroFloat64, first},
	}
	for _, tc := range cases {
		if got := PlacementFromScore(tc.x, levels); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("%s: PlacementFromScore(%v) = %v, want %v", tc.name, tc.x, got, tc.want)
		}
	}
	if got := PlacementFromScore(0.5, nil); got != nil {
		t.Errorf("empty levels: got %v, want nil", got)
	}
}

// TestPlacementFromScoreMonotone sweeps the unit interval: every score maps
// onto some ladder level and the selected index never decreases as the score
// rises — the contract that makes the placement action a performance knob.
func TestPlacementFromScoreMonotone(t *testing.T) {
	topo := cpu.DefaultHetero(3, 2)
	levels := topo.PlacementLevels()
	lastIdx := -1
	for i := 0; i <= 1000; i++ {
		x := float64(i) / 1000
		got := PlacementFromScore(x, levels)
		idx := -1
		for j := range levels {
			if &levels[j][0] == &got[0] {
				idx = j
				break
			}
		}
		if idx < 0 {
			t.Fatalf("score %v returned a vector outside the ladder: %v", x, got)
		}
		if idx < lastIdx {
			t.Fatalf("score %v selected level %d after level %d", x, idx, lastIdx)
		}
		lastIdx = idx
	}
	if lastIdx != len(levels)-1 {
		t.Fatalf("sweep never reached the top level (%d of %d)", lastIdx, len(levels)-1)
	}
}
