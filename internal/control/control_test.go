package control

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/deeppower/deeppower/internal/app"
	"github.com/deeppower/deeppower/internal/cpu"
	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
	"github.com/deeppower/deeppower/internal/workload"
)

func TestParamsValidate(t *testing.T) {
	if (Params{0.5, 0.5}).Validate() != nil {
		t.Error("valid params rejected")
	}
	nan := math.NaN()
	for _, p := range []Params{{-0.1, 0}, {0, 1.1}, {2, 2}, {nan, 0.5}, {0.5, nan}} {
		if p.Validate() == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
}

func TestScore(t *testing.T) {
	p := Params{BaseFreq: 0.4, ScalingCoef: 1.0}
	sla := 8 * sim.Millisecond
	if got := p.Score(0, sla); got != 0.4 {
		t.Errorf("Score(0) = %v, want BaseFreq", got)
	}
	// Halfway through the SLA budget: 0.5·1.0 + 0.4 = 0.9.
	if got := p.Score(4*sim.Millisecond, sla); math.Abs(got-0.9) > 1e-12 {
		t.Errorf("Score(half) = %v, want 0.9", got)
	}
	// Past the SLA: score exceeds 1 → turbo region.
	if got := p.Score(8*sim.Millisecond, sla); got < 1 {
		t.Errorf("Score(full SLA) = %v, want >= 1", got)
	}
}

func TestScoreMonotoneInElapsed(t *testing.T) {
	f := func(b, s, e1Raw, e2Raw uint16) bool {
		p := Params{BaseFreq: float64(b) / 65535, ScalingCoef: float64(s) / 65535}
		e1 := sim.Time(e1Raw) * sim.Microsecond
		e2 := sim.Time(e2Raw) * sim.Microsecond
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		return p.Score(e1, sim.Millisecond) <= p.Score(e2, sim.Millisecond)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetParamsClamps(t *testing.T) {
	tc := NewThreadController(Params{})
	tc.SetParams(Params{BaseFreq: -3, ScalingCoef: 9})
	got := tc.Params()
	if got.BaseFreq != 0 || got.ScalingCoef != 1 {
		t.Errorf("clamped params = %+v", got)
	}
	// Infinities clamp like any out-of-range value.
	tc.SetParams(Params{BaseFreq: math.Inf(1), ScalingCoef: math.Inf(-1)})
	if got := tc.Params(); got.BaseFreq != 1 || got.ScalingCoef != 0 {
		t.Errorf("inf params = %+v, want {1 0}", got)
	}
	// A NaN component — a diverged actor — keeps the last good value
	// for that knob while the finite component still applies.
	tc.SetParams(Params{BaseFreq: math.NaN(), ScalingCoef: 0.6})
	if got := tc.Params(); got.BaseFreq != 1 || got.ScalingCoef != 0.6 {
		t.Errorf("NaN BaseFreq: params = %+v, want {1 0.6}", got)
	}
	tc.SetParams(Params{BaseFreq: 0.3, ScalingCoef: math.NaN()})
	if got := tc.Params(); got.BaseFreq != 0.3 || got.ScalingCoef != 0.6 {
		t.Errorf("NaN ScalingCoef: params = %+v, want {0.3 0.6}", got)
	}
}

func fixedProfile(service sim.Time, workers int, sla sim.Time) *app.Profile {
	return &app.Profile{
		Name: "fixed", SLA: sla, Workers: workers, RefFreq: 2.1,
		Sampler: constSampler{service},
	}
}

type constSampler struct{ service sim.Time }

func (c constSampler) Sample(*sim.RNG) app.Work {
	return app.Work{ServiceRef: c.service, Features: []float64{1}}
}
func (c constSampler) FeatureDim() int { return 1 }

func runController(t *testing.T, p Params, service, sla sim.Time, rate float64) *server.Result {
	t.Helper()
	eng := sim.NewEngine()
	tc := NewThreadController(p)
	s, err := server.New(eng, server.Config{
		App: fixedProfile(service, 2, sla), Seed: 9,
	}, tc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(workload.Constant(rate, sim.Second), 2*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestIdleCoresSitAtBaseFreq(t *testing.T) {
	// No arrivals: all cores should sit at the BaseFreq interpolation.
	eng := sim.NewEngine()
	tc := NewThreadController(Params{BaseFreq: 0.5, ScalingCoef: 1})
	s, err := server.New(eng, server.Config{
		App: fixedProfile(sim.Millisecond, 2, 10*sim.Millisecond), Seed: 1,
	}, tc)
	if err != nil {
		t.Fatal(err)
	}
	ft := s.EnableFreqTrace(100*sim.Millisecond, 200*sim.Millisecond)
	if _, err := s.Run(workload.Constant(0.0001, sim.Second), sim.Second); err != nil {
		t.Fatal(err)
	}
	want := float64(cpu.DefaultLadder().Interpolate(0.5))
	for _, row := range ft.Freqs {
		for _, f := range row {
			if f != want {
				t.Fatalf("idle core at %v GHz, want %v", f, want)
			}
		}
	}
}

func TestHigherBaseFreqFasterButCostlier(t *testing.T) {
	lo := runController(t, Params{BaseFreq: 0.1, ScalingCoef: 0.2},
		2*sim.Millisecond, 50*sim.Millisecond, 200)
	hi := runController(t, Params{BaseFreq: 0.9, ScalingCoef: 0.2},
		2*sim.Millisecond, 50*sim.Millisecond, 200)
	if hi.Latency.Mean >= lo.Latency.Mean {
		t.Errorf("high BaseFreq mean latency %v not below low %v",
			hi.Latency.Mean, lo.Latency.Mean)
	}
	if hi.AvgPowerW <= lo.AvgPowerW {
		t.Errorf("high BaseFreq power %v not above low %v", hi.AvgPowerW, lo.AvgPowerW)
	}
}

func TestScalingCoefRescuesLongRequests(t *testing.T) {
	// Tight SLA relative to service time at low frequency: without
	// scaling, low BaseFreq times out; with a high ScalingCoef, the
	// controller ramps to turbo and rescues requests.
	service := 4 * sim.Millisecond
	sla := 6 * sim.Millisecond
	noScale := runController(t, Params{BaseFreq: 0.05, ScalingCoef: 0}, service, sla, 100)
	scale := runController(t, Params{BaseFreq: 0.05, ScalingCoef: 1}, service, sla, 100)
	if scale.TimeoutRate >= noScale.TimeoutRate {
		t.Errorf("ScalingCoef did not reduce timeouts: %v vs %v",
			scale.TimeoutRate, noScale.TimeoutRate)
	}
	if scale.Latency.P99 >= noScale.Latency.P99 {
		t.Errorf("ScalingCoef did not reduce p99: %v vs %v",
			scale.Latency.P99, noScale.Latency.P99)
	}
}

// Fig. 4's shape: during a request, frequency is non-decreasing until
// completion (the controller only ramps up as consumed time grows).
func TestFrequencyRampsDuringRequest(t *testing.T) {
	eng := sim.NewEngine()
	tc := NewThreadController(Params{BaseFreq: 0.2, ScalingCoef: 0.9})
	prof := fixedProfile(20*sim.Millisecond, 1, 30*sim.Millisecond)
	s, err := server.New(eng, server.Config{App: prof, Seed: 3}, tc)
	if err != nil {
		t.Fatal(err)
	}
	ft := s.EnableFreqTrace(0, sim.Second)
	if _, err := s.Run(workload.Constant(10, sim.Second), sim.Second); err != nil {
		t.Fatal(err)
	}
	if len(ft.Begins) == 0 {
		t.Fatal("no requests in window")
	}
	// Between each begin/end pair on core 0, frequency must be
	// non-decreasing.
	for bi, begin := range ft.Begins {
		var end sim.Time = sim.MaxTime
		for _, e := range ft.Ends {
			if e.At > begin.At {
				end = e.At
				break
			}
		}
		last := 0.0
		for i, tm := range ft.Times {
			if tm <= begin.At || tm >= end {
				continue
			}
			f := ft.Freqs[i][0]
			if f+1e-9 < last {
				t.Fatalf("request %d: frequency dropped %v → %v mid-request", bi, last, f)
			}
			last = f
		}
	}
}

func TestApplyScoresTurboPastSLA(t *testing.T) {
	// Run far beyond SLA: the core must reach turbo.
	eng := sim.NewEngine()
	tc := NewThreadController(Params{BaseFreq: 0.0, ScalingCoef: 1})
	prof := fixedProfile(40*sim.Millisecond, 1, 5*sim.Millisecond)
	s, err := server.New(eng, server.Config{App: prof, Seed: 4}, tc)
	if err != nil {
		t.Fatal(err)
	}
	ft := s.EnableFreqTrace(0, sim.Second)
	if _, err := s.Run(workload.Constant(5, sim.Second), sim.Second); err != nil {
		t.Fatal(err)
	}
	turbo := float64(cpu.DefaultLadder().Turbo)
	seenTurbo := false
	for _, row := range ft.Freqs {
		if row[0] == turbo {
			seenTurbo = true
			break
		}
	}
	if !seenTurbo {
		t.Error("controller never engaged turbo past the SLA budget")
	}
}

func TestNameIncludesParams(t *testing.T) {
	tc := NewThreadController(Params{BaseFreq: 0.4, ScalingCoef: 1})
	if tc.Name() == "" {
		t.Error("empty name")
	}
}
