// Package control implements the paper's thread controller (Algorithm 1):
// the bottom layer of the hierarchical mechanism. Every ShortTime it
// computes, for each core,
//
//	consumed = (now - beginTime) / SLA
//	score    = consumed · ScalingCoef + BaseFreq
//
// and sets the core to turbo when score ≥ 1, otherwise to the linear
// interpolation between the minimum and maximum frequency at the score.
// The two parameters (BaseFreq, ScalingCoef) are the DRL agent's action,
// updated once per LongTime.
package control

import (
	"fmt"
	"math"
	"sync"

	"github.com/deeppower/deeppower/internal/server"
	"github.com/deeppower/deeppower/internal/sim"
)

// Params are the thread controller's two knobs, both in [0,1] (the actor's
// sigmoid-bounded outputs, §4.4.3).
type Params struct {
	// BaseFreq positions an idle or freshly-started request on the ladder.
	BaseFreq float64
	// ScalingCoef controls how fast frequency rises as a request consumes
	// its SLA budget.
	ScalingCoef float64
}

// Validate reports an error for out-of-range or non-finite parameters.
func (p Params) Validate() error {
	if !(p.BaseFreq >= 0 && p.BaseFreq <= 1 && p.ScalingCoef >= 0 && p.ScalingCoef <= 1) {
		return fmt.Errorf("control: params %+v outside [0,1]", p)
	}
	return nil
}

// Score computes Algorithm 1 line 5 for a request that has been in service
// for elapsed, under SLA sla.
func (p Params) Score(elapsed, sla sim.Time) float64 {
	consumed := float64(elapsed) / float64(sla)
	return consumed*p.ScalingCoef + p.BaseFreq
}

// ThreadController scales every core's frequency each tick based on the
// current Params and each in-flight request's consumed time. It implements
// server.Policy so it can run standalone with fixed parameters (the Fig. 11
// experiment); DeepPower embeds it and updates Params from the DRL agent.
type ThreadController struct {
	server.BasePolicy

	mu     sync.RWMutex
	params Params
}

// NewThreadController returns a controller with initial parameters.
func NewThreadController(initial Params) *ThreadController {
	return &ThreadController{params: initial}
}

// Name implements server.Policy.
func (tc *ThreadController) Name() string {
	p := tc.Params()
	return fmt.Sprintf("controller(b=%.2g,s=%.2g)", p.BaseFreq, p.ScalingCoef)
}

// Params returns the current parameters.
func (tc *ThreadController) Params() Params {
	tc.mu.RLock()
	defer tc.mu.RUnlock()
	return tc.params
}

// SetParams installs new parameters (the DRL agent's action, Fig. 3 ②).
// Out-of-range values are clamped into [0,1]; a NaN component — a diverged
// actor — is rejected, keeping that knob at its last good value.
func (tc *ThreadController) SetParams(p Params) {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	if math.IsNaN(p.BaseFreq) {
		p.BaseFreq = tc.params.BaseFreq
	}
	if math.IsNaN(p.ScalingCoef) {
		p.ScalingCoef = tc.params.ScalingCoef
	}
	if p.BaseFreq < 0 {
		p.BaseFreq = 0
	} else if p.BaseFreq > 1 {
		p.BaseFreq = 1
	}
	if p.ScalingCoef < 0 {
		p.ScalingCoef = 0
	} else if p.ScalingCoef > 1 {
		p.ScalingCoef = 1
	}
	tc.params = p
}

// OnTick implements server.Policy: Algorithm 1's inner loop over cores.
func (tc *ThreadController) OnTick(now sim.Time) {
	tc.Apply(now, tc.Ctl)
}

// Apply runs one controller pass against an arbitrary Control, so embedding
// policies can invoke it on their own cadence.
func (tc *ThreadController) Apply(now sim.Time, c server.Control) {
	p := tc.Params()
	sla := c.SLA()
	for i := 0; i < c.NumCores(); i++ {
		r := c.CoreRequest(i)
		if r == nil {
			if c.CoreParked(i) {
				// Placement disabled the core: hold it at its ladder
				// floor until it is re-enabled.
				c.SetScore(i, 0)
				continue
			}
			// No request processing: hold the core at BaseFreq (§4.2,
			// Fig. 4 caption).
			c.SetScore(i, p.BaseFreq)
			continue
		}
		c.SetScore(i, p.Score(now-r.Start, sla))
	}
}

// OnDispatch implements server.Policy: a newly dispatched request starts at
// its score immediately rather than waiting for the next tick, which matters
// for applications whose service time is comparable to the tick.
func (tc *ThreadController) OnDispatch(r *server.Request, core int) {
	p := tc.Params()
	tc.Ctl.SetScore(core, p.Score(0, tc.Ctl.SLA()))
}
